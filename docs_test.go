package agentrec

// Docs gate: README.md and DESIGN.md are checked against the shipped code
// so the written story cannot silently drift — every relative link
// resolves, every platformd flag the README documents exists (and none is
// missing), and the sections other documents promise are present. CI runs
// this alongside `go build ./examples/...`.

import (
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"agentrec/internal/analysis"
	"agentrec/internal/loadgen"
	"agentrec/internal/ops"
	"agentrec/internal/recommend"
)

func readDoc(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatalf("required document missing: %v", err)
	}
	return string(data)
}

// TestDocsLinksResolve checks every relative markdown link target in
// README.md and DESIGN.md exists in the repository.
func TestDocsLinksResolve(t *testing.T) {
	linkRe := regexp.MustCompile(`\]\(([^)#]+)(#[^)]*)?\)`)
	for _, doc := range []string{"README.md", "DESIGN.md"} {
		for _, m := range linkRe.FindAllStringSubmatch(readDoc(t, doc), -1) {
			target := m[1]
			if strings.Contains(target, "://") {
				continue // external
			}
			if _, err := os.Stat(filepath.FromSlash(target)); err != nil {
				t.Errorf("%s links to %q which does not exist", doc, target)
			}
		}
	}
}

// TestReadmeFlagReferenceMatchesPlatformd cross-checks the README flag
// table against the flags cmd/platformd actually defines, both ways.
func TestReadmeFlagReferenceMatchesPlatformd(t *testing.T) {
	readme := readDoc(t, "README.md")
	src := readDoc(t, filepath.Join("cmd", "platformd", "main.go"))

	defRe := regexp.MustCompile(`flag\.(?:Int|String|Bool|Duration|Float64)\("([^"]+)"`)
	defined := make(map[string]bool)
	for _, m := range defRe.FindAllStringSubmatch(src, -1) {
		defined[m[1]] = true
	}
	if len(defined) == 0 {
		t.Fatal("found no flag definitions in cmd/platformd/main.go")
	}

	// Flags documented in the README table rows: | `-name` | ...
	rowRe := regexp.MustCompile("(?m)^\\| `-([a-z0-9-]+)` \\|")
	documented := make(map[string]bool)
	for _, m := range rowRe.FindAllStringSubmatch(readme, -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("README.md flag reference table not found")
	}

	for name := range documented {
		if !defined[name] {
			t.Errorf("README documents flag -%s which platformd does not define", name)
		}
	}
	for name := range defined {
		if !documented[name] {
			t.Errorf("platformd defines flag -%s which the README flag reference omits", name)
		}
	}
}

// jsonLeafTags collects the json tag names of every leaf (non-struct)
// field reachable from v's type, recursing through pointers, slices, and
// nested structs. Container fields (the nested struct itself) carry no
// data of their own, so only leaves must appear in the documentation.
func jsonLeafTags(t *testing.T, typ reflect.Type, into map[string]bool) {
	t.Helper()
	for typ.Kind() == reflect.Pointer || typ.Kind() == reflect.Slice || typ.Kind() == reflect.Map {
		typ = typ.Elem()
	}
	if typ.Kind() != reflect.Struct {
		return
	}
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if !f.IsExported() {
			continue
		}
		elem := f.Type
		for elem.Kind() == reflect.Pointer || elem.Kind() == reflect.Slice || elem.Kind() == reflect.Map {
			elem = elem.Elem()
		}
		if elem.Kind() == reflect.Struct {
			jsonLeafTags(t, elem, into)
			continue
		}
		tag, _, _ := strings.Cut(f.Tag.Get("json"), ",")
		if tag == "" || tag == "-" {
			t.Errorf("%s.%s has no json tag: every wire field must be named explicitly", typ, f.Name)
			continue
		}
		into[tag] = true
	}
}

// TestDocsStatsFieldNamesInDesign checks that every wire field of the
// stats structs and the ops event/snapshot model is named (in backticks)
// in DESIGN.md's event-plane vocabulary, so the agent-first naming story
// cannot drift from the shipped JSON.
func TestDocsStatsFieldNamesInDesign(t *testing.T) {
	design := readDoc(t, "DESIGN.md")
	tags := make(map[string]bool)
	for _, v := range []any{
		recommend.Stats{},
		recommend.ReplicationStats{},
		recommend.ShardReplication{},
		ops.Event{},
		ops.Snapshot{},
	} {
		jsonLeafTags(t, reflect.TypeOf(v), tags)
	}
	if len(tags) < 20 {
		t.Fatalf("walker found only %d tags, expected the full stats/event vocabulary", len(tags))
	}
	for tag := range tags {
		if !strings.Contains(design, "`"+tag+"`") {
			t.Errorf("DESIGN.md does not document wire field `%s`", tag)
		}
	}
}

// TestDocsLoadgenSchemaInDesign checks that every wire field of the
// scenario document and the BENCH result document is named (in backticks)
// in DESIGN.md's "Load harness" section, so the committed trajectory
// schema cannot drift from the docs.
func TestDocsLoadgenSchemaInDesign(t *testing.T) {
	design := readDoc(t, "DESIGN.md")
	tags := make(map[string]bool)
	for _, v := range []any{loadgen.Scenario{}, loadgen.ScenarioResult{}} {
		jsonLeafTags(t, reflect.TypeOf(v), tags)
	}
	if len(tags) < 40 {
		t.Fatalf("walker found only %d tags, expected the full scenario/result vocabulary", len(tags))
	}
	for tag := range tags {
		if !strings.Contains(design, "`"+tag+"`") {
			t.Errorf("DESIGN.md does not document wire field `%s`", tag)
		}
	}
}

// TestReadmeRecbenchFlagsDocumented cross-checks that every flag
// cmd/recbench defines is mentioned in the README (the scenario harness
// is driven entirely through recbench, so an undocumented flag is an
// invisible one).
func TestReadmeRecbenchFlagsDocumented(t *testing.T) {
	readme := readDoc(t, "README.md")
	src := readDoc(t, filepath.Join("cmd", "recbench", "main.go"))
	defRe := regexp.MustCompile(`flag\.(?:Int|String|Bool|Duration|Float64)\("([^"]+)"`)
	defined := make(map[string]bool)
	for _, m := range defRe.FindAllStringSubmatch(src, -1) {
		defined[m[1]] = true
	}
	for _, want := range []string{"scenario", "rate", "duration", "servers", "users", "workers", "state-dir", "quick", "out"} {
		if !defined[want] {
			t.Errorf("cmd/recbench does not define the promised -%s flag", want)
		}
	}
	for name := range defined {
		if !strings.Contains(readme, "`-"+name+"`") {
			t.Errorf("README.md does not document recbench flag -%s", name)
		}
	}
}

// TestBenchScenarioDocsValid is the BENCH_<scenario>.json schema gate.
// By default it validates the committed trajectory files in the repo root
// and requires the scenarios the roadmap promises; CI's scenario smoke
// job points BENCH_SCENARIO_GLOB at freshly emitted documents instead,
// failing the build on any schema break or error-count regression.
func TestBenchScenarioDocsValid(t *testing.T) {
	glob := os.Getenv("BENCH_SCENARIO_GLOB")
	committed := glob == ""
	if committed {
		glob = "BENCH_*.json"
	}
	paths, err := filepath.Glob(glob)
	if err != nil {
		t.Fatal(err)
	}
	found := make(map[string]*loadgen.ScenarioResult)
	for _, path := range paths {
		if filepath.Base(path) == "BENCH_recommend.json" {
			continue // the microbenchmark snapshot has its own schema
		}
		res, err := loadgen.ReadResult(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if err := res.Check(); err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		found[res.Scenario] = res
	}
	if len(found) == 0 {
		t.Fatalf("no scenario documents matched %q", glob)
	}
	if !committed {
		return
	}
	// The committed trajectory must cover the promised scenarios, from
	// replicated multi-server runs, with their special sections present.
	for _, want := range []string{"flash-sale", "churn-spill", "cold-follower", "failover", "shilling"} {
		res := found[want]
		if res == nil {
			t.Errorf("committed trajectory is missing BENCH_%s.json", want)
			continue
		}
		if res.Servers < 2 {
			t.Errorf("%s: committed run used %d server(s), want a replicated >=2-server run", want, res.Servers)
		}
	}
	if res := found["cold-follower"]; res != nil {
		if res.ColdFollower == nil || res.ColdFollower.PagesPulled == 0 {
			t.Error("cold-follower trajectory has no paged bootstrap measurement")
		}
	}
	if res := found["failover"]; res != nil {
		switch fo := res.Failover; {
		case fo == nil:
			t.Error("failover trajectory has no failover section")
		case fo.PromotedEpoch < 2:
			t.Errorf("failover trajectory never advanced the ownership map (epoch %d)", fo.PromotedEpoch)
		case fo.LostAckedWrites != 0:
			t.Errorf("failover trajectory lost %d acknowledged writes", fo.LostAckedWrites)
		case fo.DivergentShards != 0:
			t.Errorf("failover trajectory has %d divergent shards", fo.DivergentShards)
		}
	}
	if res := found["shilling"]; res != nil {
		if res.Shilling == nil || res.Shilling.Probes == 0 {
			t.Error("shilling trajectory has no rank-displacement measurement")
		}
	}
	if res := found["churn-spill"]; res != nil {
		if res.Metrics == nil || res.Metrics.ResidentShardsMin >= res.Metrics.ShardsPerEngine {
			t.Error("churn-spill trajectory shows no shard spilling")
		}
	}
}

// TestReadmePromisedSectionsExist pins the structural promises: the
// README's quickstart points at a real example, and DESIGN.md carries the
// Replication and Durability sections the README links into.
func TestReadmePromisedSectionsExist(t *testing.T) {
	readme := readDoc(t, "README.md")
	for _, want := range []string{"examples/quickstart", "-state-dir", "-buyer-peers", "-ann", "DESIGN.md"} {
		if !strings.Contains(readme, want) {
			t.Errorf("README.md does not mention %q", want)
		}
	}
	if !strings.Contains(readme, "## Load & scenarios") {
		t.Error("README.md does not contain the Load & scenarios section")
	}
	design := readDoc(t, "DESIGN.md")
	for _, want := range []string{"## Replication", "## Durability", "## Neighbor search", "## Load harness", "prof/<shard>", "purch/<shard>", "sell/<shard>", "BENCH_recommend.json", "coordinated omission"} {
		if !strings.Contains(design, want) {
			t.Errorf("DESIGN.md does not contain %q", want)
		}
	}
}

// TestDocsAnalyzersInDesign checks that DESIGN.md's "Static analysis"
// section names every analyzer cmd/agentlint ships (and documents the
// suppression grammar), so the lint suite cannot grow or rename silently.
func TestDocsAnalyzersInDesign(t *testing.T) {
	design := readDoc(t, "DESIGN.md")
	idx := strings.Index(design, "## Static analysis")
	if idx < 0 {
		t.Fatal(`DESIGN.md has no "## Static analysis" section`)
	}
	section := design[idx:]
	if next := strings.Index(section[3:], "\n## "); next >= 0 {
		section = section[:next+3]
	}
	for _, a := range analysis.All() {
		if !strings.Contains(section, "`"+a.Name+"`") {
			t.Errorf("DESIGN.md Static analysis section does not document analyzer `%s`", a.Name)
		}
	}
	if !strings.Contains(section, "agentlint:allow") {
		t.Error("DESIGN.md Static analysis section does not document the agentlint:allow suppression grammar")
	}
}
