package agentrec

// Docs gate: README.md and DESIGN.md are checked against the shipped code
// so the written story cannot silently drift — every relative link
// resolves, every platformd flag the README documents exists (and none is
// missing), and the sections other documents promise are present. CI runs
// this alongside `go build ./examples/...`.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func readDoc(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatalf("required document missing: %v", err)
	}
	return string(data)
}

// TestDocsLinksResolve checks every relative markdown link target in
// README.md and DESIGN.md exists in the repository.
func TestDocsLinksResolve(t *testing.T) {
	linkRe := regexp.MustCompile(`\]\(([^)#]+)(#[^)]*)?\)`)
	for _, doc := range []string{"README.md", "DESIGN.md"} {
		for _, m := range linkRe.FindAllStringSubmatch(readDoc(t, doc), -1) {
			target := m[1]
			if strings.Contains(target, "://") {
				continue // external
			}
			if _, err := os.Stat(filepath.FromSlash(target)); err != nil {
				t.Errorf("%s links to %q which does not exist", doc, target)
			}
		}
	}
}

// TestReadmeFlagReferenceMatchesPlatformd cross-checks the README flag
// table against the flags cmd/platformd actually defines, both ways.
func TestReadmeFlagReferenceMatchesPlatformd(t *testing.T) {
	readme := readDoc(t, "README.md")
	src := readDoc(t, filepath.Join("cmd", "platformd", "main.go"))

	defRe := regexp.MustCompile(`flag\.(?:Int|String|Bool|Duration|Float64)\("([^"]+)"`)
	defined := make(map[string]bool)
	for _, m := range defRe.FindAllStringSubmatch(src, -1) {
		defined[m[1]] = true
	}
	if len(defined) == 0 {
		t.Fatal("found no flag definitions in cmd/platformd/main.go")
	}

	// Flags documented in the README table rows: | `-name` | ...
	rowRe := regexp.MustCompile("(?m)^\\| `-([a-z0-9-]+)` \\|")
	documented := make(map[string]bool)
	for _, m := range rowRe.FindAllStringSubmatch(readme, -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("README.md flag reference table not found")
	}

	for name := range documented {
		if !defined[name] {
			t.Errorf("README documents flag -%s which platformd does not define", name)
		}
	}
	for name := range defined {
		if !documented[name] {
			t.Errorf("platformd defines flag -%s which the README flag reference omits", name)
		}
	}
}

// TestReadmePromisedSectionsExist pins the structural promises: the
// README's quickstart points at a real example, and DESIGN.md carries the
// Replication and Durability sections the README links into.
func TestReadmePromisedSectionsExist(t *testing.T) {
	readme := readDoc(t, "README.md")
	for _, want := range []string{"examples/quickstart", "-state-dir", "-buyer-peers", "-ann", "DESIGN.md"} {
		if !strings.Contains(readme, want) {
			t.Errorf("README.md does not mention %q", want)
		}
	}
	design := readDoc(t, "DESIGN.md")
	for _, want := range []string{"## Replication", "## Durability", "## Neighbor search", "prof/<shard>", "purch/<shard>", "sell/<shard>", "BENCH_recommend.json"} {
		if !strings.Contains(design, want) {
			t.Errorf("DESIGN.md does not contain %q", want)
		}
	}
}
