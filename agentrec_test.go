package agentrec

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func demoPlatform(t *testing.T, opts ...Option) *Platform {
	t.Helper()
	products := []*Product{
		{ID: "lap1", Name: "UltraBook", Category: "laptop", Terms: map[string]float64{"ssd": 1, "light": 0.8}, PriceCents: 100000, SellerID: "s1", Stock: 5},
		{ID: "lap2", Name: "GameBook", Category: "laptop", Terms: map[string]float64{"gpu": 1, "ssd": 0.4}, PriceCents: 150000, SellerID: "s1", Stock: 5},
		{ID: "cam1", Name: "Shooter", Category: "camera", Terms: map[string]float64{"lens": 1}, PriceCents: 50000, SellerID: "s2", Stock: 5},
		{ID: "cam2", Name: "Zoomer", Category: "camera", Terms: map[string]float64{"zoom": 1, "lens": 0.5}, PriceCents: 60000, SellerID: "s2", Stock: 5},
	}
	p, err := New(append([]Option{WithMarketplaces(2), WithProducts(products...)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestQuickstartFlow(t *testing.T) {
	p := demoPlatform(t)
	ctx := testCtx(t)
	alice, err := p.NewConsumer(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	res, err := alice.Query(ctx, Query{Category: "laptop", Terms: []string{"ssd"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AllMatches()) == 0 {
		t.Fatal("query found nothing")
	}
	buy, err := alice.Buy(ctx, "lap1", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if buy.Sale == nil {
		t.Fatal("no sale")
	}
	recs, err := alice.Recommendations("laptop", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Error("no recommendations after activity")
	}
}

func TestAuctionViaFacade(t *testing.T) {
	p := demoPlatform(t)
	ctx := testCtx(t)
	alice, err := p.NewConsumer(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	// cam1 is stocked on marketplace 0 (round-robin, index 2 -> market 0).
	aucID, err := p.OpenAuction(0, "cam1", 10000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Bid(ctx, p.MarketName(0), aucID, 30000); err != nil {
		t.Fatal(err)
	}
	winner, price, sold, err := p.CloseAuction(0, aucID)
	if err != nil {
		t.Fatal(err)
	}
	if !sold || winner != "alice" || price <= 0 {
		t.Errorf("auction outcome: winner=%s price=%d sold=%v", winner, price, sold)
	}
}

func TestOfflineInboxViaFacade(t *testing.T) {
	p := demoPlatform(t)
	ctx := testCtx(t)
	alice, err := p.NewConsumer(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Query(ctx, Query{Category: "camera"}); err != nil {
		t.Fatal(err)
	}
	if err := alice.Logout(ctx); err != nil {
		t.Fatal(err)
	}
	inbox, err := alice.Login(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(inbox) != 0 {
		t.Errorf("inbox = %v, want empty (task completed before logout)", inbox)
	}
}

func TestSellerFeedViaFacade(t *testing.T) {
	p := demoPlatform(t)
	feed := `[{"sku":"N1","title":"New Thing","cat":"laptop","subcat":"",
		"keywords":["ssd"],"price_cents":80000,"qty":3}]`
	n, err := p.IntegrateJSONFeed(0, strings.NewReader(feed), "sellerX")
	if err != nil || n != 1 {
		t.Fatalf("feed: %d, %v", n, err)
	}
	ctx := testCtx(t)
	bob, err := p.NewConsumer(ctx, "bob")
	if err != nil {
		t.Fatal(err)
	}
	res, err := bob.Query(ctx, Query{Category: "laptop", Terms: []string{"ssd"}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range res.AllMatches() {
		if m.Product.ID == "sellerX:N1" {
			found = true
		}
	}
	if !found {
		t.Error("integrated seller product not found by query")
	}
}

func TestHTTPInterface(t *testing.T) {
	p := demoPlatform(t)
	ts := httptest.NewServer(p.HTTPHandler())
	defer ts.Close()

	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := post("/users", `{"user_id":"carol"}`); code != 200 {
		t.Fatalf("register: %d %s", code, body)
	}
	if code, body := post("/login", `{"user_id":"carol"}`); code != 200 {
		t.Fatalf("login: %d %s", code, body)
	}
	code, body := post("/tasks", `{"user_id":"carol","spec":{"kind":"query","query":{"category":"laptop"}}}`)
	if code != 200 || !strings.Contains(body, "results") {
		t.Fatalf("task: %d %s", code, body)
	}
	resp, err := ts.Client().Get(ts.URL + "/recommendations?user=carol&category=laptop&n=5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("recommendations: %d", resp.StatusCode)
	}
	// Error paths.
	if code, _ := post("/users", `{"user_id":"carol"}`); code != 409 {
		t.Errorf("duplicate register = %d, want 409", code)
	}
	if code, _ := post("/login", `{"user_id":"ghost"}`); code != 404 {
		t.Errorf("unknown login = %d, want 404", code)
	}
	if code, _ := post("/tasks", `{}`); code != 400 {
		t.Errorf("bad task = %d, want 400", code)
	}
	if code, _ := post("/logout", `{"user_id":"carol"}`); code != 200 {
		t.Errorf("logout = %d", code)
	}
}

func TestHottestAndTiedSalesFacade(t *testing.T) {
	p := demoPlatform(t)
	ctx := testCtx(t)
	alice, err := p.NewConsumer(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Buy(ctx, "lap1", 0, false); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Buy(ctx, "cam1", 0, false); err != nil {
		t.Fatal(err)
	}
	hot := p.Hottest(time.Now(), time.Hour, 5)
	if len(hot) != 2 {
		t.Fatalf("Hottest = %+v", hot)
	}
	ties := p.TiedSales("lap1", 1, 5)
	if len(ties) != 1 || ties[0].ProductID != "cam1" {
		t.Fatalf("TiedSales = %+v", ties)
	}
}

func TestHTTPTrendingAndTiedSales(t *testing.T) {
	p := demoPlatform(t)
	ctx := testCtx(t)
	alice, err := p.NewConsumer(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Buy(ctx, "lap1", 0, false); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p.HTTPHandler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/trending?window=1h&n=5")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 4096)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body[:n]), "lap1") {
		t.Errorf("trending: %d %s", resp.StatusCode, body[:n])
	}

	resp, err = ts.Client().Get(ts.URL + "/tiedsales?product=lap1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("tiedsales: %d", resp.StatusCode)
	}
	// Bad parameters rejected.
	resp, _ = ts.Client().Get(ts.URL + "/trending?window=banana")
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad window = %d, want 400", resp.StatusCode)
	}
	resp, _ = ts.Client().Get(ts.URL + "/tiedsales")
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("missing product = %d, want 400", resp.StatusCode)
	}
}

// TestWithStateDirSurvivesRestart exercises the public durability option:
// a platform reopened on the same state dir still knows the consumer and
// their community-derived recommendations.
func TestWithStateDirSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := testCtx(t)

	p := demoPlatform(t, WithStateDir(dir))
	alice, err := p.NewConsumer(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Buy(ctx, "lap1", 0, false); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2 := demoPlatform(t, WithStateDir(dir))
	// Account and profile are durable: login works without registration.
	if _, err := p2.Internal().Buyer().Login(ctx, "alice"); err != nil {
		t.Fatalf("login after restart: %v", err)
	}
	prof, err := p2.Internal().Engine.Profile("alice")
	if err != nil {
		t.Fatalf("profile lost across restart: %v", err)
	}
	if len(prof.Categories) == 0 {
		t.Error("recovered profile is empty")
	}
	if !p2.Internal().Engine.Snapshot().Purchases("alice")["lap1"] {
		t.Error("purchase lost across restart")
	}
}
