package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles agentlint into a temp dir once per test process.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "agentlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building agentlint: %v\n%s", err, out)
	}
	return bin
}

// TestVetToolProtocol drives the built binary exactly as the go command
// does: the -V=full identity probe, the -flags probe, and a full
// `go vet -vettool` pass over a real package, which must exit 0 on the
// clean tree.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and runs go vet")
	}
	bin := buildTool(t)

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	version := strings.TrimSpace(string(out))
	if !strings.Contains(version, " version ") || !strings.Contains(version, "buildID=") {
		t.Fatalf("-V=full output %q lacks the identity fields the go command keys its cache on", version)
	}

	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	if strings.TrimSpace(string(out)) != "[]" {
		t.Fatalf("-flags = %q, want []", out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./internal/ops/", "./internal/kvstore/")
	vet.Dir = "../.."
	var stderr bytes.Buffer
	vet.Stderr = &stderr
	if err := vet.Run(); err != nil {
		t.Fatalf("go vet -vettool on a clean tree: %v\n%s", err, stderr.String())
	}
}

// TestStandaloneList checks the multichecker's -list output names every
// analyzer in the suite.
func TestStandaloneList(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool")
	}
	bin := buildTool(t)
	out, err := exec.Command(bin, "-list").Output()
	if err != nil {
		t.Fatalf("-list: %v", err)
	}
	for _, name := range []string{"fencegate", "lockorder", "determinism", "buspublish", "wiretag", "errflow"} {
		if !strings.Contains(string(out), name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

// TestStandaloneFindsViolation checks the standalone mode's exit-1 path on
// a throwaway module with a planted violation.
func TestStandaloneFindsViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and a scratch module")
	}
	bin := buildTool(t)
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module agentrec\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "internal", "kvstore", "store.go"), `package kvstore

type Store struct{}

func (s *Store) Put(k, v []byte) error { return nil }

func drop(s *Store) {
	s.Put(nil, nil)
}
`)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("expected exit 1 on a planted violation, got success:\n%s", out)
	}
	if !strings.Contains(string(out), "[errflow]") || !strings.Contains(string(out), "Store.Put") {
		t.Fatalf("expected an errflow diagnostic for Store.Put, got:\n%s", out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
}
