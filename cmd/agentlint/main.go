// Command agentlint runs the repo's invariant analyzers (internal/analysis)
// over Go packages. It works two ways:
//
//	agentlint ./...                       # standalone, from the module root
//	go vet -vettool=$(which agentlint) ./...   # as the vet tool
//
// Standalone mode loads and type-checks packages itself (via `go list
// -export` and the gc importer) and exits 1 on findings. Vet-tool mode
// speaks the cmd/go unitchecker protocol: it answers -V=full and -flags,
// and analyzes one package per invocation from a JSON *.cfg handed to it
// by the go command, exiting 2 on findings.
//
// Findings are suppressed only by an in-source justification:
//
//	//agentlint:allow <analyzer> -- <reason>
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"agentrec/internal/analysis"
)

func main() {
	// Vet-tool protocol: the go command probes with -V=full, asks for the
	// tool's flag definitions with -flags, then invokes with a single
	// *.cfg argument per package.
	if len(os.Args) == 2 {
		switch {
		case os.Args[1] == "-V=full":
			printVersion()
			return
		case os.Args[1] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			runVetUnit(os.Args[1])
			return
		}
	}
	runStandalone()
}

// printVersion answers -V=full the way the go command's tool-ID probe
// expects: "<name> version <ver> buildID=<hex>", where the build ID keys
// vet's action cache — hashing the executable means a rebuilt agentlint
// invalidates stale vet results.
func printVersion() {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel buildID=%02x\n", name, h.Sum(nil))
}

// --- standalone mode ---

func runStandalone() {
	flags := flag.NewFlagSet("agentlint", flag.ExitOnError)
	list := flags.Bool("list", false, "print the analyzer suite and exit")
	asJSON := flags.Bool("json", false, "emit diagnostics as JSON")
	flags.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: agentlint [-list] [-json] packages...")
		flags.PrintDefaults()
	}
	_ = flags.Parse(os.Args[1:])

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Printf("%-12s %s\n", a.Name, doc)
		}
		return
	}
	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "agentlint:", err)
		os.Exit(1)
	}
	type jsonDiag struct {
		Pos      string `json:"pos"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	var out []jsonDiag
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(analyzers, pkg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "agentlint:", err)
			os.Exit(1)
		}
		for _, d := range diags {
			out = append(out, jsonDiag{
				Pos:      pkg.Fset.Position(d.Pos).String(),
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	} else {
		for _, d := range out {
			fmt.Printf("%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
		}
	}
	if len(out) > 0 {
		os.Exit(1)
	}
}

// --- vet-tool mode (cmd/go unitchecker protocol) ---

// vetConfig is the slice of the go command's vet JSON config the tool
// consumes. ImportMap translates source-level import strings to canonical
// package paths; PackageFile maps canonical paths to export-data files.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVetUnit(cfgPath string) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalf("reading vet config: %v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing vet config %s: %v", cfgPath, err)
	}
	// The go command requires the facts file to exist even though agentlint
	// exports no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fatalf("writing %s: %v", cfg.VetxOutput, err)
		}
	}
	// The go command hands vet the test build of each package — production
	// sources with _test.go files merged in (and ".test" / " [pkg.test]"
	// variant units under test binaries). The invariants target serving
	// code, so analyze production sources only; the _test.go files are
	// dropped before type-checking (they only add declarations, never ones
	// the production files depend on).
	if strings.Contains(cfg.ImportPath, " [") || strings.HasSuffix(cfg.ImportPath, ".test") {
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return
			}
			fatalf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	// An external _test package unit has nothing left after the filter.
	if len(files) == 0 {
		return
	}

	// The type checker asks the importer for source-level import strings;
	// translate them through ImportMap to canonical paths, then to the
	// export files the go command already compiled.
	exports := make(map[string]string, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	for src, canonical := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canonical]; ok {
			exports[src] = file
		}
	}
	imp := analysis.ExportImporter(fset, exports)
	pkg, err := analysis.CheckFiles(fset, files, cfg.ImportPath, cfg.Dir, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatalf("type-checking %s: %v", cfg.ImportPath, err)
	}

	diags, err := analysis.RunAnalyzers(analysis.All(), pkg)
	if err != nil {
		fatalf("%v", err)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "agentlint: "+format+"\n", args...)
	os.Exit(1)
}
