package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"agentrec/internal/atp"
	"agentrec/internal/catalog"
	"agentrec/internal/ops"
	"agentrec/internal/profile"
	"agentrec/internal/recommend"
	"agentrec/internal/replnet"
	"agentrec/internal/security"
)

// freeAddr reserves a loopback port and returns it as host:port. The
// listener is closed so the daemon can rebind; tests here run sequentially
// so the window is harmless.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func portOf(t *testing.T, addr string) int {
	t.Helper()
	_, p, err := net.SplitHostPort(addr)
	if err != nil {
		t.Fatal(err)
	}
	n, err := strconv.Atoi(p)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// startDaemon runs the daemon until cancel, delivering run's error.
func startDaemon(ctx context.Context, cfg daemonConfig) chan error {
	errCh := make(chan error, 1)
	go func() { errCh <- run(ctx, cfg) }()
	return errCh
}

// waitHTTP polls url until the daemon answers 200.
func waitHTTP(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("daemon never answered at %s", url)
}

// TestRunShutdownRestart is the clean-shutdown contract: cancelling the
// signal context (what SIGTERM does through signal.NotifyContext) makes run
// return nil with every listener and goroutine released — proven by
// starting a second daemon on the exact same ports.
func TestRunShutdownRestart(t *testing.T) {
	cfg := daemonConfig{
		markets:   1,
		coordAddr: freeAddr(t),
		marketIP:  "127.0.0.1",
		basePort:  portOf(t, freeAddr(t)),
		buyerAddr: freeAddr(t),
		httpAddr:  freeAddr(t),
		key:       "test-platform-key",
		shards:    4,
		events:    true, // shutdown must also drain the event plane
		verbose:   true, // and stop the trace watcher
	}
	for round := 0; round < 2; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		errCh := startDaemon(ctx, cfg)
		waitHTTP(t, "http://"+cfg.httpAddr+"/metrics/snapshot")
		cancel()
		select {
		case err := <-errCh:
			if err != nil {
				t.Fatalf("round %d: run returned %v, want nil", round, err)
			}
		case <-time.After(20 * time.Second):
			t.Fatalf("round %d: run did not return after cancel", round)
		}
	}
}

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	id   uint64
	kind string
	ev   ops.Event
}

// sseStream reads frames off a live /events SSE response.
type sseStream struct {
	resp *http.Response
	sc   *bufio.Scanner
}

func openSSE(t *testing.T, base string, lastID uint64) *sseStream {
	t.Helper()
	req, err := http.NewRequest("GET", base+"/events?format=sse&after=0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastID > 0 {
		req.URL.RawQuery = "format=sse"
		req.Header.Set("Last-Event-ID", strconv.FormatUint(lastID, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("GET /events = %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	return &sseStream{resp: resp, sc: sc}
}

func (s *sseStream) next(t *testing.T) sseFrame {
	t.Helper()
	cur := sseFrame{}
	for s.sc.Scan() {
		line := s.sc.Text()
		switch {
		case line == "":
			return cur
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.ParseUint(line[len("id: "):], 10, 64)
			if err != nil {
				t.Fatalf("bad id line %q: %v", line, err)
			}
			cur.id = id
		case strings.HasPrefix(line, "event: "):
			cur.kind = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(line[len("data: "):]), &cur.ev); err != nil {
				t.Fatalf("bad data line %q: %v", line, err)
			}
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	t.Fatalf("SSE stream ended: %v", s.sc.Err())
	return cur
}

func (s *sseStream) close() { s.resp.Body.Close() }

func postJSON(t *testing.T, url string, v any) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s = %d", url, resp.StatusCode)
	}
}

// userOwnedBy generates a username whose community shard is owned by the
// wanted server, matching the daemons' positional ownership map.
func userOwnedBy(t *testing.T, probe *recommend.Engine, owner, servers int, salt string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		name := fmt.Sprintf("user-%s-%d", salt, i)
		if recommend.OwnerOf(probe.ShardOf(name), servers) == owner {
			return name
		}
	}
	t.Fatal("no username found for owner")
	return ""
}

// burstProfile is one journal record of a few hundred bytes — well under
// the shrunken tail budget (so pulls serve records, not paged snapshots)
// but big enough that a burst of them takes several pulls to drain.
func burstProfile(user string) *profile.Profile {
	terms := make(map[string]float64, 8)
	for i := 0; i < 8; i++ {
		terms[fmt.Sprintf("interest-term-%02d-%s", i, user)] = float64(i+1) / 64
	}
	return &profile.Profile{
		UserID:     user,
		Alpha:      0.5,
		Categories: map[string]*profile.Category{"laptop": {Name: "laptop", Terms: terms}},
		Observed:   1,
		UpdatedAt:  time.Now(),
	}
}

// TestEventsOverTCP is the event plane end to end: two replicated platformd
// daemons on real sockets, the second one's SSE stream showing journal
// appends, replication lag rising and draining, recommendation deltas, and
// heartbeat snapshots — then a disconnect and a Last-Event-ID resume with
// no gap and no duplicate.
func TestEventsOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("two TCP daemons")
	}
	// Shrink the tail reply budget so the write burst below takes several
	// pulls to drain, making lag observable between them. Individual
	// records must stay under the budget or tails degrade to paged
	// snapshots (which pin at head and never observe lag).
	restore := replnet.SetMaxTailBytes(4 << 10)
	defer restore()

	buyer1, buyer2 := freeAddr(t), freeAddr(t)
	peers := []string{buyer1, buyer2}
	const shards = 4
	mk := func(self int, buyerAddr string) daemonConfig {
		return daemonConfig{
			markets:        1,
			coordAddr:      freeAddr(t),
			marketIP:       "127.0.0.1",
			basePort:       portOf(t, freeAddr(t)),
			buyerAddr:      buyerAddr,
			httpAddr:       freeAddr(t),
			key:            "test-platform-key",
			shards:         shards,
			events:         true,
			eventsInterval: 100 * time.Millisecond,
			repl:           &replConfig{servers: peers, self: self, interval: 150 * time.Millisecond},
		}
	}
	cfg1, cfg2 := mk(0, buyer1), mk(1, buyer2)

	ctx, cancel := context.WithCancel(context.Background())
	err1, err2 := startDaemon(ctx, cfg1), startDaemon(ctx, cfg2)
	defer func() {
		cancel()
		for _, ch := range []chan error{err1, err2} {
			select {
			case err := <-ch:
				if err != nil {
					t.Errorf("daemon returned %v", err)
				}
			case <-time.After(20 * time.Second):
				t.Error("daemon did not stop")
			}
		}
	}()
	base1 := "http://" + cfg1.httpAddr
	base2 := "http://" + cfg2.httpAddr
	waitHTTP(t, base1+"/metrics/snapshot")
	waitHTTP(t, base2+"/metrics/snapshot")

	// Wait for server 2's bootstrap pulls to finish (every tailed shard has
	// an epoch cursor). Bursting before that would be absorbed by the
	// bootstrap snapshot in one gulp and lag would never be observable.
	bootDeadline := time.Now().Add(20 * time.Second)
	for {
		resp, err := http.Get(base2 + "/metrics/snapshot")
		if err != nil {
			t.Fatal(err)
		}
		var snap ops.Snapshot
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		booted := len(snap.Servers) == 1 && snap.Servers[0].Replication != nil
		if booted {
			for _, sh := range snap.Servers[0].Replication.Shards {
				if sh.Epoch == 0 {
					booted = false
				}
			}
		}
		if booted {
			break
		}
		if time.Now().After(bootDeadline) {
			t.Fatal("server 2 never bootstrapped its tailed shards")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Watch server 2's plane: it owns the odd shards and tails the even
	// ones from server 1.
	stream := openSSE(t, base2, 0)
	defer stream.close()

	// A consumer on server 2's own shards: her buy journals locally and
	// her recommendations produce a delta.
	probe := recommend.NewEngine(catalog.New(), recommend.WithShards(shards))
	local := userOwnedBy(t, probe, 1, len(peers), "local")
	postJSON(t, base2+"/users", map[string]string{"user_id": local})
	postJSON(t, base2+"/login", map[string]string{"user_id": local})
	postJSON(t, base2+"/tasks", map[string]any{
		"user_id": local,
		"spec":    map[string]any{"kind": "buy", "product_id": "lap-ultra"},
	})
	resp, err := http.Get(base2 + "/recommendations?user=" + local + "&category=laptop")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// A burst of profile installs on server 1's shards, written straight to
	// the owner the way a forwarding router would. Server 2 tails them
	// through the shrunken budget: lag rises, then drains.
	client := atp.NewClient(security.NewSigner([]byte(cfg1.key)))
	writer := replnet.NewWriter(ctx, client, buyer1)
	for i := 0; i < 60; i++ {
		remote := userOwnedBy(t, probe, 0, len(peers), fmt.Sprintf("remote-%d", i))
		if err := writer.SetProfile(burstProfile(remote)); err != nil {
			t.Fatal(err)
		}
	}

	// Read the stream until every contract is witnessed: journal events,
	// a lag transition away from zero and one back to it, a rec delta, and
	// a heartbeat snapshot. The stream is replayed from the start (after=0)
	// so nothing published before the subscription is missed.
	var sawJournal, sawRecDelta, sawLagUp, sawLagDown, sawSnapshot bool
	var lastID uint64
	kindCounts := map[string]int{}
	deadline := time.After(60 * time.Second)
	for !(sawJournal && sawRecDelta && sawLagUp && sawLagDown && sawSnapshot) {
		select {
		case <-deadline:
			var snap bytes.Buffer
			if resp, err := http.Get(base2 + "/metrics/snapshot"); err == nil {
				snap.ReadFrom(resp.Body)
				resp.Body.Close()
			}
			t.Fatalf("timed out: journal=%v recDelta=%v lagUp=%v lagDown=%v snapshot=%v\nkinds seen: %v\nserver2 metrics: %s",
				sawJournal, sawRecDelta, sawLagUp, sawLagDown, sawSnapshot, kindCounts, snap.String())
		default:
		}
		fr := stream.next(t)
		kindCounts[fr.kind]++
		if fr.id != 0 {
			if fr.id <= lastID {
				t.Fatalf("SSE ids not increasing: %d after %d", fr.id, lastID)
			}
			lastID = fr.id
		}
		switch ops.Kind(fr.kind) {
		case ops.KindJournal:
			sawJournal = true
			if fr.ev.Journal.Server != 1 {
				t.Fatalf("journal event from server %d on server 2's bus", fr.ev.Journal.Server)
			}
		case ops.KindRecDelta:
			sawRecDelta = true
			if fr.ev.RecDelta.UserID != local {
				t.Fatalf("rec delta for %q, want %q", fr.ev.RecDelta.UserID, local)
			}
		case ops.KindLag:
			if fr.ev.Lag.PrevLagRecords == 0 && fr.ev.Lag.LagRecords > 0 {
				sawLagUp = true
			}
			if sawLagUp && fr.ev.Lag.LagRecords == 0 {
				sawLagDown = true
			}
			if owner := recommend.OwnerOf(fr.ev.Lag.Shard, len(peers)); owner != 0 {
				t.Fatalf("lag event for shard %d owned by %d; server 2 only tails server 1", fr.ev.Lag.Shard, owner)
			}
		case ops.KindSnapshot:
			sawSnapshot = true
			if fr.ev.Snapshot == nil || len(fr.ev.Snapshot.Servers) != 1 || fr.ev.Snapshot.Servers[0].Server != 1 {
				t.Fatalf("heartbeat snapshot = %+v, want server 1's view", fr.ev.Snapshot)
			}
			if fr.ev.Snapshot.Servers[0].Replication == nil {
				t.Fatal("heartbeat snapshot missing replication view")
			}
		case ops.KindDropped:
			t.Fatal("drop marker: the test consumer should keep up within the ring")
		}
	}
	stream.close() // disconnect mid-stream

	// Resume with Last-Event-ID: the next events continue exactly after the
	// last seen id — no gap, no duplicate, no drop marker — and keep
	// flowing (heartbeats guarantee traffic).
	resumed := openSSE(t, base2, lastID)
	defer resumed.close()
	want := lastID
	for i := 0; i < 3; i++ {
		fr := resumed.next(t)
		if fr.id == 0 {
			t.Fatalf("resumed frame %d is a drop marker; all events fit the replay ring", i)
		}
		want++
		if fr.id != want {
			t.Fatalf("resumed frame %d: id %d, want %d (gap or duplicate)", i, fr.id, want)
		}
	}
}
