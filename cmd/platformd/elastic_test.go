package main

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"agentrec/internal/atp"
	"agentrec/internal/catalog"
	"agentrec/internal/recommend"
	"agentrec/internal/replnet"
	"agentrec/internal/security"
)

// TestElasticOwnershipOverTCP boots two -coordinator daemons sharing one
// CA address: the first hosts the ownership authority, the second joins as
// a remote lease client. Both lease the static epoch-1 map, the owner-map
// consistency check passes, and epoch-stamped routed writes work in both
// directions.
func TestElasticOwnershipOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("two TCP daemons")
	}
	buyer1, buyer2 := freeAddr(t), freeAddr(t)
	peers := []string{buyer1, buyer2}
	coordAddr := freeAddr(t)
	const shards = 4
	mk := func(self int, buyerAddr string) daemonConfig {
		return daemonConfig{
			markets:       1,
			coordAddr:     coordAddr,
			marketIP:      "127.0.0.1",
			basePort:      portOf(t, freeAddr(t)),
			buyerAddr:     buyerAddr,
			httpAddr:      freeAddr(t),
			key:           "test-platform-key",
			shards:        shards,
			repl:          &replConfig{servers: peers, self: self, interval: 100 * time.Millisecond},
			elastic:       true,
			leaseInterval: 100 * time.Millisecond,
		}
	}
	cfg1, cfg2 := mk(0, buyer1), mk(1, buyer2)

	ctx, cancel := context.WithCancel(context.Background())
	err1 := startDaemon(ctx, cfg1)
	waitHTTP(t, "http://"+cfg1.httpAddr+"/metrics/snapshot")
	err2 := startDaemon(ctx, cfg2)
	waitHTTP(t, "http://"+cfg2.httpAddr+"/metrics/snapshot")
	defer func() {
		cancel()
		for _, ch := range []chan error{err1, err2} {
			select {
			case err := <-ch:
				if err != nil {
					t.Errorf("daemon returned %v", err)
				}
			case <-time.After(20 * time.Second):
				t.Error("daemon did not stop")
			}
		}
	}()

	// Both daemons answer the owner-map probe with the same static epoch-1
	// fingerprint — the same check their startup consistency task ran.
	client := atp.NewClient(security.NewSigner([]byte(cfg1.key)))
	want := recommend.StaticOwnership(shards, len(peers))
	for i, addr := range peers {
		info, err := replnet.NewPeer(client, addr).OwnerMap(t.Context())
		if err != nil {
			t.Fatalf("owner-map probe of daemon %d: %v", i, err)
		}
		if info.Hash != want.Hash() || info.Epoch != 1 || info.Self != i {
			t.Fatalf("daemon %d owner map = %+v, want static epoch-1 hash %s self %d", i, info, want.Hash(), i)
		}
	}

	// Epoch-stamped routed writes work in both directions: each daemon
	// registers a consumer whose shard the OTHER daemon owns, so the write
	// crosses the fenced wire.
	probe := recommend.NewEngine(catalog.New(), recommend.WithShards(shards))
	for self, base := range []string{"http://" + cfg1.httpAddr, "http://" + cfg2.httpAddr} {
		user := userOwnedBy(t, probe, 1-self, len(peers), fmt.Sprintf("elastic-%d", self))
		postJSON(t, base+"/users", map[string]string{"user_id": user})
		postJSON(t, base+"/login", map[string]string{"user_id": user})
		postJSON(t, base+"/tasks", map[string]any{
			"user_id": user,
			"spec":    map[string]any{"kind": "buy", "product_id": "lap-ultra"},
		})
		resp, err := http.Get(base + "/recommendations?user=" + user + "&category=laptop")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("recommendations for %s = %d", user, resp.StatusCode)
		}
	}
}

// TestOwnerMapMismatchFailsStartup: two statically replicated daemons that
// disagree on -engine-shards must fail their startup consistency check
// with a descriptive error instead of silently diverging replicas.
func TestOwnerMapMismatchFailsStartup(t *testing.T) {
	if testing.Short() {
		t.Skip("two TCP daemons")
	}
	restore := ownerMapProbeWindow
	ownerMapProbeWindow = 15 * time.Second
	defer func() { ownerMapProbeWindow = restore }()

	buyer1, buyer2 := freeAddr(t), freeAddr(t)
	peers := []string{buyer1, buyer2}
	mk := func(self int, buyerAddr string, shards int) daemonConfig {
		return daemonConfig{
			markets:   1,
			coordAddr: freeAddr(t),
			marketIP:  "127.0.0.1",
			basePort:  portOf(t, freeAddr(t)),
			buyerAddr: buyerAddr,
			httpAddr:  freeAddr(t),
			key:       "test-platform-key",
			shards:    shards,
			repl:      &replConfig{servers: peers, self: self, interval: 100 * time.Millisecond},
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err1 := startDaemon(ctx, mk(0, buyer1, 4))
	err2 := startDaemon(ctx, mk(1, buyer2, 8))

	// At least one side must detect the disagreement and exit with the
	// descriptive error; then release the other.
	var remaining chan error
	select {
	case err := <-err1:
		requireMismatch(t, err)
		remaining = err2
	case err := <-err2:
		requireMismatch(t, err)
		remaining = err1
	case <-time.After(30 * time.Second):
		t.Fatal("neither daemon failed its owner-map consistency check")
	}
	cancel()
	select {
	case err := <-remaining:
		if err != nil {
			requireMismatch(t, err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("daemon did not stop after cancel")
	}
}

func requireMismatch(t *testing.T, err error) {
	t.Helper()
	if err == nil || !strings.Contains(err.Error(), "owner-map mismatch") {
		t.Fatalf("daemon error = %v, want an owner-map mismatch", err)
	}
}
