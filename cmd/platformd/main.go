// platformd runs the full agent-based e-commerce platform of Fig 3.1 over
// real TCP sockets: every server (coordinator, marketplaces, buyer agent
// server) is its own aglet host with an ATP endpoint, agents migrate
// between them as signed network frames, and the consumer-facing web
// interface (HttpA) listens on -http.
//
// Usage:
//
//	platformd -markets=2 -http=127.0.0.1:8080
//
// Several platformd processes form a replicated deployment with
// -buyer-peers: the ordered list of every buyer server's ATP address.
// Shard s of the consumer community is owned by the s%N-th listed server;
// writes are forwarded to owners and every server tails the others'
// journals, so each answers recommendations from local state (see
// DESIGN.md "Replication" and the README's flag reference).
//
// Then, from another terminal:
//
//	curl -XPOST localhost:8080/users  -d '{"user_id":"alice"}'
//	curl -XPOST localhost:8080/login  -d '{"user_id":"alice"}'
//	curl -XPOST localhost:8080/tasks  -d '{"user_id":"alice","spec":{"kind":"query","query":{"category":"laptop"}}}'
//	curl      'localhost:8080/recommendations?user=alice&category=laptop'
//
// All hosts share one HMAC platform key (-key), matching the paper's
// closed-domain security model.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"agentrec/internal/aglet"
	"agentrec/internal/atp"
	"agentrec/internal/buyerserver"
	"agentrec/internal/catalog"
	"agentrec/internal/coordinator"
	"agentrec/internal/marketplace"
	"agentrec/internal/recommend"
	"agentrec/internal/replnet"
	"agentrec/internal/security"
	"agentrec/internal/trace"
)

// replConfig is the multi-buyer-server replication setup parsed from
// -buyer-peers: the ordered list of every buyer server's ATP address
// (ownership map: shard s is owned by servers[s % len(servers)]) and this
// process's index in it.
type replConfig struct {
	servers  []string
	self     int
	shards   int
	interval time.Duration
}

func main() {
	var (
		markets      = flag.Int("markets", 2, "number of marketplace servers")
		coordAddr    = flag.String("coord", "127.0.0.1:7001", "coordinator ATP address")
		marketIP     = flag.String("market-ip", "127.0.0.1", "marketplace bind IP")
		basePort     = flag.Int("market-base-port", 7101, "first marketplace ATP port")
		buyerAddr    = flag.String("buyer", "127.0.0.1:7201", "buyer agent server ATP address")
		buyerPeers   = flag.String("buyer-peers", "", "ordered ATP addresses of ALL buyer servers (including -buyer) for shard replication; empty = standalone")
		shards       = flag.Int("engine-shards", recommend.DefaultShards, "engine shard count (every buyer server must agree)")
		replPull     = flag.Duration("repl-interval", 200*time.Millisecond, "journal tail interval for shard replication")
		httpAddr     = flag.String("http", "127.0.0.1:8080", "consumer web interface address")
		key          = flag.String("key", "agentrec-demo-platform-key", "shared HMAC platform key")
		stateDir     = flag.String("state-dir", "", "durable state directory (empty = memory-only)")
		compactRatio = flag.Float64("compact-ratio", 4, "auto-compact the engine WAL when it exceeds this multiple of the live state (0 = manual only; needs -state-dir)")
		ann          = flag.Bool("ann", false, "LSH approximate neighbour search for large categories (shortlist + exact re-rank; off = exact scans)")
		annProbes    = flag.Int("ann-probes", 0, "LSH multi-probe width per hash table (0 = engine default; needs -ann)")
		verbose      = flag.Bool("trace", false, "print every workflow step")
	)
	flag.Parse()

	var repl *replConfig
	if *buyerPeers != "" {
		var servers []string
		self := -1
		for _, addr := range strings.Split(*buyerPeers, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				// An empty entry would silently skew the positional
				// ownership map (shard % N) on this server only.
				log.Fatalf("-buyer-peers %q contains an empty address", *buyerPeers)
			}
			if addr == *buyerAddr {
				self = len(servers)
			}
			servers = append(servers, addr)
		}
		if self < 0 {
			log.Fatalf("-buyer-peers %q does not contain -buyer %s", *buyerPeers, *buyerAddr)
		}
		repl = &replConfig{servers: servers, self: self, shards: *shards, interval: *replPull}
	}

	if err := run(*markets, *coordAddr, *marketIP, *basePort, *buyerAddr, *httpAddr, *key, *stateDir, *shards, *compactRatio, *ann, *annProbes, repl, *verbose); err != nil {
		log.Fatal(err)
	}
}

func run(markets int, coordAddr, marketIP string, basePort int, buyerAddr, httpAddr, key, stateDir string, shards int, compactRatio float64, ann bool, annProbes int, repl *replConfig, verbose bool) error {
	// ctx is the process lifecycle: cancelled on shutdown so in-flight
	// forwarded writes abort instead of stalling on their send timeout.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	signer := security.NewSigner([]byte(key))
	client := atp.NewClient(signer)
	tracer := trace.New()

	var servers []*atp.Server
	var hosts []*aglet.Host
	defer func() {
		for i := len(servers) - 1; i >= 0; i-- {
			servers[i].Close()
		}
		for i := len(hosts) - 1; i >= 0; i-- {
			hosts[i].Close()
		}
	}()
	up := func(addr string, reg *aglet.Registry) (*aglet.Host, *atp.Server, error) {
		host := aglet.NewHost(addr, reg, aglet.WithTransport(client))
		srv, err := atp.Serve(host, signer, addr)
		if err != nil {
			return nil, nil, fmt.Errorf("platformd: serving %s: %w", addr, err)
		}
		hosts = append(hosts, host)
		servers = append(servers, srv)
		return host, srv, nil
	}

	// Coordinator.
	coordReg := aglet.NewRegistry()
	coordHost, _, err := up(coordAddr, coordReg)
	if err != nil {
		return err
	}
	coord, err := coordinator.New(coordHost, coordReg, coordinator.WithTracer(tracer))
	if err != nil {
		return err
	}
	log.Printf("coordinator up at %s", coordAddr)

	// Marketplaces with a demo catalog.
	union := catalog.New()
	var marketAddrs []string
	for i := 0; i < markets; i++ {
		addr := fmt.Sprintf("%s:%d", marketIP, basePort+i)
		reg := aglet.NewRegistry()
		buyerserver.RegisterMBAType(reg)
		host, _, err := up(addr, reg)
		if err != nil {
			return err
		}
		cat := catalog.New()
		for _, p := range demoProducts(i) {
			if err := cat.Add(p); err != nil {
				return err
			}
			if err := union.Upsert(p); err != nil {
				return err
			}
		}
		if _, err := marketplace.NewServer(host, cat, reg); err != nil {
			return err
		}
		if err := coord.Register(coordinator.Registration{
			Kind: coordinator.KindMarketplace, Name: addr, Addr: addr,
		}); err != nil {
			return err
		}
		marketAddrs = append(marketAddrs, addr)
		log.Printf("marketplace %d up at %s (%d products)", i+1, addr, cat.Len())
	}

	// Buyer agent server, admitted through the Fig 4.1 workflow over TCP.
	buyerReg := aglet.NewRegistry()
	buyerHost, buyerSrv, err := up(buyerAddr, buyerReg)
	if err != nil {
		return err
	}
	engineOpts := []recommend.Option{recommend.WithNeighbors(10), recommend.WithShards(shards)}
	if ann {
		engineOpts = append(engineOpts, recommend.WithNeighborSearch(recommend.SearchLSH))
		if annProbes > 0 {
			engineOpts = append(engineOpts, recommend.WithANNProbes(annProbes))
		}
	}
	buyerOpts := []buyerserver.Option{
		buyerserver.WithTracer(tracer),
		buyerserver.WithMarkets(marketAddrs...),
	}
	if repl != nil {
		engineOpts = append(engineOpts, recommend.WithJournalFeed(0))
	}
	if stateDir != "" {
		engineOpts = append(engineOpts, recommend.WithPersistence(filepath.Join(stateDir, "engine")))
		buyerOpts = append(buyerOpts, buyerserver.WithStateDir(filepath.Join(stateDir, "buyer-server-1")))
		if compactRatio > 0 {
			// Keep the community WAL (and with it restart time) bounded. A
			// replicated server journals every record it applies from peers
			// and rewrites whole shards on snapshot catch-up, so it gets the
			// eager follower policy.
			pol := recommend.CompactionPolicy{Ratio: compactRatio}
			if repl != nil {
				pol = recommend.FollowerCompactionPolicy(compactRatio)
			}
			engineOpts = append(engineOpts, recommend.WithAutoCompaction(pol))
		}
	}
	engine, err := recommend.Open(union, engineOpts...)
	if err != nil {
		return err
	}
	defer engine.Close()
	if stateDir != "" {
		st := engine.Stats()
		log.Printf("recovered community from %s: %d consumers, %d indexed categories", stateDir, st.Users, st.IndexedCategories)
	}
	if repl != nil {
		// Serve our shards' journal to peer buyer servers, route writes to
		// shard owners, and tail the shards we do not own.
		buyerSrv.SetJournalHandler(replnet.Handler(engine, repl.self, len(repl.servers)))
		writers := make([]recommend.Writer, len(repl.servers))
		peers := make([]recommend.Peer, len(repl.servers))
		for i, addr := range repl.servers {
			if i == repl.self {
				continue
			}
			writers[i] = replnet.NewWriter(ctx, client, addr)
			peers[i] = replnet.NewPeer(client, addr)
		}
		router, err := recommend.NewRouter(engine, repl.self, writers)
		if err != nil {
			return err
		}
		buyerOpts = append(buyerOpts, buyerserver.WithCommunityWriter(router))
		replicator, err := recommend.NewReplicator(engine, repl.self, peers, recommend.WithPullInterval(repl.interval))
		if err != nil {
			return err
		}
		replicator.Start()
		defer replicator.Close()
		log.Printf("replicating %d shards across %d buyer servers (self=%d, tail every %v)",
			shards, len(repl.servers), repl.self, repl.interval)
	}
	caProxy := buyerHost.RemoteProxy(coordAddr, coordinator.CAID)
	buyer, err := buyerserver.New(buyerHost, buyerReg, engine, caProxy, buyerOpts...)
	if err != nil {
		return err
	}
	defer buyer.Close()
	log.Printf("buyer agent server up at %s (BSMA arrived by dispatch)", buyerAddr)

	if verbose {
		go watchTrace(tracer)
	}

	httpServer := &http.Server{Addr: httpAddr, Handler: buyer.HTTPHandler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()
	log.Printf("consumer web interface at http://%s", httpAddr)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-stop:
		log.Printf("received %v, shutting down", sig)
	}
	cancel() // abort in-flight forwarded writes before draining HTTP
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	return httpServer.Shutdown(shutCtx)
}

// watchTrace tails the workflow recorder, printing each step once.
func watchTrace(tracer *trace.Recorder) {
	seen := 0
	for {
		events := tracer.Events()
		for ; seen < len(events); seen++ {
			log.Printf("step %s", events[seen])
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// demoProducts stocks marketplace i with a small assortment; prices vary
// per market so price hunting is visible.
func demoProducts(i int) []*catalog.Product {
	bump := int64(i * 2500)
	return []*catalog.Product{
		{ID: "lap-ultra", Name: "UltraBook 13", Category: "laptop",
			Terms: map[string]float64{"ssd": 1, "light": 0.9}, PriceCents: 129900 + bump, SellerID: "acme", Stock: 10},
		{ID: "lap-game", Name: "GameBook 17", Category: "laptop",
			Terms: map[string]float64{"gpu": 1, "ssd": 0.5}, PriceCents: 219900 - bump, SellerID: "acme", Stock: 10},
		{ID: "cam-zoom", Name: "ZoomMaster", Category: "camera",
			Terms: map[string]float64{"zoom": 1, "lens": 0.7}, PriceCents: 89900 + bump, SellerID: "bmart", Stock: 10},
	}
}
