// platformd runs the full agent-based e-commerce platform of Fig 3.1 over
// real TCP sockets: every server (coordinator, marketplaces, buyer agent
// server) is its own aglet host with an ATP endpoint, agents migrate
// between them as signed network frames, and the consumer-facing web
// interface (HttpA) listens on -http.
//
// Usage:
//
//	platformd -markets=2 -http=127.0.0.1:8080
//
// Several platformd processes form a replicated deployment with
// -buyer-peers: the ordered list of every buyer server's ATP address.
// Shard s of the consumer community is owned by the s%N-th listed server;
// writes are forwarded to owners and every server tails the others'
// journals, so each answers recommendations from local state (see
// DESIGN.md "Replication" and the README's flag reference).
//
// Then, from another terminal:
//
//	curl -XPOST localhost:8080/users  -d '{"user_id":"alice"}'
//	curl -XPOST localhost:8080/login  -d '{"user_id":"alice"}'
//	curl -XPOST localhost:8080/tasks  -d '{"user_id":"alice","spec":{"kind":"query","query":{"category":"laptop"}}}'
//	curl      'localhost:8080/recommendations?user=alice&category=laptop'
//
// With -events the daemon exposes its event plane: structured journal,
// replication-lag, compaction, and recommendation-delta events plus
// periodic whole-server snapshots, streamed at GET /events (SSE or
// NDJSON) and summarized at GET /metrics/snapshot:
//
//	curl -N 'localhost:8080/events?kinds=lag,snapshot&format=sse'
//
// All hosts share one HMAC platform key (-key), matching the paper's
// closed-domain security model.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"agentrec/internal/aglet"
	"agentrec/internal/atp"
	"agentrec/internal/buyerserver"
	"agentrec/internal/catalog"
	"agentrec/internal/coordinator"
	"agentrec/internal/marketplace"
	"agentrec/internal/ops"
	"agentrec/internal/recommend"
	"agentrec/internal/replnet"
	"agentrec/internal/security"
	"agentrec/internal/trace"
)

// replConfig is the multi-buyer-server replication setup parsed from
// -buyer-peers: the ordered list of every buyer server's ATP address
// (ownership map: shard s is owned by servers[s % len(servers)]) and this
// process's index in it.
type replConfig struct {
	servers  []string
	self     int
	interval time.Duration
}

// daemonConfig is everything run needs, filled from flags by main and
// directly by tests.
type daemonConfig struct {
	markets        int
	coordAddr      string
	marketIP       string
	basePort       int
	buyerAddr      string
	httpAddr       string
	key            string
	stateDir       string
	shards         int
	compactRatio   float64
	ann            bool
	annProbes      int
	events         bool
	eventsInterval time.Duration
	repl           *replConfig
	verbose        bool
}

func main() {
	var (
		markets      = flag.Int("markets", 2, "number of marketplace servers")
		coordAddr    = flag.String("coord", "127.0.0.1:7001", "coordinator ATP address")
		marketIP     = flag.String("market-ip", "127.0.0.1", "marketplace bind IP")
		basePort     = flag.Int("market-base-port", 7101, "first marketplace ATP port")
		buyerAddr    = flag.String("buyer", "127.0.0.1:7201", "buyer agent server ATP address")
		buyerPeers   = flag.String("buyer-peers", "", "ordered ATP addresses of ALL buyer servers (including -buyer) for shard replication; empty = standalone")
		shards       = flag.Int("engine-shards", recommend.DefaultShards, "engine shard count (every buyer server must agree)")
		replPull     = flag.Duration("repl-interval", 200*time.Millisecond, "journal tail interval for shard replication")
		httpAddr     = flag.String("http", "127.0.0.1:8080", "consumer web interface address")
		key          = flag.String("key", "agentrec-demo-platform-key", "shared HMAC platform key")
		stateDir     = flag.String("state-dir", "", "durable state directory (empty = memory-only)")
		compactRatio = flag.Float64("compact-ratio", 4, "auto-compact the engine WAL when it exceeds this multiple of the live state (0 = manual only; needs -state-dir)")
		ann          = flag.Bool("ann", false, "LSH approximate neighbour search for large categories (shortlist + exact re-rank; off = exact scans)")
		annProbes    = flag.Int("ann-probes", 0, "LSH multi-probe width per hash table (0 = engine default; needs -ann)")
		events       = flag.Bool("events", false, "event plane: stream journal/lag/compaction/rec-delta events and snapshots at GET /events and /metrics/snapshot")
		eventsEvery  = flag.Duration("events-interval", 5*time.Second, "snapshot heartbeat period on the event plane (needs -events)")
		verbose      = flag.Bool("trace", false, "print every workflow step")
	)
	flag.Parse()

	var repl *replConfig
	if *buyerPeers != "" {
		var servers []string
		self := -1
		for _, addr := range strings.Split(*buyerPeers, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				// An empty entry would silently skew the positional
				// ownership map (shard % N) on this server only.
				log.Fatalf("-buyer-peers %q contains an empty address", *buyerPeers)
			}
			if addr == *buyerAddr {
				self = len(servers)
			}
			servers = append(servers, addr)
		}
		if self < 0 {
			log.Fatalf("-buyer-peers %q does not contain -buyer %s", *buyerPeers, *buyerAddr)
		}
		repl = &replConfig{servers: servers, self: self, interval: *replPull}
	}

	// One signal context owns the whole daemon: every long-running task
	// (HTTP, replication, heartbeat, trace watcher) stops when it cancels,
	// and run returns only after all of them have.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, daemonConfig{
		markets:        *markets,
		coordAddr:      *coordAddr,
		marketIP:       *marketIP,
		basePort:       *basePort,
		buyerAddr:      *buyerAddr,
		httpAddr:       *httpAddr,
		key:            *key,
		stateDir:       *stateDir,
		shards:         *shards,
		compactRatio:   *compactRatio,
		ann:            *ann,
		annProbes:      *annProbes,
		events:         *events,
		eventsInterval: *eventsEvery,
		repl:           repl,
		verbose:        *verbose,
	}); err != nil {
		log.Fatal(err)
	}
}

// taskGroup runs the daemon's long-lived tasks: the first failure cancels
// the shared context for everyone, Wait blocks until all have returned and
// reports that first failure. A hand-rolled errgroup so the module stays
// dependency-free.
type taskGroup struct {
	wg     sync.WaitGroup
	cancel context.CancelFunc
	once   sync.Once
	err    error
}

func newTaskGroup(parent context.Context) (*taskGroup, context.Context) {
	ctx, cancel := context.WithCancel(parent)
	return &taskGroup{cancel: cancel}, ctx
}

func (g *taskGroup) Go(fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := fn(); err != nil {
			g.once.Do(func() { g.err = err })
			g.cancel()
		}
	}()
}

func (g *taskGroup) Wait() error {
	g.wg.Wait()
	g.cancel()
	return g.err
}

func run(ctx context.Context, cfg daemonConfig) error {
	// ctx is the process lifecycle: cancelled on shutdown so in-flight
	// forwarded writes abort instead of stalling on their send timeout.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	signer := security.NewSigner([]byte(cfg.key))
	client := atp.NewClient(signer)
	tracer := trace.New()

	var servers []*atp.Server
	var hosts []*aglet.Host
	defer func() {
		for i := len(servers) - 1; i >= 0; i-- {
			servers[i].Close()
		}
		for i := len(hosts) - 1; i >= 0; i-- {
			hosts[i].Close()
		}
	}()
	up := func(addr string, reg *aglet.Registry) (*aglet.Host, *atp.Server, error) {
		host := aglet.NewHost(addr, reg, aglet.WithTransport(client))
		srv, err := atp.Serve(host, signer, addr)
		if err != nil {
			return nil, nil, fmt.Errorf("platformd: serving %s: %w", addr, err)
		}
		hosts = append(hosts, host)
		servers = append(servers, srv)
		return host, srv, nil
	}

	// Coordinator.
	coordReg := aglet.NewRegistry()
	coordHost, _, err := up(cfg.coordAddr, coordReg)
	if err != nil {
		return err
	}
	coord, err := coordinator.New(coordHost, coordReg, coordinator.WithTracer(tracer))
	if err != nil {
		return err
	}
	log.Printf("coordinator up at %s", cfg.coordAddr)

	// Marketplaces with a demo catalog.
	union := catalog.New()
	var marketAddrs []string
	for i := 0; i < cfg.markets; i++ {
		addr := fmt.Sprintf("%s:%d", cfg.marketIP, cfg.basePort+i)
		reg := aglet.NewRegistry()
		buyerserver.RegisterMBAType(reg)
		host, _, err := up(addr, reg)
		if err != nil {
			return err
		}
		cat := catalog.New()
		for _, p := range demoProducts(i) {
			if err := cat.Add(p); err != nil {
				return err
			}
			if err := union.Upsert(p); err != nil {
				return err
			}
		}
		if _, err := marketplace.NewServer(host, cat, reg); err != nil {
			return err
		}
		if err := coord.Register(coordinator.Registration{
			Kind: coordinator.KindMarketplace, Name: addr, Addr: addr,
		}); err != nil {
			return err
		}
		marketAddrs = append(marketAddrs, addr)
		log.Printf("marketplace %d up at %s (%d products)", i+1, addr, cat.Len())
	}

	// Buyer agent server, admitted through the Fig 4.1 workflow over TCP.
	buyerReg := aglet.NewRegistry()
	buyerHost, buyerSrv, err := up(cfg.buyerAddr, buyerReg)
	if err != nil {
		return err
	}
	self := 0
	if cfg.repl != nil {
		self = cfg.repl.self
	}
	var bus *ops.Bus
	engineOpts := []recommend.Option{recommend.WithNeighbors(10), recommend.WithShards(cfg.shards)}
	if cfg.events {
		bus = ops.NewBus()
		engineOpts = append(engineOpts, recommend.WithEventBus(bus, self))
	}
	if cfg.ann {
		engineOpts = append(engineOpts, recommend.WithNeighborSearch(recommend.SearchLSH))
		if cfg.annProbes > 0 {
			engineOpts = append(engineOpts, recommend.WithANNProbes(cfg.annProbes))
		}
	}
	buyerOpts := []buyerserver.Option{
		buyerserver.WithTracer(tracer),
		buyerserver.WithMarkets(marketAddrs...),
	}
	if cfg.repl != nil {
		engineOpts = append(engineOpts, recommend.WithJournalFeed(0))
	}
	if cfg.stateDir != "" {
		engineOpts = append(engineOpts, recommend.WithPersistence(filepath.Join(cfg.stateDir, "engine")))
		buyerOpts = append(buyerOpts, buyerserver.WithStateDir(filepath.Join(cfg.stateDir, "buyer-server-1")))
		if cfg.compactRatio > 0 {
			// Keep the community WAL (and with it restart time) bounded. A
			// replicated server journals every record it applies from peers
			// and rewrites whole shards on snapshot catch-up, so it gets the
			// eager follower policy.
			pol := recommend.CompactionPolicy{Ratio: cfg.compactRatio}
			if cfg.repl != nil {
				pol = recommend.FollowerCompactionPolicy(cfg.compactRatio)
			}
			engineOpts = append(engineOpts, recommend.WithAutoCompaction(pol))
		}
	}
	engine, err := recommend.Open(union, engineOpts...)
	if err != nil {
		return err
	}
	defer engine.Close()
	if cfg.stateDir != "" {
		st := engine.Stats()
		log.Printf("recovered community from %s: %d consumers, %d indexed categories", cfg.stateDir, st.Users, st.IndexedCategories)
	}
	var replicator *recommend.Replicator
	if cfg.repl != nil {
		// Serve our shards' journal to peer buyer servers, route writes to
		// shard owners, and tail the shards we do not own.
		buyerSrv.SetJournalHandler(replnet.Handler(engine, cfg.repl.self, len(cfg.repl.servers)))
		writers := make([]recommend.Writer, len(cfg.repl.servers))
		peers := make([]recommend.Peer, len(cfg.repl.servers))
		for i, addr := range cfg.repl.servers {
			if i == cfg.repl.self {
				continue
			}
			writers[i] = replnet.NewWriter(ctx, client, addr)
			peers[i] = replnet.NewPeer(client, addr)
		}
		router, err := recommend.NewRouter(engine, cfg.repl.self, writers)
		if err != nil {
			return err
		}
		buyerOpts = append(buyerOpts, buyerserver.WithCommunityWriter(router))
		ropts := []recommend.ReplicatorOption{recommend.WithPullInterval(cfg.repl.interval)}
		if bus != nil {
			ropts = append(ropts, recommend.WithReplicationEvents(bus, self))
		}
		replicator, err = recommend.NewReplicator(engine, cfg.repl.self, peers, ropts...)
		if err != nil {
			return err
		}
		defer replicator.Close()
		log.Printf("replicating %d shards across %d buyer servers (self=%d, tail every %v)",
			cfg.shards, len(cfg.repl.servers), cfg.repl.self, cfg.repl.interval)
	}
	// metrics is this server's slice of the unified stats view, served at
	// /metrics/snapshot and published by the heartbeat.
	metrics := func() ops.Snapshot {
		sv := ops.ServerSnapshot{Server: self, Engine: engine.Stats().EventView()}
		if replicator != nil {
			rv := replicator.Stats().EventView()
			sv.Replication = &rv
		}
		return ops.Snapshot{AtEpochMs: time.Now().UnixMilli(), Servers: []ops.ServerSnapshot{sv}}
	}
	buyerOpts = append(buyerOpts, buyerserver.WithMetrics(metrics))
	if bus != nil {
		buyerOpts = append(buyerOpts, buyerserver.WithEventBus(bus))
	}
	caProxy := buyerHost.RemoteProxy(cfg.coordAddr, coordinator.CAID)
	buyer, err := buyerserver.New(buyerHost, buyerReg, engine, caProxy, buyerOpts...)
	if err != nil {
		return err
	}
	defer buyer.Close()
	log.Printf("buyer agent server up at %s (BSMA arrived by dispatch)", cfg.buyerAddr)

	// Everything fallible is built; from here the daemon is one task group
	// on one context. The first task failure — or the signal context —
	// stops every task, and run returns only after all of them have.
	httpServer := &http.Server{Addr: cfg.httpAddr, Handler: buyer.HTTPHandler()}
	g, gctx := newTaskGroup(ctx)
	g.Go(func() error {
		err := httpServer.ListenAndServe()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	})
	g.Go(func() error {
		<-gctx.Done()
		if bus != nil {
			// Event streams hold their HTTP handlers open; closing the bus
			// drains them so Shutdown is not stuck behind SSE consumers.
			bus.Close()
		}
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer shutCancel()
		return httpServer.Shutdown(shutCtx)
	})
	if replicator != nil {
		g.Go(func() error {
			if err := replicator.Run(gctx); !errors.Is(err, context.Canceled) {
				return err
			}
			return nil
		})
	}
	if bus != nil {
		interval := cfg.eventsInterval
		if interval <= 0 {
			interval = 5 * time.Second
		}
		g.Go(func() error {
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-gctx.Done():
					return nil
				case <-t.C:
				}
				snap := metrics()
				bus.Publish(ops.Event{Kind: ops.KindSnapshot, AtEpochMs: snap.AtEpochMs, Snapshot: &snap})
			}
		})
		log.Printf("event plane on: GET http://%s/events (snapshot every %v)", cfg.httpAddr, interval)
	}
	if cfg.verbose {
		g.Go(func() error {
			watchTrace(gctx, tracer)
			return nil
		})
	}
	log.Printf("consumer web interface at http://%s", cfg.httpAddr)
	return g.Wait()
}

// watchTrace tails the workflow recorder until ctx cancels, printing each
// step once.
func watchTrace(ctx context.Context, tracer *trace.Recorder) {
	t := time.NewTicker(100 * time.Millisecond)
	defer t.Stop()
	seen := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		events := tracer.Events()
		for ; seen < len(events); seen++ {
			log.Printf("step %s", events[seen])
		}
	}
}

// demoProducts stocks marketplace i with a small assortment; prices vary
// per market so price hunting is visible.
func demoProducts(i int) []*catalog.Product {
	bump := int64(i * 2500)
	return []*catalog.Product{
		{ID: "lap-ultra", Name: "UltraBook 13", Category: "laptop",
			Terms: map[string]float64{"ssd": 1, "light": 0.9}, PriceCents: 129900 + bump, SellerID: "acme", Stock: 10},
		{ID: "lap-game", Name: "GameBook 17", Category: "laptop",
			Terms: map[string]float64{"gpu": 1, "ssd": 0.5}, PriceCents: 219900 - bump, SellerID: "acme", Stock: 10},
		{ID: "cam-zoom", Name: "ZoomMaster", Category: "camera",
			Terms: map[string]float64{"zoom": 1, "lens": 0.7}, PriceCents: 89900 + bump, SellerID: "bmart", Stock: 10},
	}
}
