// platformd runs the full agent-based e-commerce platform of Fig 3.1 over
// real TCP sockets: every server (coordinator, marketplaces, buyer agent
// server) is its own aglet host with an ATP endpoint, agents migrate
// between them as signed network frames, and the consumer-facing web
// interface (HttpA) listens on -http.
//
// Usage:
//
//	platformd -markets=2 -http=127.0.0.1:8080
//
// Several platformd processes form a replicated deployment with
// -buyer-peers: the ordered list of every buyer server's ATP address.
// Shard s of the consumer community is owned by the s%N-th listed server;
// writes are forwarded to owners and every server tails the others'
// journals, so each answers recommendations from local state (see
// DESIGN.md "Replication" and the README's flag reference).
//
// Then, from another terminal:
//
//	curl -XPOST localhost:8080/users  -d '{"user_id":"alice"}'
//	curl -XPOST localhost:8080/login  -d '{"user_id":"alice"}'
//	curl -XPOST localhost:8080/tasks  -d '{"user_id":"alice","spec":{"kind":"query","query":{"category":"laptop"}}}'
//	curl      'localhost:8080/recommendations?user=alice&category=laptop'
//
// With -events the daemon exposes its event plane: structured journal,
// replication-lag, compaction, and recommendation-delta events plus
// periodic whole-server snapshots, streamed at GET /events (SSE or
// NDJSON) and summarized at GET /metrics/snapshot:
//
//	curl -N 'localhost:8080/events?kinds=lag,snapshot&format=sse'
//
// All hosts share one HMAC platform key (-key), matching the paper's
// closed-domain security model.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"agentrec/internal/aglet"
	"agentrec/internal/atp"
	"agentrec/internal/buyerserver"
	"agentrec/internal/catalog"
	"agentrec/internal/coordinator"
	"agentrec/internal/marketplace"
	"agentrec/internal/ops"
	"agentrec/internal/recommend"
	"agentrec/internal/replnet"
	"agentrec/internal/security"
	"agentrec/internal/trace"
)

// replConfig is the multi-buyer-server replication setup parsed from
// -buyer-peers: the ordered list of every buyer server's ATP address
// (ownership map: shard s is owned by servers[s % len(servers)]) and this
// process's index in it.
type replConfig struct {
	servers  []string
	self     int
	interval time.Duration
}

// daemonConfig is everything run needs, filled from flags by main and
// directly by tests.
type daemonConfig struct {
	markets        int
	coordAddr      string
	marketIP       string
	basePort       int
	buyerAddr      string
	httpAddr       string
	key            string
	stateDir       string
	shards         int
	compactRatio   float64
	ann            bool
	annProbes      int
	events         bool
	eventsInterval time.Duration
	repl           *replConfig
	elastic        bool
	leaseInterval  time.Duration
	verbose        bool
}

func main() {
	var (
		markets      = flag.Int("markets", 2, "number of marketplace servers")
		coordAddr    = flag.String("coord", "127.0.0.1:7001", "coordinator ATP address")
		marketIP     = flag.String("market-ip", "127.0.0.1", "marketplace bind IP")
		basePort     = flag.Int("market-base-port", 7101, "first marketplace ATP port")
		buyerAddr    = flag.String("buyer", "127.0.0.1:7201", "buyer agent server ATP address")
		buyerPeers   = flag.String("buyer-peers", "", "ordered ATP addresses of ALL buyer servers (including -buyer) for shard replication; empty = standalone")
		shards       = flag.Int("engine-shards", recommend.DefaultShards, "engine shard count (every buyer server must agree)")
		replPull     = flag.Duration("repl-interval", 200*time.Millisecond, "journal tail interval for shard replication")
		httpAddr     = flag.String("http", "127.0.0.1:8080", "consumer web interface address")
		key          = flag.String("key", "agentrec-demo-platform-key", "shared HMAC platform key")
		stateDir     = flag.String("state-dir", "", "durable state directory (empty = memory-only)")
		compactRatio = flag.Float64("compact-ratio", 4, "auto-compact the engine WAL when it exceeds this multiple of the live state (0 = manual only; needs -state-dir)")
		ann          = flag.Bool("ann", false, "LSH approximate neighbour search for large categories (shortlist + exact re-rank; off = exact scans)")
		annProbes    = flag.Int("ann-probes", 0, "LSH multi-probe width per hash table (0 = engine default; needs -ann)")
		events       = flag.Bool("events", false, "event plane: stream journal/lag/compaction/rec-delta events and snapshots at GET /events and /metrics/snapshot")
		eventsEvery  = flag.Duration("events-interval", 5*time.Second, "snapshot heartbeat period on the event plane (needs -events)")
		elastic      = flag.Bool("coordinator", false, "coordinator-mediated elastic shard ownership: lease the ownership map from the CA at -coord and epoch-fence every replication frame (all daemons must share one -coord address; needs -buyer-peers)")
		leaseEvery   = flag.Duration("lease-interval", time.Second, "ownership lease renewal cadence; the CA declares a server dead after 3 missed renewals (needs -coordinator)")
		verbose      = flag.Bool("trace", false, "print every workflow step")
	)
	flag.Parse()

	var repl *replConfig
	if *buyerPeers != "" {
		var servers []string
		self := -1
		for _, addr := range strings.Split(*buyerPeers, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				// An empty entry would silently skew the positional
				// ownership map (shard % N) on this server only.
				log.Fatalf("-buyer-peers %q contains an empty address", *buyerPeers)
			}
			if addr == *buyerAddr {
				self = len(servers)
			}
			servers = append(servers, addr)
		}
		if self < 0 {
			log.Fatalf("-buyer-peers %q does not contain -buyer %s", *buyerPeers, *buyerAddr)
		}
		repl = &replConfig{servers: servers, self: self, interval: *replPull}
	}

	// One signal context owns the whole daemon: every long-running task
	// (HTTP, replication, heartbeat, trace watcher) stops when it cancels,
	// and run returns only after all of them have.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, daemonConfig{
		markets:        *markets,
		coordAddr:      *coordAddr,
		marketIP:       *marketIP,
		basePort:       *basePort,
		buyerAddr:      *buyerAddr,
		httpAddr:       *httpAddr,
		key:            *key,
		stateDir:       *stateDir,
		shards:         *shards,
		compactRatio:   *compactRatio,
		ann:            *ann,
		annProbes:      *annProbes,
		events:         *events,
		eventsInterval: *eventsEvery,
		repl:           repl,
		elastic:        *elastic,
		leaseInterval:  *leaseEvery,
		verbose:        *verbose,
	}); err != nil {
		log.Fatal(err)
	}
}

// taskGroup runs the daemon's long-lived tasks: the first failure cancels
// the shared context for everyone, Wait blocks until all have returned and
// reports that first failure. A hand-rolled errgroup so the module stays
// dependency-free.
type taskGroup struct {
	wg     sync.WaitGroup
	cancel context.CancelFunc
	once   sync.Once
	err    error
}

func newTaskGroup(parent context.Context) (*taskGroup, context.Context) {
	ctx, cancel := context.WithCancel(parent)
	return &taskGroup{cancel: cancel}, ctx
}

func (g *taskGroup) Go(fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := fn(); err != nil {
			g.once.Do(func() { g.err = err })
			g.cancel()
		}
	}()
}

func (g *taskGroup) Wait() error {
	g.wg.Wait()
	g.cancel()
	return g.err
}

func run(ctx context.Context, cfg daemonConfig) error {
	// ctx is the process lifecycle: cancelled on shutdown so in-flight
	// forwarded writes abort instead of stalling on their send timeout.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	if cfg.elastic && cfg.repl == nil {
		return errors.New("platformd: -coordinator requires -buyer-peers (elastic ownership is a property of a replicated deployment)")
	}
	if cfg.leaseInterval <= 0 {
		cfg.leaseInterval = time.Second
	}

	signer := security.NewSigner([]byte(cfg.key))
	client := atp.NewClient(signer)
	tracer := trace.New()

	var servers []*atp.Server
	var hosts []*aglet.Host
	defer func() {
		for i := len(servers) - 1; i >= 0; i-- {
			servers[i].Close()
		}
		for i := len(hosts) - 1; i >= 0; i-- {
			hosts[i].Close()
		}
	}()
	up := func(addr string, reg *aglet.Registry) (*aglet.Host, *atp.Server, error) {
		host := aglet.NewHost(addr, reg, aglet.WithTransport(client))
		srv, err := atp.Serve(host, signer, addr)
		if err != nil {
			return nil, nil, fmt.Errorf("platformd: serving %s: %w", addr, err)
		}
		hosts = append(hosts, host)
		servers = append(servers, srv)
		return host, srv, nil
	}

	// Coordinator. A standalone or statically replicated daemon hosts its
	// own; a -coordinator deployment shares ONE CA address across daemons —
	// the first to bind hosts the ownership authority, everyone else joins
	// it over the wire (registration, admission, and lease renewals all
	// speak to the same CA).
	coordReg := aglet.NewRegistry()
	var coord *coordinator.Coordinator
	coordHost, _, err := up(cfg.coordAddr, coordReg)
	if err != nil {
		if !cfg.elastic {
			return err
		}
		log.Printf("coordinator %s already hosted elsewhere; joining it as a client", cfg.coordAddr)
	} else {
		if coord, err = coordinator.New(coordHost, coordReg, coordinator.WithTracer(tracer)); err != nil {
			return err
		}
		log.Printf("coordinator up at %s", cfg.coordAddr)
		if cfg.elastic {
			auth, err := coordinator.NewOwnershipAuthority(coordinator.OwnershipConfig{
				Shards:   cfg.shards,
				Servers:  len(cfg.repl.servers),
				LeaseTTL: 3 * cfg.leaseInterval,
			})
			if err != nil {
				return err
			}
			coord.AttachOwnership(auth)
			log.Printf("ownership authority attached: %d shards / %d servers, lease TTL %v", cfg.shards, len(cfg.repl.servers), 3*cfg.leaseInterval)
		}
	}
	// register adds a directory entry — in-process when this daemon hosts
	// the CA, over the wire (with retries while the hosting daemon boots)
	// otherwise.
	register := func(from *aglet.Host, entry coordinator.Registration) error {
		if coord != nil {
			return coord.Register(entry)
		}
		data, err := json.Marshal(entry)
		if err != nil {
			return fmt.Errorf("platformd: encoding registration: %w", err)
		}
		proxy := from.RemoteProxy(cfg.coordAddr, coordinator.CAID)
		deadline := time.Now().Add(30 * time.Second)
		for {
			sctx, scancel := context.WithTimeout(ctx, 5*time.Second)
			_, err := proxy.Send(sctx, aglet.Message{Kind: coordinator.KindRegister, Data: data})
			scancel()
			if err == nil || ctx.Err() != nil || time.Now().After(deadline) {
				return err
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(250 * time.Millisecond):
			}
		}
	}

	// Marketplaces with a demo catalog.
	union := catalog.New()
	var marketAddrs []string
	for i := 0; i < cfg.markets; i++ {
		addr := fmt.Sprintf("%s:%d", cfg.marketIP, cfg.basePort+i)
		reg := aglet.NewRegistry()
		buyerserver.RegisterMBAType(reg)
		host, _, err := up(addr, reg)
		if err != nil {
			return err
		}
		cat := catalog.New()
		for _, p := range demoProducts(i) {
			if err := cat.Add(p); err != nil {
				return err
			}
			if err := union.Upsert(p); err != nil {
				return err
			}
		}
		if _, err := marketplace.NewServer(host, cat, reg); err != nil {
			return err
		}
		if err := register(host, coordinator.Registration{
			Kind: coordinator.KindMarketplace, Name: addr, Addr: addr,
		}); err != nil {
			return err
		}
		marketAddrs = append(marketAddrs, addr)
		log.Printf("marketplace %d up at %s (%d products)", i+1, addr, cat.Len())
	}

	// Buyer agent server, admitted through the Fig 4.1 workflow over TCP.
	buyerReg := aglet.NewRegistry()
	buyerHost, buyerSrv, err := up(cfg.buyerAddr, buyerReg)
	if err != nil {
		return err
	}
	self := 0
	if cfg.repl != nil {
		self = cfg.repl.self
	}
	var bus *ops.Bus
	engineOpts := []recommend.Option{recommend.WithNeighbors(10), recommend.WithShards(cfg.shards)}
	if cfg.events {
		bus = ops.NewBus()
		engineOpts = append(engineOpts, recommend.WithEventBus(bus, self))
	}
	if cfg.ann {
		engineOpts = append(engineOpts, recommend.WithNeighborSearch(recommend.SearchLSH))
		if cfg.annProbes > 0 {
			engineOpts = append(engineOpts, recommend.WithANNProbes(cfg.annProbes))
		}
	}
	buyerOpts := []buyerserver.Option{
		buyerserver.WithTracer(tracer),
		buyerserver.WithMarkets(marketAddrs...),
	}
	if cfg.repl != nil {
		engineOpts = append(engineOpts, recommend.WithJournalFeed(0))
	}
	if cfg.stateDir != "" {
		engineOpts = append(engineOpts, recommend.WithPersistence(filepath.Join(cfg.stateDir, "engine")))
		buyerOpts = append(buyerOpts, buyerserver.WithStateDir(filepath.Join(cfg.stateDir, "buyer-server-1")))
		if cfg.compactRatio > 0 {
			// Keep the community WAL (and with it restart time) bounded. A
			// replicated server journals every record it applies from peers
			// and rewrites whole shards on snapshot catch-up, so it gets the
			// eager follower policy.
			pol := recommend.CompactionPolicy{Ratio: cfg.compactRatio}
			if cfg.repl != nil {
				pol = recommend.FollowerCompactionPolicy(cfg.compactRatio)
			}
			engineOpts = append(engineOpts, recommend.WithAutoCompaction(pol))
		}
	}
	engine, err := recommend.Open(union, engineOpts...)
	if err != nil {
		return err
	}
	defer engine.Close()
	if cfg.stateDir != "" {
		st := engine.Stats()
		log.Printf("recovered community from %s: %d consumers, %d indexed categories", cfg.stateDir, st.Users, st.IndexedCategories)
	}
	var replicator *recommend.Replicator
	var owners *recommend.OwnershipTable
	if cfg.repl != nil {
		// Serve our shards' journal to peer buyer servers, route writes to
		// shard owners, and tail the shards we do not own. With
		// -coordinator every side of the wire is epoch-fenced through this
		// server's leased ownership table, which starts from the same
		// static epoch-1 map on every daemon so routing is consistent
		// before the first lease lands.
		var wireOpts []replnet.Option
		if cfg.elastic {
			owners = recommend.NewOwnershipTable(recommend.StaticOwnership(cfg.shards, len(cfg.repl.servers)))
			wireOpts = append(wireOpts, replnet.WithOwnership(owners))
		}
		buyerSrv.SetJournalHandler(replnet.Handler(engine, cfg.repl.self, len(cfg.repl.servers), wireOpts...))
		writers := make([]recommend.Writer, len(cfg.repl.servers))
		peers := make([]recommend.Peer, len(cfg.repl.servers))
		for i, addr := range cfg.repl.servers {
			if i == cfg.repl.self {
				continue
			}
			writers[i] = replnet.NewWriter(ctx, client, addr, wireOpts...)
			peers[i] = replnet.NewPeer(client, addr, wireOpts...)
		}
		var routerOpts []recommend.RouterOption
		if owners != nil {
			routerOpts = append(routerOpts, recommend.RouteWithOwnership(owners))
		}
		router, err := recommend.NewRouter(engine, cfg.repl.self, writers, routerOpts...)
		if err != nil {
			return err
		}
		buyerOpts = append(buyerOpts, buyerserver.WithCommunityWriter(router))
		ropts := []recommend.ReplicatorOption{recommend.WithPullInterval(cfg.repl.interval)}
		if bus != nil {
			ropts = append(ropts, recommend.WithReplicationEvents(bus, self))
		}
		if owners != nil {
			ropts = append(ropts, recommend.PullWithOwnership(owners))
		}
		replicator, err = recommend.NewReplicator(engine, cfg.repl.self, peers, ropts...)
		if err != nil {
			return err
		}
		defer replicator.Close()
		log.Printf("replicating %d shards across %d buyer servers (self=%d, tail every %v)",
			cfg.shards, len(cfg.repl.servers), cfg.repl.self, cfg.repl.interval)
	}
	// metrics is this server's slice of the unified stats view, served at
	// /metrics/snapshot and published by the heartbeat.
	metrics := func() ops.Snapshot {
		sv := ops.ServerSnapshot{Server: self, Engine: engine.Stats().EventView()}
		if replicator != nil {
			rv := replicator.Stats().EventView()
			sv.Replication = &rv
		}
		return ops.Snapshot{AtEpochMs: time.Now().UnixMilli(), Servers: []ops.ServerSnapshot{sv}}
	}
	buyerOpts = append(buyerOpts, buyerserver.WithMetrics(metrics))
	if bus != nil {
		buyerOpts = append(buyerOpts, buyerserver.WithEventBus(bus))
	}
	caProxy := buyerHost.RemoteProxy(cfg.coordAddr, coordinator.CAID)
	buyer, err := buyerserver.New(buyerHost, buyerReg, engine, caProxy, buyerOpts...)
	if err != nil {
		return err
	}
	defer buyer.Close()
	log.Printf("buyer agent server up at %s (BSMA arrived by dispatch)", cfg.buyerAddr)

	// Everything fallible is built; from here the daemon is one task group
	// on one context. The first task failure — or the signal context —
	// stops every task, and run returns only after all of them have.
	httpServer := &http.Server{Addr: cfg.httpAddr, Handler: buyer.HTTPHandler()}
	g, gctx := newTaskGroup(ctx)
	g.Go(func() error {
		err := httpServer.ListenAndServe()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	})
	g.Go(func() error {
		<-gctx.Done()
		if bus != nil {
			// Event streams hold their HTTP handlers open; closing the bus
			// drains them so Shutdown is not stuck behind SSE consumers.
			bus.Close()
		}
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer shutCancel()
		return httpServer.Shutdown(shutCtx)
	})
	if replicator != nil {
		g.Go(func() error {
			if err := replicator.Run(gctx); !errors.Is(err, context.Canceled) {
				return err
			}
			return nil
		})
		// Startup map-consistency check: every reachable peer must agree
		// on the ownership map before divergence can do damage.
		g.Go(func() error { return checkOwnerMaps(gctx, client, owners, cfg) })
	}
	if owners != nil {
		// Lease client: renew against the shared CA (local or remote — the
		// same wire either way), adopt map transitions into this server's
		// table, and publish each adopted transition on the event plane.
		leaseCA := buyerHost.RemoteProxy(cfg.coordAddr, coordinator.CAID)
		lc := &coordinator.LeaseClient{
			Self:  cfg.repl.self,
			Table: owners,
			Renew: func(rctx context.Context, server int, applied []uint64) (coordinator.LeaseGrant, error) {
				data, err := json.Marshal(coordinator.LeaseRequest{Server: server, Applied: applied})
				if err != nil {
					return coordinator.LeaseGrant{}, fmt.Errorf("platformd: encoding lease renewal: %w", err)
				}
				sctx, scancel := context.WithTimeout(rctx, 5*time.Second)
				defer scancel()
				reply, err := leaseCA.Send(sctx, aglet.Message{Kind: coordinator.KindLease, Data: data})
				if err != nil {
					return coordinator.LeaseGrant{}, err
				}
				var grant coordinator.LeaseGrant
				if err := json.Unmarshal(reply.Data, &grant); err != nil {
					return coordinator.LeaseGrant{}, fmt.Errorf("platformd: decoding lease grant: %w", err)
				}
				return grant, nil
			},
			Applied:  replicator.AppliedSeqs,
			Interval: cfg.leaseInterval,
			OnError:  func(err error) { log.Printf("ownership lease renewal: %v", err) },
		}
		if bus != nil {
			lc.Publish = func(ev ops.Event) { bus.Publish(ev) }
		}
		g.Go(func() error { lc.Run(gctx); return nil })
		log.Printf("elastic ownership on: leasing the map from %s every %v", cfg.coordAddr, cfg.leaseInterval)
	}
	if bus != nil {
		interval := cfg.eventsInterval
		if interval <= 0 {
			interval = 5 * time.Second
		}
		g.Go(func() error {
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-gctx.Done():
					return nil
				case <-t.C:
				}
				snap := metrics()
				bus.Publish(ops.Event{Kind: ops.KindSnapshot, AtEpochMs: snap.AtEpochMs, Snapshot: &snap})
			}
		})
		log.Printf("event plane on: GET http://%s/events (snapshot every %v)", cfg.httpAddr, interval)
	}
	if cfg.verbose {
		g.Go(func() error {
			watchTrace(gctx, tracer)
			return nil
		})
	}
	log.Printf("consumer web interface at http://%s", cfg.httpAddr)
	return g.Wait()
}

// ownerMapProbeWindow bounds how long checkOwnerMaps keeps retrying an
// unreachable peer before skipping it. A var so tests can shrink it.
var ownerMapProbeWindow = 60 * time.Second

// checkOwnerMaps verifies at startup that every reachable peer agrees on
// the ownership map this server computed: same -engine-shards, same
// -buyer-peers length, a different self index, and — while both sides
// still sit at the static epoch-1 map — the same map hash. Any of these
// disagreeing (a peer list in a different order, a different shard count)
// would otherwise silently diverge replicas at runtime; failing the daemon
// with both views named is the cheap alternative. A peer that never
// answers inside the probe window is skipped, not failed: it may simply
// not have started yet, and it runs the same check against us when it
// does.
func checkOwnerMaps(ctx context.Context, client *atp.Client, owners *recommend.OwnershipTable, cfg daemonConfig) error {
	localMap := func() recommend.OwnershipMap {
		if owners != nil {
			return owners.Current()
		}
		return recommend.StaticOwnership(cfg.shards, len(cfg.repl.servers))
	}
	deadline := time.Now().Add(ownerMapProbeWindow)
	agreed := 0
	for i, addr := range cfg.repl.servers {
		if i == cfg.repl.self {
			continue
		}
		peer := replnet.NewPeer(client, addr)
		for {
			pctx, pcancel := context.WithTimeout(ctx, 2*time.Second)
			info, err := peer.OwnerMap(pctx)
			pcancel()
			if err == nil {
				if info.Shards != cfg.shards {
					return fmt.Errorf("platformd: owner-map mismatch with %s: it runs %d engine shards, this server %d — every buyer server must agree on -engine-shards", addr, info.Shards, cfg.shards)
				}
				if info.Servers != len(cfg.repl.servers) {
					return fmt.Errorf("platformd: owner-map mismatch with %s: it lists %d buyer servers, this server %d — do the -buyer-peers lists agree?", addr, info.Servers, len(cfg.repl.servers))
				}
				if info.Self == cfg.repl.self {
					return fmt.Errorf("platformd: owner-map mismatch with %s: it also claims index %d in -buyer-peers — the lists must agree on order", addr, info.Self)
				}
				if local := localMap(); local.Epoch == 1 && info.Epoch == 1 && info.Hash != local.Hash() {
					return fmt.Errorf("platformd: owner-map mismatch with %s: its epoch-1 map hashes %s, this server's %s — do the -buyer-peers lists agree on order and -engine-shards on value?", addr, info.Hash, local.Hash())
				}
				agreed++
				break
			}
			if ctx.Err() != nil {
				return nil // shutting down; not a verdict
			}
			if time.Now().After(deadline) {
				log.Printf("owner-map check: %s unreachable (%v); skipping — it verifies against us when it starts", addr, err)
				break
			}
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(500 * time.Millisecond):
			}
		}
	}
	if agreed > 0 {
		log.Printf("owner-map check: %d peer(s) agree on the ownership map", agreed)
	}
	return nil
}

// watchTrace tails the workflow recorder until ctx cancels, printing each
// step once.
func watchTrace(ctx context.Context, tracer *trace.Recorder) {
	t := time.NewTicker(100 * time.Millisecond)
	defer t.Stop()
	seen := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		events := tracer.Events()
		for ; seen < len(events); seen++ {
			log.Printf("step %s", events[seen])
		}
	}
}

// demoProducts stocks marketplace i with a small assortment; prices vary
// per market so price hunting is visible.
func demoProducts(i int) []*catalog.Product {
	bump := int64(i * 2500)
	return []*catalog.Product{
		{ID: "lap-ultra", Name: "UltraBook 13", Category: "laptop",
			Terms: map[string]float64{"ssd": 1, "light": 0.9}, PriceCents: 129900 + bump, SellerID: "acme", Stock: 10},
		{ID: "lap-game", Name: "GameBook 17", Category: "laptop",
			Terms: map[string]float64{"gpu": 1, "ssd": 0.5}, PriceCents: 219900 - bump, SellerID: "acme", Stock: 10},
		{ID: "cam-zoom", Name: "ZoomMaster", Category: "camera",
			Terms: map[string]float64{"zoom": 1, "lens": 0.7}, PriceCents: 89900 + bump, SellerID: "bmart", Stock: 10},
	}
}
