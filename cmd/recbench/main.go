// recbench regenerates the experiment tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	recbench -run=all            # every experiment, full size
//	recbench -run=C5 -quick      # one experiment, small fixtures
//
// Experiments: F4.4 (learning rate), F4.5 (discard gate), C2 (mobile agent
// vs RPC network cost), C4 (sparsity and cold start), C5 (technique
// comparison with ablations).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"agentrec/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment id or 'all' ("+strings.Join(experiments.Names(), ", ")+")")
	quick := flag.Bool("quick", false, "small fixtures (fast, noisier numbers)")
	flag.Parse()

	size := experiments.Full
	if *quick {
		size = experiments.Quick
	}
	if err := experiments.Run(os.Stdout, *run, size); err != nil {
		fmt.Fprintln(os.Stderr, "recbench:", err)
		os.Exit(1)
	}
}
