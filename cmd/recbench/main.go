// recbench regenerates the experiment tables recorded in EXPERIMENTS.md,
// the neighbour-search perf snapshot in BENCH_recommend.json, and the
// scenario trajectory files BENCH_<scenario>.json.
//
// Usage:
//
//	recbench -run=all                      # every experiment, full size
//	recbench -run=C5 -quick                # one experiment, small fixtures
//	recbench -neighbors -out BENCH_recommend.json
//	recbench -neighbors -quick             # small sizes, no 1M build
//	recbench -scenario list                # list the shipped scenarios
//	recbench -scenario flash-sale          # full-size open-loop run, 2 servers
//	recbench -scenario churn-spill -quick  # CI-sized smoke reduction
//	recbench -scenario my.json -rate 500 -duration 10s -servers 3
//	recbench -scenario flash-sale -servers localhost:8080,localhost:8081
//
// A scenario run replays the scenario's op mix open-loop (arrivals fixed by
// the rate shape, never by completions) against a replicated in-process
// platform (-servers N) or live platformd daemons (-servers addr,addr) and
// writes the BENCH_<scenario>.json latency/throughput document.
//
// Experiments: F4.4 (learning rate), F4.5 (discard gate), C2 (mobile agent
// vs RPC network cost), C4 (sparsity and cold start), C5 (technique
// comparison with ablations).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"agentrec/internal/experiments"
	"agentrec/internal/loadgen"
)

func main() {
	run := flag.String("run", "all", "experiment id or 'all' ("+strings.Join(experiments.Names(), ", ")+")")
	quick := flag.Bool("quick", false, "small fixtures (fast, noisier numbers); with -scenario, the CI smoke reduction")
	neighbors := flag.Bool("neighbors", false, "run the exact-vs-LSH neighbour search benchmark instead of the paper experiments")
	sizes := flag.String("sizes", "", "comma-separated community sizes for -neighbors (default 10000,100000,1000000)")
	out := flag.String("out", "", "output file (default BENCH_recommend.json / BENCH_<scenario>.json)")
	queries := flag.Int("queries", 24, "query users per size for -neighbors")
	scenario := flag.String("scenario", "", "open-loop load scenario: a built-in name, a JSON file, or 'list' ("+strings.Join(loadgen.Scenarios(), ", ")+")")
	rate := flag.Float64("rate", 0, "override the scenario's arrival rate, ops/sec (must be > 0 when set)")
	duration := flag.Duration("duration", 0, "override the scenario's load window (must be > 0 when set)")
	servers := flag.String("servers", "2", "in-process buyer server count, or comma-separated HTTP addresses of live platformd daemons")
	users := flag.Int("users", 0, "override the scenario's consumer count (must be > 0 when set)")
	workers := flag.Int("workers", 0, "driver worker count (default 16)")
	stateDir := flag.String("state-dir", "", "durable state root for spilling scenarios (default: temp dir)")
	flag.Parse()

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	// Out-of-range flags are usage errors, never silent clamps: a clamped
	// -rate=0 would commit a trajectory measured at a rate nobody asked for.
	if set["rate"] && *rate <= 0 {
		usageErr("-rate must be positive, got %g", *rate)
	}
	if set["duration"] && *duration <= 0 {
		usageErr("-duration must be positive, got %v", *duration)
	}
	if set["users"] && *users <= 0 {
		usageErr("-users must be positive, got %d", *users)
	}
	if *workers < 0 {
		usageErr("-workers must be non-negative, got %d", *workers)
	}
	if *queries <= 0 {
		usageErr("-queries must be positive, got %d", *queries)
	}

	switch {
	case *scenario != "":
		if err := runScenario(scenarioOptions{
			name: *scenario, rate: *rate, duration: *duration, servers: *servers,
			users: *users, workers: *workers, stateDir: *stateDir, out: *out, quick: *quick,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "recbench:", err)
			os.Exit(1)
		}
	case *neighbors:
		dest := *out
		if dest == "" {
			dest = "BENCH_recommend.json"
		}
		if err := runNeighbors(*sizes, dest, *queries, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "recbench:", err)
			os.Exit(1)
		}
	default:
		size := experiments.Full
		if *quick {
			size = experiments.Quick
		}
		if err := experiments.Run(os.Stdout, *run, size); err != nil {
			fmt.Fprintln(os.Stderr, "recbench:", err)
			os.Exit(1)
		}
	}
}

// usageErr reports a flag mistake and exits with the usage status.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "recbench: %s\n", fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(2)
}

type scenarioOptions struct {
	name     string
	rate     float64
	duration time.Duration
	servers  string
	users    int
	workers  int
	stateDir string
	out      string
	quick    bool
}

// parseServers splits -servers into either an in-process server count or a
// list of live daemon addresses, mirroring platformd's -buyer-peers
// validation: an empty entry is a usage error, not a skipped server.
func parseServers(spec string) (count int, addrs []string, err error) {
	if spec == "" {
		return 0, nil, fmt.Errorf("-servers must not be empty")
	}
	if n, convErr := strconv.Atoi(spec); convErr == nil {
		if n < 1 {
			return 0, nil, fmt.Errorf("-servers count must be >= 1, got %d", n)
		}
		return n, nil, nil
	}
	for _, addr := range strings.Split(spec, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			// An empty entry would silently shrink the target set.
			return 0, nil, fmt.Errorf("-servers %q contains an empty address", spec)
		}
		addrs = append(addrs, addr)
	}
	return 0, addrs, nil
}

func runScenario(opt scenarioOptions) error {
	if opt.name == "list" {
		for _, name := range loadgen.Scenarios() {
			s, _ := loadgen.Lookup(name)
			fmt.Printf("%-14s %s\n", name, s.Description)
		}
		return nil
	}
	s, ok := loadgen.Lookup(opt.name)
	if !ok {
		if !strings.ContainsAny(opt.name, "./") {
			return fmt.Errorf("unknown scenario %q (try -scenario list, or pass a JSON file)", opt.name)
		}
		var err error
		if s, err = loadgen.LoadScenario(opt.name); err != nil {
			return err
		}
	}
	if opt.quick {
		s = s.Smoke()
	}
	if opt.rate > 0 {
		s.RateOpsS = opt.rate
	}
	if opt.duration > 0 {
		s.DurationS = opt.duration.Seconds()
	}
	if opt.users > 0 {
		s.Users = opt.users
	}
	count, addrs, err := parseServers(opt.servers)
	if err != nil {
		usageErr("%v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := loadgen.RunScenario(ctx, s, loadgen.RunOptions{
		Servers:   count,
		HTTPAddrs: addrs,
		StateDir:  opt.stateDir,
		Workers:   opt.workers,
		Out:       os.Stdout,
	})
	if err != nil {
		return err
	}
	if err := res.Check(); err != nil {
		return err
	}
	dest := opt.out
	if dest == "" {
		dest = "BENCH_" + res.Scenario + ".json"
	}
	if err := loadgen.WriteResult(dest, res); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", dest)
	return nil
}

func runNeighbors(sizesCSV, out string, queries int, quick bool) error {
	ns := []int{10000, 100000, 1000000}
	if quick {
		ns = []int{2000, 10000}
	}
	if sizesCSV != "" {
		ns = ns[:0]
		for _, f := range strings.Split(sizesCSV, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad -sizes entry %q", f)
			}
			ns = append(ns, n)
		}
	}
	bench, err := experiments.NeighborSearchBench(os.Stdout, ns, queries)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.WriteNeighborBench(f, bench); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return f.Close()
}
