// recbench regenerates the experiment tables recorded in EXPERIMENTS.md
// and the neighbour-search perf snapshot in BENCH_recommend.json.
//
// Usage:
//
//	recbench -run=all                      # every experiment, full size
//	recbench -run=C5 -quick                # one experiment, small fixtures
//	recbench -neighbors -out BENCH_recommend.json
//	recbench -neighbors -quick             # small sizes, no 1M build
//
// Experiments: F4.4 (learning rate), F4.5 (discard gate), C2 (mobile agent
// vs RPC network cost), C4 (sparsity and cold start), C5 (technique
// comparison with ablations).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"agentrec/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment id or 'all' ("+strings.Join(experiments.Names(), ", ")+")")
	quick := flag.Bool("quick", false, "small fixtures (fast, noisier numbers)")
	neighbors := flag.Bool("neighbors", false, "run the exact-vs-LSH neighbour search benchmark instead of the paper experiments")
	sizes := flag.String("sizes", "", "comma-separated community sizes for -neighbors (default 10000,100000,1000000)")
	out := flag.String("out", "BENCH_recommend.json", "output file for the -neighbors JSON snapshot")
	queries := flag.Int("queries", 24, "query users per size for -neighbors")
	flag.Parse()

	if *neighbors {
		if err := runNeighbors(*sizes, *out, *queries, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "recbench:", err)
			os.Exit(1)
		}
		return
	}

	size := experiments.Full
	if *quick {
		size = experiments.Quick
	}
	if err := experiments.Run(os.Stdout, *run, size); err != nil {
		fmt.Fprintln(os.Stderr, "recbench:", err)
		os.Exit(1)
	}
}

func runNeighbors(sizesCSV, out string, queries int, quick bool) error {
	ns := []int{10000, 100000, 1000000}
	if quick {
		ns = []int{2000, 10000}
	}
	if sizesCSV != "" {
		ns = ns[:0]
		for _, f := range strings.Split(sizesCSV, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad -sizes entry %q", f)
			}
			ns = append(ns, n)
		}
	}
	bench, err := experiments.NeighborSearchBench(os.Stdout, ns, queries)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.WriteNeighborBench(f, bench); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return f.Close()
}
