// wlgen emits a reproducible synthetic consumer universe as JSON: the
// catalog, the users with their latent tastes, their observed behaviour
// streams, and the held-out relevance sets the evaluation metrics score
// against. Pipe it to a file to freeze a workload for offline analysis.
//
// Usage:
//
//	wlgen -seed=7 -users=200 -products=500 > universe.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"agentrec/internal/catalog"
	"agentrec/internal/workload"
)

// dump is the serialized universe: config, products and users.
type dump struct {
	Config   workload.Config    `json:"config"`
	Products []*catalog.Product `json:"products"`
	Users    []*workload.User   `json:"users"`
}

func main() {
	var cfg workload.Config
	var seed uint64
	flag.Uint64Var(&seed, "seed", 1, "RNG seed")
	flag.IntVar(&cfg.Users, "users", 100, "number of consumers")
	flag.IntVar(&cfg.Products, "products", 500, "catalog size")
	flag.IntVar(&cfg.Categories, "categories", 10, "merchandise categories")
	flag.IntVar(&cfg.RelevantPerUser, "relevant", 20, "ground-truth relevant products per user")
	flag.IntVar(&cfg.ColdStartUsers, "cold", 0, "extra cold-start users")
	compact := flag.Bool("compact", false, "no indentation")
	flag.Parse()
	cfg.Seed = seed

	// Out-of-range flags are usage errors: Generate's defaults would
	// silently replace them and emit a universe nobody asked for.
	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "wlgen: %s\n", fmt.Sprintf(format, args...))
		flag.Usage()
		os.Exit(2)
	}
	switch {
	case cfg.Users <= 0:
		usageErr("-users must be positive, got %d", cfg.Users)
	case cfg.Products <= 0:
		usageErr("-products must be positive, got %d", cfg.Products)
	case cfg.Categories <= 0:
		usageErr("-categories must be positive, got %d", cfg.Categories)
	case cfg.RelevantPerUser <= 0:
		usageErr("-relevant must be positive, got %d", cfg.RelevantPerUser)
	case cfg.RelevantPerUser > cfg.Products:
		usageErr("-relevant %d exceeds -products %d", cfg.RelevantPerUser, cfg.Products)
	case cfg.ColdStartUsers < 0:
		usageErr("-cold must be non-negative, got %d", cfg.ColdStartUsers)
	}

	u, err := workload.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wlgen:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	if !*compact {
		enc.SetIndent("", "  ")
	}
	if err := enc.Encode(dump{Config: u.Config, Products: u.Products, Users: u.Users}); err != nil {
		fmt.Fprintln(os.Stderr, "wlgen:", err)
		os.Exit(1)
	}
}
