module agentrec

go 1.24
