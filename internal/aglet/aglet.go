// Package aglet is a mobile-agent runtime modeled on the IBM Aglets API the
// paper builds on (§2.1): agents are created on a host, exchange messages,
// can be cloned, can be *dispatched* to another host (carrying their state),
// *retracted* back, *deactivated* into stable storage and later *activated*
// (the paper's §4.1 principle 3 uses exactly this to park a Buyer Recommend
// Agent while its Mobile Buyer Agent is travelling), and finally disposed.
//
// Differences from Aglets, chosen deliberately for Go:
//
//   - Each agent runs as one goroutine owning an inbox channel; message
//     handling is therefore serialized per agent, which is the Aglets
//     threading model too.
//   - Java serialization is replaced by each agent implementing
//     State/SetState ([]byte round-trip, typically JSON).
//   - Code does not travel: every host registers the agent types it can
//     instantiate (a Registry), and a migrating agent is re-instantiated
//     from its registered factory at the destination. This is the standard
//     closed-world simplification; the paper's platform likewise pre-deploys
//     its agent classes on every server.
package aglet

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Errors reported by the runtime. Match with errors.Is.
var (
	ErrNotFound    = errors.New("aglet: no such agent")
	ErrDuplicateID = errors.New("aglet: agent id already in use")
	ErrUnknownType = errors.New("aglet: agent type not registered")
	ErrHostClosed  = errors.New("aglet: host closed")
	ErrNotStored   = errors.New("aglet: no deactivated agent with that id")
	ErrNoTransport = errors.New("aglet: host has no transport")
)

// Message is the unit of agent communication. Kind selects the handler
// behaviour; Data is an opaque payload, JSON by convention.
type Message struct {
	Kind string
	Data []byte
}

// Aglet is the behaviour contract every agent implements. Lifecycle
// callbacks run on the agent's own goroutine except OnCreation, which runs
// on the creator's goroutine before the agent is visible to anyone else.
type Aglet interface {
	// OnCreation initializes a brand-new agent with its init payload.
	OnCreation(ctx *Context, init []byte) error
	// OnArrival runs after the agent materializes on a new host following a
	// dispatch, and after a clone materializes.
	OnArrival(ctx *Context) error
	// OnDeactivating runs just before the agent's state is serialized to the
	// host store.
	OnDeactivating(ctx *Context) error
	// OnActivation runs after the agent is re-instantiated from the store.
	OnActivation(ctx *Context) error
	// OnDisposing runs as the agent is permanently destroyed.
	OnDisposing(ctx *Context)
	// HandleMessage processes one message and returns the reply.
	HandleMessage(ctx *Context, msg Message) (Message, error)
	// State serializes the agent's mutable state for migration,
	// deactivation, and cloning.
	State() ([]byte, error)
	// SetState restores state produced by State.
	SetState(data []byte) error
}

// Base provides no-op implementations of every Aglet callback except
// HandleMessage, so concrete agents embed it and override what they need.
type Base struct{}

func (Base) OnCreation(*Context, []byte) error { return nil }
func (Base) OnArrival(*Context) error          { return nil }
func (Base) OnDeactivating(*Context) error     { return nil }
func (Base) OnActivation(*Context) error       { return nil }
func (Base) OnDisposing(*Context)              {}
func (Base) State() ([]byte, error)            { return nil, nil }
func (Base) SetState([]byte) error             { return nil }

// Image is the wire form of a migrating agent: everything a destination
// host needs to re-instantiate it. Meta carries application credentials
// (travel tokens, nonces) that the security layer checks.
type Image struct {
	Type  string            `json:"type"`
	ID    string            `json:"id"`
	Owner string            `json:"owner"` // originating host name
	State []byte            `json:"state"`
	Meta  map[string]string `json:"meta,omitempty"`
}

// Transport moves images and messages between hosts. The atp package
// provides a TCP implementation; Loopback provides an in-process one.
type Transport interface {
	// Dispatch delivers img to the host addressed by dest.
	Dispatch(ctx context.Context, dest string, img Image) error
	// Call sends msg to agent agentID on host dest and returns the reply.
	Call(ctx context.Context, dest, agentID string, msg Message) (Message, error)
	// Retract asks dest to surrender agent agentID, returning its image;
	// the agent no longer runs at dest afterwards.
	Retract(ctx context.Context, dest, agentID string) (Image, error)
}

// Factory constructs a zero agent of one type.
type Factory func() Aglet

// Registry maps agent type names to factories. A Registry is immutable
// after construction and safe to share among hosts.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]Factory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]Factory)}
}

// Register binds name to factory, replacing any previous binding.
func (r *Registry) Register(name string, factory Factory) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.factories[name] = factory
}

// New instantiates a zero agent of the named type.
func (r *Registry) New(name string) (Aglet, error) {
	r.mu.RLock()
	factory, ok := r.factories[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownType, name)
	}
	return factory(), nil
}

// Types returns the registered type names in arbitrary order.
func (r *Registry) Types() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.factories))
	for name := range r.factories {
		out = append(out, name)
	}
	return out
}

// LifecycleEvent identifies a lifecycle transition reported to hooks.
type LifecycleEvent string

// Lifecycle events, in the order an agent can experience them.
const (
	EventCreated     LifecycleEvent = "created"
	EventCloned      LifecycleEvent = "cloned"
	EventDispatched  LifecycleEvent = "dispatched" // left this host
	EventArrived     LifecycleEvent = "arrived"    // materialized here
	EventDeactivated LifecycleEvent = "deactivated"
	EventActivated   LifecycleEvent = "activated"
	EventDisposed    LifecycleEvent = "disposed"
)

// Hook observes lifecycle transitions; used by tests and the platform's
// agent-management bookkeeping (the paper's BSMA duties).
type Hook func(event LifecycleEvent, agentType, agentID string)

// DispatchFailureHandler is an optional interface for travel-aware agents:
// when a self-requested dispatch cannot reach its destination, the runtime
// invokes OnDispatchFailure instead of silently parking the agent, and the
// agent may request an alternative transition (skip the stop, head home,
// dispose). Handlers must make progress — e.g. advance an itinerary — since
// recovery recursion is bounded.
type DispatchFailureHandler interface {
	OnDispatchFailure(ctx *Context, dest string, err error)
}

// Context is the agent's view of its host, passed to every callback. It is
// also how a running agent requests its own migration or termination: the
// request takes effect after the current callback returns, mirroring the
// Aglets behaviour where dispatch() unwinds the current event.
type Context struct {
	host *Host
	cell *cell

	pendingDispatch string
	pendingDispose  bool
	pendingDeactive bool

	meta map[string]string
}

// ID returns the agent's identifier.
func (c *Context) ID() string { return c.cell.id }

// Type returns the agent's registered type name.
func (c *Context) Type() string { return c.cell.typ }

// HostName returns the name of the host the agent currently runs on.
func (c *Context) HostName() string { return c.host.name }

// Meta returns the credential metadata the agent arrived with, nil for
// locally created agents.
func (c *Context) Meta() map[string]string { return c.meta }

// SetMeta replaces the agent's credential metadata; it travels with the
// agent on the next dispatch.
func (c *Context) SetMeta(meta map[string]string) { c.meta = meta }

// RequestDispatch asks the runtime to migrate this agent to dest after the
// current callback returns.
func (c *Context) RequestDispatch(dest string) { c.pendingDispatch = dest }

// RequestDispose asks the runtime to destroy this agent after the current
// callback returns.
func (c *Context) RequestDispose() { c.pendingDispose = true }

// RequestDeactivate asks the runtime to serialize this agent to the host
// store after the current callback returns.
func (c *Context) RequestDeactivate() { c.pendingDeactive = true }

// Send delivers msg to another agent on the same host and waits for the
// reply. Agents on other hosts are reached through Proxy.
func (c *Context) Send(ctx context.Context, agentID string, msg Message) (Message, error) {
	return c.host.Send(ctx, agentID, msg)
}

func (c *Context) clearPending() {
	c.pendingDispatch = ""
	c.pendingDispose = false
	c.pendingDeactive = false
}
