package aglet

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
)

// cell is the runtime container of one live agent: its goroutine, inbox and
// identity. The zero value is not usable; hosts build cells internally.
type cell struct {
	id    string
	typ   string
	agent Aglet
	ctx   *Context

	inbox chan envelope
	quit  chan struct{} // closed by the host to stop the loop
	done  chan struct{} // closed by the loop on exit
}

type envelope struct {
	ctx   context.Context
	msg   Message
	reply chan outcome
}

type outcome struct {
	msg Message
	err error
}

// storedAgent is the at-rest form of a deactivated agent.
type storedAgent struct {
	Type  string            `json:"type"`
	State []byte            `json:"state"`
	Meta  map[string]string `json:"meta,omitempty"`
}

// Host runs agents. Construct with NewHost; the zero value is not usable.
// All methods are safe for concurrent use. Close disposes every live agent
// and waits for their goroutines, so no goroutine outlives the host.
type Host struct {
	name     string
	registry *Registry
	inboxCap int

	mu        sync.Mutex
	transport Transport
	agents    map[string]*cell
	stored    map[string]storedAgent
	hooks     []Hook
	closed    bool

	wg sync.WaitGroup
}

// Option configures a Host.
type Option func(*Host)

// WithTransport sets the transport used for Dispatch and remote Proxy calls.
func WithTransport(t Transport) Option {
	return func(h *Host) { h.transport = t }
}

// WithHook adds a lifecycle observer.
func WithHook(hook Hook) Option {
	return func(h *Host) { h.hooks = append(h.hooks, hook) }
}

// WithInboxCapacity sets each agent's inbox buffer (default 64).
func WithInboxCapacity(n int) Option {
	return func(h *Host) {
		if n > 0 {
			h.inboxCap = n
		}
	}
}

// NewHost returns a host named name instantiating agents from registry.
func NewHost(name string, registry *Registry, opts ...Option) *Host {
	h := &Host{
		name:     name,
		registry: registry,
		inboxCap: 64,
		agents:   make(map[string]*cell),
		stored:   make(map[string]storedAgent),
	}
	for _, opt := range opts {
		opt(h)
	}
	return h
}

// Name returns the host's name, which is also its transport address.
func (h *Host) Name() string { return h.name }

func (h *Host) emit(event LifecycleEvent, typ, id string) {
	for _, hook := range h.hooks {
		hook(event, typ, id)
	}
}

// newCell builds a cell and its context; the caller starts the loop.
func (h *Host) newCell(typ, id string, agent Aglet, meta map[string]string) *cell {
	c := &cell{
		id:    id,
		typ:   typ,
		agent: agent,
		inbox: make(chan envelope, h.inboxCap),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	c.ctx = &Context{host: h, cell: c, meta: meta}
	return c
}

// install registers the cell and starts its goroutine. Caller must not hold h.mu.
func (h *Host) install(c *cell) error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return ErrHostClosed
	}
	if _, exists := h.agents[c.id]; exists {
		h.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrDuplicateID, c.id)
	}
	h.agents[c.id] = c
	h.wg.Add(1)
	h.mu.Unlock()
	go h.run(c)
	return nil
}

// Create instantiates a new agent of the registered type typ with identity
// id, delivering init to its OnCreation callback.
func (h *Host) Create(typ, id string, init []byte) (*Proxy, error) {
	agent, err := h.registry.New(typ)
	if err != nil {
		return nil, err
	}
	c := h.newCell(typ, id, agent, nil)
	if err := agent.OnCreation(c.ctx, init); err != nil {
		return nil, fmt.Errorf("aglet: OnCreation of %s/%s: %w", typ, id, err)
	}
	if err := h.install(c); err != nil {
		return nil, err
	}
	h.emit(EventCreated, typ, id)
	return &Proxy{host: h, hostAddr: h.name, agentID: id}, nil
}

// Clone copies the agent id into a new agent newID of the same type on the
// same host. The clone receives the parent's serialized state and then its
// OnArrival callback, mirroring the Aglets clone semantics where the copy
// wakes up as if it had just landed.
func (h *Host) Clone(id, newID string) (*Proxy, error) {
	h.mu.Lock()
	parent, ok := h.agents[id]
	h.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	state, err := h.snapshotAgent(parent)
	if err != nil {
		return nil, err
	}
	agent, err := h.registry.New(parent.typ)
	if err != nil {
		return nil, err
	}
	if err := agent.SetState(state); err != nil {
		return nil, fmt.Errorf("aglet: restoring clone state: %w", err)
	}
	c := h.newCell(parent.typ, newID, agent, nil)
	if err := agent.OnArrival(c.ctx); err != nil {
		return nil, fmt.Errorf("aglet: OnArrival of clone %s: %w", newID, err)
	}
	if err := h.install(c); err != nil {
		return nil, err
	}
	h.emit(EventCloned, parent.typ, newID)
	return &Proxy{host: h, hostAddr: h.name, agentID: newID}, nil
}

// snapshotAgent serializes a live agent's state. The agent's handler loop
// may be running; State implementations must be safe to call from another
// goroutine (the provided agents synchronize internally or are quiescent
// when snapshotted, which the workflows guarantee).
func (h *Host) snapshotAgent(c *cell) ([]byte, error) {
	state, err := c.agent.State()
	if err != nil {
		return nil, fmt.Errorf("aglet: serializing %s/%s: %w", c.typ, c.id, err)
	}
	return state, nil
}

// Send delivers msg to agent id on this host and waits for its reply or ctx
// cancellation.
func (h *Host) Send(ctx context.Context, id string, msg Message) (Message, error) {
	h.mu.Lock()
	c, ok := h.agents[id]
	h.mu.Unlock()
	if !ok {
		return Message{}, fmt.Errorf("%w: %q on %s", ErrNotFound, id, h.name)
	}
	env := envelope{ctx: ctx, msg: msg, reply: make(chan outcome, 1)}
	select {
	case c.inbox <- env:
	case <-c.quit:
		return Message{}, fmt.Errorf("%w: %q on %s", ErrNotFound, id, h.name)
	case <-ctx.Done():
		return Message{}, ctx.Err()
	}
	select {
	case out := <-env.reply:
		return out.msg, out.err
	case <-ctx.Done():
		return Message{}, ctx.Err()
	}
}

// run is the agent goroutine: it serializes message handling and performs
// the agent's own pending lifecycle requests between messages. Requests
// made during OnCreation or OnArrival (before the loop started) are settled
// first, which is how a mobile agent's itinerary hops chain.
func (h *Host) run(c *cell) {
	defer h.wg.Done()
	defer close(c.done)
	if done := h.settlePending(c, 0); done {
		return
	}
	for {
		select {
		case <-c.quit:
			return
		default:
		}
		select {
		case <-c.quit:
			return
		case env := <-c.inbox:
			c.ctx.clearPending()
			reply, err := c.agent.HandleMessage(c.ctx, env.msg)
			env.reply <- outcome{msg: reply, err: err}
			if done := h.settlePending(c, 0); done {
				return
			}
		}
	}
}

// maxSettleDepth bounds recovery recursion when an agent's failure handler
// keeps requesting further transitions.
const maxSettleDepth = 64

// settlePending performs lifecycle transitions the agent requested from its
// own callbacks. It reports whether the loop must exit.
func (h *Host) settlePending(c *cell, depth int) bool {
	if depth > maxSettleDepth {
		h.emit(LifecycleEvent("settle-depth-exceeded"), c.typ, c.id)
		return false
	}
	switch {
	case c.ctx.pendingDispatch != "":
		dest := c.ctx.pendingDispatch
		if err := h.completeDispatch(c, dest); err != nil {
			h.emit(LifecycleEvent("dispatch-failed"), c.typ, c.id)
			// A travel-aware agent decides what to do about the failed hop
			// (skip the stop, head home, dispose); others stay put and stay
			// reachable.
			if handler, ok := c.agent.(DispatchFailureHandler); ok {
				c.ctx.clearPending()
				handler.OnDispatchFailure(c.ctx, dest, err)
				return h.settlePending(c, depth+1)
			}
			return false
		}
		return true
	case c.ctx.pendingDispose:
		h.detach(c)
		c.agent.OnDisposing(c.ctx)
		h.emit(EventDisposed, c.typ, c.id)
		return true
	case c.ctx.pendingDeactive:
		if err := h.completeDeactivate(c); err != nil {
			h.emit(LifecycleEvent("deactivate-failed"), c.typ, c.id)
			return false
		}
		return true
	}
	return false
}

// detach removes the cell from the live table. It is called either from the
// agent's own loop (self-requested transitions) or from host methods after
// stopping the loop.
func (h *Host) detach(c *cell) {
	h.mu.Lock()
	delete(h.agents, c.id)
	h.mu.Unlock()
}

// completeDispatch serializes the agent and ships it to dest via the
// transport, removing it locally on success.
func (h *Host) completeDispatch(c *cell, dest string) error {
	h.mu.Lock()
	tr := h.transport
	h.mu.Unlock()
	if tr == nil {
		return ErrNoTransport
	}
	state, err := h.snapshotAgent(c)
	if err != nil {
		return err
	}
	img := Image{Type: c.typ, ID: c.id, Owner: h.name, State: state, Meta: c.ctx.meta}
	h.detach(c)
	if err := tr.Dispatch(context.Background(), dest, img); err != nil {
		// Reinstall: the agent never left. If the host closed while the
		// agent was detached, stay detached and let the loop exit.
		h.mu.Lock()
		if !h.closed {
			h.agents[c.id] = c
		}
		closed := h.closed
		h.mu.Unlock()
		if closed {
			return nil // treat as disposed-by-close; loop exits
		}
		return fmt.Errorf("aglet: dispatching %s/%s to %s: %w", c.typ, c.id, dest, err)
	}
	h.emit(EventDispatched, c.typ, c.id)
	return nil
}

// Dispatch migrates agent id to dest from outside the agent (the Aglets
// proxy.dispatch form). The agent's goroutine is stopped first so the state
// snapshot is quiescent.
func (h *Host) Dispatch(ctx context.Context, id, dest string) error {
	c, err := h.stopAgent(id)
	if err != nil {
		return err
	}
	h.mu.Lock()
	tr := h.transport
	h.mu.Unlock()
	if tr == nil {
		h.restart(c)
		return ErrNoTransport
	}
	state, err := h.snapshotAgent(c)
	if err != nil {
		h.restart(c)
		return err
	}
	img := Image{Type: c.typ, ID: c.id, Owner: h.name, State: state, Meta: c.ctx.meta}
	h.detach(c)
	if err := tr.Dispatch(ctx, dest, img); err != nil {
		h.restart(c)
		return fmt.Errorf("aglet: dispatching %s/%s to %s: %w", c.typ, c.id, dest, err)
	}
	h.emit(EventDispatched, c.typ, c.id)
	return nil
}

// stopAgent halts the agent's loop and returns its cell, leaving the agent
// registered (callers detach or restart it).
func (h *Host) stopAgent(id string) (*cell, error) {
	h.mu.Lock()
	c, ok := h.agents[id]
	h.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q on %s", ErrNotFound, id, h.name)
	}
	close(c.quit)
	<-c.done
	return c, nil
}

// restart resumes a stopped agent with a fresh goroutine (after a failed
// lifecycle transition).
func (h *Host) restart(c *cell) {
	fresh := h.newCell(c.typ, c.id, c.agent, c.ctx.meta)
	h.mu.Lock()
	if h.closed {
		delete(h.agents, c.id)
		h.mu.Unlock()
		return
	}
	h.agents[c.id] = fresh
	h.wg.Add(1)
	h.mu.Unlock()
	go h.run(fresh)
}

// Receive materializes an inbound image, registering the agent and running
// its OnArrival callback. Transports call this on the destination host.
func (h *Host) Receive(img Image) error {
	agent, err := h.registry.New(img.Type)
	if err != nil {
		return err
	}
	if err := agent.SetState(img.State); err != nil {
		return fmt.Errorf("aglet: restoring state of %s/%s: %w", img.Type, img.ID, err)
	}
	c := h.newCell(img.Type, img.ID, agent, img.Meta)
	if err := agent.OnArrival(c.ctx); err != nil {
		return fmt.Errorf("aglet: OnArrival of %s/%s: %w", img.Type, img.ID, err)
	}
	// OnArrival may itself have requested an onward move, a deactivation,
	// or disposal (an itinerary hop executed on landing); the agent's own
	// loop settles it right after install, so each hop runs decoupled from
	// the sender — arrival acknowledgment is not trip completion, exactly
	// like a store-and-forward agent transfer.
	if err := h.install(c); err != nil {
		return err
	}
	h.emit(EventArrived, img.Type, img.ID)
	return nil
}

// Surrender stops agent id, serializes it, and removes it from this host,
// returning the image. It is the remote half of Retract: the requesting
// host re-instantiates the agent from the image.
func (h *Host) Surrender(id string) (Image, error) {
	c, err := h.stopAgent(id)
	if err != nil {
		return Image{}, err
	}
	state, err := h.snapshotAgent(c)
	if err != nil {
		h.restart(c)
		return Image{}, err
	}
	h.detach(c)
	h.emit(EventDispatched, c.typ, c.id)
	return Image{Type: c.typ, ID: c.id, Owner: h.name, State: state, Meta: c.ctx.meta}, nil
}

// Retract pulls agent id back from the remote host at from, the Aglets
// proxy.retract() operation: the agent stops running there and resumes
// here, its OnArrival callback running as after any migration.
func (h *Host) Retract(ctx context.Context, from, id string) error {
	h.mu.Lock()
	tr := h.transport
	h.mu.Unlock()
	if tr == nil {
		return ErrNoTransport
	}
	img, err := tr.Retract(ctx, from, id)
	if err != nil {
		return fmt.Errorf("aglet: retracting %s from %s: %w", id, from, err)
	}
	return h.Receive(img)
}

// Deactivate stops agent id and serializes it into the host store; it no
// longer consumes a goroutine. Activate revives it.
func (h *Host) Deactivate(id string) error {
	c, err := h.stopAgent(id)
	if err != nil {
		return err
	}
	if err := c.agent.OnDeactivating(c.ctx); err != nil {
		h.restart(c)
		return fmt.Errorf("aglet: OnDeactivating %s/%s: %w", c.typ, c.id, err)
	}
	state, err := h.snapshotAgent(c)
	if err != nil {
		h.restart(c)
		return err
	}
	h.park(c, state)
	return nil
}

// completeDeactivate is the self-requested variant, called from the agent's
// own loop which exits right after on success and keeps running on failure
// (so no restart here — the goroutine never stopped).
func (h *Host) completeDeactivate(c *cell) error {
	if err := c.agent.OnDeactivating(c.ctx); err != nil {
		return fmt.Errorf("aglet: OnDeactivating %s/%s: %w", c.typ, c.id, err)
	}
	state, err := h.snapshotAgent(c)
	if err != nil {
		return err
	}
	h.park(c, state)
	return nil
}

// park moves the cell from the live table to the deactivated store.
func (h *Host) park(c *cell, state []byte) {
	h.mu.Lock()
	delete(h.agents, c.id)
	h.stored[c.id] = storedAgent{Type: c.typ, State: state, Meta: c.ctx.meta}
	h.mu.Unlock()
	h.emit(EventDeactivated, c.typ, c.id)
}

// Activate revives a deactivated agent, running its OnActivation callback.
func (h *Host) Activate(id string) (*Proxy, error) {
	h.mu.Lock()
	rec, ok := h.stored[id]
	if ok {
		delete(h.stored, id)
	}
	h.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotStored, id)
	}
	agent, err := h.registry.New(rec.Type)
	if err != nil {
		return nil, err
	}
	if err := agent.SetState(rec.State); err != nil {
		return nil, fmt.Errorf("aglet: restoring %s/%s: %w", rec.Type, id, err)
	}
	c := h.newCell(rec.Type, id, agent, rec.Meta)
	if err := agent.OnActivation(c.ctx); err != nil {
		return nil, fmt.Errorf("aglet: OnActivation %s/%s: %w", rec.Type, id, err)
	}
	if err := h.install(c); err != nil {
		return nil, err
	}
	h.emit(EventActivated, rec.Type, id)
	return &Proxy{host: h, hostAddr: h.name, agentID: id}, nil
}

// StoredState returns the serialized bytes of a deactivated agent, so the
// application can persist them (the paper stores deactivated BRAs in the
// mechanism's storage).
func (h *Host) StoredState(id string) ([]byte, error) {
	h.mu.Lock()
	rec, ok := h.stored[id]
	h.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotStored, id)
	}
	return json.Marshal(rec)
}

// RestoreStored re-registers a deactivated agent from bytes produced by
// StoredState, e.g. after a host restart.
func (h *Host) RestoreStored(id string, data []byte) error {
	var rec storedAgent
	if err := json.Unmarshal(data, &rec); err != nil {
		return fmt.Errorf("aglet: decoding stored agent %q: %w", id, err)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return ErrHostClosed
	}
	h.stored[id] = rec
	return nil
}

// Dispose permanently destroys agent id.
func (h *Host) Dispose(id string) error {
	c, err := h.stopAgent(id)
	if err != nil {
		return err
	}
	h.detach(c)
	c.agent.OnDisposing(c.ctx)
	h.emit(EventDisposed, c.typ, c.id)
	return nil
}

// Agents returns the ids of all live agents.
func (h *Host) Agents() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.agents))
	for id := range h.agents {
		out = append(out, id)
	}
	return out
}

// Has reports whether agent id is live on this host.
func (h *Host) Has(id string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, ok := h.agents[id]
	return ok
}

// HasStored reports whether agent id is deactivated in the host store.
func (h *Host) HasStored(id string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, ok := h.stored[id]
	return ok
}

// DiscardStored removes a deactivated agent from the store without reviving
// it (e.g. a parked agent whose owner logged out for good).
func (h *Host) DiscardStored(id string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	rec, ok := h.stored[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotStored, id)
	}
	delete(h.stored, id)
	h.emit(EventDisposed, rec.Type, id)
	return nil
}

// Proxy returns a proxy to a live local agent, or an error if absent.
func (h *Host) Proxy(id string) (*Proxy, error) {
	h.mu.Lock()
	_, ok := h.agents[id]
	h.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q on %s", ErrNotFound, id, h.name)
	}
	return &Proxy{host: h, hostAddr: h.name, agentID: id}, nil
}

// RemoteProxy returns a proxy addressing agent agentID on another host via
// this host's transport.
func (h *Host) RemoteProxy(hostAddr, agentID string) *Proxy {
	return &Proxy{host: h, hostAddr: hostAddr, agentID: agentID}
}

// Close stops every live agent, discards pending inbox messages, and waits
// for all agent goroutines. Deactivated agents stay in the store. Close is
// idempotent.
func (h *Host) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	cells := make([]*cell, 0, len(h.agents))
	for _, c := range h.agents {
		cells = append(cells, c)
	}
	h.agents = make(map[string]*cell)
	h.mu.Unlock()

	for _, c := range cells {
		close(c.quit)
	}
	h.wg.Wait()
	for _, c := range cells {
		c.agent.OnDisposing(c.ctx)
		h.emit(EventDisposed, c.typ, c.id)
	}
	return nil
}

// Proxy is a location-transparent handle to an agent: local sends go through
// the host directly, remote sends through the transport.
type Proxy struct {
	host     *Host
	hostAddr string
	agentID  string
}

// ID returns the target agent's identifier.
func (p *Proxy) ID() string { return p.agentID }

// HostAddr returns the address of the host the proxy targets.
func (p *Proxy) HostAddr() string { return p.hostAddr }

// Send delivers msg to the proxied agent and returns its reply.
func (p *Proxy) Send(ctx context.Context, msg Message) (Message, error) {
	if p.hostAddr == p.host.Name() {
		return p.host.Send(ctx, p.agentID, msg)
	}
	p.host.mu.Lock()
	tr := p.host.transport
	p.host.mu.Unlock()
	if tr == nil {
		return Message{}, ErrNoTransport
	}
	return tr.Call(ctx, p.hostAddr, p.agentID, msg)
}
