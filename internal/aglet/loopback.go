package aglet

import (
	"context"
	"fmt"
	"sync"
)

// Loopback is an in-process Transport connecting hosts registered with it by
// name. It is the transport used by single-process platforms, examples and
// benchmarks; the atp package provides the TCP equivalent with the same
// semantics.
//
// Loopback can also simulate a wide-area network for the C2 experiment: a
// per-hop latency callback and byte counters let the benchmark harness
// compare mobile-agent trips against conventional request/response traffic
// under identical conditions.
type Loopback struct {
	mu    sync.RWMutex
	hosts map[string]*Host

	// hookMu guards the instrumentation below separately from the host
	// table so counting does not contend with routing.
	hookMu     sync.Mutex
	dispatches int
	calls      int
	bytesMoved int64
	perHop     func(dest string) // e.g. latency injection
}

// NewLoopback returns an empty loopback network.
func NewLoopback() *Loopback {
	return &Loopback{hosts: make(map[string]*Host)}
}

// Attach registers host under its name and wires the host to this transport.
func (l *Loopback) Attach(h *Host) {
	l.mu.Lock()
	l.hosts[h.Name()] = h
	l.mu.Unlock()
	h.mu.Lock()
	h.transport = l
	h.mu.Unlock()
}

// Detach removes the named host from the network.
func (l *Loopback) Detach(name string) {
	l.mu.Lock()
	delete(l.hosts, name)
	l.mu.Unlock()
}

// SetPerHop installs fn to run once per Dispatch/Call, e.g. to simulate WAN
// latency with time.Sleep. A nil fn disables it.
func (l *Loopback) SetPerHop(fn func(dest string)) {
	l.hookMu.Lock()
	l.perHop = fn
	l.hookMu.Unlock()
}

func (l *Loopback) lookup(dest string) (*Host, error) {
	l.mu.RLock()
	h, ok := l.hosts[dest]
	l.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("aglet: loopback: unknown host %q", dest)
	}
	return h, nil
}

func (l *Loopback) account(isDispatch bool, payload int) func(dest string) {
	l.hookMu.Lock()
	if isDispatch {
		l.dispatches++
	} else {
		l.calls++
	}
	l.bytesMoved += int64(payload)
	hop := l.perHop
	l.hookMu.Unlock()
	return hop
}

// Dispatch implements Transport by handing the image to the destination
// host's Receive.
func (l *Loopback) Dispatch(ctx context.Context, dest string, img Image) error {
	h, err := l.lookup(dest)
	if err != nil {
		return err
	}
	if hop := l.account(true, len(img.State)); hop != nil {
		hop(dest)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return h.Receive(img)
}

// Call implements Transport by sending msg to the destination agent.
func (l *Loopback) Call(ctx context.Context, dest, agentID string, msg Message) (Message, error) {
	h, err := l.lookup(dest)
	if err != nil {
		return Message{}, err
	}
	if hop := l.account(false, len(msg.Data)); hop != nil {
		hop(dest)
	}
	reply, err := h.Send(ctx, agentID, msg)
	if err != nil {
		return Message{}, err
	}
	l.hookMu.Lock()
	l.bytesMoved += int64(len(reply.Data))
	l.hookMu.Unlock()
	return reply, nil
}

// Retract implements Transport by asking the destination host to surrender
// the agent.
func (l *Loopback) Retract(ctx context.Context, dest, agentID string) (Image, error) {
	h, err := l.lookup(dest)
	if err != nil {
		return Image{}, err
	}
	if hop := l.account(true, 0); hop != nil {
		hop(dest)
	}
	if err := ctx.Err(); err != nil {
		return Image{}, err
	}
	img, err := h.Surrender(agentID)
	if err != nil {
		return Image{}, err
	}
	l.hookMu.Lock()
	l.bytesMoved += int64(len(img.State))
	l.hookMu.Unlock()
	return img, nil
}

// Stats reports dispatch count, call count, and total payload bytes moved
// since construction or the last ResetStats.
func (l *Loopback) Stats() (dispatches, calls int, bytesMoved int64) {
	l.hookMu.Lock()
	defer l.hookMu.Unlock()
	return l.dispatches, l.calls, l.bytesMoved
}

// ResetStats zeroes the traffic counters.
func (l *Loopback) ResetStats() {
	l.hookMu.Lock()
	l.dispatches, l.calls, l.bytesMoved = 0, 0, 0
	l.hookMu.Unlock()
}

var _ Transport = (*Loopback)(nil)
