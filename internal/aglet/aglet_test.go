package aglet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// echoAgent replies to every message with its own payload plus a counter of
// messages handled; the counter travels in its serialized state.
type echoAgent struct {
	Base
	mu      sync.Mutex
	Handled int `json:"handled"`
	Created bool
	Arrived bool
	Active  bool
}

func (e *echoAgent) OnCreation(_ *Context, init []byte) error {
	e.Created = true
	return nil
}
func (e *echoAgent) OnArrival(*Context) error    { e.Arrived = true; return nil }
func (e *echoAgent) OnActivation(*Context) error { e.Active = true; return nil }

func (e *echoAgent) HandleMessage(_ *Context, msg Message) (Message, error) {
	e.mu.Lock()
	e.Handled++
	n := e.Handled
	e.mu.Unlock()
	return Message{Kind: "echo", Data: []byte(fmt.Sprintf("%s#%d", msg.Data, n))}, nil
}

func (e *echoAgent) State() ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return json.Marshal(struct{ Handled int }{e.Handled})
}

func (e *echoAgent) SetState(data []byte) error {
	var s struct{ Handled int }
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	e.mu.Lock()
	e.Handled = s.Handled
	e.mu.Unlock()
	return nil
}

// hopperAgent walks an itinerary: on each arrival it requests the next hop
// until the itinerary is done, then deactivates at home.
type hopperAgent struct {
	Base
	It      Itinerary `json:"it"`
	Visited []string  `json:"visited"`
}

func (a *hopperAgent) OnCreation(ctx *Context, init []byte) error {
	return json.Unmarshal(init, &a.It)
}

func (a *hopperAgent) OnArrival(ctx *Context) error {
	a.Visited = append(a.Visited, ctx.HostName())
	if ctx.HostName() == a.It.Home {
		ctx.RequestDeactivate()
		return nil
	}
	next, updated := a.It.Advance()
	a.It = updated
	ctx.RequestDispatch(next)
	return nil
}

func (a *hopperAgent) HandleMessage(ctx *Context, msg Message) (Message, error) {
	if msg.Kind == "go" {
		ctx.RequestDispatch(a.It.Current())
		return Message{Kind: "ok"}, nil
	}
	return Message{Kind: "?"}, nil
}

func (a *hopperAgent) State() ([]byte, error)     { return json.Marshal(a) }
func (a *hopperAgent) SetState(data []byte) error { return json.Unmarshal(data, a) }

// OnDispatchFailure reroutes around unreachable stops.
func (a *hopperAgent) OnDispatchFailure(ctx *Context, dest string, err error) {
	if dest == a.It.Home {
		ctx.RequestDispose()
		return
	}
	next, updated := a.It.Advance()
	a.It = updated
	ctx.RequestDispatch(next)
}

func testRegistry() *Registry {
	r := NewRegistry()
	r.Register("echo", func() Aglet { return &echoAgent{} })
	r.Register("hopper", func() Aglet { return &hopperAgent{} })
	return r
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestCreateAndSend(t *testing.T) {
	h := NewHost("h1", testRegistry())
	defer h.Close()
	p, err := h.Create("echo", "e1", nil)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := p.Send(testCtx(t), Message{Kind: "ping", Data: []byte("hello")})
	if err != nil {
		t.Fatal(err)
	}
	if string(reply.Data) != "hello#1" {
		t.Errorf("reply = %q", reply.Data)
	}
}

func TestCreateUnknownType(t *testing.T) {
	h := NewHost("h1", testRegistry())
	defer h.Close()
	if _, err := h.Create("nope", "x", nil); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("err = %v, want ErrUnknownType", err)
	}
}

func TestCreateDuplicateID(t *testing.T) {
	h := NewHost("h1", testRegistry())
	defer h.Close()
	if _, err := h.Create("echo", "e1", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Create("echo", "e1", nil); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("err = %v, want ErrDuplicateID", err)
	}
}

func TestSendToMissingAgent(t *testing.T) {
	h := NewHost("h1", testRegistry())
	defer h.Close()
	if _, err := h.Send(testCtx(t), "ghost", Message{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestMessagesSerializedPerAgent(t *testing.T) {
	h := NewHost("h1", testRegistry())
	defer h.Close()
	p, err := h.Create("echo", "e1", nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	var wg sync.WaitGroup
	counts := make([]int64, n+1)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reply, err := p.Send(testCtx(t), Message{Data: []byte("m")})
			if err != nil {
				t.Error(err)
				return
			}
			var seq int
			fmt.Sscanf(string(reply.Data), "m#%d", &seq)
			if seq >= 1 && seq <= n {
				atomic.AddInt64(&counts[seq], 1)
			}
		}()
	}
	wg.Wait()
	// Every sequence number 1..n must appear exactly once: proof the handler
	// never ran concurrently with itself.
	for seq := 1; seq <= n; seq++ {
		if counts[seq] != 1 {
			t.Fatalf("sequence %d seen %d times", seq, counts[seq])
		}
	}
}

func TestDisposeStopsAgent(t *testing.T) {
	h := NewHost("h1", testRegistry())
	defer h.Close()
	h.Create("echo", "e1", nil)
	if err := h.Dispose("e1"); err != nil {
		t.Fatal(err)
	}
	if h.Has("e1") {
		t.Error("agent still live after Dispose")
	}
	if _, err := h.Send(testCtx(t), "e1", Message{}); !errors.Is(err, ErrNotFound) {
		t.Errorf("Send after Dispose = %v", err)
	}
}

func TestDeactivateActivateRoundTrip(t *testing.T) {
	h := NewHost("h1", testRegistry())
	defer h.Close()
	p, _ := h.Create("echo", "e1", nil)
	for i := 0; i < 3; i++ {
		if _, err := p.Send(testCtx(t), Message{Data: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Deactivate("e1"); err != nil {
		t.Fatal(err)
	}
	if h.Has("e1") {
		t.Fatal("agent live after Deactivate")
	}
	if !h.HasStored("e1") {
		t.Fatal("agent not in store after Deactivate")
	}

	p2, err := h.Activate("e1")
	if err != nil {
		t.Fatal(err)
	}
	reply, err := p2.Send(testCtx(t), Message{Data: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	// Handled counter continues from 3: state survived the round trip.
	if string(reply.Data) != "x#4" {
		t.Errorf("reply after activate = %q, want x#4", reply.Data)
	}
}

func TestActivateMissing(t *testing.T) {
	h := NewHost("h1", testRegistry())
	defer h.Close()
	if _, err := h.Activate("never"); !errors.Is(err, ErrNotStored) {
		t.Fatalf("err = %v, want ErrNotStored", err)
	}
}

func TestStoredStateRoundTrip(t *testing.T) {
	h := NewHost("h1", testRegistry())
	defer h.Close()
	p, _ := h.Create("echo", "e1", nil)
	p.Send(testCtx(t), Message{Data: []byte("x")})
	h.Deactivate("e1")

	data, err := h.StoredState("e1")
	if err != nil {
		t.Fatal(err)
	}

	// A second host restores the stored agent, as the buyer server does
	// after a restart.
	h2 := NewHost("h2", testRegistry())
	defer h2.Close()
	if err := h2.RestoreStored("e1", data); err != nil {
		t.Fatal(err)
	}
	p2, err := h2.Activate("e1")
	if err != nil {
		t.Fatal(err)
	}
	reply, _ := p2.Send(testCtx(t), Message{Data: []byte("y")})
	if string(reply.Data) != "y#2" {
		t.Errorf("restored agent reply = %q, want y#2", reply.Data)
	}
}

func TestCloneCopiesState(t *testing.T) {
	h := NewHost("h1", testRegistry())
	defer h.Close()
	p, _ := h.Create("echo", "e1", nil)
	p.Send(testCtx(t), Message{Data: []byte("a")})
	p.Send(testCtx(t), Message{Data: []byte("b")})

	clone, err := h.Clone("e1", "e1-clone")
	if err != nil {
		t.Fatal(err)
	}
	reply, _ := clone.Send(testCtx(t), Message{Data: []byte("c")})
	if string(reply.Data) != "c#3" {
		t.Errorf("clone reply = %q, want c#3 (inherited Handled=2)", reply.Data)
	}
	// Parent and clone now diverge.
	reply, _ = p.Send(testCtx(t), Message{Data: []byte("d")})
	if string(reply.Data) != "d#3" {
		t.Errorf("parent reply = %q, want d#3", reply.Data)
	}
}

func TestCloneMissingParent(t *testing.T) {
	h := NewHost("h1", testRegistry())
	defer h.Close()
	if _, err := h.Clone("ghost", "c"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestDispatchMovesAgentBetweenHosts(t *testing.T) {
	lb := NewLoopback()
	h1 := NewHost("h1", testRegistry())
	h2 := NewHost("h2", testRegistry())
	defer h1.Close()
	defer h2.Close()
	lb.Attach(h1)
	lb.Attach(h2)

	p, _ := h1.Create("echo", "e1", nil)
	p.Send(testCtx(t), Message{Data: []byte("x")}) // Handled=1

	if err := h1.Dispatch(testCtx(t), "e1", "h2"); err != nil {
		t.Fatal(err)
	}
	if h1.Has("e1") {
		t.Error("agent still on h1 after dispatch")
	}
	if !h2.Has("e1") {
		t.Fatal("agent not on h2 after dispatch")
	}
	// State travelled: counter continues.
	reply, err := h2.Send(testCtx(t), "e1", Message{Data: []byte("y")})
	if err != nil {
		t.Fatal(err)
	}
	if string(reply.Data) != "y#2" {
		t.Errorf("reply on h2 = %q, want y#2", reply.Data)
	}
}

func TestDispatchWithoutTransport(t *testing.T) {
	h := NewHost("h1", testRegistry())
	defer h.Close()
	h.Create("echo", "e1", nil)
	if err := h.Dispatch(testCtx(t), "e1", "h2"); !errors.Is(err, ErrNoTransport) {
		t.Fatalf("err = %v, want ErrNoTransport", err)
	}
	// Failed dispatch must leave the agent usable.
	if _, err := h.Send(testCtx(t), "e1", Message{Data: []byte("x")}); err != nil {
		t.Errorf("agent unusable after failed dispatch: %v", err)
	}
}

func TestDispatchToUnknownHostRestoresAgent(t *testing.T) {
	lb := NewLoopback()
	h1 := NewHost("h1", testRegistry())
	defer h1.Close()
	lb.Attach(h1)
	h1.Create("echo", "e1", nil)
	if err := h1.Dispatch(testCtx(t), "e1", "nowhere"); err == nil {
		t.Fatal("Dispatch to unknown host succeeded")
	}
	if !h1.Has("e1") {
		t.Fatal("agent lost after failed dispatch")
	}
	if _, err := h1.Send(testCtx(t), "e1", Message{Data: []byte("x")}); err != nil {
		t.Errorf("agent unusable after failed dispatch: %v", err)
	}
}

func TestSelfDispatchViaItinerary(t *testing.T) {
	lb := NewLoopback()
	home := NewHost("home", testRegistry())
	m1 := NewHost("m1", testRegistry())
	m2 := NewHost("m2", testRegistry())
	m3 := NewHost("m3", testRegistry())
	for _, h := range []*Host{home, m1, m2, m3} {
		defer h.Close()
		lb.Attach(h)
	}

	it := NewItinerary("home", "m1", "m2", "m3")
	init, _ := json.Marshal(it)
	p, err := home.Create("hopper", "mba-1", init)
	if err != nil {
		t.Fatal(err)
	}
	// Kick off the trip: the agent requests its first hop from its handler.
	if _, err := p.Send(testCtx(t), Message{Kind: "go"}); err != nil {
		t.Fatal(err)
	}

	// The trip is asynchronous; wait for the agent to come home and park.
	deadline := time.After(5 * time.Second)
	for !home.HasStored("mba-1") {
		select {
		case <-deadline:
			t.Fatal("agent never returned home")
		case <-time.After(time.Millisecond):
		}
	}

	p2, err := home.Activate("mba-1")
	if err != nil {
		t.Fatal(err)
	}
	_ = p2
	// Inspect trip log via stored state of a fresh snapshot.
	if err := home.Deactivate("mba-1"); err != nil {
		t.Fatal(err)
	}
	data, _ := home.StoredState("mba-1")
	var rec struct {
		State []byte `json:"state"`
	}
	json.Unmarshal(data, &rec)
	var a hopperAgent
	if err := json.Unmarshal(rec.State, &a); err != nil {
		t.Fatal(err)
	}
	want := []string{"m1", "m2", "m3", "home"}
	if len(a.Visited) != len(want) {
		t.Fatalf("Visited = %v, want %v", a.Visited, want)
	}
	for i := range want {
		if a.Visited[i] != want[i] {
			t.Fatalf("Visited = %v, want %v", a.Visited, want)
		}
	}
}

func TestRemoteProxyCall(t *testing.T) {
	lb := NewLoopback()
	h1 := NewHost("h1", testRegistry())
	h2 := NewHost("h2", testRegistry())
	defer h1.Close()
	defer h2.Close()
	lb.Attach(h1)
	lb.Attach(h2)

	h2.Create("echo", "e2", nil)
	p := h1.RemoteProxy("h2", "e2")
	reply, err := p.Send(testCtx(t), Message{Data: []byte("over the wire")})
	if err != nil {
		t.Fatal(err)
	}
	if string(reply.Data) != "over the wire#1" {
		t.Errorf("reply = %q", reply.Data)
	}
}

func TestLifecycleHooks(t *testing.T) {
	var mu sync.Mutex
	var events []string
	hook := func(e LifecycleEvent, typ, id string) {
		mu.Lock()
		events = append(events, string(e)+":"+id)
		mu.Unlock()
	}
	h := NewHost("h1", testRegistry(), WithHook(hook))
	defer h.Close()

	h.Create("echo", "e1", nil)
	h.Clone("e1", "e2")
	h.Deactivate("e1")
	h.Activate("e1")
	h.Dispose("e2")

	mu.Lock()
	got := strings.Join(events, ",")
	mu.Unlock()
	want := "created:e1,cloned:e2,deactivated:e1,activated:e1,disposed:e2"
	if got != want {
		t.Errorf("events = %s, want %s", got, want)
	}
}

func TestCloseDisposesAllAndIsIdempotent(t *testing.T) {
	var disposed int64
	hook := func(e LifecycleEvent, typ, id string) {
		if e == EventDisposed {
			atomic.AddInt64(&disposed, 1)
		}
	}
	h := NewHost("h1", testRegistry(), WithHook(hook))
	for i := 0; i < 10; i++ {
		h.Create("echo", fmt.Sprintf("e%d", i), nil)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&disposed); got != 10 {
		t.Errorf("disposed = %d, want 10", got)
	}
	if _, err := h.Create("echo", "late", nil); !errors.Is(err, ErrHostClosed) {
		t.Errorf("Create after Close = %v", err)
	}
}

func TestSendContextCancellation(t *testing.T) {
	slow := NewRegistry()
	release := make(chan struct{})
	slow.Register("slow", func() Aglet {
		return &funcAgent{fn: func(_ *Context, m Message) (Message, error) {
			<-release
			return Message{}, nil
		}}
	})
	h := NewHost("h1", slow)
	defer func() {
		close(release)
		h.Close()
	}()
	h.Create("slow", "s1", nil)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := h.Send(ctx, "s1", Message{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// funcAgent adapts a function to the Aglet interface for small tests.
type funcAgent struct {
	Base
	fn func(*Context, Message) (Message, error)
}

func (f *funcAgent) HandleMessage(ctx *Context, msg Message) (Message, error) {
	return f.fn(ctx, msg)
}

func TestHandlerErrorPropagates(t *testing.T) {
	r := NewRegistry()
	wantErr := errors.New("handler exploded")
	r.Register("bad", func() Aglet {
		return &funcAgent{fn: func(*Context, Message) (Message, error) {
			return Message{}, wantErr
		}}
	})
	h := NewHost("h1", r)
	defer h.Close()
	h.Create("bad", "b1", nil)
	_, err := h.Send(testCtx(t), "b1", Message{})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}

func TestSelfDisposeViaContext(t *testing.T) {
	r := NewRegistry()
	r.Register("kamikaze", func() Aglet {
		return &funcAgent{fn: func(ctx *Context, m Message) (Message, error) {
			ctx.RequestDispose()
			return Message{Kind: "bye"}, nil
		}}
	})
	h := NewHost("h1", r)
	defer h.Close()
	h.Create("kamikaze", "k1", nil)
	reply, err := h.Send(testCtx(t), "k1", Message{})
	if err != nil || reply.Kind != "bye" {
		t.Fatal(err)
	}
	// The dispose settles after the reply; poll briefly.
	deadline := time.After(2 * time.Second)
	for h.Has("k1") {
		select {
		case <-deadline:
			t.Fatal("agent never disposed itself")
		case <-time.After(time.Millisecond):
		}
	}
}

func TestSelfDeactivateViaContext(t *testing.T) {
	r := NewRegistry()
	r.Register("sleeper", func() Aglet {
		return &funcAgent{fn: func(ctx *Context, m Message) (Message, error) {
			ctx.RequestDeactivate()
			return Message{Kind: "zzz"}, nil
		}}
	})
	h := NewHost("h1", r)
	defer h.Close()
	h.Create("sleeper", "s1", nil)
	if _, err := h.Send(testCtx(t), "s1", Message{}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for !h.HasStored("s1") {
		select {
		case <-deadline:
			t.Fatal("agent never deactivated itself")
		case <-time.After(time.Millisecond):
		}
	}
}

func TestAgentsListing(t *testing.T) {
	h := NewHost("h1", testRegistry())
	defer h.Close()
	h.Create("echo", "a", nil)
	h.Create("echo", "b", nil)
	got := h.Agents()
	if len(got) != 2 {
		t.Fatalf("Agents = %v", got)
	}
}

func TestMetaTravelsWithAgent(t *testing.T) {
	lb := NewLoopback()
	r := NewRegistry()
	var gotMeta map[string]string
	var metaMu sync.Mutex
	r.Register("courier", func() Aglet {
		return &metaAgent{onArrive: func(m map[string]string) {
			metaMu.Lock()
			gotMeta = m
			metaMu.Unlock()
		}}
	})
	h1 := NewHost("h1", r)
	h2 := NewHost("h2", r)
	defer h1.Close()
	defer h2.Close()
	lb.Attach(h1)
	lb.Attach(h2)

	h1.Create("courier", "c1", nil)
	h1.Send(testCtx(t), "c1", Message{Kind: "set-meta"})
	if err := h1.Dispatch(testCtx(t), "c1", "h2"); err != nil {
		t.Fatal(err)
	}
	metaMu.Lock()
	defer metaMu.Unlock()
	if gotMeta["token"] != "travel-credential" {
		t.Errorf("meta after dispatch = %v", gotMeta)
	}
}

type metaAgent struct {
	Base
	onArrive func(map[string]string)
}

func (m *metaAgent) OnArrival(ctx *Context) error {
	if m.onArrive != nil {
		m.onArrive(ctx.Meta())
	}
	return nil
}

func (m *metaAgent) HandleMessage(ctx *Context, msg Message) (Message, error) {
	if msg.Kind == "set-meta" {
		ctx.SetMeta(map[string]string{"token": "travel-credential"})
	}
	return Message{Kind: "ok"}, nil
}

func TestLoopbackStats(t *testing.T) {
	lb := NewLoopback()
	h1 := NewHost("h1", testRegistry())
	h2 := NewHost("h2", testRegistry())
	defer h1.Close()
	defer h2.Close()
	lb.Attach(h1)
	lb.Attach(h2)

	h2.Create("echo", "e", nil)
	p := h1.RemoteProxy("h2", "e")
	p.Send(testCtx(t), Message{Data: []byte("12345")})

	h1.Create("echo", "mover", nil)
	h1.Dispatch(testCtx(t), "mover", "h2")

	d, c, b := lb.Stats()
	if d != 1 || c != 1 {
		t.Errorf("Stats = %d dispatches, %d calls", d, c)
	}
	if b <= 0 {
		t.Errorf("bytesMoved = %d, want > 0", b)
	}
	lb.ResetStats()
	if d, c, b = lb.Stats(); d+c != 0 || b != 0 {
		t.Error("ResetStats did not zero counters")
	}
}

func TestPerHopLatency(t *testing.T) {
	lb := NewLoopback()
	h1 := NewHost("h1", testRegistry())
	h2 := NewHost("h2", testRegistry())
	defer h1.Close()
	defer h2.Close()
	lb.Attach(h1)
	lb.Attach(h2)
	var hops int64
	lb.SetPerHop(func(string) { atomic.AddInt64(&hops, 1) })

	h2.Create("echo", "e", nil)
	h1.RemoteProxy("h2", "e").Send(testCtx(t), Message{})
	if atomic.LoadInt64(&hops) != 1 {
		t.Errorf("hops = %d, want 1", hops)
	}
}

func TestItinerary(t *testing.T) {
	it := NewItinerary("home", "a", "b")
	if it.Current() != "a" || it.Done() || it.Remaining() != 2 {
		t.Fatalf("fresh itinerary: %+v", it)
	}
	next, it := it.Advance()
	if next != "b" || it.Remaining() != 1 {
		t.Fatalf("after first advance: next=%s %+v", next, it)
	}
	next, it = it.Advance()
	if next != "home" || !it.Done() || it.Remaining() != 0 {
		t.Fatalf("after second advance: next=%s %+v", next, it)
	}
	// Advancing a done itinerary keeps pointing home.
	next, it = it.Advance()
	if next != "home" || !it.Done() {
		t.Fatalf("after extra advance: next=%s %+v", next, it)
	}
}

func TestItineraryEmptyTripGoesHome(t *testing.T) {
	it := NewItinerary("home")
	if !it.Done() || it.Current() != "home" {
		t.Fatalf("empty itinerary: %+v", it)
	}
}

func TestRegistryTypes(t *testing.T) {
	r := testRegistry()
	got := r.Types()
	if len(got) != 2 {
		t.Errorf("Types = %v", got)
	}
}

func TestConcurrentLifecycleChurn(t *testing.T) {
	// Experiment C6: the agent population is elastic; heavy create/dispose
	// churn must not leak or deadlock.
	h := NewHost("h1", testRegistry())
	defer h.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := fmt.Sprintf("g%d-e%d", g, i)
				p, err := h.Create("echo", id, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := p.Send(testCtx(t), Message{Data: []byte("x")}); err != nil {
					t.Error(err)
					return
				}
				if err := h.Dispose(id); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := len(h.Agents()); n != 0 {
		t.Errorf("agents leaked: %d live", n)
	}
}

func TestRetractPullsAgentBack(t *testing.T) {
	lb := NewLoopback()
	h1 := NewHost("h1", testRegistry())
	h2 := NewHost("h2", testRegistry())
	defer h1.Close()
	defer h2.Close()
	lb.Attach(h1)
	lb.Attach(h2)

	p, _ := h1.Create("echo", "wanderer", nil)
	p.Send(testCtx(t), Message{Data: []byte("x")}) // Handled=1
	if err := h1.Dispatch(testCtx(t), "wanderer", "h2"); err != nil {
		t.Fatal(err)
	}
	// Pull it back from h2.
	if err := h1.Retract(testCtx(t), "h2", "wanderer"); err != nil {
		t.Fatal(err)
	}
	if h2.Has("wanderer") {
		t.Error("agent still on h2 after retract")
	}
	if !h1.Has("wanderer") {
		t.Fatal("agent not back on h1")
	}
	reply, err := h1.Send(testCtx(t), "wanderer", Message{Data: []byte("y")})
	if err != nil {
		t.Fatal(err)
	}
	if string(reply.Data) != "y#2" {
		t.Errorf("state lost in retract: %s", reply.Data)
	}
}

func TestRetractMissingAgent(t *testing.T) {
	lb := NewLoopback()
	h1 := NewHost("h1", testRegistry())
	h2 := NewHost("h2", testRegistry())
	defer h1.Close()
	defer h2.Close()
	lb.Attach(h1)
	lb.Attach(h2)
	if err := h1.Retract(testCtx(t), "h2", "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestRetractWithoutTransport(t *testing.T) {
	h := NewHost("h1", testRegistry())
	defer h.Close()
	if err := h.Retract(testCtx(t), "h2", "x"); !errors.Is(err, ErrNoTransport) {
		t.Fatalf("err = %v, want ErrNoTransport", err)
	}
}

func TestSurrenderDirect(t *testing.T) {
	h := NewHost("h1", testRegistry())
	defer h.Close()
	h.Create("echo", "a", nil)
	img, err := h.Surrender("a")
	if err != nil {
		t.Fatal(err)
	}
	if img.Type != "echo" || img.ID != "a" || img.Owner != "h1" {
		t.Errorf("image = %+v", img)
	}
	if h.Has("a") {
		t.Error("agent still live after Surrender")
	}
	if _, err := h.Surrender("a"); !errors.Is(err, ErrNotFound) {
		t.Errorf("second surrender: %v", err)
	}
}

func TestRestoreStoredGarbage(t *testing.T) {
	h := NewHost("h1", testRegistry())
	defer h.Close()
	if err := h.RestoreStored("x", []byte("{bad")); err == nil {
		t.Fatal("garbage stored-state accepted")
	}
}

func TestRestoreStoredAfterClose(t *testing.T) {
	h := NewHost("h1", testRegistry())
	h.Close()
	if err := h.RestoreStored("x", []byte(`{"type":"echo"}`)); !errors.Is(err, ErrHostClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestStoredStateMissing(t *testing.T) {
	h := NewHost("h1", testRegistry())
	defer h.Close()
	if _, err := h.StoredState("ghost"); !errors.Is(err, ErrNotStored) {
		t.Fatalf("err = %v", err)
	}
}

func TestDiscardStored(t *testing.T) {
	h := NewHost("h1", testRegistry())
	defer h.Close()
	h.Create("echo", "a", nil)
	h.Deactivate("a")
	if err := h.DiscardStored("a"); err != nil {
		t.Fatal(err)
	}
	if h.HasStored("a") {
		t.Error("agent still stored after discard")
	}
	if err := h.DiscardStored("a"); !errors.Is(err, ErrNotStored) {
		t.Errorf("second discard: %v", err)
	}
}

func TestActivateWithUnregisteredType(t *testing.T) {
	// An agent stored under a type the registry no longer knows cannot be
	// revived; the error names the type.
	h := NewHost("h1", testRegistry())
	defer h.Close()
	if err := h.RestoreStored("alien", []byte(`{"type":"martian","state":null}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Activate("alien"); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("err = %v", err)
	}
}

func TestProxyAccessors(t *testing.T) {
	h := NewHost("h1", testRegistry())
	defer h.Close()
	p, _ := h.Create("echo", "e1", nil)
	if p.ID() != "e1" || p.HostAddr() != "h1" {
		t.Errorf("proxy = %s@%s", p.ID(), p.HostAddr())
	}
	if _, err := h.Proxy("e1"); err != nil {
		t.Errorf("Proxy: %v", err)
	}
	if _, err := h.Proxy("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Proxy(ghost): %v", err)
	}
}

func TestRemoteProxyWithoutTransport(t *testing.T) {
	h := NewHost("h1", testRegistry())
	defer h.Close()
	p := h.RemoteProxy("elsewhere", "x")
	if _, err := p.Send(testCtx(t), Message{}); !errors.Is(err, ErrNoTransport) {
		t.Fatalf("err = %v", err)
	}
}

func TestWithInboxCapacity(t *testing.T) {
	h := NewHost("h1", testRegistry(), WithInboxCapacity(1))
	defer h.Close()
	if _, err := h.Create("echo", "e", nil); err != nil {
		t.Fatal(err)
	}
	// Capacity 1 still serves sequential traffic fine.
	for i := 0; i < 5; i++ {
		if _, err := h.Send(testCtx(t), "e", Message{Data: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	// Invalid capacity ignored.
	h2 := NewHost("h2", testRegistry(), WithInboxCapacity(-3))
	defer h2.Close()
	if _, err := h2.Create("echo", "e", nil); err != nil {
		t.Fatal(err)
	}
}

func TestDispatchFailureHandlerSkipsDeadHost(t *testing.T) {
	lb := NewLoopback()
	home := NewHost("home", testRegistry())
	m2 := NewHost("m2", testRegistry())
	defer home.Close()
	defer m2.Close()
	lb.Attach(home)
	lb.Attach(m2)
	// Itinerary visits the nonexistent m1 first; the hopper must reroute.
	it := NewItinerary("home", "m1", "m2")
	init, _ := json.Marshal(it)
	p, err := home.Create("hopper", "resilient", init)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Send(testCtx(t), Message{Kind: "go"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for !home.HasStored("resilient") {
		select {
		case <-deadline:
			t.Fatal("agent never returned home")
		case <-time.After(time.Millisecond):
		}
	}
	data, _ := home.StoredState("resilient")
	var rec struct {
		State []byte `json:"state"`
	}
	json.Unmarshal(data, &rec)
	var a hopperAgent
	if err := json.Unmarshal(rec.State, &a); err != nil {
		t.Fatal(err)
	}
	// m1 skipped, m2 and home visited.
	want := []string{"m2", "home"}
	if len(a.Visited) != len(want) || a.Visited[0] != want[0] || a.Visited[1] != want[1] {
		t.Fatalf("Visited = %v, want %v", a.Visited, want)
	}
}

func TestItineraryJSONRoundTripProperty(t *testing.T) {
	fn := func(stops []string, index uint8) bool {
		it := NewItinerary("home", stops...)
		it.Index = int(index) % (len(stops) + 1)
		data, err := json.Marshal(it)
		if err != nil {
			return false
		}
		var got Itinerary
		if err := json.Unmarshal(data, &got); err != nil {
			return false
		}
		return got.Current() == it.Current() && got.Done() == it.Done() &&
			got.Remaining() == it.Remaining()
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
