package aglet

// Itinerary is a serializable travel plan for a mobile agent: the ordered
// hosts to visit and how far along the trip the agent is. The paper's Mobile
// Buyer Agent visits "more than two online marketplaces" (§5.1 capability 3)
// before returning to its Buyer Agent Server; Itinerary captures that route.
//
// The type is plain data so it embeds directly in an agent's JSON state.
type Itinerary struct {
	Stops []string `json:"stops"` // hosts to visit, in order
	Home  string   `json:"home"`  // where to return after the last stop
	Index int      `json:"index"` // next stop to visit; len(Stops) means homebound
}

// NewItinerary plans a trip through stops and back to home.
func NewItinerary(home string, stops ...string) Itinerary {
	return Itinerary{Stops: append([]string(nil), stops...), Home: home}
}

// Current returns the host the agent is presently due at: the stop at Index,
// or Home once all stops are done.
func (it Itinerary) Current() string {
	if it.Index < len(it.Stops) {
		return it.Stops[it.Index]
	}
	return it.Home
}

// Done reports whether every stop has been visited.
func (it Itinerary) Done() bool { return it.Index >= len(it.Stops) }

// Advance marks the current stop visited and returns the next destination
// (a stop or, when the trip is complete, Home) together with the updated
// itinerary. Calling Advance on a completed itinerary keeps returning Home.
func (it Itinerary) Advance() (next string, updated Itinerary) {
	if it.Index < len(it.Stops) {
		it.Index++
	}
	return it.Current(), it
}

// Remaining returns how many stops are still unvisited.
func (it Itinerary) Remaining() int {
	if it.Done() {
		return 0
	}
	return len(it.Stops) - it.Index
}
