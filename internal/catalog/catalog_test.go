package catalog

import (
	"errors"
	"testing"

	"agentrec/internal/profile"
)

func prod(id, cat string, price int64, terms map[string]float64) *Product {
	return &Product{
		ID: id, Name: "Product " + id, Category: cat,
		Terms: terms, PriceCents: price, SellerID: "s1", Stock: 10,
	}
}

func TestAddGetRoundTrip(t *testing.T) {
	c := New()
	p := prod("p1", "laptop", 99900, map[string]float64{"ssd": 1})
	if err := c.Add(p); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("p1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "Product p1" || got.PriceCents != 99900 {
		t.Errorf("got %+v", got)
	}
}

func TestAddValidates(t *testing.T) {
	c := New()
	if err := c.Add(&Product{Category: "x"}); !errors.Is(err, ErrNoID) {
		t.Errorf("missing id: %v", err)
	}
	if err := c.Add(&Product{ID: "p"}); !errors.Is(err, ErrNoCategory) {
		t.Errorf("missing category: %v", err)
	}
	if err := c.Add(&Product{ID: "p", Category: "c", PriceCents: -1}); !errors.Is(err, ErrBadPrice) {
		t.Errorf("negative price: %v", err)
	}
}

func TestAddDuplicate(t *testing.T) {
	c := New()
	c.Add(prod("p1", "laptop", 1, nil))
	if err := c.Add(prod("p1", "laptop", 2, nil)); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate add: %v", err)
	}
}

func TestUpsertReplaces(t *testing.T) {
	c := New()
	c.Add(prod("p1", "laptop", 100, nil))
	if err := c.Upsert(prod("p1", "laptop", 200, nil)); err != nil {
		t.Fatal(err)
	}
	got, _ := c.Get("p1")
	if got.PriceCents != 200 {
		t.Errorf("price = %d after upsert", got.PriceCents)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	c := New()
	c.Add(prod("p1", "laptop", 100, map[string]float64{"ssd": 1}))
	got, _ := c.Get("p1")
	got.Terms["ssd"] = 999
	got2, _ := c.Get("p1")
	if got2.Terms["ssd"] != 1 {
		t.Error("Get aliases catalog internals")
	}
}

func TestAddCopiesProduct(t *testing.T) {
	c := New()
	p := prod("p1", "laptop", 100, map[string]float64{"ssd": 1})
	c.Add(p)
	p.Terms["ssd"] = 999
	got, _ := c.Get("p1")
	if got.Terms["ssd"] != 1 {
		t.Error("Add aliased caller's product")
	}
}

func TestRemove(t *testing.T) {
	c := New()
	c.Add(prod("p1", "laptop", 1, nil))
	if err := c.Remove("p1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("p1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("second remove: %v", err)
	}
}

func TestAdjustStock(t *testing.T) {
	c := New()
	c.Add(prod("p1", "laptop", 1, nil)) // stock 10
	n, err := c.AdjustStock("p1", -3)
	if err != nil || n != 7 {
		t.Fatalf("AdjustStock = %d, %v", n, err)
	}
	if _, err := c.AdjustStock("p1", -100); err == nil {
		t.Fatal("oversell allowed")
	}
	if _, err := c.AdjustStock("ghost", 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing product: %v", err)
	}
}

func TestSearchFiltersAndRanks(t *testing.T) {
	c := New()
	c.Add(prod("cheap-match", "laptop", 50000, map[string]float64{"ssd": 0.5}))
	c.Add(prod("strong-match", "laptop", 90000, map[string]float64{"ssd": 2}))
	c.Add(prod("other-cat", "camera", 10000, map[string]float64{"ssd": 9}))
	c.Add(prod("no-term", "laptop", 100, map[string]float64{"hdd": 1}))

	got := c.Search(Query{Category: "laptop", Terms: []string{"ssd"}})
	if len(got) != 2 {
		t.Fatalf("Search = %d matches, want 2", len(got))
	}
	if got[0].Product.ID != "strong-match" {
		t.Errorf("first = %s, want strong-match", got[0].Product.ID)
	}
}

func TestSearchPriceCapAndLimit(t *testing.T) {
	c := New()
	c.Add(prod("a", "laptop", 100, map[string]float64{"x": 1}))
	c.Add(prod("b", "laptop", 200, map[string]float64{"x": 1}))
	c.Add(prod("c", "laptop", 300, map[string]float64{"x": 1}))
	got := c.Search(Query{Category: "laptop", MaxPrice: 250})
	if len(got) != 2 {
		t.Fatalf("MaxPrice filter: %d matches", len(got))
	}
	got = c.Search(Query{Category: "laptop", Limit: 1})
	if len(got) != 1 {
		t.Fatalf("Limit: %d matches", len(got))
	}
	// Category-only query ranks by price ascending.
	if got[0].Product.ID != "a" {
		t.Errorf("cheapest first, got %s", got[0].Product.ID)
	}
}

func TestSearchSkipsOutOfStock(t *testing.T) {
	c := New()
	p := prod("gone", "laptop", 100, map[string]float64{"x": 1})
	p.Stock = 0
	c.Add(p)
	if got := c.Search(Query{Category: "laptop"}); len(got) != 0 {
		t.Errorf("out-of-stock product returned: %v", got)
	}
}

func TestSearchSubCategory(t *testing.T) {
	c := New()
	p := prod("nb", "computer", 100, map[string]float64{"x": 1})
	p.SubCategory = "notebook"
	c.Add(p)
	p2 := prod("dt", "computer", 100, map[string]float64{"x": 1})
	p2.SubCategory = "desktop"
	c.Add(p2)
	got := c.Search(Query{Category: "computer", SubCategory: "notebook"})
	if len(got) != 1 || got[0].Product.ID != "nb" {
		t.Errorf("sub-category filter: %v", got)
	}
}

func TestCategoriesAndLenAndAll(t *testing.T) {
	c := New()
	c.Add(prod("a", "laptop", 1, nil))
	c.Add(prod("b", "camera", 1, nil))
	cats := c.Categories()
	if len(cats) != 2 || cats[0] != "camera" || cats[1] != "laptop" {
		t.Errorf("Categories = %v", cats)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	all := c.All()
	if len(all) != 2 || all[0].ID != "a" {
		t.Errorf("All = %v", all)
	}
}

func TestProductEvidence(t *testing.T) {
	p := prod("p1", "computer", 100, map[string]float64{"fast": 0.9})
	p.SubCategory = "notebook"
	ev := p.Evidence(profile.BehaviourBuy)
	if ev.Category != "computer" || ev.SubCategory != "notebook" {
		t.Errorf("evidence categories: %+v", ev)
	}
	if ev.Terms["fast"] != 0.9 || ev.SubTerms["fast"] != 0.9 {
		t.Errorf("evidence terms: %+v", ev)
	}
	// Evidence must not alias the product's map.
	ev.Terms["fast"] = 42
	if p.Terms["fast"] != 0.9 {
		t.Error("Evidence aliased product terms")
	}
	// Profile accepts it directly.
	prof := profile.NewProfile("u")
	if err := prof.Observe(ev); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeCategory(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Laptop", "laptop"},
		{"  Home   Audio  ", "home-audio"},
		{"", ""},
		{"GAMING  PC", "gaming-pc"},
	}
	for _, tt := range tests {
		if got := NormalizeCategory(tt.in); got != tt.want {
			t.Errorf("NormalizeCategory(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
