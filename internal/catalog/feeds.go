package catalog

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The paper's abstract names the first drawback of 2004-era online markets:
// "Because of the different product data format in database and
// representation, it is difficult to exchange information between the two
// online markets." The Seller Server's job is to integrate heterogeneous
// merchandise data. This file implements two deliberately different feed
// formats — a JSON feed and a legacy CSV feed with different field
// conventions — and an Integrator that normalizes both into Products.

// ErrBadFeed reports an unparseable feed.
var ErrBadFeed = errors.New("catalog: malformed feed")

// jsonFeedItem is the "modern" feed shape: keywords without weights,
// price in cents, explicit subcategory field.
type jsonFeedItem struct {
	SKU        string   `json:"sku"`
	Title      string   `json:"title"`
	Cat        string   `json:"cat"`
	SubCat     string   `json:"subcat"`
	Keywords   []string `json:"keywords"`
	PriceCents int64    `json:"price_cents"`
	Qty        int      `json:"qty"`
}

// ParseJSONFeed reads a JSON array of feed items from r and normalizes it.
// Keywords become terms with weight 1. Categories are canonicalized.
func ParseJSONFeed(r io.Reader, sellerID string) ([]*Product, error) {
	var items []jsonFeedItem
	dec := json.NewDecoder(r)
	if err := dec.Decode(&items); err != nil {
		return nil, fmt.Errorf("%w: json: %v", ErrBadFeed, err)
	}
	out := make([]*Product, 0, len(items))
	for i, it := range items {
		if it.SKU == "" {
			return nil, fmt.Errorf("%w: json item %d: missing sku", ErrBadFeed, i)
		}
		terms := make(map[string]float64, len(it.Keywords))
		for _, kw := range it.Keywords {
			kw = strings.ToLower(strings.TrimSpace(kw))
			if kw != "" {
				terms[kw] = 1
			}
		}
		p := &Product{
			ID:          sellerID + ":" + it.SKU,
			Name:        it.Title,
			Category:    NormalizeCategory(it.Cat),
			SubCategory: NormalizeCategory(it.SubCat),
			Terms:       terms,
			PriceCents:  it.PriceCents,
			SellerID:    sellerID,
			Stock:       it.Qty,
		}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("%w: json item %d: %v", ErrBadFeed, i, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// ParseCSVFeed reads the legacy comma-separated feed:
//
//	id,name,category>subcategory,term:weight;term:weight,price_dollars,stock
//
// Prices are decimal dollars ("129.99"); term weights are attached with
// colons and separated by semicolons; the category path uses '>'.
func ParseCSVFeed(r io.Reader, sellerID string) ([]*Product, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 6
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%w: csv: %v", ErrBadFeed, err)
	}
	out := make([]*Product, 0, len(records))
	for i, rec := range records {
		id, name, catPath, termSpec, priceStr, stockStr := rec[0], rec[1], rec[2], rec[3], rec[4], rec[5]
		if id == "" {
			return nil, fmt.Errorf("%w: csv row %d: missing id", ErrBadFeed, i+1)
		}
		cat, sub := catPath, ""
		if idx := strings.IndexByte(catPath, '>'); idx >= 0 {
			cat, sub = catPath[:idx], catPath[idx+1:]
		}
		terms := make(map[string]float64)
		if termSpec != "" {
			for _, pair := range strings.Split(termSpec, ";") {
				term, weightStr, found := strings.Cut(pair, ":")
				term = strings.ToLower(strings.TrimSpace(term))
				if term == "" {
					continue
				}
				weight := 1.0
				if found {
					weight, err = strconv.ParseFloat(strings.TrimSpace(weightStr), 64)
					if err != nil || weight < 0 {
						return nil, fmt.Errorf("%w: csv row %d: bad term weight %q", ErrBadFeed, i+1, pair)
					}
				}
				terms[term] = weight
			}
		}
		price, err := parseDollars(priceStr)
		if err != nil {
			return nil, fmt.Errorf("%w: csv row %d: %v", ErrBadFeed, i+1, err)
		}
		stock, err := strconv.Atoi(strings.TrimSpace(stockStr))
		if err != nil {
			return nil, fmt.Errorf("%w: csv row %d: bad stock %q", ErrBadFeed, i+1, stockStr)
		}
		p := &Product{
			ID:          sellerID + ":" + id,
			Name:        name,
			Category:    NormalizeCategory(cat),
			SubCategory: NormalizeCategory(sub),
			Terms:       terms,
			PriceCents:  price,
			SellerID:    sellerID,
			Stock:       stock,
		}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("%w: csv row %d: %v", ErrBadFeed, i+1, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// parseDollars converts a decimal dollar string ("129.99", "5", "0.5") to
// cents without floating-point rounding.
func parseDollars(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty price")
	}
	neg := strings.HasPrefix(s, "-")
	if neg {
		return 0, fmt.Errorf("negative price %q", s)
	}
	whole, frac, _ := strings.Cut(s, ".")
	if whole == "" {
		whole = "0"
	}
	dollars, err := strconv.ParseInt(whole, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad price %q", s)
	}
	cents := int64(0)
	if frac != "" {
		if len(frac) > 2 {
			frac = frac[:2] // truncate sub-cent precision
		}
		for len(frac) < 2 {
			frac += "0"
		}
		cents, err = strconv.ParseInt(frac, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad price %q", s)
		}
	}
	return dollars*100 + cents, nil
}

// Integrator merges heterogeneous seller feeds into one catalog, reporting
// per-feed counts: the Seller Server's "integrating and cataloging" duty.
type Integrator struct {
	catalog *Catalog
}

// NewIntegrator returns an integrator writing into cat.
func NewIntegrator(cat *Catalog) *Integrator {
	return &Integrator{catalog: cat}
}

// IntegrateJSON parses a JSON feed and upserts its products.
func (in *Integrator) IntegrateJSON(r io.Reader, sellerID string) (int, error) {
	ps, err := ParseJSONFeed(r, sellerID)
	if err != nil {
		return 0, err
	}
	return in.upsertAll(ps)
}

// IntegrateCSV parses a legacy CSV feed and upserts its products.
func (in *Integrator) IntegrateCSV(r io.Reader, sellerID string) (int, error) {
	ps, err := ParseCSVFeed(r, sellerID)
	if err != nil {
		return 0, err
	}
	return in.upsertAll(ps)
}

func (in *Integrator) upsertAll(ps []*Product) (int, error) {
	for i, p := range ps {
		if err := in.catalog.Upsert(p); err != nil {
			return i, fmt.Errorf("catalog: integrating %s: %w", p.ID, err)
		}
	}
	return len(ps), nil
}
