package catalog

import (
	"errors"
	"strings"
	"testing"
)

const jsonFeed = `[
  {"sku":"NB-100","title":"UltraBook 13","cat":"Computer","subcat":"Notebook",
   "keywords":["Light","SSD","13inch"],"price_cents":129900,"qty":5},
  {"sku":"NB-200","title":"GameBook 17","cat":"computer","subcat":"NOTEBOOK",
   "keywords":["gpu","rgb"],"price_cents":229900,"qty":2}
]`

const csvFeed = `L-1,Legacy Laptop,Computer>Notebook,light:0.8;ssd:1.0,999.99,3
L-2,Legacy Tower,Computer>Desktop,quiet;big:2,450,7`

func TestParseJSONFeed(t *testing.T) {
	ps, err := ParseJSONFeed(strings.NewReader(jsonFeed), "sellerA")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("parsed %d products", len(ps))
	}
	p := ps[0]
	if p.ID != "sellerA:NB-100" {
		t.Errorf("ID = %s", p.ID)
	}
	if p.Category != "computer" || p.SubCategory != "notebook" {
		t.Errorf("categories not normalized: %s/%s", p.Category, p.SubCategory)
	}
	if p.Terms["ssd"] != 1 || p.Terms["light"] != 1 {
		t.Errorf("terms = %v", p.Terms)
	}
	if p.PriceCents != 129900 || p.Stock != 5 {
		t.Errorf("price/stock = %d/%d", p.PriceCents, p.Stock)
	}
}

func TestParseJSONFeedErrors(t *testing.T) {
	if _, err := ParseJSONFeed(strings.NewReader("not json"), "s"); !errors.Is(err, ErrBadFeed) {
		t.Errorf("garbage: %v", err)
	}
	if _, err := ParseJSONFeed(strings.NewReader(`[{"title":"no sku"}]`), "s"); !errors.Is(err, ErrBadFeed) {
		t.Errorf("missing sku: %v", err)
	}
	if _, err := ParseJSONFeed(strings.NewReader(`[{"sku":"x","title":"no cat"}]`), "s"); !errors.Is(err, ErrBadFeed) {
		t.Errorf("missing category: %v", err)
	}
}

func TestParseCSVFeed(t *testing.T) {
	ps, err := ParseCSVFeed(strings.NewReader(csvFeed), "sellerB")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("parsed %d products", len(ps))
	}
	p := ps[0]
	if p.ID != "sellerB:L-1" {
		t.Errorf("ID = %s", p.ID)
	}
	if p.Category != "computer" || p.SubCategory != "notebook" {
		t.Errorf("category path not split: %s/%s", p.Category, p.SubCategory)
	}
	if p.Terms["light"] != 0.8 || p.Terms["ssd"] != 1.0 {
		t.Errorf("weighted terms = %v", p.Terms)
	}
	// 999.99 dollars = 99999 cents, no float rounding.
	if p.PriceCents != 99999 {
		t.Errorf("price = %d, want 99999", p.PriceCents)
	}
	// Unweighted term defaults to 1; "big:2" keeps 2.
	p2 := ps[1]
	if p2.Terms["quiet"] != 1 || p2.Terms["big"] != 2 {
		t.Errorf("terms = %v", p2.Terms)
	}
	if p2.PriceCents != 45000 {
		t.Errorf("whole-dollar price = %d, want 45000", p2.PriceCents)
	}
}

func TestParseCSVFeedErrors(t *testing.T) {
	cases := []string{
		`only,three,fields`,
		`id,name,cat,term:notanumber,1.00,1`,
		`id,name,cat,term:1,notaprice,1`,
		`id,name,cat,term:1,1.00,notastock`,
		`,name,cat,term:1,1.00,1`,
	}
	for _, in := range cases {
		if _, err := ParseCSVFeed(strings.NewReader(in), "s"); !errors.Is(err, ErrBadFeed) {
			t.Errorf("ParseCSVFeed(%q) = %v, want ErrBadFeed", in, err)
		}
	}
}

func TestParseDollars(t *testing.T) {
	tests := []struct {
		in      string
		want    int64
		wantErr bool
	}{
		{"129.99", 12999, false},
		{"5", 500, false},
		{"0.5", 50, false},
		{"0.05", 5, false},
		{"10.999", 1099, false}, // sub-cent truncated
		{"", 0, true},
		{"-3", 0, true},
		{"abc", 0, true},
	}
	for _, tt := range tests {
		got, err := parseDollars(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseDollars(%q) err = %v", tt.in, err)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("parseDollars(%q) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestIntegratorMergesHeterogeneousFeeds(t *testing.T) {
	// The headline scenario: two sellers with different data formats end up
	// in one searchable catalog with comparable categories.
	cat := New()
	in := NewIntegrator(cat)
	nJSON, err := in.IntegrateJSON(strings.NewReader(jsonFeed), "sellerA")
	if err != nil {
		t.Fatal(err)
	}
	nCSV, err := in.IntegrateCSV(strings.NewReader(csvFeed), "sellerB")
	if err != nil {
		t.Fatal(err)
	}
	if nJSON != 2 || nCSV != 2 {
		t.Fatalf("integrated %d+%d, want 2+2", nJSON, nCSV)
	}
	// Cross-seller search in the unified category space.
	got := cat.Search(Query{Category: "computer", SubCategory: "notebook", Terms: []string{"ssd"}})
	if len(got) != 2 {
		t.Fatalf("cross-seller search found %d, want 2 (one per seller)", len(got))
	}
	sellers := map[string]bool{}
	for _, m := range got {
		sellers[m.Product.SellerID] = true
	}
	if !sellers["sellerA"] || !sellers["sellerB"] {
		t.Errorf("results not cross-seller: %v", sellers)
	}
}

func TestIntegratorPropagatesParseErrors(t *testing.T) {
	in := NewIntegrator(New())
	if _, err := in.IntegrateJSON(strings.NewReader("x"), "s"); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, err := in.IntegrateCSV(strings.NewReader("x"), "s"); err == nil {
		t.Fatal("bad CSV accepted")
	}
}
