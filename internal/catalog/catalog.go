// Package catalog models merchandise: products carrying the weighted
// characteristic terms the profile model learns from, indexed for the query
// service marketplaces expose. It also implements the Seller Server duty the
// paper assigns in §3.2(4) — "integrating and cataloging merchandise" — by
// normalizing two deliberately different seller feed formats into one
// catalog, exercising the heterogeneous-product-data drawback the paper's
// abstract motivates.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"agentrec/internal/profile"
)

// Errors reported by the package.
var (
	ErrNoID        = errors.New("catalog: product has no id")
	ErrNoCategory  = errors.New("catalog: product has no category")
	ErrBadPrice    = errors.New("catalog: negative price")
	ErrNotFound    = errors.New("catalog: product not found")
	ErrDuplicateID = errors.New("catalog: duplicate product id")
)

// Product is one piece of merchandise. Price is in cents (integer money per
// the style guide). Terms carry the w_ji weights the Fig 4.4 update rule
// consumes when a consumer interacts with this product.
type Product struct {
	ID          string             `json:"id"`
	Name        string             `json:"name"`
	Category    string             `json:"category"`
	SubCategory string             `json:"sub_category,omitempty"`
	Terms       map[string]float64 `json:"terms"`
	PriceCents  int64              `json:"price_cents"`
	SellerID    string             `json:"seller_id"`
	Stock       int                `json:"stock"`
}

// Validate reports whether the product is well-formed.
func (p *Product) Validate() error {
	if p.ID == "" {
		return ErrNoID
	}
	if p.Category == "" {
		return fmt.Errorf("%w: product %s", ErrNoCategory, p.ID)
	}
	if p.PriceCents < 0 {
		return fmt.Errorf("%w: product %s", ErrBadPrice, p.ID)
	}
	return nil
}

// Evidence converts an interaction with the product into the profile
// evidence the Profile Agent records.
func (p *Product) Evidence(b profile.Behaviour) profile.Evidence {
	terms := make(map[string]float64, len(p.Terms))
	for t, w := range p.Terms {
		terms[t] = w
	}
	ev := profile.Evidence{
		Category:  p.Category,
		Terms:     terms,
		Behaviour: b,
	}
	if p.SubCategory != "" {
		ev.SubCategory = p.SubCategory
		// The sub-category sees the same term evidence; Fig 4.4 keeps
		// separate weights per level.
		sub := make(map[string]float64, len(p.Terms))
		for t, w := range p.Terms {
			sub[t] = w
		}
		ev.SubTerms = sub
	}
	return ev
}

// clone returns a deep copy so catalog internals never alias caller data.
func (p *Product) clone() *Product {
	out := *p
	out.Terms = make(map[string]float64, len(p.Terms))
	for t, w := range p.Terms {
		out.Terms[t] = w
	}
	return &out
}

// Query describes a merchandise search, the shape the paper's marketplace
// "information query" service answers.
type Query struct {
	Category    string   `json:"category,omitempty"`     // required category match when non-empty
	SubCategory string   `json:"sub_category,omitempty"` // optional sub-category filter
	Terms       []string `json:"terms,omitempty"`        // desired characteristic terms
	MaxPrice    int64    `json:"max_price,omitempty"`    // cents; 0 means unbounded
	Limit       int      `json:"limit,omitempty"`        // max results; 0 means all
}

// Match is one query result with its relevance score: the sum of the
// product's weights for the queried terms (plus a small constant when the
// category matched but no terms were given, so category-only queries rank
// by price).
type Match struct {
	Product *Product
	Score   float64
}

// Catalog is a concurrency-safe product index.
type Catalog struct {
	mu       sync.RWMutex
	products map[string]*Product
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{products: make(map[string]*Product)}
}

// Add inserts a product. Adding an existing id fails with ErrDuplicateID.
func (c *Catalog) Add(p *Product) error {
	if err := p.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.products[p.ID]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateID, p.ID)
	}
	c.products[p.ID] = p.clone()
	return nil
}

// Upsert inserts or replaces a product.
func (c *Catalog) Upsert(p *Product) error {
	if err := p.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.products[p.ID] = p.clone()
	return nil
}

// Get returns a copy of the product with id.
func (c *Catalog) Get(id string) (*Product, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	p, ok := c.products[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return p.clone(), nil
}

// Remove deletes the product with id.
func (c *Catalog) Remove(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.products[id]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	delete(c.products, id)
	return nil
}

// AdjustStock changes the stock of product id by delta (negative to sell),
// refusing to go below zero.
func (c *Catalog) AdjustStock(id string, delta int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.products[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if p.Stock+delta < 0 {
		return p.Stock, fmt.Errorf("catalog: insufficient stock for %s: have %d, want %d", id, p.Stock, -delta)
	}
	p.Stock += delta
	return p.Stock, nil
}

// Len reports the number of products.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.products)
}

// Categories returns the sorted distinct categories present.
func (c *Catalog) Categories() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	seen := make(map[string]struct{})
	for _, p := range c.products {
		seen[p.Category] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for cat := range seen {
		out = append(out, cat)
	}
	sort.Strings(out)
	return out
}

// All returns copies of every product, ordered by id.
func (c *Catalog) All() []*Product {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Product, 0, len(c.products))
	for _, p := range c.products {
		out = append(out, p.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Search answers q: products matching the filters, scored by queried-term
// weight, ordered by score descending then price ascending then id. Out of
// stock products are excluded.
func (c *Catalog) Search(q Query) []Match {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Match, 0, 16)
	for _, p := range c.products {
		if p.Stock <= 0 {
			continue
		}
		if q.Category != "" && p.Category != q.Category {
			continue
		}
		if q.SubCategory != "" && p.SubCategory != q.SubCategory {
			continue
		}
		if q.MaxPrice > 0 && p.PriceCents > q.MaxPrice {
			continue
		}
		score := 0.0
		for _, term := range q.Terms {
			score += p.Terms[term]
		}
		if len(q.Terms) > 0 && score == 0 {
			continue // asked for terms, matched none
		}
		out = append(out, Match{Product: p.clone(), Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Product.PriceCents != out[j].Product.PriceCents {
			return out[i].Product.PriceCents < out[j].Product.PriceCents
		}
		return out[i].Product.ID < out[j].Product.ID
	})
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out
}

// NormalizeCategory canonicalizes a category string for cross-seller
// integration: lower-cased, trimmed, inner whitespace collapsed to one dash.
func NormalizeCategory(s string) string {
	fields := strings.Fields(strings.ToLower(strings.TrimSpace(s)))
	return strings.Join(fields, "-")
}
