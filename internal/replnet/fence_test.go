package replnet

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"agentrec/internal/catalog"
	"agentrec/internal/profile"
	"agentrec/internal/recommend"
)

// A deposed owner replaying buffered frames at its old epoch must be
// rejected by every frame kind: forwarded writes (set-profiles, purchase),
// journal tails, and snapshot pages. The handler is called directly — over
// TCP errors flatten to strings, so errors.Is only works in-process, which
// is exactly where the fence decision is made.

func fenceEngine(t *testing.T) *recommend.Engine {
	t.Helper()
	cat := catalog.New()
	if err := cat.Add(&catalog.Product{ID: "p1", Name: "P1", Category: "laptop",
		Terms: map[string]float64{"ssd": 1}, PriceCents: 100, SellerID: "s", Stock: 1}); err != nil {
		t.Fatal(err)
	}
	e, err := recommend.Open(cat, recommend.WithJournalFeed(0), recommend.WithShards(8))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestHandlerFencesStaleEpochFrames(t *testing.T) {
	e := fenceEngine(t)
	table := recommend.NewOwnershipTable(recommend.StaticOwnership(8, 1)) // server 0 owns all
	h := Handler(e, 0, 1, WithOwnership(table))

	prof, err := profile.NewProfile("user-1").Marshal()
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	frames := map[string][]byte{
		kindTail:        mustJSON(t, tailRequest{Shard: 0, OwnerEpoch: 1}),
		kindSnapPage:    mustJSON(t, snapPageRequest{Shard: 0, OwnerEpoch: 1}),
		kindSetProfiles: mustJSON(t, setProfilesRequest{Profiles: [][]byte{prof}, OwnerEpoch: 1}),
		kindPurchase:    mustJSON(t, purchaseRequest{UserID: "user-1", ProductID: "p1", At: &now, OwnerEpoch: 1}),
	}

	// At matching epoch every kind passes the fence (the tail may still
	// fail for replication reasons, but never with a fencing error).
	for kind, data := range frames {
		if _, err := h(kind, data); err != nil {
			if errors.Is(err, recommend.ErrStaleEpoch) || errors.Is(err, recommend.ErrNotOwner) || errors.Is(err, recommend.ErrLeaseExpired) {
				t.Fatalf("%s at current epoch hit the fence: %v", kind, err)
			}
		}
	}

	// The receiver's world moves on to epoch 2; the sender's stamp is stale.
	next := table.Current()
	next.Epoch = 2
	if !table.Advance(next) {
		t.Fatal("advance to epoch 2 failed")
	}
	for kind, data := range frames {
		if _, err := h(kind, data); !errors.Is(err, recommend.ErrStaleEpoch) {
			t.Fatalf("%s stamped with old epoch: err = %v, want ErrStaleEpoch", kind, err)
		}
	}

	// Unstamped frames (epoch 0 — a peer not built WithOwnership) are
	// equally stale to a fencing handler.
	if _, err := h(kindTail, mustJSON(t, tailRequest{Shard: 0})); !errors.Is(err, recommend.ErrStaleEpoch) {
		t.Fatalf("unstamped tail: err = %v, want ErrStaleEpoch", err)
	}
}

func TestHandlerFencesUnownedShardAndLapsedLease(t *testing.T) {
	e := fenceEngine(t)
	// Two servers: this handler is server 0, owning only even shards.
	table := recommend.NewOwnershipTable(recommend.StaticOwnership(8, 2))
	h := Handler(e, 0, 2, WithOwnership(table))

	if _, err := h(kindTail, mustJSON(t, tailRequest{Shard: 1, OwnerEpoch: 1})); !errors.Is(err, recommend.ErrNotOwner) {
		t.Fatalf("tail for unowned shard: err = %v, want ErrNotOwner", err)
	}

	// A leased table whose lease lapsed refuses everything — the SIGSTOP'd
	// owner waking up must not serve as if it still owned its shards.
	table.Lease(time.Now().Add(-time.Millisecond))
	if _, err := h(kindTail, mustJSON(t, tailRequest{Shard: 0, OwnerEpoch: 1})); !errors.Is(err, recommend.ErrLeaseExpired) {
		t.Fatalf("tail under lapsed lease: err = %v, want ErrLeaseExpired", err)
	}
	if _, err := h(kindSnapPage, mustJSON(t, snapPageRequest{Shard: 0, OwnerEpoch: 1})); !errors.Is(err, recommend.ErrLeaseExpired) {
		t.Fatalf("snap-page under lapsed lease: err = %v, want ErrLeaseExpired", err)
	}
}

func TestOwnerMapProbeUnfenced(t *testing.T) {
	e := fenceEngine(t)
	table := recommend.NewOwnershipTable(recommend.StaticOwnership(8, 2))
	next := table.Current()
	next.Epoch = 5
	table.Advance(next)
	table.Lease(time.Now().Add(-time.Minute)) // even a lapsed server answers

	h := Handler(e, 1, 2, WithOwnership(table))
	out, err := h(kindOwnerMap, []byte("{}"))
	if err != nil {
		t.Fatalf("owner-map probe must be unfenced: %v", err)
	}
	var info OwnerMapInfo
	if err := json.Unmarshal(out, &info); err != nil {
		t.Fatal(err)
	}
	want := table.Current()
	if info.Hash != want.Hash() || info.Epoch != 5 || info.Shards != 8 || info.Servers != 2 || info.Self != 1 {
		t.Fatalf("probe reply = %+v, want hash %s epoch 5 shards 8 servers 2 self 1", info, want.Hash())
	}

	// Without a table the probe reports the static epoch-1 map.
	h0 := Handler(e, 0, 2)
	out, err = h0(kindOwnerMap, []byte("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(out, &info); err != nil {
		t.Fatal(err)
	}
	static := recommend.StaticOwnership(8, 2)
	if info.Hash != static.Hash() || info.Epoch != 1 {
		t.Fatalf("static probe reply = %+v, want hash %s epoch 1", info, static.Hash())
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
