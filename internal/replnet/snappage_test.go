package replnet

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"agentrec/internal/aglet"
	"agentrec/internal/atp"
	"agentrec/internal/kvstore"
	"agentrec/internal/profile"
	"agentrec/internal/recommend"
	"agentrec/internal/security"
)

// End-to-end tests of the paged snapshot catch-up over real TCP: a cold
// follower bootstrapping a shard whose whole-shard snapshot outgrows the
// (test-shrunken) frame budget, the restart-on-moved-pin path under a
// mid-transfer owner write, and the poison-record fallback — one journal
// record too big for any frame must not wedge replication forever.

// fatProfile builds a profile whose marshaled size scales with terms, so
// tests can push shard snapshots (or a single journal record) past a
// shrunken frame budget.
func fatProfile(userID string, terms int) *profile.Profile {
	p := profile.NewProfile(userID)
	ev := profile.Evidence{
		Category: "laptop", Terms: make(map[string]float64, terms),
		// A real behaviour so the evidence carries weight: zero-quality
		// evidence yields empty summaries, which never enter the candidate
		// index — and the bounded-rebuild assertion below counts postings.
		Behaviour: profile.BehaviourBuy,
	}
	for i := 0; i < terms; i++ {
		ev.Terms[fmt.Sprintf("term-%s-%04d", userID, i)] = float64(i%7) + 0.5
	}
	if err := p.Observe(ev); err != nil {
		panic(err)
	}
	return p
}

// ownedUsers returns n consumer ids that all hash to shards owned by
// server `owner` of `servers` — seeding only these makes a pure follower's
// replicated half the entire populated community.
func ownedUsers(e *recommend.Engine, owner, servers, n int) []string {
	out := make([]string, 0, n)
	for i := 0; len(out) < n; i++ {
		u := fmt.Sprintf("user-%04d", i)
		if recommend.OwnerOf(e.ShardOf(u), servers) == owner {
			out = append(out, u)
		}
	}
	return out
}

// ownerAndColdFollower stands up one ATP-served owner engine (server 0 of
// 2) and returns a constructor for cold followers tailing it as server 1.
type pagedFixture struct {
	t      testing.TB
	client *atp.Client
	owner  *recommend.Engine
	srv    *atp.Server
}

func newPagedFixture(t testing.TB, ownerOpts ...recommend.Option) *pagedFixture {
	signer := security.NewSigner([]byte("replnet-test-key"))
	client := atp.NewClient(signer)
	cat := catalogWithP1(t)
	opts := append([]recommend.Option{recommend.WithJournalFeed(0), recommend.WithShards(8)}, ownerOpts...)
	owner, err := recommend.Open(cat, opts...)
	if err != nil {
		t.Fatal(err)
	}
	host := aglet.NewHost("paged-owner", aglet.NewRegistry(), aglet.WithTransport(client))
	srv, err := atp.Serve(host, signer, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.SetJournalHandler(Handler(owner, 0, 2))
	t.Cleanup(func() { srv.Close(); host.Close(); owner.Close() })
	return &pagedFixture{t: t, client: client, owner: owner, srv: srv}
}

// seed installs n fat consumers (plus a purchase each) directly on the
// owner, all on server-0-owned shards.
func (f *pagedFixture) seed(n, terms int) []string {
	users := ownedUsers(f.owner, 0, 2, n)
	for _, u := range users {
		if err := f.owner.SetProfile(fatProfile(u, terms)); err != nil {
			f.t.Fatal(err)
		}
		if err := f.owner.RecordPurchase(u, "p1"); err != nil {
			f.t.Fatal(err)
		}
	}
	return users
}

// follower opens a cold engine (fresh state) replicating from the owner
// through peer (defaults to a plain TCP Peer).
func (f *pagedFixture) follower(peer recommend.Peer, opts ...recommend.Option) (*recommend.Engine, *recommend.Replicator) {
	all := append([]recommend.Option{recommend.WithJournalFeed(0), recommend.WithShards(8)}, opts...)
	e, err := recommend.Open(catalogWithP1(f.t), all...)
	if err != nil {
		f.t.Fatal(err)
	}
	if peer == nil {
		peer = NewPeer(f.client, f.srv.Addr())
	}
	repl, err := recommend.NewReplicator(e, 1, []recommend.Peer{peer, nil})
	if err != nil {
		f.t.Fatal(err)
	}
	f.t.Cleanup(func() { repl.Close(); e.Close() })
	return e, repl
}

// walSnapshot reopens the community WAL under dir and serializes its live
// state in the kvstore's canonical sorted order.
func walSnapshot(t *testing.T, dir string) []byte {
	t.Helper()
	store, err := kvstore.Open(filepath.Join(dir, recommend.CommunityWAL))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	var buf bytes.Buffer
	if err := store.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestColdFollowerPagedBootstrapByteIdentical is the acceptance gate: a
// cold follower with an empty state dir bootstraps shards whose encoded
// snapshots exceed the frame budget over real TCP, ending byte-identical
// to the owner's WAL live state — including with both sides spilling
// shards under WithMaxResidentShards.
func TestColdFollowerPagedBootstrapByteIdentical(t *testing.T) {
	for _, spill := range []bool{false, true} {
		name := "resident"
		if spill {
			name = "spilling"
		}
		t.Run(name, func(t *testing.T) {
			old := maxTailBytes
			maxTailBytes = 2048
			t.Cleanup(func() { maxTailBytes = old })

			ownerDir, followerDir := t.TempDir(), t.TempDir()
			durable := func(dir string) []recommend.Option {
				opts := []recommend.Option{recommend.WithPersistence(dir)}
				if spill {
					opts = append(opts, recommend.WithMaxResidentShards(2))
				}
				return opts
			}
			f := newPagedFixture(t, durable(ownerDir)...)
			users := f.seed(48, 24)
			follower, repl := f.follower(nil, durable(followerDir)...)

			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			if err := repl.Sync(ctx); err != nil {
				t.Fatalf("cold paged bootstrap: %v", err)
			}
			st := repl.Stats()
			var snaps, pages uint64
			for _, sh := range st.Shards {
				snaps += sh.Snapshots
				pages += sh.Pages
				if sh.LastError != "" {
					t.Fatalf("shard %d: %s", sh.Shard, sh.LastError)
				}
			}
			if snaps == 0 || pages <= snaps {
				t.Fatalf("bootstrap stats: %d snapshots over %d pages; want multi-page transfers", snaps, pages)
			}
			if lag := st.Lag(); lag != 0 {
				t.Fatalf("lag = %d after bootstrap", lag)
			}
			if got, want := follower.Users(), f.owner.Users(); !reflect.DeepEqual(got, want) || len(got) != len(users) {
				t.Fatalf("user sets differ: %d vs %d (want %d)", len(got), len(want), len(users))
			}
			for _, u := range users[:8] {
				r0, err0 := f.owner.Recommend(recommend.StrategyTopSeller, u, "", 5)
				r1, err1 := follower.Recommend(recommend.StrategyTopSeller, u, "", 5)
				if err0 != nil || err1 != nil {
					t.Fatalf("recommend errors: %v / %v", err0, err1)
				}
				if !reflect.DeepEqual(r0, r1) {
					t.Fatalf("answers for %s differ: %v vs %v", u, r0, r1)
				}
			}
			for _, e := range []*recommend.Engine{f.owner, follower} {
				if err := e.Err(); err != nil {
					t.Fatal(err)
				}
			}

			// A second, cursor-less replicator re-pages the same snapshots.
			// Every summary is content-identical, so the bounded rebuild must
			// skip them all: zero candidate-index writes, not a full rebuild
			// per catch-up.
			w0 := follower.Stats().IndexWrites
			if w0 == 0 {
				t.Fatal("bootstrap installed no index postings")
			}
			repl2, err := recommend.NewReplicator(follower, 1, []recommend.Peer{NewPeer(f.client, f.srv.Addr()), nil})
			if err != nil {
				t.Fatal(err)
			}
			if err := repl2.Sync(ctx); err != nil {
				t.Fatalf("identical re-bootstrap: %v", err)
			}
			repl2.Close()
			if dw := follower.Stats().IndexWrites - w0; dw != 0 {
				t.Fatalf("identical re-bootstrap rewrote %d postings; want 0 (unchanged summaries must be skipped)", dw)
			}

			// Close both engines and compare durable live state byte for byte.
			repl.Close()
			if err := follower.Close(); err != nil {
				t.Fatal(err)
			}
			if err := f.owner.Close(); err != nil {
				t.Fatal(err)
			}
			s0, s1 := walSnapshot(t, ownerDir), walSnapshot(t, followerDir)
			if len(s0) == 0 {
				t.Fatal("empty owner WAL snapshot")
			}
			if !bytes.Equal(s0, s1) {
				t.Fatalf("WAL live states differ: %d vs %d bytes", len(s0), len(s1))
			}
		})
	}
}

// interceptPeer delegates to a real TCP peer but runs onFirstPage once,
// after the first page of a multi-page transfer is served — between page
// requests, exactly where a concurrent owner write moves the pinned cut.
type interceptPeer struct {
	recommend.Peer
	mu          sync.Mutex
	fired       bool
	onFirstPage func(shard int)
}

func (p *interceptPeer) SnapshotPage(ctx context.Context, shard int, epoch, seq uint64, token string) (recommend.SnapshotPage, error) {
	pg, err := p.Peer.SnapshotPage(ctx, shard, epoch, seq, token)
	if err == nil && pg.Next != "" {
		p.mu.Lock()
		fire := !p.fired
		p.fired = true
		p.mu.Unlock()
		if fire {
			p.onFirstPage(shard)
		}
	}
	return pg, err
}

// TestPagedCatchUpRestartsOnMidTransferWrite: an owner write between two
// page requests moves the pinned cut; the owner restarts the transfer, the
// follower discards its buffered pages, and the completed catch-up
// includes the mid-transfer write.
func TestPagedCatchUpRestartsOnMidTransferWrite(t *testing.T) {
	old := maxTailBytes
	maxTailBytes = 2048
	t.Cleanup(func() { maxTailBytes = old })

	f := newPagedFixture(t)
	f.seed(48, 24)

	var injected string
	peer := &interceptPeer{Peer: NewPeer(f.client, f.srv.Addr()), onFirstPage: func(shard int) {
		for i := 0; ; i++ {
			u := fmt.Sprintf("mid-write-%d", i)
			if f.owner.ShardOf(u) == shard {
				injected = u
				if err := f.owner.SetProfile(fatProfile(u, 24)); err != nil {
					t.Error(err)
				}
				return
			}
		}
	}}
	follower, repl := f.follower(peer)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := repl.Sync(ctx); err != nil {
		t.Fatalf("paged bootstrap with mid-transfer write: %v", err)
	}
	if injected == "" {
		t.Fatal("no multi-page transfer happened; the mid-transfer write was never injected")
	}
	var restarts uint64
	for _, sh := range repl.Stats().Shards {
		restarts += sh.Restarts
	}
	if restarts == 0 {
		t.Fatal("owner write between pages caused no transfer restart")
	}
	if _, err := follower.Profile(injected); err != nil {
		t.Fatalf("mid-transfer write %s missing on follower: %v", injected, err)
	}
	if got, want := follower.Users(), f.owner.Users(); !reflect.DeepEqual(got, want) {
		t.Fatalf("user sets differ after restarted transfer: %d vs %d", len(got), len(want))
	}
}

// TestPoisonRecordFallsBackToPagedSnapshot: a single journal record whose
// encoded size exceeds the frame budget used to fail every future pull of
// its shard with the "single journal record" error. The owner must instead
// serve paged snapshot catch-up past the poison record, and live tailing
// must resume afterwards.
func TestPoisonRecordFallsBackToPagedSnapshot(t *testing.T) {
	old := maxTailBytes
	maxTailBytes = 4096
	t.Cleanup(func() { maxTailBytes = old })

	servers := startCluster(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, s := range servers {
		if err := s.repl.Sync(ctx); err != nil { // cursors at head while empty
			t.Fatal(err)
		}
	}

	var poison string
	for i := 0; ; i++ {
		u := fmt.Sprintf("poison-%d", i)
		if recommend.OwnerOf(servers[0].engine.ShardOf(u), 2) == 0 {
			poison = u
			break
		}
	}
	// One profile far over the budget: a single OpProfiles journal record
	// that no trimming can fit into a frame.
	if err := servers[0].router.SetProfile(fatProfile(poison, 600)); err != nil {
		t.Fatal(err)
	}
	if err := servers[1].repl.Sync(ctx); err != nil {
		t.Fatalf("pull across a poison record: %v", err)
	}
	if _, err := servers[1].engine.Profile(poison); err != nil {
		t.Fatalf("poison-record consumer missing on follower: %v", err)
	}
	snapshots := func(st recommend.ReplicationStats) uint64 {
		return sumField(st, func(s recommend.ShardReplication) uint64 { return s.Snapshots })
	}
	records := func(st recommend.ReplicationStats) uint64 {
		return sumField(st, func(s recommend.ShardReplication) uint64 { return s.Records })
	}
	stBefore := servers[1].repl.Stats()
	if snapshots(stBefore) == 0 {
		t.Fatal("poison record did not fall back to snapshot catch-up")
	}

	// Replication is not wedged: a small write on the same shard rides the
	// live tail (records grow, snapshot count does not).
	var small string
	for i := 0; ; i++ {
		u := fmt.Sprintf("small-%d", i)
		if servers[0].engine.ShardOf(u) == servers[0].engine.ShardOf(poison) {
			small = u
			break
		}
	}
	if err := servers[0].router.SetProfile(testProfile(small)); err != nil {
		t.Fatal(err)
	}
	if err := servers[1].repl.Sync(ctx); err != nil {
		t.Fatalf("live tail after poison catch-up: %v", err)
	}
	stAfter := servers[1].repl.Stats()
	if records(stAfter) <= records(stBefore) {
		t.Fatal("live tailing did not resume after the paged catch-up")
	}
	if snapshots(stAfter) != snapshots(stBefore) {
		t.Fatal("small post-poison write forced another snapshot catch-up")
	}
	if _, err := servers[1].engine.Profile(small); err != nil {
		t.Fatalf("post-poison consumer missing on follower: %v", err)
	}
}

// BenchmarkReplicationPagedCatchUp measures a cold follower bootstrapping
// a warm community over real TCP with snapshots that page under the frame
// budget — the snapshot-transfer half of replication, so regressions show
// in the perf trajectory next to the live-tail numbers.
func BenchmarkReplicationPagedCatchUp(b *testing.B) {
	old := maxTailBytes
	maxTailBytes = 1 << 16
	b.Cleanup(func() { maxTailBytes = old })

	f := newPagedFixture(b)
	f.seed(256, 48)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		follower, err := recommend.Open(catalogWithP1(b), recommend.WithJournalFeed(0), recommend.WithShards(8))
		if err != nil {
			b.Fatal(err)
		}
		repl, err := recommend.NewReplicator(follower, 1, []recommend.Peer{NewPeer(f.client, f.srv.Addr()), nil})
		if err != nil {
			b.Fatal(err)
		}
		if err := repl.Sync(ctx); err != nil {
			b.Fatal(err)
		}
		repl.Close()
		follower.Close()
	}
}
