// Package replnet bridges the recommendation engine's replication layer
// (internal/recommend: Replicator, Router) onto the atp network transport,
// so Buyer Agent Servers in different processes replicate shards and route
// writes exactly like the in-process platform does with direct engine
// calls. It owns the JSON wire shapes of the journal frame's
// sub-operations; atp itself carries them as opaque payloads.
//
// Three pieces:
//
//   - Handler(engine) serves a server's journal surface: "tail" requests
//     from followers, "snap-page" requests transferring an oversized shard
//     snapshot in bounded pages, and forwarded writes ("set-profiles",
//     "purchase") from peers that do not own the consumer's shard. Install
//     it with atp.Server.SetJournalHandler.
//   - Peer implements recommend.Peer over an atp.Client — the follower
//     side of journal tailing.
//   - Writer implements recommend.Writer over an atp.Client — the
//     forwarding side of write routing (give it to recommend.NewRouter).
package replnet

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"agentrec/internal/atp"
	"agentrec/internal/profile"
	"agentrec/internal/recommend"
)

// Journal frame sub-operations.
const (
	kindTail        = "tail"
	kindSnapPage    = "snap-page"
	kindSetProfiles = "set-profiles"
	kindPurchase    = "purchase"
	kindOwnerMap    = "owner-map"
)

// wireCfg is the shared option state of Handler, Peer, and Writer.
type wireCfg struct {
	owners *recommend.OwnershipTable
}

// Option configures the ownership behaviour of Handler, Peer, and Writer.
type Option func(*wireCfg)

// WithOwnership epoch-fences the wire against t, this server's ownership
// table. A Handler built with it admits a frame only through t.Fence —
// matching epoch, shard owned by this server, live lease — for every frame
// kind (forwarded writes, journal tails, snapshot pages), so a deposed
// owner replaying buffered frames at its old epoch is rejected loudly. A
// Peer or Writer built with it stamps every outgoing request with t's
// current epoch. Both sides of a deployment must agree on using it: an
// unstamped frame (epoch 0) never passes a fencing handler.
func WithOwnership(t *recommend.OwnershipTable) Option {
	return func(c *wireCfg) {
		if t != nil {
			c.owners = t
		}
	}
}

// maxTailBytes bounds a tail reply's raw encoded size. The reply travels
// as atp response.Data, which json.Marshal base64-encodes (4/3 expansion),
// so the raw budget is three quarters of the frame cap minus envelope
// slack — a reply at the bound still fits atp.MaxFrame after encoding.
// Replies over the bound are trimmed to a prefix of the records — the
// follower's cursor advances and the next pull continues — so a burst of
// large journal records never wedges replication on frame size. A reply
// that cannot shrink (a whole ShardSnapshot, or a single oversized record)
// falls back to the paged snapshot transfer instead. A var so tests can
// shrink it.
var maxTailBytes = (atp.MaxFrame - (1 << 20)) / 4 * 3

// SetMaxTailBytes overrides the tail reply budget, returning a restore
// func. Integration tests outside the package (cmd/platformd) shrink it so
// modest write bursts exercise trimmed-tail replication — and the lag
// accounting layered on it — without multi-megabyte fixtures.
func SetMaxTailBytes(n int) (restore func()) {
	old := maxTailBytes
	maxTailBytes = n
	return func() { maxTailBytes = old }
}

// pageBudget is the per-entry byte budget handed to Engine.SnapshotPage:
// the tail budget minus slack for the page's JSON envelope, so a page at
// the budget still fits the frame after the base64 expansion maxTailBytes
// already prices in.
func pageBudget() int {
	if b := maxTailBytes - 1024; b > 0 {
		return b
	}
	return maxTailBytes/2 + 1
}

// maxForwardBytes bounds the profile payload of one forwarded write frame;
// larger batches are split into several frames, in order.
const maxForwardBytes = 4 << 20

// Every request carries OwnerEpoch, the sender's ownership map epoch, when
// the sending side was built WithOwnership; fencing handlers reject frames
// whose stamp does not match their own table (0 = unstamped, never passes
// a fencing handler). Note the distinction from the tail/page Epoch field,
// which is the owner's journal-feed epoch (a replication cursor concern).

type tailRequest struct {
	Shard      int    `json:"shard"`
	Epoch      uint64 `json:"epoch"`
	Since      uint64 `json:"since"`
	OwnerEpoch uint64 `json:"owner_epoch,omitempty"`
}

type snapPageRequest struct {
	Shard      int    `json:"shard"`
	Epoch      uint64 `json:"epoch"`
	Seq        uint64 `json:"seq"`
	Token      string `json:"token,omitempty"`
	OwnerEpoch uint64 `json:"owner_epoch,omitempty"`
}

type setProfilesRequest struct {
	Profiles   [][]byte `json:"profiles"`
	OwnerEpoch uint64   `json:"owner_epoch,omitempty"`
}

type purchaseRequest struct {
	UserID     string     `json:"user"`
	ProductID  string     `json:"product"`
	At         *time.Time `json:"at,omitempty"` // nil: untimestamped RecordPurchase
	OwnerEpoch uint64     `json:"owner_epoch,omitempty"`
}

// OwnerMapInfo is the owner-map frame's reply: the receiving server's view
// of the ownership map, fingerprinted. platformd's startup consistency
// check compares every peer's info against its own before serving, so
// -buyer-peers lists that disagree on order or -engine-shards values that
// differ fail loudly at startup instead of diverging replicas at runtime.
type OwnerMapInfo struct {
	Hash    string `json:"hash"`
	Epoch   uint64 `json:"epoch"`
	Shards  int    `json:"shards"`
	Servers int    `json:"servers"`
	Self    int    `json:"self"`
}

// Handler returns the journal surface for e, ready for
// atp.Server.SetJournalHandler. self and servers describe this server's
// position in the replicated deployment: forwarded writes for consumers
// whose shard this server does not own are rejected loudly, so peer lists
// that disagree on order (each side computing a different ownership map)
// fail on the first routed write instead of silently diverging replicas.
// Pass servers <= 0 to skip the ownership check (single-surface setups).
//
// Built WithOwnership, the handler instead epoch-fences every frame kind
// through the table: forwarded writes, journal tails, and snapshot pages
// are all admitted only when the sender's stamped epoch matches, this
// server owns the shard, and this server's lease is live.
func Handler(e *recommend.Engine, self, servers int, opts ...Option) atp.JournalHandler {
	var cfg wireCfg
	for _, opt := range opts {
		opt(&cfg)
	}
	// fence admits one frame for one shard; checkOwned is its per-consumer
	// form for forwarded writes. Without a table only the legacy static
	// write check applies, and tails are unfenced (epoch 0 everywhere).
	fence := func(senderEpoch uint64, shard int) error {
		if cfg.owners == nil {
			return nil
		}
		return cfg.owners.Fence(senderEpoch, shard, self)
	}
	checkOwned := func(senderEpoch uint64, userID string) error {
		if cfg.owners != nil {
			return cfg.owners.Fence(senderEpoch, e.ShardOf(userID), self)
		}
		if servers <= 0 {
			return nil
		}
		if owner := recommend.OwnerOf(e.ShardOf(userID), servers); owner != self {
			return fmt.Errorf("replnet: write for %s routed to server %d but shard %d is owned by server %d — do the -buyer-peers lists agree on order?",
				userID, self, e.ShardOf(userID), owner)
		}
		return nil
	}
	return func(kind string, data []byte) ([]byte, error) {
		switch kind {
		case kindTail:
			var req tailRequest
			if err := json.Unmarshal(data, &req); err != nil {
				return nil, fmt.Errorf("replnet: decoding tail request: %w", err)
			}
			if err := fence(req.OwnerEpoch, req.Shard); err != nil {
				return nil, err
			}
			tr, err := e.JournalTail(req.Shard, req.Epoch, req.Since)
			if err != nil {
				return nil, err
			}
			return marshalTailBounded(req.Shard, tr)
		case kindSnapPage:
			var req snapPageRequest
			if err := json.Unmarshal(data, &req); err != nil {
				return nil, fmt.Errorf("replnet: decoding snapshot page request: %w", err)
			}
			if err := fence(req.OwnerEpoch, req.Shard); err != nil {
				return nil, err
			}
			pg, err := e.SnapshotPage(req.Shard, req.Epoch, req.Seq, req.Token, pageBudget())
			if err != nil {
				return nil, err
			}
			out, err := json.Marshal(pg)
			if err != nil {
				return nil, fmt.Errorf("replnet: encoding snapshot page for shard %d: %w", req.Shard, err)
			}
			return out, nil
		case kindSetProfiles:
			var req setProfilesRequest
			if err := json.Unmarshal(data, &req); err != nil {
				return nil, fmt.Errorf("replnet: decoding profile write: %w", err)
			}
			profs := make([]*profile.Profile, len(req.Profiles))
			for i, enc := range req.Profiles {
				p, err := profile.Unmarshal(enc)
				if err != nil {
					return nil, fmt.Errorf("replnet: decoding forwarded profile: %w", err)
				}
				if err := checkOwned(req.OwnerEpoch, p.UserID); err != nil {
					return nil, err
				}
				profs[i] = p
			}
			return nil, e.SetProfiles(profs)
		case kindPurchase:
			var req purchaseRequest
			if err := json.Unmarshal(data, &req); err != nil {
				return nil, fmt.Errorf("replnet: decoding purchase write: %w", err)
			}
			if err := checkOwned(req.OwnerEpoch, req.UserID); err != nil {
				return nil, err
			}
			if req.At != nil {
				return nil, e.RecordPurchaseAt(req.UserID, req.ProductID, *req.At)
			}
			return nil, e.RecordPurchase(req.UserID, req.ProductID)
		case kindOwnerMap:
			// The consistency probe is deliberately unfenced: it is how
			// peers discover they disagree in the first place.
			m := recommend.StaticOwnership(e.Shards(), servers)
			if cfg.owners != nil {
				m = cfg.owners.Current()
			}
			info := OwnerMapInfo{Hash: m.Hash(), Epoch: m.Epoch, Shards: e.Shards(), Servers: servers, Self: self}
			out, err := json.Marshal(info)
			if err != nil {
				return nil, fmt.Errorf("replnet: encoding owner map info: %w", err)
			}
			return out, nil
		default:
			return nil, fmt.Errorf("replnet: unknown journal kind %q", kind)
		}
	}
}

// marshalTailBounded encodes shard's tail reply, bounding it to
// maxTailBytes. Served records are trimmed to a prefix — the follower's
// cursor advances and the next pull continues. A reply that cannot shrink
// any further — a whole ShardSnapshot, or a single journal record over the
// budget (one poison record must never wedge the shard's replication
// forever) — is replaced by a TailResult.Paged marker: the follower
// transfers the snapshot through bounded snap-page requests instead,
// pinned at the owner's feed head, which also carries it past the
// oversized record.
func marshalTailBounded(shard int, tr recommend.TailResult) ([]byte, error) {
	out, err := json.Marshal(tr)
	if err != nil {
		return nil, fmt.Errorf("replnet: encoding shard %d tail result: %w", shard, err)
	}
	for len(out) > maxTailBytes {
		if tr.Snapshot != nil || len(tr.Records) <= 1 {
			marker := recommend.TailResult{
				Shards: tr.Shards, Epoch: tr.Epoch, Seq: tr.Head, Head: tr.Head, Paged: true,
			}
			if out, err = json.Marshal(marker); err != nil {
				return nil, fmt.Errorf("replnet: encoding shard %d paged-snapshot marker: %w", shard, err)
			}
			return out, nil
		}
		tr.Records = tr.Records[:len(tr.Records)/2]
		tr.Seq = tr.Records[len(tr.Records)-1].Seq
		if out, err = json.Marshal(tr); err != nil {
			return nil, fmt.Errorf("replnet: encoding shard %d trimmed tail result: %w", shard, err)
		}
	}
	return out, nil
}

// Peer tails a remote server's journal over atp. It implements
// recommend.Peer.
type Peer struct {
	client *atp.Client
	dest   string
	cfg    wireCfg
}

// NewPeer returns a Peer tailing the ATP server at dest through client.
// Built WithOwnership, it stamps every request with the table's current
// map epoch for the receiving handler's fence.
func NewPeer(client *atp.Client, dest string, opts ...Option) *Peer {
	p := &Peer{client: client, dest: dest}
	for _, opt := range opts {
		opt(&p.cfg)
	}
	return p
}

// stamp is the sender's current ownership epoch (0 without a table).
func (c wireCfg) stamp() uint64 {
	if c.owners == nil {
		return 0
	}
	return c.owners.Epoch()
}

// JournalTail implements recommend.Peer.
func (p *Peer) JournalTail(ctx context.Context, shard int, epoch, since uint64) (recommend.TailResult, error) {
	req, err := json.Marshal(tailRequest{Shard: shard, Epoch: epoch, Since: since, OwnerEpoch: p.cfg.stamp()})
	if err != nil {
		return recommend.TailResult{}, fmt.Errorf("replnet: encoding tail request: %w", err)
	}
	out, err := p.client.Journal(ctx, p.dest, kindTail, req)
	if err != nil {
		return recommend.TailResult{}, err
	}
	var tr recommend.TailResult
	if err := json.Unmarshal(out, &tr); err != nil {
		return recommend.TailResult{}, fmt.Errorf("replnet: decoding tail result from %s: %w", p.dest, err)
	}
	return tr, nil
}

// SnapshotPage implements recommend.Peer: one bounded page of a paged
// shard-snapshot transfer (served when a tail reply came back Paged).
func (p *Peer) SnapshotPage(ctx context.Context, shard int, epoch, seq uint64, token string) (recommend.SnapshotPage, error) {
	req, err := json.Marshal(snapPageRequest{Shard: shard, Epoch: epoch, Seq: seq, Token: token, OwnerEpoch: p.cfg.stamp()})
	if err != nil {
		return recommend.SnapshotPage{}, fmt.Errorf("replnet: encoding snapshot page request: %w", err)
	}
	out, err := p.client.Journal(ctx, p.dest, kindSnapPage, req)
	if err != nil {
		return recommend.SnapshotPage{}, err
	}
	var pg recommend.SnapshotPage
	if err := json.Unmarshal(out, &pg); err != nil {
		return recommend.SnapshotPage{}, fmt.Errorf("replnet: decoding snapshot page from %s: %w", p.dest, err)
	}
	return pg, nil
}

// OwnerMap fetches the remote server's ownership map fingerprint — the
// probe behind platformd's startup map-consistency check.
func (p *Peer) OwnerMap(ctx context.Context) (OwnerMapInfo, error) {
	out, err := p.client.Journal(ctx, p.dest, kindOwnerMap, []byte("{}"))
	if err != nil {
		return OwnerMapInfo{}, err
	}
	var info OwnerMapInfo
	if err := json.Unmarshal(out, &info); err != nil {
		return OwnerMapInfo{}, fmt.Errorf("replnet: decoding owner map info from %s: %w", p.dest, err)
	}
	return info, nil
}

var _ recommend.Peer = (*Peer)(nil)

// Writer forwards community writes to the shard owner's server over atp.
// It implements recommend.Writer, so it slots into recommend.NewRouter as
// the write surface of a remote peer.
type Writer struct {
	base    context.Context
	client  *atp.Client
	dest    string
	timeout time.Duration
	cfg     wireCfg
}

// NewWriter returns a Writer forwarding to the ATP server at dest. base is
// the forwarding server's lifecycle context: cancelling it (shutdown)
// aborts in-flight forwards immediately instead of letting them ride out
// the full send timeout. nil means context.Background (no lifecycle).
// Built WithOwnership, every forwarded frame is stamped with the table's
// current map epoch for the receiving handler's fence.
func NewWriter(base context.Context, client *atp.Client, dest string, opts ...Option) *Writer {
	if base == nil {
		base = context.Background()
	}
	w := &Writer{base: base, client: client, dest: dest, timeout: 30 * time.Second}
	for _, opt := range opts {
		opt(&w.cfg)
	}
	return w
}

func (w *Writer) send(kind string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("replnet: encoding %s: %w", kind, err)
	}
	ctx, cancel := context.WithTimeout(w.base, w.timeout)
	defer cancel()
	_, err = w.client.Journal(ctx, w.dest, kind, data)
	return err
}

// SetProfile implements recommend.Writer.
func (w *Writer) SetProfile(p *profile.Profile) error {
	return w.SetProfiles([]*profile.Profile{p})
}

// SetProfiles implements recommend.Writer. Large batches are forwarded as
// several in-order frames so no single frame outgrows the transport.
func (w *Writer) SetProfiles(ps []*profile.Profile) error {
	var encoded [][]byte
	size := 0
	flush := func() error {
		if len(encoded) == 0 {
			return nil
		}
		err := w.send(kindSetProfiles, setProfilesRequest{Profiles: encoded, OwnerEpoch: w.cfg.stamp()})
		encoded, size = nil, 0
		return err
	}
	for _, p := range ps {
		data, err := p.Marshal()
		if err != nil {
			return fmt.Errorf("replnet: encoding profile %s: %w", p.UserID, err)
		}
		if len(encoded) > 0 && size+len(data) > maxForwardBytes {
			if err := flush(); err != nil {
				return err
			}
		}
		encoded = append(encoded, data)
		size += len(data)
	}
	return flush()
}

// RecordPurchase implements recommend.Writer.
func (w *Writer) RecordPurchase(userID, productID string) error {
	return w.send(kindPurchase, purchaseRequest{UserID: userID, ProductID: productID, OwnerEpoch: w.cfg.stamp()})
}

// RecordPurchaseAt implements recommend.Writer.
func (w *Writer) RecordPurchaseAt(userID, productID string, at time.Time) error {
	return w.send(kindPurchase, purchaseRequest{UserID: userID, ProductID: productID, At: &at, OwnerEpoch: w.cfg.stamp()})
}

var _ recommend.Writer = (*Writer)(nil)
