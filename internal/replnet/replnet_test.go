package replnet

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"agentrec/internal/aglet"
	"agentrec/internal/atp"
	"agentrec/internal/catalog"
	"agentrec/internal/profile"
	"agentrec/internal/recommend"
	"agentrec/internal/security"
)

// Two engines joined only by the atp journal frame, as two platformd
// processes would be: writes route to shard owners over TCP, followers
// tail the owners' journals over TCP, and all servers converge to the same
// answers.

type tcpServer struct {
	engine *recommend.Engine
	srv    *atp.Server
	router *recommend.Router
	repl   *recommend.Replicator
}

func startCluster(t *testing.T, n int) []*tcpServer {
	t.Helper()
	signer := security.NewSigner([]byte("replnet-test-key"))
	client := atp.NewClient(signer)
	cat := catalog.New()
	if err := cat.Add(&catalog.Product{ID: "p1", Name: "P1", Category: "laptop",
		Terms: map[string]float64{"ssd": 1}, PriceCents: 100, SellerID: "s", Stock: 1}); err != nil {
		t.Fatal(err)
	}

	servers := make([]*tcpServer, n)
	for i := range servers {
		engine, err := recommend.Open(cat, recommend.WithJournalFeed(0), recommend.WithShards(8))
		if err != nil {
			t.Fatal(err)
		}
		host := aglet.NewHost(fmt.Sprintf("buyer-%d", i), aglet.NewRegistry(), aglet.WithTransport(client))
		srv, err := atp.Serve(host, signer, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv.SetJournalHandler(Handler(engine, i, n))
		servers[i] = &tcpServer{engine: engine, srv: srv}
		t.Cleanup(func() { srv.Close(); host.Close(); engine.Close() })
	}
	for i, s := range servers {
		writers := make([]recommend.Writer, n)
		peers := make([]recommend.Peer, n)
		for j, other := range servers {
			if j == i {
				continue
			}
			writers[j] = NewWriter(t.Context(), client, other.srv.Addr())
			peers[j] = NewPeer(client, other.srv.Addr())
		}
		router, err := recommend.NewRouter(s.engine, i, writers)
		if err != nil {
			t.Fatal(err)
		}
		repl, err := recommend.NewReplicator(s.engine, i, peers)
		if err != nil {
			t.Fatal(err)
		}
		s.router, s.repl = router, repl
		t.Cleanup(func() { repl.Close() })
	}
	return servers
}

func testProfile(userID string) *profile.Profile {
	p := profile.NewProfile(userID)
	if err := p.Observe(profile.Evidence{Category: "laptop", Terms: map[string]float64{"ssd": 1}}); err != nil {
		panic(err)
	}
	return p
}

func TestTCPReplicationConverges(t *testing.T) {
	servers := startCluster(t, 2)

	var users []string
	for i := 0; i < 20; i++ {
		users = append(users, fmt.Sprintf("u%02d", i))
	}
	// All writes through server 0's router: remote-owned shards cross TCP.
	for _, u := range users {
		if err := servers[0].router.SetProfile(testProfile(u)); err != nil {
			t.Fatal(err)
		}
		if err := servers[0].router.RecordPurchase(u, "p1"); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, s := range servers {
		if err := s.repl.Sync(ctx); err != nil {
			t.Fatalf("replicator %d: %v", i, err)
		}
	}

	e0, e1 := servers[0].engine, servers[1].engine
	if got, want := e0.Users(), e1.Users(); !reflect.DeepEqual(got, want) || len(got) != len(users) {
		t.Fatalf("user sets differ after sync: %v vs %v", got, want)
	}
	for _, u := range users {
		r0, err0 := e0.Recommend(recommend.StrategyTopSeller, u, "", 5)
		r1, err1 := e1.Recommend(recommend.StrategyTopSeller, u, "", 5)
		if err0 != nil || err1 != nil {
			t.Fatalf("recommend errors: %v / %v", err0, err1)
		}
		if !reflect.DeepEqual(r0, r1) {
			t.Fatalf("answers for %s differ: %v vs %v", u, r0, r1)
		}
		if len(r0) == 0 || r0[0].Score != float64(len(users)) {
			t.Fatalf("sell total for p1 = %v, want %d (every consumer bought it once)", r0, len(users))
		}
	}
	for i, s := range servers {
		st := s.repl.Stats()
		if lag := st.Lag(); lag != 0 {
			t.Fatalf("replicator %d lag = %d after sync", i, lag)
		}
		for _, sh := range st.Shards {
			if sh.LastError != "" {
				t.Fatalf("replicator %d shard %d: %s", i, sh.Shard, sh.LastError)
			}
		}
	}
}

// TestTCPForwardedTimestampedPurchase pins that RecordPurchaseAt survives
// the wire: the timestamp reaches the owner's trending history.
func TestTCPForwardedTimestampedPurchase(t *testing.T) {
	servers := startCluster(t, 2)
	// Find a user owned by server 1, so server 0's router must forward.
	var remote string
	for i := 0; ; i++ {
		u := fmt.Sprintf("remote-%d", i)
		if recommend.OwnerOf(servers[0].engine.ShardOf(u), 2) == 1 {
			remote = u
			break
		}
	}
	if err := servers[0].router.SetProfile(testProfile(remote)); err != nil {
		t.Fatal(err)
	}
	at := time.Now()
	if err := servers[0].router.RecordPurchaseAt(remote, "p1", at); err != nil {
		t.Fatal(err)
	}
	trending := servers[1].engine.Trending(at.Add(time.Minute), time.Hour, 5)
	if len(trending) != 1 || trending[0].ProductID != "p1" || trending[0].Count != 1 {
		t.Fatalf("owner trending = %+v, want one p1 purchase", trending)
	}
}

// TestTailTrimmedToFrameBudget shrinks the reply budget so the owner must
// serve journal records in several bounded pulls; the follower's cursor
// advances each round, reported lag is nonzero while it is held behind,
// and replication still converges. A cold follower whose catch-up needs a
// snapshot bigger than the budget bootstraps through the paged snapshot
// transfer instead of erroring.
func TestTailTrimmedToFrameBudget(t *testing.T) {
	old := maxTailBytes
	maxTailBytes = 2048
	t.Cleanup(func() { maxTailBytes = old })

	servers := startCluster(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Catch both followers up while empty, so later writes ride the tail.
	for _, s := range servers {
		if err := s.repl.Sync(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		if err := servers[0].router.SetProfile(testProfile(fmt.Sprintf("u%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// One Sync pass per round serves a trimmed prefix; lag must strictly
	// shrink to zero within a bounded number of rounds, and while a round
	// leaves the follower behind the writing owner, Stats must say so.
	for i, s := range servers {
		for round := 0; ; round++ {
			if err := s.repl.Sync(ctx); err != nil {
				t.Fatalf("server %d round %d: %v", i, round, err)
			}
			st := s.repl.Stats()
			caught := true
			for _, sh := range st.Shards {
				next, err := servers[sh.Owner].engine.JournalTail(sh.Shard, sh.Epoch, sh.AppliedSeq)
				if err != nil {
					t.Fatal(err)
				}
				if len(next.Records) > 0 {
					caught = false
				}
			}
			if caught {
				break
			}
			if lag := st.Lag(); lag == 0 {
				t.Fatalf("server %d round %d: follower is behind but Stats lag = 0", i, round)
			}
			if round > 100 {
				t.Fatalf("server %d never caught up", i)
			}
		}
		if lag := s.repl.Stats().Lag(); lag != 0 {
			t.Fatalf("server %d caught up but Stats lag = %d", i, lag)
		}
	}
	if got, want := servers[1].engine.Users(), servers[0].engine.Users(); !reflect.DeepEqual(got, want) {
		t.Fatalf("user sets differ after trimmed tailing: %d vs %d", len(got), len(want))
	}

	// A fresh follower now needs a snapshot that cannot fit the budget:
	// catch-up must page instead of erroring.
	maxTailBytes = 256
	cold, err := recommend.Open(catalogWithP1(t), recommend.WithJournalFeed(0), recommend.WithShards(8))
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	peers := []recommend.Peer{NewPeer(atpClient(), servers[0].srv.Addr()), nil}
	repl, err := recommend.NewReplicator(cold, 1, peers)
	if err != nil {
		t.Fatal(err)
	}
	defer repl.Close()
	if err := repl.Sync(ctx); err != nil {
		t.Fatalf("cold follower paged bootstrap: %v", err)
	}
	st := repl.Stats()
	if snaps, pages := sumField(st, func(s recommend.ShardReplication) uint64 { return s.Snapshots }),
		sumField(st, func(s recommend.ShardReplication) uint64 { return s.Pages }); snaps == 0 || pages <= snaps {
		t.Fatalf("paged bootstrap stats: %d snapshots, %d pages; want paging (pages > snapshots > 0)", snaps, pages)
	}
	for _, u := range servers[0].engine.Users() {
		if recommend.OwnerOf(servers[0].engine.ShardOf(u), 2) != 0 {
			continue // cold follower only tails server 0's shards
		}
		if _, err := cold.Profile(u); err != nil {
			t.Fatalf("cold follower missing %s after paged bootstrap: %v", u, err)
		}
	}
}

func sumField(st recommend.ReplicationStats, f func(recommend.ShardReplication) uint64) (n uint64) {
	for _, s := range st.Shards {
		n += f(s)
	}
	return n
}

func catalogWithP1(t testing.TB) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	if err := cat.Add(&catalog.Product{ID: "p1", Name: "P1", Category: "laptop",
		Terms: map[string]float64{"ssd": 1}, PriceCents: 100, SellerID: "s", Stock: 1}); err != nil {
		t.Fatal(err)
	}
	return cat
}

func atpClient() *atp.Client {
	return atp.NewClient(security.NewSigner([]byte("replnet-test-key")))
}

// TestMisorderedPeerListRejected pins the ownership guard: a forwarded
// write that lands on a server which does not own the consumer's shard
// (the symptom of -buyer-peers lists disagreeing on order) is rejected
// loudly instead of silently diverging the replicas.
func TestMisorderedPeerListRejected(t *testing.T) {
	servers := startCluster(t, 2)
	// Swap ownership on server 1's surface only: it now claims self=0.
	servers[1].srv.SetJournalHandler(Handler(servers[1].engine, 0, 2))

	var remote string
	for i := 0; ; i++ {
		u := fmt.Sprintf("mis-%d", i)
		if recommend.OwnerOf(servers[0].engine.ShardOf(u), 2) == 1 {
			remote = u
			break
		}
	}
	err := servers[0].router.SetProfile(testProfile(remote))
	if err == nil || !strings.Contains(err.Error(), "owned by") {
		t.Fatalf("misrouted write error = %v, want ownership rejection", err)
	}
	if err := servers[0].router.RecordPurchase(remote, "p1"); err == nil || !strings.Contains(err.Error(), "owned by") {
		t.Fatalf("misrouted purchase error = %v, want ownership rejection", err)
	}
}
