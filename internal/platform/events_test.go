package platform

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"agentrec/internal/ops"
)

// TestPlatformEventPlane: a replicated platform with Config.Events streams
// journal events for writes, heartbeat snapshots on the configured
// interval, and Metrics agrees with the deprecated per-struct stats it
// subsumes.
func TestPlatformEventPlane(t *testing.T) {
	p, err := New(Config{
		Marketplaces:     1,
		BuyerServers:     2,
		ReplicateEngines: true,
		Products:         demoProducts(),
		Events:           true,
		EventsInterval:   20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Events == nil {
		t.Fatal("Config.Events did not create a bus")
	}

	ctx := testCtx(t)
	sub, err := p.Subscribe(ctx, ops.KindJournal, ops.KindSnapshot)
	if err != nil {
		t.Fatal(err)
	}

	b := p.Buyer()
	if err := b.Register(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Login(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Buy(ctx, "alice", "p1", 0, false); err != nil {
		t.Fatal(err)
	}

	var sawJournal, sawSnapshot bool
	for !(sawJournal && sawSnapshot) {
		ev, err := sub.Next(ctx)
		if err != nil {
			t.Fatalf("stream ended before journal+snapshot seen: %v", err)
		}
		switch ev.Kind {
		case ops.KindJournal:
			sawJournal = true
		case ops.KindSnapshot:
			sawSnapshot = true
			if ev.Snapshot == nil || len(ev.Snapshot.Servers) != 2 {
				t.Fatalf("heartbeat snapshot = %+v, want 2 servers", ev.Snapshot)
			}
		case ops.KindDropped:
			t.Fatal("unexpected drop marker in a fast consumer")
		default:
			t.Fatalf("unexpected kind %q with journal+snapshot filter", ev.Kind)
		}
	}

	// Metrics subsumes the deprecated stats structs: same numbers, one view.
	if err := p.SyncReplicas(ctx); err != nil {
		t.Fatal(err)
	}
	snap := p.Metrics()
	if len(snap.Servers) != 2 {
		t.Fatalf("Metrics has %d servers, want 2", len(snap.Servers))
	}
	for i, sv := range snap.Servers {
		if sv.Server != i {
			t.Errorf("server %d labelled %d", i, sv.Server)
		}
		st := p.Engines[i].Stats()
		if sv.Engine.Users != st.Users || sv.Engine.JournalBytes != st.JournalBytes {
			t.Errorf("server %d engine view %+v != Stats %+v", i, sv.Engine, st)
		}
		if sv.Replication == nil {
			t.Fatalf("server %d missing replication view", i)
		}
		rst := p.Replicators[i].Stats()
		if sv.Replication.LagRecords != rst.Lag() || sv.Replication.Self != rst.Self {
			t.Errorf("server %d replication view %+v != Stats lag %d", i, sv.Replication, rst.Lag())
		}
	}
	legacy := p.ReplicationStats()
	if len(legacy) != len(snap.Servers) {
		t.Errorf("deprecated ReplicationStats has %d entries, Metrics %d", len(legacy), len(snap.Servers))
	}
	if snap.TotalLagRecords() != 0 {
		t.Errorf("total lag after sync = %d", snap.TotalLagRecords())
	}

	// The snapshot serializes with agent-first names.
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"at_epoch_ms", "journal_bytes", "lag_records", "applied_seq"} {
		if !strings.Contains(string(raw), `"`+field+`"`) {
			t.Errorf("snapshot JSON missing %q: %s", field, raw)
		}
	}
}

// TestPlatformEventsDisabled: without Config.Events the bus is absent,
// Subscribe refuses, and Metrics still works.
func TestPlatformEventsDisabled(t *testing.T) {
	p, err := New(Config{Marketplaces: 1, Products: demoProducts()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Events != nil {
		t.Fatal("bus created without Config.Events")
	}
	if _, err := p.Subscribe(context.Background()); !errors.Is(err, ErrEventsDisabled) {
		t.Fatalf("Subscribe error = %v, want ErrEventsDisabled", err)
	}
	snap := p.Metrics()
	if len(snap.Servers) != 1 || snap.Servers[0].Replication != nil {
		t.Fatalf("Metrics without events = %+v, want 1 unreplicated server", snap)
	}
}

// TestPlatformCloseStopsEventPlane: Close drains subscribers so consumers
// terminate instead of hanging.
func TestPlatformCloseStopsEventPlane(t *testing.T) {
	p, err := New(Config{Marketplaces: 1, Products: demoProducts(), Events: true})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := p.Subscribe(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for {
		_, err := sub.Next(ctx)
		if errors.Is(err, ops.ErrSubscriptionClosed) {
			break
		}
		if err != nil {
			t.Fatalf("Next after Close = %v, want ErrSubscriptionClosed", err)
		}
	}
	// Closing again stays clean.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
