package platform

import (
	"context"
	"errors"
	"time"

	"agentrec/internal/ops"
)

// This file is the platform's event plane: one ops.Bus per process that
// every engine and replicator publishes into, a periodic whole-platform
// snapshot heartbeat, and the embedder API (Metrics, Subscribe) mirroring
// what the wire endpoints serve.

// ErrEventsDisabled reports a Subscribe on a platform built without
// Config.Events.
var ErrEventsDisabled = errors.New("platform: event plane disabled (set Config.Events)")

// DefaultEventsInterval is the snapshot heartbeat period unless
// Config.EventsInterval overrides it.
const DefaultEventsInterval = 5 * time.Second

// Metrics returns the unified whole-platform snapshot: every buyer server's
// engine sizing plus, when replicated, its replication status. This is the
// redesigned stats API — one self-describing ops.Snapshot instead of the
// three structs it subsumes — and exactly what /metrics/snapshot serves and
// the KindSnapshot heartbeat publishes. It works with or without
// Config.Events.
func (p *Platform) Metrics() ops.Snapshot {
	snap := ops.Snapshot{AtEpochMs: time.Now().UnixMilli()}
	for i, e := range p.Engines {
		sv := ops.ServerSnapshot{Server: i, Engine: e.Stats().EventView()}
		if i < len(p.Replicators) {
			repl := p.Replicators[i].Stats().EventView()
			sv.Replication = &repl
		}
		snap.Servers = append(snap.Servers, sv)
	}
	return snap
}

// Subscribe attaches a consumer to the platform's event bus, filtered to
// kinds (none = all). The subscription is closed when ctx is cancelled;
// read it with Next until ops.ErrSubscriptionClosed. ErrEventsDisabled
// without Config.Events.
func (p *Platform) Subscribe(ctx context.Context, kinds ...ops.Kind) (*ops.Subscription, error) {
	if p.Events == nil {
		return nil, ErrEventsDisabled
	}
	sub := p.Events.Subscribe(ops.SubscribeOptions{Kinds: kinds})
	stop := context.AfterFunc(ctx, sub.Close)
	_ = stop // the subscription outliving ctx is the only lifecycle; Close is idempotent
	return sub, nil
}

// RunHeartbeat publishes a KindSnapshot heartbeat every interval until ctx
// is cancelled (returning ctx.Err()) or the platform closes (returning
// nil). New starts one automatically under Close's lifecycle; daemons that
// want the heartbeat tied to their own shutdown context (platformd's task
// group) build the platform pieces themselves and call this.
func (p *Platform) RunHeartbeat(ctx context.Context, interval time.Duration) error {
	if p.Events == nil {
		return ErrEventsDisabled
	}
	if interval <= 0 {
		interval = DefaultEventsInterval
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-p.stopHeartbeat:
			return nil
		case <-t.C:
		}
		snap := p.Metrics()
		p.Events.Publish(ops.Event{Kind: ops.KindSnapshot, AtEpochMs: snap.AtEpochMs, Snapshot: &snap})
	}
}

// startHeartbeat launches the heartbeat goroutine New owns. Called at the
// end of New — after every engine and replicator is in place, so a tick
// never races construction.
func (p *Platform) startHeartbeat(interval time.Duration) {
	p.stopHeartbeat = make(chan struct{})
	p.heartbeatDone = make(chan struct{})
	go func() {
		defer close(p.heartbeatDone)
		p.RunHeartbeat(context.Background(), interval)
	}()
}

// closeEventPlane stops the heartbeat and closes the bus so wire consumers
// drain and disconnect. Idempotent; a no-op without Config.Events.
func (p *Platform) closeEventPlane() {
	if p.Events == nil {
		return
	}
	if p.stopHeartbeat != nil {
		select {
		case <-p.stopHeartbeat:
		default:
			close(p.stopHeartbeat)
		}
		<-p.heartbeatDone
	}
	p.Events.Close()
}
