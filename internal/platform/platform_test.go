package platform

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"agentrec/internal/catalog"
	"agentrec/internal/coordinator"
	"agentrec/internal/profile"
	"agentrec/internal/recommend"
	"agentrec/internal/trace"
)

func demoProducts() []*catalog.Product {
	return []*catalog.Product{
		{ID: "p1", Name: "UltraBook", Category: "laptop", Terms: map[string]float64{"ssd": 1}, PriceCents: 100000, SellerID: "s1", Stock: 5},
		{ID: "p2", Name: "GameBook", Category: "laptop", Terms: map[string]float64{"gpu": 1}, PriceCents: 150000, SellerID: "s1", Stock: 5},
		{ID: "p3", Name: "Shooter", Category: "camera", Terms: map[string]float64{"lens": 1}, PriceCents: 50000, SellerID: "s2", Stock: 5},
		{ID: "p4", Name: "Zoomer", Category: "camera", Terms: map[string]float64{"zoom": 1}, PriceCents: 60000, SellerID: "s2", Stock: 5},
	}
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestPlatformArchitecture is experiment F3.1: every server role of Fig 3.1
// boots, registers, and interoperates.
func TestPlatformArchitecture(t *testing.T) {
	tracer := trace.New()
	p, err := New(Config{
		Marketplaces: 2,
		BuyerServers: 1,
		Tracer:       tracer,
		Products:     demoProducts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Coordinator knows every marketplace and the buyer server.
	if got := p.Coordinator.Lookup(coordinator.KindMarketplace); len(got) != 2 {
		t.Errorf("marketplaces registered = %d", len(got))
	}
	if got := p.Coordinator.Lookup(coordinator.KindBuyerServer); len(got) != 1 {
		t.Errorf("buyer servers registered = %d", len(got))
	}
	// Products distributed round-robin: each marketplace holds two.
	for i, m := range p.Markets {
		if m.Catalog().Len() != 2 {
			t.Errorf("market %d holds %d products", i, m.Catalog().Len())
		}
	}
	// Integrated catalog holds everything.
	if p.Union.Len() != 4 {
		t.Errorf("union catalog = %d products", p.Union.Len())
	}

	// An end-to-end trade works across the assembled platform.
	ctx := testCtx(t)
	b := p.Buyer()
	if err := b.Register(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Login(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	res, err := b.Query(ctx, "alice", catalog.Query{Category: "laptop"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 2 {
		t.Errorf("query visited %d markets", len(res.Results))
	}
}

func TestPlatformDefaults(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if len(p.Markets) != 2 || len(p.Buyers) != 1 {
		t.Errorf("defaults: %d markets, %d buyers", len(p.Markets), len(p.Buyers))
	}
}

func TestPlatformSellerFeeds(t *testing.T) {
	p, err := New(Config{Marketplaces: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	jsonFeed := `[{"sku":"X1","title":"Thing","cat":"Gadget","subcat":"Small",
		"keywords":["neat"],"price_cents":1999,"qty":10}]`
	n, err := p.IntegrateJSONFeed(0, strings.NewReader(jsonFeed), "sellerA")
	if err != nil || n != 1 {
		t.Fatalf("json feed: %d, %v", n, err)
	}
	csvFeed := `Y1,Widget,Gadget>Small,neat:0.5,12.50,3`
	n, err = p.IntegrateCSVFeed(1, strings.NewReader(csvFeed), "sellerB")
	if err != nil || n != 1 {
		t.Fatalf("csv feed: %d, %v", n, err)
	}

	// Both sellers' goods are in the union under the same category space.
	got := p.Union.Search(catalog.Query{Category: "gadget"})
	if len(got) != 2 {
		t.Fatalf("union search = %d products, want 2", len(got))
	}
	// Sellers registered with the coordinator.
	if got := p.Coordinator.Lookup(coordinator.KindSeller); len(got) != 2 {
		t.Errorf("sellers registered = %d", len(got))
	}
	// And a marketplace query finds the seller's goods.
	m := p.Markets[0].Query(catalog.Query{Category: "gadget"})
	if len(m) != 1 || m[0].Product.SellerID != "sellerA" {
		t.Errorf("market query = %+v", m)
	}
}

func TestPlatformStockErrors(t *testing.T) {
	p, err := New(Config{Marketplaces: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Stock(5, demoProducts()[0]); err == nil {
		t.Error("Stock accepted bad index")
	}
	if _, err := p.IntegrateJSONFeed(5, strings.NewReader("[]"), "s"); err == nil {
		t.Error("IntegrateJSONFeed accepted bad index")
	}
}

func TestPlatformMultipleBuyerServers(t *testing.T) {
	p, err := New(Config{Marketplaces: 1, BuyerServers: 2, Products: demoProducts()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx := testCtx(t)
	// Users on different buyer servers share the engine (one consumer
	// community across servers).
	for i, b := range p.Buyers {
		user := []string{"alice", "bob"}[i]
		if err := b.Register(ctx, user); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Login(ctx, user); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Query(ctx, user, catalog.Query{Category: "laptop"}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(p.Engine.Users()); got != 2 {
		t.Errorf("community size = %d, want 2", got)
	}
}

func TestPlatformCloseIdempotent(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPlatformStateDirWarmRestart boots a durable platform, lets a consumer
// shop, and restarts on the same state dir: the community (profile,
// purchases, sell counts) and the consumer's account must all survive.
func TestPlatformStateDirWarmRestart(t *testing.T) {
	ctx := testCtx(t)
	dir := t.TempDir()

	boot := func() *Platform {
		t.Helper()
		p, err := New(Config{Marketplaces: 2, StateDir: dir, Products: demoProducts()})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	p := boot()
	if err := p.Buyer().Register(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Buyer().Login(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	if res, err := p.Buyer().Buy(ctx, "alice", "p1", 0, false); err != nil || res.Sale == nil {
		t.Fatalf("buy: %v (sale=%v)", err, res.Sale)
	}
	wantProfile, err := p.Engine.Profile("alice")
	if err != nil {
		t.Fatal(err)
	}
	wantRecs, err := p.Buyer().Recommendations("alice", "laptop", 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2 := boot()
	defer p2.Close()
	// The engine recovered the community without any re-registration.
	gotProfile, err := p2.Engine.Profile("alice")
	if err != nil {
		t.Fatalf("alice's profile lost across restart: %v", err)
	}
	if gotProfile.Observed != wantProfile.Observed {
		t.Errorf("recovered Observed = %d, want %d", gotProfile.Observed, wantProfile.Observed)
	}
	if !p2.Engine.Snapshot().Purchases("alice")["p1"] {
		t.Error("alice's purchase lost across restart")
	}
	// The durable UserDB still knows the account: re-register is rejected,
	// login works directly.
	if err := p2.Buyer().Register(ctx, "alice"); err == nil {
		t.Error("re-register after restart succeeded; UserDB not durable")
	}
	if _, err := p2.Buyer().Login(ctx, "alice"); err != nil {
		t.Fatalf("login after restart: %v", err)
	}
	gotRecs, err := p2.Buyer().Recommendations("alice", "laptop", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotRecs) != len(wantRecs) {
		t.Fatalf("recommendations changed across restart: %v vs %v", gotRecs, wantRecs)
	}
	for i := range wantRecs {
		if gotRecs[i].ProductID != wantRecs[i].ProductID {
			t.Errorf("rec[%d] = %s, want %s", i, gotRecs[i].ProductID, wantRecs[i].ProductID)
		}
	}
}

// TestSeedCommunityBulkPath seeds through the batch install and checks the
// index sizing matches a per-profile install.
func TestSeedCommunityBulkPath(t *testing.T) {
	p, err := New(Config{Marketplaces: 1, Products: demoProducts()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	profiles := make([]*profile.Profile, 0, 6)
	for i := 0; i < 6; i++ {
		pr := profile.NewProfile(fmt.Sprintf("u%d", i))
		prod := demoProducts()[i%4]
		if err := pr.Observe(prod.Evidence(profile.BehaviourBuy)); err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, pr)
	}
	if err := p.SeedCommunity(profiles, map[string][]string{"u0": {"p1"}, "u1": {"p2"}}); err != nil {
		t.Fatal(err)
	}
	st := p.Engine.Stats()
	if st.Users != 6 {
		t.Errorf("seeded users = %d, want 6", st.Users)
	}
	if st.Postings == 0 {
		t.Error("bulk seed built no postings")
	}
	if !p.Engine.Snapshot().Purchases("u0")["p1"] {
		t.Error("seeded purchase missing")
	}
}

// TestReplicatedBuyerServers boots the Fig 3.1 multi-server deployment
// with per-server engines: writes route to shard owners through the
// consumer workflows, replicas tail the journals, and after a sync every
// buyer server answers from local state with the same community.
func TestReplicatedBuyerServers(t *testing.T) {
	products := demoProducts()
	for _, prod := range products {
		prod.Stock = 100 // six consumers each buy p1
	}
	p, err := New(Config{
		Marketplaces:     1,
		BuyerServers:     3,
		ReplicateEngines: true,
		Products:         products,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if len(p.Engines) != 3 || len(p.Replicators) != 3 {
		t.Fatalf("replicated platform has %d engines, %d replicators", len(p.Engines), len(p.Replicators))
	}
	if p.Engine != p.Engines[0] {
		t.Fatal("Engine is not server 0's engine")
	}

	ctx := testCtx(t)
	// Consumers register on different servers; their profile installs are
	// routed to the owning server regardless.
	users := []string{"alice", "bob", "carol", "dave", "erin", "frank"}
	for i, user := range users {
		b := p.Buyers[i%len(p.Buyers)]
		if err := b.Register(ctx, user); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Login(ctx, user); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Buy(ctx, user, "p1", 0, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.SyncReplicas(ctx); err != nil {
		t.Fatal(err)
	}
	// Every server's engine now holds the whole community locally.
	for i, e := range p.Engines {
		if got := len(e.Users()); got != len(users) {
			t.Errorf("engine %d community = %d users, want %d", i, got, len(users))
		}
	}
	// And answers identically: the purchase-driven top seller is p1 with
	// one sale per consumer, on every server.
	for i, e := range p.Engines {
		recs, err := e.Recommend(recommend.StrategyTopSeller, "", "", 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || recs[0].ProductID != "p1" || recs[0].Score != float64(len(users)) {
			t.Errorf("engine %d top seller = %+v, want p1 with %d sales", i, recs, len(users))
		}
	}
	// Replication stats see every non-owned shard healthy.
	for i, r := range p.Replicators {
		st := r.Stats()
		if st.Lag() != 0 {
			t.Errorf("replicator %d lag = %d after sync", i, st.Lag())
		}
		for _, sh := range st.Shards {
			if sh.LastError != "" {
				t.Errorf("replicator %d shard %d: %s", i, sh.Shard, sh.LastError)
			}
		}
	}
}

// TestReplicatedSeedCommunity pins the seeding barrier: SeedCommunity on a
// replicated platform routes through the owners and syncs, so every engine
// reads the seeded community immediately after.
func TestReplicatedSeedCommunity(t *testing.T) {
	p, err := New(Config{
		Marketplaces:     1,
		BuyerServers:     2,
		ReplicateEngines: true,
		Products:         demoProducts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	profiles := make([]*profile.Profile, 0, 8)
	for i := 0; i < 8; i++ {
		pr := profile.NewProfile(fmt.Sprintf("u%d", i))
		prod := demoProducts()[i%4]
		if err := pr.Observe(prod.Evidence(profile.BehaviourBuy)); err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, pr)
	}
	if err := p.SeedCommunity(profiles, map[string][]string{"u0": {"p1"}, "u1": {"p2"}}); err != nil {
		t.Fatal(err)
	}
	for i, e := range p.Engines {
		if st := e.Stats(); st.Users != 8 {
			t.Errorf("engine %d seeded users = %d, want 8", i, st.Users)
		}
		if !e.Snapshot().Purchases("u0")["p1"] {
			t.Errorf("engine %d missing seeded purchase", i)
		}
	}
}

// TestPlatformCompactRatioBoundsJournal: Config.CompactRatio plumbs an
// automatic compaction policy into every replicated engine (with the eager
// follower defaults), the journals converge under the configured ratio
// while replication is live, and the compacted platform restarts warm.
func TestPlatformCompactRatioBoundsJournal(t *testing.T) {
	dir := t.TempDir()
	const ratio = 2
	cfg := Config{
		Marketplaces: 1, BuyerServers: 2, ReplicateEngines: true,
		StateDir: dir, CompactRatio: ratio, Products: demoProducts(),
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	defer func() {
		if !closed {
			p.Close()
		}
	}()

	// A community fat enough that repeated overwrite rounds push every
	// engine's journal past the follower policy's minimum size.
	profiles := make([]*profile.Profile, 0, 300)
	for i := 0; i < 300; i++ {
		pr := profile.NewProfile(fmt.Sprintf("user-%03d", i))
		for _, prod := range demoProducts() {
			if err := pr.Observe(prod.Evidence(profile.BehaviourBuy)); err != nil {
				t.Fatal(err)
			}
		}
		profiles = append(profiles, pr)
	}
	for round := 0; round < 8; round++ {
		if err := p.SeedCommunity(profiles, nil); err != nil {
			t.Fatal(err)
		}
	}

	// Compaction runs asynchronously; keep a trickle of writes flowing (as
	// any live platform has) until both engines report a bounded journal.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if err := p.SeedCommunity(profiles[:8], nil); err != nil {
			t.Fatal(err)
		}
		done := true
		for _, e := range p.Engines {
			st := e.Stats()
			if st.Compactions == 0 || float64(st.JournalBytes) > ratio*float64(st.LiveBytes) {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			for i, e := range p.Engines {
				t.Logf("engine %d stats: %+v", i, e.Stats())
			}
			t.Fatal("engine journals never converged under Config.CompactRatio")
		}
	}

	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	closed = true

	// The compacted journals still recover the full community.
	p2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	for i, e := range p2.Engines {
		if got := e.Stats().Users; got != len(profiles) {
			t.Errorf("engine %d recovered %d users, want %d", i, got, len(profiles))
		}
	}
}
