package platform

import (
	"testing"
	"time"

	"agentrec/internal/catalog"
	"agentrec/internal/ops"
	"agentrec/internal/recommend"
)

// TestPlatformElasticOwnership boots the coordinator-mediated ownership
// plane end to end: lease clients arm every server's table at the static
// epoch-1 map with zero boot churn, a deregistration publishes a leave
// transition and moves the departed server's shards, and the still-running
// lease client rejoins and reclaims them (join transition) once its
// replicas prove caught up — after which writes route and converge as
// before.
func TestPlatformElasticOwnership(t *testing.T) {
	products := demoProducts()
	for _, prod := range products {
		prod.Stock = 100
	}
	p, err := New(Config{
		Marketplaces:     1,
		BuyerServers:     3,
		ReplicateEngines: true,
		ElasticOwnership: true,
		OwnershipLease:   20 * time.Millisecond,
		ReplicationPull:  10 * time.Millisecond,
		Products:         products,
		Events:           true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Ownership == nil {
		t.Fatal("ElasticOwnership did not attach an authority")
	}

	// Lease clients renew immediately: every table arms without the map
	// moving (static-first placement means a healthy boot never churns).
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; i < 3; i++ {
		tab := p.OwnershipTable(i)
		if tab == nil {
			t.Fatalf("server %d has no ownership table", i)
		}
		for tab.Expired() != nil {
			if time.Now().After(deadline) {
				t.Fatalf("server %d lease never landed: %v", i, tab.Expired())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if e := p.Ownership.Map().Epoch; e != 1 {
		t.Fatalf("healthy boot moved the map to epoch %d", e)
	}

	ctx := testCtx(t)
	sub, err := p.Subscribe(ctx, ops.KindOwnership)
	if err != nil {
		t.Fatal(err)
	}

	users := []string{"alice", "bob", "carol", "dave", "erin", "frank"}
	for i, user := range users {
		b := p.Buyers[i%len(p.Buyers)]
		if err := b.Register(ctx, user); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Login(ctx, user); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Buy(ctx, user, "p1", 0, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.SyncReplicas(ctx); err != nil {
		t.Fatal(err)
	}

	// Server 2 leaves: its shards fail over to the survivors under a leave
	// transition published by the authority (Server -1). Its lease client
	// is still running, so it rejoins and — replicas caught up — reclaims
	// its static shards under a join transition.
	if err := p.Ownership.DeregisterServer(2); err != nil {
		t.Fatal(err)
	}
	var sawLeave, sawJoin bool
	for !(sawLeave && sawJoin) {
		ev, err := sub.Next(ctx)
		if err != nil {
			t.Fatalf("leave=%v join=%v before stream ended: %v", sawLeave, sawJoin, err)
		}
		if ev.Kind != ops.KindOwnership {
			t.Fatalf("unexpected kind %q with ownership filter", ev.Kind)
		}
		o := ev.Ownership
		if o.Server != -1 {
			t.Fatalf("authority transition carries server %d, want -1", o.Server)
		}
		if o.Epoch != o.PrevEpoch+1 || len(o.Moved) == 0 {
			t.Fatalf("transition payload = %+v", o)
		}
		switch o.Reason {
		case ops.OwnershipLeave:
			sawLeave = true
			for _, mv := range o.Moved {
				if mv.From != 2 {
					t.Fatalf("leave moved shard %d from server %d, want only server 2's shards", mv.Shard, mv.From)
				}
			}
		case ops.OwnershipJoin:
			sawJoin = true
			for _, mv := range o.Moved {
				if mv.To != 2 {
					t.Fatalf("join moved shard %d to server %d, want only back to server 2", mv.Shard, mv.To)
				}
			}
		case ops.OwnershipFailover:
			t.Fatal("clean deregistration published a failover transition")
		}
	}

	// The rejoin restores the static assignment — possibly over several
	// transitions, one per renewal as shards prove caught up. Poll until
	// the authority settles there, then wait for every table to adopt the
	// final epoch so post-transition writes see one world.
	static := recommend.StaticOwnership(p.Engine.Shards(), 3)
	final := p.Ownership.Map()
	for {
		settled := true
		for s, owner := range final.Assign {
			if owner != static.Assign[s] {
				settled = false
				break
			}
		}
		if settled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("map never settled back to static: %+v", final)
		}
		time.Sleep(5 * time.Millisecond)
		final = p.Ownership.Map()
	}
	for i := 0; i < 3; i++ {
		for p.OwnershipTable(i).Epoch() != final.Epoch {
			if time.Now().After(deadline) {
				t.Fatalf("server %d table stuck at epoch %d, authority at %d", i, p.OwnershipTable(i).Epoch(), final.Epoch)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Writes still route and replicate across the settled cluster.
	for i, user := range users {
		b := p.Buyers[i%len(p.Buyers)]
		if _, err := b.Buy(ctx, user, "p2", 0, false); err != nil {
			t.Fatalf("post-transition buy for %s: %v", user, err)
		}
	}
	if err := p.SyncReplicas(ctx); err != nil {
		t.Fatal(err)
	}
	for i, e := range p.Engines {
		if got := len(e.Users()); got != len(users) {
			t.Errorf("engine %d community = %d users, want %d", i, got, len(users))
		}
		recs, err := e.Recommend(recommend.StrategyTopSeller, "", "", 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 2 {
			t.Fatalf("engine %d top sellers = %+v", i, recs)
		}
		for _, r := range recs {
			if r.Score != float64(len(users)) {
				t.Errorf("engine %d: %s sales = %v, want %d", i, r.ProductID, r.Score, len(users))
			}
		}
	}
}

func TestPlatformElasticRequiresReplication(t *testing.T) {
	if _, err := New(Config{Marketplaces: 1, ElasticOwnership: true, Products: []*catalog.Product{}}); err == nil {
		t.Fatal("ElasticOwnership without ReplicateEngines must refuse")
	}
}
