// Package platform is the composition root reproducing Fig 3.1: one
// Coordinator Server, one or more Marketplaces, Seller Servers feeding them
// merchandise, and one or more Buyer Agent Servers (the recommendation
// mechanism), all running in-process over the loopback agent transport.
// cmd/platformd assembles the same pieces over TCP with the atp transport.
//
// Engine topology is a Config choice. By default every Buyer Agent Server
// shares one recommendation engine (the paper's single mechanism). With
// ReplicateEngines each server gets its own engine: community shard s is
// owned by server s%N, a recommend.Router forwards each server's writes to
// the owner, and a recommend.Replicator per server tails the owners'
// journals so every server reads from a local replica. SeedCommunity and
// SyncReplicas give deterministic post-write convergence barriers.
//
// With StateDir set, every store is WAL-backed under one root — the
// engine(s) under engine/ (engine-<i>/ when replicated), each server's
// UserDB and BSMDB under buyer-server-<n>/ — and New recovers all of it,
// so a restarted platform answers as it did before the restart.
package platform

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"agentrec/internal/aglet"
	"agentrec/internal/buyerserver"
	"agentrec/internal/catalog"
	"agentrec/internal/coordinator"
	"agentrec/internal/marketplace"
	"agentrec/internal/ops"
	"agentrec/internal/profile"
	"agentrec/internal/recommend"
	"agentrec/internal/trace"
)

// Config sizes the platform. Zero fields take the default in brackets.
type Config struct {
	Marketplaces int    // [2]
	BuyerServers int    // [1]
	EngineShards int    // user-keyed engine shards [recommend.DefaultShards]
	StateDir     string // durable state root; empty = memory-only [""]

	// CompactRatio enables automatic crash-safe compaction of every
	// engine's community WAL: the journal is rewritten down to live state
	// in the background whenever it exceeds CompactRatio times the encoded
	// live size. Zero keeps compaction manual (Engine.CompactState), and
	// it is meaningless without StateDir. Replicated deployments apply the
	// ratio with eager follower defaults (smaller minimum size, tighter
	// check interval): a follower journals every applied record AND
	// rewrites whole shards on snapshot catch-up, so its WAL outgrows an
	// owner's. [0]
	CompactRatio float64

	// Events enables the streaming event plane: one ops.Bus per platform
	// that every engine and replicator publishes into (journal appends,
	// recommendation deltas, compaction passes, lag transitions, periodic
	// snapshot heartbeats), served live on every buyer server's HTTP
	// surface (GET /events, GET /metrics/snapshot) and to embedders via
	// Platform.Subscribe / Platform.Metrics. [false]
	Events bool
	// EventsInterval is the snapshot heartbeat period
	// [DefaultEventsInterval]. Only meaningful with Events.
	EventsInterval time.Duration

	// ReplicateEngines gives every Buyer Agent Server its own engine
	// instead of one shared in-process engine: each shard is owned by
	// server shard%N, writes are routed to the owner, and every server's
	// Replicator tails the owners' journals so reads answer from local
	// state — the paper's Fig 3.1 scaled out. SeedCommunity then ends with
	// a SyncReplicas barrier so freshly seeded platforms read consistently.
	ReplicateEngines bool
	// ReplicationPull is the background tail interval [100ms].
	ReplicationPull time.Duration

	// ElasticOwnership (only with ReplicateEngines) puts shard ownership
	// under the coordinator's lease authority instead of the static
	// shard%N map: every server renews an ownership lease each
	// OwnershipLease, routing and fencing follow the leased
	// recommend.OwnershipMap, a server whose lease lapses has its shards
	// promoted to the most caught-up follower, and every map transition is
	// published as an `ownership` event (with Events). Without it the
	// static map is used and nothing changes. [false]
	ElasticOwnership bool
	// OwnershipLease is the lease renew cadence; the authority's TTL is
	// three times it. [1s]
	OwnershipLease time.Duration

	// NeighborSearch selects how every engine's CF neighbour search
	// enumerates candidates: recommend.SearchExact (default) scans the
	// exact per-category posting lists; recommend.SearchLSH shortlists
	// large categories through the random-hyperplane LSH index and
	// re-ranks the shortlist exactly. [recommend.SearchExact]
	NeighborSearch recommend.NeighborSearch
	// ANNProbes is the LSH multi-probe width per hash table; zero keeps
	// the engine default. Only meaningful with SearchLSH. [0]
	ANNProbes int

	Tracer     *trace.Recorder    // optional workflow tracer
	EngineOpts []recommend.Option // tuning for every engine
	BuyerOpts  []buyerserver.Option
	Products   []*catalog.Product // initial merchandise, distributed round-robin
}

// ErrNoBuyerServers reports a config without any buyer server.
var ErrNoBuyerServers = errors.New("platform: need at least one buyer server")

// Platform is one running instance of the Fig 3.1 architecture.
type Platform struct {
	Loopback    *aglet.Loopback
	Coordinator *coordinator.Coordinator
	Markets     []*marketplace.Server
	Buyers      []*buyerserver.Server
	Union       *catalog.Catalog // integrated view of all marketplace merchandise

	// Engine is buyer server 0's engine. Without ReplicateEngines it is
	// the one engine every server shares; with replication each server has
	// its own replica in Engines and converges on the same answers.
	Engine      *recommend.Engine
	Engines     []*recommend.Engine
	Replicators []*recommend.Replicator // one per server when replicating

	// Events is the platform's event bus (nil without Config.Events); see
	// events.go for the embedder API (Metrics, Subscribe, RunHeartbeat).
	Events *ops.Bus

	// Ownership is the coordinator's lease authority (nil without
	// Config.ElasticOwnership).
	Ownership *coordinator.Authority

	writer        recommend.Writer            // seeding write surface (router 0 when replicating)
	writers       []recommend.Writer          // per-server community write surface
	tables        []*recommend.OwnershipTable // per-server leased maps (elastic only)
	leaseCancel   context.CancelFunc          // stops the lease-client goroutines
	leaseDone     sync.WaitGroup
	hosts         []*aglet.Host
	stopHeartbeat chan struct{}
	heartbeatDone chan struct{}
}

// New boots a platform.
func New(cfg Config) (*Platform, error) {
	if cfg.Marketplaces <= 0 {
		cfg.Marketplaces = 2
	}
	if cfg.BuyerServers == 0 {
		cfg.BuyerServers = 1
	}
	if cfg.BuyerServers < 0 {
		return nil, ErrNoBuyerServers
	}
	if cfg.ElasticOwnership && !cfg.ReplicateEngines {
		return nil, errors.New("platform: ElasticOwnership requires ReplicateEngines")
	}

	p := &Platform{
		Loopback: aglet.NewLoopback(),
		Union:    catalog.New(),
	}
	ok := false
	defer func() {
		if !ok {
			p.Close()
		}
	}()

	coordReg := aglet.NewRegistry()
	coordHost := p.newHost("coord", coordReg)
	coord, err := coordinator.New(coordHost, coordReg, coordinator.WithTracer(cfg.Tracer))
	if err != nil {
		return nil, err
	}
	p.Coordinator = coord

	var marketNames []string
	for i := 0; i < cfg.Marketplaces; i++ {
		name := fmt.Sprintf("market-%d", i+1)
		reg := aglet.NewRegistry()
		buyerserver.RegisterMBAType(reg)
		host := p.newHost(name, reg)
		mp, err := marketplace.NewServer(host, catalog.New(), reg)
		if err != nil {
			return nil, err
		}
		p.Markets = append(p.Markets, mp)
		marketNames = append(marketNames, name)
		if err := coord.Register(coordinator.Registration{
			Kind: coordinator.KindMarketplace, Name: name, Addr: name,
		}); err != nil {
			return nil, err
		}
	}

	for i, prod := range cfg.Products {
		if err := p.Stock(i%cfg.Marketplaces, prod); err != nil {
			return nil, err
		}
	}

	if cfg.Events {
		p.Events = ops.NewBus()
	}

	// Prepend defaults so explicit EngineOpts still win.
	baseOpts := func(server int, stateSub string) []recommend.Option {
		var opts []recommend.Option
		if p.Events != nil {
			opts = append(opts, recommend.WithEventBus(p.Events, server))
		}
		if cfg.EngineShards > 0 {
			opts = append(opts, recommend.WithShards(cfg.EngineShards))
		}
		if cfg.NeighborSearch != recommend.SearchExact {
			opts = append(opts, recommend.WithNeighborSearch(cfg.NeighborSearch))
		}
		if cfg.ANNProbes > 0 {
			opts = append(opts, recommend.WithANNProbes(cfg.ANNProbes))
		}
		if cfg.StateDir != "" {
			// Each engine journals its community under the state root and
			// recovers it here, so a platform restart keeps every consumer.
			opts = append(opts, recommend.WithPersistence(filepath.Join(cfg.StateDir, stateSub)))
			if cfg.CompactRatio > 0 {
				pol := recommend.CompactionPolicy{Ratio: cfg.CompactRatio}
				if cfg.ReplicateEngines {
					pol = recommend.FollowerCompactionPolicy(cfg.CompactRatio)
				}
				opts = append(opts, recommend.WithAutoCompaction(pol))
			}
		}
		return opts
	}
	if cfg.ReplicateEngines {
		// One engine per buyer server: shard s is owned by server s%N,
		// writes route to the owner, and each server tails the others.
		for i := 0; i < cfg.BuyerServers; i++ {
			opts := append(baseOpts(i, fmt.Sprintf("engine-%d", i)), recommend.WithJournalFeed(0))
			engine, err := recommend.Open(p.Union, append(opts, cfg.EngineOpts...)...)
			if err != nil {
				return nil, err
			}
			p.Engines = append(p.Engines, engine)
		}
		peers := make([]recommend.Peer, cfg.BuyerServers)
		for i, e := range p.Engines {
			peers[i] = recommend.LocalPeer{Engine: e}
		}
		if cfg.ElasticOwnership {
			// Every server starts from the same static epoch-1 map the
			// authority does, so routing is consistent before the first
			// lease lands; the lease clients below keep the tables moving.
			shards := p.Engines[0].Shards()
			var publish func(ops.Event)
			if p.Events != nil {
				publish = func(ev ops.Event) { p.Events.Publish(ev) }
			}
			lease := cfg.OwnershipLease
			if lease <= 0 {
				lease = time.Second
			}
			auth, err := coordinator.NewOwnershipAuthority(coordinator.OwnershipConfig{
				Shards:   shards,
				Servers:  cfg.BuyerServers,
				LeaseTTL: 3 * lease,
				Publish:  publish,
			})
			if err != nil {
				return nil, err
			}
			coord.AttachOwnership(auth)
			p.Ownership = auth
			for i := 0; i < cfg.BuyerServers; i++ {
				p.tables = append(p.tables,
					recommend.NewOwnershipTable(recommend.StaticOwnership(shards, cfg.BuyerServers)))
			}
		}
		pull := cfg.ReplicationPull
		if pull <= 0 {
			pull = 100 * time.Millisecond
		}
		for i, e := range p.Engines {
			ropts := []recommend.ReplicatorOption{recommend.WithPullInterval(pull)}
			if p.Events != nil {
				ropts = append(ropts, recommend.WithReplicationEvents(p.Events, i))
			}
			if p.tables != nil {
				ropts = append(ropts, recommend.PullWithOwnership(p.tables[i]))
			}
			r, err := recommend.NewReplicator(e, i, peers, ropts...)
			if err != nil {
				return nil, err
			}
			r.Start()
			p.Replicators = append(p.Replicators, r)
		}
		if p.Ownership != nil {
			// One lease client per server: renew directly against the
			// in-process authority with the replicator's catch-up evidence.
			lease := cfg.OwnershipLease
			if lease <= 0 {
				lease = time.Second
			}
			lctx, cancel := context.WithCancel(context.Background())
			p.leaseCancel = cancel
			for i := 0; i < cfg.BuyerServers; i++ {
				client := &coordinator.LeaseClient{
					Self:  i,
					Table: p.tables[i],
					Renew: func(_ context.Context, server int, applied []uint64) (coordinator.LeaseGrant, error) {
						return p.Ownership.Renew(server, applied)
					},
					Applied:  p.Replicators[i].AppliedSeqs,
					Interval: lease,
				}
				p.leaseDone.Add(1)
				go func() {
					defer p.leaseDone.Done()
					client.Run(lctx)
				}()
			}
		}
	} else {
		engine, err := recommend.Open(p.Union, append(baseOpts(0, "engine"), cfg.EngineOpts...)...)
		if err != nil {
			return nil, err
		}
		p.Engines = []*recommend.Engine{engine}
	}
	p.Engine = p.Engines[0]
	p.writer = p.Engine

	for i := 0; i < cfg.BuyerServers; i++ {
		name := fmt.Sprintf("buyer-server-%d", i+1)
		reg := aglet.NewRegistry()
		host := p.newHost(name, reg)
		caProxy := host.RemoteProxy("coord", coordinator.CAID)
		opts := []buyerserver.Option{
			buyerserver.WithTracer(cfg.Tracer),
			buyerserver.WithMarkets(marketNames...),
			buyerserver.WithMetrics(p.Metrics),
		}
		if p.Events != nil {
			opts = append(opts, buyerserver.WithEventBus(p.Events))
		}
		engine := p.Engine
		serverWriter := recommend.Writer(engine)
		if cfg.ReplicateEngines {
			engine = p.Engines[i]
			writers := make([]recommend.Writer, cfg.BuyerServers)
			for j, e := range p.Engines {
				if p.tables != nil && j != i {
					// Elastic: remote writes go through the receiver's
					// fence, stamped with this server's epoch — the
					// in-process analogue of replnet's fenced frames.
					writers[j] = recommend.OwnedWriter{Local: e, Self: j, Table: p.tables[j], Sender: p.tables[i]}
				} else {
					writers[j] = e
				}
			}
			var ropts []recommend.RouterOption
			if p.tables != nil {
				ropts = append(ropts, recommend.RouteWithOwnership(p.tables[i]))
			}
			router, err := recommend.NewRouter(engine, i, writers, ropts...)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				p.writer = router
			}
			serverWriter = router
			opts = append(opts, buyerserver.WithCommunityWriter(router))
		}
		p.writers = append(p.writers, serverWriter)
		if cfg.StateDir != "" {
			// Each mechanism persists its own UserDB/BSMDB beside the engine.
			opts = append(opts, buyerserver.WithStateDir(filepath.Join(cfg.StateDir, name)))
		}
		srv, err := buyerserver.New(host, reg, engine, caProxy, append(opts, cfg.BuyerOpts...)...)
		if err != nil {
			return nil, err
		}
		p.Buyers = append(p.Buyers, srv)
	}
	if p.Events != nil {
		p.startHeartbeat(cfg.EventsInterval)
	}
	ok = true
	return p, nil
}

// ReplicationStats reports every buyer server's per-shard replication
// status — applied vs owner sequence, lag, snapshot/page counts, last
// errors — the signal an operator needs before trusting a server's local
// reads. Empty without ReplicateEngines.
//
// Deprecated: use Metrics, whose ops.Snapshot carries the same data (per
// server under Replication, with lags materialized as lag_records) plus
// the engine sizing this walk omits. This delegate stays for embedders
// that want the raw recommend structs.
func (p *Platform) ReplicationStats() []recommend.ReplicationStats {
	out := make([]recommend.ReplicationStats, 0, len(p.Replicators))
	for _, r := range p.Replicators {
		out = append(out, r.Stats())
	}
	return out
}

// SyncReplicas runs one deterministic catch-up pass on every replicator:
// after a nil return, every buyer server's engine has applied all writes
// the owners had journaled when the pass began. A no-op without
// ReplicateEngines.
func (p *Platform) SyncReplicas(ctx context.Context) error {
	var first error
	for _, r := range p.Replicators {
		if err := r.Sync(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (p *Platform) newHost(name string, reg *aglet.Registry) *aglet.Host {
	host := aglet.NewHost(name, reg)
	p.Loopback.Attach(host)
	p.hosts = append(p.hosts, host)
	return host
}

// Buyer returns the first buyer agent server, the common case.
func (p *Platform) Buyer() *buyerserver.Server { return p.Buyers[0] }

// Writer returns buyer server i's community write surface — the surface
// its own agents write through: the shared engine in the default topology,
// or server i's ownership router when replicating. Load drivers use it to
// spread writes across servers the way real buyer traffic would.
func (p *Platform) Writer(i int) recommend.Writer {
	if i < 0 || i >= len(p.writers) {
		return nil
	}
	return p.writers[i]
}

// OwnershipTable returns buyer server i's leased ownership table, or nil
// outside ElasticOwnership deployments.
func (p *Platform) OwnershipTable(i int) *recommend.OwnershipTable {
	if i < 0 || i >= len(p.tables) {
		return nil
	}
	return p.tables[i]
}

// Stock adds a product to marketplace index i and the integrated catalog.
func (p *Platform) Stock(i int, prod *catalog.Product) error {
	if i < 0 || i >= len(p.Markets) {
		return fmt.Errorf("platform: no marketplace %d", i)
	}
	if err := p.Markets[i].Catalog().Upsert(prod); err != nil {
		return err
	}
	return p.Union.Upsert(prod)
}

// IntegrateJSONFeed runs a seller's JSON feed through the Seller Server
// integration into marketplace i (§3.2 item 4).
func (p *Platform) IntegrateJSONFeed(i int, r io.Reader, sellerID string) (int, error) {
	return p.integrate(i, sellerID, func(in *catalog.Integrator) (int, error) {
		return in.IntegrateJSON(r, sellerID)
	})
}

// IntegrateCSVFeed runs a seller's legacy CSV feed through the Seller
// Server integration into marketplace i.
func (p *Platform) IntegrateCSVFeed(i int, r io.Reader, sellerID string) (int, error) {
	return p.integrate(i, sellerID, func(in *catalog.Integrator) (int, error) {
		return in.IntegrateCSV(r, sellerID)
	})
}

func (p *Platform) integrate(i int, sellerID string, apply func(*catalog.Integrator) (int, error)) (int, error) {
	if i < 0 || i >= len(p.Markets) {
		return 0, fmt.Errorf("platform: no marketplace %d", i)
	}
	n, err := apply(catalog.NewIntegrator(p.Markets[i].Catalog()))
	if err != nil {
		return 0, err
	}
	if err := p.Coordinator.Register(coordinator.Registration{
		Kind: coordinator.KindSeller, Name: sellerID, Addr: p.Markets[i].Host().Name(),
	}); err != nil {
		return n, err
	}
	// Mirror into the integrated catalog the engine recommends over.
	for _, prod := range p.Markets[i].Catalog().All() {
		if prod.SellerID == sellerID {
			if err := p.Union.Upsert(prod); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// SeedCommunity installs pre-built consumer profiles and purchase histories
// into the engine, for examples and experiments that need a warm community.
// Profiles go through the engine's bulk-install path (one lock acquisition
// and one durable batch per shard). Purchases replay grouped by shard —
// map-order iteration would touch a random shard per record, which under
// WithMaxResidentShards faults a shard in and out per purchase instead of
// once per shard.
func (p *Platform) SeedCommunity(profiles []*profile.Profile, purchases map[string][]string) error {
	if err := p.writer.SetProfiles(profiles); err != nil {
		return err
	}
	users := make([]string, 0, len(purchases))
	for user := range purchases {
		users = append(users, user)
	}
	sort.Slice(users, func(i, j int) bool {
		si, sj := p.Engine.ShardOf(users[i]), p.Engine.ShardOf(users[j])
		if si != sj {
			return si < sj
		}
		return users[i] < users[j]
	})
	for _, user := range users {
		for _, pid := range purchases[user] {
			if err := p.writer.RecordPurchase(user, pid); err != nil {
				return err
			}
		}
	}
	if len(p.Replicators) > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		return p.SyncReplicas(ctx)
	}
	return nil
}

// Close shuts everything down: the event plane first (heartbeat stopped,
// bus closed so wire consumers drain and disconnect), then replicators (no
// new applies), buyer servers (they own live agents with in-flight trips),
// marketplaces, the coordinator, and the engines' persistence journals.
func (p *Platform) Close() error {
	p.closeEventPlane()
	if p.leaseCancel != nil {
		p.leaseCancel()
		p.leaseDone.Wait()
	}
	var first error
	for _, r := range p.Replicators {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, b := range p.Buyers {
		if err := b.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, h := range p.hosts {
		if err := h.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, e := range p.Engines {
		if err := e.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
