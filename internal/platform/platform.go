// Package platform is the composition root reproducing Fig 3.1: one
// Coordinator Server, one or more Marketplaces, Seller Servers feeding them
// merchandise, and one or more Buyer Agent Servers (the recommendation
// mechanism), all running in-process over the loopback agent transport.
// cmd/platformd assembles the same pieces over TCP with the atp transport.
package platform

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"

	"agentrec/internal/aglet"
	"agentrec/internal/buyerserver"
	"agentrec/internal/catalog"
	"agentrec/internal/coordinator"
	"agentrec/internal/marketplace"
	"agentrec/internal/profile"
	"agentrec/internal/recommend"
	"agentrec/internal/trace"
)

// Config sizes the platform. Zero fields take the default in brackets.
type Config struct {
	Marketplaces int                // [2]
	BuyerServers int                // [1]
	EngineShards int                // user-keyed engine shards [recommend.DefaultShards]
	StateDir     string             // durable state root; empty = memory-only [""]
	Tracer       *trace.Recorder    // optional workflow tracer
	EngineOpts   []recommend.Option // tuning for the shared engine
	BuyerOpts    []buyerserver.Option
	Products     []*catalog.Product // initial merchandise, distributed round-robin
}

// ErrNoBuyerServers reports a config without any buyer server.
var ErrNoBuyerServers = errors.New("platform: need at least one buyer server")

// Platform is one running instance of the Fig 3.1 architecture.
type Platform struct {
	Loopback    *aglet.Loopback
	Coordinator *coordinator.Coordinator
	Markets     []*marketplace.Server
	Buyers      []*buyerserver.Server
	Union       *catalog.Catalog // integrated view of all marketplace merchandise
	Engine      *recommend.Engine

	hosts []*aglet.Host
}

// New boots a platform.
func New(cfg Config) (*Platform, error) {
	if cfg.Marketplaces <= 0 {
		cfg.Marketplaces = 2
	}
	if cfg.BuyerServers == 0 {
		cfg.BuyerServers = 1
	}
	if cfg.BuyerServers < 0 {
		return nil, ErrNoBuyerServers
	}

	p := &Platform{
		Loopback: aglet.NewLoopback(),
		Union:    catalog.New(),
	}
	ok := false
	defer func() {
		if !ok {
			p.Close()
		}
	}()

	coordReg := aglet.NewRegistry()
	coordHost := p.newHost("coord", coordReg)
	coord, err := coordinator.New(coordHost, coordReg, coordinator.WithTracer(cfg.Tracer))
	if err != nil {
		return nil, err
	}
	p.Coordinator = coord

	var marketNames []string
	for i := 0; i < cfg.Marketplaces; i++ {
		name := fmt.Sprintf("market-%d", i+1)
		reg := aglet.NewRegistry()
		buyerserver.RegisterMBAType(reg)
		host := p.newHost(name, reg)
		mp, err := marketplace.NewServer(host, catalog.New(), reg)
		if err != nil {
			return nil, err
		}
		p.Markets = append(p.Markets, mp)
		marketNames = append(marketNames, name)
		if err := coord.Register(coordinator.Registration{
			Kind: coordinator.KindMarketplace, Name: name, Addr: name,
		}); err != nil {
			return nil, err
		}
	}

	for i, prod := range cfg.Products {
		if err := p.Stock(i%cfg.Marketplaces, prod); err != nil {
			return nil, err
		}
	}

	// Prepend defaults so explicit EngineOpts still win.
	var engineOpts []recommend.Option
	if cfg.EngineShards > 0 {
		engineOpts = append(engineOpts, recommend.WithShards(cfg.EngineShards))
	}
	if cfg.StateDir != "" {
		// The shared engine journals the community under <StateDir>/engine
		// and recovers it here, so a platform restart keeps every consumer.
		engineOpts = append(engineOpts, recommend.WithPersistence(filepath.Join(cfg.StateDir, "engine")))
	}
	engine, err := recommend.Open(p.Union, append(engineOpts, cfg.EngineOpts...)...)
	if err != nil {
		return nil, err
	}
	p.Engine = engine
	for i := 0; i < cfg.BuyerServers; i++ {
		name := fmt.Sprintf("buyer-server-%d", i+1)
		reg := aglet.NewRegistry()
		host := p.newHost(name, reg)
		caProxy := host.RemoteProxy("coord", coordinator.CAID)
		opts := []buyerserver.Option{
			buyerserver.WithTracer(cfg.Tracer),
			buyerserver.WithMarkets(marketNames...),
		}
		if cfg.StateDir != "" {
			// Each mechanism persists its own UserDB/BSMDB beside the engine.
			opts = append(opts, buyerserver.WithStateDir(filepath.Join(cfg.StateDir, name)))
		}
		srv, err := buyerserver.New(host, reg, p.Engine, caProxy, append(opts, cfg.BuyerOpts...)...)
		if err != nil {
			return nil, err
		}
		p.Buyers = append(p.Buyers, srv)
	}
	ok = true
	return p, nil
}

func (p *Platform) newHost(name string, reg *aglet.Registry) *aglet.Host {
	host := aglet.NewHost(name, reg)
	p.Loopback.Attach(host)
	p.hosts = append(p.hosts, host)
	return host
}

// Buyer returns the first buyer agent server, the common case.
func (p *Platform) Buyer() *buyerserver.Server { return p.Buyers[0] }

// Stock adds a product to marketplace index i and the integrated catalog.
func (p *Platform) Stock(i int, prod *catalog.Product) error {
	if i < 0 || i >= len(p.Markets) {
		return fmt.Errorf("platform: no marketplace %d", i)
	}
	if err := p.Markets[i].Catalog().Upsert(prod); err != nil {
		return err
	}
	return p.Union.Upsert(prod)
}

// IntegrateJSONFeed runs a seller's JSON feed through the Seller Server
// integration into marketplace i (§3.2 item 4).
func (p *Platform) IntegrateJSONFeed(i int, r io.Reader, sellerID string) (int, error) {
	return p.integrate(i, sellerID, func(in *catalog.Integrator) (int, error) {
		return in.IntegrateJSON(r, sellerID)
	})
}

// IntegrateCSVFeed runs a seller's legacy CSV feed through the Seller
// Server integration into marketplace i.
func (p *Platform) IntegrateCSVFeed(i int, r io.Reader, sellerID string) (int, error) {
	return p.integrate(i, sellerID, func(in *catalog.Integrator) (int, error) {
		return in.IntegrateCSV(r, sellerID)
	})
}

func (p *Platform) integrate(i int, sellerID string, apply func(*catalog.Integrator) (int, error)) (int, error) {
	if i < 0 || i >= len(p.Markets) {
		return 0, fmt.Errorf("platform: no marketplace %d", i)
	}
	n, err := apply(catalog.NewIntegrator(p.Markets[i].Catalog()))
	if err != nil {
		return 0, err
	}
	if err := p.Coordinator.Register(coordinator.Registration{
		Kind: coordinator.KindSeller, Name: sellerID, Addr: p.Markets[i].Host().Name(),
	}); err != nil {
		return n, err
	}
	// Mirror into the integrated catalog the engine recommends over.
	for _, prod := range p.Markets[i].Catalog().All() {
		if prod.SellerID == sellerID {
			if err := p.Union.Upsert(prod); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// SeedCommunity installs pre-built consumer profiles and purchase histories
// into the engine, for examples and experiments that need a warm community.
// Profiles go through the engine's bulk-install path (one lock acquisition
// and one durable batch per shard).
func (p *Platform) SeedCommunity(profiles []*profile.Profile, purchases map[string][]string) error {
	if err := p.Engine.SetProfiles(profiles); err != nil {
		return err
	}
	for user, pids := range purchases {
		for _, pid := range pids {
			if err := p.Engine.RecordPurchase(user, pid); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close shuts everything down: buyer servers first (they own live agents
// with in-flight trips), then marketplaces, the coordinator, and the
// engine's persistence journal.
func (p *Platform) Close() error {
	var first error
	for _, b := range p.Buyers {
		if err := b.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, h := range p.hosts {
		if err := h.Close(); err != nil && first == nil {
			first = err
		}
	}
	if p.Engine != nil {
		if err := p.Engine.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
