package loadgen

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"agentrec/internal/workload"
)

// synthNext is a deterministic schedule for driver tests: op i carries its
// index in TopN so the target can make per-op decisions, and cycles kinds.
func synthNext(i uint64) workload.Op {
	return workload.Op{Kind: workload.OpKind(i % 3), TopN: int(i)}
}

// TestDriveSoak is the -race soak from the issue: many workers, injected
// slow responses and injected errors, then exact accounting — no op may be
// dropped or double-counted anywhere in the final histogram totals.
func TestDriveSoak(t *testing.T) {
	const (
		rate     = 4000.0
		duration = 1500 * time.Millisecond
		slowMod  = 97 // every 97th op stalls
		errMod   = 13 // every 13th op fails
	)
	var issued, failed atomic.Int64
	target := TargetFunc(func(_ context.Context, op workload.Op) error {
		issued.Add(1)
		if op.TopN%slowMod == 0 {
			time.Sleep(3 * time.Millisecond)
		}
		if op.TopN%errMod == 5 {
			failed.Add(1)
			return errors.New("injected failure")
		}
		return nil
	})
	dr, err := Drive(context.Background(), DriveConfig{
		Rate: rate, Duration: duration, Workers: 64,
	}, synthNext, target)
	if err != nil {
		t.Fatal(err)
	}

	want := int64(rate * duration.Seconds())
	if dr.Scheduled != want {
		t.Fatalf("Scheduled = %d, want %d", dr.Scheduled, want)
	}
	if dr.Attempted != dr.Scheduled {
		t.Fatalf("Attempted = %d, want all %d scheduled (ctx never cancelled)", dr.Attempted, dr.Scheduled)
	}
	if got := issued.Load(); got != dr.Attempted {
		t.Fatalf("target saw %d ops, driver counted %d", got, dr.Attempted)
	}
	if dr.Completed+dr.Errors != dr.Attempted {
		t.Fatalf("accounting broken: %d completed + %d errors != %d attempted",
			dr.Completed, dr.Errors, dr.Attempted)
	}
	if got := failed.Load(); got != dr.Errors {
		t.Fatalf("target failed %d ops, driver counted %d errors", got, dr.Errors)
	}
	// Exact expected error count: indices i in [0, want) with i%13 == 5.
	var wantErrs int64
	for i := int64(0); i < want; i++ {
		if i%errMod == 5 {
			wantErrs++
		}
	}
	if dr.Errors != wantErrs {
		t.Fatalf("Errors = %d, want exactly %d", dr.Errors, wantErrs)
	}
	if dr.All.Count() != dr.Completed {
		t.Fatalf("histogram holds %d samples, want %d completed", dr.All.Count(), dr.Completed)
	}
	var kindCompleted, kindErrors, kindHist int64
	for _, kr := range dr.ByKind {
		kindCompleted += kr.Completed
		kindErrors += kr.Errors
		kindHist += kr.Hist.Count()
		if kr.Hist.Count() != kr.Completed {
			t.Fatalf("kind histogram %d samples != %d completed", kr.Hist.Count(), kr.Completed)
		}
	}
	if kindCompleted != dr.Completed || kindErrors != dr.Errors || kindHist != dr.All.Count() {
		t.Fatalf("per-kind totals %d/%d/%d don't reconcile with %d/%d/%d",
			kindCompleted, kindErrors, kindHist, dr.Completed, dr.Errors, dr.All.Count())
	}
	if len(dr.ErrorSample) == 0 || dr.ErrorSample[0] != "injected failure" {
		t.Fatalf("ErrorSample = %v, want the injected failure surfaced", dr.ErrorSample)
	}
}

// TestDriveCancel: a cancelled context stops issuing but never corrupts the
// accounting — in-flight ops finish and are counted.
func TestDriveCancel(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	target := TargetFunc(func(context.Context, workload.Op) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	dr, err := Drive(ctx, DriveConfig{Rate: 500, Duration: 10 * time.Second, Workers: 4}, synthNext, target)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Attempted >= dr.Scheduled {
		t.Fatalf("Attempted = %d, expected an early stop below %d", dr.Attempted, dr.Scheduled)
	}
	if dr.Completed+dr.Errors != dr.Attempted || dr.All.Count() != dr.Completed {
		t.Fatalf("cancelled run broke accounting: %d+%d != %d (hist %d)",
			dr.Completed, dr.Errors, dr.Attempted, dr.All.Count())
	}
}

// TestDriveOpenLoopBacklog: the open-loop property itself. One worker, 5ms
// service, arrivals every 1ms — a closed-loop driver would slow to 200/s
// and report 5ms everywhere; the open-loop driver measures from scheduled
// start, so the growing backlog must surface in the tail.
func TestDriveOpenLoopBacklog(t *testing.T) {
	target := TargetFunc(func(context.Context, workload.Op) error {
		time.Sleep(5 * time.Millisecond)
		return nil
	})
	dr, err := Drive(context.Background(), DriveConfig{
		Rate: 1000, Duration: 100 * time.Millisecond, Workers: 1,
	}, synthNext, target)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Completed != dr.Scheduled {
		t.Fatalf("completed %d of %d", dr.Completed, dr.Scheduled)
	}
	p99 := time.Duration(dr.All.Quantile(0.99))
	if p99 < 50*time.Millisecond {
		t.Fatalf("p99 = %v; queueing backlog must inflate the tail well past the 5ms service time", p99)
	}
	if min := time.Duration(dr.All.Min()); min < 4*time.Millisecond {
		t.Fatalf("min = %v, below the injected service time", min)
	}
}

// TestDriveSineSchedule: the diurnal shape integrates to roughly the mean
// rate and stays inside the run window, monotonically.
func TestDriveSineSchedule(t *testing.T) {
	cfg, err := DriveConfig{
		Rate: 1000, Duration: 2 * time.Second, Shape: ShapeSine, SineMinFrac: 0.25,
	}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	offsets := cfg.schedule()
	mean := cfg.Rate * (1 + cfg.SineMinFrac) / 2
	want := mean * cfg.Duration.Seconds()
	if got := float64(len(offsets)); got < want*0.95 || got > want*1.05 {
		t.Fatalf("sine schedule emitted %d arrivals, want ~%.0f", len(offsets), want)
	}
	for i, off := range offsets {
		if off < 0 || off >= cfg.Duration {
			t.Fatalf("arrival %d at %v outside the run window", i, off)
		}
		if i > 0 && off < offsets[i-1] {
			t.Fatalf("arrival %d at %v before its predecessor %v", i, off, offsets[i-1])
		}
	}
	// The second half-period (peak) must carry more arrivals than the first
	// (trough-centred) quarter: the shape actually modulates.
	quarter, half := 0, 0
	for _, off := range offsets {
		if off < cfg.Duration/4 {
			quarter++
		}
		if off >= cfg.Duration/4 && off < 3*cfg.Duration/4 {
			half++
		}
	}
	if half <= 2*quarter {
		t.Fatalf("sine shape flat: %d arrivals in the peak half vs %d in the trough quarter", half, quarter)
	}
}

// TestDriveRejectsBadConfig mirrors the CLI validation: out-of-range knobs
// are errors, not silent clamps.
func TestDriveRejectsBadConfig(t *testing.T) {
	ok := TargetFunc(func(context.Context, workload.Op) error { return nil })
	cases := []DriveConfig{
		{Rate: 0, Duration: time.Second},
		{Rate: -10, Duration: time.Second},
		{Rate: 100, Duration: 0},
		{Rate: 100, Duration: -time.Second},
		{Rate: 100, Duration: time.Second, Shape: "sawtooth"},
	}
	for _, cfg := range cases {
		if _, err := Drive(context.Background(), cfg, synthNext, ok); err == nil {
			t.Errorf("Drive(%+v) accepted an invalid config", cfg)
		}
	}
	if _, err := Drive(context.Background(), DriveConfig{Rate: 1, Duration: time.Second}, nil, ok); err == nil {
		t.Error("Drive accepted a nil schedule")
	}
	if _, err := Drive(context.Background(), DriveConfig{Rate: 1, Duration: time.Second}, synthNext, nil); err == nil {
		t.Error("Drive accepted a nil target")
	}
}
