package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"agentrec/internal/workload"
)

// Target executes one scheduled operation against the system under load.
// Do is called concurrently from every driver worker.
type Target interface {
	Do(ctx context.Context, op workload.Op) error
}

// TargetFunc adapts a function to Target.
type TargetFunc func(ctx context.Context, op workload.Op) error

// Do implements Target.
func (f TargetFunc) Do(ctx context.Context, op workload.Op) error { return f(ctx, op) }

// Rate shapes.
const (
	ShapeConstant = "constant" // fixed arrival rate
	ShapeSine     = "sine"     // diurnal: rate swings between SineMinFrac*Rate and Rate
)

// DriveConfig parameterizes one open-loop run.
type DriveConfig struct {
	Rate     float64       // peak arrival rate, ops/sec (> 0)
	Duration time.Duration // how long arrivals are scheduled for (> 0)
	Workers  int           // concurrent issuers [16]

	Shape       string        // ShapeConstant (default) or ShapeSine
	SinePeriod  time.Duration // full sine cycle [Duration]
	SineMinFrac float64       // trough rate as a fraction of Rate [0.25]
}

func (c DriveConfig) withDefaults() (DriveConfig, error) {
	if c.Rate <= 0 {
		return c, fmt.Errorf("loadgen: rate must be positive, got %g", c.Rate)
	}
	if c.Duration <= 0 {
		return c, fmt.Errorf("loadgen: duration must be positive, got %v", c.Duration)
	}
	if c.Workers <= 0 {
		c.Workers = 16
	}
	switch c.Shape {
	case "", ShapeConstant:
		c.Shape = ShapeConstant
	case ShapeSine:
		if c.SinePeriod <= 0 {
			c.SinePeriod = c.Duration
		}
		if c.SineMinFrac <= 0 || c.SineMinFrac > 1 {
			c.SineMinFrac = 0.25
		}
	default:
		return c, fmt.Errorf("loadgen: unknown rate shape %q", c.Shape)
	}
	return c, nil
}

// schedule precomputes every arrival's offset from the run start. Open
// loop: the schedule is fixed by the rate shape alone — completions never
// influence arrivals, so a slow server faces the same incoming traffic a
// fast one does and the backlog shows up as latency.
func (c DriveConfig) schedule() []time.Duration {
	if c.Shape == ShapeConstant {
		n := int(c.Rate * c.Duration.Seconds())
		if n < 1 {
			n = 1
		}
		out := make([]time.Duration, n)
		for i := range out {
			out[i] = time.Duration(float64(i) / c.Rate * float64(time.Second))
		}
		return out
	}
	// Sine: integrate the instantaneous rate in 1ms steps and emit an
	// arrival each time the accumulated expectation crosses 1.
	// r(t) starts at the trough, peaks mid-period.
	mean := c.Rate * (1 + c.SineMinFrac) / 2
	amp := c.Rate * (1 - c.SineMinFrac) / 2
	const step = time.Millisecond
	out := make([]time.Duration, 0, int(mean*c.Duration.Seconds())+1)
	acc := 0.0
	for t := time.Duration(0); t < c.Duration; t += step {
		phase := 2 * math.Pi * float64(t) / float64(c.SinePeriod)
		r := mean - amp*math.Cos(phase)
		acc += r * step.Seconds()
		for acc >= 1 {
			acc--
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		out = append(out, 0)
	}
	return out
}

// KindResult is one operation class's share of a run.
type KindResult struct {
	Completed int64
	Errors    int64
	Hist      *Histogram // successful ops' latency, ns, from scheduled start
}

// DriveResult is the measured outcome of one open-loop run.
type DriveResult struct {
	Scheduled int64 // arrivals in the schedule
	Attempted int64 // ops actually issued (== Scheduled unless ctx cancelled)
	Completed int64
	Errors    int64
	Elapsed   time.Duration // first scheduled arrival to last completion
	All       *Histogram    // successful ops' latency, ns, across kinds
	ByKind    map[workload.OpKind]*KindResult

	ErrorSample []string // up to one distinct error message per worker
}

// driveWorker is one issuer's private tally; merged after the run so the
// hot path takes no locks.
type driveWorker struct {
	attempted int64
	all       *Histogram
	byKind    [3]KindResult
	firstErr  string
}

// Drive runs the open-loop schedule against target: worker w issues
// arrivals w, w+W, w+2W... at their scheduled times, falling behind (never
// skipping) when the target is slower than the schedule. Latency is
// measured from the scheduled start, so queueing delay — including the
// delay a stalled server inflicts on the arrivals behind it — is part of
// every recorded sample; this is the open-loop answer to coordinated
// omission. next(i) supplies arrival i's operation and must be safe for
// concurrent use (workload.Traffic.Op is).
//
// A cancelled ctx stops issuing early; ops already in flight finish and
// are counted. The invariant Attempted == Completed+Errors == histogram
// totals holds for every return.
func Drive(ctx context.Context, cfg DriveConfig, next func(i uint64) workload.Op, target Target) (*DriveResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if next == nil || target == nil {
		return nil, errors.New("loadgen: Drive needs a schedule and a target")
	}
	offsets := cfg.schedule()
	workers := cfg.Workers
	if workers > len(offsets) {
		workers = len(offsets)
	}

	tallies := make([]*driveWorker, workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		tally := &driveWorker{all: NewHistogram()}
		for k := range tally.byKind {
			tally.byKind[k].Hist = NewHistogram()
		}
		tallies[w] = tally
		wg.Add(1)
		go func(w int, tally *driveWorker) {
			defer wg.Done()
			timer := time.NewTimer(0)
			defer timer.Stop()
			if !timer.Stop() {
				<-timer.C
			}
			for i := w; i < len(offsets); i += workers {
				at := start.Add(offsets[i])
				if d := time.Until(at); d > 0 {
					timer.Reset(d)
					select {
					case <-ctx.Done():
						if !timer.Stop() {
							<-timer.C
						}
						return
					case <-timer.C:
					}
				} else if ctx.Err() != nil {
					return
				}
				op := next(uint64(i))
				kind := int(op.Kind)
				if kind < 0 || kind >= len(tally.byKind) {
					kind = 0
				}
				tally.attempted++
				err := target.Do(ctx, op)
				lat := time.Since(at)
				if err != nil {
					tally.byKind[kind].Errors++
					if tally.firstErr == "" {
						tally.firstErr = err.Error()
					}
					continue
				}
				tally.byKind[kind].Completed++
				tally.byKind[kind].Hist.Record(int64(lat))
				tally.all.Record(int64(lat))
			}
		}(w, tally)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &DriveResult{
		Scheduled: int64(len(offsets)),
		Elapsed:   elapsed,
		All:       NewHistogram(),
		ByKind:    make(map[workload.OpKind]*KindResult),
	}
	merged := [3]KindResult{}
	for k := range merged {
		merged[k].Hist = NewHistogram()
	}
	for _, tally := range tallies {
		res.Attempted += tally.attempted
		res.All.Merge(tally.all)
		for k := range tally.byKind {
			merged[k].Completed += tally.byKind[k].Completed
			merged[k].Errors += tally.byKind[k].Errors
			merged[k].Hist.Merge(tally.byKind[k].Hist)
		}
		if tally.firstErr != "" && len(res.ErrorSample) < 5 {
			res.ErrorSample = append(res.ErrorSample, tally.firstErr)
		}
	}
	for k := range merged {
		res.Completed += merged[k].Completed
		res.Errors += merged[k].Errors
		if merged[k].Completed+merged[k].Errors > 0 {
			kr := merged[k]
			res.ByKind[workload.OpKind(k)] = &kr
		}
	}
	return res, nil
}
