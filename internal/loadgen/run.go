package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"agentrec/internal/ops"
	"agentrec/internal/profile"
	"agentrec/internal/workload"
)

// LatencySummary is one histogram's percentile digest, in milliseconds.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}

func ms(ns int64) float64 { return float64(ns) / float64(time.Millisecond) }

func summarize(h *Histogram) LatencySummary {
	return LatencySummary{
		Count:  h.Count(),
		MeanMs: h.Mean() / float64(time.Millisecond),
		P50Ms:  ms(h.Quantile(0.50)),
		P90Ms:  ms(h.Quantile(0.90)),
		P99Ms:  ms(h.Quantile(0.99)),
		P999Ms: ms(h.Quantile(0.999)),
		MaxMs:  ms(h.Max()),
	}
}

// MetricsDelta is the ops.Snapshot movement over the run: platform-level
// proof that the load actually exercised the subsystem the scenario claims
// (journal growth, compactions, spilling, replication backlog).
type MetricsDelta struct {
	UsersBefore        int     `json:"users_before"`
	UsersAfter         int     `json:"users_after"`
	JournalBytesBefore int64   `json:"journal_bytes_before"`
	JournalBytesAfter  int64   `json:"journal_bytes_after"`
	CompactionsBefore  uint64  `json:"compactions_before"`
	CompactionsAfter   uint64  `json:"compactions_after"`
	ShardsPerEngine    int     `json:"shards_per_engine"`
	ResidentShardsMin  int     `json:"resident_shards_min"` // smallest residency at end (< shards ⇒ spilling)
	LagRecordsEnd      uint64  `json:"lag_records_end"`     // replication backlog when load stopped
	DrainMs            float64 `json:"drain_ms"`            // time to sync that backlog away
}

// ScenarioResult is the BENCH_<scenario>.json document: the committed
// latency/throughput trajectory future changes diff against.
type ScenarioResult struct {
	Scenario    string `json:"scenario"`
	Description string `json:"description,omitempty"`
	Target      string `json:"target"` // "platform" | "cold-follower" | "http"

	Seed       uint64 `json:"seed"`
	Users      int    `json:"users"`
	Products   int    `json:"products"`
	Categories int    `json:"categories"`
	Servers    int    `json:"servers"`
	Workers    int    `json:"workers"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	RateOpsS  float64 `json:"rate_ops_s"`
	DurationS float64 `json:"duration_s"`
	Shape     string  `json:"shape"`

	ElapsedS       float64 `json:"elapsed_s"`
	Scheduled      int64   `json:"scheduled_ops"`
	Attempted      int64   `json:"attempted_ops"`
	Completed      int64   `json:"completed_ops"`
	ErrorCount     int64   `json:"error_count"`
	ThroughputOpsS float64 `json:"throughput_ops_s"`

	// Latency carries "all" plus one entry per op kind that ran
	// ("recommend", "set_profile", "purchase"), from scheduled start.
	LatencyMs map[string]LatencySummary `json:"latency_ms"`

	Metrics      *MetricsDelta       `json:"metrics,omitempty"`
	ColdFollower *ColdFollowerResult `json:"cold_follower,omitempty"`
	Shilling     *ShillResult        `json:"shilling,omitempty"`
	Failover     *FailoverResult     `json:"failover,omitempty"`

	ErrorSample []string `json:"error_sample,omitempty"`
}

// Check validates the document shape the CI smoke gate relies on: the op
// accounting must balance, percentiles must be ordered, and the error
// count must be zero (any driver-visible error in a committed trajectory
// is a regression).
func (r *ScenarioResult) Check() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("loadgen: result %q: %s", r.Scenario, fmt.Sprintf(format, args...))
	}
	if r.Scenario == "" {
		return fmt.Errorf("loadgen: result has no scenario name")
	}
	if r.RateOpsS <= 0 || r.DurationS <= 0 {
		return bad("rate/duration missing")
	}
	if r.Servers <= 0 {
		return bad("servers must be positive, got %d", r.Servers)
	}
	if r.Scheduled <= 0 {
		return bad("no ops scheduled")
	}
	if r.Attempted != r.Completed+r.ErrorCount {
		return bad("op accounting broken: attempted %d != completed %d + errors %d",
			r.Attempted, r.Completed, r.ErrorCount)
	}
	if r.Attempted > r.Scheduled {
		return bad("attempted %d exceeds scheduled %d", r.Attempted, r.Scheduled)
	}
	if r.Completed <= 0 {
		return bad("no ops completed")
	}
	if r.ErrorCount != 0 {
		return bad("error_count %d (sample: %v)", r.ErrorCount, r.ErrorSample)
	}
	if r.ThroughputOpsS <= 0 {
		return bad("throughput missing")
	}
	all, ok := r.LatencyMs["all"]
	if !ok {
		return bad(`latency_ms has no "all" entry`)
	}
	if all.Count != r.Completed {
		return bad("latency count %d != completed %d", all.Count, r.Completed)
	}
	var kindTotal int64
	for name, l := range r.LatencyMs {
		if l.Count < 0 {
			return bad("latency_ms[%s]: negative count", name)
		}
		if !(l.P50Ms <= l.P90Ms && l.P90Ms <= l.P99Ms && l.P99Ms <= l.P999Ms && l.P999Ms <= l.MaxMs) {
			return bad("latency_ms[%s]: percentiles out of order: %+v", name, l)
		}
		if name != "all" {
			kindTotal += l.Count
		}
	}
	if kindTotal != all.Count {
		return bad("per-kind latency counts sum to %d, want %d", kindTotal, all.Count)
	}
	return nil
}

// RunOptions selects the world a scenario runs against.
type RunOptions struct {
	// Servers is the in-process buyer server count [2]; > 1 runs the
	// replicated owner-routed topology. Ignored with HTTPAddrs.
	Servers int
	// HTTPAddrs drives live platformd daemons instead (read-only: the
	// scenario mix must be recommend-only).
	HTTPAddrs []string
	// StateDir is the durable state root for spilling scenarios; empty
	// uses a temp dir removed after the run.
	StateDir string
	// Workers is the driver's concurrent issuer count [16].
	Workers int
	// Out receives progress lines; nil is silent.
	Out io.Writer
}

func decodeJSONBody(r io.Reader, v any) error { return json.NewDecoder(r).Decode(v) }

// RunScenario generates the scenario's universe, boots its world, seeds
// the community, drives the open-loop load, and assembles the result
// document. The returned result is valid under Check unless err != nil.
func RunScenario(ctx context.Context, s Scenario, opt RunOptions) (*ScenarioResult, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if opt.Servers <= 0 {
		opt.Servers = 2
	}
	logf := func(format string, args ...any) {
		if opt.Out != nil {
			fmt.Fprintf(opt.Out, format+"\n", args...)
		}
	}

	logf("scenario %s: generating universe (%d users, %d products)", s.Name, s.Users, s.Products)
	u, err := workload.Generate(workload.Config{
		Seed: s.Seed, Users: s.Users, Products: s.Products, Categories: s.Categories,
	})
	if err != nil {
		return nil, err
	}
	profiles := make([]*profile.Profile, 0, len(u.Users))
	for _, usr := range u.Users {
		p, err := u.BuildProfile(usr)
		if err != nil {
			return nil, err
		}
		profiles = append(profiles, p)
	}

	// The shill target is picked from the hot category's Zipf mid-rank —
	// a product the honest community barely surfaces, so displacement is
	// attributable to the attack.
	tcfg := s.trafficConfig("")
	shillTarget := ""
	if s.ShillFraction > 0 {
		probe, err := workload.NewTraffic(u, workload.TrafficConfig{Seed: s.Seed})
		if err != nil {
			return nil, err
		}
		hp := probe.HotProducts()
		shillTarget = hp[len(hp)/2]
		tcfg = s.trafficConfig(shillTarget)
	}
	traffic, err := workload.NewTraffic(u, tcfg)
	if err != nil {
		return nil, err
	}

	var (
		w       world
		coldW   *coldWorld
		foW     *failoverWorld
		target  = "platform"
		servers = opt.Servers
	)
	switch {
	case len(opt.HTTPAddrs) > 0:
		if s.MixSetProfile > 0 || s.MixPurchase > 0 {
			return nil, fmt.Errorf("loadgen: scenario %q mixes writes; the HTTP target is read-only", s.Name)
		}
		if s.ColdFollower || s.Failover || s.MaxResidentShards > 0 {
			return nil, fmt.Errorf("loadgen: scenario %q needs an in-process world", s.Name)
		}
		w, err = newHTTPWorld(opt.HTTPAddrs)
		target, servers = "http", len(opt.HTTPAddrs)
	case s.ColdFollower:
		coldW, err = newColdWorld(s, u, profiles, servers)
		w, target = coldW, "cold-follower"
	case s.Failover:
		// A promotion needs a follower left over after the kill.
		if servers < 3 {
			servers = 3
		}
		foW, err = newFailoverWorld(s, u, profiles, servers, opt.StateDir)
		w, target = foW, "failover"
	default:
		stateDir := opt.StateDir
		if s.MaxResidentShards > 0 && stateDir == "" {
			stateDir, err = os.MkdirTemp("", "loadgen-state-*")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(stateDir)
		}
		w, err = newPlatformWorld(s, u, profiles, servers, stateDir)
	}
	if err != nil {
		return nil, err
	}
	defer w.Close()

	logf("scenario %s: seeding %d consumers into %s world (%d servers)",
		s.Name, len(profiles), target, servers)
	if err := w.Seed(profiles, u.Purchases()); err != nil {
		return nil, fmt.Errorf("loadgen: seeding: %w", err)
	}

	var shillState *shillProbeState
	if s.ShillFraction > 0 {
		eng := w.ReadEngine()
		if eng == nil {
			return nil, fmt.Errorf("loadgen: scenario %q measures shilling and needs an in-process world", s.Name)
		}
		shillState = shillBaseline(eng, u, traffic, shillTarget, s.ShillProbes, traffic.TopN())
		logf("scenario %s: shill target %s, %d probes baselined", s.Name, shillTarget, len(shillState.probes))
	}

	before := w.Metrics()

	// The cold follower joins mid-run, concurrently with the load.
	var (
		coldRes *ColdFollowerResult
		coldErr error
		coldWG  sync.WaitGroup
	)
	if coldW != nil {
		coldWG.Add(1)
		go func() {
			defer coldWG.Done()
			t := time.NewTimer(secs(s.ColdFollowerDelayS))
			defer t.Stop()
			select {
			case <-ctx.Done():
				coldErr = ctx.Err()
				return
			case <-t.C:
			}
			logf("scenario %s: cold server joining after %.1fs", s.Name, s.ColdFollowerDelayS)
			coldRes, coldErr = coldW.Bootstrap(ctx)
			if coldRes != nil {
				coldRes.DelayS = s.ColdFollowerDelayS
			}
		}()
	}

	// The owner kill fires mid-run, concurrently with the load.
	var (
		foKilledAtS float64
		foErr       error
		foWG        sync.WaitGroup
	)
	loadStart := time.Now()
	if foW != nil {
		foWG.Add(1)
		go func() {
			defer foWG.Done()
			t := time.NewTimer(secs(s.FailoverDelayS))
			defer t.Stop()
			select {
			case <-ctx.Done():
				foErr = ctx.Err()
				return
			case <-t.C:
			}
			foKilledAtS = time.Since(loadStart).Seconds()
			logf("scenario %s: killing owner server %d after %.1fs", s.Name, foW.victim, foKilledAtS)
			foErr = foW.Kill(ctx)
		}()
	}

	logf("scenario %s: driving %s load at %.0f ops/s for %.0fs", s.Name, s.Shape, s.RateOpsS, s.DurationS)
	dr, err := Drive(ctx, s.driveConfig(opt.Workers), traffic.Op, w)
	coldWG.Wait()
	foWG.Wait()
	if err != nil {
		return nil, err
	}
	if coldErr != nil {
		return nil, fmt.Errorf("loadgen: cold follower: %w", coldErr)
	}
	if foErr != nil {
		return nil, fmt.Errorf("loadgen: failover kill: %w", foErr)
	}

	atEnd := w.Metrics() // replication backlog at load stop, pre-drain
	drainCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	drainDur, drainErr := w.Drain(drainCtx)
	if drainErr != nil {
		return nil, fmt.Errorf("loadgen: draining replicas: %w", drainErr)
	}
	final := w.Metrics()

	res := &ScenarioResult{
		Scenario:    s.Name,
		Description: s.Description,
		Target:      target,
		Seed:        s.Seed,
		Users:       s.Users,
		Products:    s.Products,
		Categories:  s.Categories,
		Servers:     servers,
		Workers:     max(opt.Workers, 0),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		RateOpsS:    s.RateOpsS,
		DurationS:   s.DurationS,
		Shape:       s.Shape,

		ElapsedS:    dr.Elapsed.Seconds(),
		Scheduled:   dr.Scheduled,
		Attempted:   dr.Attempted,
		Completed:   dr.Completed,
		ErrorCount:  dr.Errors,
		ErrorSample: dr.ErrorSample,
		LatencyMs:   map[string]LatencySummary{"all": summarize(dr.All)},

		ColdFollower: coldRes,
	}
	if res.Workers == 0 {
		res.Workers = 16
	}
	if dr.Elapsed > 0 {
		res.ThroughputOpsS = float64(dr.Completed) / dr.Elapsed.Seconds()
	}
	for kind, kr := range dr.ByKind {
		res.LatencyMs[kind.String()] = summarize(kr.Hist)
	}
	res.Metrics = metricsDelta(before, atEnd, final, drainDur)
	if coldRes != nil && len(final.Servers) > servers {
		coldRes.UsersOnWarm = final.Servers[0].Engine.Users
		coldRes.UsersOnCold = final.Servers[servers].Engine.Users
	}
	if foW != nil {
		foRes, err := foW.Finish()
		if err != nil {
			return nil, fmt.Errorf("loadgen: failover: %w", err)
		}
		foRes.KilledAtS = foKilledAtS
		res.Failover = foRes
		logf("scenario %s: failover epoch %d, window %.0fms, %d blocked, %d stale rejected, %d/%d acked writes lost, %d divergent shards",
			s.Name, foRes.PromotedEpoch, foRes.WriteUnavailabilityMs, foRes.BlockedWrites,
			foRes.StaleWritesRejected, foRes.LostAckedWrites, foRes.AckedWrites, foRes.DivergentShards)
	}
	if shillState != nil {
		if exec := execOf(w); exec != nil {
			res.Shilling = shillState.finish(w.ReadEngine(), exec.shills.Load())
		}
	}
	logf("scenario %s: %d/%d ops ok, %.0f ops/s, p99 %.2fms",
		s.Name, dr.Completed, dr.Scheduled, res.ThroughputOpsS, res.LatencyMs["all"].P99Ms)
	return res, nil
}

// execOf digs the op executor out of an in-process world.
func execOf(w world) *opExec {
	switch t := w.(type) {
	case *platformWorld:
		return t.exec
	case *coldWorld:
		return t.exec
	case *failoverWorld:
		return t.exec
	default:
		return nil
	}
}

// metricsDelta reduces the before/end/final snapshots to the delta block.
func metricsDelta(before, atEnd, final ops.Snapshot, drain time.Duration) *MetricsDelta {
	if len(before.Servers) == 0 && len(final.Servers) == 0 {
		return nil
	}
	d := &MetricsDelta{
		LagRecordsEnd: atEnd.TotalLagRecords(),
		DrainMs:       float64(drain) / float64(time.Millisecond),
	}
	for _, sv := range before.Servers {
		d.UsersBefore = max(d.UsersBefore, sv.Engine.Users)
		d.JournalBytesBefore += sv.Engine.JournalBytes
		d.CompactionsBefore += sv.Engine.Compactions
	}
	for i, sv := range final.Servers {
		d.UsersAfter = max(d.UsersAfter, sv.Engine.Users)
		d.JournalBytesAfter += sv.Engine.JournalBytes
		d.CompactionsAfter += sv.Engine.Compactions
		d.ShardsPerEngine = sv.Engine.Shards
		if i == 0 || sv.Engine.ResidentShards < d.ResidentShardsMin {
			d.ResidentShardsMin = sv.Engine.ResidentShards
		}
	}
	return d
}

// WriteResult writes the document to path with a trailing newline, the
// committed BENCH_<scenario>.json form.
func WriteResult(path string, res *ScenarioResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadResult loads a result document, for schema checks.
func ReadResult(path string) (*ScenarioResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var res ScenarioResult
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("loadgen: parsing %s: %w", path, err)
	}
	return &res, nil
}

// secs converts scenario seconds to a Duration.
func secs(f float64) time.Duration { return time.Duration(f * float64(time.Second)) }
