package loadgen

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"agentrec/internal/catalog"
	"agentrec/internal/coordinator"
	"agentrec/internal/ops"
	"agentrec/internal/profile"
	"agentrec/internal/recommend"
	"agentrec/internal/workload"
)

// FailoverResult measures one kill-the-owner chaos drill: how long writes
// to the dead owner's shards were unavailable, that every acknowledged
// write survived the promotion, that the deposed owner's replayed writes
// were fenced, and that the survivors' replicas did not diverge.
type FailoverResult struct {
	Victim                int     `json:"victim"`                  // server index that was killed
	KilledAtS             float64 `json:"killed_at_s"`             // load ran this long before the kill
	LeaseTTLMs            int     `json:"lease_ttl_ms"`            // coordinator lease TTL in force
	PromotedEpoch         uint64  `json:"promoted_epoch"`          // map epoch after the failover transition(s)
	ShardsMoved           int     `json:"shards_moved"`            // shards not on their static owner at the end
	WriteUnavailabilityMs float64 `json:"write_unavailability_ms"` // kill -> first accepted write to a victim shard
	BlockedWrites         int64   `json:"blocked_writes"`          // write attempts fenced during the window (then retried)
	StaleWritesRejected   int     `json:"stale_writes_rejected"`   // deposed owner's replayed writes, all rejected
	AckedWrites           int64   `json:"acked_writes"`            // driver writes acknowledged over the whole run
	LostAckedWrites       int     `json:"lost_acked_writes"`       // acked writes missing from a survivor afterwards (must be 0)
	DivergentShards       int     `json:"divergent_shards"`        // shards whose survivor replicas differ (must be 0)
}

// Server liveness states of the staged kill. A real owner crash is not
// instantaneous from the cluster's point of view: the process stops
// accepting traffic first (connections refused), while its already-durable
// journal is still drainable by followers until the machine is gone. The
// gate models exactly that: gateWriteDead refuses writes and lease
// renewals but still serves journal tails; gateDead serves nothing.
const (
	gateLive int32 = iota
	gateWriteDead
	gateDead
)

// errServerDown is the in-process stand-in for "connection refused".
var errServerDown = errors.New("loadgen: server down (failover chaos)")

// gatedWriter fronts one server's fenced write surface with its liveness
// gate, so a killed server refuses routed writes like a dead TCP peer.
type gatedWriter struct {
	gate *atomic.Int32
	w    recommend.Writer
}

func (g gatedWriter) check() error {
	if g.gate.Load() != gateLive {
		return errServerDown
	}
	return nil
}

func (g gatedWriter) SetProfile(p *profile.Profile) error {
	if err := g.check(); err != nil {
		return err
	}
	return g.w.SetProfile(p)
}

func (g gatedWriter) SetProfiles(ps []*profile.Profile) error {
	if err := g.check(); err != nil {
		return err
	}
	return g.w.SetProfiles(ps)
}

func (g gatedWriter) RecordPurchase(userID, productID string) error {
	if err := g.check(); err != nil {
		return err
	}
	return g.w.RecordPurchase(userID, productID)
}

func (g gatedWriter) RecordPurchaseAt(userID, productID string, at time.Time) error {
	if err := g.check(); err != nil {
		return err
	}
	return g.w.RecordPurchaseAt(userID, productID, at)
}

// gatedPeer fronts one server's journal-tail surface with its gate: a
// write-dead server still serves tails (its journal survives the crash
// until the machine is reclaimed), a dead one serves nothing.
type gatedPeer struct {
	gate *atomic.Int32
	p    recommend.Peer
}

func (g gatedPeer) JournalTail(ctx context.Context, shard int, epoch, since uint64) (recommend.TailResult, error) {
	if g.gate.Load() == gateDead {
		return recommend.TailResult{}, errServerDown
	}
	return g.p.JournalTail(ctx, shard, epoch, since)
}

func (g gatedPeer) SnapshotPage(ctx context.Context, shard int, epoch, seq uint64, token string) (recommend.SnapshotPage, error) {
	if g.gate.Load() == gateDead {
		return recommend.SnapshotPage{}, errServerDown
	}
	return g.p.SnapshotPage(ctx, shard, epoch, seq, token)
}

// isOwnerUnavailable classifies the errors a write hits while its shard's
// ownership is in flux: the dead server itself, a lapsed lease, or an
// epoch the cluster has moved past. These are the retryable window the
// drill measures; anything else is a real failure.
func isOwnerUnavailable(err error) bool {
	return errors.Is(err, errServerDown) ||
		errors.Is(err, recommend.ErrLeaseExpired) ||
		errors.Is(err, recommend.ErrStaleEpoch) ||
		errors.Is(err, recommend.ErrNotOwner)
}

// failoverWorld is a recommend-level elastic deployment wired exactly like
// the platform's coordinator mode: per-server ownership tables leased from
// one in-process authority, epoch-stamped OwnedWriter routing, and
// ownership-aware replicators. Mid-run the runner kills the victim (the
// static owner of the most shards) through the staged gate; the authority
// promotes the most caught-up survivor, and every driver write blocked by
// the transition retries until the promoted owner accepts it — so the
// open-loop latency trajectory carries the unavailability window instead
// of an error count.
type failoverWorld struct {
	exec     *opExec
	servers  int
	victim   int
	leaseTTL time.Duration

	engines []*recommend.Engine
	tables  []*recommend.OwnershipTable
	routers []*recommend.Router
	repls   []*recommend.Replicator
	gates   []*atomic.Int32

	auth         *coordinator.Authority
	leaseCancels []context.CancelFunc
	leaseWG      sync.WaitGroup

	next    atomic.Uint64
	blocked atomic.Int64

	ackedWrites atomic.Int64
	ackedMu     sync.Mutex
	acked       map[string]bool // users with >=1 acknowledged write

	probeWG sync.WaitGroup
	resMu   sync.Mutex
	killed  bool
	killedW time.Time
	recovW  time.Time // zero until the first post-kill write lands
	probeEr error
}

func newFailoverWorld(s Scenario, u *workload.Universe, profiles []*profile.Profile, servers int, stateDir string) (*failoverWorld, error) {
	cat := catalog.New()
	for _, p := range u.Products {
		if err := cat.Upsert(p); err != nil {
			return nil, err
		}
	}
	w := &failoverWorld{
		exec:     newOpExec(cat, profiles),
		servers:  servers,
		victim:   0, // static shard%N gives server 0 the most shards
		leaseTTL: time.Duration(s.FailoverLeaseMs) * time.Millisecond,
		acked:    make(map[string]bool),
	}
	for i := 0; i < servers; i++ {
		opts := []recommend.Option{recommend.WithJournalFeed(0)}
		if stateDir != "" {
			opts = append(opts, recommend.WithPersistence(filepath.Join(stateDir, "server-"+strconv.Itoa(i))))
		}
		e, err := recommend.Open(cat, opts...)
		if err != nil {
			w.Close()
			return nil, err
		}
		w.engines = append(w.engines, e)
		var gate atomic.Int32
		w.gates = append(w.gates, &gate)
	}
	shards := w.engines[0].Shards()
	auth, err := coordinator.NewOwnershipAuthority(coordinator.OwnershipConfig{
		Shards: shards, Servers: servers,
		LeaseTTL: w.leaseTTL,
	})
	if err != nil {
		w.Close()
		return nil, err
	}
	w.auth = auth
	for i := 0; i < servers; i++ {
		w.tables = append(w.tables, recommend.NewOwnershipTable(recommend.StaticOwnership(shards, servers)))
	}
	for i := 0; i < servers; i++ {
		writers := make([]recommend.Writer, servers)
		for j := 0; j < servers; j++ {
			if j == i {
				continue // NewRouter substitutes the local engine
			}
			writers[j] = gatedWriter{gate: w.gates[j], w: recommend.OwnedWriter{
				Local: w.engines[j], Self: j, Table: w.tables[j], Sender: w.tables[i],
			}}
		}
		r, err := recommend.NewRouter(w.engines[i], i, writers, recommend.RouteWithOwnership(w.tables[i]))
		if err != nil {
			w.Close()
			return nil, err
		}
		w.routers = append(w.routers, r)
	}
	peers := make([]recommend.Peer, servers)
	for j := 0; j < servers; j++ {
		peers[j] = gatedPeer{gate: w.gates[j], p: recommend.LocalPeer{Engine: w.engines[j]}}
	}
	for i := 0; i < servers; i++ {
		r, err := recommend.NewReplicator(w.engines[i], i, peers,
			recommend.WithPullInterval(25*time.Millisecond),
			recommend.PullWithOwnership(w.tables[i]))
		if err != nil {
			w.Close()
			return nil, err
		}
		r.Start()
		w.repls = append(w.repls, r)
	}
	for i := 0; i < servers; i++ {
		i := i
		ctx, cancel := context.WithCancel(context.Background())
		w.leaseCancels = append(w.leaseCancels, cancel)
		lc := &coordinator.LeaseClient{
			Self:  i,
			Table: w.tables[i],
			Renew: func(_ context.Context, server int, applied []uint64) (coordinator.LeaseGrant, error) {
				// A write-dead server's renewal never reaches the authority
				// — exactly how a crashed process misses its heartbeats.
				if w.gates[server].Load() != gateLive {
					return coordinator.LeaseGrant{}, errServerDown
				}
				return w.auth.Renew(server, applied)
			},
			Applied:  w.repls[i].AppliedSeqs,
			Interval: w.leaseTTL / 3,
		}
		w.leaseWG.Add(1)
		go func() {
			defer w.leaseWG.Done()
			lc.Run(ctx)
		}()
	}
	return w, nil
}

// liveServer picks the next round-robin server whose gate is live.
func (w *failoverWorld) liveServer() int {
	n := int(w.next.Add(1))
	for k := 0; k < w.servers; k++ {
		if i := (n + k) % w.servers; w.gates[i].Load() == gateLive {
			return i
		}
	}
	return 0
}

// Do executes one driver op on a live server, retrying writes that hit
// the ownership fence until the promoted owner accepts them: an open-loop
// client does not lose a write to a failover, it waits it out, and the
// stall lands in the latency histogram where it belongs.
func (w *failoverWorld) Do(ctx context.Context, op workload.Op) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		i := w.liveServer()
		err := w.exec.apply(w.engines[i], w.routers[i], op)
		if err == nil {
			if op.Kind == workload.OpSetProfile || op.Kind == workload.OpRecordPurchase {
				w.ackedWrites.Add(1)
				w.ackedMu.Lock()
				w.acked[op.UserID] = true
				w.ackedMu.Unlock()
				if recommend.OwnerOf(w.engines[0].ShardOf(op.UserID), w.servers) == w.victim {
					w.noteRecovered()
				}
			}
			return nil
		}
		if !isOwnerUnavailable(err) || time.Now().After(deadline) {
			return err
		}
		w.blocked.Add(1)
		select {
		case <-ctx.Done():
			return err
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// noteRecovered marks the unavailability window closed on the first write
// accepted for a victim-owned shard after the kill — a driver write that
// happened to land there, or the dedicated probe loop. Writes to shards the
// survivors own are accepted throughout and say nothing about the window,
// so Do only calls this for victim-shard writes.
func (w *failoverWorld) noteRecovered() {
	w.resMu.Lock()
	if w.killed && w.recovW.IsZero() {
		w.recovW = time.Now()
	}
	w.resMu.Unlock()
}

// userOnShard generates a deterministic user id living on shard, with a
// prefix that cannot collide with workload-generated consumers.
func (w *failoverWorld) userOnShard(prefix string, shard int) string {
	for k := 0; ; k++ {
		id := prefix + "-" + strconv.Itoa(shard) + "-" + strconv.Itoa(k)
		if w.engines[0].ShardOf(id) == shard {
			return id
		}
	}
}

// victimShard returns one shard the victim owns under the static map.
func (w *failoverWorld) victimShard() int {
	static := recommend.StaticOwnership(w.engines[0].Shards(), w.servers)
	for s, owner := range static.Assign {
		if owner == w.victim {
			return s
		}
	}
	return 0
}

// Kill executes the staged owner death: stop renewals and refuse writes,
// drain the victim's already-acknowledged journal into the survivors (the
// crashed process's durable tail outlives its write path), then take the
// journal away too. A probe loop pinned to a victim-owned shard measures
// the window until the promoted owner accepts writes again. Called once,
// mid-run, by the scenario runner.
func (w *failoverWorld) Kill(ctx context.Context) error {
	w.resMu.Lock()
	w.killed = true
	w.killedW = time.Now()
	w.resMu.Unlock()
	w.leaseCancels[w.victim]()
	w.gates[w.victim].Store(gateWriteDead)
	// The write path is closed, so the victim's feed heads are final: one
	// survivor pass drains every acknowledged record before the journal
	// disappears. The authority cannot promote before this completes — the
	// victim's lease has a full TTL left and promotion needs the lapse.
	for i, r := range w.repls {
		if i == w.victim {
			continue
		}
		if err := r.Sync(ctx); err != nil {
			return fmt.Errorf("draining victim journal into server %d: %w", i, err)
		}
	}
	w.gates[w.victim].Store(gateDead)
	w.repls[w.victim].Close()
	// The probe bounds its own lifetime: Finish waits for it, and a run
	// whose caller context never cancels must not hang on a window that
	// never closes — it must report it.
	pctx, cancel := context.WithTimeout(ctx, time.Minute)
	w.probeWG.Add(1)
	go func() {
		defer cancel()
		w.probe(pctx)
	}()
	return nil
}

// probe writes to one victim-owned shard every few milliseconds until a
// write is accepted, bounding the write-unavailability window from above.
func (w *failoverWorld) probe(ctx context.Context) {
	defer w.probeWG.Done()
	user := w.userOnShard("failover-probe", w.victimShard())
	t := time.NewTicker(5 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		i := w.liveServer()
		err := w.routers[i].SetProfile(profile.NewProfile(user))
		if err == nil {
			w.noteRecovered()
			return
		}
		if isOwnerUnavailable(err) {
			w.blocked.Add(1)
			continue
		}
		w.resMu.Lock()
		w.probeEr = err
		w.resMu.Unlock()
		return
	}
}

// replayStaleWrites is the deposed owner waking up and replaying buffered
// writes through its own (stale, lapsed) view of the world — one write per
// shard, so both rejection paths fire: its lapsed lease refuses the shards
// it thinks it still owns, and the survivors' fences refuse the stale
// epoch on everything it forwards. Returns the rejected count and the
// replays that were wrongly accepted.
func (w *failoverWorld) replayStaleWrites() (rejected, accepted int) {
	for s := 0; s < w.engines[0].Shards(); s++ {
		user := w.userOnShard("failover-replay", s)
		if err := w.routers[w.victim].SetProfile(profile.NewProfile(user)); err != nil {
			rejected++
		} else {
			accepted++
		}
	}
	return rejected, accepted
}

// shardFingerprint reduces one shard's full state to an order-insensitive
// hash: profiles, purchase edges, and sell totals each hash independently
// and XOR together, so two engines whose snapshots enumerate the same
// state in different map orders still fingerprint identically.
func shardFingerprint(snap *recommend.ShardSnapshot) uint64 {
	var fp uint64
	item := func(parts ...string) uint64 {
		h := fnv.New64a()
		for _, p := range parts {
			h.Write([]byte(p))
			h.Write([]byte{0})
		}
		return h.Sum64()
	}
	for _, data := range snap.Profiles {
		fp ^= item("prof", string(data))
	}
	for _, pp := range snap.Purchases {
		fp ^= item("purch", pp.UserID, pp.ProductID)
	}
	for pid, total := range snap.Sells {
		fp ^= item("sell", pid, strconv.FormatInt(total, 10))
	}
	return fp
}

// Finish runs the post-drain verdicts: the replay fencing check, the
// lost-acked-write audit against every survivor, and the cross-survivor
// divergence fingerprint. Called after the final Drain, when the
// survivors' replicas have converged.
func (w *failoverWorld) Finish() (*FailoverResult, error) {
	w.probeWG.Wait()
	w.resMu.Lock()
	killedW, recovW, probeEr := w.killedW, w.recovW, w.probeEr
	w.resMu.Unlock()
	if probeEr != nil {
		return nil, fmt.Errorf("availability probe hit a non-fencing error: %w", probeEr)
	}
	if killedW.IsZero() {
		return nil, fmt.Errorf("the victim was never killed (delay outside the run?)")
	}
	if recovW.IsZero() {
		return nil, fmt.Errorf("writes to the victim's shards never recovered after the kill")
	}

	m := w.auth.Map()
	res := &FailoverResult{
		Victim:                w.victim,
		LeaseTTLMs:            int(w.leaseTTL / time.Millisecond),
		PromotedEpoch:         m.Epoch,
		WriteUnavailabilityMs: float64(recovW.Sub(killedW)) / float64(time.Millisecond),
		BlockedWrites:         w.blocked.Load(),
		AckedWrites:           w.ackedWrites.Load(),
	}
	if m.Epoch < 2 {
		return nil, fmt.Errorf("authority never promoted: map still at epoch %d", m.Epoch)
	}
	for s, owner := range m.Assign {
		if owner != recommend.OwnerOf(s, w.servers) {
			res.ShardsMoved++
		}
	}

	// The deposed owner replays; every replay must bounce off a fence, and
	// the bounced writes must not have dented the survivors (the divergence
	// fingerprint below runs after this on purpose).
	rejected, accepted := w.replayStaleWrites()
	res.StaleWritesRejected = rejected
	if accepted > 0 {
		return nil, fmt.Errorf("%d stale replayed writes were accepted past the fence", accepted)
	}

	// Every acknowledged write must be present on every survivor.
	w.ackedMu.Lock()
	users := make([]string, 0, len(w.acked))
	for u := range w.acked {
		users = append(users, u)
	}
	w.ackedMu.Unlock()
	sort.Strings(users)
	for _, u := range users {
		for i, e := range w.engines {
			if i == w.victim {
				continue
			}
			if _, err := e.Profile(u); err != nil {
				res.LostAckedWrites++
				break
			}
		}
	}

	// Survivor replicas must agree shard by shard.
	shards := w.engines[0].Shards()
	for s := 0; s < shards; s++ {
		var want uint64
		first := true
		for i, e := range w.engines {
			if i == w.victim {
				continue
			}
			tr, err := e.JournalTail(s, 0, 0) // cursor epoch 0 never matches: forces a full snapshot
			if err != nil {
				return nil, fmt.Errorf("snapshotting shard %d on server %d: %w", s, i, err)
			}
			if tr.Snapshot == nil {
				return nil, fmt.Errorf("shard %d on server %d returned no snapshot", s, i)
			}
			fp := shardFingerprint(tr.Snapshot)
			if first {
				want, first = fp, false
			} else if fp != want {
				res.DivergentShards++
				break
			}
		}
	}
	return res, nil
}

func (w *failoverWorld) Seed(profiles []*profile.Profile, purchases map[string][]string) error {
	if err := w.routers[0].SetProfiles(profiles); err != nil {
		return err
	}
	users := make([]string, 0, len(purchases))
	for user := range purchases {
		users = append(users, user)
	}
	sort.Strings(users) // deterministic journal order across runs
	for _, user := range users {
		for _, pid := range purchases[user] {
			if err := w.routers[0].RecordPurchase(user, pid); err != nil {
				return err
			}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := w.Drain(ctx)
	return err
}

func (w *failoverWorld) Metrics() ops.Snapshot {
	snap := ops.Snapshot{AtEpochMs: time.Now().UnixMilli()}
	for i, e := range w.engines {
		sv := ops.ServerSnapshot{Server: i, Engine: e.Stats().EventView()}
		repl := w.repls[i].Stats().EventView()
		sv.Replication = &repl
		snap.Servers = append(snap.Servers, sv)
	}
	return snap
}

func (w *failoverWorld) Drain(ctx context.Context) (time.Duration, error) {
	start := time.Now()
	var first error
	for i, r := range w.repls {
		if w.gates[i].Load() != gateLive {
			continue
		}
		if err := r.Sync(ctx); err != nil && first == nil {
			first = err
		}
	}
	return time.Since(start), first
}

// ReadEngine returns a survivor: measurement must outlive the kill.
func (w *failoverWorld) ReadEngine() *recommend.Engine { return w.engines[len(w.engines)-1] }

func (w *failoverWorld) Close() error {
	for _, cancel := range w.leaseCancels {
		cancel()
	}
	w.leaseWG.Wait()
	var first error
	for _, r := range w.repls {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, e := range w.engines {
		if err := e.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
