package loadgen

import (
	"os"
	"path/filepath"
	"testing"
)

// TestLibraryScenariosValid: every shipped scenario (and its CI smoke
// reduction) validates, and names are unique.
func TestLibraryScenariosValid(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Library {
		if seen[s.Name] {
			t.Fatalf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		if err := s.withDefaults().Validate(); err != nil {
			t.Errorf("library scenario %q invalid: %v", s.Name, err)
		}
		if err := s.Smoke().withDefaults().Validate(); err != nil {
			t.Errorf("smoke reduction of %q invalid: %v", s.Name, err)
		}
	}
	for _, want := range []string{"flash-sale", "diurnal", "churn-spill", "cold-follower", "shilling"} {
		if !seen[want] {
			t.Errorf("library is missing the %s scenario the ROADMAP names", want)
		}
	}
}

// TestScenarioValidateRejects: contradictory documents fail validation.
func TestScenarioValidateRejects(t *testing.T) {
	base := Scenario{Name: "x", RateOpsS: 100, DurationS: 5, MixRecommend: 1}
	cases := []struct {
		name string
		fn   func(s *Scenario)
	}{
		{"zero rate", func(s *Scenario) { s.RateOpsS = 0 }},
		{"negative duration", func(s *Scenario) { s.DurationS = -1 }},
		{"no name", func(s *Scenario) { s.Name = "" }},
		{"negative mix", func(s *Scenario) { s.MixRecommend = -1 }},
		{"zero mix", func(s *Scenario) { s.MixRecommend = 0 }},
		{"bad shape", func(s *Scenario) { s.Shape = "sawtooth" }},
		{"fraction range", func(s *Scenario) { s.HotCategoryShare = 1.5 }},
		{"churn without writes", func(s *Scenario) { s.ChurnFraction = 0.5 }},
		{"shill without writes", func(s *Scenario) { s.ShillFraction = 0.5 }},
		{"cold delay past end", func(s *Scenario) { s.ColdFollower = true; s.ColdFollowerDelayS = 10 }},
	}
	for _, tc := range cases {
		s := base
		tc.fn(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: validation accepted %+v", tc.name, s)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base scenario must be valid: %v", err)
	}
}

// TestLookupAndScenarios: name resolution round-trips the library.
func TestLookupAndScenarios(t *testing.T) {
	names := Scenarios()
	if len(names) != len(Library) {
		t.Fatalf("Scenarios() lists %d names, library has %d", len(names), len(Library))
	}
	for _, name := range names {
		if _, ok := Lookup(name); !ok {
			t.Errorf("Lookup(%q) failed for a listed scenario", name)
		}
	}
	if _, ok := Lookup("no-such-scenario"); ok {
		t.Error("Lookup invented a scenario")
	}
}

// TestLoadScenarioFile: the JSON escape hatch loads custom scenarios.
func TestLoadScenarioFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "custom.json")
	doc := `{"name":"custom","rate_ops_s":50,"duration_s":2,"mix_recommend":1,"users":100}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "custom" || s.RateOpsS != 50 {
		t.Fatalf("loaded %+v", s)
	}
	if err := s.withDefaults().Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadScenario(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := LoadScenario(bad); err == nil {
		t.Error("malformed JSON accepted")
	}
}

// TestSmokeScaling: Smoke caps the knobs CI cares about without touching
// the shape or mix.
func TestSmokeScaling(t *testing.T) {
	for _, s := range Library {
		sm := s.Smoke()
		if sm.Users > 2000 || sm.RateOpsS > 400 || sm.DurationS > 3 {
			t.Errorf("%s smoke too big: %d users, %g ops/s, %gs", s.Name, sm.Users, sm.RateOpsS, sm.DurationS)
		}
		if sm.Shape != s.Shape || sm.MixRecommend != s.MixRecommend || sm.ChurnFraction != s.ChurnFraction {
			t.Errorf("%s smoke changed the scenario character", s.Name)
		}
	}
}
