package loadgen

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"agentrec/internal/catalog"
	"agentrec/internal/ops"
	"agentrec/internal/platform"
	"agentrec/internal/profile"
	"agentrec/internal/recommend"
	"agentrec/internal/workload"
)

// world is what RunScenario drives: a Target plus the seeding, metrics,
// and convergence hooks the result document needs. Three implementations:
// platformWorld (in-process replicated platform.Platform), coldWorld (a
// recommend-level deployment with one delayed cold follower), and
// httpWorld (live platformd daemons, read-only).
type world interface {
	Target
	Seed(profiles []*profile.Profile, purchases map[string][]string) error
	Metrics() ops.Snapshot
	Drain(ctx context.Context) (time.Duration, error)
	ReadEngine() *recommend.Engine // measurement engine; nil over HTTP
	Close() error
}

// opExec interprets workload ops against an engine/writer pair. Shared by
// the in-process worlds; safe for concurrent use (the base profile map is
// read-only after construction).
type opExec struct {
	cat    *catalog.Catalog
	base   map[string]*profile.Profile // seeded profiles, for refresh ops
	shills atomic.Int64                // shill installs executed
}

func newOpExec(cat *catalog.Catalog, profiles []*profile.Profile) *opExec {
	x := &opExec{cat: cat, base: make(map[string]*profile.Profile, len(profiles))}
	for _, p := range profiles {
		x.base[p.UserID] = p
	}
	return x
}

func (x *opExec) apply(eng *recommend.Engine, w recommend.Writer, op workload.Op) error {
	switch op.Kind {
	case workload.OpRecommend:
		_, err := eng.Recommend(recommend.StrategyAuto, op.UserID, op.Category, op.TopN)
		return err
	case workload.OpSetProfile:
		// New consumers (churn, shills) observe with buy-strength evidence
		// so they enter the CF community immediately; refreshes add one
		// query-strength observation on top of the seeded profile.
		var p *profile.Profile
		behaviour := profile.BehaviourQuery
		if base := x.base[op.UserID]; base != nil && !op.NewUser {
			p = base.Clone()
		} else {
			p = profile.NewProfile(op.UserID)
			behaviour = profile.BehaviourBuy
		}
		for _, pid := range op.ObserveProducts {
			prod, err := x.cat.Get(pid)
			if err != nil {
				return err
			}
			if err := p.Observe(prod.Evidence(behaviour)); err != nil {
				return err
			}
		}
		if err := w.SetProfile(p); err != nil {
			return err
		}
		if op.Shill && op.ProductID != "" {
			x.shills.Add(1)
			return w.RecordPurchase(op.UserID, op.ProductID)
		}
		return nil
	case workload.OpRecordPurchase:
		return w.RecordPurchase(op.UserID, op.ProductID)
	default:
		return fmt.Errorf("loadgen: unknown op kind %v", op.Kind)
	}
}

// platformWorld drives a full in-process platform.Platform: reads hit each
// buyer server's engine round-robin, writes go through each server's own
// community write surface (the ownership router when replicated), exactly
// as buyer agent traffic would.
type platformWorld struct {
	p       *platform.Platform
	exec    *opExec
	servers int
	next    atomic.Uint64
}

func newPlatformWorld(s Scenario, u *workload.Universe, profiles []*profile.Profile, servers int, stateDir string) (*platformWorld, error) {
	cfg := platform.Config{
		BuyerServers:     servers,
		Products:         u.Products,
		ReplicateEngines: servers > 1,
	}
	if s.MaxResidentShards > 0 {
		// Spilling needs a Persister behind the engines.
		if stateDir == "" {
			return nil, fmt.Errorf("loadgen: scenario %q sets max_resident_shards and needs a state dir", s.Name)
		}
		cfg.StateDir = stateDir
		cfg.EngineOpts = append(cfg.EngineOpts, recommend.WithMaxResidentShards(s.MaxResidentShards))
	}
	p, err := platform.New(cfg)
	if err != nil {
		return nil, err
	}
	return &platformWorld{p: p, exec: newOpExec(p.Union, profiles), servers: servers}, nil
}

func (w *platformWorld) Do(_ context.Context, op workload.Op) error {
	i := int(w.next.Add(1) % uint64(w.servers))
	eng := w.p.Engines[i%len(w.p.Engines)]
	return w.exec.apply(eng, w.p.Writer(i), op)
}

func (w *platformWorld) Seed(profiles []*profile.Profile, purchases map[string][]string) error {
	return w.p.SeedCommunity(profiles, purchases)
}

func (w *platformWorld) Metrics() ops.Snapshot { return w.p.Metrics() }

func (w *platformWorld) Drain(ctx context.Context) (time.Duration, error) {
	start := time.Now()
	err := w.p.SyncReplicas(ctx)
	return time.Since(start), err
}

func (w *platformWorld) ReadEngine() *recommend.Engine { return w.p.Engine }

func (w *platformWorld) Close() error { return w.p.Close() }

// pagedPeer adapts an in-process engine as a Peer that refuses to inline
// snapshots: a tail that would carry one instead reports Paged, forcing the
// follower through the real paged bootstrap protocol (Engine.SnapshotPage)
// under a page byte budget — the wire behaviour of a large-state owner,
// without standing up TCP.
type pagedPeer struct {
	e        *recommend.Engine
	maxBytes int
}

func (p pagedPeer) JournalTail(ctx context.Context, shard int, epoch, since uint64) (recommend.TailResult, error) {
	tr, err := recommend.LocalPeer{Engine: p.e}.JournalTail(ctx, shard, epoch, since)
	if err != nil {
		return tr, err
	}
	if tr.Snapshot != nil {
		tr.Snapshot = nil
		tr.Paged = true
	}
	return tr, nil
}

func (p pagedPeer) SnapshotPage(_ context.Context, shard int, epoch, seq uint64, token string) (recommend.SnapshotPage, error) {
	return p.e.SnapshotPage(shard, epoch, seq, token, p.maxBytes)
}

// ColdFollowerResult measures one cold server's paged bootstrap under
// sustained write load.
type ColdFollowerResult struct {
	WarmServers        int     `json:"warm_servers"`
	DelayS             float64 `json:"delay_s"`      // load ran this long before the join
	PageBytes          int     `json:"page_bytes"`   // snapshot page budget
	BootstrapMs        float64 `json:"bootstrap_ms"` // join → all shards caught up
	ShardsBootstrapped int     `json:"shards_bootstrapped"`
	PagesPulled        uint64  `json:"pages_pulled"`
	SnapshotsApplied   uint64  `json:"snapshots_applied"`
	PagedRestarts      uint64  `json:"paged_restarts"` // owner moved past the pin mid-transfer
	RecordsApplied     uint64  `json:"records_applied"`
	LagAfterBootstrap  uint64  `json:"lag_records_after_bootstrap"`
	UsersOnCold        int     `json:"users_on_cold"`
	UsersOnWarm        int     `json:"users_on_warm"`
}

// coldWorld is a recommend-level replicated deployment of warm+1 servers:
// the world is (re)started with the new server already owning its shard
// slice — the static shard%N ownership the platform uses — but the new
// server's *replicas* of everyone else's shards are empty. After DelayS of
// load its replicator is created against pagedPeer-wrapped owners and one
// Sync bootstraps every shard through paged snapshots while writes keep
// flowing. Reads and writes round-robin the warm servers only.
type coldWorld struct {
	exec      *opExec
	engines   []*recommend.Engine // warm servers first, cold server last
	routers   []*recommend.Router // one per warm server
	warmRepls []*recommend.Replicator
	coldRepl  *recommend.Replicator
	pageBytes int
	warm      int
	next      atomic.Uint64
}

func newColdWorld(s Scenario, u *workload.Universe, profiles []*profile.Profile, warm int) (*coldWorld, error) {
	cat := catalog.New()
	for _, p := range u.Products {
		if err := cat.Upsert(p); err != nil {
			return nil, err
		}
	}
	w := &coldWorld{exec: newOpExec(cat, profiles), warm: warm, pageBytes: s.ColdFollowerPageBytes}
	total := warm + 1
	for i := 0; i < total; i++ {
		e, err := recommend.Open(cat, recommend.WithJournalFeed(0))
		if err != nil {
			w.Close()
			return nil, err
		}
		w.engines = append(w.engines, e)
	}
	writers := make([]recommend.Writer, total)
	for i, e := range w.engines {
		writers[i] = e
	}
	for i := 0; i < warm; i++ {
		r, err := recommend.NewRouter(w.engines[i], i, writers)
		if err != nil {
			w.Close()
			return nil, err
		}
		w.routers = append(w.routers, r)
	}
	peers := make([]recommend.Peer, total)
	for i, e := range w.engines {
		peers[i] = recommend.LocalPeer{Engine: e}
	}
	for i := 0; i < warm; i++ {
		r, err := recommend.NewReplicator(w.engines[i], i, peers,
			recommend.WithPullInterval(50*time.Millisecond))
		if err != nil {
			w.Close()
			return nil, err
		}
		r.Start()
		w.warmRepls = append(w.warmRepls, r)
	}
	return w, nil
}

// Bootstrap joins the cold server: its replicator is created against
// paged peers and one Sync pulls every non-owned shard cold → current.
// Called once, mid-run, by the scenario runner.
func (w *coldWorld) Bootstrap(ctx context.Context) (*ColdFollowerResult, error) {
	total := w.warm + 1
	cold := w.warm
	peers := make([]recommend.Peer, total)
	for i := 0; i < w.warm; i++ {
		peers[i] = pagedPeer{e: w.engines[i], maxBytes: w.pageBytes}
	}
	peers[cold] = recommend.LocalPeer{Engine: w.engines[cold]}
	r, err := recommend.NewReplicator(w.engines[cold], cold, peers,
		recommend.WithPullInterval(50*time.Millisecond))
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := r.Sync(ctx); err != nil {
		r.Close()
		return nil, fmt.Errorf("loadgen: cold bootstrap: %w", err)
	}
	bootstrap := time.Since(start)
	r.Start() // keep tailing for the rest of the run
	w.coldRepl = r

	res := &ColdFollowerResult{
		WarmServers: w.warm,
		PageBytes:   w.pageBytes,
		BootstrapMs: float64(bootstrap) / float64(time.Millisecond),
	}
	st := r.Stats()
	for _, sh := range st.Shards {
		if sh.Owner == cold {
			continue
		}
		res.ShardsBootstrapped++
		res.PagesPulled += sh.Pages
		res.SnapshotsApplied += sh.Snapshots
		res.PagedRestarts += sh.Restarts
		res.RecordsApplied += sh.Records
	}
	res.LagAfterBootstrap = st.Lag()
	return res, nil
}

func (w *coldWorld) Do(_ context.Context, op workload.Op) error {
	i := int(w.next.Add(1) % uint64(w.warm))
	return w.exec.apply(w.engines[i], w.routers[i], op)
}

func (w *coldWorld) Seed(profiles []*profile.Profile, purchases map[string][]string) error {
	if err := w.routers[0].SetProfiles(profiles); err != nil {
		return err
	}
	users := make([]string, 0, len(purchases))
	for user := range purchases {
		users = append(users, user)
	}
	sort.Strings(users) // deterministic journal order across runs
	for _, user := range users {
		for _, pid := range purchases[user] {
			if err := w.routers[0].RecordPurchase(user, pid); err != nil {
				return err
			}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := w.Drain(ctx)
	return err
}

func (w *coldWorld) Metrics() ops.Snapshot {
	snap := ops.Snapshot{AtEpochMs: time.Now().UnixMilli()}
	for i, e := range w.engines {
		sv := ops.ServerSnapshot{Server: i, Engine: e.Stats().EventView()}
		if i < len(w.warmRepls) {
			repl := w.warmRepls[i].Stats().EventView()
			sv.Replication = &repl
		} else if w.coldRepl != nil {
			repl := w.coldRepl.Stats().EventView()
			sv.Replication = &repl
		}
		snap.Servers = append(snap.Servers, sv)
	}
	return snap
}

func (w *coldWorld) Drain(ctx context.Context) (time.Duration, error) {
	start := time.Now()
	var first error
	for _, r := range w.warmRepls {
		if err := r.Sync(ctx); err != nil && first == nil {
			first = err
		}
	}
	if w.coldRepl != nil {
		if err := w.coldRepl.Sync(ctx); err != nil && first == nil {
			first = err
		}
	}
	return time.Since(start), first
}

func (w *coldWorld) ReadEngine() *recommend.Engine { return w.engines[0] }

func (w *coldWorld) Close() error {
	var first error
	for _, r := range w.warmRepls {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	if w.coldRepl != nil {
		if err := w.coldRepl.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, e := range w.engines {
		if err := e.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// httpWorld drives live platformd buyer daemons over their HTTP surface.
// Read-only: the HTTP surface's write paths are session-scoped (login +
// tasks), so only recommend ops are supported and RunScenario rejects
// scenarios with write mixes. The community is whatever the daemons
// already hold — unknown consumers exercise the top-seller fallback.
type httpWorld struct {
	bases  []string
	client *http.Client
	next   atomic.Uint64
}

func newHTTPWorld(addrs []string) (*httpWorld, error) {
	w := &httpWorld{client: &http.Client{Timeout: 30 * time.Second}}
	for _, a := range addrs {
		base := a
		if base == "" {
			return nil, fmt.Errorf("loadgen: empty server address")
		}
		if u, err := url.Parse(base); err != nil || u.Scheme == "" {
			base = "http://" + base
		}
		w.bases = append(w.bases, base)
	}
	return w, nil
}

func (w *httpWorld) Do(ctx context.Context, op workload.Op) error {
	if op.Kind != workload.OpRecommend {
		return fmt.Errorf("loadgen: http target is read-only, cannot execute %v", op.Kind)
	}
	base := w.bases[int(w.next.Add(1)%uint64(len(w.bases)))]
	q := url.Values{"user": {op.UserID}, "n": {strconv.Itoa(op.TopN)}}
	if op.Category != "" {
		q.Set("category", op.Category)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/recommendations?"+q.Encode(), nil)
	if err != nil {
		return err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: %s: HTTP %d", base, resp.StatusCode)
	}
	return nil
}

// Seed is a no-op over HTTP: the daemons own their community.
func (w *httpWorld) Seed([]*profile.Profile, map[string][]string) error { return nil }

// Metrics asks server 0 for the platform snapshot.
func (w *httpWorld) Metrics() ops.Snapshot {
	var snap ops.Snapshot
	resp, err := w.client.Get(w.bases[0] + "/metrics/snapshot")
	if err != nil {
		return snap
	}
	defer resp.Body.Close()
	decodeJSONBody(resp.Body, &snap)
	return snap
}

func (w *httpWorld) Drain(context.Context) (time.Duration, error) { return 0, nil }

func (w *httpWorld) ReadEngine() *recommend.Engine { return nil }

func (w *httpWorld) Close() error { return nil }
