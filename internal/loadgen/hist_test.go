package loadgen

import (
	"math"
	"testing"
)

// TestHistogramExactQuantiles drives known distributions through the
// histogram and checks the quantiles exactly (values < 128 are exact) or
// within the 1/64 log-linear error bound.
func TestHistogramExactQuantiles(t *testing.T) {
	cases := []struct {
		name   string
		values []int64
		want   map[float64]int64 // quantile -> exact expected value
	}{
		{
			name:   "uniform 1..100",
			values: seq(1, 100),
			want:   map[float64]int64{0: 1, 0.5: 50, 0.9: 90, 0.99: 99, 0.999: 100, 1: 100},
		},
		{
			name:   "constant",
			values: repeat(42, 1000),
			want:   map[float64]int64{0: 42, 0.5: 42, 0.99: 42, 1: 42},
		},
		{
			name:   "bimodal outlier",
			values: append(repeat(1, 99), 1_000_000),
			// p99 rank is ceil(0.99*100) = 99 -> still 1; p1 of the tail
			// (q=0.999, rank 100) hits the outlier, clamped to the exact max.
			want: map[float64]int64{0.5: 1, 0.99: 1, 0.999: 1_000_000, 1: 1_000_000},
		},
		{
			name:   "small exact range",
			values: []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
			want:   map[float64]int64{0.1: 0, 0.5: 4, 1: 9},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram()
			for _, v := range tc.values {
				h.Record(v)
			}
			if got := h.Count(); got != int64(len(tc.values)) {
				t.Fatalf("Count = %d, want %d", got, len(tc.values))
			}
			for q, want := range tc.want {
				if got := h.Quantile(q); got != want {
					t.Errorf("Quantile(%g) = %d, want %d", q, got, want)
				}
			}
		})
	}
}

// TestHistogramErrorBound checks the log-linear guarantee on large values:
// the estimate never understates the true quantile and overstates by at
// most 1/64.
func TestHistogramErrorBound(t *testing.T) {
	h := NewHistogram()
	const n = 10000
	for i := 1; i <= n; i++ {
		h.Record(int64(i) * 997) // spread over several powers of two
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		rank := int64(math.Ceil(q * n))
		exact := rank * 997
		got := h.Quantile(q)
		if got < exact {
			t.Errorf("Quantile(%g) = %d understates exact %d", q, got, exact)
		}
		if limit := exact + exact/64 + 1; got > limit {
			t.Errorf("Quantile(%g) = %d exceeds error bound %d (exact %d)", q, got, limit, exact)
		}
	}
	if got := h.Max(); got != n*997 {
		t.Errorf("Max = %d, want %d", got, n*997)
	}
	if got, want := h.Mean(), float64(997)*(n+1)/2; math.Abs(got-want) > 1e-6 {
		t.Errorf("Mean = %g, want %g", got, want)
	}
}

// TestHistogramIndexRoundTrip: every value lands in a bucket whose upper
// bound covers it within the relative error bound.
func TestHistogramIndexRoundTrip(t *testing.T) {
	values := []int64{0, 1, 63, 64, 127, 128, 129, 1000, 4095, 4096, 1 << 20,
		(1 << 20) + 1, 1<<40 + 12345, 1<<62 - 1, 1 << 62}
	for _, v := range values {
		idx := histIndex(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("histIndex(%d) = %d out of range", v, idx)
		}
		hi := histHigh(idx)
		if hi < v {
			t.Errorf("histHigh(histIndex(%d)) = %d < value", v, hi)
		}
		if v >= histSubCount*2 && hi-v > v/histSubCount {
			t.Errorf("bucket bound %d for %d exceeds 1/%d relative error", hi, v, histSubCount)
		}
	}
}

// TestHistogramMerge: merging shards must equal recording everything into
// one histogram, bucket for bucket.
func TestHistogramMerge(t *testing.T) {
	whole := NewHistogram()
	parts := []*Histogram{NewHistogram(), NewHistogram(), NewHistogram()}
	for i := int64(0); i < 9999; i++ {
		v := (i * i) % 1_000_003
		whole.Record(v)
		parts[i%3].Record(v)
	}
	merged := NewHistogram()
	merged.Merge(parts[0])
	merged.Merge(parts[1])
	merged.Merge(parts[2])
	merged.Merge(NewHistogram()) // empty merge is a no-op

	if merged.Count() != whole.Count() {
		t.Fatalf("merged Count = %d, want %d", merged.Count(), whole.Count())
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merged min/max = %d/%d, want %d/%d",
			merged.Min(), merged.Max(), whole.Min(), whole.Max())
	}
	if merged.Mean() != whole.Mean() {
		t.Fatalf("merged Mean = %g, want %g", merged.Mean(), whole.Mean())
	}
	for q := 0.01; q <= 1.0; q += 0.01 {
		if got, want := merged.Quantile(q), whole.Quantile(q); got != want {
			t.Fatalf("merged Quantile(%g) = %d, want %d", q, got, want)
		}
	}
}

// TestHistogramCoordinatedOmission is the regression case from the issue: a
// stalled server must inflate p99, not hide it. 990 fast ops at 1ms, then
// one 5s stall. A naive closed-loop record keeps p99 at 1ms — the stall
// suppressed the samples that would have queued behind it. RecordCorrected
// back-fills those phantom samples, so the corrected p99 surfaces the stall.
func TestHistogramCoordinatedOmission(t *testing.T) {
	const msec = int64(1_000_000) // ns
	naive, corrected := NewHistogram(), NewHistogram()
	interval := 10 * msec
	for i := 0; i < 990; i++ {
		naive.Record(1 * msec)
		corrected.RecordCorrected(1*msec, interval)
	}
	naive.Record(5000 * msec)
	corrected.RecordCorrected(5000*msec, interval)

	naiveP99 := naive.Quantile(0.99)
	correctedP99 := corrected.Quantile(0.99)
	if naiveP99 > 2*msec {
		t.Fatalf("naive p99 = %dns; the stall should be hidden in the naive histogram", naiveP99)
	}
	if correctedP99 < 100*naiveP99 {
		t.Errorf("corrected p99 = %dns, naive = %dns: correction failed to surface the stall",
			correctedP99, naiveP99)
	}
	// The correction adds one synthetic sample per missed interval.
	wantSynthetic := int64(5000*msec-interval) / interval
	if got := corrected.Count() - naive.Count(); got != wantSynthetic {
		t.Errorf("corrected added %d synthetic samples, want %d", got, wantSynthetic)
	}
	// Values at or below the interval are never synthesized.
	fast := NewHistogram()
	fast.RecordCorrected(interval, interval)
	if fast.Count() != 1 {
		t.Errorf("RecordCorrected(interval) synthesized samples: count %d", fast.Count())
	}
}

// TestHistogramEmptyAndNegative: edge behaviour.
func TestHistogramEmptyAndNegative(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.99) != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(-5) // clamps to zero
	if h.Count() != 1 || h.Min() != 0 || h.Quantile(1) != 0 {
		t.Fatalf("negative record: count %d min %d q1 %d", h.Count(), h.Min(), h.Quantile(1))
	}
}

func seq(lo, hi int64) []int64 {
	out := make([]int64, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		out = append(out, v)
	}
	return out
}

func repeat(v int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
