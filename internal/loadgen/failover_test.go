package loadgen

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"
	"time"

	"agentrec/internal/kvstore"
	"agentrec/internal/recommend"
)

// TestFailoverScenarioChaos is the kill-the-owner drill end to end: a
// 3-server elastic world under mixed write load loses the owner of the
// most shards mid-run. The coordinator must promote a caught-up follower,
// every write acknowledged to the driver must survive, the deposed owner's
// replayed writes must bounce off the epoch fence, and the survivors'
// durable state — the WAL live view, compared byte for byte — must be
// identical afterwards.
func TestFailoverScenarioChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos scenario")
	}
	s, ok := Lookup("failover")
	if !ok {
		t.Fatal("failover scenario missing from the library")
	}
	s = s.Smoke()
	stateDir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	res, err := RunScenario(ctx, s, RunOptions{Servers: 3, StateDir: stateDir, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	if res.Target != "failover" || res.Servers != 3 {
		t.Fatalf("target %q over %d servers, want failover over 3", res.Target, res.Servers)
	}
	fo := res.Failover
	if fo == nil {
		t.Fatal("result carries no failover section")
	}
	if fo.PromotedEpoch < 2 {
		t.Fatalf("promoted epoch %d: the authority never moved the map", fo.PromotedEpoch)
	}
	if fo.ShardsMoved == 0 {
		t.Fatal("no shards moved off the dead owner")
	}
	if fo.WriteUnavailabilityMs <= 0 {
		t.Fatalf("write unavailability %.2fms: the kill left no measurable window", fo.WriteUnavailabilityMs)
	}
	if fo.KilledAtS <= 0 || fo.KilledAtS >= s.DurationS {
		t.Fatalf("kill at %.2fs, want inside the %gs run", fo.KilledAtS, s.DurationS)
	}
	if fo.AckedWrites == 0 {
		t.Fatal("no writes were acknowledged — the drill measured nothing")
	}
	if fo.LostAckedWrites != 0 {
		t.Fatalf("%d acknowledged writes lost across the promotion", fo.LostAckedWrites)
	}
	if res.Metrics == nil || fo.StaleWritesRejected != res.Metrics.ShardsPerEngine {
		t.Fatalf("stale replays rejected = %d, want one per shard (%+v)", fo.StaleWritesRejected, res.Metrics)
	}
	if fo.DivergentShards != 0 {
		t.Fatalf("%d shards diverged between the survivors", fo.DivergentShards)
	}

	// The survivors' durable community state must be byte-identical: the
	// WAL's live view dumps buckets and keys in sorted order, so equal
	// state means equal bytes. The victim (server 0) is excluded — its WAL
	// legitimately froze at the kill.
	snap1 := walLiveSnapshot(t, filepath.Join(stateDir, "server-1"))
	snap2 := walLiveSnapshot(t, filepath.Join(stateDir, "server-2"))
	if !bytes.Equal(snap1, snap2) {
		t.Fatalf("survivor WAL live states differ: %d vs %d bytes", len(snap1), len(snap2))
	}
	if len(snap1) == 0 {
		t.Fatal("survivor WAL live state is empty")
	}
}

func walLiveSnapshot(t *testing.T, dir string) []byte {
	t.Helper()
	store, err := kvstore.Open(filepath.Join(dir, recommend.CommunityWAL))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	var buf bytes.Buffer
	if err := store.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFailoverScenarioValidation(t *testing.T) {
	base := Scenario{Name: "x", RateOpsS: 10, DurationS: 10,
		MixRecommend: 0.5, MixSetProfile: 0.25, MixPurchase: 0.25, Failover: true}

	if err := base.withDefaults().Validate(); err != nil {
		t.Fatalf("defaulted failover scenario invalid: %v", err)
	}
	d := base.withDefaults()
	if d.FailoverDelayS != 2.5 || d.FailoverLeaseMs != 1000 {
		t.Fatalf("defaults = delay %g lease %d, want 2.5 / 1000", d.FailoverDelayS, d.FailoverLeaseMs)
	}

	late := base
	late.FailoverDelayS = 10
	if err := late.Validate(); err == nil {
		t.Fatal("delay at duration end must be rejected")
	}
	both := base.withDefaults()
	both.ColdFollower = true
	if err := both.Validate(); err == nil {
		t.Fatal("failover + cold_follower must be rejected")
	}
	readonly := base.withDefaults()
	readonly.MixSetProfile, readonly.MixPurchase = 0, 0
	if err := readonly.Validate(); err == nil {
		t.Fatal("failover without a write mix must be rejected")
	}
	smoke := base.withDefaults().Smoke()
	if smoke.FailoverDelayS > smoke.DurationS/4 {
		t.Fatalf("smoke delay %g exceeds a quarter of %g", smoke.FailoverDelayS, smoke.DurationS)
	}
}
