// Package loadgen is the platform's production-shaped proof layer: an
// open-loop traffic driver that replays scenario-scripted mixes of
// Recommend / SetProfile / RecordPurchase against a real replicated
// multi-server deployment and records the latency/throughput trajectory as
// BENCH_<scenario>.json, so every future change shows its perf delta
// against a committed baseline instead of a microbenchmark.
//
// The pieces:
//
//   - Histogram (hist.go): HDR-style log-linear latency histogram with
//     coordinated-omission correction. Mergeable, fixed-size, allocation-
//     free on the record path.
//   - Drive (driver.go): the open-loop driver. Arrival times are fixed by
//     the scenario's rate shape before the run starts; latency is measured
//     from the *scheduled* start, so a stalled server inflates the recorded
//     tail instead of silently slowing the load (the coordinated-omission
//     trap closed-loop drivers fall into).
//   - Scenario (scenario.go): the scenario library, shipped as data. Each
//     scenario is a plain JSON-serializable struct; the built-in Library
//     covers flash-sale skew, diurnal load, consumer churn under shard
//     spilling, cold-follower paged bootstrap under writes, and
//     profile-shilling poisoning.
//   - RunScenario (run.go): boots the target world (an in-process
//     replicated platform, a recommend-level world with a cold follower, or
//     live platformd daemons over HTTP), seeds the universe, drives the
//     load, and assembles the ScenarioResult document cmd/recbench writes.
package loadgen

import "math/bits"

// Histogram geometry: values are bucketed log-linearly — each power-of-two
// major bucket is split into histSubCount linear sub-buckets — so the
// relative quantile error is bounded by 1/histSubCount (~1.6%) while the
// whole int64 range fits in a fixed ~3.7k-bucket array. Values below
// histSubCount*2 are exact.
const (
	histSubBits  = 6
	histSubCount = 1 << histSubBits // 64 sub-buckets per power of two

	// Max index: for v up to 1<<62, shift = 62-histSubBits, so
	// (shift+1+1) majors of histSubCount buckets cover everything.
	histBuckets = (64 - histSubBits) * histSubCount
)

// Histogram is an HDR-style log-linear histogram of non-negative int64
// values (the driver records nanoseconds). The zero value is NOT ready;
// use NewHistogram. Not safe for concurrent use: the driver keeps one per
// worker and merges at the end.
type Histogram struct {
	counts [histBuckets]int64
	count  int64
	sum    int64
	min    int64
	max    int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: -1}
}

// histIndex maps a value to its bucket. Values < histSubCount*2 map
// exactly (one bucket per value); above that each doubling of magnitude
// shares histSubCount linear buckets.
func histIndex(v int64) int {
	if v < histSubCount {
		return int(v)
	}
	m := bits.Len64(uint64(v)) - 1 // m >= histSubBits
	shift := m - histSubBits
	sub := int(v >> uint(shift)) // in [histSubCount, 2*histSubCount)
	return (shift+1)*histSubCount + (sub - histSubCount)
}

// histHigh is the inclusive upper bound of bucket idx — what quantiles
// report, so estimates never understate the true value.
func histHigh(idx int) int64 {
	if idx < histSubCount {
		return int64(idx)
	}
	shift := idx/histSubCount - 1
	low := int64(histSubCount+idx%histSubCount) << uint(shift)
	return low + (int64(1) << uint(shift)) - 1
}

// Record adds one observation. Negative values clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[histIndex(v)]++
	h.count++
	h.sum += v
	if h.min < 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// RecordCorrected records v and, when v exceeds expectedInterval,
// additionally records the observations a coordinated-omission-free
// sampler would have seen during the stall: v-expectedInterval,
// v-2*expectedInterval, ... down to expectedInterval. This is the
// standard HDR correction for closed-loop measurements, where a stalled
// server silently suppresses the requests that would have been issued
// (and would have stalled) during the pause. The open-loop driver does
// not need it — it measures from scheduled start — but mergers of
// closed-loop samples do.
func (h *Histogram) RecordCorrected(v, expectedInterval int64) {
	h.Record(v)
	if expectedInterval <= 0 || v <= expectedInterval {
		return
	}
	for missing := v - expectedInterval; missing >= expectedInterval; missing -= expectedInterval {
		h.Record(missing)
	}
}

// Merge adds o's observations into h.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	for i, c := range o.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	h.count += o.count
	h.sum += o.sum
	if h.min < 0 || (o.min >= 0 && o.min < h.min) {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}

// Count is the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count }

// Min is the smallest recorded value (exact), or 0 when empty.
func (h *Histogram) Min() int64 {
	if h.min < 0 {
		return 0
	}
	return h.min
}

// Max is the largest recorded value (exact), or 0 when empty.
func (h *Histogram) Max() int64 { return h.max }

// Mean is the exact arithmetic mean (the sum is tracked unbucketed), or 0
// when empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]): the
// inclusive upper edge of the bucket holding the ceil(q*count)-th smallest
// observation. The estimate never understates the true quantile and
// overstates it by at most a factor of 1/64 (~1.6%); values below 128 are
// exact. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	rank := int64(q * float64(h.count))
	if float64(rank) < q*float64(h.count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			hi := histHigh(i)
			if hi > h.max {
				// The top bucket's edge can run past the largest
				// observation; the max is exact, so clamp to it.
				hi = h.max
			}
			return hi
		}
	}
	return h.max
}
