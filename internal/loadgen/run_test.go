package loadgen

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// tiny shrinks a library scenario to unit-test size (fractions of the CI
// smoke size — these run inside go test).
func tiny(t *testing.T, name string) Scenario {
	t.Helper()
	s, ok := Lookup(name)
	if !ok {
		t.Fatalf("no library scenario %q", name)
	}
	s = s.Smoke()
	s.Users = 300
	s.Products = 120
	s.RateOpsS = 300
	s.DurationS = 1
	if s.Shape == ShapeSine {
		s.SinePeriodS = 1
	}
	if s.ColdFollower {
		s.ColdFollowerDelayS = 0.2
	}
	if s.ShillProbes > 0 {
		s.ShillProbes = 15
	}
	return s
}

func runTiny(t *testing.T, s Scenario, opt RunOptions) *ScenarioResult {
	t.Helper()
	res, err := RunScenario(context.Background(), s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatalf("result fails its own schema check: %v", err)
	}
	return res
}

// TestRunScenarioFlashSale: the replicated 2-server flash-sale smoke, end
// to end: seed, drive, drain, document.
func TestRunScenarioFlashSale(t *testing.T) {
	res := runTiny(t, tiny(t, "flash-sale"), RunOptions{Servers: 2})
	if res.Servers != 2 || res.Target != "platform" {
		t.Fatalf("ran against %s/%d servers, want platform/2", res.Target, res.Servers)
	}
	if _, ok := res.LatencyMs["recommend"]; !ok {
		t.Fatal("no recommend latency recorded")
	}
	if res.Metrics == nil || res.Metrics.UsersAfter < res.Metrics.UsersBefore {
		t.Fatalf("metrics delta missing or shrank: %+v", res.Metrics)
	}
}

// TestRunScenarioDiurnal: the sine shape survives the full runner path.
func TestRunScenarioDiurnal(t *testing.T) {
	res := runTiny(t, tiny(t, "diurnal"), RunOptions{Servers: 2})
	if res.Shape != ShapeSine {
		t.Fatalf("shape = %q", res.Shape)
	}
}

// TestRunScenarioChurnSpill: churn must grow the community and the
// residency cap must actually spill shards.
func TestRunScenarioChurnSpill(t *testing.T) {
	s := tiny(t, "churn-spill")
	res := runTiny(t, s, RunOptions{Servers: 2})
	if res.Metrics.UsersAfter <= res.Metrics.UsersBefore {
		t.Fatalf("churn did not grow the community: %d -> %d",
			res.Metrics.UsersBefore, res.Metrics.UsersAfter)
	}
	if res.Metrics.ResidentShardsMin > s.MaxResidentShards {
		t.Fatalf("residency %d exceeds cap %d: spilling never engaged",
			res.Metrics.ResidentShardsMin, s.MaxResidentShards)
	}
	if res.Metrics.ShardsPerEngine <= s.MaxResidentShards {
		t.Fatalf("scenario too small to force spilling: %d shards vs cap %d",
			res.Metrics.ShardsPerEngine, s.MaxResidentShards)
	}
}

// TestRunScenarioColdFollower: a server joining mid-run must bootstrap via
// the paged snapshot protocol and end caught up.
func TestRunScenarioColdFollower(t *testing.T) {
	res := runTiny(t, tiny(t, "cold-follower"), RunOptions{Servers: 2})
	cf := res.ColdFollower
	if cf == nil {
		t.Fatal("no cold follower measurement")
	}
	if cf.ShardsBootstrapped == 0 || cf.BootstrapMs <= 0 {
		t.Fatalf("bootstrap did not run: %+v", cf)
	}
	if cf.PagesPulled == 0 {
		t.Fatalf("bootstrap bypassed the paged protocol: %+v", cf)
	}
	if cf.UsersOnCold == 0 || cf.UsersOnCold < cf.UsersOnWarm/2 {
		t.Fatalf("cold server ended with %d users vs warm %d; bootstrap incomplete",
			cf.UsersOnCold, cf.UsersOnWarm)
	}
}

// TestRunScenarioShilling: the attack must be measured — and with a shill
// flood this dense, it must visibly promote the target.
func TestRunScenarioShilling(t *testing.T) {
	s := tiny(t, "shilling")
	s.DurationS = 1.5
	res := runTiny(t, s, RunOptions{Servers: 2})
	sh := res.Shilling
	if sh == nil {
		t.Fatal("no shilling measurement")
	}
	if sh.TargetProduct == "" || sh.HotCategory == "" || sh.Probes == 0 {
		t.Fatalf("shill measurement incomplete: %+v", sh)
	}
	// Regression: the baseline must measure ranks against the same list
	// size the traffic requests (a zero TopN collapses every rank to
	// "absent" and the displacement to noise).
	if sh.TopN <= 0 {
		t.Fatalf("shill baseline ran with TopN = %d, want the traffic's resolved top-N", sh.TopN)
	}
	if sh.MeanTargetRankBefore <= 0 || sh.MeanTargetRankBefore > float64(sh.TopN+1) {
		t.Fatalf("mean_target_rank_before = %g out of range [1,%d]", sh.MeanTargetRankBefore, sh.TopN+1)
	}
	if sh.ShillProfiles == 0 {
		t.Fatal("no shill profiles installed; the attack never ran")
	}
	if sh.MeanNeighborShillShare == 0 && sh.MeanRankDisplacement == 0 {
		t.Fatalf("attack left no measurable trace: %+v", sh)
	}
}

// TestRunScenarioSingleServer: the unreplicated topology works too.
func TestRunScenarioSingleServer(t *testing.T) {
	res := runTiny(t, tiny(t, "flash-sale"), RunOptions{Servers: 1})
	if res.Servers != 1 {
		t.Fatalf("servers = %d", res.Servers)
	}
	if res.Metrics.LagRecordsEnd != 0 {
		t.Fatal("single-server run cannot have replication lag")
	}
}

// TestRunScenarioRejects: impossible world/scenario pairings fail up front.
func TestRunScenarioRejects(t *testing.T) {
	ctx := context.Background()
	if _, err := RunScenario(ctx, Scenario{Name: "bad", RateOpsS: 0, DurationS: 1, MixRecommend: 1}, RunOptions{}); err == nil {
		t.Error("zero rate accepted")
	}
	s := tiny(t, "flash-sale")
	if _, err := RunScenario(ctx, s, RunOptions{HTTPAddrs: []string{"localhost:1"}}); err == nil {
		t.Error("write mix accepted for the read-only HTTP target")
	}
	s.MixSetProfile, s.MixPurchase = 0, 0
	if _, err := RunScenario(ctx, s, RunOptions{HTTPAddrs: []string{""}}); err == nil {
		t.Error("empty HTTP address accepted")
	}
}

// TestWriteReadResult: the document round-trips through the committed file
// form and still passes the schema check.
func TestWriteReadResult(t *testing.T) {
	res := runTiny(t, tiny(t, "flash-sale"), RunOptions{Servers: 2})
	path := filepath.Join(t.TempDir(), "BENCH_flash-sale.json")
	if err := WriteResult(path, res); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResult(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Check(); err != nil {
		t.Fatalf("round-tripped result fails schema check: %v", err)
	}
	if back.Scenario != res.Scenario || back.Completed != res.Completed {
		t.Fatal("round trip lost fields")
	}
	data, _ := os.ReadFile(path)
	if len(data) == 0 || data[len(data)-1] != '\n' {
		t.Fatal("committed file must end with a newline")
	}
}

// TestResultCheckRejects: the schema gate actually gates.
func TestResultCheckRejects(t *testing.T) {
	good := runTiny(t, tiny(t, "flash-sale"), RunOptions{Servers: 2})
	mutate := []struct {
		name string
		fn   func(r *ScenarioResult)
	}{
		{"error count", func(r *ScenarioResult) { r.ErrorCount = 3 }},
		{"accounting", func(r *ScenarioResult) { r.Attempted++ }},
		{"no name", func(r *ScenarioResult) { r.Scenario = "" }},
		{"no throughput", func(r *ScenarioResult) { r.ThroughputOpsS = 0 }},
		{"percentile order", func(r *ScenarioResult) {
			l := r.LatencyMs["all"]
			l.P99Ms = l.P50Ms / 2
			r.LatencyMs["all"] = l
		}},
		{"latency count", func(r *ScenarioResult) {
			l := r.LatencyMs["all"]
			l.Count++
			r.LatencyMs["all"] = l
		}},
	}
	for _, m := range mutate {
		r := *good
		r.LatencyMs = make(map[string]LatencySummary, len(good.LatencyMs))
		for k, v := range good.LatencyMs {
			r.LatencyMs[k] = v
		}
		m.fn(&r)
		if err := r.Check(); err == nil {
			t.Errorf("Check accepted a result with broken %s", m.name)
		}
	}
}
