package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"agentrec/internal/workload"
)

// Scenario is one scripted load scenario: a plain data document (JSON
// round-trippable, no code) naming the universe to generate, the arrival
// process, and the traffic mix. cmd/recbench resolves built-ins from
// Library by name or loads a custom scenario from a JSON file, so new
// scenarios need no recompilation.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	// Universe sizing (workload.Generate).
	Seed       uint64 `json:"seed,omitempty"`       // [1]
	Users      int    `json:"users,omitempty"`      // seeded consumers [10000]
	Products   int    `json:"products,omitempty"`   // catalog size [Users/10, min 500]
	Categories int    `json:"categories,omitempty"` // [16]

	// Arrival process (open loop).
	RateOpsS    float64 `json:"rate_ops_s"`              // peak arrival rate
	DurationS   float64 `json:"duration_s"`              // scheduled load window
	Shape       string  `json:"shape,omitempty"`         // "constant" (default) | "sine"
	SinePeriodS float64 `json:"sine_period_s,omitempty"` // [DurationS]
	SineMinFrac float64 `json:"sine_min_frac,omitempty"` // trough fraction [0.25]

	// Traffic mix and skew (workload.TrafficConfig).
	MixRecommend     float64 `json:"mix_recommend"`
	MixSetProfile    float64 `json:"mix_set_profile"`
	MixPurchase      float64 `json:"mix_purchase"`
	UserZipfS        float64 `json:"user_zipf_s,omitempty"`
	HotCategoryShare float64 `json:"hot_category_share,omitempty"`
	ChurnFraction    float64 `json:"churn_fraction,omitempty"`

	// MaxResidentShards > 0 bounds how many community shards each engine
	// keeps in memory (recommend.WithMaxResidentShards); the runner then
	// backs the engines with a durable state dir so cold shards spill.
	MaxResidentShards int `json:"max_resident_shards,omitempty"`

	// ColdFollower adds one extra cold server to the replicated world: it
	// owns nothing, starts with empty replicas after ColdFollowerDelayS of
	// load, and bootstraps every shard through the paged snapshot protocol
	// (page budget ColdFollowerPageBytes) while writes continue.
	ColdFollower          bool    `json:"cold_follower,omitempty"`
	ColdFollowerDelayS    float64 `json:"cold_follower_delay_s,omitempty"`    // [10% of DurationS]
	ColdFollowerPageBytes int     `json:"cold_follower_page_bytes,omitempty"` // [256 KiB]

	// Failover turns the scenario into a kill-the-owner chaos drill: the
	// world runs coordinator-mediated elastic ownership over >=3 servers,
	// and after FailoverDelayS of load the static owner of the most shards
	// stops renewing its lease and refusing writes (staged crash). The
	// runner measures the write-unavailability window until the promoted
	// follower accepts writes again, audits that no acknowledged write was
	// lost, and verifies the deposed owner's replayed writes are fenced
	// (see failover.go).
	Failover        bool    `json:"failover,omitempty"`
	FailoverDelayS  float64 `json:"failover_delay_s,omitempty"`  // [25% of DurationS]
	FailoverLeaseMs int     `json:"failover_lease_ms,omitempty"` // coordinator lease TTL [1000]

	// ShillFraction > 0 turns the scenario adversarial: that fraction of
	// set_profile ops installs shill profiles promoting one hot product,
	// and the runner measures the attack's rank-displacement impact on the
	// CF neighbourhoods (see shilling.go).
	ShillFraction float64 `json:"shill_fraction,omitempty"`
	ShillProbes   int     `json:"shill_probes,omitempty"` // probe consumers measured [100]
}

// withDefaults fills the bracketed defaults.
func (s Scenario) withDefaults() Scenario {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Users <= 0 {
		s.Users = 10000
	}
	if s.Products <= 0 {
		s.Products = max(500, s.Users/10)
	}
	if s.Categories <= 0 {
		s.Categories = 16
	}
	if s.Shape == "" {
		s.Shape = ShapeConstant
	}
	if s.ColdFollower {
		if s.ColdFollowerDelayS <= 0 {
			s.ColdFollowerDelayS = s.DurationS / 10
		}
		if s.ColdFollowerPageBytes <= 0 {
			s.ColdFollowerPageBytes = 256 << 10
		}
	}
	if s.Failover {
		if s.FailoverDelayS <= 0 {
			s.FailoverDelayS = s.DurationS / 4
		}
		if s.FailoverLeaseMs <= 0 {
			// The TTL must dominate scheduler and GC jitter under full load
			// (renewals come from ordinary goroutines), or the authority sees
			// phantom deaths and the map flaps. 1s holds up even on a
			// single-CPU runner; the renew cadence is TTL/3.
			s.FailoverLeaseMs = 1000
		}
	}
	if s.ShillFraction > 0 && s.ShillProbes <= 0 {
		s.ShillProbes = 100
	}
	return s
}

// Validate rejects a scenario the runner cannot execute faithfully.
func (s Scenario) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("loadgen: scenario %q: %s", s.Name, fmt.Sprintf(format, args...))
	}
	if s.Name == "" {
		return fmt.Errorf("loadgen: scenario has no name")
	}
	if s.RateOpsS <= 0 {
		return bad("rate_ops_s must be positive, got %g", s.RateOpsS)
	}
	if s.DurationS <= 0 {
		return bad("duration_s must be positive, got %g", s.DurationS)
	}
	if s.MixRecommend < 0 || s.MixSetProfile < 0 || s.MixPurchase < 0 {
		return bad("mix weights must be non-negative")
	}
	if s.MixRecommend+s.MixSetProfile+s.MixPurchase <= 0 {
		return bad("mix weights sum to zero")
	}
	if s.Shape != "" && s.Shape != ShapeConstant && s.Shape != ShapeSine {
		return bad("unknown shape %q", s.Shape)
	}
	for name, v := range map[string]float64{
		"hot_category_share": s.HotCategoryShare,
		"churn_fraction":     s.ChurnFraction,
		"shill_fraction":     s.ShillFraction,
		"sine_min_frac":      s.SineMinFrac,
	} {
		if v < 0 || v > 1 {
			return bad("%s must be in [0,1], got %g", name, v)
		}
	}
	if s.ChurnFraction > 0 && s.MixSetProfile <= 0 {
		return bad("churn_fraction needs a set_profile share in the mix")
	}
	if s.ShillFraction > 0 && s.MixSetProfile <= 0 {
		return bad("shill_fraction needs a set_profile share in the mix")
	}
	if s.ColdFollower && s.ColdFollowerDelayS >= s.DurationS {
		return bad("cold_follower_delay_s %g must fall inside duration_s %g",
			s.ColdFollowerDelayS, s.DurationS)
	}
	if s.Failover {
		if s.ColdFollower {
			return bad("failover and cold_follower are mutually exclusive chaos modes")
		}
		if s.MaxResidentShards > 0 {
			return bad("the failover world does not support max_resident_shards")
		}
		if s.FailoverDelayS >= s.DurationS {
			return bad("failover_delay_s %g must fall inside duration_s %g",
				s.FailoverDelayS, s.DurationS)
		}
		if s.MixSetProfile+s.MixPurchase <= 0 {
			return bad("failover measures write availability and needs a write share in the mix")
		}
	}
	return nil
}

// Smoke returns the scenario scaled down to CI size — seconds of load over
// thousands of users — preserving its shape, mix, and skew.
func (s Scenario) Smoke() Scenario {
	s.Users = min(s.Users, 2000)
	s.Products = min(max(s.Products, 1), 400)
	s.RateOpsS = min(s.RateOpsS, 400)
	s.DurationS = min(s.DurationS, 3)
	if s.Shape == ShapeSine {
		s.SinePeriodS = min(s.SinePeriodS, s.DurationS)
	}
	if s.ColdFollower {
		s.ColdFollowerDelayS = min(s.ColdFollowerDelayS, s.DurationS/4)
	}
	if s.Failover {
		s.FailoverDelayS = min(s.FailoverDelayS, s.DurationS/4)
	}
	if s.ShillProbes > 0 {
		s.ShillProbes = min(s.ShillProbes, 25)
	}
	return s
}

// Library is the shipped scenario set: the production shapes the ROADMAP
// names, each a data document. Sizes are calibrated so a full run drains in
// a couple of minutes on a single core even when the offered rate exceeds
// engine capacity (flash-sale does so deliberately — the open-loop backlog
// IS the measurement); recbench's -users/-rate/-duration flags scale any of
// them up (to the million-user shape) or down without code changes.
var Library = []Scenario{
	{
		Name:        "flash-sale",
		Description: "hot-product skew: most traffic slams one Zipf-ranked category while purchases spike on its head product; offered rate deliberately exceeds capacity so the open-loop backlog inflates the tail",
		Users:       10000, Products: 1200, Categories: 16, Seed: 1,
		RateOpsS: 300, DurationS: 15,
		MixRecommend: 0.80, MixSetProfile: 0.05, MixPurchase: 0.15,
		UserZipfS: 1.2, HotCategoryShare: 0.8,
	},
	{
		Name:        "diurnal",
		Description: "sine-wave arrival rate between trough and peak, uniform mix — the daily cycle",
		Users:       10000, Products: 1200, Categories: 16, Seed: 1,
		RateOpsS: 200, DurationS: 40, Shape: ShapeSine, SineMinFrac: 0.2,
		MixRecommend: 0.70, MixSetProfile: 0.15, MixPurchase: 0.15,
	},
	{
		Name:        "churn-spill",
		Description: "sustained consumer churn growing the community under WithMaxResidentShards memory pressure, so cold shards spill and fault back in",
		Users:       6000, Products: 800, Categories: 16, Seed: 1,
		RateOpsS: 120, DurationS: 25,
		MixRecommend: 0.50, MixSetProfile: 0.40, MixPurchase: 0.10,
		ChurnFraction:     0.6,
		MaxResidentShards: 4,
	},
	{
		Name:        "cold-follower",
		Description: "a cold server joins a replicated deployment mid-run and bootstraps every shard via paged snapshots while sustained writes continue",
		Users:       8000, Products: 1000, Categories: 16, Seed: 1,
		RateOpsS: 120, DurationS: 30,
		MixRecommend: 0.40, MixSetProfile: 0.25, MixPurchase: 0.35,
		ColdFollower: true, ColdFollowerDelayS: 5,
	},
	{
		Name:        "failover",
		Description: "kill-the-owner chaos drill: mid-run the busiest owner stops renewing its coordinator lease and refuses writes; the most caught-up follower is promoted, blocked writes retry through the transition, and the run measures the write-unavailability window, fenced stale-epoch replays, and post-promotion divergence (must be zero)",
		Users:       8000, Products: 1000, Categories: 16, Seed: 1,
		RateOpsS: 120, DurationS: 30,
		MixRecommend: 0.40, MixSetProfile: 0.30, MixPurchase: 0.30,
		Failover: true, FailoverDelayS: 10, FailoverLeaseMs: 1000,
	},
	{
		Name:        "shilling",
		Description: "profile-shilling attack: fake consumers mimic the hot category's taste and all buy one promoted product; measures CF rank displacement and neighbourhood contamination",
		Users:       8000, Products: 1000, Categories: 16, Seed: 1,
		RateOpsS: 150, DurationS: 30,
		MixRecommend: 0.55, MixSetProfile: 0.30, MixPurchase: 0.15,
		HotCategoryShare: 0.5,
		ShillFraction:    0.5, ShillProbes: 100,
	},
}

// Scenarios returns the built-in scenario names, sorted.
func Scenarios() []string {
	out := make([]string, len(Library))
	for i, s := range Library {
		out[i] = s.Name
	}
	sort.Strings(out)
	return out
}

// Lookup resolves a built-in scenario by name.
func Lookup(name string) (Scenario, bool) {
	for _, s := range Library {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// LoadScenario reads a scenario document from a JSON file — the escape
// hatch that keeps the library data: a scenario nobody shipped is a file,
// not a fork.
func LoadScenario(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, err
	}
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return Scenario{}, fmt.Errorf("loadgen: parsing scenario %s: %w", path, err)
	}
	return s, nil
}

// driveConfig translates the scenario's arrival process.
func (s Scenario) driveConfig(workers int) DriveConfig {
	return DriveConfig{
		Rate:        s.RateOpsS,
		Duration:    secs(s.DurationS),
		Workers:     workers,
		Shape:       s.Shape,
		SinePeriod:  secs(s.SinePeriodS),
		SineMinFrac: s.SineMinFrac,
	}
}

// trafficConfig translates the scenario's mix for a generated universe.
func (s Scenario) trafficConfig(shillTarget string) workload.TrafficConfig {
	return workload.TrafficConfig{
		Seed:             s.Seed,
		MixRecommend:     s.MixRecommend,
		MixSetProfile:    s.MixSetProfile,
		MixPurchase:      s.MixPurchase,
		UserZipfS:        s.UserZipfS,
		HotCategoryShare: s.HotCategoryShare,
		ChurnFraction:    s.ChurnFraction,
		ShillFraction:    s.ShillFraction,
		ShillTarget:      shillTarget,
	}
}
