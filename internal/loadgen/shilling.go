package loadgen

import (
	"sort"
	"strings"

	"agentrec/internal/recommend"
	"agentrec/internal/workload"
)

// Shilling measurement: the shilling scenario installs fake consumers whose
// profiles mimic the hot category's taste and who all purchase one promoted
// target product. The attack's success is measured on probe consumers —
// genuine seeded users with taste for the hot category — by comparing the
// target's CF rank before and after the run, and by how far shill
// identities have penetrated the probes' CF neighbourhoods.

// ShillResult is the measured impact of a profile-shilling run.
type ShillResult struct {
	TargetProduct string `json:"target_product"`
	HotCategory   string `json:"hot_category"`
	ShillProfiles int64  `json:"shill_profiles"` // attack identities installed
	Probes        int    `json:"probes"`         // genuine consumers measured
	TopN          int    `json:"top_n"`

	// Rank displacement: the target's position in each probe's top-N CF
	// list (absent = TopN+1), averaged, before vs after. Positive
	// displacement = the attack promoted the target.
	TargetInTopNBefore   int     `json:"target_in_topn_before"`
	TargetInTopNAfter    int     `json:"target_in_topn_after"`
	MeanTargetRankBefore float64 `json:"mean_target_rank_before"`
	MeanTargetRankAfter  float64 `json:"mean_target_rank_after"`
	MeanRankDisplacement float64 `json:"mean_rank_displacement"`

	// MeanTopNOverlap is |before ∩ after| / |before| averaged over probes
	// with a non-empty before list — recommendation stability (a recall
	// proxy: how much of the honest top-N survived the attack).
	MeanTopNOverlap float64 `json:"mean_topn_overlap"`

	// MeanNeighborShillShare is the fraction of each probe's CF
	// neighbourhood occupied by shill identities after the run.
	MeanNeighborShillShare float64 `json:"mean_neighbor_shill_share"`
}

// shillProbeState carries the pre-attack baseline between the two
// measurement passes.
type shillProbeState struct {
	target      string
	hotCategory string
	topN        int
	probes      []string
	rankBefore  []int // TopN+1 = absent
	topBefore   [][]string
}

// rankOf returns pid's 1-based rank in recs, or absent (= topN+1).
func rankOf(recs []recommend.Rec, pid string, topN int) int {
	for i, r := range recs {
		if r.ProductID == pid {
			return i + 1
		}
	}
	return topN + 1
}

func recIDs(recs []recommend.Rec) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.ProductID
	}
	return out
}

// shillBaseline measures the pre-attack CF state: probe consumers are the
// first `probes` seeded users (by id) with taste for the hot category.
// Probe reads tolerate CF cold-start errors (an empty list is itself the
// baseline).
func shillBaseline(eng *recommend.Engine, u *workload.Universe, tr *workload.Traffic, target string, probes, topN int) *shillProbeState {
	st := &shillProbeState{target: target, hotCategory: tr.HotCategory(), topN: topN}
	ids := make([]string, 0, probes)
	for _, usr := range u.Users {
		if _, ok := usr.Tastes[st.hotCategory]; ok {
			ids = append(ids, usr.ID)
		}
	}
	sort.Strings(ids)
	if len(ids) > probes {
		ids = ids[:probes]
	}
	st.probes = ids
	for _, id := range ids {
		recs, err := eng.Recommend(recommend.StrategyCF, id, st.hotCategory, topN)
		if err != nil {
			recs = nil
		}
		st.rankBefore = append(st.rankBefore, rankOf(recs, target, topN))
		st.topBefore = append(st.topBefore, recIDs(recs))
	}
	return st
}

// finish re-measures the probes post-attack and assembles the result.
func (st *shillProbeState) finish(eng *recommend.Engine, shillProfiles int64) *ShillResult {
	res := &ShillResult{
		TargetProduct: st.target,
		HotCategory:   st.hotCategory,
		ShillProfiles: shillProfiles,
		Probes:        len(st.probes),
		TopN:          st.topN,
	}
	if len(st.probes) == 0 {
		return res
	}
	var rankBeforeSum, rankAfterSum int
	var overlapSum float64
	overlapN := 0
	var shareSum float64
	shareN := 0
	for i, id := range st.probes {
		recs, err := eng.Recommend(recommend.StrategyCF, id, st.hotCategory, st.topN)
		if err != nil {
			recs = nil
		}
		rb := st.rankBefore[i]
		ra := rankOf(recs, st.target, st.topN)
		if rb <= st.topN {
			res.TargetInTopNBefore++
		}
		if ra <= st.topN {
			res.TargetInTopNAfter++
		}
		rankBeforeSum += rb
		rankAfterSum += ra
		if before := st.topBefore[i]; len(before) > 0 {
			after := make(map[string]bool, len(recs))
			for _, pid := range recIDs(recs) {
				after[pid] = true
			}
			kept := 0
			for _, pid := range before {
				if after[pid] {
					kept++
				}
			}
			overlapSum += float64(kept) / float64(len(before))
			overlapN++
		}
		if nbrs, err := eng.Neighbors(id, st.hotCategory, recommend.SearchExact); err == nil && len(nbrs) > 0 {
			shills := 0
			for _, nb := range nbrs {
				if strings.HasPrefix(nb.UserID, "shill-") {
					shills++
				}
			}
			shareSum += float64(shills) / float64(len(nbrs))
			shareN++
		}
	}
	n := float64(len(st.probes))
	res.MeanTargetRankBefore = float64(rankBeforeSum) / n
	res.MeanTargetRankAfter = float64(rankAfterSum) / n
	res.MeanRankDisplacement = res.MeanTargetRankBefore - res.MeanTargetRankAfter
	if overlapN > 0 {
		res.MeanTopNOverlap = overlapSum / float64(overlapN)
	}
	if shareN > 0 {
		res.MeanNeighborShillShare = shareSum / float64(shareN)
	}
	return res
}
