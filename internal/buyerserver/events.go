package buyerserver

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"agentrec/internal/ops"
)

// This file is HttpA's observability surface: the live event stream
// (GET /events, SSE or NDJSON) and the unified stats snapshot
// (GET /metrics/snapshot), both speaking the ops model.

// WithEventBus exposes bus on the server's HTTP surface: GET /events
// streams it (SSE or NDJSON) with ?kinds= filtering and Last-Event-ID
// resume. Without it the endpoint answers 404.
func WithEventBus(bus *ops.Bus) Option {
	return func(s *Server) { s.events = bus }
}

// WithMetrics makes GET /metrics/snapshot answer with fn's snapshot — in a
// platform deployment, the whole-platform view (platform.Platform.Metrics).
// Without it the endpoint answers with this server's engine alone.
func WithMetrics(fn func() ops.Snapshot) Option {
	return func(s *Server) { s.metrics = fn }
}

// metricsSnapshot is the /metrics/snapshot payload: the platform view when
// wired, this engine's slice of the ops model otherwise.
func (s *Server) metricsSnapshot() ops.Snapshot {
	if s.metrics != nil {
		return s.metrics()
	}
	return ops.Snapshot{
		AtEpochMs: time.Now().UnixMilli(),
		Servers:   []ops.ServerSnapshot{{Engine: s.engine.Stats().EventView()}},
	}
}

func (s *Server) handleMetricsSnapshot(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.metricsSnapshot())
}

// handleEvents streams the platform's event plane:
//
//	GET /events?kinds=journal,lag        filter to listed kinds (default all)
//	Accept: text/event-stream            SSE framing (also ?format=sse)
//	Last-Event-ID: <seq>                 resume after a disconnect (also ?after=)
//
// Default framing is NDJSON, one ops.Event per line. In SSE framing every
// event carries its bus sequence as the SSE id, so a reconnecting client's
// Last-Event-ID resumes exactly: events still in the bus's replay ring are
// redelivered gap- and duplicate-free; events already pruned surface as one
// `dropped` marker first. A consumer slower than the stream loses oldest
// events the same way — marked, never silently.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.events == nil {
		writeJSON(w, http.StatusNotFound, httpError{Error: "event plane disabled (start the platform with events enabled)"})
		return
	}
	opt := ops.SubscribeOptions{}
	if raw := r.URL.Query().Get("kinds"); raw != "" {
		for _, k := range strings.Split(raw, ",") {
			kind := ops.Kind(strings.TrimSpace(k))
			if !ops.ValidKind(kind) {
				writeJSON(w, http.StatusBadRequest, httpError{Error: fmt.Sprintf("unknown event kind %q", kind)})
				return
			}
			opt.Kinds = append(opt.Kinds, kind)
		}
	}
	if lastID := firstOf(r.Header.Get("Last-Event-ID"), r.URL.Query().Get("after")); lastID != "" {
		after, err := strconv.ParseUint(lastID, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, httpError{Error: fmt.Sprintf("bad Last-Event-ID %q", lastID)})
			return
		}
		opt.Resume = true
		opt.AfterSeq = after
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, httpError{Error: "response writer cannot stream"})
		return
	}
	sse := r.URL.Query().Get("format") == "sse" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	sub := s.events.Subscribe(opt)
	defer sub.Close()
	ctx := r.Context()
	for {
		ev, err := sub.Next(ctx)
		if err != nil {
			return // client disconnected or bus closed
		}
		data, err := json.Marshal(ev)
		if err != nil {
			return
		}
		if sse {
			// Synthetic drop markers carry no bus seq; omitting the id line
			// keeps the client's Last-Event-ID pointing at real events.
			if ev.Seq != 0 {
				fmt.Fprintf(w, "id: %d\n", ev.Seq)
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, data)
		} else {
			w.Write(data)
			w.Write([]byte("\n"))
		}
		flusher.Flush()
	}
}

func firstOf(vals ...string) string {
	for _, v := range vals {
		if v != "" {
			return v
		}
	}
	return ""
}
