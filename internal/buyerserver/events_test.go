package buyerserver

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"agentrec/internal/ops"
)

// sseEvent is one parsed server-sent event frame.
type sseEvent struct {
	id   uint64 // 0 when the frame carried no id line (drop markers)
	kind string
	ev   ops.Event
}

// readSSE parses count frames off an open SSE stream.
func readSSE(t *testing.T, sc *bufio.Scanner, count int) []sseEvent {
	t.Helper()
	var out []sseEvent
	cur := sseEvent{}
	for len(out) < count && sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			out = append(out, cur)
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.ParseUint(line[len("id: "):], 10, 64)
			if err != nil {
				t.Fatalf("bad id line %q: %v", line, err)
			}
			cur.id = id
		case strings.HasPrefix(line, "event: "):
			cur.kind = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(line[len("data: "):]), &cur.ev); err != nil {
				t.Fatalf("bad data line %q: %v", line, err)
			}
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if len(out) < count {
		t.Fatalf("stream ended after %d of %d events: %v", len(out), count, sc.Err())
	}
	return out
}

// TestEventsSSEResume is the wire-level resume contract: a client that
// disconnects mid-stream and reconnects with Last-Event-ID sees every event
// within the bus's replay retention exactly once — no gap, no duplicate —
// and then keeps receiving live events.
func TestEventsSSEResume(t *testing.T) {
	bus := ops.NewBus()
	defer bus.Close()
	m := newMechanism(t, 1, WithEventBus(bus))
	ts := httptest.NewServer(m.srv.HTTPHandler())
	defer ts.Close()

	publish := func(n int) {
		for i := 0; i < n; i++ {
			bus.Publish(ops.Event{Kind: ops.KindJournal, Journal: ops.JournalEvent{Shard: i, Seq: uint64(i + 1)}})
		}
	}
	publish(10)

	resp, err := http.Get(ts.URL + "/events?kinds=journal&format=sse&after=0")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	first := readSSE(t, bufio.NewScanner(resp.Body), 4)
	resp.Body.Close() // disconnect mid-stream

	var lastID uint64
	for i, ev := range first {
		if ev.kind != "journal" || ev.id == 0 {
			t.Fatalf("event %d: kind=%q id=%d, want a journal event with an id", i, ev.kind, ev.id)
		}
		if ev.id != ev.ev.Seq {
			t.Fatalf("event %d: SSE id %d != payload seq %d", i, ev.id, ev.ev.Seq)
		}
		if ev.id <= lastID {
			t.Fatalf("event %d: id %d not increasing past %d", i, ev.id, lastID)
		}
		lastID = ev.id
	}

	publish(5) // events the client misses while disconnected

	req, err := http.NewRequest("GET", ts.URL+"/events?kinds=journal&format=sse", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", strconv.FormatUint(lastID, 10))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sc := bufio.NewScanner(resp2.Body)

	// 6 replayed (the rest of the first batch + the missed batch), then one
	// live event published while this stream is open.
	resumed := readSSE(t, sc, 15-int(lastID))
	bus.Publish(ops.Event{Kind: ops.KindJournal, Journal: ops.JournalEvent{Shard: 99, Seq: 99}})
	live := readSSE(t, sc, 1)

	want := lastID
	for i, ev := range append(resumed, live[0]) {
		want++
		if ev.id != want {
			t.Fatalf("resumed event %d: id %d, want %d (gap or duplicate)", i, ev.id, want)
		}
		if ev.kind == string(ops.KindDropped) {
			t.Fatalf("resumed event %d: unexpected drop marker within ring retention", i)
		}
	}
	if live[0].ev.Journal.Shard != 99 {
		t.Fatalf("live event shard = %d, want 99", live[0].ev.Journal.Shard)
	}
}

// TestEventsEndpointNDJSON covers the default framing and kind filtering.
func TestEventsEndpointNDJSON(t *testing.T) {
	bus := ops.NewBus()
	defer bus.Close()
	m := newMechanism(t, 1, WithEventBus(bus))
	ts := httptest.NewServer(m.srv.HTTPHandler())
	defer ts.Close()

	bus.Publish(ops.Event{Kind: ops.KindJournal, Journal: ops.JournalEvent{Shard: 1, Seq: 1}})
	bus.Publish(ops.Event{Kind: ops.KindLag, Lag: ops.LagEvent{Shard: 2, LagRecords: 7}})
	bus.Publish(ops.Event{Kind: ops.KindJournal, Journal: ops.JournalEvent{Shard: 3, Seq: 2}})

	resp, err := http.Get(ts.URL + "/events?kinds=lag&after=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	line, err := bufio.NewReader(resp.Body).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	var ev ops.Event
	if err := json.Unmarshal([]byte(line), &ev); err != nil {
		t.Fatalf("bad NDJSON line %q: %v", line, err)
	}
	if ev.Kind != ops.KindLag || ev.Lag.LagRecords != 7 {
		t.Fatalf("got %+v, want the lag event", ev)
	}
}

// TestEventsEndpointErrors: disabled plane and bad parameters.
func TestEventsEndpointErrors(t *testing.T) {
	m := newMechanism(t, 1) // no bus
	ts := httptest.NewServer(m.srv.HTTPHandler())
	defer ts.Close()

	for _, tc := range []struct {
		path string
		want int
	}{
		{"/events", http.StatusNotFound},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("GET %s = %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}

	bus := ops.NewBus()
	defer bus.Close()
	m2 := newMechanism(t, 1, WithEventBus(bus))
	ts2 := httptest.NewServer(m2.srv.HTTPHandler())
	defer ts2.Close()
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/events?kinds=bogus", http.StatusBadRequest},
		{"/events?after=notanumber", http.StatusBadRequest},
	} {
		resp, err := http.Get(ts2.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("GET %s = %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
}

// TestMetricsSnapshotEndpoint: without WithMetrics the endpoint serves this
// server's engine view.
func TestMetricsSnapshotEndpoint(t *testing.T) {
	m := newMechanism(t, 1)
	m.user(t, "alice")
	ts := httptest.NewServer(m.srv.HTTPHandler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var snap ops.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("bad snapshot %s: %v", body, err)
	}
	if len(snap.Servers) != 1 {
		t.Fatalf("snapshot has %d servers, want 1: %s", len(snap.Servers), body)
	}
	if snap.AtEpochMs == 0 {
		t.Fatal("snapshot missing at_epoch_ms")
	}
	// Agent-first field names on the wire.
	for _, field := range []string{"at_epoch_ms", "journal_bytes", "live_bytes"} {
		if !strings.Contains(string(body), fmt.Sprintf("%q", field)) {
			t.Fatalf("snapshot JSON missing field %q: %s", field, body)
		}
	}
}
