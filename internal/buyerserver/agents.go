package buyerserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"agentrec/internal/aglet"
	"agentrec/internal/catalog"
	"agentrec/internal/coordinator"
	"agentrec/internal/marketplace"
	"agentrec/internal/profile"
	"agentrec/internal/recommend"
)

// Message kinds exchanged among the mechanism's agents. Coordination is
// exclusively by message passing (§4.1 principle 6).
const (
	kindRegister = "register"
	kindLogin    = "login"
	kindLogout   = "logout"
	kindHTTPTask = "http-task"
	kindTask     = "task"
	kindEmbark   = "embark"
	kindMBAHome  = "mba-home"
	kindTaskDone = "task-complete"
	kindObserve  = "observe-batch"
	kindOK       = "ok"
)

type userReq struct {
	UserID string `json:"user_id"`
}

type loginReply struct {
	Inbox []TaskResult `json:"inbox,omitempty"`
}

type taskReq struct {
	UserID string   `json:"user_id"`
	Spec   TaskSpec `json:"spec"`
}

type taskAck struct {
	TaskID string `json:"task_id"`
	MBAID  string `json:"mba_id"`
}

// mbaState is everything a Mobile Buyer Agent carries: its assignment, its
// route, what it has gathered, and its credentials for re-entry (§4.1
// principle 2). It is the agent's serialized form for every migration.
type mbaState struct {
	UserID   string            `json:"user_id"`
	Spec     TaskSpec          `json:"spec"`
	It       aglet.Itinerary   `json:"itinerary"`
	Results  []MarketResult    `json:"results,omitempty"`
	Sale     *marketplace.Sale `json:"sale,omitempty"`
	Token    string            `json:"token"`
	Nonce    string            `json:"nonce"`
	Response string            `json:"response"`
	TripLog  []string          `json:"trip_log,omitempty"`
}

type mbaHomeReply struct {
	Accepted bool `json:"accepted"`
}

// observeEvent is one behavioural observation sent to the Profile Agent.
type observeEvent struct {
	Evidence profile.Evidence  `json:"evidence"`
	Sale     *marketplace.Sale `json:"sale,omitempty"`
}

type observeBatch struct {
	UserID   string         `json:"user_id"`
	Events   []observeEvent `json:"events"`
	Workflow string         `json:"workflow"`
	Step     int            `json:"step"`
}

func marshalMsg(kind string, v any) (aglet.Message, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return aglet.Message{}, fmt.Errorf("buyerserver: encoding %s: %w", kind, err)
	}
	return aglet.Message{Kind: kind, Data: data}, nil
}

func agentCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 30*time.Second)
}

// --- BSMA -------------------------------------------------------------

// bsmaAgent is the Buyer Server Management Agent: "the manager of Buyer
// Agent Server" (§3.3) — registration and login, agent management, and the
// authentication gate for returning MBAs.
type bsmaAgent struct {
	aglet.Base
	srv *Server
	st  coordinator.BSMAState
}

// OnCreation handles standalone creation (no coordinator): init is the home
// host name; setup runs immediately (Fig 4.1 steps 4–6).
func (a *bsmaAgent) OnCreation(ctx *aglet.Context, init []byte) error {
	a.st.Home = string(init)
	return a.setup(ctx)
}

// OnArrival completes a coordinated Fig 4.1 creation: the BSMA just landed
// (dispatched by the CA) and now sets up the mechanism.
func (a *bsmaAgent) OnArrival(ctx *aglet.Context) error {
	return a.setup(ctx)
}

// setup performs Fig 4.1 steps 4–6: create the Profile Agent, create the
// HttpA agent, initialize the databases.
func (a *bsmaAgent) setup(ctx *aglet.Context) error {
	s := a.srv
	s.tracer.Record("creation", 4, "BSMA", "PA", "create profile agent")
	if _, err := s.host.Create("pa", PAID, nil); err != nil {
		return fmt.Errorf("buyerserver: creating PA: %w", err)
	}
	s.tracer.Record("creation", 5, "BSMA", "HttpA", "create HttpA agent")
	if _, err := s.host.Create("httpa", HttpAID, nil); err != nil {
		return fmt.Errorf("buyerserver: creating HttpA: %w", err)
	}
	s.tracer.Record("creation", 6, "BSMA", "DB", "initialize UserDB and BSMDB")
	if err := s.userDB.Put(bucketMeta, "created", []byte(s.host.Name())); err != nil {
		return err
	}
	return s.bsmDB.Put(bucketMeta, "created", []byte(s.host.Name()))
}

func (a *bsmaAgent) State() ([]byte, error)     { return json.Marshal(a.st) }
func (a *bsmaAgent) SetState(data []byte) error { return json.Unmarshal(data, &a.st) }

func (a *bsmaAgent) HandleMessage(ctx *aglet.Context, msg aglet.Message) (aglet.Message, error) {
	switch msg.Kind {
	case kindRegister:
		var req userReq
		if err := json.Unmarshal(msg.Data, &req); err != nil {
			return aglet.Message{}, fmt.Errorf("buyerserver: bad register: %w", err)
		}
		return a.register(req.UserID)
	case kindLogin:
		var req userReq
		if err := json.Unmarshal(msg.Data, &req); err != nil {
			return aglet.Message{}, fmt.Errorf("buyerserver: bad login: %w", err)
		}
		return a.login(req.UserID)
	case kindLogout:
		var req userReq
		if err := json.Unmarshal(msg.Data, &req); err != nil {
			return aglet.Message{}, fmt.Errorf("buyerserver: bad logout: %w", err)
		}
		return a.logout(req.UserID)
	case kindTask:
		var req taskReq
		if err := json.Unmarshal(msg.Data, &req); err != nil {
			return aglet.Message{}, fmt.Errorf("buyerserver: bad task: %w", err)
		}
		return a.assignTask(ctx, req)
	case kindMBAHome:
		var st mbaState
		if err := json.Unmarshal(msg.Data, &st); err != nil {
			return aglet.Message{}, fmt.Errorf("buyerserver: bad mba-home: %w", err)
		}
		return a.mbaHome(ctx, st)
	default:
		return aglet.Message{}, fmt.Errorf("buyerserver: BSMA does not understand %q", msg.Kind)
	}
}

func (a *bsmaAgent) register(userID string) (aglet.Message, error) {
	s := a.srv
	exists, err := s.userDB.Has(bucketUsers, userID)
	if err != nil {
		return aglet.Message{}, err
	}
	if exists {
		return aglet.Message{}, fmt.Errorf("%w: %s", ErrUserExists, userID)
	}
	rec := UserRecord{ID: userID, RegisteredAt: time.Now()}
	if err := s.userDB.EncodeJSON(bucketUsers, userID, rec); err != nil {
		return aglet.Message{}, err
	}
	p := profile.NewProfile(userID)
	if err := s.storeProfile(p); err != nil {
		return aglet.Message{}, err
	}
	if err := s.writes.SetProfile(p); err != nil {
		return aglet.Message{}, err
	}
	return aglet.Message{Kind: kindOK}, nil
}

func (a *bsmaAgent) login(userID string) (aglet.Message, error) {
	s := a.srv
	var rec UserRecord
	if err := s.userDB.DecodeJSON(bucketUsers, userID, &rec); err != nil {
		return aglet.Message{}, fmt.Errorf("%w: %s", ErrUnknownUser, userID)
	}
	id := braID(userID)
	if s.host.Has(id) {
		return aglet.Message{}, fmt.Errorf("%w: %s", ErrAlreadyOnline, userID)
	}
	if s.host.HasStored(id) {
		// A parked BRA from an interrupted session: revive it.
		if _, err := s.host.Activate(id); err != nil {
			return aglet.Message{}, err
		}
	} else {
		if _, err := s.host.Create("bra", id, []byte(userID)); err != nil {
			return aglet.Message{}, err
		}
	}
	rec.Logins++
	rec.Online = true
	if err := s.userDB.EncodeJSON(bucketUsers, userID, rec); err != nil {
		return aglet.Message{}, err
	}
	// Deliver results that completed while the consumer was offline.
	var inbox []TaskResult
	entries, err := s.userDB.Scan(bucketInbox, userID+"/")
	if err != nil {
		return aglet.Message{}, err
	}
	for _, e := range entries {
		var res TaskResult
		if err := json.Unmarshal(e.Value, &res); err == nil {
			inbox = append(inbox, res)
		}
		if err := s.userDB.Delete(bucketInbox, e.Key); err != nil {
			return aglet.Message{}, err
		}
	}
	return marshalMsg(kindLogin, loginReply{Inbox: inbox})
}

func (a *bsmaAgent) logout(userID string) (aglet.Message, error) {
	s := a.srv
	id := braID(userID)
	switch {
	case s.host.Has(id):
		if err := s.host.Dispose(id); err != nil {
			return aglet.Message{}, err
		}
	case s.host.HasStored(id):
		if err := s.host.DiscardStored(id); err != nil {
			return aglet.Message{}, err
		}
	default:
		return aglet.Message{}, fmt.Errorf("%w: %s", ErrNotLoggedIn, userID)
	}
	var rec UserRecord
	if err := s.userDB.DecodeJSON(bucketUsers, userID, &rec); err == nil {
		rec.Online = false
		if err := s.userDB.EncodeJSON(bucketUsers, userID, rec); err != nil {
			return aglet.Message{}, err
		}
	}
	return aglet.Message{Kind: kindOK}, nil
}

// assignTask runs the front half of Figs 4.2/4.3: hand the task to the BRA
// (step 3), record the MBA in BSMDB, deactivate the BRA (§4.1 principle 3),
// and send the MBA on its way.
func (a *bsmaAgent) assignTask(ctx *aglet.Context, req taskReq) (aglet.Message, error) {
	s := a.srv
	wf := workflowName(req.Spec.Kind)
	id := braID(req.UserID)

	// A consumer whose BRA is parked (another MBA in flight) is still
	// online: revive the BRA for this assignment.
	if s.host.HasStored(id) {
		if _, err := s.host.Activate(id); err != nil {
			return aglet.Message{}, err
		}
	}
	if !s.host.Has(id) {
		return aglet.Message{}, fmt.Errorf("%w: %s", ErrNotLoggedIn, req.UserID)
	}

	s.tracer.Record(wf, 3, "BSMA", "BRA", "assign "+string(req.Spec.Kind)+" task")
	cctx, cancel := agentCtx()
	defer cancel()
	msg, err := marshalMsg(kindTask, req)
	if err != nil {
		return aglet.Message{}, err
	}
	reply, err := ctx.Send(cctx, id, msg)
	if err != nil {
		return aglet.Message{}, err
	}
	var ack taskAck
	if err := json.Unmarshal(reply.Data, &ack); err != nil {
		return aglet.Message{}, fmt.Errorf("buyerserver: bad task ack: %w", err)
	}

	// Fig 4.2 step 8 (folded into step 7 in Fig 4.3): note the MBA in BSMDB
	// and park the BRA while its MBA travels.
	if req.Spec.Kind == TaskQuery {
		s.tracer.Record(wf, 8, "BSMA", "BSMDB", "record MBA; deactivate BRA")
	}
	mrec := MBARecord{
		MBAID: ack.MBAID, TaskID: ack.TaskID, UserID: req.UserID,
		Kind: string(req.Spec.Kind), Status: "dispatched", Itinerary: req.Spec.Markets,
	}
	if err := s.bsmDB.EncodeJSON(bucketMBAs, ack.MBAID, mrec); err != nil {
		return aglet.Message{}, err
	}
	if err := s.host.Deactivate(id); err != nil {
		return aglet.Message{}, fmt.Errorf("buyerserver: parking BRA: %w", err)
	}
	// Send the MBA off; the reply comes back before the trip starts, and
	// the journey then proceeds on the MBA's own goroutine.
	if _, err := ctx.Send(cctx, ack.MBAID, aglet.Message{Kind: kindEmbark}); err != nil {
		return aglet.Message{}, fmt.Errorf("buyerserver: embarking MBA: %w", err)
	}
	return reply, nil
}

// mbaHome runs the back half of the workflows: authenticate the returning
// MBA (§4.1 principle 2), revive the BRA, deliver the gathered results, and
// hand the final answer to the waiting consumer.
func (a *bsmaAgent) mbaHome(ctx *aglet.Context, st mbaState) (aglet.Message, error) {
	s := a.srv
	wf := workflowName(st.Spec.Kind)
	mbaID := mbaID(st.Spec.TaskID)
	outStep, inStep, homeStep := 9, 10, 11
	if wf == "buy" {
		outStep, inStep, homeStep = 8, 9, 10
	}

	// Authentication gate: the travel token must verify for this exact
	// agent and the single-use nonce must answer the challenge.
	if _, err := s.tokens.Verify(st.Token, mbaID); err != nil {
		return a.rejectMBA(mbaID, st, err)
	}
	if err := s.challenger.VerifyResponse(mbaID, st.Nonce, st.Response); err != nil {
		return a.rejectMBA(mbaID, st, err)
	}

	// Replay the trip into the trace: each visited marketplace is one
	// out/in pair in the figure.
	for _, market := range st.TripLog {
		s.tracer.Record(wf, outStep, "MBA", "Marketplace", "migrate and execute at "+market)
		s.tracer.Record(wf, inStep, "Marketplace", "MBA", "results from "+market)
	}
	s.tracer.Record(wf, homeStep, "MBA", "BSMA", "return home and authenticate")
	a.updateMBARecord(mbaID, "returned")

	id := braID(st.UserID)
	if !s.host.Has(id) && !s.host.HasStored(id) {
		// Consumer logged out mid-task (§3.2: the mechanism keeps serving
		// offline consumers): update the profile directly and park the
		// result in the inbox for the next login.
		return a.completeOffline(ctx, st)
	}
	if s.host.HasStored(id) {
		if _, err := s.host.Activate(id); err != nil {
			return aglet.Message{}, err
		}
	}
	s.tracer.Record(wf, homeStep+1, "BSMA", "BRA", "activate BRA; deliver results")
	cctx, cancel := agentCtx()
	defer cancel()
	msg, err := marshalMsg(kindTaskDone, st)
	if err != nil {
		return aglet.Message{}, err
	}
	reply, err := ctx.Send(cctx, id, msg)
	if err != nil {
		return aglet.Message{}, err
	}
	var res TaskResult
	if err := json.Unmarshal(reply.Data, &res); err != nil {
		return aglet.Message{}, fmt.Errorf("buyerserver: bad task result: %w", err)
	}
	finalStep := 15
	if wf == "buy" {
		finalStep = 14
	}
	s.tracer.Record(wf, finalStep, "BRA", "Buyer", "recommendation information and results")
	s.fulfil(st.Spec.TaskID, res)
	return marshalMsg(kindMBAHome, mbaHomeReply{Accepted: true})
}

// rejectMBA records the failed authentication and reports the outcome to
// any waiter. The MBA disposes itself regardless.
func (a *bsmaAgent) rejectMBA(mbaID string, st mbaState, cause error) (aglet.Message, error) {
	a.updateMBARecord(mbaID, "rejected")
	a.srv.fulfil(st.Spec.TaskID, TaskResult{
		TaskID: st.Spec.TaskID, UserID: st.UserID, Kind: st.Spec.Kind, AuthFailed: true,
	})
	reply, err := marshalMsg(kindMBAHome, mbaHomeReply{Accepted: false})
	if err != nil {
		return aglet.Message{}, err
	}
	_ = cause // recorded via status; the waiter sees ErrAuthFailed
	return reply, nil
}

func (a *bsmaAgent) updateMBARecord(mbaID, status string) {
	var rec MBARecord
	if err := a.srv.bsmDB.DecodeJSON(bucketMBAs, mbaID, &rec); err != nil {
		return
	}
	rec.Status = status
	_ = a.srv.bsmDB.EncodeJSON(bucketMBAs, mbaID, rec)
}

// completeOffline finishes a task whose consumer is gone: profile updates
// still happen (through the PA) and the result waits in the inbox.
func (a *bsmaAgent) completeOffline(ctx *aglet.Context, st mbaState) (aglet.Message, error) {
	s := a.srv
	batch := observeBatchFor(st, workflowName(st.Spec.Kind), 0)
	cctx, cancel := agentCtx()
	defer cancel()
	msg, err := marshalMsg(kindObserve, batch)
	if err != nil {
		return aglet.Message{}, err
	}
	if _, err := ctx.Send(cctx, PAID, msg); err != nil {
		return aglet.Message{}, err
	}
	res := TaskResult{
		TaskID: st.Spec.TaskID, UserID: st.UserID, Kind: st.Spec.Kind,
		Results: st.Results, Sale: st.Sale,
	}
	if err := s.userDB.EncodeJSON(bucketInbox, st.UserID+"/"+st.Spec.TaskID, res); err != nil {
		return aglet.Message{}, err
	}
	s.fulfil(st.Spec.TaskID, res)
	return marshalMsg(kindMBAHome, mbaHomeReply{Accepted: true})
}

// --- BRA --------------------------------------------------------------

// braAgent is the Buyer Recommend Agent: one per online consumer, it loads
// the profile, launches Mobile Buyer Agents, and creates the recommendation
// information (§3.3).
type braAgent struct {
	aglet.Base
	srv *Server
	st  braState
}

type braState struct {
	UserID string `json:"user_id"`
}

func (a *braAgent) OnCreation(_ *aglet.Context, init []byte) error {
	a.st.UserID = string(init)
	return nil
}

func (a *braAgent) State() ([]byte, error)     { return json.Marshal(a.st) }
func (a *braAgent) SetState(data []byte) error { return json.Unmarshal(data, &a.st) }

func (a *braAgent) HandleMessage(ctx *aglet.Context, msg aglet.Message) (aglet.Message, error) {
	switch msg.Kind {
	case kindTask:
		var req taskReq
		if err := json.Unmarshal(msg.Data, &req); err != nil {
			return aglet.Message{}, fmt.Errorf("buyerserver: bad task: %w", err)
		}
		return a.launch(ctx, req)
	case kindTaskDone:
		var st mbaState
		if err := json.Unmarshal(msg.Data, &st); err != nil {
			return aglet.Message{}, fmt.Errorf("buyerserver: bad task-complete: %w", err)
		}
		return a.complete(ctx, st)
	default:
		return aglet.Message{}, fmt.Errorf("buyerserver: BRA does not understand %q", msg.Kind)
	}
}

// launch performs Figs 4.2/4.3 steps 4–7: load the profile, create the MBA
// with its assignment and travel credentials, and note it to the BSMA.
func (a *braAgent) launch(ctx *aglet.Context, req taskReq) (aglet.Message, error) {
	s := a.srv
	wf := workflowName(req.Spec.Kind)
	s.tracer.Record(wf, 4, "BRA", "UserDB", "load consumer profile")
	if _, err := s.loadProfile(a.st.UserID); err != nil {
		return aglet.Message{}, err
	}
	s.tracer.Record(wf, 5, "UserDB", "BRA", "profile loaded")

	id := mbaID(req.Spec.TaskID)
	nonce, err := s.challenger.Challenge(id)
	if err != nil {
		return aglet.Message{}, err
	}
	st := mbaState{
		UserID:   a.st.UserID,
		Spec:     req.Spec,
		It:       aglet.NewItinerary(s.host.Name(), req.Spec.Markets...),
		Token:    s.tokens.Issue(id, string(req.Spec.Kind), s.tokenTTL),
		Nonce:    nonce,
		Response: s.challenger.Respond(nonce, id),
	}
	init, err := json.Marshal(st)
	if err != nil {
		return aglet.Message{}, fmt.Errorf("buyerserver: encoding MBA state: %w", err)
	}
	s.tracer.Record(wf, 6, "BRA", "MBA", "create MBA and assign task")
	if _, err := s.host.Create("mba", id, init); err != nil {
		return aglet.Message{}, err
	}
	s.tracer.Record(wf, 7, "BRA", "BSMA", "note MBA information")
	return marshalMsg(kindTask, taskAck{TaskID: req.Spec.TaskID, MBAID: id})
}

// complete turns what the MBA brought home into the consumer's answer:
// behaviour goes to the Profile Agent (Fig 4.2 steps 13–14), and the
// recommendation information is generated per §4.4.
func (a *braAgent) complete(ctx *aglet.Context, st mbaState) (aglet.Message, error) {
	s := a.srv
	wf := workflowName(st.Spec.Kind)
	paStep := 13
	if wf == "buy" {
		paStep = 12
	}
	s.tracer.Record(wf, paStep, "BRA", "PA", "report consumer behaviour")
	batch := observeBatchFor(st, wf, paStep+1)
	cctx, cancel := agentCtx()
	defer cancel()
	msg, err := marshalMsg(kindObserve, batch)
	if err != nil {
		return aglet.Message{}, err
	}
	if _, err := ctx.Send(cctx, PAID, msg); err != nil {
		return aglet.Message{}, err
	}

	res := TaskResult{
		TaskID: st.Spec.TaskID, UserID: st.UserID, Kind: st.Spec.Kind,
		Results: st.Results, Sale: st.Sale,
	}
	switch st.Spec.Kind {
	case TaskQuery:
		// One snapshot serves both the query re-rank and the cross-sell:
		// all scoring in this task reads one community view (neighbour
		// enumeration tracks the live index; see Engine.indexCandidates).
		snap := s.engine.Snapshot()
		recs, err := s.engine.RecommendForQueryWith(snap, st.UserID, res.AllMatches(), 10)
		if err != nil {
			return aglet.Message{}, err
		}
		res.Recommendations = recs
		if cross, err := s.engine.RecommendWith(snap, recommend.StrategyAuto, st.UserID, st.Spec.Query.Category, 5); err == nil {
			res.CrossSell = cross
		}
	default:
		// After a purchase or auction: cross-sell from the engine (§2.3's
		// "additional products in the checkout process").
		if cross, err := s.engine.Recommend(recommend.StrategyAuto, st.UserID, "", 5); err == nil {
			res.CrossSell = cross
		}
	}
	return marshalMsg(kindTaskDone, res)
}

// --- PA ---------------------------------------------------------------

// paAgent is the Profile Agent — exactly one per mechanism (§3.3) — which
// applies the Fig 4.4 update rule for every observed behaviour and keeps
// UserDB and the recommendation engine in sync.
type paAgent struct {
	aglet.Base
	srv *Server
}

func (a *paAgent) HandleMessage(_ *aglet.Context, msg aglet.Message) (aglet.Message, error) {
	if msg.Kind != kindObserve {
		return aglet.Message{}, fmt.Errorf("buyerserver: PA does not understand %q", msg.Kind)
	}
	var batch observeBatch
	if err := json.Unmarshal(msg.Data, &batch); err != nil {
		return aglet.Message{}, fmt.Errorf("buyerserver: bad observe batch: %w", err)
	}
	s := a.srv
	p, err := s.loadProfile(batch.UserID)
	if err != nil {
		if !errors.Is(err, ErrUnknownUser) {
			return aglet.Message{}, err
		}
		p = profile.NewProfile(batch.UserID)
	}
	for _, ev := range batch.Events {
		if err := p.Observe(ev.Evidence); err != nil {
			return aglet.Message{}, err
		}
		if ev.Sale != nil {
			if err := s.writes.RecordPurchaseAt(batch.UserID, ev.Sale.ProductID, time.Now()); err != nil {
				return aglet.Message{}, err
			}
			key := batch.UserID + "/" + ev.Sale.Receipt
			if err := s.userDB.EncodeJSON(bucketTxns, key, ev.Sale); err != nil {
				return aglet.Message{}, err
			}
		}
	}
	if batch.Step > 0 {
		s.tracer.Record(batch.Workflow, batch.Step, "PA", "UserDB", "update consumer profile")
	}
	if err := s.storeProfile(p); err != nil {
		return aglet.Message{}, err
	}
	if err := s.writes.SetProfile(p); err != nil {
		return aglet.Message{}, err
	}
	return aglet.Message{Kind: kindOK}, nil
}

// observeBatchFor derives the profile evidence from a completed task: the
// query itself for query tasks (what the consumer asked for), the bought
// product for purchases, the auction's product for bids.
func observeBatchFor(st mbaState, workflow string, step int) observeBatch {
	batch := observeBatch{UserID: st.UserID, Workflow: workflow, Step: step}
	switch st.Spec.Kind {
	case TaskQuery:
		terms := make(map[string]float64, len(st.Spec.Query.Terms))
		for _, t := range st.Spec.Query.Terms {
			terms[t] = 1
		}
		if st.Spec.Query.Category != "" || len(terms) > 0 {
			batch.Events = append(batch.Events, observeEvent{Evidence: profile.Evidence{
				Category:    st.Spec.Query.Category,
				Terms:       terms,
				SubCategory: st.Spec.Query.SubCategory,
				Behaviour:   profile.BehaviourQuery,
				At:          time.Now(),
			}})
		}
	case TaskBuy:
		for _, mr := range st.Results {
			for _, m := range mr.Matches {
				behaviour := profile.BehaviourQuery
				var sale *marketplace.Sale
				if st.Sale != nil && st.Sale.ProductID == m.Product.ID && mr.Sale != nil {
					behaviour = profile.BehaviourBuy
					sale = st.Sale
				}
				ev := m.Product.Evidence(behaviour)
				ev.At = time.Now()
				batch.Events = append(batch.Events, observeEvent{Evidence: ev, Sale: sale})
			}
		}
	case TaskAuction:
		for _, mr := range st.Results {
			for _, m := range mr.Matches {
				ev := m.Product.Evidence(profile.BehaviourBid)
				ev.At = time.Now()
				batch.Events = append(batch.Events, observeEvent{Evidence: ev})
			}
		}
	}
	return batch
}

// --- MBA --------------------------------------------------------------

// mbaID derives the agent id of a task's Mobile Buyer Agent.
func mbaID(taskID string) string { return "mba:" + taskID }

// RegisterMBAType registers the Mobile Buyer Agent factory on reg. Every
// host an MBA can land on — marketplaces included — must call this.
func RegisterMBAType(reg *aglet.Registry) {
	reg.Register("mba", func() aglet.Aglet { return &mbaAgent{} })
}

// mbaAgent is the Mobile Buyer Agent: created by a BRA with an assignment,
// it migrates along its itinerary, trades with each marketplace's MSA, and
// returns home to authenticate and deliver (§3.3, §4.1).
type mbaAgent struct {
	aglet.Base
	st mbaState
}

func (a *mbaAgent) OnCreation(_ *aglet.Context, init []byte) error {
	return json.Unmarshal(init, &a.st)
}

func (a *mbaAgent) State() ([]byte, error)     { return json.Marshal(a.st) }
func (a *mbaAgent) SetState(data []byte) error { return json.Unmarshal(data, &a.st) }

// HandleMessage accepts the embark order: the reply goes out first, then
// the runtime performs the requested dispatch, so the whole journey runs on
// this agent's own goroutine.
func (a *mbaAgent) HandleMessage(ctx *aglet.Context, msg aglet.Message) (aglet.Message, error) {
	if msg.Kind != kindEmbark {
		return aglet.Message{}, fmt.Errorf("buyerserver: MBA does not understand %q", msg.Kind)
	}
	ctx.RequestDispatch(a.st.It.Current())
	return aglet.Message{Kind: kindOK}, nil
}

// OnArrival is the MBA's program: work at a marketplace and hop on, or
// deliver at home and dispose.
func (a *mbaAgent) OnArrival(ctx *aglet.Context) error {
	here := ctx.HostName()
	if here == a.st.It.Home {
		a.deliver(ctx)
		ctx.RequestDispose()
		return nil
	}
	a.st.TripLog = append(a.st.TripLog, here)
	a.st.Results = append(a.st.Results, a.perform(ctx, here))

	next, it := a.st.It.Advance()
	a.st.It = it
	if a.st.Sale != nil {
		// Purchase made: the remaining stops are moot, head home.
		next = a.st.It.Home
		a.st.It.Index = len(a.st.It.Stops)
	}
	ctx.RequestDispatch(next)
	return nil
}

// OnDispatchFailure makes the MBA resilient to unreachable marketplaces: a
// failed hop is recorded as an error result for that stop and the trip
// continues to the next destination. If home itself is unreachable the
// agent disposes rather than haunt a marketplace forever; the waiting task
// times out and the BSMDB record stays "dispatched" for the operator.
func (a *mbaAgent) OnDispatchFailure(ctx *aglet.Context, dest string, err error) {
	if dest == a.st.It.Home {
		ctx.RequestDispose()
		return
	}
	a.st.Results = append(a.st.Results, MarketResult{Market: dest, Err: "unreachable: " + err.Error()})
	next, it := a.st.It.Advance()
	a.st.It = it
	ctx.RequestDispatch(next)
}

var _ aglet.DispatchFailureHandler = (*mbaAgent)(nil)

// deliver hands the gathered state to the BSMA and ends the trip. Delivery
// failures cannot be reported anywhere — the agent is the message — so the
// result is recorded in the Err field of a final synthetic MarketResult
// only when the send itself fails.
func (a *mbaAgent) deliver(ctx *aglet.Context) {
	cctx, cancel := agentCtx()
	defer cancel()
	msg, err := marshalMsg(kindMBAHome, a.st)
	if err != nil {
		return
	}
	_, _ = ctx.Send(cctx, BSMAID, msg)
}

// perform executes the assignment against the local marketplace's MSA.
func (a *mbaAgent) perform(ctx *aglet.Context, market string) MarketResult {
	res := MarketResult{Market: market}
	switch a.st.Spec.Kind {
	case TaskQuery:
		var qr marketplace.QueryReply
		if err := a.call(ctx, marketplace.KindQuery, marketplace.QueryRequest{Query: a.st.Spec.Query}, &qr); err != nil {
			res.Err = err.Error()
			return res
		}
		res.Matches = qr.Matches
	case TaskBuy:
		a.performBuy(ctx, &res)
	case TaskAuction:
		a.performAuction(ctx, &res)
	default:
		res.Err = fmt.Sprintf("unknown task kind %q", a.st.Spec.Kind)
	}
	return res
}

func (a *mbaAgent) performBuy(ctx *aglet.Context, res *MarketResult) {
	var gr marketplace.GetReply
	if err := a.call(ctx, marketplace.KindGet, marketplace.GetRequest{ProductID: a.st.Spec.ProductID}, &gr); err != nil {
		res.Err = err.Error()
		return
	}
	res.Matches = []catalog.Match{{Product: gr.Product}}
	budget := a.st.Spec.BudgetCents

	if a.st.Spec.Probe {
		a.probe(ctx, res, gr.Product)
		return
	}
	if a.st.Spec.Negotiate && budget > 0 {
		a.haggle(ctx, res, gr.Product, budget)
		return
	}
	var br marketplace.BuyReply
	err := a.call(ctx, marketplace.KindBuy, marketplace.BuyRequest{
		BuyerID: a.st.UserID, ProductID: a.st.Spec.ProductID, MaxPriceCents: budget,
	}, &br)
	if err != nil {
		res.Err = err.Error()
		return
	}
	res.Sale = &br.Sale
	a.st.Sale = &br.Sale
}

// haggle negotiates with the local seller using the shared concession rule.
func (a *mbaAgent) haggle(ctx *aglet.Context, res *MarketResult, p *catalog.Product, budget int64) {
	offer := int64(0.7 * float64(p.PriceCents))
	if offer > budget {
		offer = budget
	}
	var reply marketplace.NegoReply
	err := a.call(ctx, marketplace.KindNegoOpen, marketplace.NegoOpenRequest{
		BuyerID: a.st.UserID, ProductID: p.ID, OfferCents: offer,
	}, &reply)
	if err != nil {
		res.Err = err.Error()
		return
	}
	for !reply.Over {
		next := marketplace.BuyerNextOffer(offer, reply.AskCents, budget)
		if next <= offer {
			break // cannot improve within budget
		}
		offer = next
		if err := a.call(ctx, marketplace.KindNegoOffer, marketplace.NegoOfferRequest{
			SessionID: reply.SessionID, OfferCents: offer,
		}, &reply); err != nil {
			res.Err = err.Error()
			return
		}
	}
	res.Nego = &reply
	if reply.Accepted && reply.Sale != nil {
		res.Sale = reply.Sale
		a.st.Sale = reply.Sale
	}
}

// probe runs the price-discovery negotiation: raise offers below the ask
// until the seller's concessions dry up, learning the achievable floor
// without buying. The final NegoReply (with the settled ask) is the answer.
func (a *mbaAgent) probe(ctx *aglet.Context, res *MarketResult, p *catalog.Product) {
	offer := int64(0.8 * float64(p.PriceCents))
	var reply marketplace.NegoReply
	err := a.call(ctx, marketplace.KindNegoOpen, marketplace.NegoOpenRequest{
		BuyerID: a.st.UserID, ProductID: p.ID, OfferCents: offer,
	}, &reply)
	if err != nil {
		res.Err = err.Error()
		return
	}
	for !reply.Over {
		next, done := marketplace.ProbeNextOffer(offer, reply.AskCents)
		if done {
			break
		}
		offer = next
		if err := a.call(ctx, marketplace.KindNegoOffer, marketplace.NegoOfferRequest{
			SessionID: reply.SessionID, OfferCents: offer,
		}, &reply); err != nil {
			res.Err = err.Error()
			return
		}
	}
	res.Nego = &reply
}

// performAuction inspects the auction and places one bid within budget.
func (a *mbaAgent) performAuction(ctx *aglet.Context, res *MarketResult) {
	var st marketplace.AuctionStatus
	if err := a.call(ctx, marketplace.KindAuctionState, marketplace.AuctionCloseRequest{AuctionID: a.st.Spec.AuctionID}, &st); err != nil {
		res.Err = err.Error()
		return
	}
	// Fetch the product for the profile evidence.
	var gr marketplace.GetReply
	if err := a.call(ctx, marketplace.KindGet, marketplace.GetRequest{ProductID: st.ProductID}, &gr); err == nil {
		res.Matches = []catalog.Match{{Product: gr.Product}}
	}
	bid := nextBid(st, a.st.Spec.BudgetCents)
	if st.Closed || bid <= 0 {
		res.Auction = &st
		return
	}
	var after marketplace.AuctionStatus
	if err := a.call(ctx, marketplace.KindAuctionBid, marketplace.AuctionBidRequest{
		AuctionID: a.st.Spec.AuctionID, BidderID: a.st.UserID, AmountCents: bid,
	}, &after); err != nil {
		res.Err = err.Error()
		res.Auction = &st
		return
	}
	res.Auction = &after
}

// nextBid picks the minimal competitive bid within budget: 5% over the high
// bid (at least one dollar), or the reserve for an untouched auction. Zero
// means "do not bid".
func nextBid(st marketplace.AuctionStatus, budget int64) int64 {
	var bid int64
	if st.HighBid == 0 {
		bid = st.ReserveCents
		if bid == 0 {
			bid = 100
		}
	} else {
		inc := st.HighBid / 20
		if inc < 100 {
			inc = 100
		}
		bid = st.HighBid + inc
	}
	if bid > budget {
		return 0
	}
	return bid
}

// call sends one typed request to the local MSA and decodes the reply.
func (a *mbaAgent) call(ctx *aglet.Context, kind string, req, out any) error {
	cctx, cancel := agentCtx()
	defer cancel()
	msg, err := marshalMsg(kind, req)
	if err != nil {
		return err
	}
	reply, err := ctx.Send(cctx, marketplace.MSAID, msg)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(reply.Data, out); err != nil {
		return fmt.Errorf("buyerserver: decoding %s reply: %w", kind, err)
	}
	return nil
}

// --- HttpA ------------------------------------------------------------

// httpaAgent is the web-interface agent: it receives the buyer's requests
// (Fig 4.2/4.3 step 1) and forwards them to the BSMA (step 2). The actual
// net/http plumbing lives in http.go and talks to this agent.
type httpaAgent struct {
	aglet.Base
	srv *Server
}

func (a *httpaAgent) HandleMessage(ctx *aglet.Context, msg aglet.Message) (aglet.Message, error) {
	cctx, cancel := agentCtx()
	defer cancel()
	switch msg.Kind {
	case kindHTTPTask:
		var req taskReq
		if err := json.Unmarshal(msg.Data, &req); err != nil {
			return aglet.Message{}, fmt.Errorf("buyerserver: bad http task: %w", err)
		}
		wf := workflowName(req.Spec.Kind)
		a.srv.tracer.Record(wf, 1, "Buyer", "HttpA", string(req.Spec.Kind)+" request")
		a.srv.tracer.Record(wf, 2, "HttpA", "BSMA", "forward request")
		return ctx.Send(cctx, BSMAID, aglet.Message{Kind: kindTask, Data: msg.Data})
	case kindRegister, kindLogin, kindLogout:
		// Account operations pass through to the BSMA untraced; the figures
		// cover only the shopping workflows.
		return ctx.Send(cctx, BSMAID, msg)
	default:
		return aglet.Message{}, fmt.Errorf("buyerserver: HttpA does not understand %q", msg.Kind)
	}
}

// --- profile storage helpers ------------------------------------------

// loadProfile reads a consumer profile from UserDB.
func (s *Server) loadProfile(userID string) (*profile.Profile, error) {
	data, err := s.userDB.Get(bucketProfiles, userID)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownUser, userID)
	}
	return profile.Unmarshal(data)
}

// storeProfile writes a consumer profile to UserDB.
func (s *Server) storeProfile(p *profile.Profile) error {
	data, err := p.Marshal()
	if err != nil {
		return err
	}
	return s.userDB.Put(bucketProfiles, p.UserID, data)
}
