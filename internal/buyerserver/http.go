package buyerserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"agentrec/internal/recommend"
)

// HTTPHandler returns the web interface of the mechanism: "HttpA provides
// the Web interface, let users can use the browser to use all service of
// Buyer Agent Server" (§3.3). Routes:
//
//	POST /users            {"user_id": "..."}                  register
//	POST /login            {"user_id": "..."}                  login (returns offline inbox)
//	POST /logout           {"user_id": "..."}                  logout
//	POST /tasks            {"user_id": "...", "spec": {...}}   run a shopping task
//	GET  /recommendations  ?user=&category=&n=                 browse recommendations
//	GET  /events           ?kinds=&format=                     live event stream (SSE/NDJSON; events.go)
//	GET  /metrics/snapshot                                     unified ops.Snapshot
//
// Each route converts the request into agent messages; the shopping task
// route blocks until the Mobile Buyer Agent's round trip completes.
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /users", s.handleAccount(kindRegister))
	mux.HandleFunc("POST /login", s.handleLogin)
	mux.HandleFunc("POST /logout", s.handleAccount(kindLogout))
	mux.HandleFunc("POST /tasks", s.handleTask)
	mux.HandleFunc("GET /recommendations", s.handleRecommendations)
	mux.HandleFunc("GET /trending", s.handleTrending)
	mux.HandleFunc("GET /tiedsales", s.handleTiedSales)
	mux.HandleFunc("GET /events", s.handleEvents)
	mux.HandleFunc("GET /metrics/snapshot", s.handleMetricsSnapshot)
	return mux
}

type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUserExists), errors.Is(err, ErrAlreadyOnline):
		return http.StatusConflict
	case errors.Is(err, ErrUnknownUser), errors.Is(err, ErrNotLoggedIn):
		return http.StatusNotFound
	case errors.Is(err, ErrAuthFailed):
		return http.StatusForbidden
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleAccount(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req userReq
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.UserID == "" {
			writeJSON(w, http.StatusBadRequest, httpError{Error: "body must be {\"user_id\": ...}"})
			return
		}
		msg, err := marshalMsg(kind, req)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, httpError{Error: err.Error()})
			return
		}
		if _, err := s.host.Send(r.Context(), HttpAID, msg); err != nil {
			writeJSON(w, statusFor(err), httpError{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	}
}

func (s *Server) handleLogin(w http.ResponseWriter, r *http.Request) {
	var req userReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.UserID == "" {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "body must be {\"user_id\": ...}"})
		return
	}
	msg, err := marshalMsg(kindLogin, req)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, httpError{Error: err.Error()})
		return
	}
	reply, err := s.host.Send(r.Context(), HttpAID, msg)
	if err != nil {
		writeJSON(w, statusFor(err), httpError{Error: err.Error()})
		return
	}
	var lr loginReply
	if err := json.Unmarshal(reply.Data, &lr); err != nil {
		writeJSON(w, http.StatusInternalServerError, httpError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, lr)
}

func (s *Server) handleTask(w http.ResponseWriter, r *http.Request) {
	var req struct {
		UserID string   `json:"user_id"`
		Spec   TaskSpec `json:"spec"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.UserID == "" {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "body must be {\"user_id\": ..., \"spec\": {...}}"})
		return
	}
	if req.Spec.Kind == "" {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "spec.kind is required"})
		return
	}
	res, err := s.RunTask(r.Context(), req.UserID, req.Spec)
	if err != nil {
		writeJSON(w, statusFor(err), httpError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleTrending serves the "weekly hottest merchandise" listing (§5.2):
// GET /trending?window=168h&n=10.
func (s *Server) handleTrending(w http.ResponseWriter, r *http.Request) {
	window := 7 * 24 * time.Hour
	if raw := r.URL.Query().Get("window"); raw != "" {
		parsed, err := time.ParseDuration(raw)
		if err != nil || parsed <= 0 {
			writeJSON(w, http.StatusBadRequest, httpError{Error: fmt.Sprintf("bad window %q", raw)})
			return
		}
		window = parsed
	}
	n := 10
	if raw := r.URL.Query().Get("n"); raw != "" {
		parsed, err := strconv.Atoi(raw)
		if err != nil || parsed <= 0 {
			writeJSON(w, http.StatusBadRequest, httpError{Error: fmt.Sprintf("bad n %q", raw)})
			return
		}
		n = parsed
	}
	writeJSON(w, http.StatusOK, s.engine.Trending(time.Now(), window, n))
}

// handleTiedSales serves frequently-bought-together associations (§5.2):
// GET /tiedsales?product=lap1&n=5.
func (s *Server) handleTiedSales(w http.ResponseWriter, r *http.Request) {
	product := r.URL.Query().Get("product")
	if product == "" {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "product parameter required"})
		return
	}
	n := 10
	if raw := r.URL.Query().Get("n"); raw != "" {
		parsed, err := strconv.Atoi(raw)
		if err != nil || parsed <= 0 {
			writeJSON(w, http.StatusBadRequest, httpError{Error: fmt.Sprintf("bad n %q", raw)})
			return
		}
		n = parsed
	}
	ties := s.engine.TiedSales(product, 1, n)
	if ties == nil {
		ties = []recommend.TiedSale{}
	}
	writeJSON(w, http.StatusOK, ties)
}

func (s *Server) handleRecommendations(w http.ResponseWriter, r *http.Request) {
	user := r.URL.Query().Get("user")
	if user == "" {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "user parameter required"})
		return
	}
	n := 10
	if raw := r.URL.Query().Get("n"); raw != "" {
		parsed, err := strconv.Atoi(raw)
		if err != nil || parsed <= 0 {
			writeJSON(w, http.StatusBadRequest, httpError{Error: fmt.Sprintf("bad n %q", raw)})
			return
		}
		n = parsed
	}
	recs, err := s.Recommendations(user, r.URL.Query().Get("category"), n)
	if err != nil {
		writeJSON(w, statusFor(err), httpError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, recs)
}
