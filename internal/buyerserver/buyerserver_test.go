package buyerserver

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"agentrec/internal/aglet"
	"agentrec/internal/catalog"
	"agentrec/internal/coordinator"
	"agentrec/internal/marketplace"
	"agentrec/internal/recommend"
	"agentrec/internal/trace"
)

// mechanism is a full single-process platform slice: coordinator, N
// marketplaces with stocked catalogs, and one buyer agent server created
// through the Fig 4.1 admission workflow.
type mechanism struct {
	lb      *aglet.Loopback
	coord   *coordinator.Coordinator
	markets []*marketplace.Server
	srv     *Server
	tracer  *trace.Recorder
}

func marketProducts(seller string) []*catalog.Product {
	return []*catalog.Product{
		{ID: seller + ":lap1", Name: "UltraBook", Category: "laptop",
			Terms: map[string]float64{"ssd": 1, "light": 0.8}, PriceCents: 100000, SellerID: seller, Stock: 5},
		{ID: seller + ":lap2", Name: "GameBook", Category: "laptop",
			Terms: map[string]float64{"gpu": 1, "ssd": 0.4}, PriceCents: 150000, SellerID: seller, Stock: 5},
		{ID: seller + ":cam1", Name: "Shooter", Category: "camera",
			Terms: map[string]float64{"lens": 1}, PriceCents: 50000, SellerID: seller, Stock: 5},
	}
}

func newMechanism(t *testing.T, nMarkets int, opts ...Option) *mechanism {
	t.Helper()
	m := &mechanism{lb: aglet.NewLoopback(), tracer: trace.New()}

	coordReg := aglet.NewRegistry()
	coordHost := aglet.NewHost("coord", coordReg)
	m.lb.Attach(coordHost)
	t.Cleanup(func() { coordHost.Close() })
	coord, err := coordinator.New(coordHost, coordReg, coordinator.WithTracer(m.tracer))
	if err != nil {
		t.Fatal(err)
	}
	m.coord = coord

	// The engine sees the union of all marketplace merchandise, as the
	// platform's integrated catalog would.
	union := catalog.New()
	var marketNames []string
	for i := 0; i < nMarkets; i++ {
		name := fmt.Sprintf("market-%d", i+1)
		reg := aglet.NewRegistry()
		RegisterMBAType(reg)
		host := aglet.NewHost(name, reg)
		m.lb.Attach(host)
		t.Cleanup(func() { host.Close() })
		cat := catalog.New()
		for _, p := range marketProducts(name) {
			if err := cat.Add(p); err != nil {
				t.Fatal(err)
			}
			if err := union.Add(p); err != nil {
				t.Fatal(err)
			}
		}
		mp, err := marketplace.NewServer(host, cat, reg)
		if err != nil {
			t.Fatal(err)
		}
		m.markets = append(m.markets, mp)
		marketNames = append(marketNames, name)
		coord.Register(coordinator.Registration{Kind: coordinator.KindMarketplace, Name: name, Addr: name})
	}

	buyerReg := aglet.NewRegistry()
	buyerHost := aglet.NewHost("buyer-server", buyerReg)
	m.lb.Attach(buyerHost)
	engine := recommend.NewEngine(union, recommend.WithNeighbors(5))
	caProxy := buyerHost.RemoteProxy("coord", coordinator.CAID)
	allOpts := append([]Option{
		WithTracer(m.tracer),
		WithMarkets(marketNames...),
	}, opts...)
	srv, err := New(buyerHost, buyerReg, engine, caProxy, allOpts...)
	if err != nil {
		t.Fatal(err)
	}
	m.srv = srv
	t.Cleanup(func() { srv.Close() })
	return m
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// register + login a user, failing the test on error.
func (m *mechanism) user(t *testing.T, id string) {
	t.Helper()
	ctx := context.Background()
	if err := m.srv.Register(ctx, id); err != nil {
		t.Fatal(err)
	}
	if _, err := m.srv.Login(ctx, id); err != nil {
		t.Fatal(err)
	}
}

// --- F4.1: creation workflow -------------------------------------------

func TestCreationWorkflow(t *testing.T) {
	m := newMechanism(t, 1)
	if err := m.tracer.Verify("creation", CreationWorkflow); err != nil {
		t.Fatalf("Fig 4.1 conformance: %v\ntranscript:\n%s", err, m.tracer.Transcript("creation"))
	}
	// The coordinator's directory lists the new buyer server.
	entries := m.coord.Lookup(coordinator.KindBuyerServer)
	if len(entries) != 1 || entries[0].Addr != "buyer-server" {
		t.Errorf("directory = %+v", entries)
	}
}

// --- F3.2: mechanism architecture ----------------------------------------

func TestMechanismArchitecture(t *testing.T) {
	m := newMechanism(t, 1)
	for _, id := range []string{BSMAID, PAID, HttpAID} {
		if !m.srv.Host().Has(id) {
			t.Errorf("agent %q missing from mechanism", id)
		}
	}
}

// --- account lifecycle ----------------------------------------------------

func TestRegisterLoginLogout(t *testing.T) {
	m := newMechanism(t, 1)
	ctx := testCtx(t)

	if err := m.srv.Register(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	// Registration does not create a BRA (§4.1 principle 1).
	if m.srv.Online("alice") {
		t.Error("BRA exists before login")
	}
	if err := m.srv.Register(ctx, "alice"); !errors.Is(err, ErrUserExists) {
		t.Errorf("second register: %v", err)
	}

	inbox, err := m.srv.Login(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(inbox) != 0 {
		t.Errorf("fresh inbox = %v", inbox)
	}
	if !m.srv.Host().Has(braID("alice")) {
		t.Fatal("login did not create BRA")
	}
	if _, err := m.srv.Login(ctx, "alice"); !errors.Is(err, ErrAlreadyOnline) {
		t.Errorf("double login: %v", err)
	}

	if err := m.srv.Logout(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	if m.srv.Host().Has(braID("alice")) {
		t.Error("BRA survived logout")
	}
	if err := m.srv.Logout(ctx, "alice"); !errors.Is(err, ErrNotLoggedIn) {
		t.Errorf("double logout: %v", err)
	}
}

func TestLoginUnknownUser(t *testing.T) {
	m := newMechanism(t, 1)
	if _, err := m.srv.Login(testCtx(t), "nobody"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("err = %v", err)
	}
}

// --- F4.2: merchandise query workflow -------------------------------------

func TestQueryWorkflow(t *testing.T) {
	m := newMechanism(t, 1)
	m.user(t, "alice")
	m.tracer.Reset() // drop creation/login noise; conformance wants one clean run

	res, err := m.srv.Query(testCtx(t), "alice", catalog.Query{Category: "laptop", Terms: []string{"ssd"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 1 || res.Results[0].Market != "market-1" {
		t.Fatalf("results = %+v", res.Results)
	}
	if len(res.Results[0].Matches) == 0 {
		t.Fatal("no matches from marketplace")
	}
	if err := m.tracer.Verify("query", QueryWorkflow); err != nil {
		t.Fatalf("Fig 4.2 conformance: %v\ntranscript:\n%s", err, m.tracer.Transcript("query"))
	}
	// The BRA is active again after the trip.
	if !m.srv.Host().Has(braID("alice")) {
		t.Error("BRA not reactivated after query")
	}
	// The profile learned from the query.
	p, err := m.srv.Engine().Profile("alice")
	if err != nil {
		t.Fatal(err)
	}
	if p.Observed == 0 || p.PreferenceValue("laptop") <= 0 {
		t.Errorf("profile did not learn from query: observed=%d", p.Observed)
	}
}

func TestQueryRequiresLogin(t *testing.T) {
	m := newMechanism(t, 1)
	if err := m.srv.Register(context.Background(), "bob"); err != nil {
		t.Fatal(err)
	}
	_, err := m.srv.Query(testCtx(t), "bob", catalog.Query{Category: "laptop"})
	if !errors.Is(err, ErrNotLoggedIn) {
		t.Fatalf("err = %v", err)
	}
}

func TestQueryNoMarkets(t *testing.T) {
	m := newMechanism(t, 1)
	m.user(t, "alice")
	m.srv.SetMarkets()
	_, err := m.srv.Query(testCtx(t), "alice", catalog.Query{Category: "laptop"})
	if !errors.Is(err, ErrNoMarkets) {
		t.Fatalf("err = %v", err)
	}
}

// --- F4.3: buy workflow ----------------------------------------------------

func TestBuyWorkflow(t *testing.T) {
	m := newMechanism(t, 1)
	m.user(t, "alice")
	m.tracer.Reset()

	res, err := m.srv.Buy(testCtx(t), "alice", "market-1:lap1", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sale == nil || res.Sale.PriceCents != 100000 || res.Sale.BuyerID != "alice" {
		t.Fatalf("sale = %+v", res.Sale)
	}
	if err := m.tracer.Verify("buy", BuyWorkflow); err != nil {
		t.Fatalf("Fig 4.3 conformance: %v\ntranscript:\n%s", err, m.tracer.Transcript("buy"))
	}
	// Stock decremented at the marketplace.
	p, _ := m.markets[0].Catalog().Get("market-1:lap1")
	if p.Stock != 4 {
		t.Errorf("stock = %d, want 4", p.Stock)
	}
	// Purchase reached the engine (CF history) and UserDB (transactions).
	if recs, _ := m.srv.Engine().Recommend(recommend.StrategyTopSeller, "", "", 5); len(recs) == 0 {
		t.Error("purchase not recorded in engine")
	}
	txns, err := m.srv.userDB.Scan(bucketTxns, "alice/")
	if err != nil || len(txns) != 1 {
		t.Errorf("transactions = %v, %v", txns, err)
	}
}

func TestNegotiatedBuy(t *testing.T) {
	m := newMechanism(t, 1)
	m.user(t, "alice")

	// Budget above the floor (85000) but below list: the MBA haggles.
	res, err := m.srv.Buy(testCtx(t), "alice", "market-1:lap1", 95000, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sale == nil {
		t.Fatalf("no sale: %+v", res.Results)
	}
	if res.Sale.PriceCents > 95000 {
		t.Errorf("paid %d over budget", res.Sale.PriceCents)
	}
	if res.Sale.Via != "negotiation" {
		t.Errorf("via = %s", res.Sale.Via)
	}
}

func TestNegotiatedBuyBelowFloorFails(t *testing.T) {
	m := newMechanism(t, 1)
	m.user(t, "alice")
	res, err := m.srv.Buy(testCtx(t), "alice", "market-1:lap1", 60000, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sale != nil {
		t.Fatalf("deal below seller floor: %+v", res.Sale)
	}
}

func TestBuyChoosesFirstAffordableMarket(t *testing.T) {
	m := newMechanism(t, 3)
	m.user(t, "alice")
	// Make market-1's copy unaffordable; market-2 should win.
	m.markets[0].Catalog().Upsert(&catalog.Product{
		ID: "market-1:lap1", Name: "UltraBook", Category: "laptop",
		Terms: map[string]float64{"ssd": 1}, PriceCents: 999999, SellerID: "market-1", Stock: 5,
	})
	res, err := m.srv.RunTask(testCtx(t), "alice", TaskSpec{
		Kind: TaskBuy, ProductID: "market-1:lap1", BudgetCents: 100, // no market sells this cheap
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sale != nil {
		t.Fatalf("bought above budget: %+v", res.Sale)
	}
	// All three markets visited (no early exit without a purchase).
	if len(res.Results) != 3 {
		t.Errorf("visited %d markets, want 3", len(res.Results))
	}
}

// --- auction -----------------------------------------------------------------

func TestAuctionWorkflow(t *testing.T) {
	m := newMechanism(t, 1)
	m.user(t, "alice")
	m.user(t, "bob")

	aucID, err := m.markets[0].AuctionOpen("market-1:cam1", 40000)
	if err != nil {
		t.Fatal(err)
	}
	// Alice bids via the mechanism.
	res, err := m.srv.Bid(testCtx(t), "alice", "market-1", aucID, 60000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Results[0].Auction == nil || res.Results[0].Auction.HighBidder != "alice" {
		t.Fatalf("auction result = %+v", res.Results[0])
	}
	// Bob outbids.
	res, err = m.srv.Bid(testCtx(t), "bob", "market-1", aucID, 60000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Results[0].Auction.HighBidder != "bob" {
		t.Fatalf("auction result = %+v", res.Results[0].Auction)
	}
	// Seller closes: bob wins.
	st, err := m.markets[0].AuctionClose(aucID)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Sold || st.Sale.BuyerID != "bob" {
		t.Errorf("close = %+v", st)
	}
}

// --- C1: multi-marketplace itinerary ---------------------------------------

func TestMultiMarketItinerary(t *testing.T) {
	m := newMechanism(t, 4)
	m.user(t, "alice")
	res, err := m.srv.Query(testCtx(t), "alice", catalog.Query{Category: "laptop"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 4 {
		t.Fatalf("MBA visited %d marketplaces, want 4", len(res.Results))
	}
	seen := map[string]bool{}
	for _, mr := range res.Results {
		seen[mr.Market] = true
		if len(mr.Matches) == 0 {
			t.Errorf("no matches from %s", mr.Market)
		}
	}
	if len(seen) != 4 {
		t.Errorf("markets visited: %v", seen)
	}
	// §5.1 capability 3: information collected from more than two
	// marketplaces in one trip.
	if len(seen) <= 2 {
		t.Error("claim C1 violated")
	}
}

// --- C7: BRA deactivate/activate around the MBA trip -------------------------

func TestDeactivateActivate(t *testing.T) {
	m := newMechanism(t, 2)
	m.user(t, "alice")
	m.lb.SetPerHop(func(string) { time.Sleep(30 * time.Millisecond) })
	defer m.lb.SetPerHop(nil)

	done := make(chan error, 1)
	go func() {
		_, err := m.srv.Query(testCtx(t), "alice", catalog.Query{Category: "laptop"})
		done <- err
	}()

	// While the MBA is away the BRA must be parked in storage, not live.
	sawParked := false
	deadline := time.After(5 * time.Second)
	for !sawParked {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			t.Fatal("task finished before BRA was ever observed parked")
		case <-deadline:
			t.Fatal("BRA never parked")
		case <-time.After(time.Millisecond):
			if m.srv.Host().HasStored(braID("alice")) && !m.srv.Host().Has(braID("alice")) {
				sawParked = true
			}
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// And live again afterwards.
	if !m.srv.Host().Has(braID("alice")) {
		t.Error("BRA not reactivated after trip")
	}
}

// --- C3: offline completion ---------------------------------------------------

func TestOfflineCompletion(t *testing.T) {
	m := newMechanism(t, 2)
	m.user(t, "alice")
	m.lb.SetPerHop(func(string) { time.Sleep(30 * time.Millisecond) })
	defer m.lb.SetPerHop(nil)

	done := make(chan TaskResult, 1)
	go func() {
		res, err := m.srv.Buy(testCtx(t), "alice", "market-2:cam1", 0, false)
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()
	// Wait until the BRA is parked (task underway), then log out.
	deadline := time.After(5 * time.Second)
	for !m.srv.Host().HasStored(braID("alice")) {
		select {
		case <-deadline:
			t.Fatal("task never started")
		case <-time.After(time.Millisecond):
		}
	}
	if err := m.srv.Logout(context.Background(), "alice"); err != nil {
		t.Fatal(err)
	}

	res := <-done
	if res.Sale == nil {
		t.Fatal("offline task did not complete the purchase")
	}
	// The result waits in the inbox for the next login.
	inbox, err := m.srv.Login(context.Background(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(inbox) != 1 || inbox[0].Sale == nil || inbox[0].Sale.ProductID != "market-2:cam1" {
		t.Fatalf("inbox = %+v", inbox)
	}
	// Profile still learned from the offline purchase.
	p, err := m.srv.Engine().Profile("alice")
	if err != nil {
		t.Fatal(err)
	}
	if p.PreferenceValue("camera") <= 0 {
		t.Error("offline purchase did not update profile")
	}
}

// --- MBA authentication (§4.1 principle 2) ----------------------------------

func TestMBAAuthRejectedOnExpiredToken(t *testing.T) {
	m := newMechanism(t, 1, WithTokenTTL(time.Nanosecond))
	m.user(t, "alice")
	_, err := m.srv.Query(testCtx(t), "alice", catalog.Query{Category: "laptop"})
	if !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("err = %v, want ErrAuthFailed", err)
	}
	// The BSMDB records the rejection.
	entries, err := m.srv.bsmDB.Scan(bucketMBAs, "")
	if err != nil || len(entries) != 1 {
		t.Fatalf("mba records = %v, %v", entries, err)
	}
	var rec MBARecord
	if err := m.srv.bsmDB.DecodeJSON(bucketMBAs, entries[0].Key, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Status != "rejected" {
		t.Errorf("status = %s, want rejected", rec.Status)
	}
}

// --- recommendations from community activity ---------------------------------

func TestCommunityRecommendations(t *testing.T) {
	m := newMechanism(t, 1)
	m.user(t, "alice")
	m.user(t, "bob")
	ctx := testCtx(t)

	// Both query ssd laptops (shared taste); bob also buys lap2.
	if _, err := m.srv.Query(ctx, "alice", catalog.Query{Category: "laptop", Terms: []string{"ssd"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.srv.Query(ctx, "bob", catalog.Query{Category: "laptop", Terms: []string{"ssd"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.srv.Buy(ctx, "bob", "market-1:lap2", 0, false); err != nil {
		t.Fatal(err)
	}

	// Alice's next query should surface bob's purchase among the
	// recommendations (collaborative filtering through profile similarity).
	res, err := m.srv.Query(ctx, "alice", catalog.Query{Category: "laptop", Terms: []string{"ssd"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recommendations) == 0 {
		t.Fatal("no recommendations generated")
	}
	found := false
	for _, r := range res.Recommendations {
		if r.ProductID == "market-1:lap2" {
			found = true
		}
	}
	if !found {
		t.Errorf("neighbour's purchase not recommended: %+v", res.Recommendations)
	}
}

// --- C6: agent population elasticity -----------------------------------------

func TestAgentChurn(t *testing.T) {
	m := newMechanism(t, 1)
	ctx := context.Background()
	baseline := len(m.srv.Host().Agents())
	for i := 0; i < 30; i++ {
		user := fmt.Sprintf("u%02d", i)
		if err := m.srv.Register(ctx, user); err != nil {
			t.Fatal(err)
		}
		if _, err := m.srv.Login(ctx, user); err != nil {
			t.Fatal(err)
		}
		if _, err := m.srv.Query(testCtx(t), user, catalog.Query{Category: "laptop"}); err != nil {
			t.Fatal(err)
		}
		if err := m.srv.Logout(ctx, user); err != nil {
			t.Fatal(err)
		}
	}
	// Returning MBAs dispose themselves asynchronously after delivering;
	// wait for quiescence before counting.
	deadline := time.After(5 * time.Second)
	for len(m.srv.Host().Agents()) != baseline {
		select {
		case <-deadline:
			t.Fatalf("agents leaked: %v live, baseline %d", m.srv.Host().Agents(), baseline)
		case <-time.After(time.Millisecond):
		}
	}
}

func TestConcurrentUsers(t *testing.T) {
	m := newMechanism(t, 2)
	ctx := context.Background()
	const users = 8
	for i := 0; i < users; i++ {
		m.user(t, fmt.Sprintf("u%d", i))
	}
	var wg sync.WaitGroup
	for i := 0; i < users; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			user := fmt.Sprintf("u%d", i)
			for j := 0; j < 3; j++ {
				if _, err := m.srv.Query(testCtx(t), user, catalog.Query{Category: "laptop"}); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	_ = ctx
}

// TestUnreachableMarketplaceSkipped injects a dead host into the itinerary:
// the MBA records the failure for that stop and finishes the rest of the
// trip rather than stranding (DispatchFailureHandler behaviour).
func TestUnreachableMarketplaceSkipped(t *testing.T) {
	m := newMechanism(t, 3)
	m.user(t, "alice")
	// market-2 vanishes from the network.
	m.lb.Detach("market-2")

	res, err := m.srv.Query(testCtx(t), "alice", catalog.Query{Category: "laptop"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 3 {
		t.Fatalf("results = %d, want 3 (2 visited + 1 failed)", len(res.Results))
	}
	byMarket := map[string]MarketResult{}
	for _, mr := range res.Results {
		byMarket[mr.Market] = mr
	}
	if byMarket["market-2"].Err == "" {
		t.Errorf("dead market has no error: %+v", byMarket["market-2"])
	}
	if len(byMarket["market-1"].Matches) == 0 || len(byMarket["market-3"].Matches) == 0 {
		t.Error("live markets not visited after the failure")
	}
}

// TestTrendingAndTiedSalesThroughWorkflows drives purchases through the
// full agent workflows and reads the §5.2 extension features back.
func TestTrendingAndTiedSalesThroughWorkflows(t *testing.T) {
	m := newMechanism(t, 1)
	ctx := testCtx(t)
	m.user(t, "alice")
	m.user(t, "bob")

	for _, user := range []string{"alice", "bob"} {
		if _, err := m.srv.Buy(ctx, user, "market-1:lap1", 0, false); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.srv.Buy(ctx, "alice", "market-1:cam1", 0, false); err != nil {
		t.Fatal(err)
	}

	trending := m.srv.Engine().Trending(time.Now(), time.Hour, 5)
	if len(trending) == 0 || trending[0].ProductID != "market-1:lap1" {
		t.Errorf("trending = %+v, want lap1 hottest", trending)
	}
	ties := m.srv.Engine().TiedSales("market-1:lap1", 1, 5)
	if len(ties) != 1 || ties[0].ProductID != "market-1:cam1" {
		t.Errorf("tied sales = %+v, want cam1", ties)
	}
	// Half of lap1's buyers also bought cam1.
	if ties[0].Confidence != 0.5 {
		t.Errorf("confidence = %v, want 0.5", ties[0].Confidence)
	}
}
