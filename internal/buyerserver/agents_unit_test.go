package buyerserver

import (
	"errors"
	"strings"
	"testing"

	"agentrec/internal/aglet"
	"agentrec/internal/catalog"
	"agentrec/internal/marketplace"
	"agentrec/internal/profile"
)

// Message-level robustness: every resident agent rejects unknown kinds and
// garbage payloads with a descriptive error instead of crashing.
func TestAgentsRejectBadMessages(t *testing.T) {
	m := newMechanism(t, 1)
	m.user(t, "alice")
	ctx := testCtx(t)

	cases := []struct {
		agent string
		msg   aglet.Message
		want  string
	}{
		{BSMAID, aglet.Message{Kind: "dance"}, "does not understand"},
		{BSMAID, aglet.Message{Kind: kindRegister, Data: []byte("{")}, "bad register"},
		{BSMAID, aglet.Message{Kind: kindLogin, Data: []byte("{")}, "bad login"},
		{BSMAID, aglet.Message{Kind: kindLogout, Data: []byte("{")}, "bad logout"},
		{BSMAID, aglet.Message{Kind: kindTask, Data: []byte("{")}, "bad task"},
		{BSMAID, aglet.Message{Kind: kindMBAHome, Data: []byte("{")}, "bad mba-home"},
		{PAID, aglet.Message{Kind: "dance"}, "does not understand"},
		{PAID, aglet.Message{Kind: kindObserve, Data: []byte("{")}, "bad observe"},
		{HttpAID, aglet.Message{Kind: "dance"}, "does not understand"},
		{HttpAID, aglet.Message{Kind: kindHTTPTask, Data: []byte("{")}, "bad http task"},
		{braID("alice"), aglet.Message{Kind: "dance"}, "does not understand"},
		{braID("alice"), aglet.Message{Kind: kindTask, Data: []byte("{")}, "bad task"},
		{braID("alice"), aglet.Message{Kind: kindTaskDone, Data: []byte("{")}, "bad task-complete"},
	}
	for _, tc := range cases {
		_, err := m.srv.Host().Send(ctx, tc.agent, tc.msg)
		if err == nil {
			t.Errorf("%s accepted %q with payload %q", tc.agent, tc.msg.Kind, tc.msg.Data)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s/%s error = %q, want containing %q", tc.agent, tc.msg.Kind, err, tc.want)
		}
	}
}

func TestMBARejectsNonEmbark(t *testing.T) {
	reg := aglet.NewRegistry()
	RegisterMBAType(reg)
	host := aglet.NewHost("h", reg)
	defer host.Close()
	init := []byte(`{"user_id":"u","spec":{"task_id":"t","kind":"query"},"itinerary":{"stops":[],"home":"h","index":0}}`)
	if _, err := host.Create("mba", "m", init); err != nil {
		t.Fatal(err)
	}
	if _, err := host.Send(testCtx(t), "m", aglet.Message{Kind: "poke"}); err == nil {
		t.Fatal("MBA accepted unknown kind")
	}
}

func TestTaskForUnknownUser(t *testing.T) {
	m := newMechanism(t, 1)
	_, err := m.srv.Query(testCtx(t), "stranger", catalog.Query{Category: "laptop"})
	if !errors.Is(err, ErrNotLoggedIn) {
		t.Fatalf("err = %v", err)
	}
}

func TestObserveBatchForBuyMarksOnlyPurchasedProduct(t *testing.T) {
	sale := &marketplace.Sale{Receipt: "r", ProductID: "p1", BuyerID: "u", PriceCents: 1}
	st := mbaState{
		UserID: "u",
		Spec:   TaskSpec{TaskID: "t", Kind: TaskBuy, ProductID: "p1"},
		Sale:   sale,
		Results: []MarketResult{
			{
				Market: "m1",
				Matches: []catalog.Match{
					{Product: &catalog.Product{ID: "p1", Category: "c", Terms: map[string]float64{"x": 1}}},
				},
				Sale: sale,
			},
			{
				Market: "m2",
				Matches: []catalog.Match{
					{Product: &catalog.Product{ID: "p1", Category: "c", Terms: map[string]float64{"x": 1}}},
				},
				// visited but did not sell
			},
		},
	}
	batch := observeBatchFor(st, "buy", 13)
	if len(batch.Events) != 2 {
		t.Fatalf("events = %d", len(batch.Events))
	}
	var buys, queries int
	for _, ev := range batch.Events {
		switch ev.Evidence.Behaviour {
		case profile.BehaviourBuy:
			buys++
			if ev.Sale == nil {
				t.Error("buy event without sale")
			}
		case profile.BehaviourQuery:
			queries++
			if ev.Sale != nil {
				t.Error("query event with sale")
			}
		}
	}
	if buys != 1 || queries != 1 {
		t.Errorf("buys=%d queries=%d, want 1/1", buys, queries)
	}
}

func TestObserveBatchForQueryUsesQueryTerms(t *testing.T) {
	st := mbaState{
		UserID: "u",
		Spec: TaskSpec{
			TaskID: "t", Kind: TaskQuery,
			Query: catalog.Query{Category: "laptop", SubCategory: "notebook", Terms: []string{"ssd", "light"}},
		},
	}
	batch := observeBatchFor(st, "query", 14)
	if len(batch.Events) != 1 {
		t.Fatalf("events = %d", len(batch.Events))
	}
	ev := batch.Events[0].Evidence
	if ev.Category != "laptop" || ev.SubCategory != "notebook" {
		t.Errorf("evidence = %+v", ev)
	}
	if ev.Terms["ssd"] != 1 || ev.Terms["light"] != 1 {
		t.Errorf("terms = %v", ev.Terms)
	}
	if ev.Behaviour != profile.BehaviourQuery {
		t.Errorf("behaviour = %v", ev.Behaviour)
	}
}

func TestObserveBatchForAuctionUsesBidBehaviour(t *testing.T) {
	st := mbaState{
		UserID: "u",
		Spec:   TaskSpec{TaskID: "t", Kind: TaskAuction, AuctionID: "a"},
		Results: []MarketResult{{
			Market: "m1",
			Matches: []catalog.Match{
				{Product: &catalog.Product{ID: "p", Category: "c", Terms: map[string]float64{"x": 1}}},
			},
		}},
	}
	batch := observeBatchFor(st, "buy", 13)
	if len(batch.Events) != 1 || batch.Events[0].Evidence.Behaviour != profile.BehaviourBid {
		t.Fatalf("batch = %+v", batch)
	}
}

func TestNextBid(t *testing.T) {
	tests := []struct {
		name   string
		status marketplace.AuctionStatus
		budget int64
		want   int64
	}{
		{"fresh with reserve", marketplace.AuctionStatus{ReserveCents: 5000}, 10000, 5000},
		{"fresh no reserve", marketplace.AuctionStatus{}, 10000, 100},
		{"outbid within budget", marketplace.AuctionStatus{HighBid: 10000}, 20000, 10500},
		{"small high bid uses min increment", marketplace.AuctionStatus{HighBid: 500}, 20000, 600},
		{"over budget", marketplace.AuctionStatus{HighBid: 19990}, 20000, 0},
		{"reserve over budget", marketplace.AuctionStatus{ReserveCents: 30000}, 20000, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := nextBid(tt.status, tt.budget); got != tt.want {
				t.Errorf("nextBid = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestAuctionBidViaMechanismOnClosedAuction(t *testing.T) {
	m := newMechanism(t, 1)
	m.user(t, "alice")
	aucID, err := m.markets[0].AuctionOpen("market-1:cam1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.markets[0].AuctionClose(aucID); err != nil {
		t.Fatal(err)
	}
	// The MBA reports the closed auction's status without erroring out.
	res, err := m.srv.Bid(testCtx(t), "alice", "market-1", aucID, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Results[0].Auction == nil || !res.Results[0].Auction.Closed {
		t.Fatalf("result = %+v", res.Results[0])
	}
}

func TestBuyUnknownProductReportsPerMarketError(t *testing.T) {
	m := newMechanism(t, 2)
	m.user(t, "alice")
	res, err := m.srv.Buy(testCtx(t), "alice", "no-such-product", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sale != nil {
		t.Fatal("bought a nonexistent product")
	}
	for _, mr := range res.Results {
		if mr.Err == "" {
			t.Errorf("market %s reported no error", mr.Market)
		}
	}
}
