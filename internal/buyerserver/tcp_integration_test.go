package buyerserver

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"agentrec/internal/aglet"
	"agentrec/internal/atp"
	"agentrec/internal/catalog"
	"agentrec/internal/coordinator"
	"agentrec/internal/kvstore"
	"agentrec/internal/marketplace"
	"agentrec/internal/recommend"
	"agentrec/internal/security"
	"agentrec/internal/trace"
)

// TestWorkflowsOverTCP runs the Fig 4.1 creation and Fig 4.2 query
// workflows with every host on a real TCP socket: the BSMA migrates from
// the coordinator as a signed ATP frame, and the MBA's shopping trip
// crosses the loopback interface for every hop. This is the cmd/platformd
// wiring under test.
func TestWorkflowsOverTCP(t *testing.T) {
	signer := security.NewSigner([]byte("test-platform-key"))
	client := atp.NewClient(signer)
	tracer := trace.New()

	up := func(reg *aglet.Registry) (*aglet.Host, string) {
		t.Helper()
		// Bind first to learn the port, since the host's name must be its
		// dial address. Probe with a throwaway listener is racy; instead
		// serve on :0 and re-create the host under the final name.
		probe := aglet.NewHost("probe", reg)
		srv, err := atp.Serve(probe, signer, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := srv.Addr()
		srv.Close()
		probe.Close()

		host := aglet.NewHost(addr, reg, aglet.WithTransport(client))
		srv2, err := atp.Serve(host, signer, addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			srv2.Close()
			host.Close()
		})
		return host, addr
	}

	// Coordinator.
	coordReg := aglet.NewRegistry()
	coordHost, coordAddr := up(coordReg)
	coord, err := coordinator.New(coordHost, coordReg, coordinator.WithTracer(tracer))
	if err != nil {
		t.Fatal(err)
	}

	// One marketplace.
	marketReg := aglet.NewRegistry()
	RegisterMBAType(marketReg)
	marketHost, marketAddr := up(marketReg)
	cat := catalog.New()
	if err := cat.Add(&catalog.Product{
		ID: "lap1", Name: "UltraBook", Category: "laptop",
		Terms: map[string]float64{"ssd": 1}, PriceCents: 100000, SellerID: "s", Stock: 5,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := marketplace.NewServer(marketHost, cat, marketReg); err != nil {
		t.Fatal(err)
	}
	coord.Register(coordinator.Registration{Kind: coordinator.KindMarketplace, Name: marketAddr, Addr: marketAddr})

	// Buyer agent server, admitted over TCP (Fig 4.1).
	buyerReg := aglet.NewRegistry()
	buyerHost, _ := up(buyerReg)
	engine := recommend.NewEngine(cat)
	srv, err := New(buyerHost, buyerReg, engine,
		buyerHost.RemoteProxy(coordAddr, coordinator.CAID),
		WithTracer(tracer), WithMarkets(marketAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if err := tracer.Verify("creation", CreationWorkflow); err != nil {
		t.Fatalf("Fig 4.1 over TCP: %v\n%s", err, tracer.Transcript("creation"))
	}

	// Full query workflow over real sockets.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Register(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Login(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	tracer.Reset()
	res, err := srv.Query(ctx, "alice", catalog.Query{Category: "laptop"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 1 || len(res.Results[0].Matches) != 1 {
		t.Fatalf("results = %+v", res.Results)
	}
	if err := tracer.Verify("query", QueryWorkflow); err != nil {
		t.Fatalf("Fig 4.2 over TCP: %v\n%s", err, tracer.Transcript("query"))
	}

	// And a negotiated buy over TCP.
	buy, err := srv.Buy(ctx, "alice", "lap1", 95000, true)
	if err != nil {
		t.Fatal(err)
	}
	if buy.Sale == nil || buy.Sale.PriceCents > 95000 {
		t.Fatalf("sale = %+v", buy.Sale)
	}
}

// TestDurableUserDB proves profiles and transactions survive a buyer
// server restart when UserDB is WAL-backed.
func TestDurableUserDB(t *testing.T) {
	path := filepath.Join(t.TempDir(), "userdb.wal")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	boot := func(db *kvstore.Store) (*mechanism, *Server) {
		t.Helper()
		m := newMechanism(t, 1, WithUserDB(db))
		return m, m.srv
	}

	db, err := kvstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	_, srv := boot(db)
	if err := srv.Register(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Login(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Buy(ctx, "alice", "market-1:lap1", 0, false); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh server over the same WAL.
	db2, err := kvstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	_, srv2 := boot(db2)
	// No re-registration needed; the profile learned before the restart.
	if _, err := srv2.Login(ctx, "alice"); err != nil {
		t.Fatalf("login after restart: %v", err)
	}
	p, err := srv2.loadProfile("alice")
	if err != nil {
		t.Fatal(err)
	}
	if p.Observed == 0 || p.PreferenceValue("laptop") <= 0 {
		t.Errorf("profile lost across restart: %+v", p)
	}
	txns, err := srv2.userDB.Scan(bucketTxns, "alice/")
	if err != nil || len(txns) != 1 {
		t.Errorf("transactions lost across restart: %v, %v", txns, err)
	}
}
