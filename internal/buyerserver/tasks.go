package buyerserver

import (
	"context"
	"encoding/json"
	"fmt"

	"agentrec/internal/aglet"
	"agentrec/internal/catalog"
	"agentrec/internal/marketplace"
	"agentrec/internal/recommend"
)

// TaskKind selects what the Mobile Buyer Agent does at the marketplaces.
type TaskKind string

// Task kinds, matching the paper's consumer actions.
const (
	TaskQuery   TaskKind = "query"   // Fig 4.2: merchandise query
	TaskBuy     TaskKind = "buy"     // Fig 4.3: purchase (list price or negotiated)
	TaskAuction TaskKind = "auction" // Fig 4.3: join an auction
)

// TaskSpec describes one shopping task assigned to an MBA.
type TaskSpec struct {
	TaskID      string        `json:"task_id"`
	Kind        TaskKind      `json:"kind"`
	Query       catalog.Query `json:"query,omitempty"`
	ProductID   string        `json:"product_id,omitempty"`
	BudgetCents int64         `json:"budget_cents,omitempty"`
	Negotiate   bool          `json:"negotiate,omitempty"`
	Probe       bool          `json:"probe,omitempty"` // discover the price floor; never buy
	AuctionID   string        `json:"auction_id,omitempty"`
	Markets     []string      `json:"markets,omitempty"` // itinerary override
}

// MarketResult is what the MBA gathered at one marketplace.
type MarketResult struct {
	Market  string                     `json:"market"`
	Matches []catalog.Match            `json:"matches,omitempty"`
	Sale    *marketplace.Sale          `json:"sale,omitempty"`
	Nego    *marketplace.NegoReply     `json:"nego,omitempty"`
	Auction *marketplace.AuctionStatus `json:"auction,omitempty"`
	Err     string                     `json:"err,omitempty"`
}

// TaskResult is the consumer-facing outcome of a task: everything the MBA
// brought home plus the recommendation information the BRA generated from
// it (§3.3 function 2).
type TaskResult struct {
	TaskID          string            `json:"task_id"`
	UserID          string            `json:"user_id"`
	Kind            TaskKind          `json:"kind"`
	Results         []MarketResult    `json:"results"`
	Sale            *marketplace.Sale `json:"sale,omitempty"` // the completed purchase, if any
	Recommendations []recommend.Rec   `json:"recommendations,omitempty"`
	CrossSell       []recommend.Rec   `json:"cross_sell,omitempty"`
	AuthFailed      bool              `json:"auth_failed,omitempty"`
}

// AllMatches flattens the per-market query matches.
func (r TaskResult) AllMatches() []catalog.Match {
	var out []catalog.Match
	for _, mr := range r.Results {
		out = append(out, mr.Matches...)
	}
	return out
}

// Query runs the Fig 4.2 merchandise-query workflow for userID: an MBA
// visits every known marketplace, gathers matches, and the BRA turns them
// plus the consumer community's preferences into recommendations.
func (s *Server) Query(ctx context.Context, userID string, q catalog.Query) (TaskResult, error) {
	return s.runTask(ctx, userID, TaskSpec{Kind: TaskQuery, Query: q})
}

// Buy runs the Fig 4.3 workflow: the MBA visits marketplaces and buys
// productID at the first one within budget (0 = list price anywhere),
// haggling first when negotiate is set.
func (s *Server) Buy(ctx context.Context, userID, productID string, budgetCents int64, negotiate bool) (TaskResult, error) {
	return s.runTask(ctx, userID, TaskSpec{
		Kind: TaskBuy, ProductID: productID, BudgetCents: budgetCents, Negotiate: negotiate,
	})
}

// Bid runs the Fig 4.3 auction variant: the MBA travels to market and
// places one bid on auctionID, up to budgetCents.
func (s *Server) Bid(ctx context.Context, userID, market, auctionID string, budgetCents int64) (TaskResult, error) {
	return s.runTask(ctx, userID, TaskSpec{
		Kind: TaskAuction, AuctionID: auctionID, BudgetCents: budgetCents, Markets: []string{market},
	})
}

// RunTask executes an arbitrary TaskSpec; the named helpers above are the
// common cases.
func (s *Server) RunTask(ctx context.Context, userID string, spec TaskSpec) (TaskResult, error) {
	return s.runTask(ctx, userID, spec)
}

// runTask drives the workflow through the agents: HttpA → BSMA → BRA → MBA
// trip → BSMA → BRA → result, then waits on the rendezvous channel.
func (s *Server) runTask(ctx context.Context, userID string, spec TaskSpec) (TaskResult, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return TaskResult{}, ErrClosed
	}
	spec.TaskID = s.nextTaskID()
	if len(spec.Markets) == 0 {
		spec.Markets = s.Markets()
	}
	if len(spec.Markets) == 0 {
		return TaskResult{}, ErrNoMarkets
	}
	ch := s.registerPending(spec.TaskID)

	req, err := json.Marshal(taskReq{UserID: userID, Spec: spec})
	if err != nil {
		s.dropPending(spec.TaskID)
		return TaskResult{}, fmt.Errorf("buyerserver: encoding task: %w", err)
	}
	// Step 1 of Figs 4.2/4.3: the buyer talks to the web interface agent,
	// which forwards to the BSMA (step 2).
	if _, err := s.host.Send(ctx, HttpAID, aglet.Message{Kind: kindHTTPTask, Data: req}); err != nil {
		s.dropPending(spec.TaskID)
		return TaskResult{}, err
	}
	select {
	case res := <-ch:
		if res.AuthFailed {
			return res, ErrAuthFailed
		}
		return res, nil
	case <-ctx.Done():
		s.dropPending(spec.TaskID)
		return TaskResult{}, ctx.Err()
	}
}

// workflowName maps a task kind to the trace workflow it belongs to:
// queries follow Fig 4.2, buys and auctions Fig 4.3.
func workflowName(kind TaskKind) string {
	if kind == TaskQuery {
		return "query"
	}
	return "buy"
}
