package buyerserver

import "agentrec/internal/trace"

// The figures of §4 are reproduced as machine-checkable step tables. The
// scanned figures label arrows only with numbers; the actor sequences below
// are the reconstruction documented in DESIGN.md, with the step counts
// matching the figures exactly: 6 steps for creation (Fig 4.1), 15 for the
// merchandise query (Fig 4.2), 14 for buy/auction (Fig 4.3). Conformance
// tests run one canonical workflow instance (a single marketplace, so the
// migrate/return pair appears once, as drawn) and Verify the recorded trace
// against these tables.

// CreationWorkflow is Fig 4.1: how a Buyer Agent Server comes to exist.
var CreationWorkflow = []trace.Expectation{
	{Step: 1, From: "Server", To: "CA"},  // request to be buyer agent server
	{Step: 2, From: "CA", To: "BSMA"},    // create BSMA agent
	{Step: 3, From: "CA", To: "BSMA"},    // dispatch BSMA
	{Step: 4, From: "BSMA", To: "PA"},    // create profile agent
	{Step: 5, From: "BSMA", To: "HttpA"}, // create HttpA agent
	{Step: 6, From: "BSMA", To: "DB"},    // initialize databases
}

// QueryWorkflow is Fig 4.2: the merchandise query with recommendation
// generation.
var QueryWorkflow = []trace.Expectation{
	{Step: 1, From: "Buyer", To: "HttpA"},      // query request
	{Step: 2, From: "HttpA", To: "BSMA"},       // forward request
	{Step: 3, From: "BSMA", To: "BRA"},         // assign query task
	{Step: 4, From: "BRA", To: "UserDB"},       // load consumer profile
	{Step: 5, From: "UserDB", To: "BRA"},       // profile loaded
	{Step: 6, From: "BRA", To: "MBA"},          // create MBA, assign task
	{Step: 7, From: "BRA", To: "BSMA"},         // note MBA information
	{Step: 8, From: "BSMA", To: "BSMDB"},       // record MBA; deactivate BRA
	{Step: 9, From: "MBA", To: "Marketplace"},  // migrate and query
	{Step: 10, From: "Marketplace", To: "MBA"}, // query results
	{Step: 11, From: "MBA", To: "BSMA"},        // return home, authenticate
	{Step: 12, From: "BSMA", To: "BRA"},        // activate BRA, deliver results
	{Step: 13, From: "BRA", To: "PA"},          // report behaviour
	{Step: 14, From: "PA", To: "UserDB"},       // update profile
	{Step: 15, From: "BRA", To: "Buyer"},       // recommendation information
}

// BuyWorkflow is Fig 4.3: buy or auction. Identical shape minus the
// separate BSMDB step (folded into step 7 in the figure).
var BuyWorkflow = []trace.Expectation{
	{Step: 1, From: "Buyer", To: "HttpA"},
	{Step: 2, From: "HttpA", To: "BSMA"},
	{Step: 3, From: "BSMA", To: "BRA"},
	{Step: 4, From: "BRA", To: "UserDB"},
	{Step: 5, From: "UserDB", To: "BRA"},
	{Step: 6, From: "BRA", To: "MBA"},
	{Step: 7, From: "BRA", To: "BSMA"},
	{Step: 8, From: "MBA", To: "Marketplace"}, // migrate, execute buy/auction
	{Step: 9, From: "Marketplace", To: "MBA"}, // transaction result
	{Step: 10, From: "MBA", To: "BSMA"},       // return home, authenticate
	{Step: 11, From: "BSMA", To: "BRA"},       // activate BRA, deliver result
	{Step: 12, From: "BRA", To: "PA"},         // report behaviour
	{Step: 13, From: "PA", To: "UserDB"},      // update profile + transaction
	{Step: 14, From: "BRA", To: "Buyer"},      // confirmation
}
