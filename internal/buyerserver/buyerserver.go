// Package buyerserver implements the paper's Buyer Agent Server — "also the
// proposed consumer recommendation mechanism" (§3.2 item 3) — with the full
// agent cast of Fig 3.2:
//
//   - BSMA, the Buyer Server Management Agent: registration/login, agent
//     management, BSMDB bookkeeping, MBA authentication on return.
//   - HttpA, the web interface agent: translates web requests into agent
//     messages (see http.go).
//   - PA, the single Profile Agent: applies the Fig 4.4 update rule to
//     consumer profiles on every observed behaviour.
//   - BRA, one Buyer Recommend Agent per online consumer: loads the
//     profile, launches shopping tasks, generates recommendation
//     information. Deactivated while its MBA travels (§4.1 principle 3).
//   - MBA, the Mobile Buyer Agent: migrates across marketplaces executing
//     the task, then returns and authenticates to the BSMA (§4.1
//     principle 2).
//
// plus UserDB (profiles, transactions, offline-result inbox) and BSMDB
// (platform directory cache, MBA trip records) on the kvstore substrate.
//
// The three workflows of §4 are implemented end to end with the exact step
// numbering of Figs 4.1–4.3; see workflows.go and the trace package.
package buyerserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"agentrec/internal/aglet"
	"agentrec/internal/coordinator"
	"agentrec/internal/kvstore"
	"agentrec/internal/ops"
	"agentrec/internal/recommend"
	"agentrec/internal/security"
	"agentrec/internal/trace"
)

// Well-known agent ids on a buyer agent server.
const (
	BSMAID  = coordinator.BSMAID
	PAID    = "pa"
	HttpAID = "httpa"
)

// UserDB bucket names.
const (
	bucketUsers    = "users"
	bucketProfiles = "profiles"
	bucketTxns     = "txns"
	bucketInbox    = "inbox"
)

// BSMDB bucket names.
const (
	bucketMBAs = "mbas"
	bucketMeta = "meta"
)

// Errors reported by the server.
var (
	ErrUserExists    = errors.New("buyerserver: user already registered")
	ErrUnknownUser   = errors.New("buyerserver: user not registered")
	ErrNotLoggedIn   = errors.New("buyerserver: user not logged in")
	ErrAlreadyOnline = errors.New("buyerserver: user already logged in")
	ErrNoMarkets     = errors.New("buyerserver: no marketplaces known")
	ErrAuthFailed    = errors.New("buyerserver: returning MBA failed authentication")
	ErrClosed        = errors.New("buyerserver: server closed")
)

// UserRecord is the UserDB row for a registered consumer.
type UserRecord struct {
	ID           string    `json:"id"`
	RegisteredAt time.Time `json:"registered_at"`
	Logins       int       `json:"logins"`
	Online       bool      `json:"online"`
}

// MBARecord is the BSMDB row tracking a dispatched Mobile Buyer Agent
// (§4.1 principle 2: "BRA will note BSMA to keep the MBA's information").
type MBARecord struct {
	MBAID     string   `json:"mba_id"`
	TaskID    string   `json:"task_id"`
	UserID    string   `json:"user_id"`
	Kind      string   `json:"kind"`
	Status    string   `json:"status"` // "dispatched", "returned", "rejected"
	Itinerary []string `json:"itinerary"`
}

// Server is one Buyer Agent Server. Construct with New; always Close it.
type Server struct {
	host       *aglet.Host
	reg        *aglet.Registry
	engine     *recommend.Engine
	writes     recommend.Writer // community writes; the engine unless routed
	userDB     *kvstore.Store
	bsmDB      *kvstore.Store
	tracer     *trace.Recorder
	signer     *security.Signer
	tokens     *security.TokenIssuer
	challenger *security.Challenger
	events     *ops.Bus            // event plane (nil = /events disabled; see events.go)
	metrics    func() ops.Snapshot // /metrics/snapshot source (nil = own engine only)

	mu       sync.Mutex
	markets  []string
	pending  map[string]chan TaskResult
	taskSeq  int
	closed   bool
	tokenTTL time.Duration
	stateDir string
}

// Option configures a Server.
type Option func(*Server)

// WithTracer records workflow steps into r.
func WithTracer(r *trace.Recorder) Option {
	return func(s *Server) { s.tracer = r }
}

// WithMarkets sets the marketplaces Mobile Buyer Agents visit, in itinerary
// order.
func WithMarkets(addrs ...string) Option {
	return func(s *Server) { s.markets = append([]string(nil), addrs...) }
}

// WithEngine replaces the recommendation engine (e.g. to tune neighbourhood
// size or the discard tolerance).
func WithEngine(e *recommend.Engine) Option {
	return func(s *Server) { s.engine = e }
}

// WithCommunityWriter routes community writes — profile installs and
// purchase records — through w instead of the local engine. This is the
// replication seam: in a multi-server deployment w is a recommend.Router
// that forwards each write to the shard owner's server, while reads
// (recommendations) keep answering from the local engine's replica.
func WithCommunityWriter(w recommend.Writer) Option {
	return func(s *Server) { s.writes = w }
}

// WithUserDB uses a pre-opened (possibly durable) UserDB store.
func WithUserDB(db *kvstore.Store) Option {
	return func(s *Server) { s.userDB = db }
}

// WithStateDir persists the mechanism's databases under dir (created if
// absent): UserDB (accounts, profiles, transactions, inbox) in userdb.wal
// and BSMDB (directory cache, MBA trip records) in bsmdb.wal, both
// WAL-backed and recovered on New. A store given explicitly via WithUserDB
// takes precedence over the one this would open.
func WithStateDir(dir string) Option {
	return func(s *Server) { s.stateDir = dir }
}

// WithTokenTTL bounds MBA travel tokens (default one hour).
func WithTokenTTL(ttl time.Duration) Option {
	return func(s *Server) {
		if ttl > 0 {
			s.tokenTTL = ttl
		}
	}
}

// New creates a Buyer Agent Server on host, wiring all resident agents. The
// registry must be host-specific: New registers the bsma/pa/httpa/bra/mba
// factories on it. engine must not be nil unless WithEngine is given — pass
// the platform's shared engine built over the integrated catalog.
//
// If coordCA is non-nil, creation follows Fig 4.1: the server requests
// admission from the Coordinator Agent (step 1) and the BSMA arrives by
// dispatch (steps 2–3) before setting up PA, HttpA and the databases
// (steps 4–6). With a nil coordCA the BSMA is created locally (standalone
// mode, same steps 4–6).
func New(host *aglet.Host, reg *aglet.Registry, engine *recommend.Engine, coordCA *aglet.Proxy, opts ...Option) (*Server, error) {
	signer, err := security.NewRandomSigner()
	if err != nil {
		return nil, fmt.Errorf("buyerserver: %w", err)
	}
	s := &Server{
		host:     host,
		reg:      reg,
		engine:   engine,
		signer:   signer,
		pending:  make(map[string]chan TaskResult),
		tokenTTL: time.Hour,
	}
	for _, opt := range opts {
		opt(s)
	}
	// Close any stores this constructor opened if a later setup step fails,
	// so a failed New never leaks WAL file handles.
	var opened []*kvstore.Store
	ok := false
	defer func() {
		if !ok {
			for _, db := range opened {
				db.Close()
			}
		}
	}()
	if s.stateDir != "" {
		if err := os.MkdirAll(s.stateDir, 0o755); err != nil {
			return nil, fmt.Errorf("buyerserver: creating state dir: %w", err)
		}
		if s.userDB == nil {
			db, err := kvstore.Open(filepath.Join(s.stateDir, "userdb.wal"))
			if err != nil {
				return nil, fmt.Errorf("buyerserver: opening UserDB: %w", err)
			}
			s.userDB = db
			opened = append(opened, db)
		}
		if s.bsmDB == nil {
			db, err := kvstore.Open(filepath.Join(s.stateDir, "bsmdb.wal"))
			if err != nil {
				return nil, fmt.Errorf("buyerserver: opening BSMDB: %w", err)
			}
			s.bsmDB = db
			opened = append(opened, db)
		}
	}
	if s.userDB == nil {
		s.userDB = kvstore.New()
	}
	if s.bsmDB == nil {
		s.bsmDB = kvstore.New()
	}
	s.tokens = security.NewTokenIssuer(s.signer, nil)
	s.challenger = security.NewChallenger(s.signer)
	if s.engine == nil {
		return nil, errors.New("buyerserver: nil recommendation engine")
	}
	if s.writes == nil {
		s.writes = s.engine
	}

	reg.Register(coordinator.BSMAType, func() aglet.Aglet { return &bsmaAgent{srv: s} })
	reg.Register("pa", func() aglet.Aglet { return &paAgent{srv: s} })
	reg.Register("httpa", func() aglet.Aglet { return &httpaAgent{srv: s} })
	reg.Register("bra", func() aglet.Aglet { return &braAgent{srv: s} })
	RegisterMBAType(reg)

	if coordCA != nil {
		// Fig 4.1 step 1: ask the coordinator to set us up; the CA creates
		// and dispatches the BSMA (steps 2–3), which performs steps 4–6 in
		// its OnArrival on this host.
		req, err := json.Marshal(coordinator.AdmitRequest{Name: host.Name(), Addr: host.Name()})
		if err != nil {
			return nil, fmt.Errorf("buyerserver: encoding admission request: %w", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if _, err := coordCA.Send(ctx, aglet.Message{Kind: coordinator.KindAdmit, Data: req}); err != nil {
			return nil, fmt.Errorf("buyerserver: admission: %w", err)
		}
		if err := s.waitFor(ctx, BSMAID); err != nil {
			return nil, fmt.Errorf("buyerserver: BSMA never arrived: %w", err)
		}
	} else {
		if _, err := host.Create(coordinator.BSMAType, BSMAID, []byte(host.Name())); err != nil {
			return nil, fmt.Errorf("buyerserver: creating BSMA: %w", err)
		}
	}
	ok = true
	return s, nil
}

// waitFor polls until agent id is live on the host or ctx expires.
func (s *Server) waitFor(ctx context.Context, id string) error {
	for !s.host.Has(id) {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
	return nil
}

// Host returns the server's aglet host.
func (s *Server) Host() *aglet.Host { return s.host }

// Engine returns the recommendation engine.
func (s *Server) Engine() *recommend.Engine { return s.engine }

// Tracer returns the workflow tracer (possibly nil).
func (s *Server) Tracer() *trace.Recorder { return s.tracer }

// Markets returns the marketplaces MBAs will visit.
func (s *Server) Markets() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.markets...)
}

// SetMarkets replaces the marketplace itinerary.
func (s *Server) SetMarkets(addrs ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.markets = append([]string(nil), addrs...)
}

// Close shuts down all resident agents and the databases.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.host.Close()
	if dberr := s.userDB.Close(); err == nil {
		err = dberr
	}
	if dberr := s.bsmDB.Close(); err == nil {
		err = dberr
	}
	return err
}

// --- consumer account operations (driven through the agents) ---

// Register creates a consumer account and an empty profile. Per §4.1
// principle 1, no BRA is created at registration.
func (s *Server) Register(ctx context.Context, userID string) error {
	_, err := s.sendBSMA(ctx, kindRegister, userReq{UserID: userID})
	return err
}

// Login brings the consumer online: the BSMA creates their BRA and loads
// the profile (§4.1 principle 1). Results that completed while the consumer
// was offline are returned (§3.2: the mechanism serves consumers offline).
func (s *Server) Login(ctx context.Context, userID string) ([]TaskResult, error) {
	reply, err := s.sendBSMA(ctx, kindLogin, userReq{UserID: userID})
	if err != nil {
		return nil, err
	}
	var lr loginReply
	if err := json.Unmarshal(reply.Data, &lr); err != nil {
		return nil, fmt.Errorf("buyerserver: decoding login reply: %w", err)
	}
	return lr.Inbox, nil
}

// Logout takes the consumer offline and terminates their BRA (§4.1
// principle 1).
func (s *Server) Logout(ctx context.Context, userID string) error {
	_, err := s.sendBSMA(ctx, kindLogout, userReq{UserID: userID})
	return err
}

// Online reports whether userID has a live or parked BRA.
func (s *Server) Online(userID string) bool {
	return s.host.Has(braID(userID)) || s.host.HasStored(braID(userID))
}

// Recommendations returns personalized recommendations outside any task
// (the "browsing" entry of Fig 3.2).
func (s *Server) Recommendations(userID, category string, n int) ([]recommend.Rec, error) {
	return s.engine.Recommend(recommend.StrategyAuto, userID, category, n)
}

func (s *Server) sendBSMA(ctx context.Context, kind string, v any) (aglet.Message, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return aglet.Message{}, fmt.Errorf("buyerserver: encoding %s: %w", kind, err)
	}
	return s.host.Send(ctx, BSMAID, aglet.Message{Kind: kind, Data: data})
}

func braID(userID string) string { return "bra:" + userID }

// nextTaskID allocates a unique task id.
func (s *Server) nextTaskID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.taskSeq++
	return fmt.Sprintf("task-%06d", s.taskSeq)
}

// registerPending creates the rendezvous channel the task's waiter blocks
// on. The channel is buffered so a completion with no waiter (consumer
// logged out) never blocks the BSMA.
func (s *Server) registerPending(taskID string) chan TaskResult {
	ch := make(chan TaskResult, 1)
	s.mu.Lock()
	s.pending[taskID] = ch
	s.mu.Unlock()
	return ch
}

func (s *Server) fulfil(taskID string, res TaskResult) {
	s.mu.Lock()
	ch, ok := s.pending[taskID]
	delete(s.pending, taskID)
	s.mu.Unlock()
	if ok {
		ch <- res
	}
}

func (s *Server) dropPending(taskID string) {
	s.mu.Lock()
	delete(s.pending, taskID)
	s.mu.Unlock()
}
