// Package workload generates the synthetic consumer universe the
// experiments run on. The paper evaluates on no dataset at all — it is a
// system paper — so, per the reproduction's substitution rules, we build a
// ground-truth generator in the standard style used to study collaborative
// filtering: every user has latent tastes (a few favoured categories and
// term preferences), products have topic structure, and a user's true
// affinity for a product is computable. Observed behaviour (queries, bids,
// purchases) is sampled from the affinity, and part of each user's
// high-affinity set is held out as the relevance judgment for
// precision/recall.
//
// Everything is deterministic given Config.Seed.
package workload

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"

	"agentrec/internal/catalog"
	"agentrec/internal/profile"
)

// Errors reported by the generator.
var (
	ErrBadConfig = errors.New("workload: invalid config")
)

// Config parameterizes the universe. Zero fields take the default in
// brackets.
type Config struct {
	Seed             uint64  // RNG seed [1]
	Users            int     // number of consumers [100]
	Products         int     // catalog size [500]
	Categories       int     // merchandise categories [10]
	SubsPerCategory  int     // sub-categories per category [3]
	TermsPerCategory int     // term vocabulary per category [12]
	TermsPerProduct  int     // characteristic terms per product [4]
	TastesPerUser    int     // latent favoured categories per user [2]
	RelevantPerUser  int     // ground-truth relevant products per user [20]
	HoldFraction     float64 // fraction of relevant set held out for eval [0.5]
	TrainBuyProb     float64 // probability a train interaction is a buy [0.5]
	NoiseEvents      int     // random off-taste queries per user [2]
	ColdStartUsers   int     // extra users generated with no train events [0]
}

func (c Config) withDefaults() Config {
	def := func(v *int, d int) {
		if *v <= 0 {
			*v = d
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	def(&c.Users, 100)
	def(&c.Products, 500)
	def(&c.Categories, 10)
	def(&c.SubsPerCategory, 3)
	def(&c.TermsPerCategory, 12)
	def(&c.TermsPerProduct, 4)
	def(&c.TastesPerUser, 2)
	def(&c.RelevantPerUser, 20)
	if c.HoldFraction <= 0 || c.HoldFraction >= 1 {
		c.HoldFraction = 0.5
	}
	if c.TrainBuyProb <= 0 || c.TrainBuyProb > 1 {
		c.TrainBuyProb = 0.5
	}
	if c.NoiseEvents < 0 {
		c.NoiseEvents = 0
	}
	if c.ColdStartUsers < 0 {
		c.ColdStartUsers = 0
	}
	return c
}

func (c Config) validate() error {
	if c.TermsPerProduct > c.TermsPerCategory {
		return fmt.Errorf("%w: TermsPerProduct %d > TermsPerCategory %d",
			ErrBadConfig, c.TermsPerProduct, c.TermsPerCategory)
	}
	if c.RelevantPerUser > c.Products {
		return fmt.Errorf("%w: RelevantPerUser %d > Products %d",
			ErrBadConfig, c.RelevantPerUser, c.Products)
	}
	return nil
}

// Event is one observed consumer interaction.
type Event struct {
	UserID    string            `json:"user_id"`
	ProductID string            `json:"product_id"`
	Behaviour profile.Behaviour `json:"behaviour"`
}

// User is one synthetic consumer with latent ground truth.
type User struct {
	ID        string             `json:"id"`
	Tastes    map[string]float64 `json:"tastes"`     // category -> affinity in (0,1]
	TermPrefs map[string]float64 `json:"term_prefs"` // term -> preference weight
	Train     []Event            `json:"train"`      // observed interactions
	Held      []string           `json:"held"`       // held-out relevant product ids
	ColdStart bool               `json:"cold_start"` // generated with no train events
}

// Universe is a fully generated world.
type Universe struct {
	Config   Config
	Catalog  *catalog.Catalog
	Products []*catalog.Product
	Users    []*User
}

// Generate builds a universe from cfg.
func Generate(cfg Config) (*Universe, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15))

	cats := make([]string, cfg.Categories)
	terms := make([][]string, cfg.Categories)
	for i := range cats {
		cats[i] = fmt.Sprintf("cat%02d", i)
		terms[i] = make([]string, cfg.TermsPerCategory)
		for j := range terms[i] {
			terms[i][j] = fmt.Sprintf("c%02dt%02d", i, j)
		}
	}

	u := &Universe{Config: cfg, Catalog: catalog.New()}
	u.Products = make([]*catalog.Product, 0, cfg.Products)
	for i := 0; i < cfg.Products; i++ {
		ci := rng.IntN(cfg.Categories)
		p := &catalog.Product{
			ID:          fmt.Sprintf("p%05d", i),
			Name:        fmt.Sprintf("Product %05d", i),
			Category:    cats[ci],
			SubCategory: fmt.Sprintf("%s-sub%d", cats[ci], rng.IntN(cfg.SubsPerCategory)),
			Terms:       make(map[string]float64, cfg.TermsPerProduct),
			PriceCents:  int64(1000 + rng.IntN(200000)),
			SellerID:    fmt.Sprintf("seller%d", rng.IntN(5)),
			Stock:       1 + rng.IntN(50),
		}
		for _, t := range pick(rng, terms[ci], cfg.TermsPerProduct) {
			p.Terms[t] = 0.25 + 0.75*rng.Float64()
		}
		if err := u.Catalog.Add(p); err != nil {
			return nil, err
		}
		u.Products = append(u.Products, p)
	}

	total := cfg.Users + cfg.ColdStartUsers
	u.Users = make([]*User, 0, total)
	for i := 0; i < total; i++ {
		usr := &User{
			ID:        fmt.Sprintf("u%04d", i),
			Tastes:    make(map[string]float64, cfg.TastesPerUser),
			TermPrefs: make(map[string]float64),
			ColdStart: i >= cfg.Users,
		}
		tasteCats := rng.Perm(cfg.Categories)[:cfg.TastesPerUser]
		for _, ci := range tasteCats {
			usr.Tastes[cats[ci]] = 0.5 + 0.5*rng.Float64()
			for _, t := range pick(rng, terms[ci], cfg.TermsPerCategory/2) {
				usr.TermPrefs[t] = 0.5 + 0.5*rng.Float64()
			}
		}
		u.generateInteractions(rng, usr)
		u.Users = append(u.Users, usr)
	}
	return u, nil
}

// Affinity is the latent ground-truth utility of product p for user usr:
// the taste for its category scaled by term-preference overlap.
func (u *Universe) Affinity(usr *User, p *catalog.Product) float64 {
	taste := usr.Tastes[p.Category]
	if taste == 0 {
		return 0
	}
	overlap := 0.0
	for t, w := range p.Terms {
		overlap += w * usr.TermPrefs[t]
	}
	return taste * (0.1 + overlap)
}

// generateInteractions computes the user's relevant set, splits it into
// train/held, and samples behaviour over the train portion.
func (u *Universe) generateInteractions(rng *rand.Rand, usr *User) {
	type scored struct {
		id  string
		aff float64
	}
	ranked := make([]scored, 0, len(u.Products))
	for _, p := range u.Products {
		if aff := u.Affinity(usr, p); aff > 0 {
			ranked = append(ranked, scored{p.ID, aff})
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].aff != ranked[j].aff {
			return ranked[i].aff > ranked[j].aff
		}
		return ranked[i].id < ranked[j].id
	})
	n := u.Config.RelevantPerUser
	if n > len(ranked) {
		n = len(ranked)
	}
	relevant := ranked[:n]

	// Shuffle then split so held-out items span the affinity range.
	idx := rng.Perm(len(relevant))
	hold := int(float64(len(relevant)) * u.Config.HoldFraction)
	for i, j := range idx {
		id := relevant[j].id
		if i < hold {
			usr.Held = append(usr.Held, id)
			continue
		}
		if usr.ColdStart {
			continue // cold-start users observe nothing
		}
		usr.Train = append(usr.Train, Event{UserID: usr.ID, ProductID: id, Behaviour: profile.BehaviourQuery})
		b := profile.BehaviourQuery
		if rng.Float64() < u.Config.TrainBuyProb {
			b = profile.BehaviourBuy
		}
		usr.Train = append(usr.Train, Event{UserID: usr.ID, ProductID: id, Behaviour: b})
	}
	sort.Strings(usr.Held)
	if usr.ColdStart {
		return
	}
	for i := 0; i < u.Config.NoiseEvents; i++ {
		p := u.Products[rng.IntN(len(u.Products))]
		usr.Train = append(usr.Train, Event{UserID: usr.ID, ProductID: p.ID, Behaviour: profile.BehaviourQuery})
	}
}

// BuildProfile replays a user's train events through the Fig 4.4 update
// rule and returns the learned profile.
func (u *Universe) BuildProfile(usr *User) (*profile.Profile, error) {
	return u.BuildProfileAlpha(usr, profile.DefaultAlpha)
}

// BuildProfileAlpha is BuildProfile with an explicit learning rate, for the
// F4.4 sweep.
func (u *Universe) BuildProfileAlpha(usr *User, alpha float64) (*profile.Profile, error) {
	p, err := profile.NewProfileAlpha(usr.ID, alpha)
	if err != nil {
		return nil, err
	}
	for _, ev := range usr.Train {
		prod, err := u.Catalog.Get(ev.ProductID)
		if err != nil {
			return nil, fmt.Errorf("workload: replaying %s: %w", usr.ID, err)
		}
		if err := p.Observe(prod.Evidence(ev.Behaviour)); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Purchases returns the set of product ids each user bought in training,
// the transaction history the CF recommender mines.
func (u *Universe) Purchases() map[string][]string {
	out := make(map[string][]string, len(u.Users))
	for _, usr := range u.Users {
		seen := make(map[string]bool)
		for _, ev := range usr.Train {
			if ev.Behaviour == profile.BehaviourBuy && !seen[ev.ProductID] {
				seen[ev.ProductID] = true
				out[usr.ID] = append(out[usr.ID], ev.ProductID)
			}
		}
		sort.Strings(out[usr.ID])
	}
	return out
}

// pick returns k distinct elements of pool, deterministically from rng.
func pick(rng *rand.Rand, pool []string, k int) []string {
	if k >= len(pool) {
		out := make([]string, len(pool))
		copy(out, pool)
		return out
	}
	idx := rng.Perm(len(pool))[:k]
	out := make([]string, k)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}
