package workload

import (
	"errors"
	"reflect"
	"testing"

	"agentrec/internal/profile"
)

func small() Config {
	return Config{Seed: 42, Users: 20, Products: 100, Categories: 5, RelevantPerUser: 10}
}

func TestGenerateDeterministic(t *testing.T) {
	u1, err := Generate(small())
	if err != nil {
		t.Fatal(err)
	}
	u2, err := Generate(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(u1.Users) != len(u2.Users) || len(u1.Products) != len(u2.Products) {
		t.Fatal("sizes differ across runs")
	}
	for i := range u1.Users {
		if !reflect.DeepEqual(u1.Users[i].Train, u2.Users[i].Train) {
			t.Fatalf("user %d train events differ", i)
		}
		if !reflect.DeepEqual(u1.Users[i].Held, u2.Users[i].Held) {
			t.Fatalf("user %d held sets differ", i)
		}
	}
	for i := range u1.Products {
		if !reflect.DeepEqual(u1.Products[i], u2.Products[i]) {
			t.Fatalf("product %d differs", i)
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	cfg := small()
	u1, _ := Generate(cfg)
	cfg.Seed = 43
	u2, _ := Generate(cfg)
	same := true
	for i := range u1.Users {
		if !reflect.DeepEqual(u1.Users[i].Held, u2.Users[i].Held) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical universes")
	}
}

func TestGenerateValidation(t *testing.T) {
	_, err := Generate(Config{TermsPerProduct: 50, TermsPerCategory: 10})
	if !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad terms config: %v", err)
	}
	_, err = Generate(Config{Products: 5, RelevantPerUser: 10})
	if !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad relevant config: %v", err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	u, err := Generate(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Users) != 100 || len(u.Products) != 500 {
		t.Errorf("defaults: %d users, %d products", len(u.Users), len(u.Products))
	}
	if u.Catalog.Len() != 500 {
		t.Errorf("catalog size %d", u.Catalog.Len())
	}
}

func TestUsersHaveTastesAndSplits(t *testing.T) {
	u, _ := Generate(small())
	for _, usr := range u.Users {
		if len(usr.Tastes) == 0 {
			t.Fatalf("user %s has no tastes", usr.ID)
		}
		if len(usr.Held) == 0 {
			t.Fatalf("user %s has no held-out items", usr.ID)
		}
		if len(usr.Train) == 0 {
			t.Fatalf("user %s has no train events", usr.ID)
		}
		// Held-out items never appear in train: no leakage.
		held := make(map[string]bool, len(usr.Held))
		for _, id := range usr.Held {
			held[id] = true
		}
		for _, ev := range usr.Train {
			if held[ev.ProductID] {
				t.Fatalf("user %s: held item %s leaked into train", usr.ID, ev.ProductID)
			}
		}
	}
}

func TestHeldItemsAreHighAffinity(t *testing.T) {
	u, _ := Generate(small())
	usr := u.Users[0]
	for _, id := range usr.Held {
		p, err := u.Catalog.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if u.Affinity(usr, p) <= 0 {
			t.Errorf("held item %s has zero affinity", id)
		}
	}
}

func TestAffinityZeroOutsideTastes(t *testing.T) {
	u, _ := Generate(small())
	usr := u.Users[0]
	for _, p := range u.Products {
		if _, tasted := usr.Tastes[p.Category]; !tasted {
			if u.Affinity(usr, p) != 0 {
				t.Fatalf("affinity nonzero for untasted category %s", p.Category)
			}
		}
	}
}

func TestColdStartUsers(t *testing.T) {
	cfg := small()
	cfg.ColdStartUsers = 5
	u, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var cold int
	for _, usr := range u.Users {
		if usr.ColdStart {
			cold++
			if len(usr.Train) != 0 {
				t.Errorf("cold-start user %s has train events", usr.ID)
			}
			if len(usr.Held) == 0 {
				t.Errorf("cold-start user %s has no held items to evaluate against", usr.ID)
			}
		}
	}
	if cold != 5 {
		t.Errorf("cold users = %d, want 5", cold)
	}
}

func TestBuildProfileLearnsTastedCategories(t *testing.T) {
	u, _ := Generate(small())
	usr := u.Users[0]
	p, err := u.BuildProfile(usr)
	if err != nil {
		t.Fatal(err)
	}
	if p.Observed != len(usr.Train) {
		t.Errorf("Observed = %d, want %d", p.Observed, len(usr.Train))
	}
	// The strongest learned category must be one the user actually tastes:
	// the profile reflects the latent truth.
	top := p.TopCategories(1)
	if len(top) == 0 {
		t.Fatal("profile learned nothing")
	}
	if _, ok := usr.Tastes[top[0].Term]; !ok {
		t.Errorf("top learned category %s not in tastes %v", top[0].Term, usr.Tastes)
	}
}

func TestPurchases(t *testing.T) {
	u, _ := Generate(small())
	purchases := u.Purchases()
	var total int
	for _, usr := range u.Users {
		buys := make(map[string]bool)
		for _, ev := range usr.Train {
			if ev.Behaviour == profile.BehaviourBuy {
				buys[ev.ProductID] = true
			}
		}
		if len(purchases[usr.ID]) != len(buys) {
			t.Fatalf("user %s: purchases %d, want %d (deduplicated)",
				usr.ID, len(purchases[usr.ID]), len(buys))
		}
		total += len(buys)
	}
	if total == 0 {
		t.Fatal("universe generated no purchases at all")
	}
}

func TestNoiseEvents(t *testing.T) {
	cfg := small()
	cfg.NoiseEvents = 5
	u, _ := Generate(cfg)
	base := small()
	u0, _ := Generate(base)
	// Same seed: noisy universe has exactly 5 more events per user.
	for i := range u0.Users {
		diff := len(u.Users[i].Train) - len(u0.Users[i].Train)
		if diff != 5 {
			t.Fatalf("user %d: noise added %d events, want 5", i, diff)
		}
	}
}

func TestPick(t *testing.T) {
	u, _ := Generate(small()) // just for rng setup pattern; test pick directly
	_ = u
	for _, p := range u.Products {
		if len(p.Terms) == 0 {
			t.Fatal("product without terms")
		}
	}
}
