package workload

// Scenario traffic schedules. A Traffic turns a generated Universe into an
// infinite, deterministic stream of platform operations — the op mix, user
// popularity skew, hot-category concentration, consumer churn, and
// adversarial shill installs are all parameters, so load scenarios are data
// rather than code (see internal/loadgen). Op(i) is a pure function of the
// op index: two replicas, two runs, or two GOMAXPROCS settings that ask for
// the same index get byte-identical operations, and concurrent workers can
// partition the index space with no coordination.

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// OpKind is one platform operation class.
type OpKind uint8

// Operation classes a scenario mixes.
const (
	OpRecommend      OpKind = iota // read: serve a top-N recommendation
	OpSetProfile                   // write: install or refresh a consumer profile
	OpRecordPurchase               // write: record one purchase
)

// String returns the schedule key used in result documents.
func (k OpKind) String() string {
	switch k {
	case OpRecommend:
		return "recommend"
	case OpSetProfile:
		return "set_profile"
	case OpRecordPurchase:
		return "purchase"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Op is one scheduled operation. The executing target interprets it:
// recommend ops read, set_profile ops install a profile built from
// ObserveProducts (for NewUser consumers a fresh one, for seeded consumers
// a refreshed copy of their seeded profile), purchase ops record one sale.
// Shill ops are the poisoning traffic: the target installs an attack
// profile mimicking the hot category's taste and purchases the promoted
// product.
type Op struct {
	Kind            OpKind   `json:"kind"`
	UserID          string   `json:"user_id"`
	Category        string   `json:"category,omitempty"`
	ProductID       string   `json:"product_id,omitempty"`
	ObserveProducts []string `json:"observe_products,omitempty"`
	TopN            int      `json:"top_n,omitempty"`
	NewUser         bool     `json:"new_user,omitempty"`
	Shill           bool     `json:"shill,omitempty"`
}

// TrafficConfig parameterizes a schedule. Mix weights are relative (they
// need not sum to 1); a zero mix defaults to recommend-only.
type TrafficConfig struct {
	Seed uint64 `json:"seed"`

	MixRecommend  float64 `json:"mix_recommend"`
	MixSetProfile float64 `json:"mix_set_profile"`
	MixPurchase   float64 `json:"mix_purchase"`

	// UserZipfS skews which consumers act: s > 1 ranks users by a Zipf law
	// (a small head generates most traffic). Zero or <= 1 means uniform.
	UserZipfS float64 `json:"user_zipf_s,omitempty"`

	// HotCategoryShare is the fraction of recommend and purchase traffic
	// aimed at the universe's hottest category (the one with the most
	// products); within it, products are Zipf-ranked so one flash-sale
	// product dominates. Zero spreads traffic uniformly.
	HotCategoryShare float64 `json:"hot_category_share,omitempty"`

	// ChurnFraction is the fraction of set_profile ops that introduce a
	// brand-new consumer (outside the seeded universe) instead of
	// refreshing a seeded one — sustained churn grows the community and,
	// under WithMaxResidentShards, forces shard spilling.
	ChurnFraction float64 `json:"churn_fraction,omitempty"`

	// ShillFraction is the fraction of set_profile ops that install an
	// adversarial shill profile promoting ShillTarget.
	ShillFraction float64 `json:"shill_fraction,omitempty"`
	ShillTarget   string  `json:"shill_target,omitempty"`

	// TopN is the recommendation size requested by recommend ops [10].
	TopN int `json:"top_n,omitempty"`
}

// Traffic is a deterministic operation schedule over a Universe. Safe for
// concurrent use: all state is immutable after NewTraffic.
type Traffic struct {
	cfg TrafficConfig

	users       []string // seeded consumer ids, ascending
	products    []string // product ids, ascending
	categories  []string // category names, ascending
	hotCategory string
	hotProducts []string // hot category's product ids, ascending
	mixCum      [3]float64
	mixTotal    float64
}

// NewTraffic builds a schedule for u.
func NewTraffic(u *Universe, cfg TrafficConfig) (*Traffic, error) {
	if cfg.MixRecommend < 0 || cfg.MixSetProfile < 0 || cfg.MixPurchase < 0 {
		return nil, fmt.Errorf("%w: negative mix weight", ErrBadConfig)
	}
	if cfg.MixRecommend+cfg.MixSetProfile+cfg.MixPurchase == 0 {
		cfg.MixRecommend = 1
	}
	if cfg.TopN <= 0 {
		cfg.TopN = 10
	}
	if cfg.ShillFraction > 0 && cfg.ShillTarget == "" {
		return nil, fmt.Errorf("%w: ShillFraction without ShillTarget", ErrBadConfig)
	}
	t := &Traffic{cfg: cfg}
	t.mixCum[0] = cfg.MixRecommend
	t.mixCum[1] = t.mixCum[0] + cfg.MixSetProfile
	t.mixCum[2] = t.mixCum[1] + cfg.MixPurchase
	t.mixTotal = t.mixCum[2]

	t.users = make([]string, 0, len(u.Users))
	for _, usr := range u.Users {
		t.users = append(t.users, usr.ID)
	}
	sort.Strings(t.users)
	if len(t.users) == 0 {
		return nil, fmt.Errorf("%w: universe has no users", ErrBadConfig)
	}

	byCat := make(map[string][]string)
	for _, p := range u.Products {
		t.products = append(t.products, p.ID)
		byCat[p.Category] = append(byCat[p.Category], p.ID)
	}
	sort.Strings(t.products)
	for cat, ids := range byCat {
		sort.Strings(ids)
		t.categories = append(t.categories, cat)
		// Hottest category = most products, ties broken lexicographically,
		// so every run and replica agrees on where the flash sale lands.
		if t.hotCategory == "" ||
			len(ids) > len(t.hotProducts) ||
			(len(ids) == len(t.hotProducts) && cat < t.hotCategory) {
			t.hotCategory = cat
			t.hotProducts = ids
		}
	}
	sort.Strings(t.categories)
	if len(t.products) == 0 {
		return nil, fmt.Errorf("%w: universe has no products", ErrBadConfig)
	}
	return t, nil
}

// HotCategory reports where the schedule concentrates skewed traffic.
func (t *Traffic) HotCategory() string { return t.hotCategory }

// TopN reports the resolved recommendation size recommend ops request —
// the configured value after defaulting, which callers measuring ranks
// against the served lists must match.
func (t *Traffic) TopN() int { return t.cfg.TopN }

// HotProducts returns the hot category's product ids in Zipf-rank order
// (index 0 is the flash-sale product).
func (t *Traffic) HotProducts() []string {
	out := make([]string, len(t.hotProducts))
	copy(out, t.hotProducts)
	return out
}

// rng returns the op's private generator: seeded by (schedule seed, op
// index), so Op is pure in i and workers need no shared state.
func (t *Traffic) rng(i uint64) *rand.Rand {
	return rand.New(rand.NewPCG(t.cfg.Seed^0x6c6f616467656e21, i))
}

// zipfPick picks an index in [0, n) Zipf-ranked with exponent s (rank 0
// hottest), or uniformly when s <= 1.
func zipfPick(rng *rand.Rand, s float64, n int) int {
	if n <= 1 {
		return 0
	}
	if s <= 1 {
		return rng.IntN(n)
	}
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	return int(z.Uint64())
}

// Op returns operation i of the schedule. Pure: the same i always yields
// the same op, on any run, replica, or GOMAXPROCS.
func (t *Traffic) Op(i uint64) Op {
	rng := t.rng(i)
	r := rng.Float64() * t.mixTotal
	switch {
	case r < t.mixCum[0]:
		return t.recommendOp(rng)
	case r < t.mixCum[1]:
		return t.setProfileOp(rng, i)
	default:
		return t.purchaseOp(rng)
	}
}

func (t *Traffic) pickUser(rng *rand.Rand) string {
	return t.users[zipfPick(rng, t.cfg.UserZipfS, len(t.users))]
}

// pickProduct draws a product: with probability HotCategoryShare a
// Zipf-ranked hot-category product, otherwise uniform over the catalog.
func (t *Traffic) pickProduct(rng *rand.Rand) (id, category string) {
	if t.cfg.HotCategoryShare > 0 && rng.Float64() < t.cfg.HotCategoryShare {
		return t.hotProducts[zipfPick(rng, 1.4, len(t.hotProducts))], t.hotCategory
	}
	return t.products[rng.IntN(len(t.products))], ""
}

func (t *Traffic) recommendOp(rng *rand.Rand) Op {
	op := Op{Kind: OpRecommend, UserID: t.pickUser(rng), TopN: t.cfg.TopN}
	if t.cfg.HotCategoryShare > 0 && rng.Float64() < t.cfg.HotCategoryShare {
		op.Category = t.hotCategory
	} else {
		op.Category = t.categories[rng.IntN(len(t.categories))]
	}
	return op
}

func (t *Traffic) setProfileOp(rng *rand.Rand, i uint64) Op {
	if f := t.cfg.ShillFraction; f > 0 && rng.Float64() < f {
		// One shill identity per op index: the attack grows the community,
		// it does not overwrite itself.
		obs := []string{t.cfg.ShillTarget}
		for k := 0; k < 3 && k < len(t.hotProducts); k++ {
			obs = append(obs, t.hotProducts[k])
		}
		return Op{
			Kind:            OpSetProfile,
			UserID:          fmt.Sprintf("shill-%08d", i),
			ProductID:       t.cfg.ShillTarget,
			ObserveProducts: obs,
			NewUser:         true,
			Shill:           true,
		}
	}
	if f := t.cfg.ChurnFraction; f > 0 && rng.Float64() < f {
		obs := make([]string, 0, 3)
		for k := 0; k < 3; k++ {
			id, _ := t.pickProduct(rng)
			obs = append(obs, id)
		}
		return Op{
			Kind:            OpSetProfile,
			UserID:          fmt.Sprintf("churn-%08d", i),
			ObserveProducts: obs,
			NewUser:         true,
		}
	}
	id, _ := t.pickProduct(rng)
	return Op{
		Kind:            OpSetProfile,
		UserID:          t.pickUser(rng),
		ObserveProducts: []string{id},
	}
}

func (t *Traffic) purchaseOp(rng *rand.Rand) Op {
	id, cat := t.pickProduct(rng)
	return Op{Kind: OpRecordPurchase, UserID: t.pickUser(rng), ProductID: id, Category: cat}
}
