package workload

import (
	"encoding/json"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
)

func testUniverse(t *testing.T, cfg Config) *Universe {
	t.Helper()
	u, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// universeBytes is the canonical byte form of everything Generate produces
// that downstream consumers (seeding, traffic, evaluation) read.
func universeBytes(t *testing.T, u *Universe) []byte {
	t.Helper()
	data, err := json.Marshal(struct {
		Products  any
		Users     any
		Purchases any
	}{u.Products, u.Users, u.Purchases()})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestGenerateByteDeterministic is the replica-agreement property: the same
// seed must yield a byte-identical universe on every run and under every
// GOMAXPROCS, because replicated servers and re-runs regenerate it
// independently and must agree.
func TestGenerateByteDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Users: 400, Products: 300, Categories: 12, ColdStartUsers: 10}
	first := universeBytes(t, testUniverse(t, cfg))

	for run := 0; run < 3; run++ {
		if got := universeBytes(t, testUniverse(t, cfg)); string(got) != string(first) {
			t.Fatalf("run %d: universe bytes diverged for the same seed", run)
		}
	}

	prev := runtime.GOMAXPROCS(1)
	serial := universeBytes(t, testUniverse(t, cfg))
	runtime.GOMAXPROCS(prev)
	if string(serial) != string(first) {
		t.Fatal("universe bytes depend on GOMAXPROCS")
	}

	if got := universeBytes(t, testUniverse(t, Config{Seed: 43, Users: 400, Products: 300, Categories: 12, ColdStartUsers: 10})); string(got) == string(first) {
		t.Fatal("different seeds produced identical universes; the property test is vacuous")
	}
}

// TestTrafficOpDeterministic: Op(i) is a pure function of the index — two
// independently built schedules agree op for op, and concurrent readers see
// exactly the serial sequence.
func TestTrafficOpDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Users: 300, Products: 200, Categories: 10}
	tcfg := TrafficConfig{
		Seed: 7, MixRecommend: 0.6, MixSetProfile: 0.25, MixPurchase: 0.15,
		UserZipfS: 1.2, HotCategoryShare: 0.7, ChurnFraction: 0.3,
	}
	a, err := NewTraffic(testUniverse(t, cfg), tcfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTraffic(testUniverse(t, cfg), tcfg)
	if err != nil {
		t.Fatal(err)
	}

	const n = 5000
	serial := make([]Op, n)
	for i := range serial {
		serial[i] = a.Op(uint64(i))
		if got := b.Op(uint64(i)); !reflect.DeepEqual(got, serial[i]) {
			t.Fatalf("op %d: independently built schedules disagree:\n%+v\n%+v", i, got, serial[i])
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 8 {
				if got := a.Op(uint64(i)); !reflect.DeepEqual(got, serial[i]) {
					t.Errorf("op %d: concurrent read diverged from serial", i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestTrafficMixShares: the realized kind mix tracks the configured weights.
func TestTrafficMixShares(t *testing.T) {
	u := testUniverse(t, Config{Seed: 3, Users: 200, Products: 150})
	tr, err := NewTraffic(u, TrafficConfig{Seed: 3, MixRecommend: 0.5, MixSetProfile: 0.3, MixPurchase: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	var counts [3]int
	for i := uint64(0); i < n; i++ {
		counts[tr.Op(i).Kind]++
	}
	for kind, want := range map[OpKind]float64{OpRecommend: 0.5, OpSetProfile: 0.3, OpRecordPurchase: 0.2} {
		got := float64(counts[kind]) / n
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("%v share = %.3f, want %.2f ± 0.02", kind, got, want)
		}
	}
}

// TestTrafficHotCategorySkew: with full concentration every recommend op
// hits the hot category, and the flash-sale head product dominates
// purchases.
func TestTrafficHotCategorySkew(t *testing.T) {
	u := testUniverse(t, Config{Seed: 5, Users: 100, Products: 200, Categories: 8})
	tr, err := NewTraffic(u, TrafficConfig{
		Seed: 5, MixRecommend: 0.5, MixPurchase: 0.5, HotCategoryShare: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	hot := tr.HotCategory()
	if hot == "" {
		t.Fatal("no hot category")
	}
	head := tr.HotProducts()[0]
	headBuys, buys := 0, 0
	for i := uint64(0); i < 4000; i++ {
		op := tr.Op(i)
		switch op.Kind {
		case OpRecommend:
			if op.Category != hot {
				t.Fatalf("op %d: recommend aimed at %q, want hot category %q", i, op.Category, hot)
			}
		case OpRecordPurchase:
			buys++
			if op.ProductID == head {
				headBuys++
			}
		}
	}
	if buys == 0 || float64(headBuys)/float64(buys) < 0.3 {
		t.Errorf("flash-sale head got %d/%d purchases; Zipf skew should concentrate on it", headBuys, buys)
	}
}

// TestTrafficChurnAndShill: churn ops introduce distinct new consumers;
// shill ops promote the target with fresh identities.
func TestTrafficChurnAndShill(t *testing.T) {
	u := testUniverse(t, Config{Seed: 9, Users: 50, Products: 100})
	tr, err := NewTraffic(u, TrafficConfig{
		Seed: 9, MixSetProfile: 1, ChurnFraction: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := uint64(0); i < 500; i++ {
		op := tr.Op(i)
		if !op.NewUser || !strings.HasPrefix(op.UserID, "churn-") {
			t.Fatalf("op %d: want churn new-user op, got %+v", i, op)
		}
		if seen[op.UserID] {
			t.Fatalf("churn id %s reused; churn must grow the community", op.UserID)
		}
		seen[op.UserID] = true
	}

	target := tr.HotProducts()[0]
	shill, err := NewTraffic(u, TrafficConfig{
		Seed: 9, MixSetProfile: 1, ShillFraction: 1, ShillTarget: target,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 200; i++ {
		op := shill.Op(i)
		if !op.Shill || op.ProductID != target || !strings.HasPrefix(op.UserID, "shill-") {
			t.Fatalf("op %d: want shill op promoting %s, got %+v", i, target, op)
		}
		if op.ObserveProducts[0] != target {
			t.Fatalf("op %d: shill profile must observe the target first, got %v", i, op.ObserveProducts)
		}
	}
}

// TestTrafficValidation: bad schedule configs are rejected.
func TestTrafficValidation(t *testing.T) {
	u := testUniverse(t, Config{Seed: 2, Users: 20, Products: 30})
	if _, err := NewTraffic(u, TrafficConfig{MixRecommend: -1}); err == nil {
		t.Error("negative mix accepted")
	}
	if _, err := NewTraffic(u, TrafficConfig{MixSetProfile: 1, ShillFraction: 0.5}); err == nil {
		t.Error("shill fraction without target accepted")
	}
	tr, err := NewTraffic(u, TrafficConfig{}) // zero mix defaults to recommend-only
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		if tr.Op(i).Kind != OpRecommend {
			t.Fatal("zero mix must default to recommend-only")
		}
	}
}
