package profile

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func evBuy(cat string, terms map[string]float64) Evidence {
	return Evidence{Category: cat, Terms: terms, Behaviour: BehaviourBuy}
}

func TestObserveAppliesUpdateRule(t *testing.T) {
	p, err := NewProfileAlpha("u1", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// W' = W + α·w_ji·q = 0 + 0.5·0.8·1.0 = 0.4
	if err := p.Observe(evBuy("laptop", map[string]float64{"ssd": 0.8})); err != nil {
		t.Fatal(err)
	}
	got := p.Categories["laptop"].Terms["ssd"]
	if math.Abs(got-0.4) > 1e-12 {
		t.Errorf("weight = %v, want 0.4", got)
	}
	// Second observation accumulates: 0.4 + 0.5·0.8·1.0 = 0.8
	p.Observe(evBuy("laptop", map[string]float64{"ssd": 0.8}))
	got = p.Categories["laptop"].Terms["ssd"]
	if math.Abs(got-0.8) > 1e-12 {
		t.Errorf("weight after second observe = %v, want 0.8", got)
	}
}

func TestBehaviourQualityOrdering(t *testing.T) {
	// The paper's observational-rating idea: stronger actions move the
	// profile more. query < negotiate < bid < buy.
	qs := []Behaviour{BehaviourQuery, BehaviourNegotiate, BehaviourBid, BehaviourBuy}
	for i := 1; i < len(qs); i++ {
		if qs[i].Quality() <= qs[i-1].Quality() {
			t.Errorf("%v quality %v not > %v quality %v",
				qs[i], qs[i].Quality(), qs[i-1], qs[i-1].Quality())
		}
	}
	if BehaviourBuy.Quality() != 1.0 {
		t.Errorf("buy quality = %v, want 1.0", BehaviourBuy.Quality())
	}
	if Behaviour(99).Quality() != 0 {
		t.Error("unknown behaviour must have zero quality")
	}
}

func TestBehaviourString(t *testing.T) {
	if BehaviourBuy.String() != "buy" || BehaviourQuery.String() != "query" {
		t.Error("behaviour names wrong")
	}
	if Behaviour(99).String() == "" {
		t.Error("unknown behaviour must still render")
	}
}

func TestObserveSubCategory(t *testing.T) {
	p := NewProfile("u1")
	ev := Evidence{
		Category:    "computer",
		Terms:       map[string]float64{"portable": 1},
		SubCategory: "notebook",
		SubTerms:    map[string]float64{"13inch": 1},
		Behaviour:   BehaviourBuy,
	}
	if err := p.Observe(ev); err != nil {
		t.Fatal(err)
	}
	sub := p.Categories["computer"].Subs["notebook"]
	if sub == nil || sub.Terms["13inch"] <= 0 {
		t.Fatalf("sub-category not updated: %+v", p.Categories["computer"])
	}
}

func TestObserveValidation(t *testing.T) {
	p := NewProfile("u1")
	if err := p.Observe(Evidence{Behaviour: BehaviourBuy}); !errors.Is(err, ErrNoCategory) {
		t.Errorf("missing category: %v", err)
	}
	err := p.Observe(Evidence{Category: "c", Terms: map[string]float64{"t": -1}, Behaviour: BehaviourBuy})
	if !errors.Is(err, ErrBadEvidence) {
		t.Errorf("negative weight: %v", err)
	}
	err = p.Observe(Evidence{Category: "c", SubCategory: "s", SubTerms: map[string]float64{"t": math.NaN()}, Behaviour: BehaviourBuy})
	if !errors.Is(err, ErrBadEvidence) {
		t.Errorf("NaN sub weight: %v", err)
	}
}

func TestNewProfileAlphaValidation(t *testing.T) {
	for _, alpha := range []float64{0, -0.1, 1.5} {
		if _, err := NewProfileAlpha("u", alpha); !errors.Is(err, ErrBadAlpha) {
			t.Errorf("alpha %v accepted", alpha)
		}
	}
	if _, err := NewProfileAlpha("u", 1.0); err != nil {
		t.Errorf("alpha 1.0 rejected: %v", err)
	}
}

func TestQueryMovesProfileLessThanBuy(t *testing.T) {
	q := NewProfile("u1")
	b := NewProfile("u2")
	terms := map[string]float64{"gpu": 1}
	q.Observe(Evidence{Category: "pc", Terms: terms, Behaviour: BehaviourQuery})
	b.Observe(Evidence{Category: "pc", Terms: terms, Behaviour: BehaviourBuy})
	if q.Categories["pc"].Terms["gpu"] >= b.Categories["pc"].Terms["gpu"] {
		t.Error("query moved profile at least as much as buy")
	}
}

func TestDecay(t *testing.T) {
	p := NewProfile("u1")
	p.Observe(evBuy("c", map[string]float64{"t": 1}))
	before := p.Categories["c"].Terms["t"]
	p.Decay(0.5)
	after := p.Categories["c"].Terms["t"]
	if math.Abs(after-before/2) > 1e-12 {
		t.Errorf("decay: %v -> %v", before, after)
	}
	// Factor >= 1 is a no-op; negative clamps to zero-out.
	p.Decay(1.5)
	if p.Categories["c"].Terms["t"] != after {
		t.Error("decay >= 1 changed weights")
	}
	p.Decay(-1)
	if p.Categories["c"].Terms["t"] != 0 {
		t.Error("negative decay factor did not clamp to 0")
	}
}

func TestDecayReachesSubTerms(t *testing.T) {
	p := NewProfile("u1")
	p.Observe(Evidence{
		Category: "c", Terms: map[string]float64{"t": 1},
		SubCategory: "s", SubTerms: map[string]float64{"u": 1},
		Behaviour: BehaviourBuy,
	})
	p.Decay(0.5)
	if got := p.Categories["c"].Subs["s"].Terms["u"]; math.Abs(got-0.15) > 1e-12 {
		t.Errorf("sub term after decay = %v, want 0.15", got)
	}
}

func TestPrune(t *testing.T) {
	p := NewProfile("u1")
	p.Observe(evBuy("keep", map[string]float64{"heavy": 10}))
	p.Observe(Evidence{Category: "drop", Terms: map[string]float64{"light": 0.001}, Behaviour: BehaviourQuery})
	p.Prune(0.01)
	if _, ok := p.Categories["drop"]; ok {
		t.Error("light category survived prune")
	}
	if _, ok := p.Categories["keep"]; !ok {
		t.Error("heavy category pruned")
	}
}

func TestPruneEmptySubCategories(t *testing.T) {
	p := NewProfile("u1")
	p.Observe(Evidence{
		Category: "c", Terms: map[string]float64{"big": 100},
		SubCategory: "s", SubTerms: map[string]float64{"tiny": 0.0001},
		Behaviour: BehaviourBuy,
	})
	p.Prune(0.01)
	if _, ok := p.Categories["c"].Subs["s"]; ok {
		t.Error("empty sub-category survived prune")
	}
}

func TestPreferenceValueSumsEverything(t *testing.T) {
	p, _ := NewProfileAlpha("u1", 1.0)
	p.Observe(Evidence{
		Category: "c", Terms: map[string]float64{"a": 1, "b": 2},
		SubCategory: "s", SubTerms: map[string]float64{"d": 3},
		Behaviour: BehaviourBuy,
	})
	if got := p.PreferenceValue("c"); math.Abs(got-6) > 1e-12 {
		t.Errorf("PreferenceValue = %v, want 6", got)
	}
	if p.PreferenceValue("missing") != 0 {
		t.Error("missing category must have zero preference")
	}
}

func TestVectorKeys(t *testing.T) {
	p, _ := NewProfileAlpha("u1", 1.0)
	p.Observe(Evidence{
		Category: "cat", Terms: map[string]float64{"t": 1},
		SubCategory: "sub", SubTerms: map[string]float64{"u": 2},
		Behaviour: BehaviourBuy,
	})
	v := p.Vector()
	if v["cat/t"] != 1 {
		t.Errorf("cat/t = %v", v["cat/t"])
	}
	if v["cat/sub/u"] != 2 {
		t.Errorf("cat/sub/u = %v", v["cat/sub/u"])
	}
}

func TestTopCategoriesAndTerms(t *testing.T) {
	p, _ := NewProfileAlpha("u1", 1.0)
	p.Observe(evBuy("strong", map[string]float64{"x": 5}))
	p.Observe(evBuy("weak", map[string]float64{"x": 1}))
	top := p.TopCategories(1)
	if len(top) != 1 || top[0].Term != "strong" {
		t.Errorf("TopCategories = %v", top)
	}
	all := p.TopCategories(-1)
	if len(all) != 2 {
		t.Errorf("TopCategories(-1) = %v", all)
	}

	p.Observe(evBuy("strong", map[string]float64{"y": 10}))
	terms := p.TopTerms("strong", 1)
	if len(terms) != 1 || terms[0].Term != "y" {
		t.Errorf("TopTerms = %v", terms)
	}
	if got := p.TopTerms("missing", 5); got != nil {
		t.Errorf("TopTerms(missing) = %v", got)
	}
}

func TestTopDeterministicOnTies(t *testing.T) {
	p, _ := NewProfileAlpha("u1", 1.0)
	p.Observe(evBuy("c", map[string]float64{"b": 1, "a": 1, "z": 1}))
	for i := 0; i < 10; i++ {
		terms := p.TopTerms("c", 3)
		if terms[0].Term != "a" || terms[1].Term != "b" || terms[2].Term != "z" {
			t.Fatalf("tie order not deterministic: %v", terms)
		}
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	p, _ := NewProfileAlpha("u1", 0.7)
	p.Observe(Evidence{
		Category: "c", Terms: map[string]float64{"t": 1},
		SubCategory: "s", SubTerms: map[string]float64{"u": 1},
		Behaviour: BehaviourBid, At: time.Now(),
	})
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if q.UserID != "u1" || q.Alpha != 0.7 || q.Observed != 1 {
		t.Errorf("round trip lost header: %+v", q)
	}
	if math.Abs(q.Categories["c"].Terms["t"]-p.Categories["c"].Terms["t"]) > 1e-15 {
		t.Error("round trip lost weights")
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestUnmarshalEmptyObjectUsable(t *testing.T) {
	p, err := Unmarshal([]byte("{}"))
	if err != nil {
		t.Fatal(err)
	}
	// Must be usable: nil maps repaired, alpha defaulted.
	if err := p.Observe(evBuy("c", map[string]float64{"t": 1})); err != nil {
		t.Fatal(err)
	}
	if p.Alpha != DefaultAlpha {
		t.Errorf("Alpha = %v", p.Alpha)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p, _ := NewProfileAlpha("u1", 1.0)
	p.Observe(Evidence{
		Category: "c", Terms: map[string]float64{"t": 1},
		SubCategory: "s", SubTerms: map[string]float64{"u": 1},
		Behaviour: BehaviourBuy,
	})
	c := p.Clone()
	c.Categories["c"].Terms["t"] = 99
	c.Categories["c"].Subs["s"].Terms["u"] = 99
	if p.Categories["c"].Terms["t"] == 99 || p.Categories["c"].Subs["s"].Terms["u"] == 99 {
		t.Error("Clone shares maps with original")
	}
}

func TestTermCount(t *testing.T) {
	p := NewProfile("u1")
	p.Observe(Evidence{
		Category: "c", Terms: map[string]float64{"a": 1, "b": 1},
		SubCategory: "s", SubTerms: map[string]float64{"d": 1},
		Behaviour: BehaviourBuy,
	})
	if got := p.TermCount(); got != 3 {
		t.Errorf("TermCount = %d, want 3", got)
	}
}

// Property: weights never decrease under Observe (all evidence positive),
// and Observed counts every accepted observation.
func TestObserveMonotoneProperty(t *testing.T) {
	fn := func(weights []float64, behaviours []uint8) bool {
		p := NewProfile("u")
		count := 0
		for i, w := range weights {
			b := BehaviourQuery
			if len(behaviours) > 0 {
				b = Behaviour(behaviours[i%len(behaviours)]%4 + 1)
			}
			w = math.Abs(w)
			if math.IsInf(w, 0) || math.IsNaN(w) {
				continue
			}
			before := p.Categories["c"]
			var beforeW float64
			if before != nil {
				beforeW = before.Terms["t"]
			}
			if err := p.Observe(Evidence{Category: "c", Terms: map[string]float64{"t": w}, Behaviour: b}); err != nil {
				return false
			}
			count++
			if p.Categories["c"].Terms["t"] < beforeW {
				return false
			}
		}
		return p.Observed == count
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Marshal/Unmarshal is lossless for the vector view.
func TestSerializationLosslessProperty(t *testing.T) {
	fn := func(catSeed, termSeed uint8, w float64) bool {
		w = math.Abs(w)
		if math.IsInf(w, 0) || math.IsNaN(w) || w > 1e100 {
			return true
		}
		p, _ := NewProfileAlpha("u", 1.0)
		cat := string(rune('a' + catSeed%5))
		term := string(rune('k' + termSeed%5))
		p.Observe(Evidence{Category: cat, Terms: map[string]float64{term: w}, Behaviour: BehaviourBuy})
		data, err := p.Marshal()
		if err != nil {
			return false
		}
		q, err := Unmarshal(data)
		if err != nil {
			return false
		}
		v1, v2 := p.Vector(), q.Vector()
		if len(v1) != len(v2) {
			return false
		}
		for k, x := range v1 {
			if math.Abs(v2[k]-x) > 1e-9*math.Max(1, math.Abs(x)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Convergence: repeated observation of the same merchandise drives the
// relative ordering of term weights toward the merchandise's term profile —
// the "learning" property the mechanism relies on (F4.4).
func TestRepeatedObservationConverges(t *testing.T) {
	p, _ := NewProfileAlpha("u", 0.1)
	doc := map[string]float64{"dominant": 1.0, "minor": 0.1}
	for i := 0; i < 100; i++ {
		p.Observe(evBuy("c", doc))
	}
	terms := p.Categories["c"].Terms
	ratio := terms["dominant"] / terms["minor"]
	if math.Abs(ratio-10) > 1e-6 {
		t.Errorf("weight ratio = %v, want 10 (the document's term ratio)", ratio)
	}
}
