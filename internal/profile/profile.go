// Package profile implements the consumer profile model of the paper's §4.4
// (Fig 4.4):
//
//	Profile = <Category, Terms_of_Category, <Sub_Category, Terms_of_Sub_Category>>
//
// A profile is a two-level hierarchy of weighted terms: top-level merchandise
// categories, each holding characteristic terms, each optionally holding
// sub-categories with their own terms. The Profile Agent updates it with the
// paper's learning rule (quoted from Middleton):
//
//	W_ci' = W_ci + α · Σ_j (w_ji · quality_of_feedback)
//
// where W_ci is the weight of term i in category c, w_ji the weight of term
// i in observed "document" j (here: the merchandise the consumer queried,
// bid on, or bought), α the learning rate, and quality_of_feedback scales
// with how strong the behavioural signal is (a purchase says more than a
// browse — §2.3's observational ratings).
//
// The paper does not give numeric feedback qualities; the constants below
// are this implementation's calibration, ordered query < bid < buy, and the
// F4.4 experiment sweeps them.
package profile

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// Behaviour identifies the consumer action that produced an observation.
type Behaviour int

// Behaviours, ordered by increasing signal strength.
const (
	BehaviourQuery Behaviour = iota + 1
	BehaviourNegotiate
	BehaviourBid
	BehaviourBuy
)

// String returns the behaviour name.
func (b Behaviour) String() string {
	switch b {
	case BehaviourQuery:
		return "query"
	case BehaviourNegotiate:
		return "negotiate"
	case BehaviourBid:
		return "bid"
	case BehaviourBuy:
		return "buy"
	default:
		return fmt.Sprintf("behaviour(%d)", int(b))
	}
}

// Quality returns the feedback quality for the behaviour: the
// quality_of_feedback factor in the Fig 4.4 update rule.
func (b Behaviour) Quality() float64 {
	switch b {
	case BehaviourQuery:
		return 0.2
	case BehaviourNegotiate:
		return 0.4
	case BehaviourBid:
		return 0.6
	case BehaviourBuy:
		return 1.0
	default:
		return 0
	}
}

// DefaultAlpha is the learning rate used when a Profile is built with
// NewProfile; §4.4 leaves α free, experiment F4.4 sweeps it.
const DefaultAlpha = 0.3

// Errors reported by the package.
var (
	ErrBadAlpha    = errors.New("profile: learning rate must be in (0, 1]")
	ErrNoCategory  = errors.New("profile: observation has no category")
	ErrBadEvidence = errors.New("profile: negative term weight in evidence")
)

// SubCategory is the inner level of Fig 4.4: a named bucket of weighted
// terms beneath a category.
type SubCategory struct {
	Name  string             `json:"name"`
	Terms map[string]float64 `json:"terms"`
}

// Category is the outer level of Fig 4.4: a merchandise category with its
// characteristic terms and sub-categories.
type Category struct {
	Name  string                  `json:"name"`
	Terms map[string]float64      `json:"terms"`
	Subs  map[string]*SubCategory `json:"subs,omitempty"`
}

// Profile is one consumer's interest model. The zero value is not usable;
// construct with NewProfile. Profile is not safe for concurrent mutation;
// the Profile Agent serializes updates per user (one PA per mechanism, §3.3).
type Profile struct {
	UserID     string               `json:"user_id"`
	Alpha      float64              `json:"alpha"`
	Categories map[string]*Category `json:"categories"`
	Observed   int                  `json:"observed"` // observations applied
	UpdatedAt  time.Time            `json:"updated_at"`
}

// NewProfile returns an empty profile for userID with DefaultAlpha.
func NewProfile(userID string) *Profile {
	p, _ := NewProfileAlpha(userID, DefaultAlpha)
	return p
}

// NewProfileAlpha returns an empty profile with learning rate alpha.
func NewProfileAlpha(userID string, alpha float64) (*Profile, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("%w: %v", ErrBadAlpha, alpha)
	}
	return &Profile{
		UserID:     userID,
		Alpha:      alpha,
		Categories: make(map[string]*Category),
	}, nil
}

// Evidence is one observed interaction with a piece of merchandise: the
// "document j" of the update rule. Terms carry w_ji weights; SubTerms the
// sub-category's. Weights must be non-negative.
type Evidence struct {
	Category    string
	Terms       map[string]float64
	SubCategory string
	SubTerms    map[string]float64
	Behaviour   Behaviour
	At          time.Time
}

// Observe applies the Fig 4.4 update rule for one piece of evidence:
// every term i gains α · w_ji · quality. Unknown categories, sub-categories
// and terms are created on first sight.
func (p *Profile) Observe(ev Evidence) error {
	if ev.Category == "" {
		return ErrNoCategory
	}
	for _, w := range ev.Terms {
		if w < 0 || math.IsNaN(w) {
			return fmt.Errorf("%w: category terms", ErrBadEvidence)
		}
	}
	for _, w := range ev.SubTerms {
		if w < 0 || math.IsNaN(w) {
			return fmt.Errorf("%w: sub-category terms", ErrBadEvidence)
		}
	}

	quality := ev.Behaviour.Quality()
	cat := p.Categories[ev.Category]
	if cat == nil {
		cat = &Category{Name: ev.Category, Terms: make(map[string]float64)}
		p.Categories[ev.Category] = cat
	}
	for term, wji := range ev.Terms {
		cat.Terms[term] += p.Alpha * wji * quality
	}
	if ev.SubCategory != "" {
		if cat.Subs == nil {
			cat.Subs = make(map[string]*SubCategory)
		}
		sub := cat.Subs[ev.SubCategory]
		if sub == nil {
			sub = &SubCategory{Name: ev.SubCategory, Terms: make(map[string]float64)}
			cat.Subs[ev.SubCategory] = sub
		}
		for term, wji := range ev.SubTerms {
			sub.Terms[term] += p.Alpha * wji * quality
		}
	}
	p.Observed++
	if ev.At.After(p.UpdatedAt) {
		p.UpdatedAt = ev.At
	}
	return nil
}

// Decay multiplies every weight by factor in [0,1), aging out stale
// interests; §5.2's "improve the profile algorithm" direction.
func (p *Profile) Decay(factor float64) {
	if factor < 0 {
		factor = 0
	}
	if factor >= 1 {
		return
	}
	for _, cat := range p.Categories {
		for term := range cat.Terms {
			cat.Terms[term] *= factor
		}
		for _, sub := range cat.Subs {
			for term := range sub.Terms {
				sub.Terms[term] *= factor
			}
		}
	}
}

// Prune removes terms lighter than minWeight, then empty sub-categories and
// categories, bounding profile growth.
func (p *Profile) Prune(minWeight float64) {
	for cname, cat := range p.Categories {
		for term, w := range cat.Terms {
			if w < minWeight {
				delete(cat.Terms, term)
			}
		}
		for sname, sub := range cat.Subs {
			for term, w := range sub.Terms {
				if w < minWeight {
					delete(sub.Terms, term)
				}
			}
			if len(sub.Terms) == 0 {
				delete(cat.Subs, sname)
			}
		}
		if len(cat.Terms) == 0 && len(cat.Subs) == 0 {
			delete(p.Categories, cname)
		}
	}
}

// PreferenceValue returns the aggregate preference weight T for a category:
// the "preference merchandise item value" the Fig 4.5 discard rule compares
// between consumers. It sums the category's term weights including
// sub-categories.
func (p *Profile) PreferenceValue(category string) float64 {
	cat := p.Categories[category]
	if cat == nil {
		return 0
	}
	var sum float64
	for _, w := range cat.Terms {
		sum += w
	}
	for _, sub := range cat.Subs {
		for _, w := range sub.Terms {
			sum += w
		}
	}
	return sum
}

// Vector flattens the profile into a sparse vector keyed
// "category/term" and "category/sub/term", the form the similarity
// algorithms consume.
func (p *Profile) Vector() map[string]float64 {
	out := make(map[string]float64)
	for cname, cat := range p.Categories {
		for term, w := range cat.Terms {
			out[cname+"/"+term] = w
		}
		for sname, sub := range cat.Subs {
			for term, w := range sub.Terms {
				out[cname+"/"+sname+"/"+term] = w
			}
		}
	}
	return out
}

// WeightedTerm pairs a term with its weight, for ranked listings.
type WeightedTerm struct {
	Term   string
	Weight float64
}

// TopCategories returns up to n categories ranked by preference value.
func (p *Profile) TopCategories(n int) []WeightedTerm {
	out := make([]WeightedTerm, 0, len(p.Categories))
	for name := range p.Categories {
		out = append(out, WeightedTerm{Term: name, Weight: p.PreferenceValue(name)})
	}
	sortWeighted(out)
	if n >= 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// TopTerms returns up to n terms of one category (sub-category terms
// included, keyed "sub/term") ranked by weight.
func (p *Profile) TopTerms(category string, n int) []WeightedTerm {
	cat := p.Categories[category]
	if cat == nil {
		return nil
	}
	out := make([]WeightedTerm, 0, len(cat.Terms))
	for term, w := range cat.Terms {
		out = append(out, WeightedTerm{Term: term, Weight: w})
	}
	for sname, sub := range cat.Subs {
		for term, w := range sub.Terms {
			out = append(out, WeightedTerm{Term: sname + "/" + term, Weight: w})
		}
	}
	sortWeighted(out)
	if n >= 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// sortWeighted orders by weight descending, breaking ties by term name so
// listings are deterministic.
func sortWeighted(ts []WeightedTerm) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Weight != ts[j].Weight {
			return ts[i].Weight > ts[j].Weight
		}
		return ts[i].Term < ts[j].Term
	})
}

// Clone returns a deep copy of the profile.
func (p *Profile) Clone() *Profile {
	out := &Profile{
		UserID:     p.UserID,
		Alpha:      p.Alpha,
		Categories: make(map[string]*Category, len(p.Categories)),
		Observed:   p.Observed,
		UpdatedAt:  p.UpdatedAt,
	}
	for cname, cat := range p.Categories {
		nc := &Category{Name: cat.Name, Terms: make(map[string]float64, len(cat.Terms))}
		for t, w := range cat.Terms {
			nc.Terms[t] = w
		}
		if cat.Subs != nil {
			nc.Subs = make(map[string]*SubCategory, len(cat.Subs))
			for sname, sub := range cat.Subs {
				ns := &SubCategory{Name: sub.Name, Terms: make(map[string]float64, len(sub.Terms))}
				for t, w := range sub.Terms {
					ns.Terms[t] = w
				}
				nc.Subs[sname] = ns
			}
		}
		out.Categories[cname] = nc
	}
	return out
}

// Marshal serializes the profile to JSON.
func (p *Profile) Marshal() ([]byte, error) {
	return json.Marshal(p)
}

// Unmarshal restores a profile serialized by Marshal.
func Unmarshal(data []byte) (*Profile, error) {
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("profile: decoding: %w", err)
	}
	if p.Categories == nil {
		p.Categories = make(map[string]*Category)
	}
	if p.Alpha == 0 {
		p.Alpha = DefaultAlpha
	}
	return &p, nil
}

// DenseDims is the dimensionality of Summary.Dense, the feature-hashed
// projection of the sparse profile vector. 64 dimensions keep a projection
// at 256 bytes while preserving cosine structure well enough for
// locality-sensitive hashing (the projection shortlists; exact scoring
// still runs on the sparse vector).
const DenseDims = 64

// Summary is a cheap immutable fingerprint of a profile: the flattened
// similarity vector plus the per-category preference values, computed once.
// The recommendation engine builds one per SetProfile and hands it to the
// per-category candidate index, so neighbour search never re-flattens or
// re-sums stored profiles pair by pair. Norm and Dense are derived from Vec
// at the same time: the Euclidean norm feeds cosine scoring without a
// per-pair re-sum, and the signed feature-hash projection feeds the
// random-hyperplane ANN index.
type Summary struct {
	UserID string
	Vec    map[string]float64 // Vector(), flattened once
	Prefs  map[string]float64 // category -> PreferenceValue; only > 0 entries
	Terms  int                // TermCount()
	Norm   float64            // Euclidean norm of Vec, cached at construction
	Dense  []float32          // DenseDims-wide signed feature hash of Vec
}

// Summary computes the profile's fingerprint. The returned maps are
// snapshots; mutating the profile afterwards does not affect them.
func (p *Profile) Summary() *Summary {
	s := &Summary{
		UserID: p.UserID,
		Vec:    p.Vector(),
		Prefs:  make(map[string]float64, len(p.Categories)),
		Terms:  p.TermCount(),
	}
	for name := range p.Categories {
		if v := p.PreferenceValue(name); v > 0 {
			s.Prefs[name] = v
		}
	}
	var sq float64
	dense := make([]float32, DenseDims)
	for term, w := range s.Vec {
		sq += w * w
		dim, sign := denseSlot(term)
		if sign {
			dense[dim] += float32(w)
		} else {
			dense[dim] -= float32(w)
		}
	}
	s.Norm = math.Sqrt(sq)
	s.Dense = dense
	return s
}

// denseSlot hashes a term to its projection dimension and sign (fnv-1a
// 64-bit: low bits pick the dimension, the next bit the sign). The signed
// "hashing trick" makes colliding terms cancel in expectation, so the dense
// dot product is an unbiased estimate of the sparse one.
func denseSlot(term string) (dim int, positive bool) {
	h := uint64(14695981039346656037)
	for i := 0; i < len(term); i++ {
		h ^= uint64(term[i])
		h *= 1099511628211
	}
	return int(h % DenseDims), h>>63 == 0
}

// Equal reports whether two summaries describe identical profile content:
// same flattened vector, term for term and weight for weight. The derived
// fields (Prefs, Norm, Dense) are deliberately not compared — they are
// float sums over Vec in map iteration order, so two computations of the
// same content can differ in the last ulp. Identical Vec content makes
// them equivalent. The replication catch-up path uses Equal to skip index
// churn for consumers a shard snapshot did not actually change.
func (s *Summary) Equal(o *Summary) bool {
	if s == nil || o == nil {
		return s == o
	}
	if s.UserID != o.UserID || s.Terms != o.Terms || len(s.Vec) != len(o.Vec) {
		return false
	}
	for k, v := range s.Vec {
		if w, ok := o.Vec[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// TermCount reports the total number of weighted terms in the profile,
// across categories and sub-categories.
func (p *Profile) TermCount() int {
	n := 0
	for _, cat := range p.Categories {
		n += len(cat.Terms)
		for _, sub := range cat.Subs {
			n += len(sub.Terms)
		}
	}
	return n
}
