package security

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func testSigner(t *testing.T) *Signer {
	t.Helper()
	return NewSigner([]byte("0123456789abcdef0123456789abcdef"))
}

func TestSignVerifyRoundTrip(t *testing.T) {
	s := testSigner(t)
	payload := []byte("the MBA migrates back")
	if err := s.Verify(payload, s.Sign(payload)); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyRejectsTamperedPayload(t *testing.T) {
	s := testSigner(t)
	tag := s.Sign([]byte("genuine"))
	if err := s.Verify([]byte("forged"), tag); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("Verify of tampered payload = %v, want ErrBadSignature", err)
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	a := NewSigner([]byte("key-a"))
	b := NewSigner([]byte("key-b"))
	payload := []byte("data")
	if err := b.Verify(payload, a.Sign(payload)); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("cross-key Verify = %v, want ErrBadSignature", err)
	}
}

func TestNewSignerCopiesKey(t *testing.T) {
	key := []byte("mutable-key-0123")
	s := NewSigner(key)
	tagBefore := s.Sign([]byte("x"))
	key[0] = 'X' // caller scribbles on its slice
	tagAfter := s.Sign([]byte("x"))
	if string(tagBefore) != string(tagAfter) {
		t.Fatal("Signer key aliased caller's slice")
	}
}

func TestNewRandomSignerKeysDiffer(t *testing.T) {
	a, err := NewRandomSigner()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRandomSigner()
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("p")
	if a.Verify(payload, b.Sign(payload)) == nil {
		t.Fatal("two random signers verified each other's tags")
	}
}

func TestSignDeterministic(t *testing.T) {
	s := testSigner(t)
	fn := func(payload []byte) bool {
		t1, t2 := s.Sign(payload), s.Sign(payload)
		return string(t1) == string(t2) && s.Verify(payload, t1) == nil
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func fixedClock(at time.Time) func() time.Time { return func() time.Time { return at } }

func TestTokenIssueVerify(t *testing.T) {
	now := time.Date(2026, 6, 12, 0, 0, 0, 0, time.UTC)
	ti := NewTokenIssuer(testSigner(t), fixedClock(now))
	tok := ti.Issue("mba-42", "query:laptop", time.Minute)

	got, err := ti.Verify(tok, "mba-42")
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if got.Subject != "mba-42" || got.Task != "query:laptop" {
		t.Errorf("token = %+v", got)
	}
	if !got.Expiry.Equal(now.Add(time.Minute)) {
		t.Errorf("Expiry = %v, want %v", got.Expiry, now.Add(time.Minute))
	}
}

func TestTokenSubjectsWithDelimiters(t *testing.T) {
	ti := NewTokenIssuer(testSigner(t), nil)
	// Subjects containing the wire delimiter must survive round-trip.
	tok := ti.Issue("agent|with|pipes", "task|x", time.Minute)
	got, err := ti.Verify(tok, "agent|with|pipes")
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if got.Task != "task|x" {
		t.Errorf("Task = %q", got.Task)
	}
}

func TestTokenExpiry(t *testing.T) {
	now := time.Date(2026, 6, 12, 0, 0, 0, 0, time.UTC)
	current := now
	ti := NewTokenIssuer(testSigner(t), func() time.Time { return current })
	tok := ti.Issue("mba-1", "t", time.Minute)

	current = now.Add(2 * time.Minute)
	if _, err := ti.Verify(tok, "mba-1"); !errors.Is(err, ErrExpired) {
		t.Fatalf("Verify expired token = %v, want ErrExpired", err)
	}
}

func TestTokenWrongSubject(t *testing.T) {
	ti := NewTokenIssuer(testSigner(t), nil)
	tok := ti.Issue("mba-1", "t", time.Minute)
	if _, err := ti.Verify(tok, "mba-2"); !errors.Is(err, ErrWrongSubject) {
		t.Fatalf("Verify = %v, want ErrWrongSubject", err)
	}
}

func TestTokenAnySubjectWhenEmpty(t *testing.T) {
	ti := NewTokenIssuer(testSigner(t), nil)
	tok := ti.Issue("whoever", "t", time.Minute)
	if _, err := ti.Verify(tok, ""); err != nil {
		t.Fatalf("Verify with empty wantSubject: %v", err)
	}
}

func TestTokenTamperRejected(t *testing.T) {
	ti := NewTokenIssuer(testSigner(t), nil)
	tok := ti.Issue("mba-1", "buy:cheap", time.Minute)

	// Flip the task field to a different valid base64 payload.
	parts := strings.SplitN(tok, "|", 4)
	parts[1] = parts[1][:len(parts[1])-1] + "A"
	tampered := strings.Join(parts, "|")
	if tampered == tok {
		t.Skip("tamper produced identical token")
	}
	_, err := ti.Verify(tampered, "mba-1")
	if err == nil {
		t.Fatal("Verify accepted tampered token")
	}
}

func TestTokenMalformed(t *testing.T) {
	ti := NewTokenIssuer(testSigner(t), nil)
	for _, tok := range []string{"", "a|b", "a|b|c|zz zz", "!!!|b|1|00", "a|!!!|1|00", "a|b|notanumber|00", "a|b|1|nothex"} {
		if _, err := ti.Verify(tok, ""); err == nil {
			t.Errorf("Verify(%q) accepted malformed token", tok)
		}
	}
}

func TestTokenCrossIssuerRejected(t *testing.T) {
	t1 := NewTokenIssuer(NewSigner([]byte("key-1")), nil)
	t2 := NewTokenIssuer(NewSigner([]byte("key-2")), nil)
	tok := t1.Issue("mba-1", "t", time.Minute)
	if _, err := t2.Verify(tok, "mba-1"); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("cross-issuer Verify = %v, want ErrBadSignature", err)
	}
}

func TestChallengeResponseHappyPath(t *testing.T) {
	c := NewChallenger(testSigner(t))
	nonce, err := c.Challenge("mba-7")
	if err != nil {
		t.Fatal(err)
	}
	resp := c.Respond(nonce, "mba-7")
	if err := c.VerifyResponse("mba-7", nonce, resp); err != nil {
		t.Fatalf("VerifyResponse: %v", err)
	}
	if c.Pending() != 0 {
		t.Errorf("Pending after verify = %d, want 0", c.Pending())
	}
}

func TestChallengeNonceSingleUse(t *testing.T) {
	c := NewChallenger(testSigner(t))
	nonce, _ := c.Challenge("mba-7")
	resp := c.Respond(nonce, "mba-7")
	if err := c.VerifyResponse("mba-7", nonce, resp); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyResponse("mba-7", nonce, resp); !errors.Is(err, ErrUnknownNonce) {
		t.Fatalf("replayed nonce = %v, want ErrUnknownNonce", err)
	}
}

func TestChallengeWrongAgent(t *testing.T) {
	c := NewChallenger(testSigner(t))
	nonce, _ := c.Challenge("mba-7")
	resp := c.Respond(nonce, "mba-8")
	if err := c.VerifyResponse("mba-8", nonce, resp); !errors.Is(err, ErrWrongSubject) {
		t.Fatalf("wrong agent = %v, want ErrWrongSubject", err)
	}
}

func TestChallengeBadResponse(t *testing.T) {
	c := NewChallenger(testSigner(t))
	nonce, _ := c.Challenge("mba-7")
	if err := c.VerifyResponse("mba-7", nonce, "deadbeef"); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("bad response = %v, want ErrBadSignature", err)
	}
	// The nonce is consumed even on failure.
	if c.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", c.Pending())
	}
}

func TestChallengeUnknownNonce(t *testing.T) {
	c := NewChallenger(testSigner(t))
	if err := c.VerifyResponse("mba-7", "never-issued", "x"); !errors.Is(err, ErrUnknownNonce) {
		t.Fatalf("unknown nonce = %v, want ErrUnknownNonce", err)
	}
}

func TestChallengeNoncesUnique(t *testing.T) {
	c := NewChallenger(testSigner(t))
	seen := make(map[string]bool)
	for i := 0; i < 256; i++ {
		n, err := c.Challenge("a")
		if err != nil {
			t.Fatal(err)
		}
		if seen[n] {
			t.Fatalf("duplicate nonce %q", n)
		}
		seen[n] = true
	}
}

func TestSplitN(t *testing.T) {
	tests := []struct {
		in   string
		n    int
		want int
	}{
		{"a|b|c|d", 4, 4},
		{"a|b|c|d|e", 4, 4}, // tail keeps remaining separators
		{"abc", 4, 1},
		{"", 4, 0},
	}
	for _, tt := range tests {
		got := splitN(tt.in, '|', tt.n)
		if len(got) != tt.want {
			t.Errorf("splitN(%q) = %v (len %d), want len %d", tt.in, got, len(got), tt.want)
		}
	}
	if got := splitN("a|b|c|d|e", '|', 4); got[3] != "d|e" {
		t.Errorf("tail = %q, want %q", got[3], "d|e")
	}
}
