// Package security implements the authentication the paper's mechanism
// requires: migrating agents carry HMAC-signed credentials, and a Mobile
// Buyer Agent returning from a marketplace "must authenticate itself to
// BSMA" (§4.1 principle 2) before its Buyer Recommend Agent is re-activated.
//
// Three pieces:
//
//   - Signer: HMAC-SHA256 message authentication over opaque payloads, used
//     by the agent transfer protocol to sign migration frames.
//   - TokenIssuer: issues and verifies per-agent travel tokens with an
//     expiry, bound to the agent's identity and task.
//   - Challenger: nonce challenge/response for re-entry; each nonce is
//     single-use, which defeats replay of a captured agent image.
package security

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Errors reported by verification. Callers match with errors.Is.
var (
	ErrBadSignature = errors.New("security: signature mismatch")
	ErrExpired      = errors.New("security: token expired")
	ErrMalformed    = errors.New("security: malformed token")
	ErrUnknownNonce = errors.New("security: unknown or reused nonce")
	ErrWrongSubject = errors.New("security: token subject mismatch")
)

// Signer computes and verifies HMAC-SHA256 tags over byte payloads. The zero
// value is unusable; construct with NewSigner so every Signer has a key.
type Signer struct {
	key []byte
}

// NewSigner returns a Signer using key. The key is copied, so the caller may
// reuse or zero its slice.
func NewSigner(key []byte) *Signer {
	k := make([]byte, len(key))
	copy(k, key)
	return &Signer{key: k}
}

// NewRandomSigner returns a Signer with a fresh 32-byte random key, for
// single-process deployments where all hosts share one in-memory platform.
func NewRandomSigner() (*Signer, error) {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("security: generating key: %w", err)
	}
	return &Signer{key: key}, nil
}

// Sign returns the HMAC-SHA256 tag of payload.
func (s *Signer) Sign(payload []byte) []byte {
	mac := hmac.New(sha256.New, s.key)
	mac.Write(payload)
	return mac.Sum(nil)
}

// Verify checks tag against payload. It returns ErrBadSignature on mismatch.
func (s *Signer) Verify(payload, tag []byte) error {
	if !hmac.Equal(s.Sign(payload), tag) {
		return ErrBadSignature
	}
	return nil
}

// Token is a signed travel credential carried by a mobile agent. Subject
// identifies the agent, Task the work it was assigned, and Expiry bounds the
// trip; the BSMA refuses agents whose token expired while away.
type Token struct {
	Subject string
	Task    string
	Expiry  time.Time
}

// TokenIssuer mints and verifies Tokens with a shared-key Signer. The zero
// value is unusable; use NewTokenIssuer.
type TokenIssuer struct {
	signer *Signer
	clock  func() time.Time
}

// NewTokenIssuer returns an issuer signing with signer. clock may be nil, in
// which case time.Now is used.
func NewTokenIssuer(signer *Signer, clock func() time.Time) *TokenIssuer {
	if clock == nil {
		clock = time.Now
	}
	return &TokenIssuer{signer: signer, clock: clock}
}

// tokenPayload is the canonical byte encoding that gets signed. Lengths are
// prefixed so ("ab","c") and ("a","bc") cannot collide.
func tokenPayload(subject, task string, expiry time.Time) []byte {
	buf := make([]byte, 0, 8+len(subject)+8+len(task)+8)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(subject)))
	buf = append(buf, subject...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(task)))
	buf = append(buf, task...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(expiry.UnixNano()))
	return buf
}

// Issue mints a signed token string for subject/task valid for ttl.
// Format: base64(subject)|base64(task)|expiryUnixNano|hex(tag).
func (ti *TokenIssuer) Issue(subject, task string, ttl time.Duration) string {
	expiry := ti.clock().Add(ttl)
	tag := ti.signer.Sign(tokenPayload(subject, task, expiry))
	return fmt.Sprintf("%s|%s|%d|%s",
		base64.RawURLEncoding.EncodeToString([]byte(subject)),
		base64.RawURLEncoding.EncodeToString([]byte(task)),
		expiry.UnixNano(),
		hex.EncodeToString(tag))
}

// Verify parses and checks a token string, returning the embedded Token.
// wantSubject, when non-empty, must equal the token's subject; this is how
// the BSMA binds a returning MBA to the identity it dispatched.
func (ti *TokenIssuer) Verify(token, wantSubject string) (Token, error) {
	var subB64, taskB64, expStr, tagHex string
	n, err := fmt.Sscanf(token, "%s", &token) // reject embedded whitespace
	if err != nil || n != 1 {
		return Token{}, ErrMalformed
	}
	parts := splitN(token, '|', 4)
	if len(parts) != 4 {
		return Token{}, ErrMalformed
	}
	subB64, taskB64, expStr, tagHex = parts[0], parts[1], parts[2], parts[3]

	sub, err := base64.RawURLEncoding.DecodeString(subB64)
	if err != nil {
		return Token{}, fmt.Errorf("%w: subject: %v", ErrMalformed, err)
	}
	task, err := base64.RawURLEncoding.DecodeString(taskB64)
	if err != nil {
		return Token{}, fmt.Errorf("%w: task: %v", ErrMalformed, err)
	}
	var expNano int64
	if _, err := fmt.Sscanf(expStr, "%d", &expNano); err != nil {
		return Token{}, fmt.Errorf("%w: expiry: %v", ErrMalformed, err)
	}
	tag, err := hex.DecodeString(tagHex)
	if err != nil {
		return Token{}, fmt.Errorf("%w: tag: %v", ErrMalformed, err)
	}

	tok := Token{Subject: string(sub), Task: string(task), Expiry: time.Unix(0, expNano)}
	if err := ti.signer.Verify(tokenPayload(tok.Subject, tok.Task, tok.Expiry), tag); err != nil {
		return Token{}, err
	}
	if ti.clock().After(tok.Expiry) {
		return Token{}, ErrExpired
	}
	if wantSubject != "" && tok.Subject != wantSubject {
		return Token{}, fmt.Errorf("%w: got %q, want %q", ErrWrongSubject, tok.Subject, wantSubject)
	}
	return tok, nil
}

// splitN splits s on sep into at most n pieces without importing strings
// semantics surprises for the empty string: it returns nil for "".
func splitN(s string, sep byte, n int) []string {
	if s == "" {
		return nil
	}
	out := make([]string, 0, n)
	start := 0
	for i := 0; i < len(s) && len(out) < n-1; i++ {
		if s[i] == sep {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

// Challenger issues single-use nonces and verifies challenge responses.
// The protocol, matching §4.1 principle 2:
//
//  1. BSMA calls Challenge(agentID) before dispatching an MBA and sends the
//     nonce along with the agent.
//  2. On return, the MBA presents Respond(nonce) = HMAC(key, nonce||agentID).
//  3. BSMA calls VerifyResponse(agentID, nonce, response); the nonce is
//     consumed whether or not verification succeeds.
type Challenger struct {
	signer *Signer

	mu     sync.Mutex
	issued map[string]string // nonce -> agentID
}

// NewChallenger returns a Challenger signing with signer.
func NewChallenger(signer *Signer) *Challenger {
	return &Challenger{signer: signer, issued: make(map[string]string)}
}

// Challenge mints a fresh random nonce bound to agentID.
func (c *Challenger) Challenge(agentID string) (string, error) {
	raw := make([]byte, 16)
	if _, err := rand.Read(raw); err != nil {
		return "", fmt.Errorf("security: generating nonce: %w", err)
	}
	nonce := hex.EncodeToString(raw)
	c.mu.Lock()
	c.issued[nonce] = agentID
	c.mu.Unlock()
	return nonce, nil
}

// Respond computes the response an agent presents for nonce. Both sides of
// the protocol share the signer key, so the same function serves both.
func (c *Challenger) Respond(nonce, agentID string) string {
	return hex.EncodeToString(c.signer.Sign([]byte(nonce + "\x00" + agentID)))
}

// VerifyResponse checks response for (agentID, nonce) and consumes the
// nonce. Reuse of a nonce fails with ErrUnknownNonce even with a valid
// response, preventing replay of captured agent images.
func (c *Challenger) VerifyResponse(agentID, nonce, response string) error {
	c.mu.Lock()
	boundTo, ok := c.issued[nonce]
	delete(c.issued, nonce)
	c.mu.Unlock()
	if !ok {
		return ErrUnknownNonce
	}
	if boundTo != agentID {
		return fmt.Errorf("%w: nonce bound to %q, presented by %q", ErrWrongSubject, boundTo, agentID)
	}
	if c.Respond(nonce, agentID) != response {
		return ErrBadSignature
	}
	return nil
}

// Pending reports how many issued nonces have not been consumed, for tests
// and leak diagnostics.
func (c *Challenger) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.issued)
}
