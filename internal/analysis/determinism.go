package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// Determinism guards the byte-identical surfaces: replicas must produce
// byte-identical WAL files (TestReplicatedWALByteIdentical,
// TestCompactDeterministic), snapshot pages must cut identically on every
// server (snappage's stable key order), LSH must bucket identically on
// owner and follower (fixed compile-time seed), and scenario traffic must
// replay byte-equal across runs (workload determinism property tests). In
// the files that implement those surfaces, three things are banned:
//
//   - time.Now — wall-clock values diverge across replicas and runs;
//   - the global math/rand[/v2] source — unseeded and process-global
//     (explicitly seeded rand.New(rand.NewPCG(seed, ...)) is fine: that is
//     how the deterministic surfaces are built);
//   - ranging over a map while serializing inside the loop — map iteration
//     order is randomized per run, so any bytes written under it diverge.
//     Collect-then-sort loops are fine: only loops whose body reaches a
//     serialization sink (Marshal/Encode/Write/Fprint/emit) are flagged.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "no wall clock, global rand, or map-ordered serialization in the byte-identical packages\n\n" +
		"Scoped to the deterministic writer files (workload traffic, similarity LSH seeding, kvstore, recommend " +
		"snapshot paging): flags time.Now, global math/rand functions, and map-range loops that serialize in " +
		"iteration order instead of sorting keys first.",
	Run: runDeterminism,
}

// deterministicFiles scopes the analyzer: package import path -> file base
// names that must stay byte-deterministic. An empty list means every file
// in the package.
var deterministicFiles = map[string][]string{
	"agentrec/internal/workload":   {"traffic.go"},
	"agentrec/internal/similarity": {"lsh.go"},
	kvstorePath:                    {},
	recommendPath:                  {"snappage.go", "snapshot.go"},
}

// sinkCall matches serialization sinks: a map-range loop whose body calls
// one of these is writing bytes in map order.
var sinkCall = regexp.MustCompile(`^(Marshal|MarshalIndent|Encode|Fprint|Fprintf|Fprintln|Write|WriteString|WriteByte|WriteRune|emit)$`)

func runDeterminism(pass *Pass) error {
	scoped, ok := deterministicFiles[pass.Pkg.Path()]
	if !ok {
		return nil
	}
	inScope := func(pos ast.Node) bool {
		if len(scoped) == 0 {
			return true
		}
		base := fileBase(pass.Fset, pos.Pos())
		for _, f := range scoped {
			if base == f {
				return true
			}
		}
		return false
	}
	for _, file := range pass.Files {
		if !inScope(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterministicCall(pass, n)
			case *ast.RangeStmt:
				checkMapRangeSerialization(pass, n)
			}
			return true
		})
	}
	return nil
}

// randConstructors are math/rand[/v2] functions that build explicitly
// seeded generators — the deterministic pattern, always allowed.
var randConstructors = map[string]bool{
	"New": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true, "NewSource": true,
}

func checkDeterministicCall(pass *Pass, call *ast.CallExpr) {
	f := calleeFunc(pass.TypesInfo, call)
	if f == nil || f.Pkg() == nil {
		return
	}
	switch f.Pkg().Path() {
	case "time":
		if f.Name() == "Now" && recvNamed(f) == nil {
			pass.Reportf(call.Pos(),
				"time.Now in a byte-deterministic writer: wall-clock values diverge across replicas and runs — take the timestamp outside the deterministic surface or derive it from the input")
		}
	case "math/rand", "math/rand/v2":
		if recvNamed(f) == nil && !randConstructors[f.Name()] {
			pass.Reportf(call.Pos(),
				"global math/rand source (%s.%s) in a byte-deterministic writer: use an explicitly seeded generator (rand.New(rand.NewPCG(seed, ...)))",
				f.Pkg().Name(), f.Name())
		}
	}
}

// checkMapRangeSerialization flags `for k := range m { ... sink ... }`
// where m is a map and the loop body reaches a serialization sink.
func checkMapRangeSerialization(pass *Pass, rng *ast.RangeStmt) {
	t := pass.TypesInfo.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	var sink *ast.CallExpr
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		case *ast.Ident:
			name = fun.Name
		}
		if sinkCall.MatchString(name) {
			sink = call
		}
		return sink == nil
	})
	if sink != nil {
		pass.Reportf(rng.Pos(),
			"map iterated in randomized order while serializing (%s inside the loop): bytes written here diverge across replicas — collect the keys, sort, then write",
			exprString(sink.Fun))
	}
}
