package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestFencegateFixtures(t *testing.T)   { runFixtures(t, Fencegate) }
func TestLockorderFixtures(t *testing.T)   { runFixtures(t, Lockorder) }
func TestDeterminismFixtures(t *testing.T) { runFixtures(t, Determinism) }
func TestBuspublishFixtures(t *testing.T)  { runFixtures(t, Buspublish) }
func TestWiretagFixtures(t *testing.T)     { runFixtures(t, Wiretag) }
func TestErrflowFixtures(t *testing.T)     { runFixtures(t, Errflow) }

// TestSuiteIsClean is the repo gate in test form: the full analyzer suite
// over the whole module must report nothing. CI runs the same check through
// `go vet -vettool`; this keeps `go test ./...` sufficient locally.
func TestSuiteIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("expected to load the whole module, got %d packages", len(pkgs))
	}
	for _, pkg := range pkgs {
		diags, err := RunAnalyzers(All(), pkg)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s [%s]", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
}

// TestAllowGrammar pins the suppression comment contract: a justified
// allow suppresses exactly its analyzer on its line, and a bare allow is
// itself a finding.
func TestAllowGrammar(t *testing.T) {
	src := `package p

//agentlint:allow errflow
var a int

//agentlint:allow errflow -- has a reason
var b int
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var got []Diagnostic
	CheckAllowComments(fset, []*ast.File{f}, func(d Diagnostic) { got = append(got, d) })
	if len(got) != 1 {
		t.Fatalf("expected exactly the bare allow to be reported, got %d diagnostics", len(got))
	}
	if got[0].Analyzer != "allow" || !strings.Contains(got[0].Message, "needs a justification") {
		t.Fatalf("unexpected diagnostic: %+v", got[0])
	}
	if fset.Position(got[0].Pos).Line != 3 {
		t.Fatalf("bare allow reported at line %d, want 3", fset.Position(got[0].Pos).Line)
	}
}

// TestAnalyzerNamesAreStable pins the suite's names and order: docs, allow
// comments, and the DESIGN.md table all key on them.
func TestAnalyzerNamesAreStable(t *testing.T) {
	want := []string{"fencegate", "lockorder", "determinism", "buspublish", "wiretag", "errflow"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("%s: missing Doc or Run", a.Name)
		}
	}
}
