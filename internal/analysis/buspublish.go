package analysis

import (
	"go/ast"
	"go/types"
)

// Buspublish encodes the event plane's two "costs nothing" contracts
// (DESIGN.md "Event plane", ops.Bus godoc):
//
//  1. Publish never blocks. Inside internal/ops, every function reachable
//     from Bus.Publish (the fan-out path: offer, ring bookkeeping) must
//     stay bounded: no blocking channel operation (sends must sit in a
//     select with a default arm), no time.Sleep, no Wait, no I/O, and no
//     lock other than the Bus's and Subscription's own bounded mutexes. An
//     engine write holding a shard lock publishes on this path; one
//     blocking call here stalls every writer in the process.
//
//  2. Hooks are nil-safe. In the producer packages (recommend, platform,
//     buyerserver), every call to Publish on a *ops.Bus struct field must
//     be nil-guarded in the same function — the event plane is opt-in and
//     must cost exactly one nil check when disabled.
//
// The runtime complements are TestBusSlowSubscriberNeverBlocksAndDropsExactly
// and TestEventBusPublishZeroAlloc; the analyzer catches the blocking call
// a soak test only hits under the right interleaving.
var Buspublish = &Analyzer{
	Name: "buspublish",
	Doc: "nothing reachable from ops.Bus.Publish may block, and every event-hook call site is nil-checked\n\n" +
		"In internal/ops: flags blocking channel ops, sleeps, waits, I/O, and foreign lock acquisitions reachable " +
		"from Publish. In the producer packages: flags Publish calls on *ops.Bus fields with no nil guard in the " +
		"same function.",
	Run: runBuspublish,
}

// busProducerPkgs are the packages whose event hooks must be nil-safe.
var busProducerPkgs = map[string]bool{
	recommendPath:                   true,
	platformPath:                    true,
	"agentrec/internal/buyerserver": true,
	"agentrec/internal/loadgen":     true,
}

func runBuspublish(pass *Pass) error {
	if pass.Pkg.Path() == opsPath {
		checkPublishNeverBlocks(pass)
	}
	if busProducerPkgs[pass.Pkg.Path()] {
		checkHooksNilSafe(pass)
	}
	return nil
}

// --- part 1: the never-blocks closure inside internal/ops ---

func checkPublishNeverBlocks(pass *Pass) {
	// Build the intra-package call graph over declared functions, then walk
	// everything reachable from (*Bus).Publish.
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	var roots []types.Object
	for obj := range decls {
		if f, ok := obj.(*types.Func); ok && isMethodOn(f, opsPath, "Bus", "Publish") {
			roots = append(roots, obj)
		}
	}
	reachable := make(map[types.Object]bool)
	var visit func(obj types.Object)
	visit = func(obj types.Object) {
		if reachable[obj] {
			return
		}
		reachable[obj] = true
		fd := decls[obj]
		if fd == nil {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if f := calleeFunc(pass.TypesInfo, call); f != nil {
				if _, local := decls[f]; local {
					visit(f)
				}
			}
			return true
		})
	}
	for _, r := range roots {
		visit(r)
	}

	for obj := range reachable {
		fd := decls[obj]
		if fd == nil {
			continue
		}
		checkBoundedBody(pass, fd)
	}
}

// checkBoundedBody flags the blocking constructs inside one function on
// the Publish path.
func checkBoundedBody(pass *Pass, fd *ast.FuncDecl) {
	// Select statements with a default arm are the sanctioned non-blocking
	// notify pattern; remember their channel ops so the send check below
	// skips them.
	nonBlocking := make(map[ast.Node]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			pass.Reportf(sel.Pos(),
				"select without a default arm on the Bus.Publish path (%s): Publish must never park — add a default arm or move this off the publish path",
				fd.Name.Name)
			return true
		}
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
				nonBlocking[cc.Comm] = true
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if !nonBlocking[ast.Node(n)] {
				pass.Reportf(n.Pos(),
					"blocking channel send on the Bus.Publish path (%s): a full channel parks every publisher — use select with a default arm",
					fd.Name.Name)
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && !receiveIsNonBlocking(pass, n, nonBlocking) {
				pass.Reportf(n.Pos(),
					"blocking channel receive on the Bus.Publish path (%s): Publish must never park on a consumer",
					fd.Name.Name)
			}
		case *ast.CallExpr:
			checkBoundedCall(pass, fd, n)
		}
		return true
	})
}

// receiveIsNonBlocking reports whether a <-ch expression sits in a
// select-with-default comm clause (directly or as the RHS of its assign).
func receiveIsNonBlocking(pass *Pass, recv *ast.UnaryExpr, nonBlocking map[ast.Node]bool) bool {
	for comm := range nonBlocking {
		switch c := comm.(type) {
		case *ast.ExprStmt:
			if ast.Unparen(c.X) == recv {
				return true
			}
		case *ast.AssignStmt:
			for _, rhs := range c.Rhs {
				if ast.Unparen(rhs) == recv {
					return true
				}
			}
		}
	}
	return false
}

// boundedLockOwners are the ops types whose own mutexes Publish may take:
// both guard strictly bounded critical sections (ring copies).
var boundedLockOwners = map[string]bool{"Bus": true, "Subscription": true}

func checkBoundedCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	f := calleeFunc(pass.TypesInfo, call)
	if f == nil || f.Pkg() == nil {
		return
	}
	switch {
	case f.Pkg().Path() == "time" && f.Name() == "Sleep":
		pass.Reportf(call.Pos(), "time.Sleep on the Bus.Publish path (%s): Publish must never park", fd.Name.Name)
	case f.Name() == "Wait" && recvNamed(f) != nil && pkgPathIs(recvNamed(f).Obj().Pkg(), "sync"):
		pass.Reportf(call.Pos(), "sync %s.Wait on the Bus.Publish path (%s): unbounded park", recvNamed(f).Obj().Name(), fd.Name.Name)
	case isIOPackage(f.Pkg().Path()):
		pass.Reportf(call.Pos(),
			"I/O call %s.%s on the Bus.Publish path (%s): publishing happens under engine write critical sections — I/O belongs in consumers",
			f.Pkg().Name(), f.Name(), fd.Name.Name)
	case f.Name() == "Lock" || f.Name() == "RLock":
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if owner, _ := mutexOwner(pass, sel.X); owner != "" {
				if selOwner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
					if base := baseTypeName(pass.TypesInfo.Types[selOwner.X].Type); boundedLockOwners[base] {
						return
					}
				}
				pass.Reportf(call.Pos(),
					"foreign lock %s acquired on the Bus.Publish path (%s): only the Bus's and Subscription's own bounded mutexes are allowed",
					owner, fd.Name.Name)
			}
		}
	}
}

// isIOPackage reports packages whose calls can block on the outside world.
func isIOPackage(path string) bool {
	switch path {
	case "os", "net", "net/http", "io", "io/fs", "bufio", "log", "fmt":
		return true
	}
	return false
}

// --- part 2: nil-safe hooks in the producer packages ---

func checkHooksNilSafe(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			// Gather the nil-compared expressions in this function.
			guarded := make(map[string]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				bin, ok := n.(*ast.BinaryExpr)
				if !ok || (bin.Op.String() != "==" && bin.Op.String() != "!=") {
					return true
				}
				for lhs, rhs := range map[ast.Expr]ast.Expr{bin.X: bin.Y, bin.Y: bin.X} {
					if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && id.Name == "nil" {
						guarded[exprString(ast.Unparen(lhs))] = true
					}
				}
				return true
			})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Publish" {
					return true
				}
				recv := ast.Unparen(sel.X)
				if !isBusField(pass, recv) {
					return true
				}
				if !guarded[exprString(recv)] {
					pass.Reportf(call.Pos(),
						"event hook %s.Publish called without a nil check on %s in %s: the event plane is opt-in and must cost one nil test when off — guard the field or publish through a nil-checking helper",
						exprString(recv), exprString(recv), fd.Name.Name)
				}
				return true
			})
			return true
		})
	}
}

// isBusField reports whether e is a struct-field selector of type *ops.Bus
// (a hook wired by an Option — exactly the thing that may be nil).
func isBusField(pass *Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if s, ok := pass.TypesInfo.Selections[sel]; !ok || s.Kind() != types.FieldVal {
		return false
	}
	t := pass.TypesInfo.Types[sel].Type
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Bus" && pkgPathIs(named.Obj().Pkg(), opsPath)
}
