// Fixture: a shadow of loadgen's recorded scenario documents exercising
// wiretag's root closure, tag checks, and snake_case rule.
package loadgen

// Scenario is a wire root: fully tagged, compliant.
type Scenario struct {
	Name     string  `json:"name"`
	RateOpsS float64 `json:"rate_ops_s"`
	internal int
}

// ScenarioResult is a wire root mixing every violation shape.
type ScenarioResult struct {
	Good     int         `json:"good_total"`
	Untagged int         // want `exported field Untagged has no json tag`
	Camel    int         `json:"camelCase"`  // want `json name "camelCase" is not snake_case`
	TagNoKey int         `yaml:"tag_no_key"` // want `struct tag but no json key`
	Skipped  int         `json:"-"`
	Nested   nestedStats `json:"nested"`
}

// nestedStats is unexported but reachable from a root: still wire shape.
type nestedStats struct {
	P50Ms float64 `json:"p50_ms"`
	Deep  int     // want `exported field Deep has no json tag`
}

// orphan is not reachable from any root: not wire vocabulary.
type orphan struct {
	Whatever int
}

var _ = internalUse

func internalUse(s Scenario, o orphan) int { return s.internal + o.Whatever }
