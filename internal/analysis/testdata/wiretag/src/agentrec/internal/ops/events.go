// Fixture: internal/ops is all wire vocabulary ("*" roots) — every
// exported struct is checked unless its declaration carries a justified
// wiretag allow.
package ops

// Event crosses the wire: checked.
type Event struct {
	Kind string `json:"kind"`
	Seq  uint64 // want `exported field Seq has no json tag`
}

// SubscribeOptions is in-process config, excluded wholesale by the
// declaration-level allow.
//
//agentlint:allow wiretag -- fixture: in-process subscription config, never serialized
type SubscribeOptions struct {
	Buffer   int
	AfterSeq uint64
}
