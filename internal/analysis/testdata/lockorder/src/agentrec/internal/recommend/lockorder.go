// Fixture: a minimal shadow of internal/recommend's lock hierarchy
// exercising lockorder. shard and sellShard are classified by type name,
// matching the real engine.
package recommend

import (
	"sync"

	"agentrec/internal/kvstore"
)

type shard struct{ mu sync.RWMutex }

type sellShard struct{ mu sync.RWMutex }

// goodOrder is the engine's real discipline: shard first, release, then
// sellShard.
func goodOrder(sh *shard, ss *sellShard) {
	sh.mu.Lock()
	sh.mu.Unlock()
	ss.mu.Lock()
	ss.mu.Unlock()
}

// goodNestedSell acquires sellShard under shard: allowed (shard is outer).
func goodNestedSell(sh *shard, ss *sellShard) {
	sh.mu.Lock()
	ss.mu.Lock()
	ss.mu.Unlock()
	sh.mu.Unlock()
}

// nestedShards is the deadlock shape: two shard locks held at once.
func nestedShards(a, b *shard) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `shard lock b acquired while shard lock a is held`
	b.mu.Unlock()
}

// inversion acquires a shard lock under a sellShard lock: order reversed.
func inversion(sh *shard, ss *sellShard) {
	ss.mu.Lock()
	sh.mu.Lock() // want `lock order is shard before sellShard`
	sh.mu.Unlock()
	ss.mu.Unlock()
}

// unlockInBranchThenRelock: the early-unlock branch returns, so the
// fall-through still holds the lock — but only one shard lock at a time.
func unlockInBranchThenRelock(a *shard, stop bool) {
	a.mu.Lock()
	if stop {
		a.mu.Unlock()
		return
	}
	a.mu.Unlock()
}

// fsyncUnderLock holds a shard lock across a Store.Sync barrier.
func fsyncUnderLock(sh *shard, st *kvstore.Store) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return st.Sync() // want `fsync barrier with unbounded latency`
}

// fsyncAfterUnlock releases before the barrier: compliant.
func fsyncAfterUnlock(sh *shard, st *kvstore.Store) error {
	sh.mu.Lock()
	sh.mu.Unlock()
	return st.Sync()
}

// goroutineStartsClean: a spawned goroutine inherits no locks, so its own
// single shard acquisition is fine even while the parent holds another.
func goroutineStartsClean(a, b *shard) {
	a.mu.Lock()
	defer a.mu.Unlock()
	go func() {
		b.mu.Lock()
		b.mu.Unlock()
	}()
}
