// Fixture: a shadow of the ownership fence exercising errflow's Fence rule
// and the write-API rule on an arbitrary Writer implementation.
package recommend

type OwnershipTable struct{}

func (t *OwnershipTable) Fence(senderEpoch uint64, shard, self int) error { return nil }

type routedWriter struct{}

func (routedWriter) SetProfile(p int) error                { return nil }
func (routedWriter) RecordPurchase(user, pid string) error { return nil }
func (routedWriter) Describe() string                      { return "" } // no error result: never flagged

func use(t *OwnershipTable, w routedWriter) {
	t.Fence(1, 0, 0)              // want `error result of OwnershipTable.Fence discarded`
	w.SetProfile(1)               // want `error result of routedWriter.SetProfile discarded`
	go w.RecordPurchase("u", "p") // want `error result of routedWriter.RecordPurchase discarded`
	w.Describe()
	_ = w.SetProfile(2)
	w.SetProfile(3) //agentlint:allow errflow -- fixture: justified suppression keeps the line quiet
	if err := w.SetProfile(4); err != nil {
		_ = err
	}
}
