// Fixture: a shadow of kvstore.Store exercising errflow's accessor rule.
package kvstore

type Store struct{}

func (s *Store) Put(k, v []byte) error { return nil }
func (s *Store) Sync() error           { return nil }
func (s *Store) Close() error          { return nil }
func (s *Store) scanLocked() error     { return nil }

func use(s *Store) error {
	s.Put(nil, nil) // want `error result of kvstore Store.Put discarded`
	_ = s.Put(nil, nil)
	defer s.Close() // Close is exempt: deferred teardown discard is idiomatic
	s.scanLocked()  // unexported: outside the accessor contract
	if err := s.Sync(); err != nil {
		return err
	}
	return nil
}
