// Fixture: a shadow of ops.Bus whose Publish path mixes the sanctioned
// non-blocking pattern with every blocking construct the analyzer bans.
package ops

import (
	"fmt"
	"os"
	"sync"
	"time"
)

type Event struct{}

type other struct{ mu sync.Mutex }

type Bus struct {
	mu   sync.Mutex
	ch   chan Event
	done chan struct{}
	wg   sync.WaitGroup
	o    *other
}

// Publish takes only the Bus's own bounded mutex and fans out through
// offer (compliant) and slowPath (every violation shape).
func (b *Bus) Publish(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.offer(ev)
	b.slowPath(ev)
}

// offer is the sanctioned pattern: select with a default arm.
func (b *Bus) offer(ev Event) {
	select {
	case b.ch <- ev:
	default:
	}
}

// slowPath is reachable from Publish: everything here is a violation.
func (b *Bus) slowPath(ev Event) {
	b.ch <- ev                      // want `blocking channel send on the Bus.Publish path`
	<-b.done                        // want `blocking channel receive on the Bus.Publish path`
	time.Sleep(time.Millisecond)    // want `time.Sleep on the Bus.Publish path`
	b.wg.Wait()                     // want `sync WaitGroup.Wait on the Bus.Publish path`
	fmt.Fprintln(os.Stderr, "slow") // want `I/O call fmt.Fprintln on the Bus.Publish path`
	b.o.mu.Lock()                   // want `foreign lock b.o acquired on the Bus.Publish path`
	b.o.mu.Unlock()
	select { // want `select without a default arm on the Bus.Publish path`
	case b.ch <- ev: // want `blocking channel send on the Bus.Publish path`
	case <-b.done: // want `blocking channel receive on the Bus.Publish path`
	}
}

// Drain is NOT reachable from Publish: blocking here is fine.
func (b *Bus) Drain() Event {
	return <-b.ch
}
