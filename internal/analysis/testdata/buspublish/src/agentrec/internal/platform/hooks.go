// Fixture: a producer package whose event hooks must be nil-safe. Imports
// the REAL agentrec/internal/ops so the *ops.Bus field type matches what
// the analyzer looks for.
package platform

import "agentrec/internal/ops"

type Platform struct {
	Events *ops.Bus
}

// guarded is the required shape: one nil test, then publish.
func (p *Platform) guarded(ev ops.Event) {
	if p.Events == nil {
		return
	}
	p.Events.Publish(ev)
}

// guardedInline tests the other comparison direction.
func (p *Platform) guardedInline(ev ops.Event) {
	if nil != p.Events {
		p.Events.Publish(ev)
	}
}

// unguarded publishes without any nil check in the function.
func (p *Platform) unguarded(ev ops.Event) {
	p.Events.Publish(ev) // want `event hook p.Events.Publish called without a nil check`
}

// localBus is not a struct field: local variables are the caller's problem
// (they were just constructed), so no diagnostic.
func localBus(ev ops.Event) {
	b := ops.NewBus()
	b.Publish(ev)
}
