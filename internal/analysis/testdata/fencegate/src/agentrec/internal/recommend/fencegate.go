// Fixture: a minimal shadow of internal/recommend exercising fencegate.
// Type-checked under the real import path so the analyzer's receiver and
// package matching fire exactly as on the repo.
package recommend

// Engine is the fenced resource; its write methods are the mutation
// primitives below the fence.
type Engine struct{}

func (e *Engine) SetProfile(p int) error                { return nil }
func (e *Engine) RecordPurchase(user, pid string) error { return nil }
func (e *Engine) applyShardSnapshot(b []byte) error     { return nil }

// OwnershipTable is the fence.
type OwnershipTable struct{}

func (t *OwnershipTable) Fence(epoch uint64, shard, self int) error { return nil }
func (t *OwnershipTable) Expired() bool                             { return false }

// Rebuild is an Engine method: exempt by design (below the fence).
func (e *Engine) Rebuild(p int) {
	_ = e.SetProfile(p) // no diagnostic: Engine receiver is exempt
}

// ApplyUnfenced is the violation shape: an exported surface mutating the
// engine with no path to the fence.
func ApplyUnfenced(e *Engine, p int) {
	_ = e.SetProfile(p) // want `unfenced engine mutation in exported surface ApplyUnfenced`
}

// ApplyFenced consults the fence before mutating: compliant.
func ApplyFenced(e *Engine, t *OwnershipTable, p int) error {
	if err := t.Fence(1, 0, 0); err != nil {
		return err
	}
	return e.SetProfile(p)
}

// ApplyViaExpired uses the read-side fence check (the Router pattern).
func ApplyViaExpired(e *Engine, t *OwnershipTable, p int) error {
	if t.Expired() {
		return nil
	}
	return e.SetProfile(p)
}

// fencedHelper is a fence carrier: callers reach the fence through it.
func fencedHelper(t *OwnershipTable) error { return t.Fence(1, 0, 0) }

// ApplyViaHelper fences through one level of indirection: compliant.
func ApplyViaHelper(e *Engine, t *OwnershipTable, p int) error {
	if err := fencedHelper(t); err != nil {
		return err
	}
	return e.SetProfile(p)
}

// Handler is the replnet shape: a factory whose fence closure guards the
// handler closure it returns. The whole declaration is one surface.
func Handler(e *Engine, t *OwnershipTable) func(p int) error {
	fence := func() error { return t.Fence(1, 0, 0) }
	return func(p int) error {
		if err := fence(); err != nil {
			return err
		}
		return e.SetProfile(p)
	}
}

// BadHandler returns a mutating closure with no fence anywhere: violation.
func BadHandler(e *Engine) func(p int) error {
	return func(p int) error {
		return e.SetProfile(p) // want `unfenced engine mutation in exported surface BadHandler`
	}
}

// ReadOnly never mutates: no diagnostic regardless of fencing.
func ReadOnly(e *Engine) *Engine { return e }
