package workload

import "time"

// wallClock sits outside the determinism file scope (only traffic.go is
// byte-deterministic in this package): no diagnostic.
func wallClock() time.Time {
	return time.Now()
}
