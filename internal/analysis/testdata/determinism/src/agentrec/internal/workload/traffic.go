// Fixture: a shadow of workload's deterministic traffic writer. traffic.go
// is inside the determinism file scope for this package; other.go is not.
package workload

import (
	"fmt"
	"io"
	"math/rand/v2"
	"sort"
	"time"
)

// stampNow leaks the wall clock into the deterministic surface.
func stampNow() int64 {
	return time.Now().UnixNano() // want `time.Now in a byte-deterministic writer`
}

// pickGlobal draws from the process-global, unseeded source.
func pickGlobal() int {
	return rand.IntN(10) // want `global math/rand source`
}

// seeded builds an explicitly seeded generator: the sanctioned pattern.
func seeded(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 1))
}

// emitUnsorted serializes in map-iteration order: bytes diverge per run.
func emitUnsorted(w io.Writer, m map[string]int) {
	for k, v := range m { // want `map iterated in randomized order while serializing`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// emitSorted collects, sorts, then writes: deterministic.
func emitSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// stampAllowed carries a justified suppression: the directive swallows the
// diagnostic the line would otherwise raise.
func stampAllowed() int64 {
	//agentlint:allow determinism -- fixture: timestamp taken outside the serialized bytes
	return time.Now().UnixNano()
}
