package analysis

import (
	"go/ast"
	"go/types"
)

// Fencegate encodes the ownership invariant of DESIGN.md "Ownership &
// failover": in internal/recommend and internal/replnet, every write
// surface — an exported function, or a frame-handler closure — that
// mutates engine/shard state must reach the ownership fence
// (OwnershipTable.Fence, or a helper that calls it, e.g. OwnedWriter's
// stamp-and-fence methods or replnet's fence/checkOwned closures) before
// the mutation. A surface that calls the Engine write API without any path
// to the fence is exactly the unfenced handler that reintroduces
// split-brain after a failover.
//
// The Engine's own methods and the Replicator are exempt by design: the
// engine IS the fenced resource (its methods are the mutation primitive
// below the fence), and the replicator applies journal records a fencing
// owner handler already admitted. The runtime complements are
// TestOwnedWriterFencesRoutedWrites and replnet's fence_test over real TCP.
var Fencegate = &Analyzer{
	Name: "fencegate",
	Doc: "write surfaces in recommend/replnet must reach OwnershipTable.Fence before mutating engine state\n\n" +
		"Flags exported functions (and the frame-handler closures inside them) that call the Engine write API " +
		"(SetProfile, SetProfiles, RecordPurchase, RecordPurchaseAt, applyShardSnapshot) without any call path to " +
		"OwnershipTable.Fence/Expired in the same surface. Engine and Replicator methods are exempt: they sit " +
		"below the fence by design.",
	Run: runFencegate,
}

const (
	recommendPath = "agentrec/internal/recommend"
	replnetPath   = "agentrec/internal/replnet"
	opsPath       = "agentrec/internal/ops"
	kvstorePath   = "agentrec/internal/kvstore"
	platformPath  = "agentrec/internal/platform"
)

// engineMutators are the *Engine methods that mutate shard state.
var engineMutators = map[string]bool{
	"SetProfile":         true,
	"SetProfiles":        true,
	"RecordPurchase":     true,
	"RecordPurchaseAt":   true,
	"applyShardSnapshot": true,
}

// fenceExemptRecv are recommend types whose methods sit below the fence.
var fenceExemptRecv = map[string]bool{
	"Engine":     true,
	"Replicator": true,
}

func runFencegate(pass *Pass) error {
	path := pass.Pkg.Path()
	if path != recommendPath && path != replnetPath {
		return nil
	}

	// Pass 1: find every "fence carrier" — a function or closure-holding
	// variable whose body calls OwnershipTable.Fence/Expired, directly or
	// through another carrier. Iterate to a fixpoint so one level of local
	// indirection per round (OwnedWriter.fence, replnet's checkOwned
	// closure) is recognized at any depth.
	carriers := make(map[types.Object]bool)
	isFenceCall := func(call *ast.CallExpr) bool {
		f := calleeFunc(pass.TypesInfo, call)
		if f == nil {
			// Call through a closure variable: carrier if the variable is.
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				return carriers[pass.TypesInfo.Uses[id]]
			}
			return false
		}
		if isMethodOn(f, recommendPath, "OwnershipTable", "Fence") ||
			isMethodOn(f, recommendPath, "OwnershipTable", "Expired") {
			return true
		}
		return carriers[f]
	}
	bodyFences := func(body ast.Node) bool {
		found := false
		ast.Inspect(body, func(n ast.Node) bool {
			if found {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && isFenceCall(call) {
				found = true
			}
			return !found
		})
		return found
	}
	for changed := true; changed; {
		changed = false
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch d := n.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						return true
					}
					obj := pass.TypesInfo.Defs[d.Name]
					if obj != nil && !carriers[obj] && bodyFences(d.Body) {
						carriers[obj] = true
						changed = true
					}
				case *ast.AssignStmt:
					// x := func(...) {...} — mark x a carrier when the
					// closure fences, so calls through x count.
					for i, rhs := range d.Rhs {
						lit, ok := rhs.(*ast.FuncLit)
						if !ok || i >= len(d.Lhs) {
							continue
						}
						id, ok := d.Lhs[i].(*ast.Ident)
						if !ok {
							continue
						}
						obj := pass.TypesInfo.Defs[id]
						if obj == nil {
							obj = pass.TypesInfo.Uses[id]
						}
						if obj != nil && !carriers[obj] && bodyFences(lit.Body) {
							carriers[obj] = true
							changed = true
						}
					}
				}
				return true
			})
		}
	}

	// Pass 2: every exported surface that calls an engine mutator must
	// also reach a fence somewhere in the same surface (the declaration
	// including its closures — a handler factory's fence closure guards the
	// handler closure it returns).
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if recv := receiverTypeName(fd); recv != "" && path == recommendPath && fenceExemptRecv[recv] {
				continue
			}
			var mutations []*ast.CallExpr
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if f := calleeFunc(pass.TypesInfo, call); f != nil && engineMutators[f.Name()] {
					if named := recvNamed(f); named != nil &&
						named.Obj().Name() == "Engine" && pkgPathIs(named.Obj().Pkg(), recommendPath) {
						mutations = append(mutations, call)
					}
				}
				return true
			})
			if len(mutations) == 0 || bodyFences(fd.Body) {
				continue
			}
			for _, call := range mutations {
				pass.Reportf(call.Pos(),
					"unfenced engine mutation in exported surface %s: %s mutates shard state with no path to OwnershipTable.Fence — route the write through OwnedWriter or fence it first",
					fd.Name.Name, exprString(call.Fun))
			}
		}
	}
	return nil
}

// receiverTypeName returns the base type name of fd's receiver ("" for
// plain functions).
func receiverTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers (T[P]) don't occur here but strip them anyway.
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
