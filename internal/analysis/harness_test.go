package analysis

// The fixture harness: each analyzer has a tree under
// testdata/<name>/src/<import-path>/ whose packages are type-checked under
// their REAL import paths (so the analyzers' package- and file-scope rules
// fire exactly as they do on the repo), with expectations written as
//
//	someCode() // want `regexp`
//
// comments on the offending line. Fixture imports resolve against the real
// module's compiled export data (one `go list -export -deps` per test
// process), so a fixture can import the real agentrec/internal/ops while a
// sibling fixture package shadows a repo path with pathological fakes.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

var (
	exportsOnce sync.Once
	exportsMap  map[string]string
	exportsErr  error
)

// moduleExports returns importPath -> export-data file for the module and
// every dependency the fixtures import, built once per test process.
func moduleExports(t *testing.T) map[string]string {
	t.Helper()
	exportsOnce.Do(func() {
		cmd := exec.Command("go", "list", "-e", "-export", "-deps",
			"-json=ImportPath,Export,Error",
			"./...", "sync", "time", "io", "fmt", "os", "sort", "math/rand/v2")
		cmd.Dir = "../.."
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			exportsErr = fmt.Errorf("go list -export: %v\n%s", err, stderr.String())
			return
		}
		exportsMap = make(map[string]string)
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct {
				ImportPath string
				Export     string
				Error      *struct{ Err string }
			}
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				exportsErr = err
				return
			}
			if p.Export != "" {
				exportsMap[p.ImportPath] = p.Export
			}
		}
	})
	if exportsErr != nil {
		t.Fatal(exportsErr)
	}
	return exportsMap
}

// wantRe extracts the expectation comment; backquoted groups inside are the
// regexes a diagnostic on that line must match.
var (
	wantRe     = regexp.MustCompile(`//\s*want\s+(.+)$`)
	wantPartRe = regexp.MustCompile("`([^`]+)`")
)

type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	met  bool
}

// runFixtures type-checks every package under testdata/<analyzer>/src and
// checks the analyzer's diagnostics against the // want expectations.
func runFixtures(t *testing.T, a *Analyzer) {
	t.Helper()
	src := filepath.Join("testdata", a.Name, "src")
	pkgDirs := fixturePackages(t, src)
	if len(pkgDirs) == 0 {
		t.Fatalf("no fixture packages under %s", src)
	}
	exports := moduleExports(t)

	for _, dir := range pkgDirs {
		importPath := filepath.ToSlash(strings.TrimPrefix(dir, src+string(filepath.Separator)))
		fset := token.NewFileSet()
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var files []*ast.File
		var paths []string
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatalf("parsing fixture %s: %v", path, err)
			}
			files = append(files, f)
			paths = append(paths, path)
		}
		expects := collectWants(t, paths)

		pkg, err := CheckFiles(fset, files, importPath, dir, ExportImporter(fset, exports))
		if err != nil {
			t.Fatalf("type-checking fixture %s: %v", importPath, err)
		}
		diags, err := RunAnalyzers([]*Analyzer{a}, pkg)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, importPath, err)
		}

		for _, d := range diags {
			pos := fset.Position(d.Pos)
			if !matchExpectation(expects, filepath.Base(pos.Filename), pos.Line, d.Message) {
				t.Errorf("%s: unexpected diagnostic at %s:%d: %s [%s]",
					importPath, filepath.Base(pos.Filename), pos.Line, d.Message, d.Analyzer)
			}
		}
		for _, e := range expects {
			if !e.met {
				t.Errorf("%s: expected diagnostic matching %q at %s:%d, got none",
					importPath, e.re, e.file, e.line)
			}
		}
	}
}

func matchExpectation(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if !e.met && e.file == file && e.line == line && e.re.MatchString(msg) {
			e.met = true
			return true
		}
	}
	return false
}

// collectWants reads each fixture file's source and pulls the // want
// expectations out by line.
func collectWants(t *testing.T, paths []string) []*expectation {
	t.Helper()
	var out []*expectation
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			parts := wantPartRe.FindAllStringSubmatch(m[1], -1)
			if len(parts) == 0 {
				t.Fatalf("%s:%d: want comment has no backquoted regexp", path, i+1)
			}
			for _, p := range parts {
				re, err := regexp.Compile(p[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, p[1], err)
				}
				out = append(out, &expectation{file: filepath.Base(path), line: i + 1, re: re})
			}
		}
	}
	return out
}

// fixturePackages returns every directory under src containing .go files.
func fixturePackages(t *testing.T, src string) []string {
	t.Helper()
	var dirs []string
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(d.Name(), ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return dirs
}
