package analysis

// All returns the agentlint suite in its fixed reporting order. The order
// is part of the tool's contract: diagnostics are grouped by analyzer in
// this sequence, and the docs test cross-checks these names against the
// DESIGN.md "Static analysis" table.
func All() []*Analyzer {
	return []*Analyzer{
		Fencegate,
		Lockorder,
		Determinism,
		Buspublish,
		Wiretag,
		Errflow,
	}
}
