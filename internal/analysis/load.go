package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPkg is the slice of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matching patterns (relative to dir) and
// returns the non-dependency targets. It shells out to `go list -export`
// for build metadata and compiled export data — the same offline pipeline
// the go tool itself uses — then parses and type-checks each target from
// source with the standard library's gc importer reading the cached export
// files, so no third-party loader is needed.
//
// Only production sources (GoFiles) are loaded: the invariants the
// analyzers encode are about the serving code, and the analyzers' own
// fixture suites cover their behavior on pathological inputs.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ExportImporter returns a types.Importer resolving import paths through
// compiled export data files (importPath -> file), as produced by
// `go list -export` or a vet config's PackageFile map.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// CheckFiles type-checks already-parsed files as importPath with imp and
// returns a Package ready for RunAnalyzers. The vet-tool mode uses this
// with an importer built from the vet config's PackageFile map.
func CheckFiles(fset *token.FileSet, files []*ast.File, importPath, dir string, imp types.Importer) (*Package, error) {
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// checkPackage parses and type-checks one package's files.
func checkPackage(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// NewTypesInfo allocates the types.Info maps every analyzer relies on.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
