// Package analysis is the repo's static-analysis suite: a small
// go/analysis-style framework (built on the standard library alone — the
// container has no golang.org/x/tools) plus the six analyzers that encode
// the platform's hardest invariants at vet time:
//
//   - fencegate: write surfaces in recommend/replnet reach the ownership
//     fence (OwnershipTable.Fence / OwnedWriter) before mutating engine
//     state.
//   - lockorder: shard locks before sellShard locks, never nested shard
//     locks, no lock held across a Persister fsync.
//   - determinism: no wall clock, global rand, or unsorted map iteration
//     near the byte-identical wire/WAL writers.
//   - buspublish: nothing reachable from ops.Bus.Publish blocks, and every
//     event-hook call site is nil-checked.
//   - wiretag: wire-bound structs carry explicit snake_case json tags.
//   - errflow: error returns of the write API, the kvstore accessors, and
//     the fence are never silently discarded.
//
// The suite ships as cmd/agentlint — a multichecker usable standalone
// (`agentlint ./...`) and as a `go vet -vettool`. Runtime tests verify the
// same invariants dynamically; the analyzers catch violations before any
// chaos test runs. See DESIGN.md "Static analysis".
//
// # Suppressions
//
// A diagnostic can be suppressed only with an in-source justification:
//
//	//agentlint:allow <analyzer> -- <reason>
//
// placed on the flagged line or in the comment block immediately above it.
// The reason is mandatory; an allow comment without one is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Run inspects a single type-checked
// package and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, allow comments, and
	// DESIGN.md's analyzer table.
	Name string
	// Doc is the invariant the analyzer encodes. The first line is the
	// one-line summary `agentlint -list` prints.
	Doc string
	// Run analyzes one package.
	Run func(*Pass) error
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives every diagnostic that survives suppression.
	Report func(Diagnostic)

	allows allowIndex
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf reports a diagnostic at pos unless an allow comment suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.allows == nil {
		p.allows = buildAllowIndex(p.Fset, p.Files)
	}
	position := p.Fset.Position(pos)
	if p.allows.covers(p.Analyzer.Name, position.Filename, position.Line) {
		return
	}
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Allowed reports whether an allow directive for the running analyzer
// covers pos. Analyzers use this for declaration-level suppression — e.g.
// wiretag skipping a whole struct whose type declaration carries a
// justified allow — where per-diagnostic line matching would force one
// comment per field.
func (p *Pass) Allowed(pos token.Pos) bool {
	if p.allows == nil {
		p.allows = buildAllowIndex(p.Fset, p.Files)
	}
	position := p.Fset.Position(pos)
	return p.allows.covers(p.Analyzer.Name, position.Filename, position.Line)
}

// allowRe matches the suppression comment grammar. The reason clause after
// " -- " is mandatory: a suppression must say why it is sound.
var allowRe = regexp.MustCompile(`^//agentlint:allow\s+([a-z]+)\s+--\s+\S`)

// bareAllowRe catches allow comments missing their justification.
var bareAllowRe = regexp.MustCompile(`^//agentlint:allow\b`)

// allowIndex maps file -> line -> set of analyzer names suppressed there.
type allowIndex map[string]map[int]map[string]bool

func (ai allowIndex) covers(analyzer, file string, line int) bool {
	return ai[file][line][analyzer]
}

// buildAllowIndex scans every comment for allow directives. A directive
// suppresses the named analyzer on the directive's own line and, when the
// comment group immediately precedes a line of code, on that next line —
// so both trailing comments and comments-above work.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) allowIndex {
	ai := make(allowIndex)
	add := func(file string, line int, name string) {
		if ai[file] == nil {
			ai[file] = make(map[int]map[string]bool)
		}
		if ai[file][line] == nil {
			ai[file][line] = make(map[string]bool)
		}
		ai[file][line][name] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				end := fset.Position(cg.End())
				add(pos.Filename, pos.Line, m[1])
				// Cover the first code line after the comment group.
				add(pos.Filename, end.Line+1, m[1])
			}
		}
	}
	return ai
}

// CheckAllowComments reports allow directives that lack the mandatory
// justification clause. Called once per package by the runner so a bare
// suppression cannot silently disable an analyzer.
func CheckAllowComments(fset *token.FileSet, files []*ast.File, report func(Diagnostic)) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if bareAllowRe.MatchString(c.Text) && !allowRe.MatchString(c.Text) {
					report(Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "allow",
						Message:  "agentlint:allow needs a justification: `//agentlint:allow <analyzer> -- <reason>`",
					})
				}
			}
		}
	}
}

// RunAnalyzers runs every analyzer over pkg and returns the findings in
// position order.
func RunAnalyzers(analyzers []*Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	CheckAllowComments(pkg.Fset, pkg.Files, report)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Report:    report,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// --- shared type-matching helpers the analyzers lean on ---

// pkgPathIs reports whether pkg is the (module-qualified) import path. Test
// fixtures type-check under the real import paths, so exact matching keeps
// scope rules honest in both worlds.
func pkgPathIs(pkg *types.Package, path string) bool {
	return pkg != nil && pkg.Path() == path
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (method or function), or nil for builtins, conversions, and calls through
// function-typed variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call: time.Now, json.Marshal, ...
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// recvNamed returns the named type of f's receiver with pointers stripped,
// or nil for plain functions.
func recvNamed(f *types.Func) *types.Named {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isMethodOn reports whether f is a method named name on the named type
// typeName declared in package pkgPath. Works for both concrete methods and
// interface methods.
func isMethodOn(f *types.Func, pkgPath, typeName, name string) bool {
	if f == nil || f.Name() != name {
		return false
	}
	named := recvNamed(f)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && pkgPathIs(obj.Pkg(), pkgPath)
}

// lastResultIsError reports whether f's final result is the error type.
func lastResultIsError(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// exprString renders an expression for matching and messages (types-aware
// canonical form, e.g. "e.events").
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}

// fileBase returns the base name of the file containing pos.
func fileBase(fset *token.FileSet, pos token.Pos) string {
	name := fset.Position(pos).Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}
