package analysis

import (
	"go/ast"
	"go/types"
)

// Lockorder encodes the engine's lock-order invariant (recommend package
// godoc "Invariants"): a shard's mutex is the innermost community lock —
// acquired before any sellShard lock, never nested with another shard
// lock — and no lock is held across a Persister fsync barrier
// (Store.Sync / Store.Compact), whose latency is unbounded.
//
// The check is an intra-function linear scan: it tracks which shard /
// sellShard / engine mutexes are held at each statement (deferred unlocks
// hold to function end; a branch that unlocks and returns does not leak
// its effect past the branch) and flags
//
//   - a shard lock acquired while another shard lock is held,
//   - a shard lock acquired while a sellShard lock is held (order
//     inversion), and
//   - a Sync/Compact fsync call while any tracked lock is held.
//
// The runtime complement is the -race soak suite; the analyzer catches the
// deadlock shapes the soak only hits probabilistically.
var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc: "shard locks before sellShard locks, never nested shard locks, no lock held across a Persister fsync\n\n" +
		"Linear intra-function scan over internal/recommend tracking held shard/sellShard mutexes; flags nested " +
		"shard locks, sellShard->shard inversions, and Store.Sync/Compact calls under any held lock.",
	Run: runLockorder,
}

// lockKind classifies a tracked mutex by its owner type.
type lockKind int

const (
	lockShard lockKind = iota
	lockSell
	lockOther
)

// heldLock is one acquired mutex, keyed by the canonical source expression
// of its owner (e.g. "sh" in sh.mu.Lock()).
type heldLock struct {
	kind lockKind
	key  string
}

func runLockorder(pass *Pass) error {
	if pass.Pkg.Path() != recommendPath {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			s := &lockScan{pass: pass}
			s.block(fd.Body.List, nil)
			return true
		})
	}
	return nil
}

type lockScan struct {
	pass *Pass
}

// block scans stmts sequentially, threading the held-lock set through.
// Returns the set held after the block, or held unchanged if the block
// terminates (return/panic) — the caller's fall-through path never ran it.
func (s *lockScan) block(stmts []ast.Stmt, held []heldLock) []heldLock {
	for _, st := range stmts {
		held = s.stmt(st, held)
	}
	return held
}

func (s *lockScan) stmt(st ast.Stmt, held []heldLock) []heldLock {
	switch st := st.(type) {
	case *ast.ExprStmt:
		return s.expr(st.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock releases at return: for ordering purposes the
		// lock is held for the rest of the function, so ignore the release
		// but still scan the call for acquisitions (rare but possible).
		if isUnlockCall(s.pass, st.Call) == nil {
			return s.expr(st.Call, held)
		}
		return held
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			held = s.expr(rhs, held)
		}
		return held
	case *ast.IfStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		held = s.expr(st.Cond, held)
		bodyHeld := s.block(st.Body.List, append([]heldLock(nil), held...))
		if !terminates(st.Body) {
			held = bodyHeld
		}
		if st.Else != nil {
			switch e := st.Else.(type) {
			case *ast.BlockStmt:
				elseHeld := s.block(e.List, append([]heldLock(nil), held...))
				if !terminates(e) {
					held = elseHeld
				}
			case *ast.IfStmt:
				held = s.stmt(e, held)
			}
		}
		return held
	case *ast.ForStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		return s.block(st.Body.List, held)
	case *ast.RangeStmt:
		return s.block(st.Body.List, held)
	case *ast.BlockStmt:
		return s.block(st.List, held)
	case *ast.SwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.block(cc.Body, append([]heldLock(nil), held...))
			}
		}
		return held
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.block(cc.Body, append([]heldLock(nil), held...))
			}
		}
		return held
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				s.block(cc.Body, append([]heldLock(nil), held...))
			}
		}
		return held
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			held = s.expr(r, held)
		}
		return held
	case *ast.GoStmt:
		// The goroutine runs on its own stack with no inherited locks.
		s.exprInGoroutine(st.Call)
		return held
	default:
		return held
	}
}

// expr scans e for lock transitions and fsync-under-lock violations,
// returning the updated held set.
func (s *lockScan) expr(e ast.Expr, held []heldLock) []heldLock {
	var out []heldLock = held
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			// A closure body is its own acquisition context; scan it with
			// the current held set (closures here run synchronously or are
			// handed to helpers while the locks remain held).
			s.block(lit.Body.List, append([]heldLock(nil), out...))
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if hl := isLockCall(s.pass, call); hl != nil {
			out = s.acquire(call, *hl, out)
			return true
		}
		if key := isUnlockCall(s.pass, call); key != nil {
			out = release(out, *key)
			return true
		}
		if name := isFsyncCall(s.pass, call); name != "" && len(out) > 0 {
			s.pass.Reportf(call.Pos(),
				"%s (an fsync barrier with unbounded latency) called while holding %s — release the lock before the barrier or allowlist with a justification",
				name, describeHeld(out))
		}
		return true
	})
	return out
}

// exprInGoroutine scans a go-statement's call with an empty held set.
func (s *lockScan) exprInGoroutine(call *ast.CallExpr) {
	s.expr(call, nil)
}

func (s *lockScan) acquire(call *ast.CallExpr, hl heldLock, held []heldLock) []heldLock {
	if hl.kind == lockShard {
		for _, h := range held {
			switch h.kind {
			case lockShard:
				s.pass.Reportf(call.Pos(),
					"shard lock %s acquired while shard lock %s is held — the engine never nests shard locks (deadlock by lock-order cycle)",
					hl.key, h.key)
			case lockSell:
				s.pass.Reportf(call.Pos(),
					"shard lock %s acquired while sellShard lock %s is held — lock order is shard before sellShard, never the reverse",
					hl.key, h.key)
			}
		}
	}
	return append(held, hl)
}

func release(held []heldLock, key string) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].key == key {
			return append(append([]heldLock(nil), held[:i]...), held[i+1:]...)
		}
	}
	return held
}

// isLockCall matches X.mu.Lock() / X.mu.RLock() and the engine's
// lockResidentW(sh) helper, classifying the owner X.
func isLockCall(pass *Pass, call *ast.CallExpr) *heldLock {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		owner, kind := mutexOwner(pass, sel.X)
		if owner == "" {
			return nil
		}
		return &heldLock{kind: kind, key: owner}
	case "lockResidentW":
		// e.lockResidentW(sh) acquires sh.mu for writing.
		if f := calleeFunc(pass.TypesInfo, call); f != nil &&
			isMethodOn(f, recommendPath, "Engine", "lockResidentW") && len(call.Args) == 1 {
			return &heldLock{kind: lockShard, key: exprString(call.Args[0])}
		}
	}
	return nil
}

// isUnlockCall matches X.mu.Unlock()/RUnlock(), returning the owner key.
func isUnlockCall(pass *Pass, call *ast.CallExpr) *string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Unlock" && sel.Sel.Name != "RUnlock") {
		return nil
	}
	owner, _ := mutexOwner(pass, sel.X)
	if owner == "" {
		return nil
	}
	return &owner
}

// mutexOwner resolves the receiver of a mutex method: for `sh.mu` it
// returns ("sh", lockShard) based on sh's type; for a bare mutex variable
// it returns the variable itself as an lockOther owner.
func mutexOwner(pass *Pass, recv ast.Expr) (string, lockKind) {
	recv = ast.Unparen(recv)
	if !isMutexType(pass.TypesInfo.Types[recv].Type) {
		return "", lockOther
	}
	if sel, ok := recv.(*ast.SelectorExpr); ok {
		owner := sel.X
		kind := lockOther
		if t := pass.TypesInfo.Types[owner].Type; t != nil {
			switch baseTypeName(t) {
			case "shard":
				kind = lockShard
			case "sellShard":
				kind = lockSell
			}
		}
		return exprString(owner), kind
	}
	return exprString(recv), lockOther
}

func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return pkgPathIs(obj.Pkg(), "sync") && (obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

func baseTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// isFsyncCall matches the Persister fsync barriers: methods named Sync or
// Compact on kvstore.Store or on the recommend Persister interface.
func isFsyncCall(pass *Pass, call *ast.CallExpr) string {
	f := calleeFunc(pass.TypesInfo, call)
	if f == nil || (f.Name() != "Sync" && f.Name() != "Compact") {
		return ""
	}
	named := recvNamed(f)
	if named == nil {
		return ""
	}
	obj := named.Obj()
	if (obj.Name() == "Store" && pkgPathIs(obj.Pkg(), kvstorePath)) ||
		(obj.Name() == "Persister" && pkgPathIs(obj.Pkg(), recommendPath)) {
		return obj.Name() + "." + f.Name()
	}
	return ""
}

// describeHeld renders the held-lock set for a diagnostic.
func describeHeld(held []heldLock) string {
	out := ""
	for i, h := range held {
		if i > 0 {
			out += ", "
		}
		switch h.kind {
		case lockShard:
			out += "shard lock " + h.key
		case lockSell:
			out += "sellShard lock " + h.key
		default:
			out += "lock " + h.key
		}
	}
	return out
}

// terminates reports whether a block's fall-through edge is unreachable.
func terminates(b ast.Stmt) bool {
	block, ok := b.(*ast.BlockStmt)
	if !ok || len(block.List) == 0 {
		return false
	}
	switch last := block.List[len(block.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
