package analysis

import (
	"go/ast"
	"go/types"
)

// Errflow encodes the durability contract's first rule: an acknowledged
// write is durable, and an error means it is NOT — so the error returns of
// the community write API (SetProfile, SetProfiles, RecordPurchase,
// RecordPurchaseAt — on the Engine, on Writer implementations, and on the
// Router), of the kvstore accessors, and of the ownership fence must never
// be silently discarded. A dropped SetProfile error under persistence is a
// write the caller believes durable and the WAL never saw; a dropped Fence
// error is a stale-epoch write acked by a deposed owner.
//
// Statement-position calls (`e.SetProfile(p)` as its own statement, or in
// a go/defer) are flagged. An explicit `_ = e.SetProfile(p)` is treated as
// a deliberate, visible discard and allowed — the reviewer can see it.
var Errflow = &Analyzer{
	Name: "errflow",
	Doc: "error returns of the write API, kvstore accessors, and the ownership fence must be used\n\n" +
		"Flags statement-position calls that discard the error result of SetProfile/SetProfiles/RecordPurchase/" +
		"RecordPurchaseAt (any Writer implementation), exported kvstore.Store methods, and OwnershipTable.Fence. " +
		"An explicit `_ =` discard is visible to reviewers and allowed.",
	Run: runErrflow,
}

// writeAPINames are the community write methods; they are flagged on any
// receiver (Engine, Router, OwnedWriter, replnet.Writer, the Writer
// interface) — every implementation shares the contract.
var writeAPINames = map[string]bool{
	"SetProfile":       true,
	"SetProfiles":      true,
	"RecordPurchase":   true,
	"RecordPurchaseAt": true,
}

func runErrflow(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				if c, ok := st.X.(*ast.CallExpr); ok {
					call = c
				}
			case *ast.GoStmt:
				call = st.Call
			case *ast.DeferStmt:
				call = st.Call
			}
			if call == nil {
				return true
			}
			f := calleeFunc(pass.TypesInfo, call)
			if f == nil || !lastResultIsError(f) {
				return true
			}
			recv := recvNamed(f)
			switch {
			case writeAPINames[f.Name()] && recv != nil:
				pass.Reportf(call.Pos(),
					"error result of %s.%s discarded: under persistence a write error means the WAL never saw the write — handle it or discard explicitly with `_ =`",
					recv.Obj().Name(), f.Name())
			case isKvstoreAccessor(f, recv):
				pass.Reportf(call.Pos(),
					"error result of kvstore Store.%s discarded: a store error is a durability violation — handle it or discard explicitly with `_ =`",
					f.Name())
			case isMethodOn(f, recommendPath, "OwnershipTable", "Fence"):
				pass.Reportf(call.Pos(),
					"error result of OwnershipTable.Fence discarded: ignoring the fence verdict is exactly the split-brain the epoch exists to prevent")
			}
			return true
		})
	}
	return nil
}

// isKvstoreAccessor matches exported error-returning kvstore.Store methods
// other than Close (a deferred Close discard is idiomatic teardown; the
// engine's sticky-error path covers real close failures).
func isKvstoreAccessor(f *types.Func, recv *types.Named) bool {
	if recv == nil || f.Name() == "Close" || !ast.IsExported(f.Name()) {
		return false
	}
	obj := recv.Obj()
	return obj.Name() == "Store" && pkgPathIs(obj.Pkg(), kvstorePath)
}
