package analysis

import (
	"go/ast"
	"reflect"
	"regexp"
)

// Wiretag encodes the wire vocabulary rule (DESIGN.md "Event plane",
// SNIPPETS.md agent-first convention): every struct that crosses a wire —
// /events and /metrics/snapshot bodies, BENCH_*.json scenario documents,
// replnet journal frames, the engine's stats and journal records — carries
// an explicit snake_case `json:` tag on every exported field. Implicit
// field names drift with Go renames and break recorded documents and wire
// consumers silently; the reflective docs test
// (TestDocsStatsFieldNamesInDesign) covers only the stats structs, while
// this analyzer covers the full closure.
//
// Scope: per-package root types (the frame/document entry points) plus
// every package-local struct reachable from them through fields, slices,
// maps, and pointers. Foreign fields (e.g. an ops.Snapshot inside a
// loadgen document) are checked when their defining package is analyzed.
var Wiretag = &Analyzer{
	Name: "wiretag",
	Doc: "wire-bound structs carry explicit snake_case json tags on every exported field\n\n" +
		"Walks the per-package wire roots (ops events, recommend stats/journal/snapshot shapes, replnet frames, " +
		"coordinator lease wire, loadgen BENCH documents) and their package-local field closure; flags exported " +
		"fields with no json tag or with a non-snake_case name.",
	Run: runWiretag,
}

// wireRoots names each package's wire entry points. "*" means every
// exported struct in the package is wire vocabulary (internal/ops exists
// solely to be serialized).
var wireRoots = map[string][]string{
	opsPath:                         {"*"},
	recommendPath:                   {"Stats", "ReplicationStats", "ShardReplication", "JournalRecord", "TailResult", "ShardSnapshot", "SnapshotPage", "OwnershipMap"},
	replnetPath:                     {"tailRequest", "snapPageRequest", "setProfilesRequest", "purchaseRequest", "OwnerMapInfo"},
	"agentrec/internal/coordinator": {"LeaseRequest", "LeaseGrant"},
	"agentrec/internal/loadgen":     {"ScenarioResult", "Scenario"},
}

var snakeCase = regexp.MustCompile(`^[a-z0-9_]+$`)

func runWiretag(pass *Pass) error {
	roots, ok := wireRoots[pass.Pkg.Path()]
	if !ok {
		return nil
	}

	// Collect the package's struct type declarations by name. A struct
	// whose declaration line carries a justified wiretag allow is excluded
	// wholesale — the way to say "this exported ops struct is in-process
	// config, not wire vocabulary".
	structDecls := make(map[string]*ast.StructType)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			if st, ok := ts.Type.(*ast.StructType); ok && !pass.Allowed(ts.Name.Pos()) {
				structDecls[ts.Name.Name] = st
			}
			return true
		})
	}

	// Seed the worklist from the roots, then close over package-local
	// struct-typed fields.
	seen := make(map[string]bool)
	var work []string
	add := func(name string) {
		if !seen[name] && structDecls[name] != nil {
			seen[name] = true
			work = append(work, name)
		}
	}
	if len(roots) == 1 && roots[0] == "*" {
		for name := range structDecls {
			if ast.IsExported(name) {
				add(name)
			}
		}
	} else {
		for _, r := range roots {
			if structDecls[r] == nil {
				pass.Reportf(pass.Files[0].Pos(),
					"wiretag root %q is not a struct in %s: update the analyzer's wireRoots table to match the wire surface",
					r, pass.Pkg.Path())
				continue
			}
			add(r)
		}
	}

	for len(work) > 0 {
		name := work[0]
		work = work[1:]
		st := structDecls[name]
		for _, field := range st.Fields.List {
			// Pull package-local named structs into the closure.
			for _, local := range localStructNames(pass, field.Type) {
				add(local)
			}
			checkFieldTags(pass, name, field)
		}
	}
	return nil
}

// checkFieldTags verifies one field declaration's json tag.
func checkFieldTags(pass *Pass, structName string, field *ast.Field) {
	if len(field.Names) == 0 {
		// Embedded field: its own fields are checked via the closure (or
		// in its defining package); the embedding itself inlines.
		return
	}
	for _, name := range field.Names {
		if !name.IsExported() {
			continue
		}
		if field.Tag == nil {
			pass.Reportf(name.Pos(),
				"wire struct %s: exported field %s has no json tag — the implicit name %q breaks wire consumers on rename; tag it snake_case (or `json:\"-\"`)",
				structName, name.Name, name.Name)
			continue
		}
		tag, _ := reflect.StructTag(field.Tag.Value[1 : len(field.Tag.Value)-1]).Lookup("json")
		if tag == "" {
			pass.Reportf(name.Pos(),
				"wire struct %s: exported field %s has a struct tag but no json key — tag it snake_case (or `json:\"-\"`)",
				structName, name.Name)
			continue
		}
		jsonName := tag
		if i := indexByte(jsonName, ','); i >= 0 {
			jsonName = jsonName[:i]
		}
		if jsonName == "-" {
			continue
		}
		if jsonName == "" || !snakeCase.MatchString(jsonName) {
			pass.Reportf(name.Pos(),
				"wire struct %s: field %s's json name %q is not snake_case — the wire vocabulary is lowercase snake_case (agent-first, units in the name)",
				structName, name.Name, jsonName)
		}
	}
}

// localStructNames returns the names of package-local named types reached
// by t (through pointers, slices, arrays, and maps).
func localStructNames(pass *Pass, t ast.Expr) []string {
	var out []string
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[e]; obj != nil && pkgPathIs(obj.Pkg(), pass.Pkg.Path()) {
				out = append(out, e.Name)
			}
		case *ast.StarExpr:
			walk(e.X)
		case *ast.ArrayType:
			walk(e.Elt)
		case *ast.MapType:
			walk(e.Key)
			walk(e.Value)
		}
	}
	walk(t)
	return out
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}
