package ops

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func journalEvent(shard int, seq uint64) Event {
	return Event{Kind: KindJournal, Journal: JournalEvent{Shard: shard, Seq: seq, Op: "purchase"}}
}

// TestBusDeliversInPublishOrder checks basic fan-out: every subscriber sees
// every matching event, in publish order, with strictly increasing seq.
func TestBusDeliversInPublishOrder(t *testing.T) {
	bus := NewBus()
	all := bus.Subscribe(SubscribeOptions{})
	lagOnly := bus.Subscribe(SubscribeOptions{Kinds: []Kind{KindLag}})

	bus.Publish(journalEvent(1, 1))
	bus.Publish(Event{Kind: KindLag, Lag: LagEvent{Shard: 3, LagRecords: 7}})
	bus.Publish(journalEvent(1, 2))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var kinds []Kind
	var lastSeq uint64
	for i := 0; i < 3; i++ {
		ev, err := all.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Seq <= lastSeq {
			t.Fatalf("seq not increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		kinds = append(kinds, ev.Kind)
	}
	want := []Kind{KindJournal, KindLag, KindJournal}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}

	ev, err := lagOnly.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != KindLag || ev.Lag.LagRecords != 7 {
		t.Fatalf("filtered subscriber got %+v", ev)
	}
}

// TestBusSlowSubscriberNeverBlocksAndDropsExactly floods a subscriber whose
// reader is asleep: every Publish must return immediately (the producer
// finishes while the reader still sleeps), the oldest events are dropped,
// the drop marker carries the exact count, and received + dropped equals
// published.
func TestBusSlowSubscriberNeverBlocksAndDropsExactly(t *testing.T) {
	const buffer, published = 8, 1000
	bus := NewBus(WithReplay(0))
	sub := bus.Subscribe(SubscribeOptions{Buffer: buffer})

	for i := 0; i < published; i++ {
		if seq := bus.Publish(journalEvent(0, uint64(i+1))); seq == 0 {
			t.Fatal("publish on open bus returned 0")
		}
	}
	// The reader has not run at all: everything beyond the ring must have
	// been dropped already, writers having never waited.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	ev, err := sub.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != KindDropped {
		t.Fatalf("first event after overrun = %v, want drop marker", ev.Kind)
	}
	if got := ev.Dropped.DroppedEvents; got != published-buffer {
		t.Fatalf("drop marker = %d, want %d", got, published-buffer)
	}
	var received int
	for i := 0; i < buffer; i++ {
		ev, err := sub.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind == KindDropped {
			t.Fatalf("unexpected second drop marker after %d events", received)
		}
		received++
		wantSeq := uint64(published - buffer + i + 1)
		if ev.Seq != wantSeq {
			t.Fatalf("post-gap event %d has seq %d, want %d", i, ev.Seq, wantSeq)
		}
	}
	if got := sub.Dropped() + uint64(received); got != published {
		t.Fatalf("received %d + dropped %d != published %d", received, sub.Dropped(), published)
	}
}

// TestBusConcurrentSoak is the -race soak: several producers publish
// concurrently against one slow subscriber and one fast subscriber. Writers
// must never block (the run is time-bounded), per-subscriber seq must be
// strictly increasing with drops exactly accounting for every gap, and
// delivered + dropped must equal published for both consumers.
func TestBusConcurrentSoak(t *testing.T) {
	const producers = 8
	const perProducer = 2000
	const total = producers * perProducer

	bus := NewBus(WithReplay(0))
	fast := bus.Subscribe(SubscribeOptions{Buffer: total}) // never drops
	slow := bus.Subscribe(SubscribeOptions{Buffer: 16})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Slow consumer: reads with a delay, verifying gap accounting inline.
	var slowSeen, slowGaps atomic.Uint64
	slowDone := make(chan error, 1)
	go func() {
		var last uint64
		for {
			ev, err := slow.Next(ctx)
			if err != nil {
				slowDone <- err
				return
			}
			if ev.Kind == KindDropped {
				slowGaps.Add(ev.Dropped.DroppedEvents)
				continue
			}
			if ev.Seq <= last {
				t.Errorf("slow subscriber: seq %d after %d", ev.Seq, last)
			}
			// The events between last and ev.Seq must all be accounted as
			// drops by the time we see the post-gap event.
			last = ev.Seq
			if slowSeen.Add(1) == 0 {
				return
			}
			if slowSeen.Load()+slowGaps.Load() == total && ev.Seq == total {
				slowDone <- nil
				return
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				bus.Publish(journalEvent(p, uint64(i+1)))
			}
		}(p)
	}
	wg.Wait()
	elapsed := time.Since(start)
	// Never-blocks, operationally: 16k publishes against a sleeping
	// consumer complete far inside the soak budget. A writer that waited
	// on the slow consumer even once per ring-full would blow this.
	if elapsed > 10*time.Second {
		t.Fatalf("publishing %d events took %v — writers blocked on a slow consumer", total, elapsed)
	}

	// Fast subscriber sees everything, in order, with zero drops.
	var last uint64
	for i := 0; i < total; i++ {
		ev, err := fast.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind == KindDropped {
			t.Fatal("fast subscriber dropped events despite a full-size buffer")
		}
		if ev.Seq != last+1 {
			t.Fatalf("fast subscriber: seq %d after %d (gap)", ev.Seq, last)
		}
		last = ev.Seq
	}
	if fast.Dropped() != 0 {
		t.Fatalf("fast subscriber dropped %d", fast.Dropped())
	}

	if err := <-slowDone; err != nil {
		t.Fatalf("slow subscriber: %v", err)
	}
	if got := slowSeen.Load() + slowGaps.Load(); got != total {
		t.Fatalf("slow subscriber: seen %d + gap-accounted %d != published %d",
			slowSeen.Load(), slowGaps.Load(), total)
	}
	if slow.Dropped() != slowGaps.Load() {
		t.Fatalf("Dropped() = %d, gap markers accounted %d", slow.Dropped(), slowGaps.Load())
	}
}

// TestBusResume covers the Last-Event-ID contract: a subscriber resuming
// within the replay retention gets exactly the missed events (no gap, no
// duplicate); one resuming past retention gets an exact drop marker first.
func TestBusResume(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	bus := NewBus(WithReplay(4))
	for i := 1; i <= 10; i++ {
		bus.Publish(journalEvent(0, uint64(i)))
	}
	// Retained: seqs 7..10. Resume from 8 → replay 9, 10, no marker.
	sub := bus.Subscribe(SubscribeOptions{Resume: true, AfterSeq: 8})
	for _, want := range []uint64{9, 10} {
		ev, err := sub.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind == KindDropped || ev.Seq != want {
			t.Fatalf("resumed event = kind %v seq %d, want seq %d", ev.Kind, ev.Seq, want)
		}
	}
	// And the resumed subscription is live for new events.
	bus.Publish(journalEvent(0, 11))
	if ev, err := sub.Next(ctx); err != nil || ev.Seq != 11 {
		t.Fatalf("post-resume live event = %+v, %v", ev, err)
	}

	// Resume from 2: seqs 3..6 are pruned (exactly 4 dropped), 7..10 replay.
	stale := bus.Subscribe(SubscribeOptions{Resume: true, AfterSeq: 2})
	ev, err := stale.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != KindDropped || ev.Dropped.DroppedEvents != 5 {
		// After the 11th publish the ring holds 8..11, so 3..7 are gone.
		t.Fatalf("stale resume marker = %+v, want 5 dropped", ev)
	}
	for _, want := range []uint64{8, 9, 10, 11} {
		ev, err := stale.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Seq != want {
			t.Fatalf("stale resume replay seq = %d, want %d", ev.Seq, want)
		}
	}
}

// TestBusCloseDrainsSubscribers: closing the bus lets readers drain what is
// buffered, then reports ErrSubscriptionClosed.
func TestBusCloseDrainsSubscribers(t *testing.T) {
	bus := NewBus()
	sub := bus.Subscribe(SubscribeOptions{})
	bus.Publish(journalEvent(0, 1))
	bus.Close()
	if seq := bus.Publish(journalEvent(0, 2)); seq != 0 {
		t.Fatalf("publish after close returned seq %d", seq)
	}
	ctx := context.Background()
	if ev, err := sub.Next(ctx); err != nil || ev.Seq != 1 {
		t.Fatalf("drain after close = %+v, %v", ev, err)
	}
	if _, err := sub.Next(ctx); err != ErrSubscriptionClosed {
		t.Fatalf("err = %v, want ErrSubscriptionClosed", err)
	}
}

// TestEventJSONCarriesOnlyItsPayload pins the wire shape: an event encodes
// its own payload under the kind's field and omits every other payload, and
// the agent-first field names are on the wire.
func TestEventJSONCarriesOnlyItsPayload(t *testing.T) {
	data, err := json.Marshal(Event{
		Seq: 9, Kind: KindLag, AtEpochMs: 1700000000000,
		Lag: LagEvent{Server: 1, Shard: 3, Owner: 0, LagRecords: 12, PrevLagRecords: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"kind":"lag"`, `"lag_records":12`, `"at_epoch_ms":1700000000000`} {
		if !strings.Contains(s, want) {
			t.Errorf("encoded lag event %s missing %s", s, want)
		}
	}
	for _, absent := range []string{"journal", "compaction", "rec_delta", "snapshot", "dropped"} {
		if strings.Contains(s, `"`+absent+`"`) {
			t.Errorf("encoded lag event carries foreign payload %q: %s", absent, s)
		}
	}
}

// TestEventBusPublishZeroAlloc is the mechanical-sympathy gate for the
// publish hot path, in the style of TestTopKStreamZeroAlloc: Publish must
// not allocate per event, with subscribers attached and dropping.
func TestEventBusPublishZeroAlloc(t *testing.T) {
	bus := NewBus()
	bus.Subscribe(SubscribeOptions{Buffer: 64})                         // drops under flood
	bus.Subscribe(SubscribeOptions{Kinds: []Kind{KindLag}, Buffer: 64}) // filters everything out
	ev := journalEvent(3, 1)
	allocs := testing.AllocsPerRun(1000, func() {
		bus.Publish(ev)
	})
	if allocs > 0 {
		t.Fatalf("Publish allocates %.1f times per event, want 0", allocs)
	}
}

// BenchmarkEventBusPublish measures the publish hot path with a dropping
// subscriber attached — the cost an engine write pays per emitted event.
// Gated in CI's bench smoke alongside Recommend/Replicat/Compact/ANN.
func BenchmarkEventBusPublish(b *testing.B) {
	bus := NewBus()
	bus.Subscribe(SubscribeOptions{Buffer: 1024})
	ev := journalEvent(1, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish(ev)
	}
}

// BenchmarkEventBusPublishParallel is the contended shape: every engine
// shard publishing at once.
func BenchmarkEventBusPublishParallel(b *testing.B) {
	bus := NewBus()
	bus.Subscribe(SubscribeOptions{Buffer: 1024})
	ev := journalEvent(1, 1)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			bus.Publish(ev)
		}
	})
}
