package ops

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Bus is a bounded fan-out event bus. One bus serves a whole process: every
// producer publishes into it and every consumer — in-process subscribers
// and the wire endpoints — reads from it through a Subscription.
//
// The contract producers rely on:
//
//   - Publish never blocks on a consumer. Each subscription owns a fixed
//     ring buffer; when a slow consumer's ring is full the OLDEST buffered
//     event is dropped (and counted), never the writer's time.
//   - Publish allocates nothing per event: the event value is copied into
//     preallocated rings (TestEventBusPublishZeroAlloc gates this).
//   - Drops are exact and visible: a subscription's reader receives a
//     synthetic KindDropped marker at the gap's position carrying exactly
//     how many events it lost, and Dropped() totals them.
//
// The bus additionally retains a bounded replay ring of recent events so a
// wire consumer that disconnects can resume with its last seen Seq
// (SubscribeOptions.AfterSeq): events still retained are replayed with no
// gap or duplicate; events already pruned are accounted as an exact drop
// marker at the head of the resumed stream.
type Bus struct {
	mu     sync.Mutex
	seq    uint64
	replay []Event // ring of the most recent events, for resume
	rhead  int     // index of the oldest retained event
	rlen   int
	subs   []*Subscription
	closed bool
}

// DefaultReplay is how many recent events a Bus retains for resume unless
// WithReplay overrides it.
const DefaultReplay = 1024

// DefaultSubscriberBuffer is a Subscription's ring capacity unless
// SubscribeOptions.Buffer overrides it.
const DefaultSubscriberBuffer = 256

// BusOption configures NewBus.
type BusOption func(*Bus)

// WithReplay sets the resume ring's capacity: how many recent events a
// reconnecting consumer can recover. Zero disables resume entirely.
func WithReplay(n int) BusOption {
	return func(b *Bus) {
		if n >= 0 {
			b.replay = make([]Event, n)
		}
	}
}

// NewBus returns a bus with the default replay retention.
func NewBus(opts ...BusOption) *Bus {
	b := &Bus{replay: make([]Event, DefaultReplay)}
	for _, opt := range opts {
		opt(b)
	}
	return b
}

// Publish assigns ev the next sequence number and timestamp (unless the
// producer stamped one) and fans it out. It never blocks on subscribers and
// allocates nothing; publishing to a closed bus is a no-op. Returns the
// assigned sequence number (0 when closed).
func (b *Bus) Publish(ev Event) uint64 {
	now := time.Now().UnixMilli()
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return 0
	}
	b.seq++
	ev.Seq = b.seq
	if ev.AtEpochMs == 0 {
		ev.AtEpochMs = now
	}
	if n := len(b.replay); n > 0 {
		if b.rlen == n {
			b.rhead = (b.rhead + 1) % n
			b.rlen--
		}
		b.replay[(b.rhead+b.rlen)%n] = ev
		b.rlen++
	}
	for _, s := range b.subs {
		s.offer(ev)
	}
	seq := ev.Seq
	b.mu.Unlock()
	return seq
}

// LastSeq returns the sequence number of the most recently published event
// (0 when nothing has been published).
func (b *Bus) LastSeq() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// SubscribeOptions configures a Subscription.
//
//agentlint:allow wiretag -- in-process subscription config, never serialized; the SSE handler derives it from query params
type SubscribeOptions struct {
	// Kinds restricts delivery to the listed kinds; empty means all.
	// Synthetic drop markers are always delivered.
	Kinds []Kind
	// Buffer is the subscription's ring capacity [DefaultSubscriberBuffer].
	Buffer int
	// Resume replays retained events with Seq > AfterSeq before going
	// live. Events already pruned from the replay ring are surfaced as
	// one exact drop marker at the head of the stream.
	Resume   bool
	AfterSeq uint64
}

// Subscribe registers a new subscription. On a closed bus the subscription
// is returned already closed (Next reports ErrSubscriptionClosed).
func (b *Bus) Subscribe(opt SubscribeOptions) *Subscription {
	buf := opt.Buffer
	if buf <= 0 {
		buf = DefaultSubscriberBuffer
	}
	s := &Subscription{
		bus:    b,
		ring:   make([]Event, buf),
		notify: make(chan struct{}, 1),
	}
	if len(opt.Kinds) > 0 {
		s.kinds = make(map[Kind]bool, len(opt.Kinds))
		for _, k := range opt.Kinds {
			s.kinds[k] = true
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		s.closed = true
		return s
	}
	if opt.Resume && b.seq > opt.AfterSeq {
		// oldest is the seq of the oldest retained event; everything in
		// (AfterSeq, oldest) is gone and must be accounted as dropped.
		oldest := b.seq + 1 // empty ring: nothing is retained
		if b.rlen > 0 {
			oldest = b.seq - uint64(b.rlen) + 1
		}
		if opt.AfterSeq+1 < oldest {
			gap := oldest - opt.AfterSeq - 1
			s.pendingDrops += gap
			s.dropped += gap
		}
		for i := 0; i < b.rlen; i++ {
			ev := b.replay[(b.rhead+i)%len(b.replay)]
			if ev.Seq > opt.AfterSeq {
				s.offer(ev)
			}
		}
	}
	b.subs = append(b.subs, s)
	return s
}

// Close shuts the bus down: further publishes are dropped and every
// subscription is closed (readers drain what is buffered, then see
// ErrSubscriptionClosed).
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	subs := b.subs
	b.subs = nil
	b.mu.Unlock()
	for _, s := range subs {
		s.markClosed()
	}
}

func (b *Bus) unsubscribe(target *Subscription) {
	b.mu.Lock()
	for i, s := range b.subs {
		if s == target {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			break
		}
	}
	b.mu.Unlock()
}

// ErrSubscriptionClosed is returned by Next once a closed subscription has
// drained its buffer.
var ErrSubscriptionClosed = errors.New("ops: subscription closed")

// Subscription is one consumer's bounded view of the bus. Next is the read
// side; it is safe for one reader goroutine (the usual shape: one
// subscription per consumer connection).
type Subscription struct {
	bus   *Bus
	kinds map[Kind]bool // nil = all kinds

	mu           sync.Mutex
	ring         []Event
	head, n      int
	pendingDrops uint64 // drops not yet surfaced as a marker
	dropped      uint64 // lifetime drops, for accounting
	delivered    uint64
	closed       bool
	notify       chan struct{}
}

// offer enqueues ev, dropping the oldest buffered event when full. Called
// with the bus lock held, so enqueue order matches publish order.
func (s *Subscription) offer(ev Event) {
	if s.kinds != nil && !s.kinds[ev.Kind] {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.n == len(s.ring) {
		s.head = (s.head + 1) % len(s.ring)
		s.n--
		s.pendingDrops++
		s.dropped++
	}
	s.ring[(s.head+s.n)%len(s.ring)] = ev
	s.n++
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Next blocks until an event is available, the subscription closes
// (ErrSubscriptionClosed after the buffer drains), or ctx is done. When the
// ring dropped events, a synthetic KindDropped marker carrying the exact
// count is delivered at the gap's position, before the first event that
// survived it.
func (s *Subscription) Next(ctx context.Context) (Event, error) {
	for {
		s.mu.Lock()
		if s.pendingDrops > 0 {
			n := s.pendingDrops
			s.pendingDrops = 0
			s.mu.Unlock()
			return Event{
				Kind:      KindDropped,
				AtEpochMs: time.Now().UnixMilli(),
				Dropped:   Drop{DroppedEvents: n},
			}, nil
		}
		if s.n > 0 {
			ev := s.ring[s.head]
			s.ring[s.head] = Event{}
			s.head = (s.head + 1) % len(s.ring)
			s.n--
			s.delivered++
			s.mu.Unlock()
			return ev, nil
		}
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return Event{}, ErrSubscriptionClosed
		}
		select {
		case <-ctx.Done():
			return Event{}, ctx.Err()
		case <-s.notify:
		}
	}
}

// Dropped returns how many events this subscription has lost in total —
// ring overruns plus any resume gap past the replay retention.
func (s *Subscription) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Delivered returns how many events Next has handed out (drop markers
// excluded).
func (s *Subscription) Delivered() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.delivered
}

// Close detaches the subscription from the bus. Buffered events remain
// readable; after they drain Next reports ErrSubscriptionClosed. Idempotent.
func (s *Subscription) Close() {
	s.bus.unsubscribe(s)
	s.markClosed()
}

func (s *Subscription) markClosed() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}
