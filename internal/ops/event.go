// Package ops is the platform's unified typed observability model: one
// event vocabulary (Event) and one snapshot shape (Snapshot) shared by
// every layer that reports on a running deployment, plus a bounded fan-out
// Bus carrying the live event stream to in-process and wire subscribers.
//
// Before this package existed the platform exposed three disjoint,
// polling-only stats structs (the engine's, the replicator's, and the
// platform's walk over both) that reached no wire. ops collapses them into
// one self-describing model: every field that crosses a process boundary is
// named per the agent-first convention — the unit lives in the field name
// (`lag_records`, `journal_bytes`, `latency_ms`, `at_epoch_ms`) so a
// consumer needs no external schema to interpret the stream.
//
// The package sits below every producer: it imports nothing from the rest
// of the module, so recommend, platform, and buyerserver can all publish
// into and subscribe from the same Bus without import cycles.
package ops

// Kind discriminates Event payloads. Exactly one payload field of an Event
// is populated, the one matching its Kind.
type Kind string

// Event kinds.
const (
	// KindSnapshot is the periodic whole-platform heartbeat: one
	// Snapshot subsuming every server's engine and replication stats.
	KindSnapshot Kind = "snapshot"
	// KindRecDelta reports that a consumer's served top-N changed since
	// the last recommendation for the same (user, category, strategy).
	KindRecDelta Kind = "rec_delta"
	// KindJournal is one committed community mutation: a profile batch
	// or purchase applied to a shard, in the shard's write order.
	KindJournal Kind = "journal"
	// KindLag reports a replication lag transition observed by a
	// follower's pull loop.
	KindLag Kind = "lag"
	// KindCompaction reports a completed journal compaction pass.
	KindCompaction Kind = "compaction"
	// KindOwnership reports a shard ownership map transition: the
	// coordinator promoted a follower after an owner's lease lapsed, or
	// rebalanced assignments when a server joined or left.
	KindOwnership Kind = "ownership"
	// KindDropped is the synthetic marker a slow subscriber sees in
	// place of events its ring buffer lost; it is never published, only
	// synthesized per subscription.
	KindDropped Kind = "dropped"
)

// AllKinds returns every publishable kind plus the synthetic dropped
// marker, the vocabulary wire endpoints validate ?kinds= against.
func AllKinds() []Kind {
	return []Kind{KindSnapshot, KindRecDelta, KindJournal, KindLag, KindCompaction, KindOwnership, KindDropped}
}

// ValidKind reports whether k is a known event kind.
func ValidKind(k Kind) bool {
	switch k {
	case KindSnapshot, KindRecDelta, KindJournal, KindLag, KindCompaction, KindOwnership, KindDropped:
		return true
	}
	return false
}

// Event is one observability event. Seq is assigned by the Bus at publish
// time and is strictly increasing per bus — it is the resume cursor wire
// consumers hand back as Last-Event-ID. Payload fields use omitzero/
// omitempty so the encoded event carries only the payload matching Kind.
//
// Event is a plain value: publishing copies it into preallocated rings, so
// the publish path allocates nothing per event.
type Event struct {
	Seq       uint64 `json:"seq,omitempty"` // bus-assigned; 0 only on synthetic drop markers
	Kind      Kind   `json:"kind"`
	AtEpochMs int64  `json:"at_epoch_ms"`

	Journal    JournalEvent    `json:"journal,omitzero"`
	Lag        LagEvent        `json:"lag,omitzero"`
	Compaction CompactionEvent `json:"compaction,omitzero"`
	RecDelta   RecDelta        `json:"rec_delta,omitzero"`
	Ownership  OwnershipEvent  `json:"ownership,omitzero"`
	Dropped    Drop            `json:"dropped,omitzero"`
	Snapshot   *Snapshot       `json:"snapshot,omitempty"`
}

// JournalEvent is one committed community mutation: what the shard's
// journal appended, observable live instead of only via replication.
type JournalEvent struct {
	Server       int    `json:"server"`
	Shard        int    `json:"shard"`
	Seq          uint64 `json:"seq"` // shard journal sequence (feed seq, or write generation without a feed)
	Op           string `json:"op"`  // "profiles" or "purchase"
	Records      int    `json:"records,omitempty"`
	PayloadBytes int    `json:"payload_bytes,omitempty"` // encoded profile payload carried by the record
}

// LagEvent is a replication lag transition: the follower's pull loop
// observed a different backlog for a shard than it did on the previous
// pull. A transition to zero is the catch-up edge.
type LagEvent struct {
	Server         int    `json:"server"` // the follower reporting
	Shard          int    `json:"shard"`
	Owner          int    `json:"owner"`
	LagRecords     uint64 `json:"lag_records"`
	PrevLagRecords uint64 `json:"prev_lag_records"`
}

// CompactionEvent reports one completed journal compaction pass.
type CompactionEvent struct {
	Server         int     `json:"server"`
	Compactions    uint64  `json:"compactions"` // total passes, this one included
	DurationMs     float64 `json:"duration_ms"`
	JournalBytes   int64   `json:"journal_bytes"` // journal size after the rewrite
	LiveBytes      int64   `json:"live_bytes"`
	ReclaimedBytes int64   `json:"reclaimed_bytes"` // how much the rewrite shrank the journal
}

// Ownership transition reasons.
const (
	// OwnershipJoin: a server (re)joined and caught-up shards rebalanced
	// onto it.
	OwnershipJoin = "join"
	// OwnershipLeave: a server deregistered cleanly and its shards were
	// promoted away.
	OwnershipLeave = "leave"
	// OwnershipFailover: an owner's lease lapsed and a caught-up follower
	// was promoted for each of its shards.
	OwnershipFailover = "failover"
)

// OwnershipEvent is one shard ownership map transition: the epoch advanced
// and the listed shards changed owner. Server is the observer publishing
// the event (-1 when the coordinator authority publishes directly).
type OwnershipEvent struct {
	Server    int         `json:"server"`
	Epoch     uint64      `json:"epoch"`
	PrevEpoch uint64      `json:"prev_epoch"`
	Reason    string      `json:"reason"` // join | leave | failover
	Moved     []ShardMove `json:"moved,omitempty"`
}

// ShardMove is one shard's ownership change within a map transition.
type ShardMove struct {
	Shard int `json:"shard"`
	From  int `json:"from"`
	To    int `json:"to"`
}

// RecDelta reports that a consumer's served top-N changed: the engine
// answered a recommendation whose ranked product ids differ from the last
// answer for the same (user, category, strategy).
type RecDelta struct {
	Server    int      `json:"server"`
	UserID    string   `json:"user"`
	Category  string   `json:"category,omitempty"`
	Strategy  string   `json:"strategy"`
	Top       []string `json:"top"`               // ranked product ids as served
	Entered   []string `json:"entered,omitempty"` // ids new since the previous answer
	Exited    []string `json:"exited,omitempty"`  // ids gone since the previous answer
	LatencyMs float64  `json:"latency_ms"`        // time to compute the recommendation
}

// Drop is the payload of a synthetic KindDropped marker: how many events a
// slow subscriber's ring (or a resume past the replay ring's retention)
// lost since the marker's position in the stream.
type Drop struct {
	DroppedEvents uint64 `json:"dropped_events"`
}

// Snapshot is the unified whole-platform stats view: one entry per buyer
// server, each carrying its engine sizing and (when replicated) its
// replication status. It subsumes the engine's, the replicator's, and the
// platform's previously separate stats structs, and is both the periodic
// heartbeat event payload and the /metrics/snapshot response.
type Snapshot struct {
	AtEpochMs int64            `json:"at_epoch_ms"`
	Servers   []ServerSnapshot `json:"servers"`
}

// TotalLagRecords sums every server's replication backlog — the one number
// an operator checks before trusting follower reads platform-wide.
func (s Snapshot) TotalLagRecords() uint64 {
	var total uint64
	for _, sv := range s.Servers {
		if sv.Replication != nil {
			total += sv.Replication.LagRecords
		}
	}
	return total
}

// ServerSnapshot is one buyer server's slice of the platform snapshot.
type ServerSnapshot struct {
	Server      int                  `json:"server"`
	Engine      EngineSnapshot       `json:"engine"`
	Replication *ReplicationSnapshot `json:"replication,omitempty"`
}

// EngineSnapshot is one recommendation engine's sizing and journal state,
// the wire form of the engine's Stats.
type EngineSnapshot struct {
	Shards            int     `json:"shards"`
	ResidentShards    int     `json:"resident_shards"`
	Users             int     `json:"users"`
	IndexedCategories int     `json:"indexed_categories"`
	Postings          int     `json:"postings"`
	IndexWrites       uint64  `json:"index_writes"`
	JournalBytes      int64   `json:"journal_bytes"`
	LiveBytes         int64   `json:"live_bytes"`
	Compactions       uint64  `json:"compactions"`
	LastCompactionMs  float64 `json:"last_compaction_ms"`
}

// ReplicationSnapshot is one follower's replication status across every
// shard it does not own, the wire form of the replicator's stats.
type ReplicationSnapshot struct {
	Self       int        `json:"self"`
	Servers    int        `json:"servers"`
	LagRecords uint64     `json:"lag_records"` // sum over Shards
	Shards     []ShardLag `json:"shards,omitempty"`
}

// ShardLag is one shard's replication status on a follower.
type ShardLag struct {
	Shard      int    `json:"shard"`
	Owner      int    `json:"owner"`
	Epoch      uint64 `json:"epoch,omitempty"`
	AppliedSeq uint64 `json:"applied_seq"`
	OwnerSeq   uint64 `json:"owner_seq"`
	LagRecords uint64 `json:"lag_records"`
	Records    uint64 `json:"records"`
	Snapshots  uint64 `json:"snapshots,omitempty"`
	Pages      uint64 `json:"pages,omitempty"`
	Restarts   uint64 `json:"restarts,omitempty"`
	LastError  string `json:"last_error,omitempty"`
}
