package kvstore

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func newBufReader(b []byte) *bufio.Reader { return bufio.NewReader(bytes.NewReader(b)) }

// has and count unwrap the accessor errors for tests running against live
// stores, where any error is a test failure.
func has(t *testing.T, s *Store, bucket, key string) bool {
	t.Helper()
	ok, err := s.Has(bucket, key)
	if err != nil {
		t.Fatalf("Has(%s/%s): %v", bucket, key, err)
	}
	return ok
}

func count(t *testing.T, s *Store, bucket string) int {
	t.Helper()
	n, err := s.Count(bucket)
	if err != nil {
		t.Fatalf("Count(%s): %v", bucket, err)
	}
	return n
}

func TestPutGetRoundTrip(t *testing.T) {
	s := New()
	if err := s.Put("users", "alice", []byte(`{"name":"alice"}`)); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("users", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"name":"alice"}` {
		t.Errorf("Get = %q", got)
	}
}

func TestGetNotFound(t *testing.T) {
	s := New()
	_, err := s.Get("users", "nobody")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get absent = %v, want ErrNotFound", err)
	}
}

func TestValidation(t *testing.T) {
	s := New()
	if err := s.Put("", "k", nil); !errors.Is(err, ErrEmptyBucket) {
		t.Errorf("empty bucket: %v", err)
	}
	if err := s.Put("b", "", nil); !errors.Is(err, ErrEmptyKey) {
		t.Errorf("empty key: %v", err)
	}
	if err := s.Put("b\x00ad", "k", nil); !errors.Is(err, ErrInvalidName) {
		t.Errorf("NUL bucket: %v", err)
	}
}

func TestDeleteAbsentIsNoError(t *testing.T) {
	s := New()
	if err := s.Delete("users", "ghost"); err != nil {
		t.Fatalf("Delete absent: %v", err)
	}
}

func TestDeleteRemoves(t *testing.T) {
	s := New()
	s.Put("b", "k", []byte("v"))
	if err := s.Delete("b", "k"); err != nil {
		t.Fatal(err)
	}
	if has(t, s, "b", "k") {
		t.Error("key survived Delete")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := New()
	s.Put("b", "k", []byte("original"))
	v, _ := s.Get("b", "k")
	v[0] = 'X'
	v2, _ := s.Get("b", "k")
	if string(v2) != "original" {
		t.Error("Get aliased internal storage")
	}
}

func TestPutCopiesValue(t *testing.T) {
	s := New()
	val := []byte("original")
	s.Put("b", "k", val)
	val[0] = 'X'
	got, _ := s.Get("b", "k")
	if string(got) != "original" {
		t.Error("Put aliased caller's slice")
	}
}

func TestScanPrefixSorted(t *testing.T) {
	s := New()
	for _, k := range []string{"user:b", "user:a", "txn:1", "user:c"} {
		s.Put("db", k, []byte(k))
	}
	got, err := s.Scan("db", "user:")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"user:a", "user:b", "user:c"}
	if len(got) != len(want) {
		t.Fatalf("Scan returned %d entries, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.Key != want[i] {
			t.Errorf("entry %d = %q, want %q", i, e.Key, want[i])
		}
	}
}

func TestScanEmptyPrefixReturnsAll(t *testing.T) {
	s := New()
	s.Put("b", "x", nil)
	s.Put("b", "y", nil)
	got, _ := s.Scan("b", "")
	if len(got) != 2 {
		t.Errorf("Scan all = %d entries, want 2", len(got))
	}
}

func TestScanUnknownBucketEmpty(t *testing.T) {
	s := New()
	got, err := s.Scan("nothing", "")
	if err != nil || len(got) != 0 {
		t.Errorf("Scan unknown bucket = %v, %v", got, err)
	}
}

func TestApplyAtomicBatch(t *testing.T) {
	s := New()
	s.Put("b", "old", []byte("1"))
	err := s.Apply([]Op{
		{Bucket: "b", Key: "new", Value: []byte("2")},
		{Bucket: "b", Key: "old", Delete: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if has(t, s, "b", "old") || !has(t, s, "b", "new") {
		t.Error("batch not fully applied")
	}
}

func TestApplyValidatesBeforeMutating(t *testing.T) {
	s := New()
	err := s.Apply([]Op{
		{Bucket: "b", Key: "good", Value: []byte("1")},
		{Bucket: "", Key: "bad"},
	})
	if err == nil {
		t.Fatal("Apply accepted invalid op")
	}
	if has(t, s, "b", "good") {
		t.Error("partial batch applied")
	}
}

func TestCountAndBuckets(t *testing.T) {
	s := New()
	s.Put("users", "a", nil)
	s.Put("users", "b", nil)
	s.Put("txns", "1", nil)
	if got := count(t, s, "users"); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
	if got, err := s.Buckets(); err != nil || !reflect.DeepEqual(got, []string{"txns", "users"}) {
		t.Errorf("Buckets = %v", got)
	}
}

func TestClosedStoreRejectsOps(t *testing.T) {
	s := New()
	s.Put("b", "k", nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := s.Get("b", "k"); !errors.Is(err, ErrClosed) {
		t.Errorf("Get after Close = %v", err)
	}
	if err := s.Put("b", "k2", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after Close = %v", err)
	}
	if _, err := s.Scan("b", ""); !errors.Is(err, ErrClosed) {
		t.Errorf("Scan after Close = %v", err)
	}
	// Has, Count, Buckets, SizeStats, and Sync must report ErrClosed like
	// every other accessor, not silently answer zero values.
	if _, err := s.Has("b", "k"); !errors.Is(err, ErrClosed) {
		t.Errorf("Has after Close = %v", err)
	}
	if _, err := s.Count("b"); !errors.Is(err, ErrClosed) {
		t.Errorf("Count after Close = %v", err)
	}
	if _, err := s.Buckets(); !errors.Is(err, ErrClosed) {
		t.Errorf("Buckets after Close = %v", err)
	}
	if _, err := s.SizeStats(); !errors.Is(err, ErrClosed) {
		t.Errorf("SizeStats after Close = %v", err)
	}
	if err := s.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("Sync after Close = %v", err)
	}
}

func TestEncodeDecodeJSON(t *testing.T) {
	type rec struct {
		Name string `json:"name"`
		Age  int    `json:"age"`
	}
	s := New()
	if err := s.EncodeJSON("users", "alice", rec{Name: "alice", Age: 30}); err != nil {
		t.Fatal(err)
	}
	var got rec
	if err := s.DecodeJSON("users", "alice", &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "alice" || got.Age != 30 {
		t.Errorf("got %+v", got)
	}
}

func TestDecodeJSONNotFound(t *testing.T) {
	s := New()
	var v struct{}
	if err := s.DecodeJSON("b", "missing", &v); !errors.Is(err, ErrNotFound) {
		t.Errorf("DecodeJSON absent = %v", err)
	}
}

func TestWALPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.wal")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("users", "alice", []byte("a"))
	s.Put("users", "bob", []byte("b"))
	s.Delete("users", "alice")
	s.Put("txns", "1", []byte("t"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if has(t, s2, "users", "alice") {
		t.Error("deleted key resurrected on replay")
	}
	v, err := s2.Get("users", "bob")
	if err != nil || string(v) != "b" {
		t.Errorf("bob = %q, %v", v, err)
	}
	if !has(t, s2, "txns", "1") {
		t.Error("txns/1 lost on replay")
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.wal")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("b", "intact", []byte("1"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: write half a record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 99, 1, 2}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("Open with torn tail: %v", err)
	}
	if !has(t, s2, "b", "intact") {
		t.Error("intact record lost")
	}
	s2.Put("b", "after", []byte("2"))
	s2.Close()

	// The store must reopen cleanly after appending past the truncation.
	s3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if !has(t, s3, "b", "after") || !has(t, s3, "b", "intact") {
		t.Error("state lost after torn-tail recovery")
	}
}

func TestCompactShrinksLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.wal")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.Put("b", "hot", []byte(fmt.Sprintf("version-%d", i)))
	}
	before, _ := os.Stat(path)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Errorf("Compact did not shrink log: %d -> %d", before.Size(), after.Size())
	}
	// The writer must have moved to the compacted file: appends after a
	// compaction have to survive a reopen.
	if err := s.Put("b", "post", []byte("survives")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v, err := s2.Get("b", "hot")
	if err != nil || string(v) != "version-99" {
		t.Errorf("after compact+reopen: %q, %v", v, err)
	}
	if v, err := s2.Get("b", "post"); err != nil || string(v) != "survives" {
		t.Errorf("post-compaction append lost: %q, %v", v, err)
	}
}

func TestCompactMemoryStoreNoop(t *testing.T) {
	s := New()
	s.Put("b", "k", nil)
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact on memory store: %v", err)
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := New()
	s.Put("users", "alice", []byte("a"))
	s.Put("txns", "1", []byte("t1"))
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	s2 := New()
	if err := s2.RestoreInto(&buf); err != nil {
		t.Fatal(err)
	}
	v, err := s2.Get("users", "alice")
	if err != nil || string(v) != "a" {
		t.Errorf("alice = %q, %v", v, err)
	}
	if !has(t, s2, "txns", "1") {
		t.Error("txns lost in snapshot round-trip")
	}
}

func TestRestoreIntoDirtyStoreFails(t *testing.T) {
	s := New()
	s.Put("b", "k", nil)
	var buf bytes.Buffer
	s.Snapshot(&buf)

	s2 := New()
	s2.Put("x", "y", nil)
	if err := s2.RestoreInto(&buf); !errors.Is(err, ErrStoreDirty) {
		t.Fatalf("RestoreInto dirty = %v, want ErrStoreDirty", err)
	}
}

func TestRestoreGarbageFails(t *testing.T) {
	s := New()
	err := s.RestoreInto(bytes.NewReader([]byte("not a snapshot at all")))
	if !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("RestoreInto garbage = %v, want ErrBadSnapshot", err)
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	fn := func(bucket, key string, value []byte, del bool) bool {
		if bucket == "" || key == "" {
			return true // invalid ops are rejected before encoding
		}
		op := Op{Bucket: bucket, Key: key, Value: value, Delete: del}
		if del {
			op.Value = nil
		}
		rec := encodeRecord([]Op{op})
		got, err := decodeRecord(newBufReader(rec))
		if err != nil || len(got) != 1 {
			return false
		}
		g := got[0]
		return g.Bucket == bucket && g.Key == key && g.Delete == del &&
			(del || bytes.Equal(g.Value, value))
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreStateMachineProperty(t *testing.T) {
	// The store must behave exactly like a map[string][]byte per bucket.
	type op struct {
		Key    uint8
		Value  []byte
		Delete bool
	}
	fn := func(ops []op) bool {
		s := New()
		model := make(map[string][]byte)
		for _, o := range ops {
			key := fmt.Sprintf("k%d", o.Key%16)
			if o.Delete {
				s.Delete("b", key)
				delete(model, key)
			} else {
				s.Put("b", key, o.Value)
				model[key] = append([]byte(nil), o.Value...)
			}
		}
		if count(t, s, "b") != len(model) {
			return false
		}
		for k, want := range model {
			got, err := s.Get("b", k)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReadersWriters(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i)
				if err := s.Put("b", key, []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get("b", key); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Scan("b", fmt.Sprintf("g%d-", g)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := count(t, s, "b"); got != 8*200 {
		t.Errorf("Count = %d, want %d", got, 8*200)
	}
}

// Crash-recovery property: for any op sequence, writing through a WAL then
// reopening yields exactly the state of an in-memory store that applied the
// same sequence.
func TestWALReopenEquivalenceProperty(t *testing.T) {
	type op struct {
		Bucket, Key uint8
		Value       []byte
		Delete      bool
	}
	dir := t.TempDir()
	run := 0
	fn := func(ops []op) bool {
		run++
		path := filepath.Join(dir, fmt.Sprintf("prop-%d.wal", run))
		durable, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		mem := New()
		for _, o := range ops {
			bucket := fmt.Sprintf("b%d", o.Bucket%3)
			key := fmt.Sprintf("k%d", o.Key%8)
			if o.Delete {
				durable.Delete(bucket, key)
				mem.Delete(bucket, key)
			} else {
				durable.Put(bucket, key, o.Value)
				mem.Put(bucket, key, o.Value)
			}
		}
		if err := durable.Close(); err != nil {
			t.Fatal(err)
		}
		reopened, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer reopened.Close()
		for _, bucket := range []string{"b0", "b1", "b2"} {
			want, _ := mem.Scan(bucket, "")
			got, _ := reopened.Scan(bucket, "")
			if len(want) != len(got) {
				return false
			}
			for i := range want {
				if want[i].Key != got[i].Key || !bytes.Equal(want[i].Value, got[i].Value) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Snapshot/Restore property: restore of a snapshot reproduces every bucket.
func TestSnapshotRestoreEquivalenceProperty(t *testing.T) {
	fn := func(keys []uint8, values [][]byte) bool {
		s := New()
		for i, k := range keys {
			var v []byte
			if len(values) > 0 {
				v = values[i%len(values)]
			}
			s.Put(fmt.Sprintf("b%d", k%2), fmt.Sprintf("k%d", k), v)
		}
		var buf bytes.Buffer
		if err := s.Snapshot(&buf); err != nil {
			return false
		}
		r := New()
		if err := r.RestoreInto(&buf); err != nil {
			return false
		}
		for _, bucket := range []string{"b0", "b1"} {
			want, _ := s.Scan(bucket, "")
			got, _ := r.Scan(bucket, "")
			if len(want) != len(got) {
				return false
			}
			for i := range want {
				if want[i].Key != got[i].Key || !bytes.Equal(want[i].Value, got[i].Value) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// --- durability regression tests (double close, degenerate WALs) ---------------

func TestCloseIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.wal")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("b", "k", []byte("v"))
	if err := s.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close must be a no-op, got %v", err)
	}
	mem := New()
	if err := mem.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mem.Close(); err != nil {
		t.Fatalf("second Close on memory store: %v", err)
	}
}

func TestCompactAfterCloseErrClosed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.wal")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Compact(); !errors.Is(err, ErrClosed) {
		t.Errorf("Compact after Close = %v, want ErrClosed", err)
	}
}

func TestOpenEmptyWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.wal")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open on pre-existing empty WAL: %v", err)
	}
	defer s.Close()
	if err := s.Put("b", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
}

func TestOpenCorruptTailAbsurdLength(t *testing.T) {
	// A garbage header can claim a multi-gigabyte record; replay must treat
	// it as a torn tail and truncate, not allocate or error out.
	path := filepath.Join(t.TempDir(), "store.wal")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("b", "intact", []byte("1"))
	s.Close()
	good, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// length = 0xFFFFFFF0 (~4 GiB), bogus CRC, a few payload bytes.
	if _, err := f.Write([]byte{0xFF, 0xFF, 0xFF, 0xF0, 1, 2, 3, 4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("Open with absurd-length tail: %v", err)
	}
	defer s2.Close()
	if !has(t, s2, "b", "intact") {
		t.Error("intact prefix lost")
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != good.Size() {
		t.Errorf("corrupt tail not truncated: size %d, want %d", after.Size(), good.Size())
	}
}

func TestOpenCorruptTailBadCRC(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.wal")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("b", "k1", []byte("1"))
	s.Put("b", "k2", []byte("2"))
	s.Close()

	// Flip a payload byte of the last record: the CRC check must reject it
	// and recovery keep the prefix.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("Open with bit-flipped tail: %v", err)
	}
	defer s2.Close()
	if !has(t, s2, "b", "k1") {
		t.Error("prefix record lost")
	}
	if has(t, s2, "b", "k2") {
		t.Error("corrupt record replayed")
	}
}

func TestApplyRejectsOversizedBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.wal")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// One op just over the record cap: rejected up front, nothing written,
	// the store stays usable — an acknowledged write can never be silently
	// truncated away by the replay-side length guard.
	huge := make([]byte, maxRecordLen)
	if err := s.Apply([]Op{{Bucket: "b", Key: "k", Value: huge}}); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("oversized Apply = %v, want ErrBatchTooLarge", err)
	}
	if has(t, s, "b", "k") {
		t.Error("rejected batch partially applied")
	}
	if err := s.Put("b", "small", []byte("v")); err != nil {
		t.Fatalf("store unusable after rejected batch: %v", err)
	}
	s.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !has(t, s2, "b", "small") {
		t.Error("small record lost")
	}
}

// --- compaction: crash safety, determinism, accounting ------------------------

// seedCompactable fills a store with overwrites so its log is much larger
// than its live state, and returns the live state's expected entries.
func seedCompactable(t *testing.T, s *Store) {
	t.Helper()
	for i := 0; i < 50; i++ {
		if err := s.Put("b", "hot", []byte(fmt.Sprintf("version-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put("b", "cold", []byte("keep")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("other", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
}

func assertCompactableState(t *testing.T, s *Store) {
	t.Helper()
	if v, err := s.Get("b", "hot"); err != nil || string(v) != "version-49" {
		t.Errorf("b/hot = %q, %v", v, err)
	}
	if v, err := s.Get("b", "cold"); err != nil || string(v) != "keep" {
		t.Errorf("b/cold = %q, %v", v, err)
	}
	if v, err := s.Get("other", "k"); err != nil || string(v) != "v" {
		t.Errorf("other/k = %q, %v", v, err)
	}
}

// TestCompactCrashSafety is the regression for the truncate-before-write
// data-loss bug: a crash injected at any point during Compact must reopen
// to either the full pre-compaction state or the full compacted state —
// never an empty or partial store. (The legacy implementation truncated
// the live log in place before rewriting it, so a crash mid-compaction
// destroyed the entire store.)
func TestCompactCrashSafety(t *testing.T) {
	stages := []struct {
		stage   string
		swapped bool // log already swapped for the compacted file?
	}{
		{"begin", false},
		{"record", false},
		{"written", false},
		{"delta", false},
		{"synced", false},
		{"renamed", true},
	}
	for _, tc := range stages {
		t.Run(tc.stage, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "store.wal")
			s, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			seedCompactable(t, s)
			pre, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}

			errCrash := errors.New("injected crash")
			compactCrash = func(stage string) error {
				if stage == tc.stage {
					return errCrash
				}
				return nil
			}
			defer func() { compactCrash = nil }()
			if err := s.Compact(); !errors.Is(err, errCrash) {
				t.Fatalf("Compact = %v, want injected crash", err)
			}
			compactCrash = nil
			// The process "died" here: recover purely from disk.
			s2, err := Open(path)
			if err != nil {
				t.Fatalf("Open after crash at %s: %v", tc.stage, err)
			}
			defer s2.Close()
			assertCompactableState(t, s2)
			if _, err := os.Stat(path + compactSuffix); !os.IsNotExist(err) {
				t.Errorf("stale compaction temp survived reopen: %v", err)
			}
			post, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if tc.swapped && post.Size() >= pre.Size() {
				t.Errorf("crash after rename: log %d bytes, want < pre-compaction %d", post.Size(), pre.Size())
			}
			if !tc.swapped && post.Size() != pre.Size() {
				t.Errorf("crash before rename touched the live log: %d bytes, want %d", post.Size(), pre.Size())
			}
		})
	}
}

// TestCompactCarriesConcurrentWrites: a write landing between the
// compaction cut and the swap must survive into the compacted log.
func TestCompactCarriesConcurrentWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.wal")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	seedCompactable(t, s)
	wrote := false
	compactCrash = func(stage string) error {
		// "written" fires after the frozen view hit the temp file but
		// before the publish step: exactly the window where writers are
		// not excluded.
		if stage == "written" && !wrote {
			wrote = true
			if err := s.Put("b", "during", []byte("landed")); err != nil {
				t.Errorf("Put during compaction: %v", err)
			}
		}
		return nil
	}
	defer func() { compactCrash = nil }()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	compactCrash = nil
	if !wrote {
		t.Fatal("hook never fired")
	}
	if v, err := s.Get("b", "during"); err != nil || string(v) != "landed" {
		t.Fatalf("mid-compaction write lost from live store: %q, %v", v, err)
	}
	st, err := s.SizeStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.AppendedBytes == 0 {
		t.Error("carried-over delta not reflected in AppendedBytes")
	}
	s.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	assertCompactableState(t, s2)
	if v, err := s2.Get("b", "during"); err != nil || string(v) != "landed" {
		t.Fatalf("mid-compaction write lost from compacted log: %q, %v", v, err)
	}
}

// TestCompactDeterministic: two stores holding identical live state via
// different write histories compact to byte-identical log files (sorted
// bucket/key order), the property that keeps replicated WALs comparable.
func TestCompactDeterministic(t *testing.T) {
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.wal")
	pathB := filepath.Join(dir, "b.wal")
	a, err := Open(pathA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(pathB)
	if err != nil {
		t.Fatal(err)
	}
	// Same final state, very different histories.
	for i := 0; i < 20; i++ {
		a.Put("x", fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	a.Put("y", "only", []byte("z"))
	for i := 19; i >= 0; i-- {
		b.Put("x", fmt.Sprintf("k%d", i), []byte("overwritten"))
	}
	b.Put("y", "gone", []byte("tmp"))
	b.Delete("y", "gone")
	b.Put("y", "only", []byte("z"))
	for i := 0; i < 20; i++ {
		b.Put("x", fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := a.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := b.Compact(); err != nil {
		t.Fatal(err)
	}
	a.Close()
	b.Close()
	rawA, err := os.ReadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	rawB, err := os.ReadFile(pathB)
	if err != nil {
		t.Fatal(err)
	}
	if len(rawA) == 0 {
		t.Fatal("empty compacted log")
	}
	if !bytes.Equal(rawA, rawB) {
		t.Fatalf("compacted logs differ: %d vs %d bytes", len(rawA), len(rawB))
	}
}

// TestSizeStatsAccounting pins the incremental live-vs-appended math the
// auto-compaction policy depends on.
func TestSizeStatsAccounting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.wal")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st, err := s.SizeStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.JournalBytes != 0 || st.LiveBytes != 0 || st.AppendedBytes != 0 {
		t.Fatalf("fresh store stats = %+v", st)
	}
	val := bytes.Repeat([]byte("v"), 64)
	for i := 0; i < 100; i++ {
		if err := s.Put("b", "hot", val); err != nil {
			t.Fatal(err)
		}
	}
	st, _ = s.SizeStats()
	single := liveRecordLen("b", "hot", val)
	if st.LiveBytes != single {
		t.Errorf("LiveBytes = %d, want one record (%d)", st.LiveBytes, single)
	}
	if st.JournalBytes != 100*single {
		t.Errorf("JournalBytes = %d, want %d", st.JournalBytes, 100*single)
	}
	if st.AppendedBytes != st.JournalBytes {
		t.Errorf("AppendedBytes = %d, want %d before any compaction", st.AppendedBytes, st.JournalBytes)
	}
	fi, _ := os.Stat(path)
	if fi.Size() != st.JournalBytes {
		t.Errorf("JournalBytes = %d, file is %d", st.JournalBytes, fi.Size())
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st, _ = s.SizeStats()
	if st.JournalBytes != st.LiveBytes {
		t.Errorf("after Compact journal %d != live %d", st.JournalBytes, st.LiveBytes)
	}
	if st.AppendedBytes != 0 {
		t.Errorf("AppendedBytes = %d after quiet Compact, want 0", st.AppendedBytes)
	}
	if st.Compactions != 1 {
		t.Errorf("Compactions = %d, want 1", st.Compactions)
	}
	if err := s.Delete("b", "hot"); err != nil {
		t.Fatal(err)
	}
	st, _ = s.SizeStats()
	if st.LiveBytes != 0 {
		t.Errorf("LiveBytes = %d after deleting the only key, want 0", st.LiveBytes)
	}
	if st.JournalBytes == 0 || st.AppendedBytes == 0 {
		t.Errorf("delete record not accounted: %+v", st)
	}
	// A reopen recomputes the same numbers from the log.
	s.Put("b", "back", val)
	want, _ := s.SizeStats()
	s.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, _ := s2.SizeStats()
	if got.JournalBytes != want.JournalBytes || got.LiveBytes != want.LiveBytes {
		t.Errorf("reopen stats %+v, want journal/live of %+v", got, want)
	}
}

// TestSyncBarrier: Sync succeeds on durable and memory stores and the
// synced state survives reopen.
func TestSyncBarrier(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.wal")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	s.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !has(t, s2, "b", "k") {
		t.Error("synced write lost")
	}
	mem := New()
	if err := mem.Sync(); err != nil {
		t.Errorf("Sync on memory store: %v", err)
	}
}

// TestOpenCleansStaleCompactTemp: a temp file left by a crashed compaction
// must be removed on Open and never shadow the live log.
func TestOpenCleansStaleCompactTemp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.wal")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("b", "k", []byte("v"))
	s.Close()
	if err := os.WriteFile(path+compactSuffix, []byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatalf("Open with stale temp: %v", err)
	}
	defer s2.Close()
	if !has(t, s2, "b", "k") {
		t.Error("live state lost")
	}
	if _, err := os.Stat(path + compactSuffix); !os.IsNotExist(err) {
		t.Errorf("stale temp not removed: %v", err)
	}
}

// BenchmarkCompact measures compacting a log that has grown to ~8x its
// live state (the shape the auto-compaction policy fires on).
func BenchmarkCompact(b *testing.B) {
	const keys, overwrites = 256, 8
	path := filepath.Join(b.TempDir(), "bench.wal")
	s, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := bytes.Repeat([]byte("x"), 128)
	dirty := func() {
		for v := 0; v < overwrites; v++ {
			for k := 0; k < keys; k++ {
				if err := s.Put("b", fmt.Sprintf("k%03d", k), val); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dirty()
		b.StartTimer()
		if err := s.Compact(); err != nil {
			b.Fatal(err)
		}
	}
}
