// Package kvstore is the embedded storage substrate standing in for the
// paper's unspecified databases (UserDB, BSMDB, seller catalogs). It is a
// bucketed key-value store with:
//
//   - atomic multi-key batches,
//   - ordered prefix scans (the only query shape the paper's workflows need),
//   - optional durability through an append-only write-ahead log that is
//     replayed on open, and
//   - whole-store snapshots for agent deactivation (§4.1 principle 3 stores
//     a serialized BRA while its MBA is travelling).
//
// Values are opaque bytes; EncodeJSON/DecodeJSON helpers cover the common
// case of structured records.
//
// # Guarantees and invariants
//
//   - Apply is all-or-nothing: a batch is appended to the WAL as one
//     CRC-checked record and only then applied to memory, under the store
//     lock. Readers never observe a partial batch.
//   - WAL replay on Open keeps the longest intact prefix of acknowledged
//     batches: a torn final record (crash mid-append) is detected by
//     length/CRC and truncated away; an absurd length header from a
//     garbage tail is capped (maxRecordLen) and treated the same way
//     instead of allocating unbounded memory.
//   - Batches larger than maxRecordLen are rejected up front — on
//     memory-only stores too — so an accepted write can never poison a
//     later Snapshot or durable reopen.
//   - Scan returns entries sorted by key, and Snapshot and Compact
//     serialize buckets and keys in sorted order: two stores holding the
//     same live state produce byte-identical snapshots and byte-identical
//     compacted logs regardless of write history (the property the
//     engine's replication tests pin).
//   - Every accessor reports ErrClosed after Close; no method silently
//     answers from a closed store.
//   - Bucket names are free-form minus NUL; keys are non-empty. Callers
//     own any further layout. The recommendation engine, the heaviest
//     user, keys one bucket per community shard and kind (prof/<shard>,
//     purch/<shard>, sell/<shard> — see internal/recommend/persist.go),
//     which keeps recovery and replication per-shard prefix scans.
//
// # Durability contract
//
// Honestly stated, in increasing strength:
//
//   - Every Apply flushes the encoded record to the operating system
//     before the batch is acknowledged, so acknowledged writes survive a
//     process crash. The store does NOT fsync per append: batches still
//     in the OS write-back cache can vanish on power loss or kernel
//     panic. Sync is the explicit barrier for callers who need an
//     acknowledged batch on stable storage.
//   - Compact is crash-safe: the replacement log is built in a
//     <path>.compact temp file, fsynced, and atomically renamed over the
//     live log. A crash at any point — before, during, or after the
//     rename — reopens to either the full pre-compaction state or the
//     full compacted state, never an empty or partial store. Stale temp
//     files from crashed compactions are removed on Open.
package kvstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Errors returned by the store. Match with errors.Is.
var (
	ErrNotFound      = errors.New("kvstore: key not found")
	ErrClosed        = errors.New("kvstore: store closed")
	ErrCorruptWAL    = errors.New("kvstore: corrupt write-ahead log")
	ErrEmptyKey      = errors.New("kvstore: empty key")
	ErrEmptyBucket   = errors.New("kvstore: empty bucket name")
	ErrInvalidName   = errors.New("kvstore: bucket name contains NUL")
	ErrStoreDirty    = errors.New("kvstore: snapshot target not empty")
	ErrBadSnapshot   = errors.New("kvstore: malformed snapshot")
	ErrBatchTooLarge = errors.New("kvstore: batch exceeds max record size")
	errShortRecord   = errors.New("kvstore: short record")
	errBadRecordTag  = errors.New("kvstore: unknown record tag")
)

// Op is a single mutation in a Batch.
type Op struct {
	Bucket string
	Key    string
	Value  []byte // nil means delete
	Delete bool
}

// Entry is one key/value pair returned by scans.
type Entry struct {
	Key   string
	Value []byte
}

// Store is a bucketed in-memory KV store with optional WAL durability.
// Construct with Open (durable) or New (memory-only). All methods are safe
// for concurrent use.
type Store struct {
	mu      sync.RWMutex
	buckets map[string]map[string][]byte
	wal     *walWriter
	closed  bool

	compactMu sync.Mutex // serializes Compact calls (lock order compactMu -> mu)

	// Size accounting (see SizeStats), maintained incrementally under mu.
	journalBytes  int64
	appendedBytes int64
	liveBytes     int64
	compactions   uint64
}

// New returns a memory-only store.
func New() *Store {
	return &Store{buckets: make(map[string]map[string][]byte)}
}

// Open returns a store persisted to the append-only log at path, replaying
// any existing log. The file is created if absent. A stale <path>.compact
// temp file left by a crashed compaction is removed first: the rename that
// would have made it live never happened, so the log itself is
// authoritative.
func Open(path string) (*Store, error) {
	if err := os.Remove(path + compactSuffix); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("kvstore: removing stale compaction file: %w", err)
	}
	s := New()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: opening %s: %w", path, err)
	}
	if err := replayWAL(f, s); err != nil {
		f.Close()
		return nil, err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("kvstore: seeking log end: %w", err)
	}
	s.wal = &walWriter{path: path, f: f, w: bufio.NewWriter(f)}
	s.journalBytes = size
	s.recomputeLive()
	return s, nil
}

func validate(bucket, key string) error {
	if bucket == "" {
		return ErrEmptyBucket
	}
	if strings.ContainsRune(bucket, 0) {
		return ErrInvalidName
	}
	if key == "" {
		return ErrEmptyKey
	}
	return nil
}

// Put stores value under bucket/key, creating the bucket if needed.
func (s *Store) Put(bucket, key string, value []byte) error {
	return s.Apply([]Op{{Bucket: bucket, Key: key, Value: value}})
}

// Delete removes bucket/key. Deleting an absent key is not an error.
func (s *Store) Delete(bucket, key string) error {
	return s.Apply([]Op{{Bucket: bucket, Key: key, Delete: true}})
}

// Apply performs ops atomically: either all mutations are visible (and
// logged) or none are. A batch whose encoded form would exceed the WAL's
// record cap is rejected with ErrBatchTooLarge before any mutation —
// enforced for memory-only stores too, so a batch that fits in memory can
// never poison a later Snapshot or a durable reopen.
func (s *Store) Apply(ops []Op) error {
	for _, op := range ops {
		if err := validate(op.Bucket, op.Key); err != nil {
			return err
		}
	}
	plen := payloadLen(ops)
	if plen > maxRecordLen {
		return fmt.Errorf("%w: %d ops", ErrBatchTooLarge, len(ops))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.wal != nil {
		if err := s.wal.append(ops); err != nil {
			return err
		}
		rec := int64(8 + plen)
		s.journalBytes += rec
		s.appendedBytes += rec
	}
	for _, op := range ops {
		b := s.buckets[op.Bucket]
		old, existed := b[op.Key]
		if op.Delete {
			if existed {
				s.liveBytes -= liveRecordLen(op.Bucket, op.Key, old)
				delete(b, op.Key)
			}
			continue
		}
		if b == nil {
			b = make(map[string][]byte)
			s.buckets[op.Bucket] = b
		}
		if existed {
			s.liveBytes -= liveRecordLen(op.Bucket, op.Key, old)
		}
		v := make([]byte, len(op.Value))
		copy(v, op.Value)
		b[op.Key] = v
		s.liveBytes += liveRecordLen(op.Bucket, op.Key, v)
	}
	return nil
}

// Get returns a copy of the value at bucket/key, or ErrNotFound.
func (s *Store) Get(bucket, key string) ([]byte, error) {
	if err := validate(bucket, key); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	v, ok := s.buckets[bucket][key]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, bucket, key)
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// Has reports whether bucket/key exists. Like every other accessor it
// reports ErrClosed on a closed store.
func (s *Store) Has(bucket, key string) (bool, error) {
	if err := validate(bucket, key); err != nil {
		return false, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false, ErrClosed
	}
	_, ok := s.buckets[bucket][key]
	return ok, nil
}

// Scan returns all entries in bucket whose key starts with prefix, sorted by
// key. An empty prefix returns the whole bucket.
func (s *Store) Scan(bucket, prefix string) ([]Entry, error) {
	if bucket == "" {
		return nil, ErrEmptyBucket
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	b := s.buckets[bucket]
	out := make([]Entry, 0, len(b))
	for k, v := range b {
		if strings.HasPrefix(k, prefix) {
			val := make([]byte, len(v))
			copy(val, v)
			out = append(out, Entry{Key: k, Value: val})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Count reports the number of keys in bucket, or ErrClosed.
func (s *Store) Count(bucket string) (int, error) {
	if bucket == "" {
		return 0, ErrEmptyBucket
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, ErrClosed
	}
	return len(s.buckets[bucket]), nil
}

// Buckets returns the sorted names of all non-empty buckets, or ErrClosed.
func (s *Store) Buckets() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	out := make([]string, 0, len(s.buckets))
	for name, b := range s.buckets {
		if len(b) > 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// SizeStats is the store's size accounting, the signal automatic
// compaction policies key off. All fields are maintained incrementally
// under the store lock — reading them is cheap enough for a write path.
type SizeStats struct {
	// JournalBytes is the current size of the append-only log (always 0
	// for memory-only stores).
	JournalBytes int64
	// AppendedBytes counts bytes appended since Open or since the last
	// successful Compact (which resets it to the bytes carried over from
	// writes landing mid-compaction).
	AppendedBytes int64
	// LiveBytes is the size a log holding exactly the live state would
	// have — what the journal shrinks to if compacted now. Maintained for
	// memory-only stores too.
	LiveBytes int64
	// Compactions counts successful Compact calls since Open.
	Compactions uint64
}

// SizeStats reports the store's current size accounting, or ErrClosed.
func (s *Store) SizeStats() (SizeStats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return SizeStats{}, ErrClosed
	}
	return SizeStats{
		JournalBytes:  s.journalBytes,
		AppendedBytes: s.appendedBytes,
		LiveBytes:     s.liveBytes,
		Compactions:   s.compactions,
	}, nil
}

// Close flushes and closes the WAL, if any. Further operations return
// ErrClosed. Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.wal != nil {
		return s.wal.close()
	}
	return nil
}

// Sync flushes buffered appends and fsyncs the log to stable storage: the
// durability barrier for callers who need an acknowledged batch to survive
// power loss, not just a process crash (see the package durability
// contract). No-op for memory-only stores.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.wal == nil {
		return nil
	}
	return s.wal.sync()
}

// Compact rewrites the log to hold exactly the live state, in sorted
// (bucket, key) order, shrinking logs that accumulated overwrites and
// deletes. Two stores holding identical live state compact to
// byte-identical logs.
//
// Compact is crash-safe: the replacement is built in a <path>.compact temp
// file, fsynced, and atomically renamed over the live log, so a crash at
// any point leaves either the full old log or the full new one — never a
// truncated store. The bulk of the rewrite runs without the store lock
// (writes keep landing in the live log and are carried over before the
// swap); only the final delta copy, fsync, and rename briefly exclude
// writers. No-op for memory-only stores.
func (s *Store) Compact() error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	// Cut a consistent view. Values are immutable in place (Apply installs
	// fresh copies), so shallow-copying the maps under the lock freezes the
	// live state as of journal offset cut.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.wal == nil {
		s.mu.Unlock()
		return nil
	}
	wal := s.wal
	if wal.err != nil {
		s.mu.Unlock()
		return wal.err
	}
	if err := wal.w.Flush(); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("kvstore: flushing before compaction: %w", err)
	}
	view := make(map[string]map[string][]byte, len(s.buckets))
	for name, b := range s.buckets {
		cp := make(map[string][]byte, len(b))
		for k, v := range b {
			cp[k] = v
		}
		view[name] = cp
	}
	cut := s.journalBytes
	s.mu.Unlock()

	// Rewrite the frozen view into the temp file with no store lock held:
	// writers append to the live log meanwhile.
	tmp, bw, written, err := wal.writeCompacted(view)
	if err != nil {
		return err
	}

	// Publish: carry over the records appended since the cut, fsync, and
	// atomically swap the compacted log in.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		tmp.Close()
		os.Remove(wal.path + compactSuffix)
		return ErrClosed
	}
	delta, err := wal.publishCompacted(tmp, bw, cut, s.journalBytes-cut)
	if err != nil {
		return err
	}
	s.journalBytes = written + delta
	s.appendedBytes = delta
	s.compactions++
	return nil
}

// EncodeJSON marshals v and stores it under bucket/key.
func (s *Store) EncodeJSON(bucket, key string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("kvstore: encoding %s/%s: %w", bucket, key, err)
	}
	return s.Put(bucket, key, data)
}

// DecodeJSON loads bucket/key and unmarshals it into v.
func (s *Store) DecodeJSON(bucket, key string, v any) error {
	data, err := s.Get(bucket, key)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("kvstore: decoding %s/%s: %w", bucket, key, err)
	}
	return nil
}

// Snapshot serializes the entire store to w in a self-delimiting format
// suitable for RestoreInto. It holds the read lock for the duration.
func (s *Store) Snapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	bw := bufio.NewWriter(w)
	if _, err := writeSortedRecords(bw, s.buckets, nil); err != nil {
		return fmt.Errorf("kvstore: writing snapshot: %w", err)
	}
	return bw.Flush()
}

// writeSortedRecords writes one put record per live key of buckets to w in
// sorted (bucket, key) order and returns the bytes written. It is the one
// canonical serialization of live state — Snapshot and Compact both use
// it, which is what makes snapshots AND compacted logs byte-identical
// across stores holding the same state (and what liveRecordLen predicts
// per entry). each, when non-nil, runs after every record (Compact's
// crash-injection point); its error aborts unwrapped.
func writeSortedRecords(w io.Writer, buckets map[string]map[string][]byte, each func() error) (int64, error) {
	names := make([]string, 0, len(buckets))
	for name := range buckets {
		names = append(names, name)
	}
	sort.Strings(names)
	var written int64
	for _, name := range names {
		keys := make([]string, 0, len(buckets[name]))
		for k := range buckets[name] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			rec := encodeRecord([]Op{{Bucket: name, Key: k, Value: buckets[name][k]}})
			if _, err := w.Write(rec); err != nil {
				return written, err
			}
			written += int64(len(rec))
			if each != nil {
				if err := each(); err != nil {
					return written, err
				}
			}
		}
	}
	return written, nil
}

// RestoreInto loads a Snapshot stream into an empty memory store. It fails
// with ErrStoreDirty if the store already holds data.
func (s *Store) RestoreInto(r io.Reader) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	for _, b := range s.buckets {
		if len(b) > 0 {
			return ErrStoreDirty
		}
	}
	br := bufio.NewReader(r)
	for {
		ops, err := decodeRecord(br)
		if err == io.EOF {
			s.recomputeLive()
			return nil
		}
		if err != nil {
			return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		for _, op := range ops {
			b := s.buckets[op.Bucket]
			if b == nil {
				b = make(map[string][]byte)
				s.buckets[op.Bucket] = b
			}
			b[op.Key] = op.Value
		}
	}
}

// recomputeLive rebuilds liveBytes from the bucket maps. Open and
// RestoreInto use it; steady-state maintenance is incremental in Apply.
func (s *Store) recomputeLive() {
	var n int64
	for name, b := range s.buckets {
		for k, v := range b {
			n += liveRecordLen(name, k, v)
		}
	}
	s.liveBytes = n
}

// liveRecordLen is the encoded size of the single-put record a compacted
// log (or Snapshot) holds for this entry.
func liveRecordLen(bucket, key string, value []byte) int64 {
	return int64(8 + payloadLen([]Op{{Bucket: bucket, Key: key, Value: value}}))
}

// --- WAL encoding ---
//
// A record is one atomic batch:
//
//	uint32 payloadLen | uint32 crc32(payload) | payload
//
// payload = uint16 nOps, then per op:
//
//	uint8 tag (1=put, 2=delete) | uvarint len + bucket | uvarint len + key |
//	(puts only) uvarint len + value
//
// A torn final record (crash mid-append) is detected by length/CRC and
// truncated away on replay; anything before it is kept.

const (
	tagPut    = 1
	tagDelete = 2

	// maxRecordLen bounds a single record's payload, enforced on both
	// sides: Apply rejects oversized batches up front (so an acknowledged
	// write can never be dropped later), and replay treats an oversized
	// length header — necessarily garbage, given the write-side cap — as a
	// torn tail rather than allocating up to 4 GiB before the CRC check
	// could reject it.
	maxRecordLen = 1 << 28 // 256 MiB
)

func encodeRecord(ops []Op) []byte {
	var payload bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		payload.Write(scratch[:n])
	}
	var hdr [2]byte
	binary.BigEndian.PutUint16(hdr[:], uint16(len(ops)))
	payload.Write(hdr[:])
	for _, op := range ops {
		if op.Delete {
			payload.WriteByte(tagDelete)
		} else {
			payload.WriteByte(tagPut)
		}
		putUvarint(uint64(len(op.Bucket)))
		payload.WriteString(op.Bucket)
		putUvarint(uint64(len(op.Key)))
		payload.WriteString(op.Key)
		if !op.Delete {
			putUvarint(uint64(len(op.Value)))
			payload.Write(op.Value)
		}
	}
	out := make([]byte, 8+payload.Len())
	binary.BigEndian.PutUint32(out[0:4], uint32(payload.Len()))
	binary.BigEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload.Bytes()))
	copy(out[8:], payload.Bytes())
	return out
}

func decodeRecord(r *bufio.Reader) ([]Op, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, errShortRecord
		}
		return nil, err // io.EOF = clean end
	}
	length := binary.BigEndian.Uint32(hdr[0:4])
	sum := binary.BigEndian.Uint32(hdr[4:8])
	if length > maxRecordLen {
		return nil, errShortRecord
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, errShortRecord
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, errShortRecord
	}
	if len(payload) < 2 {
		return nil, errShortRecord
	}
	n := int(binary.BigEndian.Uint16(payload[:2]))
	br := bytes.NewReader(payload[2:])
	readBytes := func() ([]byte, error) {
		l, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, errShortRecord
		}
		buf := make([]byte, l)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, errShortRecord
		}
		return buf, nil
	}
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		tag, err := br.ReadByte()
		if err != nil {
			return nil, errShortRecord
		}
		bucket, err := readBytes()
		if err != nil {
			return nil, err
		}
		key, err := readBytes()
		if err != nil {
			return nil, err
		}
		op := Op{Bucket: string(bucket), Key: string(key)}
		switch tag {
		case tagPut:
			val, err := readBytes()
			if err != nil {
				return nil, err
			}
			op.Value = val
		case tagDelete:
			op.Delete = true
		default:
			return nil, errBadRecordTag
		}
		ops = append(ops, op)
	}
	return ops, nil
}

type walWriter struct {
	path string
	f    *os.File
	w    *bufio.Writer
	err  error // sticky: a failed compaction swap left the writer unusable
}

func (wal *walWriter) append(ops []Op) error {
	if wal.err != nil {
		return wal.err
	}
	if _, err := wal.w.Write(encodeRecord(ops)); err != nil {
		return fmt.Errorf("kvstore: appending to log: %w", err)
	}
	if err := wal.w.Flush(); err != nil {
		return fmt.Errorf("kvstore: flushing log: %w", err)
	}
	return nil
}

func (wal *walWriter) sync() error {
	if wal.err != nil {
		return wal.err
	}
	if err := wal.w.Flush(); err != nil {
		return fmt.Errorf("kvstore: flushing log: %w", err)
	}
	if err := wal.f.Sync(); err != nil {
		return fmt.Errorf("kvstore: fsyncing log: %w", err)
	}
	return nil
}

func (wal *walWriter) close() error {
	if wal.err != nil {
		wal.f.Close()
		return wal.err
	}
	if err := wal.w.Flush(); err != nil {
		wal.f.Close()
		return fmt.Errorf("kvstore: flushing log on close: %w", err)
	}
	if err := wal.f.Close(); err != nil {
		return fmt.Errorf("kvstore: closing log: %w", err)
	}
	return nil
}

// compactSuffix names the temp file Compact builds beside the live log.
const compactSuffix = ".compact"

// compactCrash, when non-nil, simulates a crash at named points inside a
// compaction. A non-nil return aborts immediately and skips the cleanup
// the real error paths perform — exactly the on-disk state a process
// death at that point would leave — so tests can assert what a reopen
// recovers at each stage. Points, in order: "begin", "record" (after each
// record written to the temp file), "written", "delta", "synced",
// "renamed".
var compactCrash func(stage string) error

func crashPoint(stage string) error {
	if compactCrash == nil {
		return nil
	}
	return compactCrash(stage)
}

// writeCompacted writes one put per live key of view, in sorted (bucket,
// key) order, into a fresh <path>.compact file, and returns the open file,
// its buffered writer, and the bytes written. The live log is untouched.
// On error the temp file is removed — except at injected crash points,
// which abort with no cleanup by design.
func (wal *walWriter) writeCompacted(view map[string]map[string][]byte) (*os.File, *bufio.Writer, int64, error) {
	if err := crashPoint("begin"); err != nil {
		return nil, nil, 0, err
	}
	tmpPath := wal.path + compactSuffix
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("kvstore: creating compaction file: %w", err)
	}
	discard := func(err error) (*os.File, *bufio.Writer, int64, error) {
		tmp.Close()
		os.Remove(tmpPath)
		return nil, nil, 0, err
	}
	bw := bufio.NewWriter(tmp)
	var crashed error
	written, err := writeSortedRecords(bw, view, func() error {
		crashed = crashPoint("record")
		return crashed
	})
	if err != nil {
		if crashed != nil {
			return nil, nil, 0, crashed
		}
		return discard(fmt.Errorf("kvstore: writing compacted log: %w", err))
	}
	if err := crashPoint("written"); err != nil {
		return nil, nil, 0, err
	}
	return tmp, bw, written, nil
}

// publishCompacted finishes a compaction: flush the live log, append its
// post-cut suffix (delta bytes starting at offset cut — records that
// landed while the view was being written) to the compacted file, fsync
// it, atomically rename it over the live log, and move the writer to the
// new file. The caller holds the store lock, so the delta is stable.
// Failures before the rename remove the temp file and leave the live log
// authoritative; failures after it poison the writer (wal.err), since
// appends may no longer reach the file a reopen would read.
func (wal *walWriter) publishCompacted(tmp *os.File, bw *bufio.Writer, cut, delta int64) (int64, error) {
	tmpPath := wal.path + compactSuffix
	discard := func(err error) (int64, error) {
		tmp.Close()
		os.Remove(tmpPath)
		return 0, err
	}
	if err := wal.w.Flush(); err != nil {
		return discard(fmt.Errorf("kvstore: flushing live log before swap: %w", err))
	}
	if delta > 0 {
		if _, err := io.Copy(bw, io.NewSectionReader(wal.f, cut, delta)); err != nil {
			return discard(fmt.Errorf("kvstore: carrying writes into compacted log: %w", err))
		}
	}
	if err := crashPoint("delta"); err != nil {
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		return discard(fmt.Errorf("kvstore: flushing compacted log: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return discard(fmt.Errorf("kvstore: fsyncing compacted log: %w", err))
	}
	if err := crashPoint("synced"); err != nil {
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return 0, fmt.Errorf("kvstore: closing compacted log: %w", err)
	}
	if err := os.Rename(tmpPath, wal.path); err != nil {
		os.Remove(tmpPath)
		return 0, fmt.Errorf("kvstore: swapping compacted log in: %w", err)
	}
	// The live log is now the compacted file; a crash from here on is safe
	// (Open reads it), but this writer must move to the new inode before
	// any further append.
	if err := crashPoint("renamed"); err != nil {
		wal.err = fmt.Errorf("kvstore: compacted log not reopened: %w", err)
		return 0, wal.err
	}
	syncDir(wal.path)
	f, err := os.OpenFile(wal.path, os.O_RDWR, 0o644)
	if err != nil {
		wal.err = fmt.Errorf("kvstore: reopening compacted log: %w", err)
		return 0, wal.err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		wal.err = fmt.Errorf("kvstore: seeking compacted log end: %w", err)
		return 0, wal.err
	}
	old := wal.f
	wal.f = f
	wal.w.Reset(f)
	old.Close()
	return delta, nil
}

// syncDir fsyncs the directory containing path so the rename itself is on
// stable storage. Best-effort: some platforms refuse directory fsyncs, and
// the swap is already atomic for every crash short of power loss.
func syncDir(path string) {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// replayWAL loads every intact record from f into s and truncates a torn
// tail if one is found.
func replayWAL(f *os.File, s *Store) error {
	r := bufio.NewReader(f)
	var offset int64
	for {
		ops, err := decodeRecord(r)
		if err == io.EOF {
			return nil
		}
		if errors.Is(err, errShortRecord) {
			// Torn tail from a crash mid-append: drop it.
			if terr := f.Truncate(offset); terr != nil {
				return fmt.Errorf("kvstore: truncating torn log tail: %w", terr)
			}
			return nil
		}
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCorruptWAL, err)
		}
		for _, op := range ops {
			b := s.buckets[op.Bucket]
			if op.Delete {
				delete(b, op.Key)
				continue
			}
			if b == nil {
				b = make(map[string][]byte)
				s.buckets[op.Bucket] = b
			}
			b[op.Key] = op.Value
		}
		offset += int64(8 + payloadLen(ops))
	}
}

// payloadLen recomputes the encoded payload size of ops; used only to track
// replay offsets without re-reading the file.
func payloadLen(ops []Op) int {
	n := 2
	var scratch [binary.MaxVarintLen64]byte
	uvlen := func(v uint64) int { return binary.PutUvarint(scratch[:], v) }
	for _, op := range ops {
		n += 1 + uvlen(uint64(len(op.Bucket))) + len(op.Bucket) + uvlen(uint64(len(op.Key))) + len(op.Key)
		if !op.Delete {
			n += uvlen(uint64(len(op.Value))) + len(op.Value)
		}
	}
	return n
}
