// Package kvstore is the embedded storage substrate standing in for the
// paper's unspecified databases (UserDB, BSMDB, seller catalogs). It is a
// bucketed key-value store with:
//
//   - atomic multi-key batches,
//   - ordered prefix scans (the only query shape the paper's workflows need),
//   - optional durability through an append-only write-ahead log that is
//     replayed on open, and
//   - whole-store snapshots for agent deactivation (§4.1 principle 3 stores
//     a serialized BRA while its MBA is travelling).
//
// Values are opaque bytes; EncodeJSON/DecodeJSON helpers cover the common
// case of structured records.
//
// # Guarantees and invariants
//
//   - Apply is all-or-nothing: a batch is appended to the WAL as one
//     CRC-checked record and only then applied to memory, under the store
//     lock. Readers never observe a partial batch.
//   - WAL replay on Open keeps the longest intact prefix of acknowledged
//     batches: a torn final record (crash mid-append) is detected by
//     length/CRC and truncated away; an absurd length header from a
//     garbage tail is capped (maxRecordLen) and treated the same way
//     instead of allocating unbounded memory.
//   - Batches larger than maxRecordLen are rejected up front — on
//     memory-only stores too — so an accepted write can never poison a
//     later Snapshot or durable reopen.
//   - Scan returns entries sorted by key, and Snapshot serializes buckets
//     and keys in sorted order: two stores holding the same live state
//     produce byte-identical snapshots regardless of write history (the
//     property the engine's replication tests pin).
//   - Bucket names are free-form minus NUL; keys are non-empty. Callers
//     own any further layout. The recommendation engine, the heaviest
//     user, keys one bucket per community shard and kind (prof/<shard>,
//     purch/<shard>, sell/<shard> — see internal/recommend/persist.go),
//     which keeps recovery and replication per-shard prefix scans.
package kvstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
)

// Errors returned by the store. Match with errors.Is.
var (
	ErrNotFound      = errors.New("kvstore: key not found")
	ErrClosed        = errors.New("kvstore: store closed")
	ErrCorruptWAL    = errors.New("kvstore: corrupt write-ahead log")
	ErrEmptyKey      = errors.New("kvstore: empty key")
	ErrEmptyBucket   = errors.New("kvstore: empty bucket name")
	ErrInvalidName   = errors.New("kvstore: bucket name contains NUL")
	ErrStoreDirty    = errors.New("kvstore: snapshot target not empty")
	ErrBadSnapshot   = errors.New("kvstore: malformed snapshot")
	ErrBatchTooLarge = errors.New("kvstore: batch exceeds max record size")
	errShortRecord   = errors.New("kvstore: short record")
	errBadRecordTag  = errors.New("kvstore: unknown record tag")
)

// Op is a single mutation in a Batch.
type Op struct {
	Bucket string
	Key    string
	Value  []byte // nil means delete
	Delete bool
}

// Entry is one key/value pair returned by scans.
type Entry struct {
	Key   string
	Value []byte
}

// Store is a bucketed in-memory KV store with optional WAL durability.
// Construct with Open (durable) or New (memory-only). All methods are safe
// for concurrent use.
type Store struct {
	mu      sync.RWMutex
	buckets map[string]map[string][]byte
	wal     *walWriter
	closed  bool
}

// New returns a memory-only store.
func New() *Store {
	return &Store{buckets: make(map[string]map[string][]byte)}
}

// Open returns a store persisted to the append-only log at path, replaying
// any existing log. The file is created if absent.
func Open(path string) (*Store, error) {
	s := New()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: opening %s: %w", path, err)
	}
	if err := replayWAL(f, s); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("kvstore: seeking log end: %w", err)
	}
	s.wal = &walWriter{f: f, w: bufio.NewWriter(f)}
	return s, nil
}

func validate(bucket, key string) error {
	if bucket == "" {
		return ErrEmptyBucket
	}
	if strings.ContainsRune(bucket, 0) {
		return ErrInvalidName
	}
	if key == "" {
		return ErrEmptyKey
	}
	return nil
}

// Put stores value under bucket/key, creating the bucket if needed.
func (s *Store) Put(bucket, key string, value []byte) error {
	return s.Apply([]Op{{Bucket: bucket, Key: key, Value: value}})
}

// Delete removes bucket/key. Deleting an absent key is not an error.
func (s *Store) Delete(bucket, key string) error {
	return s.Apply([]Op{{Bucket: bucket, Key: key, Delete: true}})
}

// Apply performs ops atomically: either all mutations are visible (and
// logged) or none are. A batch whose encoded form would exceed the WAL's
// record cap is rejected with ErrBatchTooLarge before any mutation —
// enforced for memory-only stores too, so a batch that fits in memory can
// never poison a later Snapshot or a durable reopen.
func (s *Store) Apply(ops []Op) error {
	for _, op := range ops {
		if err := validate(op.Bucket, op.Key); err != nil {
			return err
		}
	}
	if payloadLen(ops) > maxRecordLen {
		return fmt.Errorf("%w: %d ops", ErrBatchTooLarge, len(ops))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.wal != nil {
		if err := s.wal.append(ops); err != nil {
			return err
		}
	}
	for _, op := range ops {
		b := s.buckets[op.Bucket]
		if op.Delete {
			delete(b, op.Key)
			continue
		}
		if b == nil {
			b = make(map[string][]byte)
			s.buckets[op.Bucket] = b
		}
		v := make([]byte, len(op.Value))
		copy(v, op.Value)
		b[op.Key] = v
	}
	return nil
}

// Get returns a copy of the value at bucket/key, or ErrNotFound.
func (s *Store) Get(bucket, key string) ([]byte, error) {
	if err := validate(bucket, key); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	v, ok := s.buckets[bucket][key]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, bucket, key)
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// Has reports whether bucket/key exists.
func (s *Store) Has(bucket, key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.buckets[bucket][key]
	return ok
}

// Scan returns all entries in bucket whose key starts with prefix, sorted by
// key. An empty prefix returns the whole bucket.
func (s *Store) Scan(bucket, prefix string) ([]Entry, error) {
	if bucket == "" {
		return nil, ErrEmptyBucket
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	b := s.buckets[bucket]
	out := make([]Entry, 0, len(b))
	for k, v := range b {
		if strings.HasPrefix(k, prefix) {
			val := make([]byte, len(v))
			copy(val, v)
			out = append(out, Entry{Key: k, Value: val})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Count reports the number of keys in bucket.
func (s *Store) Count(bucket string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.buckets[bucket])
}

// Buckets returns the sorted names of all non-empty buckets.
func (s *Store) Buckets() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.buckets))
	for name, b := range s.buckets {
		if len(b) > 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Close flushes and closes the WAL, if any. Further operations return
// ErrClosed. Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.wal != nil {
		return s.wal.close()
	}
	return nil
}

// Compact rewrites the WAL to contain only the live state, shrinking logs
// that have accumulated overwrites and deletes. It is a no-op for
// memory-only stores.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.wal == nil {
		return nil
	}
	return s.wal.rewrite(s.buckets)
}

// EncodeJSON marshals v and stores it under bucket/key.
func (s *Store) EncodeJSON(bucket, key string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("kvstore: encoding %s/%s: %w", bucket, key, err)
	}
	return s.Put(bucket, key, data)
}

// DecodeJSON loads bucket/key and unmarshals it into v.
func (s *Store) DecodeJSON(bucket, key string, v any) error {
	data, err := s.Get(bucket, key)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("kvstore: decoding %s/%s: %w", bucket, key, err)
	}
	return nil
}

// Snapshot serializes the entire store to w in a self-delimiting format
// suitable for RestoreInto. It holds the read lock for the duration.
func (s *Store) Snapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	bw := bufio.NewWriter(w)
	names := make([]string, 0, len(s.buckets))
	for name := range s.buckets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		keys := make([]string, 0, len(s.buckets[name]))
		for k := range s.buckets[name] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			rec := encodeRecord([]Op{{Bucket: name, Key: k, Value: s.buckets[name][k]}})
			if _, err := bw.Write(rec); err != nil {
				return fmt.Errorf("kvstore: writing snapshot: %w", err)
			}
		}
	}
	return bw.Flush()
}

// RestoreInto loads a Snapshot stream into an empty memory store. It fails
// with ErrStoreDirty if the store already holds data.
func (s *Store) RestoreInto(r io.Reader) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	for _, b := range s.buckets {
		if len(b) > 0 {
			return ErrStoreDirty
		}
	}
	br := bufio.NewReader(r)
	for {
		ops, err := decodeRecord(br)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		for _, op := range ops {
			b := s.buckets[op.Bucket]
			if b == nil {
				b = make(map[string][]byte)
				s.buckets[op.Bucket] = b
			}
			b[op.Key] = op.Value
		}
	}
}

// --- WAL encoding ---
//
// A record is one atomic batch:
//
//	uint32 payloadLen | uint32 crc32(payload) | payload
//
// payload = uint16 nOps, then per op:
//
//	uint8 tag (1=put, 2=delete) | uvarint len + bucket | uvarint len + key |
//	(puts only) uvarint len + value
//
// A torn final record (crash mid-append) is detected by length/CRC and
// truncated away on replay; anything before it is kept.

const (
	tagPut    = 1
	tagDelete = 2

	// maxRecordLen bounds a single record's payload, enforced on both
	// sides: Apply rejects oversized batches up front (so an acknowledged
	// write can never be dropped later), and replay treats an oversized
	// length header — necessarily garbage, given the write-side cap — as a
	// torn tail rather than allocating up to 4 GiB before the CRC check
	// could reject it.
	maxRecordLen = 1 << 28 // 256 MiB
)

func encodeRecord(ops []Op) []byte {
	var payload bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		payload.Write(scratch[:n])
	}
	var hdr [2]byte
	binary.BigEndian.PutUint16(hdr[:], uint16(len(ops)))
	payload.Write(hdr[:])
	for _, op := range ops {
		if op.Delete {
			payload.WriteByte(tagDelete)
		} else {
			payload.WriteByte(tagPut)
		}
		putUvarint(uint64(len(op.Bucket)))
		payload.WriteString(op.Bucket)
		putUvarint(uint64(len(op.Key)))
		payload.WriteString(op.Key)
		if !op.Delete {
			putUvarint(uint64(len(op.Value)))
			payload.Write(op.Value)
		}
	}
	out := make([]byte, 8+payload.Len())
	binary.BigEndian.PutUint32(out[0:4], uint32(payload.Len()))
	binary.BigEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload.Bytes()))
	copy(out[8:], payload.Bytes())
	return out
}

func decodeRecord(r *bufio.Reader) ([]Op, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, errShortRecord
		}
		return nil, err // io.EOF = clean end
	}
	length := binary.BigEndian.Uint32(hdr[0:4])
	sum := binary.BigEndian.Uint32(hdr[4:8])
	if length > maxRecordLen {
		return nil, errShortRecord
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, errShortRecord
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, errShortRecord
	}
	if len(payload) < 2 {
		return nil, errShortRecord
	}
	n := int(binary.BigEndian.Uint16(payload[:2]))
	br := bytes.NewReader(payload[2:])
	readBytes := func() ([]byte, error) {
		l, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, errShortRecord
		}
		buf := make([]byte, l)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, errShortRecord
		}
		return buf, nil
	}
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		tag, err := br.ReadByte()
		if err != nil {
			return nil, errShortRecord
		}
		bucket, err := readBytes()
		if err != nil {
			return nil, err
		}
		key, err := readBytes()
		if err != nil {
			return nil, err
		}
		op := Op{Bucket: string(bucket), Key: string(key)}
		switch tag {
		case tagPut:
			val, err := readBytes()
			if err != nil {
				return nil, err
			}
			op.Value = val
		case tagDelete:
			op.Delete = true
		default:
			return nil, errBadRecordTag
		}
		ops = append(ops, op)
	}
	return ops, nil
}

type walWriter struct {
	f *os.File
	w *bufio.Writer
}

func (wal *walWriter) append(ops []Op) error {
	if _, err := wal.w.Write(encodeRecord(ops)); err != nil {
		return fmt.Errorf("kvstore: appending to log: %w", err)
	}
	if err := wal.w.Flush(); err != nil {
		return fmt.Errorf("kvstore: flushing log: %w", err)
	}
	return nil
}

func (wal *walWriter) close() error {
	if err := wal.w.Flush(); err != nil {
		wal.f.Close()
		return fmt.Errorf("kvstore: flushing log on close: %w", err)
	}
	if err := wal.f.Close(); err != nil {
		return fmt.Errorf("kvstore: closing log: %w", err)
	}
	return nil
}

// rewrite truncates the log and writes one put per live key.
func (wal *walWriter) rewrite(buckets map[string]map[string][]byte) error {
	if err := wal.w.Flush(); err != nil {
		return fmt.Errorf("kvstore: flushing before compaction: %w", err)
	}
	if err := wal.f.Truncate(0); err != nil {
		return fmt.Errorf("kvstore: truncating log: %w", err)
	}
	if _, err := wal.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("kvstore: rewinding log: %w", err)
	}
	wal.w.Reset(wal.f)
	for name, b := range buckets {
		for k, v := range b {
			if _, err := wal.w.Write(encodeRecord([]Op{{Bucket: name, Key: k, Value: v}})); err != nil {
				return fmt.Errorf("kvstore: rewriting log: %w", err)
			}
		}
	}
	if err := wal.w.Flush(); err != nil {
		return fmt.Errorf("kvstore: flushing compacted log: %w", err)
	}
	return nil
}

// replayWAL loads every intact record from f into s and truncates a torn
// tail if one is found.
func replayWAL(f *os.File, s *Store) error {
	r := bufio.NewReader(f)
	var offset int64
	for {
		ops, err := decodeRecord(r)
		if err == io.EOF {
			return nil
		}
		if errors.Is(err, errShortRecord) {
			// Torn tail from a crash mid-append: drop it.
			if terr := f.Truncate(offset); terr != nil {
				return fmt.Errorf("kvstore: truncating torn log tail: %w", terr)
			}
			return nil
		}
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCorruptWAL, err)
		}
		for _, op := range ops {
			b := s.buckets[op.Bucket]
			if op.Delete {
				delete(b, op.Key)
				continue
			}
			if b == nil {
				b = make(map[string][]byte)
				s.buckets[op.Bucket] = b
			}
			b[op.Key] = op.Value
		}
		offset += int64(8 + payloadLen(ops))
	}
}

// payloadLen recomputes the encoded payload size of ops; used only to track
// replay offsets without re-reading the file.
func payloadLen(ops []Op) int {
	n := 2
	var scratch [binary.MaxVarintLen64]byte
	uvlen := func(v uint64) int { return binary.PutUvarint(scratch[:], v) }
	for _, op := range ops {
		n += 1 + uvlen(uint64(len(op.Bucket))) + len(op.Bucket) + uvlen(uint64(len(op.Key))) + len(op.Key)
		if !op.Delete {
			n += uvlen(uint64(len(op.Value))) + len(op.Value)
		}
	}
	return n
}
