package coordinator

import (
	"context"
	"fmt"
	"sync"
	"time"

	"agentrec/internal/ops"
	"agentrec/internal/recommend"
)

// This file seats elastic shard ownership in the paper's Coordinator
// Server: alongside the domain directory, the CA can carry an ownership
// Authority — the single writer of the epoch-versioned shard→server map
// the replication layer routes by (recommend.OwnershipMap). Servers renew
// a lease against the authority on every beat, attaching per-shard
// catch-up evidence (their replicator's AppliedSeqs); the authority uses
// the lapse of a lease to detect death and the evidence to promote the
// most caught-up follower, and uses joins to rebalance shards onto new
// servers — but only shards whose replica on the joiner has provably
// reached the owner's head, so a rebalance never installs an owner that
// would serve from behind.
//
// The authority is deliberately a small in-memory state machine driven
// only by renewals and deregistrations (no background goroutine): time
// enters through now(), so tests drive failover with a fake clock, and a
// deployment's failover latency is simply its renew cadence.

// KindLease is the CA message kind of an ownership lease renewal.
const KindLease = "ownership-lease"

// LeaseRequest is one server's lease renewal: who is renewing and, per
// shard, how far its replica has advanced in the owning feed's numbering
// (recommend.Replicator.AppliedSeqs). Applied may be empty when the server
// has no evidence yet (booting).
type LeaseRequest struct {
	Server  int      `json:"server"`
	Applied []uint64 `json:"applied,omitempty"`
}

// LeaseGrant is the authority's answer: the current ownership map, how
// long the renewed lease is valid, and the reason of the latest map
// transition (join | leave | failover; "" while still on the initial map).
type LeaseGrant struct {
	Map    recommend.OwnershipMap `json:"map"`
	TTLMs  int64                  `json:"ttl_ms"`
	Reason string                 `json:"reason,omitempty"`
}

// OwnershipConfig sizes an ownership Authority.
type OwnershipConfig struct {
	Shards  int // community shard count (every server must agree)
	Servers int // server count; indices 0..Servers-1

	// LeaseTTL is how long one renewal keeps a server alive [3s]. A
	// server whose lease lapses is dead: its shards fail over to the most
	// caught-up live follower on the next renewal that observes the lapse.
	LeaseTTL time.Duration
	// JoinGrace is how long after startup a server that has never renewed
	// is still given the benefit of the doubt [3×LeaseTTL]. Booting and
	// dead look identical before the first renewal; stealing a booting
	// server's static shards would force pointless churn.
	JoinGrace time.Duration
	// Publish, when set, receives one ops ownership event per map
	// transition (the authority-side view, Server -1).
	Publish func(ops.Event)

	now func() time.Time // test hook; time.Now when nil
}

// Authority is the coordinator-side owner of the ownership map. Construct
// with NewOwnershipAuthority; attach to a Coordinator with
// AttachOwnership to expose it over the CA's message interface.
type Authority struct {
	cfg OwnershipConfig

	mu         sync.Mutex
	m          recommend.OwnershipMap
	lastReason string
	started    time.Time
	leaseUntil []time.Time
	everLeased []bool
	applied    [][]uint64 // applied[server][shard], owner-feed numbering
}

// NewOwnershipAuthority returns an authority starting from the static
// epoch-1 map over cfg.Servers servers, so a deployment that attaches a
// coordinator mid-life begins exactly where the static world left off.
func NewOwnershipAuthority(cfg OwnershipConfig) (*Authority, error) {
	if cfg.Shards <= 0 || cfg.Servers <= 0 {
		return nil, fmt.Errorf("coordinator: ownership authority needs shards (%d) and servers (%d) > 0",
			cfg.Shards, cfg.Servers)
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 3 * time.Second
	}
	if cfg.JoinGrace <= 0 {
		cfg.JoinGrace = 3 * cfg.LeaseTTL
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	a := &Authority{
		cfg:        cfg,
		m:          recommend.StaticOwnership(cfg.Shards, cfg.Servers),
		started:    cfg.now(),
		leaseUntil: make([]time.Time, cfg.Servers),
		everLeased: make([]bool, cfg.Servers),
		applied:    make([][]uint64, cfg.Servers),
	}
	for i := range a.applied {
		a.applied[i] = make([]uint64, cfg.Shards)
	}
	return a, nil
}

// Map returns the current ownership map.
func (a *Authority) Map() recommend.OwnershipMap {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.m.Clone()
}

// Renew records server's lease renewal with its catch-up evidence, runs
// the failover/rebalance step, and grants the (possibly advanced) map.
func (a *Authority) Renew(server int, applied []uint64) (LeaseGrant, error) {
	if server < 0 || server >= a.cfg.Servers {
		return LeaseGrant{}, fmt.Errorf("coordinator: lease renewal from unknown server %d of %d",
			server, a.cfg.Servers)
	}
	now := a.cfg.now()
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.everLeased[server] || !now.Before(a.leaseUntil[server]) {
		// First renewal or a rejoin after a lapse: whatever evidence is on
		// file predates the gap and must not gate promotions or win back
		// shards — the server re-proves its catch-up from zero.
		clear(a.applied[server])
	}
	a.everLeased[server] = true
	a.leaseUntil[server] = now.Add(a.cfg.LeaseTTL)
	if len(applied) == a.cfg.Shards {
		copy(a.applied[server], applied)
	}
	a.step(now, ops.OwnershipFailover)
	return LeaseGrant{Map: a.m.Clone(), TTLMs: a.cfg.LeaseTTL.Milliseconds(), Reason: a.lastReason}, nil
}

// DeregisterServer expires server's lease immediately — a clean leave. Its
// shards are promoted away on the spot (reason "leave") using the last
// catch-up evidence on file.
func (a *Authority) DeregisterServer(server int) error {
	if server < 0 || server >= a.cfg.Servers {
		return fmt.Errorf("coordinator: deregister of unknown server %d of %d", server, a.cfg.Servers)
	}
	now := a.cfg.now()
	a.mu.Lock()
	defer a.mu.Unlock()
	a.everLeased[server] = true
	a.leaseUntil[server] = now
	a.step(now, ops.OwnershipLeave)
	return nil
}

// liveAt classifies server at time now. Caller holds a.mu.
func (a *Authority) liveAt(server int, now time.Time) (live, dead bool) {
	if a.everLeased[server] {
		live = now.Before(a.leaseUntil[server])
		return live, !live
	}
	// Never renewed: booting until JoinGrace elapses, dead after.
	return false, now.Sub(a.started) > a.cfg.JoinGrace
}

// preferredOwner is the deterministic placement rule: the static (epoch-1)
// owner while it lives, the rendezvous choice among the live servers
// otherwise. Static-first means a fully healthy cluster never moves a
// shard (boot causes zero churn), and a recovered server is the preferred
// home for exactly the shards it used to own; rendezvous takes over only
// when the static owner is gone, moving each orphaned shard to one stable
// substitute. Caller holds a.mu.
func (a *Authority) preferredOwner(s int, live []int) int {
	static := recommend.OwnerOf(s, a.cfg.Servers)
	for _, j := range live {
		if j == static {
			return static
		}
	}
	return recommend.RendezvousOwner(s, live)
}

// step advances the map at most one epoch: failover of dead owners' shards
// takes priority; otherwise caught-up shards flow back to their preferred
// owner (a rejoined server reclaiming its shards, or a joiner winning the
// rendezvous fallback). Caller holds a.mu. deadReason is the reason a
// failover transition is published under (failover normally, leave when
// the lapse was a clean deregistration).
func (a *Authority) step(now time.Time, deadReason string) {
	live := make([]int, 0, a.cfg.Servers)
	for i := 0; i < a.cfg.Servers; i++ {
		if ok, _ := a.liveAt(i, now); ok {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return // nobody to promote; leave the map alone
	}

	next := a.m.Clone()
	reason := ""
	for s, owner := range a.m.Assign {
		if owner >= 0 && owner < a.cfg.Servers {
			if _, dead := a.liveAt(owner, now); !dead {
				continue
			}
		}
		// Dead (or out-of-range) owner: promote the most caught-up live
		// follower; ties break to the preferred owner, then lowest index.
		pref := a.preferredOwner(s, live)
		best, bestSeq := -1, uint64(0)
		for _, j := range live {
			seq := a.applied[j][s]
			if best < 0 || seq > bestSeq || (seq == bestSeq && (j == pref || (best != pref && j < best))) {
				best, bestSeq = j, seq
			}
		}
		next.Assign[s] = best
		reason = deadReason
	}
	if reason == "" {
		// No failover pending: rebalance shards whose live owner is not
		// the preferred one — but only when the preferred server's replica
		// has provably reached the owner's reported head, so the move
		// never installs a behind owner. The owner can still ack writes
		// between its last renewal and adopting the new map; that residual
		// window is bounded by one renew interval and is the documented
		// cost of lease-based handoff.
		for s, owner := range a.m.Assign {
			if owner < 0 || owner >= a.cfg.Servers {
				continue
			}
			if ok, _ := a.liveAt(owner, now); !ok {
				continue // booting owner: no fresh evidence to gate on
			}
			pref := a.preferredOwner(s, live)
			if pref == owner {
				continue
			}
			if a.applied[pref][s] == a.applied[owner][s] {
				next.Assign[s] = pref
				reason = ops.OwnershipJoin
			}
		}
	}
	if reason == "" {
		return
	}
	moved := recommend.DiffOwnership(a.m, next)
	if len(moved) == 0 {
		return
	}
	next.Epoch = a.m.Epoch + 1
	prev := a.m.Epoch
	a.m = next
	a.lastReason = reason
	if a.cfg.Publish != nil {
		a.cfg.Publish(ops.Event{Kind: ops.KindOwnership, Ownership: ops.OwnershipEvent{
			Server:    -1,
			Epoch:     next.Epoch,
			PrevEpoch: prev,
			Reason:    reason,
			Moved:     moved,
		}})
	}
}

// AttachOwnership wires an ownership authority into the coordinator: the
// CA answers KindLease renewals with the authority's grants. Attach once,
// before serving traffic (the authority's server/shard counts come from
// the deployment config, which the Coordinator does not know).
func (c *Coordinator) AttachOwnership(a *Authority) {
	c.mu.Lock()
	c.ownership = a
	c.mu.Unlock()
}

// Ownership returns the attached authority, or nil.
func (c *Coordinator) Ownership() *Authority {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ownership
}

// RenewFunc renews one server's ownership lease — a direct Authority call
// in process, a CA round-trip over the wire.
type RenewFunc func(ctx context.Context, server int, applied []uint64) (LeaseGrant, error)

// LeaseClient keeps one server's OwnershipTable leased: every Interval it
// renews against the authority with fresh catch-up evidence, advances the
// table when the grant carries a newer map, and re-arms the lease expiry.
// If renewals stop succeeding the table simply expires — that is the lease
// discipline, not an error path: the server stops claiming ownership until
// it can renew again.
type LeaseClient struct {
	Self     int
	Table    *recommend.OwnershipTable
	Renew    RenewFunc
	Applied  func() []uint64 // catch-up evidence (Replicator.AppliedSeqs); may be nil
	Interval time.Duration   // renew cadence [1s]; keep well under the authority's TTL
	Publish  func(ops.Event) // local ownership-transition events; may be nil
	OnError  func(error)     // renewal failures (transient by design); may be nil
}

// RenewOnce performs one renewal: evidence out, grant in, table advanced
// and lease re-armed. A map transition observed here is published as this
// server's view of it (Server = Self).
func (c *LeaseClient) RenewOnce(ctx context.Context) error {
	var applied []uint64
	if c.Applied != nil {
		applied = c.Applied()
	}
	grant, err := c.Renew(ctx, c.Self, applied)
	if err != nil {
		return err
	}
	prev := c.Table.Current()
	advanced := c.Table.Advance(grant.Map)
	c.Table.Lease(time.Now().Add(time.Duration(grant.TTLMs) * time.Millisecond))
	if advanced && c.Publish != nil {
		c.Publish(ops.Event{Kind: ops.KindOwnership, Ownership: ops.OwnershipEvent{
			Server:    c.Self,
			Epoch:     grant.Map.Epoch,
			PrevEpoch: prev.Epoch,
			Reason:    grant.Reason,
			Moved:     recommend.DiffOwnership(prev, grant.Map),
		}})
	}
	return nil
}

// Run renews every Interval until ctx is done. Renewal errors go to
// OnError and the loop keeps trying: a lapsed lease already protects the
// deployment (the table expires), so the client's job is only to come
// back.
func (c *LeaseClient) Run(ctx context.Context) error {
	interval := c.Interval
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		if err := c.RenewOnce(ctx); err != nil && c.OnError != nil {
			c.OnError(err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}
