package coordinator

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"agentrec/internal/aglet"
	"agentrec/internal/trace"
)

func testCoord(t *testing.T, opts ...Option) (*Coordinator, *aglet.Host, *aglet.Loopback) {
	t.Helper()
	lb := aglet.NewLoopback()
	reg := aglet.NewRegistry()
	host := aglet.NewHost("coord", reg)
	lb.Attach(host)
	t.Cleanup(func() { host.Close() })
	c, err := New(host, reg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c, host, lb
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestRegisterAndLookup(t *testing.T) {
	c, _, _ := testCoord(t)
	entries := []Registration{
		{Kind: KindMarketplace, Name: "m1", Addr: "m1"},
		{Kind: KindMarketplace, Name: "m0", Addr: "m0"},
		{Kind: KindSeller, Name: "s1", Addr: "s1"},
	}
	for _, e := range entries {
		if err := c.Register(e); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Lookup(KindMarketplace)
	if len(got) != 2 || got[0].Name != "m0" || got[1].Name != "m1" {
		t.Errorf("Lookup(marketplace) = %+v", got)
	}
	if all := c.Lookup(""); len(all) != 3 {
		t.Errorf("Lookup(all) = %+v", all)
	}
}

func TestRegisterUnknownKind(t *testing.T) {
	c, _, _ := testCoord(t)
	if err := c.Register(Registration{Kind: "alien", Name: "x"}); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("err = %v", err)
	}
}

func TestRegisterReplaces(t *testing.T) {
	c, _, _ := testCoord(t)
	c.Register(Registration{Kind: KindSeller, Name: "s", Addr: "old"})
	c.Register(Registration{Kind: KindSeller, Name: "s", Addr: "new"})
	got := c.Lookup(KindSeller)
	if len(got) != 1 || got[0].Addr != "new" {
		t.Errorf("Lookup = %+v", got)
	}
}

func TestDeregister(t *testing.T) {
	c, _, _ := testCoord(t)
	c.Register(Registration{Kind: KindSeller, Name: "s", Addr: "a"})
	if err := c.Deregister(KindSeller, "s"); err != nil {
		t.Fatal(err)
	}
	if err := c.Deregister(KindSeller, "s"); !errors.Is(err, ErrNoSuchEntry) {
		t.Errorf("second deregister: %v", err)
	}
}

func TestCAMessages(t *testing.T) {
	_, host, _ := testCoord(t)
	reg, _ := json.Marshal(Registration{Kind: KindMarketplace, Name: "m1", Addr: "m1"})
	if _, err := host.Send(testCtx(t), CAID, aglet.Message{Kind: KindRegister, Data: reg}); err != nil {
		t.Fatal(err)
	}
	lk, _ := json.Marshal(LookupRequest{Kind: KindMarketplace})
	reply, err := host.Send(testCtx(t), CAID, aglet.Message{Kind: KindLookup, Data: lk})
	if err != nil {
		t.Fatal(err)
	}
	var lr LookupReply
	if err := json.Unmarshal(reply.Data, &lr); err != nil {
		t.Fatal(err)
	}
	if len(lr.Entries) != 1 || lr.Entries[0].Name != "m1" {
		t.Errorf("lookup reply = %+v", lr)
	}
}

func TestCABadMessages(t *testing.T) {
	_, host, _ := testCoord(t)
	if _, err := host.Send(testCtx(t), CAID, aglet.Message{Kind: "???"}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := host.Send(testCtx(t), CAID, aglet.Message{Kind: KindRegister, Data: []byte("x")}); err == nil {
		t.Error("garbage register accepted")
	}
}

func TestAdmitDispatchesBSMA(t *testing.T) {
	tracer := trace.New()
	c, _, lb := testCoord(t, WithTracer(tracer))

	// The destination host plays the buyer server: it must be able to
	// instantiate a "bsma"; the generic factory suffices for this test.
	destReg := aglet.NewRegistry()
	destReg.Register(BSMAType, func() aglet.Aglet { return &GenericBSMA{} })
	dest := aglet.NewHost("buyer-host", destReg)
	defer dest.Close()
	lb.Attach(dest)

	if err := c.Admit("buyer-1", "buyer-host"); err != nil {
		t.Fatal(err)
	}
	if !dest.Has(BSMAID) {
		t.Fatal("BSMA did not arrive at buyer host")
	}
	// Directory updated.
	got := c.Lookup(KindBuyerServer)
	if len(got) != 1 || got[0].Addr != "buyer-host" {
		t.Errorf("directory = %+v", got)
	}
	// Steps 2 and 3 traced.
	events := tracer.Workflow("creation")
	if len(events) != 2 || events[0].Step != 2 || events[1].Step != 3 {
		t.Errorf("trace = %+v", events)
	}
}

func TestAdmitFailureCleansUp(t *testing.T) {
	c, host, _ := testCoord(t)
	if err := c.Admit("ghost", "no-such-host"); err == nil {
		t.Fatal("Admit to unknown host succeeded")
	}
	// The embryonic BSMA must not linger on the coordinator.
	if host.Has(BSMAID) {
		t.Error("stranded BSMA after failed admission")
	}
	// And the directory must not list the failed server.
	if got := c.Lookup(KindBuyerServer); len(got) != 0 {
		t.Errorf("directory = %+v", got)
	}
}

func TestGenericBSMAStateRoundTrip(t *testing.T) {
	g := &GenericBSMA{}
	if err := g.OnCreation(nil, []byte("buyer-host")); err != nil {
		t.Fatal(err)
	}
	data, err := g.State()
	if err != nil {
		t.Fatal(err)
	}
	var g2 GenericBSMA
	if err := g2.SetState(data); err != nil {
		t.Fatal(err)
	}
	if g2.St.Home != "buyer-host" {
		t.Errorf("Home = %q", g2.St.Home)
	}
	if _, err := g2.HandleMessage(nil, aglet.Message{}); err == nil {
		t.Error("embryo answered a message")
	}
}
