package coordinator

import (
	"context"
	"testing"
	"time"

	"agentrec/internal/ops"
	"agentrec/internal/recommend"
)

// fakeClock drives the authority's time by hand.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func newTestAuthority(t *testing.T, shards, servers int, clk *fakeClock, publish func(ops.Event)) *Authority {
	t.Helper()
	a, err := NewOwnershipAuthority(OwnershipConfig{
		Shards: shards, Servers: servers,
		LeaseTTL: 3 * time.Second,
		Publish:  publish,
		now:      clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func renewAll(t *testing.T, a *Authority, servers int, applied func(i int) []uint64) {
	t.Helper()
	for i := 0; i < servers; i++ {
		var ev []uint64
		if applied != nil {
			ev = applied(i)
		}
		if _, err := a.Renew(i, ev); err != nil {
			t.Fatalf("renew %d: %v", i, err)
		}
	}
}

func TestAuthorityFailoverPromotesMostCaughtUp(t *testing.T) {
	clk := newFakeClock()
	var events []ops.Event
	a := newTestAuthority(t, 6, 3, clk, func(ev ops.Event) { events = append(events, ev) })

	// Everyone alive: server 0 owns shards 0,3 at head 10; server 1's
	// replica is at 10 (caught up), server 2's at 7 (behind).
	applied := func(i int) []uint64 {
		switch i {
		case 0:
			return []uint64{10, 0, 0, 10, 0, 0}
		case 1:
			return []uint64{10, 0, 0, 10, 0, 0}
		default:
			return []uint64{7, 0, 0, 7, 0, 0}
		}
	}
	renewAll(t, a, 3, applied)
	if got := a.Map().Epoch; got != 1 {
		t.Fatalf("healthy cluster moved the map to epoch %d", got)
	}

	// Server 0 goes silent past its TTL; 1 and 2 keep renewing.
	clk.advance(2 * time.Second)
	if _, err := a.Renew(1, applied(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Renew(2, applied(2)); err != nil {
		t.Fatal(err)
	}
	clk.advance(2 * time.Second) // server 0 now 4s stale, TTL 3s
	if _, err := a.Renew(1, applied(1)); err != nil {
		t.Fatal(err)
	}
	m := a.Map()
	if m.Epoch != 2 {
		t.Fatalf("epoch = %d after owner death, want 2", m.Epoch)
	}
	for _, s := range []int{0, 3} {
		if m.Owner(s) != 1 {
			t.Fatalf("shard %d promoted to %d, want most-caught-up server 1", s, m.Owner(s))
		}
	}
	// Shards owned by live servers must not move.
	for _, s := range []int{1, 2, 4, 5} {
		if m.Owner(s) != recommend.OwnerOf(s, 3) {
			t.Fatalf("shard %d moved to %d though its owner is alive", s, m.Owner(s))
		}
	}
	if len(events) != 1 {
		t.Fatalf("published %d ownership events, want 1", len(events))
	}
	ev := events[0]
	if ev.Kind != ops.KindOwnership || ev.Ownership.Reason != ops.OwnershipFailover {
		t.Fatalf("event = %+v, want ownership/failover", ev)
	}
	if ev.Ownership.Epoch != 2 || ev.Ownership.PrevEpoch != 1 || len(ev.Ownership.Moved) != 2 {
		t.Fatalf("event payload = %+v", ev.Ownership)
	}
	if ev.Ownership.Server != -1 {
		t.Fatalf("authority-published event must carry server -1, got %d", ev.Ownership.Server)
	}

	// The deposed server comes back and renews: it is live again, but its
	// old shards stay promoted (no flap back without catch-up evidence).
	if grant, err := a.Renew(0, nil); err != nil {
		t.Fatal(err)
	} else if grant.Map.Owner(0) == 0 && grant.Map.Epoch == 2 {
		t.Fatalf("deposed server regained shard 0 without catch-up: %+v", grant.Map)
	}
}

func TestAuthorityDeregisterLeaves(t *testing.T) {
	clk := newFakeClock()
	var events []ops.Event
	a := newTestAuthority(t, 4, 2, clk, func(ev ops.Event) { events = append(events, ev) })
	renewAll(t, a, 2, func(int) []uint64 { return []uint64{5, 5, 5, 5} })

	if err := a.DeregisterServer(1); err != nil {
		t.Fatal(err)
	}
	m := a.Map()
	if m.Epoch != 2 {
		t.Fatalf("epoch = %d after leave, want 2", m.Epoch)
	}
	for s := 0; s < 4; s++ {
		if m.Owner(s) != 0 {
			t.Fatalf("shard %d owner = %d after server 1 left, want 0", s, m.Owner(s))
		}
	}
	if len(events) != 1 || events[0].Ownership.Reason != ops.OwnershipLeave {
		t.Fatalf("events = %+v, want one leave transition", events)
	}
}

func TestAuthorityJoinMovesOnlyCaughtUpShards(t *testing.T) {
	clk := newFakeClock()
	a := newTestAuthority(t, 4, 2, clk, nil)

	// Both servers healthy at epoch 1 (owners 0 1 0 1), then server 1
	// lapses: its shards 1 and 3 fail over to server 0.
	renewAll(t, a, 2, func(int) []uint64 { return []uint64{5, 5, 5, 5} })
	clk.advance(4 * time.Second)
	if _, err := a.Renew(0, []uint64{5, 5, 5, 5}); err != nil {
		t.Fatal(err)
	}
	if m := a.Map(); m.Epoch != 2 || m.Owner(1) != 0 || m.Owner(3) != 0 {
		t.Fatalf("failover map = %+v, want shards 1,3 on server 0 at epoch 2", m)
	}

	// The deposed server rejoins. Its pre-lapse evidence must be discarded:
	// renewing with no report reclaims nothing.
	grant, err := a.Renew(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if grant.Map.Epoch != 2 {
		t.Fatalf("rejoin without evidence moved the map: %+v", grant.Map)
	}

	// Owner reports heads 6; the rejoiner has caught up on shard 1 only.
	// Exactly that shard flows back, reason join.
	if _, err := a.Renew(0, []uint64{6, 6, 6, 6}); err != nil {
		t.Fatal(err)
	}
	grant, err = a.Renew(1, []uint64{0, 6, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if grant.Map.Epoch != 3 || grant.Map.Owner(1) != 1 {
		t.Fatalf("caught-up shard 1 not rebalanced back: %+v", grant.Map)
	}
	if grant.Reason != ops.OwnershipJoin {
		t.Fatalf("grant reason = %q, want join", grant.Reason)
	}
	if grant.Map.Owner(3) != 0 {
		t.Fatal("behind shard 3 moved back without catch-up")
	}
	if grant.Map.Owner(0) != 0 || grant.Map.Owner(2) != 0 {
		t.Fatalf("live owner's own shards moved: %+v", grant.Map)
	}
}

func TestAuthorityJoinGraceProtectsBootingServers(t *testing.T) {
	clk := newFakeClock()
	a := newTestAuthority(t, 4, 2, clk, nil)

	// Server 1 has never renewed. Within JoinGrace (3×TTL = 9s) its static
	// shards must stay put even as server 0 renews.
	if _, err := a.Renew(0, []uint64{3, 3, 3, 3}); err != nil {
		t.Fatal(err)
	}
	if m := a.Map(); m.Epoch != 1 {
		t.Fatalf("map moved to epoch %d while the peer was still in its join grace", m.Epoch)
	}
	// Past the grace it is dead: its shards fail over.
	clk.advance(10 * time.Second)
	grant, err := a.Renew(0, []uint64{3, 3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if grant.Map.Epoch != 2 {
		t.Fatalf("epoch = %d after grace expiry, want 2", grant.Map.Epoch)
	}
	for s := 0; s < 4; s++ {
		if grant.Map.Owner(s) != 0 {
			t.Fatalf("shard %d owner = %d, want 0 after never-leased peer declared dead", s, grant.Map.Owner(s))
		}
	}
}

func TestLeaseClientAdvancesAndArmsTable(t *testing.T) {
	clk := newFakeClock()
	a := newTestAuthority(t, 4, 2, clk, nil)
	table := recommend.NewOwnershipTable(recommend.StaticOwnership(4, 2))
	var published []ops.Event
	client := &LeaseClient{
		Self:  0,
		Table: table,
		Renew: func(_ context.Context, server int, applied []uint64) (LeaseGrant, error) {
			return a.Renew(server, applied)
		},
		Applied: func() []uint64 { return []uint64{9, 9, 9, 9} },
		Publish: func(ev ops.Event) { published = append(published, ev) },
	}
	if err := client.RenewOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := table.Expired(); err != nil {
		t.Fatalf("freshly renewed table reports %v", err)
	}
	if len(published) != 0 {
		t.Fatalf("no map transition yet, but client published %+v", published)
	}

	// Kill server 1 (deregister) so the authority advances the map; the
	// client's next renewal must adopt it and publish the local view.
	if err := a.DeregisterServer(1); err != nil {
		t.Fatal(err)
	}
	if err := client.RenewOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if table.Epoch() != 2 {
		t.Fatalf("table epoch = %d after grant, want 2", table.Epoch())
	}
	if len(published) != 1 {
		t.Fatalf("published %d events, want 1 transition", len(published))
	}
	ev := published[0].Ownership
	if ev.Server != 0 || ev.Epoch != 2 || ev.PrevEpoch != 1 || ev.Reason != ops.OwnershipLeave {
		t.Fatalf("published transition = %+v", ev)
	}
}
