// Package coordinator implements the paper's Coordinator Server (§3.2
// item 1): a static Coordinator Agent (CA) that "manages an E-Commerce
// domain". Concretely the CA keeps the domain directory — which
// marketplaces, buyer agent servers and seller servers exist and where —
// and performs the admission half of the mechanism-creation workflow of
// Fig 4.1: a would-be Buyer Agent Server asks to join (step 1), the CA
// creates a Buyer Server Management Agent (step 2) and dispatches it to the
// new server's host (step 3). Steps 4–6 happen on arrival and belong to the
// buyerserver package.
package coordinator

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"agentrec/internal/aglet"
	"agentrec/internal/trace"
)

// CAID is the well-known agent id of the Coordinator Agent.
const CAID = "ca"

// BSMAType is the agent type name under which Buyer Server Management
// Agents are registered; the coordinator instantiates it generically (its
// behaviour is bound at the destination host) for the Fig 4.1 dispatch.
const BSMAType = "bsma"

// BSMAID is the well-known agent id of a Buyer Server Management Agent.
const BSMAID = "bsma"

// ServerKind classifies a registered server.
type ServerKind string

// The server kinds of Fig 3.1.
const (
	KindMarketplace ServerKind = "marketplace"
	KindBuyerServer ServerKind = "buyerserver"
	KindSeller      ServerKind = "seller"
)

// Errors reported by the coordinator.
var (
	ErrUnknownKind = errors.New("coordinator: unknown server kind")
	ErrNoSuchEntry = errors.New("coordinator: server not registered")
)

// Registration is one directory entry.
type Registration struct {
	Kind ServerKind `json:"kind"`
	Name string     `json:"name"`
	Addr string     `json:"addr"` // aglet host name / transport address
}

// Message kinds the CA understands.
const (
	KindRegister = "register"
	KindLookup   = "lookup"
	KindAdmit    = "admit-buyer-server"
)

// LookupRequest asks for all registrations of one kind ("" = all).
type LookupRequest struct {
	Kind ServerKind `json:"kind"`
}

// LookupReply carries directory entries.
type LookupReply struct {
	Entries []Registration `json:"entries"`
}

// AdmitRequest asks the CA to set up a Buyer Agent Server at Addr
// (Fig 4.1 step 1).
type AdmitRequest struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
}

// AckReply is a plain acknowledgement.
type AckReply struct {
	OK bool `json:"ok"`
}

// Coordinator is the coordinator server. Construct with New.
type Coordinator struct {
	host   *aglet.Host
	tracer *trace.Recorder

	mu        sync.Mutex
	entries   map[string]Registration // key: string(kind)+"/"+name
	ownership *Authority              // nil unless AttachOwnership was called
}

// Option configures a Coordinator.
type Option func(*Coordinator)

// WithTracer records workflow events (Fig 4.1 steps) into r.
func WithTracer(r *trace.Recorder) Option {
	return func(c *Coordinator) { c.tracer = r }
}

// New creates a coordinator whose CA lives on host. The CA factory and a
// generic BSMA factory (used only to carry the agent to its destination,
// where the buyer server binds the real behaviour) are registered on reg,
// which must therefore be specific to this host.
func New(host *aglet.Host, reg *aglet.Registry, opts ...Option) (*Coordinator, error) {
	c := &Coordinator{host: host, entries: make(map[string]Registration)}
	for _, opt := range opts {
		opt(c)
	}
	typeName := "ca:" + host.Name()
	reg.Register(typeName, func() aglet.Aglet { return &caAgent{coord: c} })
	reg.Register(BSMAType, func() aglet.Aglet { return &GenericBSMA{} })
	if _, err := host.Create(typeName, CAID, nil); err != nil {
		return nil, fmt.Errorf("coordinator: creating CA on %s: %w", host.Name(), err)
	}
	return c, nil
}

// BSMAState is the wire state of a travelling BSMA: the address of the
// buyer agent server it is being sent to manage. The buyerserver package
// decodes the same shape on arrival.
type BSMAState struct {
	Home string `json:"home"`
}

// GenericBSMA is the coordinator-side embryo of a Buyer Server Management
// Agent: it exists only to be created (Fig 4.1 step 2) and dispatched
// (step 3); the destination host instantiates the full behaviour from the
// same state.
type GenericBSMA struct {
	aglet.Base
	St BSMAState
}

// OnCreation stores the destination address passed as init.
func (g *GenericBSMA) OnCreation(_ *aglet.Context, init []byte) error {
	g.St.Home = string(init)
	return nil
}

// HandleMessage is never reached in normal flow; the embryo is dispatched
// before anyone can message it.
func (g *GenericBSMA) HandleMessage(_ *aglet.Context, _ aglet.Message) (aglet.Message, error) {
	return aglet.Message{}, errors.New("coordinator: embryonic BSMA has no behaviour")
}

// State serializes the destination address.
func (g *GenericBSMA) State() ([]byte, error) { return json.Marshal(g.St) }

// SetState restores the destination address.
func (g *GenericBSMA) SetState(data []byte) error { return json.Unmarshal(data, &g.St) }

// Host returns the coordinator's aglet host.
func (c *Coordinator) Host() *aglet.Host { return c.host }

// Register adds or replaces a directory entry.
func (c *Coordinator) Register(r Registration) error {
	switch r.Kind {
	case KindMarketplace, KindBuyerServer, KindSeller:
	default:
		return fmt.Errorf("%w: %q", ErrUnknownKind, r.Kind)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[string(r.Kind)+"/"+r.Name] = r
	return nil
}

// Lookup returns registrations of one kind, or all for kind "". Entries are
// sorted by name for determinism.
func (c *Coordinator) Lookup(kind ServerKind) []Registration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Registration, 0, len(c.entries))
	for _, e := range c.entries {
		if kind == "" || e.Kind == kind {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Deregister removes an entry.
func (c *Coordinator) Deregister(kind ServerKind, name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := string(kind) + "/" + name
	if _, ok := c.entries[key]; !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchEntry, key)
	}
	delete(c.entries, key)
	return nil
}

// Admit performs Fig 4.1 steps 2 and 3: create a BSMA on the coordinator
// host and dispatch it to the new Buyer Agent Server at addr. The caller
// (the buyer server bootstrap) performed step 1 by sending the request. The
// new server is also registered in the domain directory.
func (c *Coordinator) Admit(name, addr string) error {
	c.tracer.Record("creation", 2, "CA", "BSMA", "create BSMA agent")
	proxy, err := c.host.Create(BSMAType, BSMAID, []byte(addr))
	if err != nil {
		return fmt.Errorf("coordinator: creating BSMA for %s: %w", addr, err)
	}
	c.tracer.Record("creation", 3, "CA", "BSMA", "dispatch BSMA to "+addr)
	if err := c.host.Dispatch(context.Background(), proxy.ID(), addr); err != nil {
		// Clean up the stranded agent; admission failed.
		_ = c.host.Dispose(proxy.ID())
		return fmt.Errorf("coordinator: dispatching BSMA to %s: %w", addr, err)
	}
	return c.Register(Registration{Kind: KindBuyerServer, Name: name, Addr: addr})
}

// caAgent is the CA's message interface.
type caAgent struct {
	aglet.Base
	coord *Coordinator
}

func (a *caAgent) HandleMessage(_ *aglet.Context, msg aglet.Message) (aglet.Message, error) {
	switch msg.Kind {
	case KindRegister:
		var reg Registration
		if err := json.Unmarshal(msg.Data, &reg); err != nil {
			return aglet.Message{}, fmt.Errorf("coordinator: bad register: %w", err)
		}
		if err := a.coord.Register(reg); err != nil {
			return aglet.Message{}, err
		}
		return marshalReply(KindRegister, AckReply{OK: true})
	case KindLookup:
		var req LookupRequest
		if err := json.Unmarshal(msg.Data, &req); err != nil {
			return aglet.Message{}, fmt.Errorf("coordinator: bad lookup: %w", err)
		}
		return marshalReply(KindLookup, LookupReply{Entries: a.coord.Lookup(req.Kind)})
	case KindAdmit:
		var req AdmitRequest
		if err := json.Unmarshal(msg.Data, &req); err != nil {
			return aglet.Message{}, fmt.Errorf("coordinator: bad admit: %w", err)
		}
		a.coord.tracer.Record("creation", 1, "Server", "CA", "request to be buyer agent server")
		if err := a.coord.Admit(req.Name, req.Addr); err != nil {
			return aglet.Message{}, err
		}
		return marshalReply(KindAdmit, AckReply{OK: true})
	case KindLease:
		auth := a.coord.Ownership()
		if auth == nil {
			return aglet.Message{}, errors.New("coordinator: no ownership authority attached (static ownership deployment?)")
		}
		var req LeaseRequest
		if err := json.Unmarshal(msg.Data, &req); err != nil {
			return aglet.Message{}, fmt.Errorf("coordinator: bad lease renewal: %w", err)
		}
		grant, err := auth.Renew(req.Server, req.Applied)
		if err != nil {
			return aglet.Message{}, err
		}
		return marshalReply(KindLease, grant)
	default:
		return aglet.Message{}, fmt.Errorf("coordinator: CA does not understand %q", msg.Kind)
	}
}

func marshalReply(kind string, v any) (aglet.Message, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return aglet.Message{}, fmt.Errorf("coordinator: encoding %s reply: %w", kind, err)
	}
	return aglet.Message{Kind: kind, Data: data}, nil
}
