package eval

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPrecisionRecall(t *testing.T) {
	tests := []struct {
		name         string
		rec, rel     []string
		wantP, wantR float64
	}{
		{"perfect", []string{"a", "b"}, []string{"a", "b"}, 1, 1},
		{"half precision", []string{"a", "x"}, []string{"a", "b"}, 0.5, 0.5},
		{"no overlap", []string{"x", "y"}, []string{"a"}, 0, 0},
		{"empty rec", nil, []string{"a"}, 0, 0},
		{"empty rel", []string{"a"}, nil, 0, 0},
		{"subset", []string{"a"}, []string{"a", "b", "c", "d"}, 1, 0.25},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, r := PrecisionRecall(tt.rec, tt.rel)
			if math.Abs(p-tt.wantP) > 1e-12 || math.Abs(r-tt.wantR) > 1e-12 {
				t.Errorf("P/R = %v/%v, want %v/%v", p, r, tt.wantP, tt.wantR)
			}
		})
	}
}

func TestF1(t *testing.T) {
	if F1(0, 0) != 0 {
		t.Error("F1(0,0) != 0")
	}
	if got := F1(1, 1); got != 1 {
		t.Errorf("F1(1,1) = %v", got)
	}
	if got := F1(0.5, 1); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("F1(0.5,1) = %v", got)
	}
}

func TestF1BoundsProperty(t *testing.T) {
	fn := func(p, r float64) bool {
		p, r = math.Abs(math.Mod(p, 1)), math.Abs(math.Mod(r, 1))
		f := F1(p, r)
		lo := math.Min(p, r)
		hi := math.Max(p, r)
		return f >= 0 && f <= hi+1e-12 && (f >= lo-1e-12 || f == 0 || lo == 0)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAggregate(t *testing.T) {
	recs := [][]string{
		{"a", "b"}, // P=1, R=1 vs {a,b}
		{"x", "y"}, // P=0, R=0 vs {a}
		{},         // uncovered
	}
	rels := [][]string{{"a", "b"}, {"a"}, {"a"}}
	m := Aggregate(recs, rels)
	if m.Users != 3 {
		t.Errorf("Users = %d", m.Users)
	}
	if math.Abs(m.Precision-1.0/3) > 1e-12 {
		t.Errorf("Precision = %v", m.Precision)
	}
	if math.Abs(m.Recall-1.0/3) > 1e-12 {
		t.Errorf("Recall = %v", m.Recall)
	}
	if math.Abs(m.Coverage-2.0/3) > 1e-12 {
		t.Errorf("Coverage = %v", m.Coverage)
	}
	if m.Distinct != 4 {
		t.Errorf("Distinct = %d, want 4 (a,b,x,y)", m.Distinct)
	}
}

func TestAggregateEmpty(t *testing.T) {
	m := Aggregate(nil, nil)
	if m.Users != 0 || m.Precision != 0 {
		t.Errorf("empty aggregate = %+v", m)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("C5 strategies", "strategy", "precision", "recall")
	tb.AddRow("cf", 0.25, 0.5)
	tb.AddRow("topseller", 0.05, 0.1)
	out := tb.String()
	if !strings.Contains(out, "## C5 strategies") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "0.2500") {
		t.Errorf("missing formatted float:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	// Columns aligned: header and rows share prefix widths.
	if !strings.HasPrefix(lines[1], "strategy ") {
		t.Errorf("header misaligned: %q", lines[1])
	}
}

func TestTableSortRows(t *testing.T) {
	tb := NewTable("", "density", "value")
	tb.AddRow("10.0", "c")
	tb.AddRow("2.0", "a")
	tb.SortRows(0)
	out := tb.String()
	if strings.Index(out, "2.0") > strings.Index(out, "10.0") {
		t.Errorf("numeric sort failed:\n%s", out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x")
	if strings.Contains(tb.String(), "##") {
		t.Error("title rendered for empty title")
	}
}
