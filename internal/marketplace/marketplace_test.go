package marketplace

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"agentrec/internal/aglet"
	"agentrec/internal/catalog"
)

func testServer(t *testing.T) (*Server, *aglet.Host) {
	t.Helper()
	reg := aglet.NewRegistry()
	host := aglet.NewHost("market-1", reg)
	t.Cleanup(func() { host.Close() })

	cat := catalog.New()
	products := []*catalog.Product{
		{ID: "lap1", Name: "UltraBook", Category: "laptop", Terms: map[string]float64{"ssd": 1, "light": 0.8}, PriceCents: 100000, SellerID: "s1", Stock: 3},
		{ID: "lap2", Name: "GameBook", Category: "laptop", Terms: map[string]float64{"gpu": 1}, PriceCents: 150000, SellerID: "s1", Stock: 1},
		{ID: "cam1", Name: "Shooter", Category: "camera", Terms: map[string]float64{"lens": 1}, PriceCents: 50000, SellerID: "s2", Stock: 2},
	}
	for _, p := range products {
		if err := cat.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := NewServer(host, cat, reg)
	if err != nil {
		t.Fatal(err)
	}
	return srv, host
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestQueryService(t *testing.T) {
	srv, _ := testServer(t)
	got := srv.Query(catalog.Query{Category: "laptop", Terms: []string{"ssd"}})
	if len(got) != 1 || got[0].Product.ID != "lap1" {
		t.Fatalf("Query = %+v", got)
	}
}

func TestBuyHappyPath(t *testing.T) {
	srv, _ := testServer(t)
	sale, err := srv.Buy("buyer-1", "lap1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if sale.PriceCents != 100000 || sale.Via != "buy" || sale.Receipt == "" {
		t.Errorf("sale = %+v", sale)
	}
	p, _ := srv.Catalog().Get("lap1")
	if p.Stock != 2 {
		t.Errorf("stock after buy = %d", p.Stock)
	}
	if len(srv.Sales()) != 1 {
		t.Errorf("sales log = %v", srv.Sales())
	}
}

func TestBuyErrors(t *testing.T) {
	srv, _ := testServer(t)
	if _, err := srv.Buy("b", "ghost", 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing product: %v", err)
	}
	if _, err := srv.Buy("b", "lap1", 1); !errors.Is(err, ErrTooExpensive) {
		t.Errorf("max price: %v", err)
	}
	// Exhaust lap2 (stock 1), then buy again.
	if _, err := srv.Buy("b", "lap2", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Buy("b", "lap2", 0); !errors.Is(err, ErrSoldOut) {
		t.Errorf("sold out: %v", err)
	}
}

func TestNegotiationLowballGetsCounter(t *testing.T) {
	srv, _ := testServer(t)
	// lap1 lists at 100000, floor 85000. Open at 50000: counter expected.
	rep, err := srv.NegotiateOpen("buyer-1", "lap1", 50000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatal("lowball accepted")
	}
	if rep.AskCents >= 100000 || rep.AskCents < 85000 {
		t.Errorf("counter = %d, want in [85000, 100000)", rep.AskCents)
	}
}

func TestNegotiationConvergesToDeal(t *testing.T) {
	srv, _ := testServer(t)
	rep, err := srv.NegotiateOpen("buyer-1", "lap1", 50000)
	if err != nil {
		t.Fatal(err)
	}
	offer := int64(50000)
	for !rep.Over {
		offer = BuyerNextOffer(offer, rep.AskCents, 100000)
		rep, err = srv.NegotiateOffer(rep.SessionID, offer)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !rep.Accepted {
		t.Fatalf("negotiation never settled: %+v", rep)
	}
	if rep.PriceCents < 85000 || rep.PriceCents > 100000 {
		t.Errorf("deal price = %d, want within [floor, list]", rep.PriceCents)
	}
	if rep.Sale == nil || rep.Sale.Via != "negotiation" {
		t.Errorf("sale = %+v", rep.Sale)
	}
	p, _ := srv.Catalog().Get("lap1")
	if p.Stock != 2 {
		t.Errorf("stock after negotiated sale = %d", p.Stock)
	}
}

func TestNegotiationGenerousOfferCappedAtAsk(t *testing.T) {
	srv, _ := testServer(t)
	rep, err := srv.NegotiateOpen("buyer-1", "lap1", 120000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatal("above-list offer not accepted")
	}
	if rep.PriceCents != 100000 {
		t.Errorf("price = %d, want capped at list 100000", rep.PriceCents)
	}
}

func TestNegotiationSessionErrors(t *testing.T) {
	srv, _ := testServer(t)
	if _, err := srv.NegotiateOffer("nope", 1); !errors.Is(err, ErrNoSession) {
		t.Errorf("unknown session: %v", err)
	}
	rep, _ := srv.NegotiateOpen("b", "lap1", 200000) // instantly accepted
	if _, err := srv.NegotiateOffer(rep.SessionID, 1); !errors.Is(err, ErrSessionOver) {
		t.Errorf("concluded session: %v", err)
	}
	if _, err := srv.NegotiateOpen("b", "ghost", 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown product: %v", err)
	}
}

func TestNegotiationRoundLimit(t *testing.T) {
	srv, _ := testServer(t)
	rep, err := srv.NegotiateOpen("cheapskate", "lap1", 1)
	if err != nil {
		t.Fatal(err)
	}
	rounds := 1
	for !rep.Over {
		rep, err = srv.NegotiateOffer(rep.SessionID, 1) // never budges
		if err != nil {
			t.Fatal(err)
		}
		rounds++
		if rounds > maxNegoRounds+1 {
			t.Fatal("session exceeded round limit")
		}
	}
	if rep.Accepted {
		t.Error("1-cent offer accepted")
	}
}

func TestHaggleToBudgetSucceedsWithinBudget(t *testing.T) {
	srv, _ := testServer(t)
	rep, err := srv.HaggleToBudget("buyer-1", "lap1", 95000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatalf("haggle failed: %+v", rep)
	}
	if rep.PriceCents > 95000 {
		t.Errorf("paid %d over budget 95000", rep.PriceCents)
	}
}

func TestHaggleToBudgetFailsBelowFloor(t *testing.T) {
	srv, _ := testServer(t)
	// Floor is 85000; budget 60000 can never close.
	rep, err := srv.HaggleToBudget("buyer-1", "lap1", 60000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatalf("deal below floor: %+v", rep)
	}
	p, _ := srv.Catalog().Get("lap1")
	if p.Stock != 3 {
		t.Errorf("stock changed on failed haggle: %d", p.Stock)
	}
}

func TestAuctionLifecycle(t *testing.T) {
	srv, _ := testServer(t)
	id, err := srv.AuctionOpen("cam1", 40000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.AuctionBid(id, "alice", 30000); !errors.Is(err, ErrBelowReserve) {
		t.Errorf("below reserve: %v", err)
	}
	st, err := srv.AuctionBid(id, "alice", 41000)
	if err != nil {
		t.Fatal(err)
	}
	if st.HighBidder != "alice" {
		t.Errorf("high bidder = %s", st.HighBidder)
	}
	if _, err := srv.AuctionBid(id, "bob", 41000); !errors.Is(err, ErrBidTooLow) {
		t.Errorf("equal bid: %v", err)
	}
	st, err = srv.AuctionBid(id, "bob", 45000)
	if err != nil {
		t.Fatal(err)
	}
	st, err = srv.AuctionClose(id)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Sold || st.Sale == nil || st.Sale.BuyerID != "bob" || st.Sale.PriceCents != 45000 {
		t.Errorf("close = %+v", st)
	}
	p, _ := srv.Catalog().Get("cam1")
	if p.Stock != 1 {
		t.Errorf("stock after auction = %d", p.Stock)
	}
	// Further bids and closes fail.
	if _, err := srv.AuctionBid(id, "carol", 99999); !errors.Is(err, ErrAuctionClosed) {
		t.Errorf("bid on closed: %v", err)
	}
	if _, err := srv.AuctionClose(id); !errors.Is(err, ErrAuctionClosed) {
		t.Errorf("double close: %v", err)
	}
}

func TestAuctionNoBidsClosesUnsold(t *testing.T) {
	srv, _ := testServer(t)
	id, _ := srv.AuctionOpen("cam1", 0)
	st, err := srv.AuctionClose(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sold {
		t.Error("auction with no bids sold")
	}
	p, _ := srv.Catalog().Get("cam1")
	if p.Stock != 2 {
		t.Errorf("stock = %d", p.Stock)
	}
}

func TestAuctionErrors(t *testing.T) {
	srv, _ := testServer(t)
	if _, err := srv.AuctionOpen("ghost", 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("open unknown product: %v", err)
	}
	if _, err := srv.AuctionBid("nope", "a", 1); !errors.Is(err, ErrNoAuction) {
		t.Errorf("bid unknown auction: %v", err)
	}
	if _, err := srv.AuctionStatus("nope"); !errors.Is(err, ErrNoAuction) {
		t.Errorf("status unknown auction: %v", err)
	}
}

func TestOpenAuctionsListing(t *testing.T) {
	srv, _ := testServer(t)
	id1, _ := srv.AuctionOpen("cam1", 0)
	id2, _ := srv.AuctionOpen("lap1", 0)
	if got := srv.OpenAuctions(); len(got) != 2 {
		t.Fatalf("OpenAuctions = %v", got)
	}
	srv.AuctionClose(id1)
	got := srv.OpenAuctions()
	if len(got) != 1 || got[0] != id2 {
		t.Fatalf("OpenAuctions after close = %v", got)
	}
}

// --- MSA message interface ---

func msaCall(t *testing.T, host *aglet.Host, kind string, req any) aglet.Message {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := host.Send(testCtx(t), MSAID, aglet.Message{Kind: kind, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	return reply
}

func TestMSAQuery(t *testing.T) {
	_, host := testServer(t)
	reply := msaCall(t, host, KindQuery, QueryRequest{Query: catalog.Query{Category: "laptop"}})
	var qr QueryReply
	if err := json.Unmarshal(reply.Data, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Market != "market-1" || len(qr.Matches) != 2 {
		t.Errorf("reply = %+v", qr)
	}
}

func TestMSABuy(t *testing.T) {
	_, host := testServer(t)
	reply := msaCall(t, host, KindBuy, BuyRequest{BuyerID: "mba-1", ProductID: "cam1"})
	var br BuyReply
	if err := json.Unmarshal(reply.Data, &br); err != nil {
		t.Fatal(err)
	}
	if br.Sale.BuyerID != "mba-1" || br.Sale.PriceCents != 50000 {
		t.Errorf("sale = %+v", br.Sale)
	}
}

func TestMSANegotiationRoundTrip(t *testing.T) {
	_, host := testServer(t)
	reply := msaCall(t, host, KindNegoOpen, NegoOpenRequest{BuyerID: "mba-1", ProductID: "lap1", OfferCents: 90000})
	var nr NegoReply
	if err := json.Unmarshal(reply.Data, &nr); err != nil {
		t.Fatal(err)
	}
	if nr.SessionID == "" {
		t.Fatalf("reply = %+v", nr)
	}
	if !nr.Over {
		reply = msaCall(t, host, KindNegoOffer, NegoOfferRequest{SessionID: nr.SessionID, OfferCents: nr.AskCents})
		if err := json.Unmarshal(reply.Data, &nr); err != nil {
			t.Fatal(err)
		}
		if !nr.Accepted {
			t.Errorf("meeting the ask not accepted: %+v", nr)
		}
	}
}

func TestMSAAuctionFlow(t *testing.T) {
	_, host := testServer(t)
	reply := msaCall(t, host, KindAuctionOpen, AuctionOpenRequest{ProductID: "cam1", ReserveCents: 1000})
	var ar AuctionOpenReply
	if err := json.Unmarshal(reply.Data, &ar); err != nil {
		t.Fatal(err)
	}
	reply = msaCall(t, host, KindAuctionBid, AuctionBidRequest{AuctionID: ar.AuctionID, BidderID: "mba-2", AmountCents: 2000})
	var st AuctionStatus
	if err := json.Unmarshal(reply.Data, &st); err != nil {
		t.Fatal(err)
	}
	if st.HighBidder != "mba-2" {
		t.Errorf("status = %+v", st)
	}
	reply = msaCall(t, host, KindAuctionClose, AuctionCloseRequest{AuctionID: ar.AuctionID})
	if err := json.Unmarshal(reply.Data, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Sold {
		t.Errorf("close = %+v", st)
	}
}

func TestMSAUnknownKind(t *testing.T) {
	_, host := testServer(t)
	_, err := host.Send(testCtx(t), MSAID, aglet.Message{Kind: "dance"})
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestMSABadPayload(t *testing.T) {
	_, host := testServer(t)
	_, err := host.Send(testCtx(t), MSAID, aglet.Message{Kind: KindBuy, Data: []byte("not json")})
	if err == nil {
		t.Fatal("garbage payload accepted")
	}
}

func TestTwoMarketplacesShareRegistry(t *testing.T) {
	reg := aglet.NewRegistry()
	h1 := aglet.NewHost("m1", reg)
	h2 := aglet.NewHost("m2", reg)
	defer h1.Close()
	defer h2.Close()
	cat1, cat2 := catalog.New(), catalog.New()
	cat1.Add(&catalog.Product{ID: "a", Category: "c", PriceCents: 1, SellerID: "s", Stock: 1})
	cat2.Add(&catalog.Product{ID: "b", Category: "c", PriceCents: 1, SellerID: "s", Stock: 1})
	if _, err := NewServer(h1, cat1, reg); err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(h2, cat2, reg); err != nil {
		t.Fatal(err)
	}
	// Each host's MSA answers for its own catalog.
	r1 := msaCall(t, h1, KindQuery, QueryRequest{Query: catalog.Query{Category: "c"}})
	var q1 QueryReply
	json.Unmarshal(r1.Data, &q1)
	if len(q1.Matches) != 1 || q1.Matches[0].Product.ID != "a" {
		t.Errorf("m1 query = %+v", q1)
	}
}

func TestMSAGet(t *testing.T) {
	_, host := testServer(t)
	reply := msaCall(t, host, KindGet, GetRequest{ProductID: "lap1"})
	var gr GetReply
	if err := json.Unmarshal(reply.Data, &gr); err != nil {
		t.Fatal(err)
	}
	if gr.Product == nil || gr.Product.ID != "lap1" || gr.Product.PriceCents != 100000 {
		t.Errorf("get = %+v", gr.Product)
	}
	if _, err := host.Send(testCtx(t), MSAID, aglet.Message{Kind: KindGet, Data: []byte(`{"product_id":"nope"}`)}); err == nil {
		t.Error("get of missing product succeeded")
	}
}

func TestMSAAllBadPayloads(t *testing.T) {
	_, host := testServer(t)
	kinds := []string{KindQuery, KindGet, KindBuy, KindNegoOpen, KindNegoOffer,
		KindAuctionOpen, KindAuctionBid, KindAuctionClose, KindAuctionState}
	for _, kind := range kinds {
		if _, err := host.Send(testCtx(t), MSAID, aglet.Message{Kind: kind, Data: []byte("{bad")}); err == nil {
			t.Errorf("MSA accepted garbage for %q", kind)
		}
	}
}

func TestNegotiationStockExhaustionMidSession(t *testing.T) {
	srv, _ := testServer(t)
	// Open a session on lap2 (stock 1), then sell the unit out from under it.
	rep, err := srv.NegotiateOpen("slow-buyer", "lap2", 100000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatal("offer below list accepted instantly")
	}
	if _, err := srv.Buy("fast-buyer", "lap2", 0); err != nil {
		t.Fatal(err)
	}
	// Meeting the ask now fails with sold-out instead of overselling.
	if _, err := srv.NegotiateOffer(rep.SessionID, rep.AskCents); !errors.Is(err, ErrSoldOut) {
		t.Fatalf("err = %v, want ErrSoldOut", err)
	}
	p, _ := srv.Catalog().Get("lap2")
	if p.Stock != 0 {
		t.Errorf("stock = %d", p.Stock)
	}
}

// Property: whatever offers a buyer makes, an accepted deal never lands
// below the seller's floor or above the list price, and stock never goes
// negative.
func TestNegotiationPriceBoundsProperty(t *testing.T) {
	fn := func(offers []int32) bool {
		reg := aglet.NewRegistry()
		host := aglet.NewHost("m", reg)
		defer host.Close()
		cat := catalog.New()
		cat.Add(&catalog.Product{ID: "p", Category: "c", PriceCents: 100000, SellerID: "s", Stock: 1})
		srv, err := NewServer(host, cat, reg)
		if err != nil {
			return false
		}
		rep, err := srv.NegotiateOpen("b", "p", 1)
		if err != nil {
			return false
		}
		for _, raw := range offers {
			if rep.Over {
				break
			}
			offer := int64(raw)
			if offer < 0 {
				offer = -offer
			}
			rep, err = srv.NegotiateOffer(rep.SessionID, offer%200000)
			if err != nil {
				return false
			}
		}
		if rep.Accepted {
			floor := int64(0.85 * 100000)
			if rep.PriceCents < floor || rep.PriceCents > 100000 {
				return false
			}
		}
		p, _ := srv.Catalog().Get("p")
		return p.Stock >= 0
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestProbeNextOffer(t *testing.T) {
	// Probing always stays strictly below the ask and terminates.
	offer, ask := int64(50000), int64(100000)
	for i := 0; i < 100; i++ {
		next, done := ProbeNextOffer(offer, ask)
		if done {
			return
		}
		if next >= ask {
			t.Fatalf("probe offer %d >= ask %d", next, ask)
		}
		if next <= offer {
			t.Fatalf("probe did not progress: %d -> %d", offer, next)
		}
		offer = next
	}
	t.Fatal("probe never terminated")
}

func TestProbeNextOfferEdges(t *testing.T) {
	if _, done := ProbeNextOffer(10, 0); !done {
		t.Error("zero ask must end the probe")
	}
	if _, done := ProbeNextOffer(99, 100); !done {
		t.Error("one-cent gap must end the probe")
	}
}
