package marketplace

import (
	"fmt"
)

// Negotiation is the alternating-offers bargaining service. The seller side
// is automated with a standard concession policy:
//
//   - The seller's reserve (floor) is reserveFraction of the list price;
//     below it the seller never sells.
//   - The ask starts at list price and concedes toward the buyer's last
//     offer by concessionRate each round.
//   - An offer at or above the current ask is accepted immediately at the
//     offered price; an offer at or above the floor is accepted once the
//     conceding ask meets it.
//
// The policy is deterministic so experiments and tests are reproducible.
const (
	reserveFraction = 0.85
	concessionRate  = 0.30
	maxNegoRounds   = 16
)

// NegoOpenRequest starts a bargaining session with an opening offer.
type NegoOpenRequest struct {
	BuyerID    string `json:"buyer_id"`
	ProductID  string `json:"product_id"`
	OfferCents int64  `json:"offer_cents"`
}

// NegoOfferRequest continues a session with a new offer.
type NegoOfferRequest struct {
	SessionID  string `json:"session_id"`
	OfferCents int64  `json:"offer_cents"`
}

// NegoReply reports the seller's response to an offer.
type NegoReply struct {
	SessionID  string `json:"session_id"`
	Accepted   bool   `json:"accepted"`
	PriceCents int64  `json:"price_cents"` // final price when accepted
	AskCents   int64  `json:"ask_cents"`   // seller's counter-offer otherwise
	Round      int    `json:"round"`
	Over       bool   `json:"over"` // session ended (accepted or round limit)
	Sale       *Sale  `json:"sale,omitempty"`
}

type negoSession struct {
	id        string
	buyerID   string
	productID string
	listPrice int64
	floor     int64
	ask       int64
	round     int
	over      bool
}

// NegotiateOpen starts a session for productID with the buyer's opening
// offer and returns the seller's first response.
func (s *Server) NegotiateOpen(buyerID, productID string, offerCents int64) (NegoReply, error) {
	p, err := s.cat.Get(productID)
	if err != nil {
		return NegoReply{}, fmt.Errorf("%w: %s", ErrNotFound, productID)
	}
	if p.Stock <= 0 {
		return NegoReply{}, fmt.Errorf("%w: %s", ErrSoldOut, productID)
	}
	s.mu.Lock()
	s.nextNego++
	sess := &negoSession{
		id:        fmt.Sprintf("nego-%06d", s.nextNego),
		buyerID:   buyerID,
		productID: productID,
		listPrice: p.PriceCents,
		floor:     int64(float64(p.PriceCents) * reserveFraction),
		ask:       p.PriceCents,
	}
	s.negos[sess.id] = sess
	s.mu.Unlock()
	return s.NegotiateOffer(sess.id, offerCents)
}

// NegotiateOffer advances a session with the buyer's next offer.
func (s *Server) NegotiateOffer(sessionID string, offerCents int64) (NegoReply, error) {
	s.mu.Lock()
	sess, ok := s.negos[sessionID]
	if !ok {
		s.mu.Unlock()
		return NegoReply{}, fmt.Errorf("%w: %s", ErrNoSession, sessionID)
	}
	if sess.over {
		s.mu.Unlock()
		return NegoReply{}, fmt.Errorf("%w: %s", ErrSessionOver, sessionID)
	}
	sess.round++
	reply := NegoReply{SessionID: sess.id, Round: sess.round}

	switch {
	case offerCents >= sess.ask:
		// Deal at the buyer's offer (capped at the ask — the seller never
		// charges more than it was asking).
		price := offerCents
		if price > sess.ask {
			price = sess.ask
		}
		sess.over = true
		reply.Accepted = true
		reply.Over = true
		reply.PriceCents = price
		s.mu.Unlock()
		if _, err := s.cat.AdjustStock(sess.productID, -1); err != nil {
			return NegoReply{}, fmt.Errorf("%w: %s", ErrSoldOut, sess.productID)
		}
		sale := s.recordSale(sess.productID, sess.buyerID, price, "negotiation")
		reply.Sale = &sale
		return reply, nil
	default:
		// Concede toward the offer, never below the floor.
		concession := int64(concessionRate * float64(sess.ask-offerCents))
		sess.ask -= concession
		if sess.ask < sess.floor {
			sess.ask = sess.floor
		}
		reply.AskCents = sess.ask
		if sess.round >= maxNegoRounds {
			sess.over = true
			reply.Over = true
		}
		s.mu.Unlock()
		return reply, nil
	}
}

// HaggleToBudget is a convenience buyer strategy used by Mobile Buyer
// Agents: open at openFraction of list, raise toward the seller's counter
// while staying within budgetCents. It returns the final reply (accepted or
// not) after at most maxNegoRounds offers.
func (s *Server) HaggleToBudget(buyerID, productID string, budgetCents int64) (NegoReply, error) {
	p, err := s.cat.Get(productID)
	if err != nil {
		return NegoReply{}, fmt.Errorf("%w: %s", ErrNotFound, productID)
	}
	offer := int64(0.7 * float64(p.PriceCents))
	if offer > budgetCents {
		offer = budgetCents
	}
	reply, err := s.NegotiateOpen(buyerID, productID, offer)
	if err != nil {
		return NegoReply{}, err
	}
	for !reply.Over {
		next := BuyerNextOffer(offer, reply.AskCents, budgetCents)
		if next <= offer {
			// Cannot improve within budget: give up.
			return reply, nil
		}
		offer = next
		reply, err = s.NegotiateOffer(reply.SessionID, offer)
		if err != nil {
			return NegoReply{}, err
		}
	}
	return reply, nil
}

// ProbeNextOffer is the price-discovery strategy: raise the offer a quarter
// of the remaining gap each round while always staying below the ask, so
// the seller keeps conceding and the buyer learns the achievable floor
// without ever committing to a purchase. It returns done when the offer can
// no longer move. This is the chatty multi-round interaction of experiment
// C2 — the workload where agent migration beats remote calls.
func ProbeNextOffer(offer, ask int64) (next int64, done bool) {
	if ask <= 0 {
		return 0, true
	}
	step := (ask - offer) / 4
	if step < 1 {
		return 0, true
	}
	next = offer + step
	if next >= ask {
		next = ask - 1
	}
	if next <= offer {
		return 0, true
	}
	return next, false
}

// BuyerNextOffer is the deterministic buyer concession rule shared by
// HaggleToBudget and the Mobile Buyer Agent: move halfway toward the ask,
// and once the remaining gap is within 2% of the ask, meet it — a rational
// buyer does not walk away from a deal over a rounding gap. Offers never
// exceed budget.
func BuyerNextOffer(offer, ask, budget int64) int64 {
	next := offer + (ask-offer)/2
	if ask-next <= ask/50 {
		next = ask
	}
	if next > budget {
		next = budget
	}
	return next
}
