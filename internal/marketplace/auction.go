package marketplace

import (
	"fmt"
)

// Auctions are English (ascending, open-cry): bids must strictly exceed the
// current high bid and meet the reserve; when the auction closes the high
// bidder wins at their bid. Closing is explicit (by the seller or the
// platform's auction scheduler) so tests and experiments are deterministic.

// AuctionOpenRequest opens an auction for a product.
type AuctionOpenRequest struct {
	ProductID    string `json:"product_id"`
	ReserveCents int64  `json:"reserve_cents"`
}

// AuctionOpenReply carries the new auction id.
type AuctionOpenReply struct {
	AuctionID string `json:"auction_id"`
}

// AuctionBidRequest places a bid.
type AuctionBidRequest struct {
	AuctionID   string `json:"auction_id"`
	BidderID    string `json:"bidder_id"`
	AmountCents int64  `json:"amount_cents"`
}

// AuctionCloseRequest closes or inspects an auction.
type AuctionCloseRequest struct {
	AuctionID string `json:"auction_id"`
}

// AuctionStatus reports the public state of an auction.
type AuctionStatus struct {
	AuctionID    string `json:"auction_id"`
	ProductID    string `json:"product_id"`
	ReserveCents int64  `json:"reserve_cents"`
	HighBid      int64  `json:"high_bid"`
	HighBidder   string `json:"high_bidder"`
	Bids         int    `json:"bids"`
	Closed       bool   `json:"closed"`
	Sold         bool   `json:"sold"`
	Sale         *Sale  `json:"sale,omitempty"`
}

// Auction is the internal auction state.
type Auction struct {
	id         string
	productID  string
	reserve    int64
	highBid    int64
	highBidder string
	bids       int
	closed     bool
	sold       bool
	sale       *Sale
}

func (a *Auction) status() AuctionStatus {
	st := AuctionStatus{
		AuctionID:    a.id,
		ProductID:    a.productID,
		ReserveCents: a.reserve,
		HighBid:      a.highBid,
		HighBidder:   a.highBidder,
		Bids:         a.bids,
		Closed:       a.closed,
		Sold:         a.sold,
	}
	if a.sale != nil {
		sale := *a.sale
		st.Sale = &sale
	}
	return st
}

// AuctionOpen opens an English auction for one unit of productID with the
// given reserve price (0 = no reserve).
func (s *Server) AuctionOpen(productID string, reserveCents int64) (string, error) {
	p, err := s.cat.Get(productID)
	if err != nil {
		return "", fmt.Errorf("%w: %s", ErrNotFound, productID)
	}
	if p.Stock <= 0 {
		return "", fmt.Errorf("%w: %s", ErrSoldOut, productID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextAuc++
	a := &Auction{
		id:        fmt.Sprintf("auc-%06d", s.nextAuc),
		productID: productID,
		reserve:   reserveCents,
	}
	s.auctions[a.id] = a
	return a.id, nil
}

// AuctionBid places a bid: it must strictly exceed the current high bid and
// meet the reserve.
func (s *Server) AuctionBid(auctionID, bidderID string, amountCents int64) (AuctionStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.auctions[auctionID]
	if !ok {
		return AuctionStatus{}, fmt.Errorf("%w: %s", ErrNoAuction, auctionID)
	}
	if a.closed {
		return a.status(), fmt.Errorf("%w: %s", ErrAuctionClosed, auctionID)
	}
	if amountCents < a.reserve {
		return a.status(), fmt.Errorf("%w: bid %d, reserve %d", ErrBelowReserve, amountCents, a.reserve)
	}
	if amountCents <= a.highBid {
		return a.status(), fmt.Errorf("%w: bid %d, high %d", ErrBidTooLow, amountCents, a.highBid)
	}
	a.highBid = amountCents
	a.highBidder = bidderID
	a.bids++
	return a.status(), nil
}

// AuctionClose ends the auction. If there is a high bidder the product is
// sold to them at the high bid.
func (s *Server) AuctionClose(auctionID string) (AuctionStatus, error) {
	s.mu.Lock()
	a, ok := s.auctions[auctionID]
	if !ok {
		s.mu.Unlock()
		return AuctionStatus{}, fmt.Errorf("%w: %s", ErrNoAuction, auctionID)
	}
	if a.closed {
		st := a.status()
		s.mu.Unlock()
		return st, fmt.Errorf("%w: %s", ErrAuctionClosed, auctionID)
	}
	a.closed = true
	winner := a.highBidder
	price := a.highBid
	productID := a.productID
	s.mu.Unlock()

	if winner == "" {
		s.mu.Lock()
		st := a.status()
		s.mu.Unlock()
		return st, nil
	}
	if _, err := s.cat.AdjustStock(productID, -1); err != nil {
		return AuctionStatus{}, fmt.Errorf("%w: %s", ErrSoldOut, productID)
	}
	sale := s.recordSale(productID, winner, price, "auction")
	s.mu.Lock()
	a.sold = true
	a.sale = &sale
	st := a.status()
	s.mu.Unlock()
	return st, nil
}

// AuctionStatus reports the state of an auction without changing it.
func (s *Server) AuctionStatus(auctionID string) (AuctionStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.auctions[auctionID]
	if !ok {
		return AuctionStatus{}, fmt.Errorf("%w: %s", ErrNoAuction, auctionID)
	}
	return a.status(), nil
}

// OpenAuctions lists the ids of auctions still accepting bids.
func (s *Server) OpenAuctions() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.auctions))
	for id, a := range s.auctions {
		if !a.closed {
			out = append(out, id)
		}
	}
	return out
}
