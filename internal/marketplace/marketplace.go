// Package marketplace implements the paper's Marketplace server (§3.2
// item 2): "a place that lets the Mobile Agent of the Buyer and the Mobile
// Agent of the Seller trade with each other", providing "kinds of trading
// services such as: information query, negotiations, and auctions."
//
// A Server owns a product catalog and exposes the three trading services.
// Its public face inside the agent world is the Marketplace Server Agent
// (MSA, visible in Fig 3.1): an aglet with the well-known id "msa" that
// visiting Mobile Buyer Agents message after migrating in. Every service is
// also available as a direct method for tests and for the conventional-RPC
// baseline of experiment C2.
package marketplace

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"agentrec/internal/aglet"
	"agentrec/internal/catalog"
)

// MSAID is the well-known agent id of the Marketplace Server Agent.
const MSAID = "msa"

// Errors reported by the trading services.
var (
	ErrNotFound      = errors.New("marketplace: product not found")
	ErrSoldOut       = errors.New("marketplace: sold out")
	ErrTooExpensive  = errors.New("marketplace: price above buyer maximum")
	ErrNoSession     = errors.New("marketplace: no such negotiation session")
	ErrSessionOver   = errors.New("marketplace: negotiation already concluded")
	ErrNoAuction     = errors.New("marketplace: no such auction")
	ErrAuctionClosed = errors.New("marketplace: auction closed")
	ErrBidTooLow     = errors.New("marketplace: bid not above current high bid")
	ErrBelowReserve  = errors.New("marketplace: bid below reserve")
)

// Server is one marketplace. Construct with NewServer. All methods are safe
// for concurrent use.
type Server struct {
	host *aglet.Host
	cat  *catalog.Catalog

	mu       sync.Mutex
	negos    map[string]*negoSession
	auctions map[string]*Auction
	nextNego int
	nextAuc  int
	nextRcpt int
	salesLog []Sale
}

// Sale records one completed transaction, however it was reached.
type Sale struct {
	Receipt    string `json:"receipt"`
	ProductID  string `json:"product_id"`
	BuyerID    string `json:"buyer_id"`
	PriceCents int64  `json:"price_cents"`
	Via        string `json:"via"` // "buy", "negotiation", "auction"
}

// NewServer creates a marketplace over cat and installs its MSA on host.
// The MSA factory is registered on host's registry under a host-unique type
// name, so multiple marketplaces can share one registry.
func NewServer(host *aglet.Host, cat *catalog.Catalog, reg *aglet.Registry) (*Server, error) {
	s := &Server{
		host:     host,
		cat:      cat,
		negos:    make(map[string]*negoSession),
		auctions: make(map[string]*Auction),
	}
	typeName := "msa:" + host.Name()
	reg.Register(typeName, func() aglet.Aglet { return &msaAgent{srv: s} })
	if _, err := host.Create(typeName, MSAID, nil); err != nil {
		return nil, fmt.Errorf("marketplace: creating MSA on %s: %w", host.Name(), err)
	}
	return s, nil
}

// Host returns the aglet host the marketplace runs on.
func (s *Server) Host() *aglet.Host { return s.host }

// Catalog returns the marketplace's catalog.
func (s *Server) Catalog() *catalog.Catalog { return s.cat }

// Query answers a merchandise search.
func (s *Server) Query(q catalog.Query) []catalog.Match {
	return s.cat.Search(q)
}

// Buy purchases one unit of productID at list price if it does not exceed
// maxPriceCents (0 = unbounded), returning the sale record.
func (s *Server) Buy(buyerID, productID string, maxPriceCents int64) (Sale, error) {
	p, err := s.cat.Get(productID)
	if err != nil {
		return Sale{}, fmt.Errorf("%w: %s", ErrNotFound, productID)
	}
	if maxPriceCents > 0 && p.PriceCents > maxPriceCents {
		return Sale{}, fmt.Errorf("%w: %s costs %d, max %d", ErrTooExpensive, productID, p.PriceCents, maxPriceCents)
	}
	if _, err := s.cat.AdjustStock(productID, -1); err != nil {
		return Sale{}, fmt.Errorf("%w: %s", ErrSoldOut, productID)
	}
	return s.recordSale(productID, buyerID, p.PriceCents, "buy"), nil
}

func (s *Server) recordSale(productID, buyerID string, price int64, via string) Sale {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextRcpt++
	sale := Sale{
		Receipt:    fmt.Sprintf("%s-rcpt-%06d", s.host.Name(), s.nextRcpt),
		ProductID:  productID,
		BuyerID:    buyerID,
		PriceCents: price,
		Via:        via,
	}
	s.salesLog = append(s.salesLog, sale)
	return sale
}

// Sales returns a copy of the sales log.
func (s *Server) Sales() []Sale {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sale, len(s.salesLog))
	copy(out, s.salesLog)
	return out
}

// --- MSA: the agent face of the services ---

// Message kinds the MSA understands.
const (
	KindQuery        = "query"
	KindGet          = "get"
	KindBuy          = "buy"
	KindNegoOpen     = "nego-open"
	KindNegoOffer    = "nego-offer"
	KindAuctionOpen  = "auction-open"
	KindAuctionBid   = "auction-bid"
	KindAuctionClose = "auction-close"
	KindAuctionState = "auction-status"
)

// QueryRequest asks for merchandise matching Query.
type QueryRequest struct {
	Query catalog.Query `json:"query"`
}

// QueryReply carries the matches.
type QueryReply struct {
	Market  string          `json:"market"`
	Matches []catalog.Match `json:"matches"`
}

// GetRequest fetches one product by id.
type GetRequest struct {
	ProductID string `json:"product_id"`
}

// GetReply carries the product.
type GetReply struct {
	Product *catalog.Product `json:"product"`
}

// BuyRequest purchases a product.
type BuyRequest struct {
	BuyerID       string `json:"buyer_id"`
	ProductID     string `json:"product_id"`
	MaxPriceCents int64  `json:"max_price_cents"`
}

// BuyReply reports the sale.
type BuyReply struct {
	Sale Sale `json:"sale"`
}

// msaAgent adapts Server methods to aglet messages. It never migrates; its
// state is the server pointer injected at construction.
type msaAgent struct {
	aglet.Base
	srv *Server
}

func (a *msaAgent) HandleMessage(_ *aglet.Context, msg aglet.Message) (aglet.Message, error) {
	switch msg.Kind {
	case KindQuery:
		var req QueryRequest
		if err := json.Unmarshal(msg.Data, &req); err != nil {
			return aglet.Message{}, fmt.Errorf("marketplace: bad query request: %w", err)
		}
		return marshalReply(KindQuery, QueryReply{Market: a.srv.host.Name(), Matches: a.srv.Query(req.Query)})
	case KindGet:
		var req GetRequest
		if err := json.Unmarshal(msg.Data, &req); err != nil {
			return aglet.Message{}, fmt.Errorf("marketplace: bad get request: %w", err)
		}
		p, err := a.srv.cat.Get(req.ProductID)
		if err != nil {
			return aglet.Message{}, fmt.Errorf("%w: %s", ErrNotFound, req.ProductID)
		}
		return marshalReply(KindGet, GetReply{Product: p})
	case KindBuy:
		var req BuyRequest
		if err := json.Unmarshal(msg.Data, &req); err != nil {
			return aglet.Message{}, fmt.Errorf("marketplace: bad buy request: %w", err)
		}
		sale, err := a.srv.Buy(req.BuyerID, req.ProductID, req.MaxPriceCents)
		if err != nil {
			return aglet.Message{}, err
		}
		return marshalReply(KindBuy, BuyReply{Sale: sale})
	case KindNegoOpen:
		var req NegoOpenRequest
		if err := json.Unmarshal(msg.Data, &req); err != nil {
			return aglet.Message{}, fmt.Errorf("marketplace: bad nego-open: %w", err)
		}
		rep, err := a.srv.NegotiateOpen(req.BuyerID, req.ProductID, req.OfferCents)
		if err != nil {
			return aglet.Message{}, err
		}
		return marshalReply(KindNegoOpen, rep)
	case KindNegoOffer:
		var req NegoOfferRequest
		if err := json.Unmarshal(msg.Data, &req); err != nil {
			return aglet.Message{}, fmt.Errorf("marketplace: bad nego-offer: %w", err)
		}
		rep, err := a.srv.NegotiateOffer(req.SessionID, req.OfferCents)
		if err != nil {
			return aglet.Message{}, err
		}
		return marshalReply(KindNegoOffer, rep)
	case KindAuctionOpen:
		var req AuctionOpenRequest
		if err := json.Unmarshal(msg.Data, &req); err != nil {
			return aglet.Message{}, fmt.Errorf("marketplace: bad auction-open: %w", err)
		}
		id, err := a.srv.AuctionOpen(req.ProductID, req.ReserveCents)
		if err != nil {
			return aglet.Message{}, err
		}
		return marshalReply(KindAuctionOpen, AuctionOpenReply{AuctionID: id})
	case KindAuctionBid:
		var req AuctionBidRequest
		if err := json.Unmarshal(msg.Data, &req); err != nil {
			return aglet.Message{}, fmt.Errorf("marketplace: bad auction-bid: %w", err)
		}
		st, err := a.srv.AuctionBid(req.AuctionID, req.BidderID, req.AmountCents)
		if err != nil {
			return aglet.Message{}, err
		}
		return marshalReply(KindAuctionBid, st)
	case KindAuctionClose:
		var req AuctionCloseRequest
		if err := json.Unmarshal(msg.Data, &req); err != nil {
			return aglet.Message{}, fmt.Errorf("marketplace: bad auction-close: %w", err)
		}
		st, err := a.srv.AuctionClose(req.AuctionID)
		if err != nil {
			return aglet.Message{}, err
		}
		return marshalReply(KindAuctionClose, st)
	case KindAuctionState:
		var req AuctionCloseRequest // same shape: just the id
		if err := json.Unmarshal(msg.Data, &req); err != nil {
			return aglet.Message{}, fmt.Errorf("marketplace: bad auction-status: %w", err)
		}
		st, err := a.srv.AuctionStatus(req.AuctionID)
		if err != nil {
			return aglet.Message{}, err
		}
		return marshalReply(KindAuctionState, st)
	default:
		return aglet.Message{}, fmt.Errorf("marketplace: MSA does not understand %q", msg.Kind)
	}
}

func marshalReply(kind string, v any) (aglet.Message, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return aglet.Message{}, fmt.Errorf("marketplace: encoding %s reply: %w", kind, err)
	}
	return aglet.Message{Kind: kind, Data: data}, nil
}
