package similarity

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"agentrec/internal/profile"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCosine(t *testing.T) {
	tests := []struct {
		name string
		a, b Vec
		want float64
	}{
		{"identical", Vec{"x": 1, "y": 2}, Vec{"x": 1, "y": 2}, 1},
		{"orthogonal", Vec{"x": 1}, Vec{"y": 1}, 0},
		{"empty a", Vec{}, Vec{"x": 1}, 0},
		{"both empty", Vec{}, Vec{}, 0},
		{"scale invariant", Vec{"x": 1, "y": 1}, Vec{"x": 10, "y": 10}, 1},
		{"45 degrees", Vec{"x": 1}, Vec{"x": 1, "y": 1}, 1 / math.Sqrt2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Cosine(tt.a, tt.b); !almostEq(got, tt.want) {
				t.Errorf("Cosine = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCosineSymmetricProperty(t *testing.T) {
	fn := func(xs, ys []uint8) bool {
		a, b := Vec{}, Vec{}
		for i, x := range xs {
			a[string(rune('a'+i%8))] = float64(x)
		}
		for i, y := range ys {
			b[string(rune('a'+i%8))] = float64(y)
		}
		s1, s2 := Cosine(a, b), Cosine(b, a)
		return almostEq(s1, s2) && s1 >= 0 && s1 <= 1+1e-9
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestJaccard(t *testing.T) {
	if got := Jaccard(Vec{"a": 1, "b": 1}, Vec{"b": 9, "c": 9}); !almostEq(got, 1.0/3) {
		t.Errorf("Jaccard = %v, want 1/3", got)
	}
	if Jaccard(Vec{}, Vec{}) != 0 {
		t.Error("Jaccard of empties must be 0")
	}
	if got := Jaccard(Vec{"a": 1}, Vec{"a": 5}); !almostEq(got, 1) {
		t.Errorf("Jaccard ignores weights: %v", got)
	}
}

func TestOverlap(t *testing.T) {
	if got := Overlap(Vec{"a": 1}, Vec{"a": 1, "b": 1, "c": 1}); !almostEq(got, 1) {
		t.Errorf("Overlap = %v, want 1 (subset)", got)
	}
	if Overlap(Vec{}, Vec{"a": 1}) != 0 {
		t.Error("Overlap with empty must be 0")
	}
}

func TestPearson(t *testing.T) {
	// Perfectly linearly related over the union.
	a := Vec{"x": 1, "y": 2, "z": 3}
	b := Vec{"x": 2, "y": 4, "z": 6}
	if got := Pearson(a, b); !almostEq(got, 1) {
		t.Errorf("Pearson = %v, want 1", got)
	}
	// Anti-correlated.
	c := Vec{"x": 3, "y": 2, "z": 1}
	if got := Pearson(a, c); !almostEq(got, -1) {
		t.Errorf("Pearson = %v, want -1", got)
	}
	// No variance on one side.
	d := Vec{"x": 5, "y": 5, "z": 5}
	if got := Pearson(a, d); got != 0 {
		t.Errorf("Pearson with flat vector = %v, want 0", got)
	}
	if Pearson(Vec{}, Vec{}) != 0 {
		t.Error("Pearson of empties must be 0")
	}
}

func buyer(id, cat string, terms map[string]float64, times int) *profile.Profile {
	p, _ := profile.NewProfileAlpha(id, 1.0)
	for i := 0; i < times; i++ {
		p.Observe(profile.Evidence{Category: cat, Terms: terms, Behaviour: profile.BehaviourBuy})
	}
	return p
}

func TestPaperSimilarityAgreeingConsumers(t *testing.T) {
	x := buyer("x", "laptop", map[string]float64{"ssd": 1, "light": 0.5}, 3)
	y := buyer("y", "laptop", map[string]float64{"ssd": 1, "light": 0.5}, 3)
	res, err := PaperSimilarity(x, y, "laptop", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Discarded {
		t.Fatal("agreeing consumers discarded")
	}
	if !almostEq(res.Score, 1) {
		t.Errorf("Score = %v, want 1", res.Score)
	}
}

func TestPaperSimilarityDiscardGate(t *testing.T) {
	// Same direction of taste but very different intensity: x bought 10
	// times, y browsed once. Tx and Ty diverge, the gate fires.
	x := buyer("x", "laptop", map[string]float64{"ssd": 1}, 10)
	y := buyer("y", "laptop", map[string]float64{"ssd": 1}, 1)
	res, err := PaperSimilarity(x, y, "laptop", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Discarded {
		t.Fatalf("gate did not fire: Tx=%v Ty=%v", res.Tx, res.Ty)
	}
	if res.Score != 0 {
		t.Errorf("discarded Score = %v, want 0", res.Score)
	}
	if res.Raw <= 0.9 {
		t.Errorf("Raw should stay high for the ablation: %v", res.Raw)
	}
}

func TestPaperSimilarityToleranceWidensGate(t *testing.T) {
	x := buyer("x", "laptop", map[string]float64{"ssd": 1}, 4)
	y := buyer("y", "laptop", map[string]float64{"ssd": 1}, 3)
	// |4-3|/4 = 0.25
	strict, _ := PaperSimilarity(x, y, "laptop", 0.2)
	loose, _ := PaperSimilarity(x, y, "laptop", 0.3)
	if !strict.Discarded {
		t.Error("tolerance 0.2 should discard a 0.25 disagreement")
	}
	if loose.Discarded {
		t.Error("tolerance 0.3 should keep a 0.25 disagreement")
	}
}

func TestPaperSimilarityOneSidedKnowledgeDiscarded(t *testing.T) {
	x := buyer("x", "laptop", map[string]float64{"ssd": 1}, 2)
	y := buyer("y", "camera", map[string]float64{"lens": 1}, 2)
	res, _ := PaperSimilarity(x, y, "laptop", 0.5)
	if !res.Discarded {
		t.Error("pair with one-sided category knowledge must be discarded")
	}
}

func TestPaperSimilarityBothZeroNotDiscarded(t *testing.T) {
	x := buyer("x", "camera", map[string]float64{"lens": 1}, 1)
	y := buyer("y", "camera", map[string]float64{"lens": 1}, 1)
	// Neither knows "laptop": no evidence is not disagreement.
	res, _ := PaperSimilarity(x, y, "laptop", 0.1)
	if res.Discarded {
		t.Error("pair with no category evidence on either side was discarded")
	}
	if !almostEq(res.Score, 1) {
		t.Errorf("Score = %v (profiles identical elsewhere)", res.Score)
	}
}

func TestPaperSimilarityBadTolerance(t *testing.T) {
	x, y := buyer("x", "c", map[string]float64{"t": 1}, 1), buyer("y", "c", map[string]float64{"t": 1}, 1)
	for _, tol := range []float64{-0.1, 1.1} {
		if _, err := PaperSimilarity(x, y, "c", tol); !errors.Is(err, ErrBadThreshold) {
			t.Errorf("tolerance %v accepted", tol)
		}
	}
}

func TestPaperSimilaritySymmetric(t *testing.T) {
	x := buyer("x", "laptop", map[string]float64{"ssd": 1, "gpu": 2}, 2)
	y := buyer("y", "laptop", map[string]float64{"ssd": 2, "gpu": 1}, 2)
	r1, _ := PaperSimilarity(x, y, "laptop", 0.5)
	r2, _ := PaperSimilarity(y, x, "laptop", 0.5)
	if !almostEq(r1.Score, r2.Score) || r1.Discarded != r2.Discarded {
		t.Errorf("asymmetric: %+v vs %+v", r1, r2)
	}
}

func TestTopKRanksAndFilters(t *testing.T) {
	target := buyer("target", "laptop", map[string]float64{"ssd": 1, "light": 1}, 3)
	cands := []*profile.Profile{
		buyer("close", "laptop", map[string]float64{"ssd": 1, "light": 0.9}, 3),
		buyer("far", "laptop", map[string]float64{"gamer": 1}, 3),
		buyer("gated", "laptop", map[string]float64{"ssd": 1, "light": 1}, 30), // intensity mismatch
		buyer("target", "laptop", map[string]float64{"ssd": 1}, 3),             // self, skipped
	}
	got, err := TopK(target, cands, "laptop", 0.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0].UserID != "close" {
		t.Fatalf("TopK = %+v", got)
	}
	for _, n := range got {
		if n.UserID == "gated" || n.UserID == "target" {
			t.Errorf("TopK kept %s", n.UserID)
		}
	}
}

func TestTopKAllWhenNegativeK(t *testing.T) {
	target := buyer("t", "c", map[string]float64{"x": 1}, 2)
	cands := []*profile.Profile{
		buyer("a", "c", map[string]float64{"x": 1}, 2),
		buyer("b", "c", map[string]float64{"x": 1}, 2),
	}
	got, err := TopK(target, cands, "c", 0.5, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("TopK(-1) = %d neighbors, want 2", len(got))
	}
}

func TestTopKDeterministicTieBreak(t *testing.T) {
	target := buyer("t", "c", map[string]float64{"x": 1}, 2)
	cands := []*profile.Profile{
		buyer("bbb", "c", map[string]float64{"x": 1}, 2),
		buyer("aaa", "c", map[string]float64{"x": 1}, 2),
	}
	for i := 0; i < 10; i++ {
		got, _ := TopK(target, cands, "c", 0.5, 2)
		if got[0].UserID != "aaa" {
			t.Fatalf("tie break not deterministic: %+v", got)
		}
	}
}

func TestTopKPropagatesBadTolerance(t *testing.T) {
	target := buyer("t", "c", map[string]float64{"x": 1}, 1)
	if _, err := TopK(target, []*profile.Profile{buyer("a", "c", map[string]float64{"x": 1}, 1)}, "c", 2, 1); err == nil {
		t.Fatal("bad tolerance accepted")
	}
}

// Property: the discard gate only ever zeroes scores; it never invents
// similarity. Score is either 0 or equals Raw.
func TestGateOnlyZeroesProperty(t *testing.T) {
	fn := func(nx, ny uint8) bool {
		x := buyer("x", "c", map[string]float64{"t": 1}, int(nx%20)+1)
		y := buyer("y", "c", map[string]float64{"t": 1}, int(ny%20)+1)
		res, err := PaperSimilarity(x, y, "c", 0.3)
		if err != nil {
			return false
		}
		if res.Discarded {
			return res.Score == 0
		}
		return almostEq(res.Score, res.Raw)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
