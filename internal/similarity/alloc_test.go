package similarity

import (
	"fmt"
	"math/rand/v2"
	"testing"
)

// allocCommunity builds n candidates sharing a 32-term vocabulary, with
// cached norms (the hot-path shape the engine feeds TopKStream).
func allocCommunity(n int) (Vec, []Candidate) {
	rng := rand.New(rand.NewPCG(5, 5))
	term := func(i int) string { return fmt.Sprintf("t%02d", i) }
	target := Vec{}
	for i := 0; i < 12; i++ {
		target[term(rng.IntN(32))] = 0.2 + rng.Float64()
	}
	cands := make([]Candidate, n)
	for i := range cands {
		v := Vec{}
		for j := 0; j < 12; j++ {
			v[term(rng.IntN(32))] = 0.2 + rng.Float64()
		}
		cands[i] = Candidate{
			UserID: fmt.Sprintf("u%05d", i),
			Vec:    v,
			Ty:     0.8 + 0.4*rng.Float64(),
			Norm:   Norm(v),
		}
	}
	return target, cands
}

// TestTopKStreamZeroAlloc is the mechanical-sympathy gate for the scoring
// core: TopKStream must allocate a small constant (pooled scratch, result
// copy), never per candidate. It compares allocations per run between a
// small and a 64x larger community — any per-candidate allocation shows up
// as growth.
func TestTopKStreamZeroAlloc(t *testing.T) {
	measure := func(n int) float64 {
		target, cands := allocCommunity(n)
		seq := func(yield func(Candidate) bool) {
			for i := range cands {
				if !yield(cands[i]) {
					return
				}
			}
		}
		// Warm the scratch pool so the first-use allocation is not billed.
		if _, err := TopKStream("self", target, 1, 0.5, seq, 10); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(50, func() {
			if _, err := TopKStream("self", target, 1, 0.5, seq, 10); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := measure(64)
	large := measure(4096)
	if large-small > 0.5 {
		t.Fatalf("allocations grow with community size: %.1f at 64 candidates, %.1f at 4096", small, large)
	}
	const fixedBudget = 6 // result slice + pool jitter, nothing else
	if large > fixedBudget {
		t.Fatalf("fixed overhead %.1f allocs/op exceeds budget %d", large, fixedBudget)
	}
}
