// Package similarity implements the profile-to-profile similarity the
// recommendation mechanism uses to find like-minded consumers (§4.4,
// Fig 4.5), plus the standard measures it is compared against.
//
// The paper's algorithm (quoted from Middleton) works on the weighted term
// vectors of two consumer profiles, with one twist spelled out in §4.4: "If
// Consumer X's preference merchandise item value Tx [is] different from
// other consumer Y's preference merchandise item value Ty, the similarity
// result will be discarded." That is a disagreement gate: when the two
// consumers' aggregate preference for the merchandise category under
// consideration diverges beyond a tolerance, the pair contributes no
// recommendation regardless of raw vector similarity. PaperSimilarity
// implements cosine-over-term-vectors guarded by that gate; the F4.5
// experiment ablates the gate against plain cosine.
package similarity

import (
	"errors"
	"fmt"
	"iter"
	"math"
	"slices"
	"sync"

	"agentrec/internal/profile"
)

// ErrBadThreshold reports a discard threshold outside [0, 1].
var ErrBadThreshold = errors.New("similarity: discard threshold must be in [0, 1]")

// Vec is a sparse non-negative weight vector, keyed by term.
type Vec = map[string]float64

// Cosine returns the cosine similarity of a and b in [0, 1] for
// non-negative vectors; 0 when either is empty or zero.
func Cosine(a, b Vec) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Norm returns the Euclidean norm of v. Callers scoring one vector against
// many candidates compute it once (profile.Summary caches it) instead of
// letting Cosine re-sum it per pair.
func Norm(v Vec) float64 {
	var sq float64
	for _, x := range v {
		sq += x * x
	}
	return math.Sqrt(sq)
}

// Dot returns the sparse dot product of a and b.
func Dot(a, b Vec) float64 {
	var dot float64
	for k, x := range a {
		if y, ok := b[k]; ok {
			dot += x * y
		}
	}
	return dot
}

// Jaccard returns |keys(a) ∩ keys(b)| / |keys(a) ∪ keys(b)|, ignoring
// weights; 0 for two empty vectors.
func Jaccard(a, b Vec) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	for k := range a {
		if _, ok := b[k]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// Overlap returns the overlap coefficient |∩| / min(|a|, |b|); 0 when
// either vector is empty.
func Overlap(a, b Vec) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	for k := range a {
		if _, ok := b[k]; ok {
			inter++
		}
	}
	m := len(a)
	if len(b) < m {
		m = len(b)
	}
	return float64(inter) / float64(m)
}

// Pearson returns the Pearson correlation of a and b over the union of
// their keys (absent keys contribute 0), in [-1, 1]; 0 when either side has
// no variance.
func Pearson(a, b Vec) float64 {
	keys := make(map[string]struct{}, len(a)+len(b))
	for k := range a {
		keys[k] = struct{}{}
	}
	for k := range b {
		keys[k] = struct{}{}
	}
	n := float64(len(keys))
	if n == 0 {
		return 0
	}
	var sa, sb float64
	for k := range keys {
		sa += a[k]
		sb += b[k]
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for k := range keys {
		dx, dy := a[k]-ma, b[k]-mb
		cov += dx * dy
		va += dx * dx
		vb += dy * dy
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// Result is the outcome of the paper's similarity computation for a pair of
// consumers with respect to one merchandise category.
type Result struct {
	Score     float64 // cosine over the full profile vectors; 0 if discarded
	Raw       float64 // the undiscarded cosine, kept for the F4.5 ablation
	Discarded bool    // true when the preference-value gate fired
	Tx, Ty    float64 // the compared preference values
}

// PaperSimilarity computes the Fig 4.5 similarity between consumers x and y
// with respect to category: cosine over the flattened profile vectors,
// discarded (Score 0) when the two consumers' preference values for the
// category disagree by more than tolerance, measured relatively:
//
//	|Tx − Ty| / max(Tx, Ty) > tolerance  ⇒  discard
//
// A pair where only one side knows the category at all (the other's T is 0)
// is maximally different and always discarded for tolerance < 1. Pairs are
// never discarded when both T values are 0 — no evidence is not
// disagreement; the raw cosine (likely 0 anyway) stands.
func PaperSimilarity(x, y *profile.Profile, category string, tolerance float64) (Result, error) {
	if tolerance < 0 || tolerance > 1 {
		return Result{}, fmt.Errorf("%w: %v", ErrBadThreshold, tolerance)
	}
	res := Result{
		Tx: x.PreferenceValue(category),
		Ty: y.PreferenceValue(category),
	}
	res.Raw = Cosine(x.Vector(), y.Vector())
	res.Score = res.Raw
	if GateDiscards(res.Tx, res.Ty, tolerance) {
		res.Discarded = true
		res.Score = 0
	}
	return res, nil
}

// GateDiscards reports whether the Fig 4.5 preference-value gate fires for
// the pair of aggregate preferences (tx, ty):
//
//	|Tx − Ty| / max(Tx, Ty) > tolerance  ⇒  discard
//
// Both values zero is never a discard — no evidence is not disagreement.
func GateDiscards(tx, ty, tolerance float64) bool {
	max := math.Max(tx, ty)
	return max > 0 && math.Abs(tx-ty)/max > tolerance
}

// Neighbor is one candidate consumer ranked by similarity.
type Neighbor struct {
	UserID string
	Score  float64
	Raw    float64
	Tx, Ty float64
}

// Candidate is one consumer in a streaming neighbour search, carrying
// precomputed profile data (see profile.Summary) so the ranking loop neither
// re-flattens vectors nor re-sums preference values per pair. Norm and Dense
// are optional precomputed acceleration data: a zero Norm makes TopKStream
// recompute it from Vec, and Dense only matters to the ANN index.
type Candidate struct {
	UserID string
	Vec    Vec       // flattened profile vector
	Ty     float64   // preference value for the category under consideration
	Norm   float64   // cached Euclidean norm of Vec (0 = unknown)
	Dense  []float32 // shared profile.Summary.Dense projection (may be nil)
}

// TopK ranks candidates by PaperSimilarity against target with respect to
// category and returns the k most similar non-discarded, non-zero neighbors
// in descending score order (ties broken by UserID for determinism). k < 0
// returns all.
func TopK(target *profile.Profile, candidates []*profile.Profile, category string, tolerance float64, k int) ([]Neighbor, error) {
	seq := func(yield func(Candidate) bool) {
		for _, cand := range candidates {
			c := Candidate{UserID: cand.UserID, Vec: cand.Vector(), Ty: cand.PreferenceValue(category)}
			if !yield(c) {
				return
			}
		}
	}
	return TopKStream(target.UserID, target.Vector(), target.PreferenceValue(category), tolerance, seq, k)
}

// topkScratch is the pooled working set of one TopKStream call: the
// bounded min-heap (or unbounded accumulator when k < 0). Pooling it keeps
// the inner scoring loop at zero heap allocations per candidate — the
// read-path hot loop runs at memory speed regardless of community size
// (TestTopKStreamZeroAlloc pins this).
type topkScratch struct {
	heap []Neighbor
}

var topkPool = sync.Pool{New: func() any { return new(topkScratch) }}

// worse reports whether a ranks strictly below b in the final order
// (descending score, ties broken by ascending UserID). The bounded heap
// keeps the worst retained neighbour at its root.
func worse(a, b *Neighbor) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.UserID > b.UserID
}

// heapFix sifts the element at i of a min-by-rank heap (worst at root)
// down to its place. Elements enter at the root by replacement, so only a
// downward sift is ever needed.
func heapFix(h []Neighbor, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && worse(&h[l], &h[min]) {
			min = l
		}
		if r < len(h) && worse(&h[r], &h[min]) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// TopKStream is TopK over a candidate stream instead of a materialized
// profile slice, with the target pre-flattened: the recommendation engine
// feeds it a per-category posting list or a shard snapshot so neighbour
// search touches only the candidates that could pass the gate. Semantics
// match TopK exactly: the Fig 4.5 gate, the positive-score filter, and the
// deterministic score-then-UserID ordering. Candidates whose UserID equals
// targetID are skipped. k < 0 returns all.
//
// The scoring loop is allocation-free per candidate: the target norm is
// computed once, candidate norms come precomputed on the Candidate (falling
// back to a re-sum when absent), and survivors go through a pooled bounded
// heap sized k instead of an append-everything-then-sort buffer.
func TopKStream(targetID string, targetVec Vec, tx, tolerance float64, candidates iter.Seq[Candidate], k int) ([]Neighbor, error) {
	if tolerance < 0 || tolerance > 1 {
		return nil, fmt.Errorf("%w: %v", ErrBadThreshold, tolerance)
	}
	na := Norm(targetVec)
	sc := topkPool.Get().(*topkScratch)
	heap := sc.heap[:0]
	if k >= 0 && cap(heap) < k {
		heap = make([]Neighbor, 0, k)
	}
	for cand := range candidates {
		if cand.UserID == targetID {
			continue
		}
		if GateDiscards(tx, cand.Ty, tolerance) {
			continue
		}
		if na == 0 {
			continue // empty target: every cosine is 0, filtered anyway
		}
		nb := cand.Norm
		if nb == 0 {
			nb = Norm(cand.Vec)
			if nb == 0 {
				continue
			}
		}
		dot := Dot(targetVec, cand.Vec)
		if dot <= 0 {
			continue
		}
		score := dot / (na * nb)
		n := Neighbor{UserID: cand.UserID, Score: score, Raw: score, Tx: tx, Ty: cand.Ty}
		switch {
		case k < 0 || len(heap) < k:
			if k == 0 {
				continue
			}
			heap = append(heap, n)
			if k >= 0 && len(heap) == k {
				// Heapify once, when the bound is first reached.
				for i := len(heap)/2 - 1; i >= 0; i-- {
					heapFix(heap, i)
				}
			}
		case worse(&heap[0], &n):
			heap[0] = n
			heapFix(heap, 0)
		}
	}
	out := make([]Neighbor, len(heap))
	copy(out, heap)
	sc.heap = heap[:0]
	topkPool.Put(sc)
	slices.SortFunc(out, func(a, b Neighbor) int {
		if a.Score != b.Score {
			if a.Score > b.Score {
				return -1
			}
			return 1
		}
		if a.UserID != b.UserID {
			if a.UserID < b.UserID {
				return -1
			}
			return 1
		}
		return 0
	})
	return out, nil
}
