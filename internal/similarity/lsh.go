package similarity

import (
	"math/rand/v2"
	"slices"

	"agentrec/internal/profile"
)

// Random-hyperplane locality-sensitive hashing (Charikar's SimHash family)
// over the dense feature-hash projections profile.Summary precomputes. Two
// vectors land in the same bucket of one table with probability
// (1 - θ/π)^bits for angle θ, so highly similar consumers collide often
// while the bulk of a category does not — the recommendation engine uses
// the union of a few probed buckets across a few tables as a shortlist and
// re-ranks it with the exact Fig 4.5 scorer. Recall knobs: more tables or
// more probes raise collision chances; more bits shrink buckets.

// LSH geometry defaults, tuned on the workload universe (see
// TestLSHRecallAtTen and BENCH_recommend.json): 8 tables × up to 18 bits
// with 8 probes holds recall@10 well above 0.95 while scoring a few
// percent of a large category.
const (
	DefaultTables = 8
	DefaultProbes = 8
	MaxBits       = 18
)

// Hasher derives LSH signatures from dense projections. The hyperplanes
// are drawn from a fixed-seed PCG generator, so every engine replica —
// owner, follower, warm restart — buckets identically without shipping
// planes over the wire. A Hasher is immutable and safe for concurrent use.
type Hasher struct {
	tables int
	// planes[t*MaxBits+b] is the b-th hyperplane of table t, one normal
	// vector of profile.DenseDims components. Bit b of a signature is the
	// sign of the projection onto that plane; signatures of different
	// depths share a prefix, which is what lets the index deepen buckets
	// without re-deriving geometry.
	planes [][profile.DenseDims]float32
}

// NewHasher returns a hasher with the given table count (<= 0 means
// DefaultTables). seed fixes the hyperplane draw; all replicas must agree.
func NewHasher(tables int, seed uint64) *Hasher {
	if tables <= 0 {
		tables = DefaultTables
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	h := &Hasher{tables: tables, planes: make([][profile.DenseDims]float32, tables*MaxBits)}
	for i := range h.planes {
		for d := 0; d < profile.DenseDims; d++ {
			h.planes[i][d] = float32(rng.NormFloat64())
		}
	}
	return h
}

// Tables reports how many independent hash tables the hasher serves.
func (h *Hasher) Tables() int { return h.tables }

// Sig returns the bits-deep signature of dense in table t: bit b is set
// when the vector lies on the positive side of plane b.
func (h *Hasher) Sig(dense []float32, t, bits int) uint32 {
	var sig uint32
	base := t * MaxBits
	for b := 0; b < bits; b++ {
		if planeDot(&h.planes[base+b], dense) >= 0 {
			sig |= 1 << b
		}
	}
	return sig
}

// Probes appends to buf up to nprobes signatures of table t to look up for
// dense, most promising first: the exact signature, then variants with the
// least-confident bits flipped (multi-probe LSH). A bit's confidence is the
// margin |plane · dense|; flipping small margins visits the buckets a near
// neighbour most plausibly fell into. buf lets hot callers reuse one slice
// across queries; pass buf[:0] or nil.
func (h *Hasher) Probes(dense []float32, t, bits, nprobes int, buf []uint32) []uint32 {
	base := t * MaxBits
	var sig uint32
	margins := [MaxBits]float32{}
	for b := 0; b < bits; b++ {
		m := planeDot(&h.planes[base+b], dense)
		if m >= 0 {
			sig |= 1 << b
			margins[b] = m
		} else {
			margins[b] = -m
		}
	}
	buf = append(buf, sig)
	if nprobes <= 1 || bits == 0 {
		return buf
	}
	// Enumerate flip sets over the w weakest bits, cheapest total margin
	// first. w is small (probing more than ~2^5 buckets per table defeats
	// the shortlist), so the subset enumeration stays trivial.
	w := 1
	for (1 << w) <= nprobes {
		w++
	}
	if w > 5 {
		w = 5
	}
	if w > bits {
		w = bits
	}
	type weak struct {
		bit    int
		margin float32
	}
	var weakest [5]weak
	for i := range weakest[:w] {
		weakest[i] = weak{bit: -1}
	}
	for b := 0; b < bits; b++ {
		m := margins[b]
		// Insertion into the sorted w-smallest list.
		for i := 0; i < w; i++ {
			if weakest[i].bit == -1 || m < weakest[i].margin {
				copy(weakest[i+1:w], weakest[i:w-1])
				weakest[i] = weak{bit: b, margin: m}
				break
			}
		}
	}
	var cands [31]probeCand // 2^5 - 1 subsets at most: stays on the stack
	scratch := cands[:0]
	for mask := 1; mask < (1 << w); mask++ {
		var cost float32
		var flip uint32
		for i := 0; i < w; i++ {
			if mask&(1<<i) != 0 {
				cost += weakest[i].margin
				flip |= 1 << weakest[i].bit
			}
		}
		scratch = append(scratch, probeCand{sig: sig ^ flip, cost: cost})
	}
	slices.SortFunc(scratch, func(a, b probeCand) int {
		switch {
		case a.cost < b.cost:
			return -1
		case a.cost > b.cost:
			return 1
		default:
			return 0
		}
	})
	for i := 0; i < len(scratch) && len(buf) < nprobes; i++ {
		buf = append(buf, scratch[i].sig)
	}
	return buf
}

// probeCand is one multi-probe perturbation: a signature with some weak
// bits flipped and the summed margin it costs.
type probeCand struct {
	sig  uint32
	cost float32
}

func planeDot(plane *[profile.DenseDims]float32, dense []float32) float32 {
	var dot float32
	for d := 0; d < profile.DenseDims && d < len(dense); d++ {
		dot += plane[d] * dense[d]
	}
	return dot
}
