// Package experiments regenerates every table in EXPERIMENTS.md: the
// paper's figures turned into measurements (F4.4, F4.5) and its qualitative
// claims turned into quantified experiments (C2, C4, C5). cmd/recbench is a
// thin CLI over this package; the root benchmark suite reuses the same
// fixtures.
//
// The paper itself reports no numbers, so expectations are *shapes* (who
// wins, what degrades, where crossovers sit), documented per experiment in
// EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"agentrec/internal/aglet"
	"agentrec/internal/buyerserver"
	"agentrec/internal/catalog"
	"agentrec/internal/eval"
	"agentrec/internal/marketplace"
	"agentrec/internal/platform"
	"agentrec/internal/profile"
	"agentrec/internal/recommend"
	"agentrec/internal/similarity"
	"agentrec/internal/workload"
)

// Size scales an experiment. Quick is for tests and -quick runs; Full for
// the recorded tables.
type Size int

// Sizes.
const (
	Quick Size = iota
	Full
)

func (s Size) universe(seed uint64) workload.Config {
	if s == Quick {
		return workload.Config{Seed: seed, Users: 60, Products: 200, Categories: 6, RelevantPerUser: 12}
	}
	return workload.Config{Seed: seed, Users: 400, Products: 800, Categories: 10, RelevantPerUser: 20}
}

// Run executes the named experiment ("F4.4", "F4.5", "C2", "C4", "C5", or
// "all") and writes its tables to w.
func Run(w io.Writer, name string, size Size) error {
	type exp struct {
		id string
		fn func(io.Writer, Size) error
	}
	all := []exp{
		{"F4.4", F44LearningRate},
		{"F4.5", F45DiscardGate},
		{"C2", C2NetworkLoad},
		{"C4", C4SparsityColdStart},
		{"C5", C5StrategyQuality},
	}
	if name == "all" {
		for _, e := range all {
			if err := e.fn(w, size); err != nil {
				return fmt.Errorf("experiment %s: %w", e.id, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	for _, e := range all {
		if e.id == name {
			return e.fn(w, size)
		}
	}
	return fmt.Errorf("experiments: unknown experiment %q", name)
}

// --- F4.4: the learning-rate trade-off in the profile update rule ----------

// F44LearningRate measures what α buys: with per-observation decay (aging
// of old interests), a larger α adapts to a taste change faster (fewer
// observations until the new interest dominates) and holds a higher
// steady-state weight, at the cost of more volatility from single
// observations (one-shot share).
func F44LearningRate(w io.Writer, _ Size) error {
	const decay = 0.95
	table := eval.NewTable("F4.4 — learning rate α vs adaptation (decay 0.95/observation)",
		"alpha", "obs_to_switch", "steady_weight", "one_shot_share", "survives_prune_1.0")

	for _, alpha := range []float64{0.05, 0.1, 0.3, 0.5, 0.9} {
		p, err := profile.NewProfileAlpha("u", alpha)
		if err != nil {
			return err
		}
		oldDoc := profile.Evidence{Category: "c", Terms: map[string]float64{"old": 1}, Behaviour: profile.BehaviourBuy}
		newDoc := profile.Evidence{Category: "c", Terms: map[string]float64{"new": 1}, Behaviour: profile.BehaviourBuy}
		// Phase 1: 50 observations of the old interest.
		for i := 0; i < 50; i++ {
			p.Decay(decay)
			if err := p.Observe(oldDoc); err != nil {
				return err
			}
		}
		steady := p.Categories["c"].Terms["old"]
		// Phase 2: the consumer's taste changes; count observations until
		// the new term outweighs the old.
		switchAt := -1
		for i := 1; i <= 500; i++ {
			p.Decay(decay)
			if err := p.Observe(newDoc); err != nil {
				return err
			}
			if p.Categories["c"].Terms["new"] > p.Categories["c"].Terms["old"] {
				switchAt = i
				break
			}
		}
		// One-shot share: how much of the steady-state weight a single
		// observation contributes (volatility).
		oneShot := alpha * 1.0 / steady
		// The place α really bites: whether a steadily reinforced interest
		// clears a fixed pruning threshold. Small α + housekeeping pruning
		// means systematic amnesia.
		survives := steady >= 1.0

		table.AddRow(alpha, switchAt, steady, oneShot, survives)
	}
	return table.Render(w)
}

// --- F4.5: the preference-value discard gate --------------------------------

// F45DiscardGate sweeps the gate tolerance on a synthetic community and
// reports collaborative-filtering quality and how many of the k candidate
// neighbours survive the gate. tolerance=1 disables the gate (the plain
// cosine ablation).
func F45DiscardGate(w io.Writer, size Size) error {
	u, err := workload.Generate(size.universe(45))
	if err != nil {
		return err
	}
	profiles := make([]*profile.Profile, 0, len(u.Users))
	byID := make(map[string]*workload.User, len(u.Users))
	for _, usr := range u.Users {
		p, err := u.BuildProfile(usr)
		if err != nil {
			return err
		}
		profiles = append(profiles, p)
		byID[usr.ID] = usr
	}

	table := eval.NewTable("F4.5 — discard-gate tolerance vs CF quality (k=10, top-10)",
		"tolerance", "precision", "recall", "mean_neighbors")
	for _, tol := range []float64{0.1, 0.3, 0.5, 0.7, 1.0} {
		engine := recommend.NewEngine(u.Catalog, recommend.WithNeighbors(10), recommend.WithTolerance(tol))
		for _, p := range profiles {
			if err := engine.SetProfile(p); err != nil {
				return err
			}
		}
		for user, pids := range u.Purchases() {
			for _, pid := range pids {
				if err := engine.RecordPurchase(user, pid); err != nil {
					return err
				}
			}
		}
		var recLists, relLists [][]string
		var neighborSum float64
		for _, p := range profiles {
			usr := byID[p.UserID]
			if usr.ColdStart {
				continue
			}
			recs, err := engine.Recommend(recommend.StrategyCF, p.UserID, "", 10)
			if err != nil {
				return err
			}
			recLists = append(recLists, recIDs(recs))
			relLists = append(relLists, usr.Held)
			nbs, err := similarity.TopK(p, profiles, topCategory(p), tol, 10)
			if err != nil {
				return err
			}
			neighborSum += float64(len(nbs))
		}
		m := eval.Aggregate(recLists, relLists)
		table.AddRow(tol, m.Precision, m.Recall, neighborSum/float64(len(recLists)))
	}
	return table.Render(w)
}

func topCategory(p *profile.Profile) string {
	if top := p.TopCategories(1); len(top) > 0 {
		return top[0].Term
	}
	return ""
}

func recIDs(recs []recommend.Rec) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.ProductID
	}
	return out
}

// --- C2: mobile agents vs conventional request/response ---------------------

// C2NetworkLoad compares a Mobile Buyer Agent's price-discovery trip (probe
// the achievable price at every marketplace through multi-round
// negotiation — the paper intro's "compare the product prices by
// themselves" pain) against the conventional client that drives the same
// probing with remote calls, across marketplace counts and simulated
// per-hop WAN latencies. The mobile agent crosses the network once per hop
// and bargains locally; the conventional client pays one network round trip
// per bargaining message.
func C2NetworkLoad(w io.Writer, size Size) error {
	marketCounts := []int{2, 4, 8}
	latencies := []time.Duration{0, 2 * time.Millisecond, 10 * time.Millisecond}
	if size == Quick {
		marketCounts = []int{2, 4}
		latencies = []time.Duration{0, 2 * time.Millisecond}
	}

	table := eval.NewTable("C2 — network cost: MBA trip vs conventional RPC (price-discovery probe)",
		"markets", "latency_ms", "mba_msgs", "rpc_msgs", "mba_ms", "rpc_ms")
	for _, m := range marketCounts {
		for _, lat := range latencies {
			row, err := c2Row(m, lat)
			if err != nil {
				return err
			}
			table.AddRow(m, float64(lat.Milliseconds()), row.mbaMsgs, row.rpcMsgs,
				float64(row.mbaWall.Microseconds())/1000, float64(row.rpcWall.Microseconds())/1000)
		}
	}
	return table.Render(w)
}

type c2Result struct {
	mbaMsgs, rpcMsgs int
	mbaWall, rpcWall time.Duration
}

func c2Row(markets int, latency time.Duration) (c2Result, error) {
	p, err := platform.New(platform.Config{Marketplaces: markets})
	if err != nil {
		return c2Result{}, err
	}
	defer p.Close()
	// The same product everywhere; both sides probe each seller's price
	// floor through multi-round negotiation without buying, so they do
	// identical bargaining work.
	for i := 0; i < markets; i++ {
		if err := p.Stock(i, &catalog.Product{
			ID: "target", Name: "Target", Category: "c",
			Terms: map[string]float64{"t": 1}, PriceCents: 100000,
			SellerID: "s", Stock: 100,
		}); err != nil {
			return c2Result{}, err
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	b := p.Buyer()
	if err := b.Register(ctx, "u"); err != nil {
		return c2Result{}, err
	}
	if _, err := b.Login(ctx, "u"); err != nil {
		return c2Result{}, err
	}

	if latency > 0 {
		p.Loopback.SetPerHop(func(string) { time.Sleep(latency) })
	}

	// Mobile agent path: one probing trip across every marketplace.
	p.Loopback.ResetStats()
	start := time.Now()
	if _, err := b.RunTask(ctx, "u", buyerserver.TaskSpec{
		Kind: buyerserver.TaskBuy, ProductID: "target", Probe: true,
	}); err != nil {
		return c2Result{}, err
	}
	res := c2Result{mbaWall: time.Since(start)}
	d, c, _ := p.Loopback.Stats()
	res.mbaMsgs = d + c

	// Conventional path: a remote client drives the same probing against
	// each marketplace's MSA, one network round trip per message.
	p.Loopback.ResetStats()
	start = time.Now()
	buyerHost := b.Host()
	for i := 0; i < markets; i++ {
		dest := fmt.Sprintf("market-%d", i+1)
		proxy := buyerHost.RemoteProxy(dest, marketplace.MSAID)
		if err := rpcProbe(ctx, proxy, "target", 100000); err != nil {
			return c2Result{}, err
		}
	}
	res.rpcWall = time.Since(start)
	d, c, _ = p.Loopback.Stats()
	res.rpcMsgs = d + c
	p.Loopback.SetPerHop(nil)
	return res, nil
}

// rpcProbe is the conventional client's price-discovery loop: every offer
// is a remote call. listPrice mirrors the MBA's 80%-of-list opening.
func rpcProbe(ctx context.Context, msa *aglet.Proxy, productID string, listPrice int64) error {
	offer := int64(0.8 * float64(listPrice))
	req, err := marshal(marketplace.NegoOpenRequest{BuyerID: "rpc", ProductID: productID, OfferCents: offer})
	if err != nil {
		return err
	}
	replyMsg, err := msa.Send(ctx, aglet.Message{Kind: marketplace.KindNegoOpen, Data: req})
	if err != nil {
		return err
	}
	var reply marketplace.NegoReply
	if err := unmarshal(replyMsg.Data, &reply); err != nil {
		return err
	}
	for !reply.Over {
		next, done := marketplace.ProbeNextOffer(offer, reply.AskCents)
		if done {
			return nil
		}
		offer = next
		req, err := marshal(marketplace.NegoOfferRequest{SessionID: reply.SessionID, OfferCents: offer})
		if err != nil {
			return err
		}
		replyMsg, err = msa.Send(ctx, aglet.Message{Kind: marketplace.KindNegoOffer, Data: req})
		if err != nil {
			return err
		}
		if err := unmarshal(replyMsg.Data, &reply); err != nil {
			return err
		}
	}
	return nil
}

// --- C4: sparsity and cold start ---------------------------------------------

// C4SparsityColdStart sweeps behaviour density (how much of each consumer's
// true taste the system has observed) and reports how each technique
// degrades, plus the cold-start row: brand-new consumers with no history.
func C4SparsityColdStart(w io.Writer, size Size) error {
	base := size.universe(44)
	base.ColdStartUsers = base.Users / 4

	table := eval.NewTable("C4 — behaviour density vs technique quality (top-10)",
		"relevant_per_user", "density_pct", "cf_prec", "if_prec", "hybrid_prec", "topseller_prec", "cold_auto_prec")
	sweeps := []int{4, 8, 16, 32}
	if size == Quick {
		sweeps = []int{4, 12}
	}
	for _, rel := range sweeps {
		cfg := base
		cfg.RelevantPerUser = rel
		u, err := workload.Generate(cfg)
		if err != nil {
			return err
		}
		engine := recommend.NewEngine(u.Catalog, recommend.WithNeighbors(10))
		events := 0
		for _, usr := range u.Users {
			p, err := u.BuildProfile(usr)
			if err != nil {
				return err
			}
			if err := engine.SetProfile(p); err != nil {
				return err
			}
			events += len(usr.Train)
		}
		for user, pids := range u.Purchases() {
			for _, pid := range pids {
				if err := engine.RecordPurchase(user, pid); err != nil {
					return err
				}
			}
		}
		density := 100 * float64(events) / float64(len(u.Users)*len(u.Products))

		precFor := func(strategy recommend.Strategy, cold bool) (float64, error) {
			var recLists, relLists [][]string
			for _, usr := range u.Users {
				if usr.ColdStart != cold {
					continue
				}
				recs, err := engine.Recommend(strategy, usr.ID, "", 10)
				if err != nil {
					return 0, err
				}
				recLists = append(recLists, recIDs(recs))
				relLists = append(relLists, usr.Held)
			}
			return eval.Aggregate(recLists, relLists).Precision, nil
		}
		cf, err := precFor(recommend.StrategyCF, false)
		if err != nil {
			return err
		}
		ifp, err := precFor(recommend.StrategyIF, false)
		if err != nil {
			return err
		}
		hy, err := precFor(recommend.StrategyHybrid, false)
		if err != nil {
			return err
		}
		ts, err := precFor(recommend.StrategyTopSeller, false)
		if err != nil {
			return err
		}
		cold, err := precFor(recommend.StrategyAuto, true)
		if err != nil {
			return err
		}
		table.AddRow(rel, density, cf, ifp, hy, ts, cold)
	}
	return table.Render(w)
}

// --- C5: strategy quality ------------------------------------------------------

// C5StrategyQuality is the headline comparison: every technique on the same
// community, plus the hybrid-weight and neighbourhood-size ablations.
func C5StrategyQuality(w io.Writer, size Size) error {
	u, err := workload.Generate(size.universe(55))
	if err != nil {
		return err
	}
	profiles := make([]*profile.Profile, 0, len(u.Users))
	for _, usr := range u.Users {
		p, err := u.BuildProfile(usr)
		if err != nil {
			return err
		}
		profiles = append(profiles, p)
	}
	purchases := u.Purchases()

	build := func(opts ...recommend.Option) (*recommend.Engine, error) {
		e := recommend.NewEngine(u.Catalog, opts...)
		for _, p := range profiles {
			if err := e.SetProfile(p); err != nil {
				return nil, err
			}
		}
		for user, pids := range purchases {
			for _, pid := range pids {
				if err := e.RecordPurchase(user, pid); err != nil {
					return nil, err
				}
			}
		}
		return e, nil
	}
	measure := func(e *recommend.Engine, strategy recommend.Strategy) (eval.Metrics, error) {
		var recLists, relLists [][]string
		for _, usr := range u.Users {
			recs, err := e.Recommend(strategy, usr.ID, "", 10)
			if err != nil {
				return eval.Metrics{}, err
			}
			recLists = append(recLists, recIDs(recs))
			relLists = append(relLists, usr.Held)
		}
		return eval.Aggregate(recLists, relLists), nil
	}

	main := eval.NewTable("C5 — technique comparison (k=10, hybrid weight 0.6, top-10)",
		"strategy", "precision", "recall", "f1", "coverage", "distinct_items")
	e, err := build(recommend.WithNeighbors(10))
	if err != nil {
		return err
	}
	for _, s := range []recommend.Strategy{
		recommend.StrategyCF, recommend.StrategyIF, recommend.StrategyHybrid, recommend.StrategyTopSeller,
	} {
		m, err := measure(e, s)
		if err != nil {
			return err
		}
		main.AddRow(s.String(), m.Precision, m.Recall, m.F1, m.Coverage, m.Distinct)
	}
	if err := main.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	mix := eval.NewTable("C5a — hybrid weight ablation (CF share)",
		"cf_share", "precision", "recall")
	for _, wgt := range []float64{0, 0.25, 0.5, 0.6, 0.75, 1} {
		weighted, err := build(recommend.WithNeighbors(10), recommend.WithHybridWeight(wgt))
		if err != nil {
			return err
		}
		m, err := measure(weighted, recommend.StrategyHybrid)
		if err != nil {
			return err
		}
		mix.AddRow(wgt, m.Precision, m.Recall)
	}
	if err := mix.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	knn := eval.NewTable("C5b — neighbourhood size ablation (CF)",
		"k", "precision", "recall")
	ks := []int{2, 5, 10, 20, 40}
	if size == Quick {
		ks = []int{2, 10}
	}
	for _, k := range ks {
		sized, err := build(recommend.WithNeighbors(k))
		if err != nil {
			return err
		}
		m, err := measure(sized, recommend.StrategyCF)
		if err != nil {
			return err
		}
		knn.AddRow(k, m.Precision, m.Recall)
	}
	return knn.Render(w)
}

// Names returns the experiment ids Run accepts, for CLI help.
func Names() []string {
	out := []string{"F4.4", "F4.5", "C2", "C4", "C5"}
	sort.Strings(out)
	return out
}
