package experiments

import (
	"strings"
	"testing"
)

// Each experiment must run at Quick size and emit a well-formed table. The
// shape assertions here are the machine-checked versions of the
// expectations recorded in EXPERIMENTS.md.

func runQuick(t *testing.T, name string) string {
	t.Helper()
	var sb strings.Builder
	if err := Run(&sb, name, Quick); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "##") {
		t.Fatalf("no table rendered:\n%s", out)
	}
	return out
}

func parseTable(t *testing.T, out, title string) [][]string {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var rows [][]string
	in := false
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "## "):
			in = strings.Contains(line, title)
		case in && strings.HasPrefix(line, "-"):
			// separator
		case in && line != "":
			rows = append(rows, strings.Fields(line))
		case in && line == "":
			in = false
		}
	}
	if len(rows) < 2 {
		t.Fatalf("table %q not found or empty in:\n%s", title, out)
	}
	return rows[1:] // drop header
}

func cell(t *testing.T, rows [][]string, row, col int) float64 {
	t.Helper()
	var v float64
	if _, err := parseFloat(rows[row][col], &v); err != nil {
		t.Fatalf("cell [%d][%d] = %q not numeric", row, col, rows[row][col])
	}
	return v
}

func parseFloat(s string, v *float64) (int, error) {
	n, err := sscanf(s, v)
	return n, err
}

func TestF44Shape(t *testing.T) {
	out := runQuick(t, "F4.4")
	rows := parseTable(t, out, "F4.4")
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Larger α must adapt at least as fast (obs_to_switch non-increasing)
	// and be at least as volatile (one_shot_share non-decreasing).
	for i := 1; i < len(rows); i++ {
		if cell(t, rows, i, 1) > cell(t, rows, i-1, 1) {
			t.Errorf("obs_to_switch increased with α: rows %d->%d", i-1, i)
		}
		if cell(t, rows, i, 3) < cell(t, rows, i-1, 3)-1e-9 {
			t.Errorf("one_shot_share decreased with α: rows %d->%d", i-1, i)
		}
	}
}

func TestF45Shape(t *testing.T) {
	out := runQuick(t, "F4.5")
	rows := parseTable(t, out, "F4.5")
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// A wider gate keeps at least as many neighbours.
	for i := 1; i < len(rows); i++ {
		if cell(t, rows, i, 3) < cell(t, rows, i-1, 3)-1e-9 {
			t.Errorf("mean_neighbors shrank as tolerance widened")
		}
	}
	// CF must do real work at some tolerance.
	best := 0.0
	for i := range rows {
		if p := cell(t, rows, i, 1); p > best {
			best = p
		}
	}
	if best == 0 {
		t.Error("CF precision zero at every tolerance")
	}
}

func TestC2Shape(t *testing.T) {
	out := runQuick(t, "C2")
	rows := parseTable(t, out, "C2")
	for i := range rows {
		mbaMsgs, rpcMsgs := cell(t, rows, i, 2), cell(t, rows, i, 3)
		// The mobile agent must cross the network far less often than the
		// conventional client: M+1 hops vs per-offer round trips.
		if mbaMsgs >= rpcMsgs {
			t.Errorf("row %d: MBA msgs %v !< RPC msgs %v", i, mbaMsgs, rpcMsgs)
		}
	}
	// Under real latency the fewer-messages advantage becomes wall-clock.
	last := len(rows) - 1
	if cell(t, rows, last, 4) >= cell(t, rows, last, 5) {
		t.Errorf("at highest latency MBA (%vms) not faster than RPC (%vms)",
			cell(t, rows, last, 4), cell(t, rows, last, 5))
	}
}

func TestC4Shape(t *testing.T) {
	out := runQuick(t, "C4")
	rows := parseTable(t, out, "C4")
	if len(rows) < 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	_ = first
	_ = last
	// Denser behaviour must not hurt hybrid quality.
	if cell(t, rows, len(rows)-1, 4) < cell(t, rows, 0, 4)-0.05 {
		t.Errorf("hybrid precision fell with density: %v -> %v",
			cell(t, rows, 0, 4), cell(t, rows, len(rows)-1, 4))
	}
	// At the densest setting, personalized beats the popularity baseline.
	lastRow := len(rows) - 1
	if cell(t, rows, lastRow, 4) <= cell(t, rows, lastRow, 5) {
		t.Errorf("hybrid (%v) not above topseller (%v) at max density",
			cell(t, rows, lastRow, 4), cell(t, rows, lastRow, 5))
	}
}

func TestC5Shape(t *testing.T) {
	out := runQuick(t, "C5")
	rows := parseTable(t, out, "C5 —")
	if len(rows) != 4 {
		t.Fatalf("strategy rows = %d", len(rows))
	}
	byName := map[string][]string{}
	for _, r := range rows {
		byName[r[0]] = r
	}
	prec := func(name string) float64 {
		var v float64
		sscanf(byName[name][1], &v)
		return v
	}
	// The paper's §2.3 ordering: personalization beats popularity.
	if prec("hybrid") <= prec("topseller") {
		t.Errorf("hybrid %v !> topseller %v", prec("hybrid"), prec("topseller"))
	}
	if prec("if") <= prec("topseller") {
		t.Errorf("if %v !> topseller %v", prec("if"), prec("topseller"))
	}
	// Ablation tables present.
	parseTable(t, out, "C5a")
	parseTable(t, out, "C5b")
}

func TestRunUnknown(t *testing.T) {
	var sb strings.Builder
	if err := Run(&sb, "F9.9", Quick); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("all experiments at quick size still take a few seconds")
	}
	var sb strings.Builder
	if err := Run(&sb, "all", Quick); err != nil {
		t.Fatal(err)
	}
	for _, id := range Names() {
		if !strings.Contains(sb.String(), id) {
			t.Errorf("output missing experiment %s", id)
		}
	}
}
