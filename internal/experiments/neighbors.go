package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"runtime"
	"time"

	"agentrec/internal/catalog"
	"agentrec/internal/profile"
	"agentrec/internal/recommend"
)

// The neighbour-search benchmark: the recorded perf trajectory for the
// read path (BENCH_recommend.json). It measures CF's neighbour search —
// exact posting-list scan vs LSH shortlist + exact re-rank — on synthetic
// single-category communities of increasing size, because
// candidates-per-category is exactly the variable the read path is linear
// in. Recall@10 is measured against the exact ranking on the same engine,
// so the trade the ANN path makes is a number in the committed snapshot,
// not a claim.

// NeighborPoint is one community size's measurements.
type NeighborPoint struct {
	Candidates    int     `json:"candidates"`
	ExactNsOp     float64 `json:"exact_ns_op"`
	ExactAllocsOp float64 `json:"exact_allocs_op"`
	LSHNsOp       float64 `json:"lsh_ns_op"`
	LSHAllocsOp   float64 `json:"lsh_allocs_op"`
	Speedup       float64 `json:"speedup"`       // exact ns / lsh ns
	RecallAt10    float64 `json:"recall_at_10"`  // mean |lsh ∩ exact| / |exact| over queries
	BuildSeconds  float64 `json:"build_seconds"` // community install incl. incremental LSH upkeep
}

// NeighborBench is the BENCH_recommend.json document.
type NeighborBench struct {
	Benchmark  string          `json:"benchmark"`
	K          int             `json:"k"`
	Queries    int             `json:"queries"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Points     []NeighborPoint `json:"points"`
}

// neighborCommunity synthesizes n consumer profiles in one hot category
// with planted cluster structure (so "most similar" is meaningful): each
// consumer perturbs one of nclusters taste centers and adds personal noise
// terms. Deterministic in seed.
func neighborCommunity(n int, seed uint64) []*profile.Profile {
	rng := rand.New(rand.NewPCG(seed, seed^0xda7a))
	const (
		nclusters   = 64
		centerTerms = 12
		noiseTerms  = 4
		vocab       = 4000
	)
	centers := make([][]string, nclusters)
	weights := make([][]float64, nclusters)
	for c := range centers {
		centers[c] = make([]string, centerTerms)
		weights[c] = make([]float64, centerTerms)
		for i := range centers[c] {
			centers[c][i] = fmt.Sprintf("t%04d", rng.IntN(vocab))
			weights[c][i] = 0.7 + 0.6*rng.Float64()
		}
	}
	profs := make([]*profile.Profile, n)
	for u := range profs {
		c := u % nclusters
		terms := make(map[string]float64, centerTerms+noiseTerms)
		for i, t := range centers[c] {
			terms[t] = weights[c][i] * (0.7 + 0.6*rng.Float64())
		}
		for i := 0; i < noiseTerms; i++ {
			terms[fmt.Sprintf("t%04d", rng.IntN(vocab))] += 0.3 + 0.4*rng.Float64()
		}
		p := profile.NewProfile(fmt.Sprintf("u%07d", u))
		if err := p.Observe(profile.Evidence{
			Category: "hot", Terms: terms, Behaviour: profile.BehaviourBuy,
		}); err != nil {
			panic(err) // static evidence: cannot fail
		}
		profs[u] = p
	}
	return profs
}

// measureNeighbors times mode over the target set, returning mean ns/op,
// mean heap allocations/op, and the per-target top-k id sets.
func measureNeighbors(e *recommend.Engine, targets []string, mode recommend.NeighborSearch, reps int) (nsOp, allocsOp float64, tops []map[string]bool, err error) {
	tops = make([]map[string]bool, len(targets))
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	ops := 0
	for r := 0; r < reps; r++ {
		for i, u := range targets {
			nbs, nerr := e.Neighbors(u, "hot", mode)
			if nerr != nil {
				return 0, 0, nil, nerr
			}
			ops++
			if r == 0 {
				set := make(map[string]bool, len(nbs))
				for _, nb := range nbs {
					set[nb.UserID] = true
				}
				tops[i] = set
			}
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return float64(elapsed.Nanoseconds()) / float64(ops),
		float64(ms1.Mallocs-ms0.Mallocs) / float64(ops),
		tops, nil
}

// NeighborSearchBench builds one engine per size (LSH maintained
// incrementally during install; exact and LSH queried on the same engine)
// and records the comparison. queries targets are spread across clusters.
func NeighborSearchBench(w io.Writer, sizes []int, queries int) (*NeighborBench, error) {
	if queries <= 0 {
		queries = 24
	}
	out := &NeighborBench{
		Benchmark:  "neighbor-search exact vs lsh (one hot category)",
		K:          10,
		Queries:    queries,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	fmt.Fprintf(w, "Neighbour search: exact vs LSH (k=10, %d queries)\n", queries)
	fmt.Fprintf(w, "%12s %14s %14s %9s %10s %12s\n",
		"candidates", "exact ns/op", "lsh ns/op", "speedup", "recall@10", "build")
	for _, n := range sizes {
		profs := neighborCommunity(n, 1)
		e, err := recommend.Open(catalog.New(),
			recommend.WithShards(64),
			recommend.WithNeighborSearch(recommend.SearchLSH),
		)
		if err != nil {
			return nil, err
		}
		built := time.Now()
		const batch = 50000
		for i := 0; i < len(profs); i += batch {
			j := min(i+batch, len(profs))
			if err := e.SetProfiles(profs[i:j]); err != nil {
				return nil, err
			}
		}
		buildSecs := time.Since(built).Seconds()

		rng := rand.New(rand.NewPCG(7, 7))
		targets := make([]string, queries)
		for i := range targets {
			targets[i] = profs[rng.IntN(len(profs))].UserID
		}
		// Enough repetitions to stabilize small sizes without making the
		// exact scan at 1M take minutes.
		reps := max(1, 100000/n)

		exactNs, exactAllocs, exactTop, err := measureNeighbors(e, targets, recommend.SearchExact, reps)
		if err != nil {
			return nil, err
		}
		lshNs, lshAllocs, lshTop, err := measureNeighbors(e, targets, recommend.SearchLSH, reps)
		if err != nil {
			return nil, err
		}
		var recall float64
		counted := 0
		for i := range targets {
			if len(exactTop[i]) == 0 {
				continue
			}
			hit := 0
			for id := range exactTop[i] {
				if lshTop[i][id] {
					hit++
				}
			}
			recall += float64(hit) / float64(len(exactTop[i]))
			counted++
		}
		if counted > 0 {
			recall /= float64(counted)
		}
		pt := NeighborPoint{
			Candidates:    n,
			ExactNsOp:     exactNs,
			ExactAllocsOp: exactAllocs,
			LSHNsOp:       lshNs,
			LSHAllocsOp:   lshAllocs,
			Speedup:       exactNs / lshNs,
			RecallAt10:    recall,
			BuildSeconds:  buildSecs,
		}
		out.Points = append(out.Points, pt)
		fmt.Fprintf(w, "%12d %14.0f %14.0f %8.1fx %10.3f %11.1fs\n",
			n, pt.ExactNsOp, pt.LSHNsOp, pt.Speedup, pt.RecallAt10, pt.BuildSeconds)
		profs = nil
		runtime.GC()
	}
	return out, nil
}

// WriteNeighborBench marshals the bench document as indented JSON.
func WriteNeighborBench(w io.Writer, b *NeighborBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
