package experiments

import (
	"encoding/json"
	"fmt"
)

func marshal(v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("experiments: encoding: %w", err)
	}
	return data, nil
}

func unmarshal(data []byte, v any) error {
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("experiments: decoding: %w", err)
	}
	return nil
}

// sscanf parses one float, shared by the table-shape tests.
func sscanf(s string, v *float64) (int, error) {
	return fmt.Sscanf(s, "%g", v)
}
