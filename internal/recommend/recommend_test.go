package recommend

import (
	"errors"
	"testing"

	"agentrec/internal/catalog"
	"agentrec/internal/profile"
	"agentrec/internal/workload"
)

// fixture builds a tiny community: alice and bob share a taste (both bought
// laptops with ssd), carol is into cameras. dave is brand new (cold start).
func fixture(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	cat := catalog.New()
	add := func(id, category string, price int64, terms map[string]float64) {
		t.Helper()
		if err := cat.Add(&catalog.Product{
			ID: id, Name: id, Category: category, Terms: terms,
			PriceCents: price, SellerID: "s", Stock: 5,
		}); err != nil {
			t.Fatal(err)
		}
	}
	add("lap1", "laptop", 100000, map[string]float64{"ssd": 1, "light": 0.5})
	add("lap2", "laptop", 120000, map[string]float64{"ssd": 0.9, "gpu": 0.5})
	add("lap3", "laptop", 90000, map[string]float64{"hdd": 1})
	add("cam1", "camera", 50000, map[string]float64{"lens": 1})
	add("cam2", "camera", 60000, map[string]float64{"lens": 0.8, "zoom": 1})

	e := NewEngine(cat, opts...)

	mk := func(id string, buys ...string) *profile.Profile {
		t.Helper()
		p := profile.NewProfile(id)
		for _, pid := range buys {
			prod, err := cat.Get(pid)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Observe(prod.Evidence(profile.BehaviourBuy)); err != nil {
				t.Fatal(err)
			}
			e.RecordPurchase(id, pid)
		}
		e.SetProfile(p)
		return p
	}
	mk("alice", "lap1")
	mk("bob", "lap1", "lap2")
	mk("carol", "cam1", "cam2")
	return e
}

func TestCFRecommendsNeighborPurchases(t *testing.T) {
	e := fixture(t)
	recs, err := e.Recommend(StrategyCF, "alice", "laptop", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("CF returned nothing")
	}
	// bob is alice's neighbour; lap2 is bob's purchase alice lacks.
	if recs[0].ProductID != "lap2" {
		t.Errorf("top rec = %s, want lap2", recs[0].ProductID)
	}
	for _, r := range recs {
		if r.ProductID == "lap1" {
			t.Error("CF recommended a product alice already owns")
		}
		if r.Source != "cf" {
			t.Errorf("source = %s", r.Source)
		}
	}
}

func TestCFUnknownUser(t *testing.T) {
	e := fixture(t)
	if _, err := e.Recommend(StrategyCF, "nobody", "", 5); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("err = %v, want ErrUnknownUser", err)
	}
}

func TestIFMatchesOwnProfile(t *testing.T) {
	e := fixture(t)
	recs, err := e.Recommend(StrategyIF, "alice", "laptop", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("IF returned nothing")
	}
	// alice's profile has ssd/light weights; lap2 (ssd) must beat lap3 (hdd).
	for _, r := range recs {
		if r.ProductID == "lap3" {
			t.Error("IF recommended term-mismatched lap3")
		}
		if r.ProductID == "lap1" {
			t.Error("IF recommended owned product")
		}
	}
	if recs[0].ProductID != "lap2" {
		t.Errorf("top IF rec = %s, want lap2", recs[0].ProductID)
	}
}

func TestIFEmptyForForeignCategory(t *testing.T) {
	e := fixture(t)
	recs, err := e.Recommend(StrategyIF, "alice", "camera", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("IF for unknown category = %v, want empty", recs)
	}
}

func TestHybridCombines(t *testing.T) {
	e := fixture(t)
	recs, err := e.Recommend(StrategyHybrid, "alice", "laptop", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || recs[0].ProductID != "lap2" {
		t.Fatalf("hybrid = %+v", recs)
	}
	if recs[0].Source != "hybrid" {
		t.Errorf("source = %s", recs[0].Source)
	}
}

func TestTopSellers(t *testing.T) {
	e := fixture(t)
	recs, err := e.Recommend(StrategyTopSeller, "", "", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no top sellers")
	}
	// lap1 was bought twice (alice, bob); everything else once.
	if recs[0].ProductID != "lap1" || recs[0].Score != 2 {
		t.Errorf("top seller = %+v", recs[0])
	}
	// Category filter.
	recs, _ = e.Recommend(StrategyTopSeller, "", "camera", 5)
	for _, r := range recs {
		if r.ProductID[:3] != "cam" {
			t.Errorf("camera top seller includes %s", r.ProductID)
		}
	}
}

func TestAutoFallsBackForColdStart(t *testing.T) {
	e := fixture(t)
	// dave has no profile at all.
	recs, err := e.Recommend(StrategyAuto, "dave", "", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("auto returned nothing for cold user")
	}
	if recs[0].Source != "topseller-fallback" {
		t.Errorf("source = %s, want topseller-fallback", recs[0].Source)
	}
}

func TestAutoUsesHybridForWarmUser(t *testing.T) {
	e := fixture(t)
	recs, err := e.Recommend(StrategyAuto, "alice", "laptop", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || recs[0].Source != "hybrid" {
		t.Fatalf("auto for warm user = %+v", recs)
	}
}

func TestUnknownStrategy(t *testing.T) {
	e := fixture(t)
	if _, err := e.Recommend(Strategy(99), "alice", "", 3); !errors.Is(err, ErrUnknownStrategy) {
		t.Fatalf("err = %v", err)
	}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{
		StrategyAuto: "auto", StrategyCF: "cf", StrategyIF: "if",
		StrategyHybrid: "hybrid", StrategyTopSeller: "topseller",
	} {
		if s.String() != want {
			t.Errorf("String(%d) = %s", int(s), s)
		}
	}
	if Strategy(42).String() == "" {
		t.Error("unknown strategy must render")
	}
}

func TestSetProfileCopies(t *testing.T) {
	e := fixture(t)
	p := profile.NewProfile("eve")
	p.Observe(profile.Evidence{Category: "laptop", Terms: map[string]float64{"ssd": 1}, Behaviour: profile.BehaviourBuy})
	e.SetProfile(p)
	p.Observe(profile.Evidence{Category: "laptop", Terms: map[string]float64{"ssd": 100}, Behaviour: profile.BehaviourBuy})
	stored, err := e.Profile("eve")
	if err != nil {
		t.Fatal(err)
	}
	if stored.Observed != 1 {
		t.Error("SetProfile did not copy; later mutation leaked in")
	}
}

func TestProfileUnknownUser(t *testing.T) {
	e := fixture(t)
	if _, err := e.Profile("nobody"); !errors.Is(err, ErrUnknownUser) {
		t.Fatal(err)
	}
}

func TestUsersSorted(t *testing.T) {
	e := fixture(t)
	got := e.Users()
	want := []string{"alice", "bob", "carol"}
	if len(got) != len(want) {
		t.Fatalf("Users = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Users = %v, want %v", got, want)
		}
	}
}

func TestDiscardGateAblation(t *testing.T) {
	// With the gate on and a strict tolerance, bob (2 purchases) may be
	// gated away from alice (1 purchase); with the gate off he is always a
	// neighbour. The ablation must never *reduce* the candidate pool.
	strict := fixture(t, WithTolerance(0.05))
	open := fixture(t, WithTolerance(0.05), WithDiscardGate(false))
	rs, err := strict.Recommend(StrategyCF, "alice", "laptop", 5)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := open.Recommend(StrategyCF, "alice", "laptop", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ro) < len(rs) {
		t.Errorf("gate off returned fewer recs (%d) than gate on (%d)", len(ro), len(rs))
	}
	if len(ro) == 0 {
		t.Error("gate off should find bob's purchases")
	}
}

func TestRecommendForQueryRanksOwnedLast(t *testing.T) {
	e := fixture(t)
	cat := catalog.New() // not used; matches come from the fixture's catalog via Search shape
	_ = cat
	matches := []catalog.Match{
		{Product: &catalog.Product{ID: "lap1", Category: "laptop", Terms: map[string]float64{"ssd": 1}}, Score: 1.0},
		{Product: &catalog.Product{ID: "lap2", Category: "laptop", Terms: map[string]float64{"ssd": 0.9}}, Score: 0.9},
	}
	recs, err := e.RecommendForQuery("alice", matches, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("recs = %+v", recs)
	}
	// alice owns lap1: it must sink below lap2 despite higher raw relevance.
	if recs[0].ProductID != "lap2" {
		t.Errorf("owned product did not sink: %+v", recs)
	}
}

func TestRecommendForQueryUnknownUserStillRanks(t *testing.T) {
	e := fixture(t)
	matches := []catalog.Match{
		{Product: &catalog.Product{ID: "x", Category: "laptop", Terms: map[string]float64{}}, Score: 2},
		{Product: &catalog.Product{ID: "y", Category: "laptop", Terms: map[string]float64{}}, Score: 1},
	}
	recs, err := e.RecommendForQuery("stranger", matches, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].ProductID != "x" {
		t.Errorf("anonymous rerank = %+v", recs)
	}
}

func TestRecommendForQueryEmpty(t *testing.T) {
	e := fixture(t)
	recs, err := e.RecommendForQuery("alice", nil, 5)
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty query: %v, %v", recs, err)
	}
}

func TestNeighborsOptionLimitsK(t *testing.T) {
	e := fixture(t, WithNeighbors(1))
	if e.k != 1 {
		t.Fatalf("k = %d", e.k)
	}
	// Invalid k ignored.
	e2 := fixture(t, WithNeighbors(-5))
	if e2.k != 10 {
		t.Fatalf("default k = %d", e2.k)
	}
}

// End-to-end sanity on a generated universe: all personalized strategies
// beat random expectation, and hybrid recall is at least CF's on average.
func TestStrategiesOnUniverse(t *testing.T) {
	u, err := workload.Generate(workload.Config{
		Seed: 7, Users: 60, Products: 300, Categories: 6, RelevantPerUser: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(u.Catalog, WithNeighbors(8))
	for _, usr := range u.Users {
		p, err := u.BuildProfile(usr)
		if err != nil {
			t.Fatal(err)
		}
		e.SetProfile(p)
	}
	for user, pids := range u.Purchases() {
		for _, pid := range pids {
			e.RecordPurchase(user, pid)
		}
	}

	hit := func(strategy Strategy) (hits, total int) {
		for _, usr := range u.Users {
			recs, err := e.Recommend(strategy, usr.ID, "", 10)
			if err != nil {
				t.Fatal(err)
			}
			held := make(map[string]bool)
			for _, id := range usr.Held {
				held[id] = true
			}
			for _, r := range recs {
				if held[r.ProductID] {
					hits++
				}
			}
			total += 10
		}
		return hits, total
	}

	cfHits, n := hit(StrategyCF)
	ifHits, _ := hit(StrategyIF)
	hyHits, _ := hit(StrategyHybrid)
	// Random baseline: 8 held / 300 products ≈ 2.7% of slots.
	randomExpect := float64(n) * 8.0 / 300.0
	t.Logf("hits out of %d slots: cf=%d if=%d hybrid=%d random~%.0f", n, cfHits, ifHits, hyHits, randomExpect)
	if float64(ifHits) < 2*randomExpect {
		t.Errorf("IF barely beats random: %d vs %.0f", ifHits, randomExpect)
	}
	if float64(hyHits) < 2*randomExpect {
		t.Errorf("hybrid barely beats random: %d vs %.0f", hyHits, randomExpect)
	}
	if cfHits == 0 {
		t.Error("CF found nothing at all")
	}
}
