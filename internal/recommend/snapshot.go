package recommend

import (
	"iter"
	"sort"

	"agentrec/internal/profile"
	"agentrec/internal/similarity"
)

// Snapshot is an immutable view of the consumer community assembled from
// the per-shard copy-on-read views. Every recommendation strategy runs
// against one Snapshot, so a request sees a stable community even while
// Profile Agents install profiles and record purchases concurrently —
// readers never hold a lock while scoring.
//
// Consistency is per shard: each shard's profiles and purchases are a
// coherent pair (a consumer's profile and own purchases always agree,
// since both live in the consumer's shard); cross-shard skew is bounded by
// the writes that landed while the snapshot was being assembled.
//
// Accessors return shared internal state. Callers must treat returned
// profiles and purchase sets as read-only.
type Snapshot struct {
	views []*shardView
}

// Snapshot captures the current community view. Taking one is cheap when
// the community is quiet — each untouched shard contributes its cached
// view via two atomic loads.
func (e *Engine) Snapshot() *Snapshot {
	views := make([]*shardView, len(e.shards))
	for i, sh := range e.shards {
		views[i] = sh.snapshot()
	}
	return &Snapshot{views: views}
}

func (s *Snapshot) viewFor(userID string) *shardView {
	return s.views[fnv32a(userID)%uint32(len(s.views))]
}

// stored returns the profile entry for userID, or nil when unknown.
func (s *Snapshot) stored(userID string) *stored {
	return s.viewFor(userID).profiles[userID]
}

// Profile returns the profile stored for userID, or nil when unknown. The
// returned profile is shared and must not be mutated.
func (s *Snapshot) Profile(userID string) *profile.Profile {
	if st := s.stored(userID); st != nil {
		return st.prof
	}
	return nil
}

// Purchases returns userID's purchase set in this view (nil when none).
// The returned set is shared and must not be mutated.
func (s *Snapshot) Purchases(userID string) map[string]bool {
	return s.viewFor(userID).purchases[userID]
}

// Users returns the ids of all consumers with a profile in the view, sorted.
func (s *Snapshot) Users() []string {
	var out []string
	for _, v := range s.views {
		for id := range v.profiles {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Len reports the number of consumers with a profile in the view.
func (s *Snapshot) Len() int {
	n := 0
	for _, v := range s.views {
		n += len(v.profiles)
	}
	return n
}

// candidates streams every profile in the view as a similarity candidate
// for category — the full-community fallback for when the posting-list
// restriction does not apply (gate ablated, or a target with no evidence
// in the category).
func (s *Snapshot) candidates(category string) iter.Seq[similarity.Candidate] {
	return func(yield func(similarity.Candidate) bool) {
		for _, v := range s.views {
			for id, st := range v.profiles {
				c := similarity.Candidate{UserID: id, Vec: st.sum.Vec, Ty: st.sum.Prefs[category]}
				if !yield(c) {
					return
				}
			}
		}
	}
}
