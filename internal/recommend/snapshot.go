package recommend

import (
	"iter"
	"sort"
	"sync"

	"agentrec/internal/profile"
	"agentrec/internal/similarity"
)

// Snapshot is an immutable view of the consumer community assembled from
// the per-shard copy-on-read views. Every recommendation strategy runs
// against one Snapshot, so a request sees a stable community even while
// Profile Agents install profiles and record purchases concurrently —
// readers never hold a lock while scoring.
//
// Consistency is per shard: each shard's profiles and purchases are a
// coherent pair (a consumer's profile and own purchases always agree,
// since both live in the consumer's shard); cross-shard skew is bounded by
// the writes that landed while the snapshot was being assembled.
//
// With shard spilling enabled the snapshot is lazy: views of resident
// shards are captured eagerly (still lock-free), while a spilled shard is
// faulted in and materialized only if the request actually touches it —
// so one recommendation faults in the target's and its neighbours' shards,
// not the whole community. A lazily materialized view reflects the shard
// at first touch rather than at Snapshot() time; that is the same
// cross-shard skew bound as above, just deferred.
//
// Accessors return shared internal state. Callers must treat returned
// profiles and purchase sets as read-only.
type Snapshot struct {
	views []*shardView

	e  *Engine    // non-nil only for lazy (spilling) snapshots
	mu sync.Mutex // guards views when lazy
}

// Snapshot captures the current community view. Taking one is cheap when
// the community is quiet — each untouched shard contributes its cached
// view via two atomic loads. Spilled shards are left unmaterialized until
// a request touches them.
func (e *Engine) Snapshot() *Snapshot {
	views := make([]*shardView, len(e.shards))
	if e.spilling() {
		for i, sh := range e.shards {
			if sh.resident.Load() {
				views[i] = sh.snapshot() // nil if evicted this instant: stays lazy
			}
		}
		return &Snapshot{views: views, e: e}
	}
	for i, sh := range e.shards {
		views[i] = sh.snapshot()
	}
	return &Snapshot{views: views}
}

// view returns the materialized view for shard i, faulting it in for lazy
// snapshots. A fault-in failure is recorded as the engine's sticky error
// and an empty view is returned so scoring stays deterministic.
func (s *Snapshot) view(i int) *shardView {
	if s.e == nil {
		return s.views[i]
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if v := s.views[i]; v != nil {
		return v
	}
	v, err := s.e.residentView(s.e.shards[i])
	if err != nil {
		s.e.setErr(err)
		v = &shardView{}
	}
	s.views[i] = v
	return v
}

func (s *Snapshot) shardIdx(userID string) int {
	return int(fnv32a(userID) % uint32(len(s.views)))
}

func (s *Snapshot) viewFor(userID string) *shardView {
	return s.view(s.shardIdx(userID))
}

// stored returns the profile entry for userID, or nil when unknown.
func (s *Snapshot) stored(userID string) *stored {
	return s.viewFor(userID).profiles[userID]
}

// peek is stored without fault-in: it reports the entry and whether this
// snapshot has a materialized view for the consumer's shard at all. A
// false second return means the shard was spilled when the snapshot was
// taken, so the candidate index's posting for the consumer is canonical.
func (s *Snapshot) peek(userID string) (*stored, bool) {
	i := s.shardIdx(userID)
	if s.e == nil {
		return s.views[i].profiles[userID], true
	}
	s.mu.Lock()
	v := s.views[i]
	s.mu.Unlock()
	if v == nil {
		return nil, false
	}
	return v.profiles[userID], true
}

// Profile returns the profile stored for userID, or nil when unknown. The
// returned profile is shared and must not be mutated.
func (s *Snapshot) Profile(userID string) *profile.Profile {
	if st := s.stored(userID); st != nil {
		return st.prof
	}
	return nil
}

// Purchases returns userID's purchase set in this view (nil when none).
// The returned set is shared and must not be mutated.
func (s *Snapshot) Purchases(userID string) map[string]bool {
	return s.viewFor(userID).purchases[userID]
}

// Users returns the ids of all consumers with a profile in the view,
// sorted. On a lazy snapshot this materializes every shard.
func (s *Snapshot) Users() []string {
	var out []string
	for i := range s.views {
		for id := range s.view(i).profiles {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Len reports the number of consumers with a profile in the view. On a
// lazy snapshot this materializes every shard.
func (s *Snapshot) Len() int {
	n := 0
	for i := range s.views {
		n += len(s.view(i).profiles)
	}
	return n
}

// candidates streams every profile in the view as a similarity candidate
// for category — the full-community fallback for when the posting-list
// restriction does not apply (gate ablated, or a target with no evidence
// in the category). On a lazy snapshot this materializes every shard.
func (s *Snapshot) candidates(category string) iter.Seq[similarity.Candidate] {
	return func(yield func(similarity.Candidate) bool) {
		for i := range s.views {
			for id, st := range s.view(i).profiles {
				c := similarity.Candidate{
					UserID: id, Vec: st.sum.Vec, Ty: st.sum.Prefs[category],
					Norm: st.sum.Norm, Dense: st.sum.Dense,
				}
				if !yield(c) {
					return
				}
			}
		}
	}
}
