package recommend

import (
	"time"

	"agentrec/internal/ops"
)

// This file is the engine's event-plane integration: the producer hooks
// that publish the engine's and replicator's activity onto an ops.Bus, and
// the conversions from the legacy stats structs to the unified ops model.
//
// Everything here is opt-in (WithEventBus / WithReplicationEvents) and
// costless when disabled: the hot paths test one nil pointer. When enabled,
// publishing is a bounded copy into the bus's rings (zero-alloc, never
// blocking on consumers — see ops.Bus), so an engine write never waits on
// an observer. Events are published after the shard critical section
// releases; each journal event carries the shard's journal sequence number,
// which is the per-shard order consumers should trust, not bus arrival
// order.

// WithEventBus publishes the engine's activity onto bus as ops events:
// journal appends (KindJournal), compaction passes (KindCompaction), and —
// on the Recommend entry point — served top-N changes (KindRecDelta).
// server is the identity stamped into every event, the buyer server index
// in a platform deployment.
func WithEventBus(bus *ops.Bus, server int) Option {
	return func(e *Engine) {
		e.events = bus
		e.eventServer = server
	}
}

// publishJournal emits one KindJournal event for a committed shard
// mutation. No-op without a bus.
func (e *Engine) publishJournal(shard int, seq uint64, op string, records, payloadBytes int) {
	if e.events == nil {
		return
	}
	e.events.Publish(ops.Event{Kind: ops.KindJournal, Journal: ops.JournalEvent{
		Server:       e.eventServer,
		Shard:        shard,
		Seq:          seq,
		Op:           op,
		Records:      records,
		PayloadBytes: payloadBytes,
	}})
}

// publishCompaction emits one KindCompaction event for a completed
// CompactState pass. No-op without a bus.
func (e *Engine) publishCompaction(elapsed time.Duration, before, after JournalStats) {
	if e.events == nil {
		return
	}
	e.events.Publish(ops.Event{Kind: ops.KindCompaction, Compaction: ops.CompactionEvent{
		Server:         e.eventServer,
		Compactions:    e.compactions.Load(),
		DurationMs:     float64(elapsed) / float64(time.Millisecond),
		JournalBytes:   after.JournalBytes,
		LiveBytes:      after.LiveBytes,
		ReclaimedBytes: before.JournalBytes - after.JournalBytes,
	}})
}

// maxDeltaKeys bounds the served-top-N memory used for delta detection.
// Past the bound the baselines reset wholesale: the next answer per key
// re-baselines (and republishes), trading a spurious delta for a hard
// memory ceiling on communities with unbounded distinct request keys.
const maxDeltaKeys = 1 << 16

// publishRecDelta compares the served top-N against the previous answer for
// the same (user, category, strategy) and publishes a KindRecDelta event
// when it changed. The first non-empty answer for a key counts as a change
// from nothing (everything entered). No-op without a bus.
func (e *Engine) publishRecDelta(strategy Strategy, userID, category string, recs []Rec, latency time.Duration) {
	if e.events == nil {
		return
	}
	top := make([]string, len(recs))
	for i, r := range recs {
		top[i] = r.ProductID
	}
	key := userID + "\x00" + category + "\x00" + strategy.String()
	e.deltaMu.Lock()
	if e.lastTop == nil || len(e.lastTop) >= maxDeltaKeys {
		e.lastTop = make(map[string][]string)
	}
	prev, seen := e.lastTop[key]
	if seen && equalIDs(prev, top) {
		e.deltaMu.Unlock()
		return
	}
	e.lastTop[key] = top
	e.deltaMu.Unlock()
	if !seen && len(top) == 0 {
		return // a first answer with nothing in it is a baseline, not a delta
	}
	entered, exited := diffIDs(prev, top)
	e.events.Publish(ops.Event{Kind: ops.KindRecDelta, RecDelta: ops.RecDelta{
		Server:    e.eventServer,
		UserID:    userID,
		Category:  category,
		Strategy:  strategy.String(),
		Top:       top,
		Entered:   entered,
		Exited:    exited,
		LatencyMs: float64(latency) / float64(time.Millisecond),
	}})
}

func equalIDs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// diffIDs reports which ids are new in cur versus prev and which are gone.
func diffIDs(prev, cur []string) (entered, exited []string) {
	in := func(xs []string, id string) bool {
		for _, x := range xs {
			if x == id {
				return true
			}
		}
		return false
	}
	for _, id := range cur {
		if !in(prev, id) {
			entered = append(entered, id)
		}
	}
	for _, id := range prev {
		if !in(cur, id) {
			exited = append(exited, id)
		}
	}
	return entered, exited
}

// WithReplicationEvents publishes the replicator's lag transitions onto bus
// (KindLag): whenever a pull observes a different backlog for a shard than
// the previous pull did, an event records the edge — falling behind (prev 0,
// now N) and catching up (prev N, now 0) included. server identifies this
// follower in the events.
func WithReplicationEvents(bus *ops.Bus, server int) ReplicatorOption {
	return func(r *Replicator) {
		r.events = bus
		r.eventServer = server
	}
}

// EventView is st in the unified ops model: the engine slice of an
// ops.Snapshot heartbeat, with durations converted to the wire's
// milliseconds.
func (st Stats) EventView() ops.EngineSnapshot {
	return ops.EngineSnapshot{
		Shards:            st.Shards,
		ResidentShards:    st.ResidentShards,
		Users:             st.Users,
		IndexedCategories: st.IndexedCategories,
		Postings:          st.Postings,
		IndexWrites:       st.IndexWrites,
		JournalBytes:      st.JournalBytes,
		LiveBytes:         st.LiveBytes,
		Compactions:       st.Compactions,
		LastCompactionMs:  float64(st.LastCompaction) / float64(time.Millisecond),
	}
}

// EventView is st in the unified ops model: the replication slice of an
// ops.Snapshot heartbeat, with the derived lags materialized as
// `lag_records` fields.
func (st ReplicationStats) EventView() ops.ReplicationSnapshot {
	out := ops.ReplicationSnapshot{Self: st.Self, Servers: st.Servers, LagRecords: st.Lag()}
	for _, s := range st.Shards {
		out.Shards = append(out.Shards, ops.ShardLag{
			Shard:      s.Shard,
			Owner:      s.Owner,
			Epoch:      s.Epoch,
			AppliedSeq: s.AppliedSeq,
			OwnerSeq:   s.OwnerSeq,
			LagRecords: s.Lag(),
			Records:    s.Records,
			Snapshots:  s.Snapshots,
			Pages:      s.Pages,
			Restarts:   s.Restarts,
			LastError:  s.LastError,
		})
	}
	return out
}
