package recommend

// Concurrency and shard-semantics tests for the sharded engine. The soak
// test is meant to run under -race (CI does): M goroutines interleave
// SetProfile, RecordPurchase, and Recommend across every strategy, plus the
// Trending/TiedSales extensions, hunting torn reads; the frozen-community
// tests then pin down that concurrency never changes answers — the same
// community gives byte-identical top-N for any shard count, and the
// posting-list candidate index is an exact substitute for a full community
// scan.

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"agentrec/internal/profile"
	"agentrec/internal/similarity"
	"agentrec/internal/workload"
)

// soakUniverse builds a community and its profiles once per test.
func soakUniverse(t *testing.T) (*workload.Universe, []*profile.Profile) {
	t.Helper()
	u, err := workload.Generate(workload.Config{
		Seed: 23, Users: 120, Products: 300, Categories: 8, RelevantPerUser: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	profiles := make([]*profile.Profile, len(u.Users))
	for i, usr := range u.Users {
		p, err := u.BuildProfile(usr)
		if err != nil {
			t.Fatal(err)
		}
		profiles[i] = p
	}
	return u, profiles
}

// recsEquivalent compares two recommendation lists allowing last-ulp float
// noise: cosine and preference sums follow map iteration order, so scores
// can differ by ~1e-16 between computations and near-exact ties may swap.
// Positionally scores must agree within eps, and the id sequence must agree
// except inside runs of eps-tied scores, which may permute.
func recsEquivalent(got, want []Rec) bool {
	const eps = 1e-9
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i].Source != want[i].Source || math.Abs(got[i].Score-want[i].Score) > eps {
			return false
		}
	}
	i := 0
	for i < len(want) {
		j := i + 1
		for j < len(want) && math.Abs(want[j].Score-want[j-1].Score) <= eps {
			j++
		}
		gotIDs := make(map[string]bool, j-i)
		for _, r := range got[i:j] {
			gotIDs[r.ProductID] = true
		}
		for _, r := range want[i:j] {
			if !gotIDs[r.ProductID] {
				return false
			}
		}
		i = j
	}
	return true
}

func loadEngine(u *workload.Universe, profiles []*profile.Profile, opts ...Option) *Engine {
	e := NewEngine(u.Catalog, opts...)
	for _, p := range profiles {
		e.SetProfile(p)
	}
	for user, pids := range u.Purchases() {
		for _, pid := range pids {
			e.RecordPurchase(user, pid)
		}
	}
	return e
}

// TestConcurrentSoak interleaves writers and readers across every strategy.
// It asserts nothing about scores — the point is that under -race no
// goroutine observes a torn profile, purchase set, index posting, or
// history shard, and no strategy returns an unexpected error mid-churn.
func TestConcurrentSoak(t *testing.T) {
	u, profiles := soakUniverse(t)
	e := NewEngine(u.Catalog, WithNeighbors(8), WithShards(8))
	// Seed half the community; the soak installs the rest while reading.
	for i := 0; i < len(profiles)/2; i++ {
		e.SetProfile(profiles[i])
	}
	purch := u.Purchases()

	const workers = 16
	const iters = 300
	strategies := []Strategy{StrategyAuto, StrategyCF, StrategyIF, StrategyHybrid, StrategyTopSeller}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 97))
			for i := 0; i < iters; i++ {
				usr := u.Users[rng.IntN(len(u.Users))]
				switch i % 8 {
				case 0:
					e.SetProfile(profiles[rng.IntN(len(profiles))])
				case 1:
					if pids := purch[usr.ID]; len(pids) > 0 {
						e.RecordPurchaseAt(usr.ID, pids[rng.IntN(len(pids))], start.Add(time.Duration(i)*time.Millisecond))
					}
				case 2:
					e.Trending(start.Add(time.Second), time.Hour, 5)
				case 3:
					if pids := purch[usr.ID]; len(pids) > 0 {
						e.TiedSales(pids[0], 1, 5)
					}
				case 4:
					if _, err := e.Profile(usr.ID); err != nil && !errors.Is(err, ErrUnknownUser) {
						t.Error(err)
					}
				default:
					s := strategies[i%len(strategies)]
					if _, err := e.Recommend(s, usr.ID, "", 10); err != nil && !errors.Is(err, ErrUnknownUser) {
						t.Errorf("strategy %v: %v", s, err)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	st := e.Stats()
	// Half the community was seeded up front; the soak's random SetProfile
	// draws install more, but full coverage is RNG luck — don't demand it.
	if st.Users < len(profiles)/2 || st.Users > len(profiles) {
		t.Errorf("after soak Users = %d, want within [%d, %d]", st.Users, len(profiles)/2, len(profiles))
	}
	if st.Shards != 8 {
		t.Errorf("Shards = %d", st.Shards)
	}
	if st.Postings == 0 || st.IndexedCategories == 0 {
		t.Errorf("index empty after soak: %+v", st)
	}
}

// TestFrozenCommunityStableOrdering freezes a fully loaded community and
// has concurrent readers pull every strategy repeatedly: all of them must
// see exactly the ordering a serial reference pass computed.
func TestFrozenCommunityStableOrdering(t *testing.T) {
	u, profiles := soakUniverse(t)
	e := loadEngine(u, profiles, WithNeighbors(8))

	strategies := []Strategy{StrategyCF, StrategyIF, StrategyHybrid, StrategyTopSeller}
	ref := make(map[string][]Rec)
	for _, usr := range u.Users {
		for _, s := range strategies {
			recs, err := e.Recommend(s, usr.ID, "", 10)
			if err != nil {
				t.Fatal(err)
			}
			ref[usr.ID+"/"+s.String()] = recs
		}
	}

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 11))
			for i := 0; i < 150; i++ {
				usr := u.Users[rng.IntN(len(u.Users))]
				s := strategies[rng.IntN(len(strategies))]
				recs, err := e.Recommend(s, usr.ID, "", 10)
				if err != nil {
					t.Error(err)
					return
				}
				if want := ref[usr.ID+"/"+s.String()]; !recsEquivalent(recs, want) {
					t.Errorf("unstable ordering for %s/%s:\n got %+v\nwant %+v", usr.ID, s, recs, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestShardCountInvariance: sharding is an implementation detail — the same
// community must produce identical recommendations for any shard count.
func TestShardCountInvariance(t *testing.T) {
	u, profiles := soakUniverse(t)
	baseline := loadEngine(u, profiles, WithNeighbors(8), WithShards(1))
	strategies := []Strategy{StrategyAuto, StrategyCF, StrategyIF, StrategyHybrid, StrategyTopSeller}
	for _, shards := range []int{3, 16, 64} {
		e := loadEngine(u, profiles, WithNeighbors(8), WithShards(shards))
		for _, usr := range u.Users {
			for _, s := range strategies {
				want, err := baseline.Recommend(s, usr.ID, "", 10)
				if err != nil {
					t.Fatal(err)
				}
				got, err := e.Recommend(s, usr.ID, "", 10)
				if err != nil {
					t.Fatal(err)
				}
				if !recsEquivalent(got, want) {
					t.Fatalf("shards=%d user=%s strategy=%v diverged:\n got %+v\nwant %+v",
						shards, usr.ID, s, got, want)
				}
			}
		}
	}
}

// TestIndexedNeighborsMatchFullScan proves the posting-list restriction is
// exact: for every consumer, the neighbours CF finds through the
// per-category index equal those of a brute-force similarity.TopK over the
// whole materialized community.
func TestIndexedNeighborsMatchFullScan(t *testing.T) {
	u, profiles := soakUniverse(t)
	e := loadEngine(u, profiles, WithNeighbors(8))
	all := make([]*profile.Profile, len(profiles))
	copy(all, profiles)

	snap := e.Snapshot()
	for _, target := range profiles {
		st := snap.stored(target.UserID)
		if st == nil {
			t.Fatalf("missing %s", target.UserID)
		}
		cat := neighborCategory(st.prof, "")
		got, err := e.neighbors(snap, st, cat, e.tolerance)
		if err != nil {
			t.Fatal(err)
		}
		want, err := similarity.TopK(target, all, cat, e.tolerance, e.k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("user %s: %d neighbours via index, %d via full scan", target.UserID, len(got), len(want))
		}
		// Scores may differ in the last ulp: the index sums preference
		// values and cosines over the stored clone's maps, the reference
		// over the originals, and float summation order follows map
		// iteration order. The neighbour set and ranking must still agree.
		const eps = 1e-9
		for i := range want {
			if got[i].UserID != want[i].UserID || math.Abs(got[i].Score-want[i].Score) > eps {
				t.Fatalf("user %s neighbour %d: got %+v want %+v", target.UserID, i, got[i], want[i])
			}
		}
	}
}

// TestSnapshotIsolation: a snapshot must not see writes that land after it
// was taken.
func TestSnapshotIsolation(t *testing.T) {
	u, profiles := soakUniverse(t)
	e := loadEngine(u, profiles, WithNeighbors(8))
	alice := u.Users[0].ID

	snap := e.Snapshot()
	before := len(snap.Purchases(alice))
	usersBefore := snap.Len()

	e.RecordPurchase(alice, "late-product")
	fresh := profile.NewProfile("late-user")
	if err := fresh.Observe(profile.Evidence{
		Category: "cat00", Terms: map[string]float64{"t": 1}, Behaviour: profile.BehaviourBuy,
	}); err != nil {
		t.Fatal(err)
	}
	e.SetProfile(fresh)

	if got := len(snap.Purchases(alice)); got != before {
		t.Errorf("snapshot saw a later purchase: %d -> %d", before, got)
	}
	if snap.Profile("late-user") != nil || snap.Len() != usersBefore {
		t.Error("snapshot saw a later profile install")
	}
	// A fresh snapshot does see both.
	snap2 := e.Snapshot()
	if !snap2.Purchases(alice)["late-product"] || snap2.Profile("late-user") == nil {
		t.Error("fresh snapshot missed committed writes")
	}
}

// TestIndexTransitionRemovesOldPostings: replacing a consumer's profile
// must drop their postings for categories the new profile no longer
// covers — across racing SetProfile calls for the same consumer, the shard
// lock totally orders index updates, so the index ends at the final state.
func TestIndexTransitionRemovesOldPostings(t *testing.T) {
	mkProf := func(cat string) *profile.Profile {
		p := profile.NewProfile("u")
		if err := p.Observe(profile.Evidence{
			Category: cat, Terms: map[string]float64{"t": 1}, Behaviour: profile.BehaviourBuy,
		}); err != nil {
			t.Fatal(err)
		}
		return p
	}
	e := NewEngine(nil, WithShards(4))
	e.SetProfile(mkProf("laptop"))
	e.SetProfile(mkProf("camera"))

	collect := func(cat string) []string {
		var ids []string
		for c := range e.index.candidates(cat) {
			ids = append(ids, c.UserID)
		}
		return ids
	}
	if got := collect("laptop"); len(got) != 0 {
		t.Errorf("replaced profile left stale laptop posting: %v", got)
	}
	if got := collect("camera"); len(got) != 1 || got[0] != "u" {
		t.Errorf("camera posting = %v, want [u]", got)
	}

	// Racing replacements for one consumer must converge: after the dust
	// settles, exactly one category holds the posting.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				e.SetProfile(mkProf(fmt.Sprintf("cat%d", (w+i)%3)))
			}
		}(w)
	}
	wg.Wait()
	e.SetProfile(mkProf("final"))
	total := 0
	for _, cat := range []string{"cat0", "cat1", "cat2", "laptop", "camera"} {
		total += len(collect(cat))
	}
	if total != 0 {
		t.Errorf("stale postings survive racing replacements: %d", total)
	}
	if got := collect("final"); len(got) != 1 {
		t.Errorf("final posting = %v, want exactly [u]", got)
	}
}

// TestIndexCandidatesReconcileWithSnapshot: CF scoring data must come from
// the request's snapshot even when the live index has moved on.
func TestIndexCandidatesReconcileWithSnapshot(t *testing.T) {
	u, profiles := soakUniverse(t)
	e := loadEngine(u, profiles, WithNeighbors(8))
	snap := e.Snapshot()

	// A consumer installed after the snapshot must not be enumerated.
	late := profile.NewProfile("zz-late")
	if err := late.Observe(profile.Evidence{
		Category: "cat00", Terms: map[string]float64{"t": 1}, Behaviour: profile.BehaviourBuy,
	}); err != nil {
		t.Fatal(err)
	}
	e.SetProfile(late)
	for c := range e.indexCandidates(snap, "cat00") {
		if c.UserID == "zz-late" {
			t.Fatal("post-snapshot consumer enumerated from old snapshot")
		}
	}
	// A fresh snapshot does see them.
	found := false
	for c := range e.indexCandidates(e.Snapshot(), "cat00") {
		if c.UserID == "zz-late" {
			found = true
		}
	}
	if !found {
		t.Fatal("fresh snapshot missed the new consumer")
	}
}

// TestWithShardsOption pins the option's validation behaviour.
func TestWithShardsOption(t *testing.T) {
	e := NewEngine(nil, WithShards(5))
	if len(e.shards) != 5 || len(e.sells) != 5 || len(e.ext.shards) != 5 {
		t.Fatalf("shards = %d/%d/%d, want 5", len(e.shards), len(e.sells), len(e.ext.shards))
	}
	e = NewEngine(nil, WithShards(-2))
	if len(e.shards) != DefaultShards {
		t.Fatalf("invalid shard count not defaulted: %d", len(e.shards))
	}
	if fmt.Sprintf("%T", e.Snapshot()) != "*recommend.Snapshot" {
		t.Fatal("snapshot type")
	}
}
