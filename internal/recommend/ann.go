package recommend

import (
	"iter"
	"sync"

	"agentrec/internal/similarity"
)

// This file is the approximate-neighbour layer of the candidate index:
// per-category random-hyperplane LSH buckets over the dense projections
// profile.Summary precomputes (similarity/lsh.go holds the geometry). The
// buckets are maintained inside the same index-bucket critical sections as
// the postings themselves — the postings stay the canonical summaries, so
// replication, snapshot catch-up, and warm restart rebuild the hashes for
// free by replaying the same install path, and a shortlist can always be
// hydrated back into full candidates from the posting map under one lock.
//
// A shortlist is never trusted: the engine re-ranks it with the exact
// Fig 4.5 scorer (gate included), so LSH only decides who gets scored,
// never how. The exact path remains available per query (SearchExact).

// annSeed fixes the hyperplane draw so every replica buckets identically.
const annSeed = 0x6167656e74726563 // "agentrec"

const (
	// annMinBits is the starting signature depth of a fresh category: 64
	// buckets per table, deepened as the category grows.
	annMinBits = 6
	// annLoad is the target mean bucket occupancy: a category rehashes to
	// one more bit whenever members exceed annLoad << bits.
	annLoad = 32
	// annMinShortlist is the category size below which shortlisting is
	// pointless — the exact posting scan is already cheap, and tiny
	// categories are where LSH recall is shakiest.
	annMinShortlist = 128
)

// annState is the engine-wide ANN configuration: nil on the categoryIndex
// means LSH is off and the index byte-for-byte matches its exact-only
// behaviour. The hasher is immutable; probes is the per-table multi-probe
// width.
type annState struct {
	hasher *similarity.Hasher
	probes int
}

// annCat is one category's LSH structure: for every hash table, buckets of
// consumer ids keyed by bits-deep signature. Guarded by the owning
// indexShard's mutex, exactly like the posting map it shadows.
type annCat struct {
	bits   int
	n      int // members (== len of the category's posting map)
	tables []map[uint32][]string
}

func newAnnCat(tables int) *annCat {
	ac := &annCat{bits: annMinBits, tables: make([]map[uint32][]string, tables)}
	for t := range ac.tables {
		ac.tables[t] = make(map[uint32][]string)
	}
	return ac
}

// annInstallLocked adds cand to cat's buckets, deepening the signature
// depth first when the category outgrew its current bucket count. postings
// is the category's posting map (pre-insert or post-insert both work: the
// rebucketing source of truth is whatever the map holds plus cand). Caller
// holds s.mu for writing.
func (s *indexShard) annInstallLocked(ann *annState, cat string, cand similarity.Candidate) {
	ac := s.ann[cat]
	if ac == nil {
		ac = newAnnCat(ann.hasher.Tables())
		s.ann[cat] = ac
	}
	ac.n++
	if ac.n > annLoad<<ac.bits && ac.bits < similarity.MaxBits {
		s.annRehashLocked(ann, cat, ac, cand)
		return
	}
	for t := range ac.tables {
		sig := ann.hasher.Sig(cand.Dense, t, ac.bits)
		ac.tables[t][sig] = append(ac.tables[t][sig], cand.UserID)
	}
}

// annRehashLocked deepens cat's signatures and rebuckets every live member
// from the posting map (each posting carries its shared Dense projection),
// plus extra — the candidate being installed, not yet in the map. This is
// the "rehash live buckets" moment: it runs under the bucket write lock,
// so concurrent shortlist readers see either the old depth or the new one,
// never a mix.
func (s *indexShard) annRehashLocked(ann *annState, cat string, ac *annCat, extra similarity.Candidate) {
	for ac.n > annLoad<<ac.bits && ac.bits < similarity.MaxBits {
		ac.bits++
	}
	m := s.postings[cat]
	for t := range ac.tables {
		nb := make(map[uint32][]string, len(m)/annLoad+1)
		for _, c := range m {
			sig := ann.hasher.Sig(c.Dense, t, ac.bits)
			nb[sig] = append(nb[sig], c.UserID)
		}
		if _, already := m[extra.UserID]; !already {
			sig := ann.hasher.Sig(extra.Dense, t, ac.bits)
			nb[sig] = append(nb[sig], extra.UserID)
		}
		ac.tables[t] = nb
	}
}

// annRemoveLocked drops old from cat's buckets (old is the posting being
// replaced or deleted, whose Dense locates its current buckets). Caller
// holds s.mu for writing.
func (s *indexShard) annRemoveLocked(ann *annState, cat string, old similarity.Candidate) {
	ac := s.ann[cat]
	if ac == nil {
		return
	}
	ac.n--
	for t := range ac.tables {
		sig := ann.hasher.Sig(old.Dense, t, ac.bits)
		b := ac.tables[t][sig]
		for i, id := range b {
			if id == old.UserID {
				b[i] = b[len(b)-1]
				ac.tables[t][sig] = b[:len(b)-1]
				break
			}
		}
		if len(ac.tables[t][sig]) == 0 {
			delete(ac.tables[t], sig)
		}
	}
	if ac.n <= 0 {
		delete(s.ann, cat)
	}
}

// annShortlist is one pooled shortlist query: the deduped candidates and
// the scratch the probe loop reuses. Release returns it to the pool.
type annShortlist struct {
	cands []similarity.Candidate
	seen  map[string]struct{}
	sigs  []uint32
}

var annShortPool = sync.Pool{
	New: func() any { return &annShortlist{seen: make(map[string]struct{}, 256)} },
}

func (q *annShortlist) release() {
	clear(q.seen)
	q.cands = q.cands[:0]
	q.sigs = q.sigs[:0]
	annShortPool.Put(q)
}

// seq streams the shortlisted candidates. The engine feeds it through the
// same snapshot reconciliation as the full posting list, then releases q.
func (q *annShortlist) seq() iter.Seq[similarity.Candidate] {
	return func(yield func(similarity.Candidate) bool) {
		for _, c := range q.cands {
			if !yield(c) {
				return
			}
		}
	}
}

// shortlist probes category's LSH buckets for dense's neighbours and
// hydrates the deduped ids back into posting candidates, all under one
// bucket read lock. Nil means "no shortlist — score exactly": ANN off, the
// category too small, an unindexed category, or a zero projection.
func (ix *categoryIndex) shortlist(category string, dense []float32) *annShortlist {
	ann := ix.ann
	if ann == nil || len(dense) == 0 {
		return nil
	}
	zero := true
	for _, v := range dense {
		if v != 0 {
			zero = false
			break
		}
	}
	if zero {
		return nil
	}
	s := ix.shardFor(category)
	s.mu.RLock()
	ac := s.ann[category]
	if ac == nil || ac.n < annMinShortlist {
		s.mu.RUnlock()
		return nil
	}
	m := s.postings[category]
	q := annShortPool.Get().(*annShortlist)
	for t := range ac.tables {
		q.sigs = ann.hasher.Probes(dense, t, ac.bits, ann.probes, q.sigs[:0])
		for _, sig := range q.sigs {
			for _, id := range ac.tables[t][sig] {
				if _, dup := q.seen[id]; dup {
					continue
				}
				q.seen[id] = struct{}{}
				if c, ok := m[id]; ok {
					q.cands = append(q.cands, c)
				}
			}
		}
	}
	s.mu.RUnlock()
	return q
}
