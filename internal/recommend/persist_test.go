package recommend

// Durability tests: warm restart recovers the exact community, a crash
// mid-batch (torn WAL tail) recovers the intact prefix, spilled shards
// answer identically to resident ones, and the whole persistence path
// survives a -race soak.

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"agentrec/internal/profile"
	"agentrec/internal/workload"
)

// loadEngineErr is loadEngine for persistent engines: construction and
// writes report errors instead of panicking.
func loadEngineErr(t *testing.T, u *workload.Universe, profiles []*profile.Profile, opts ...Option) *Engine {
	t.Helper()
	e, err := Open(u.Catalog, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range profiles {
		if err := e.SetProfile(p); err != nil {
			t.Fatal(err)
		}
	}
	for user, pids := range u.Purchases() {
		for _, pid := range pids {
			if err := e.RecordPurchase(user, pid); err != nil {
				t.Fatal(err)
			}
		}
	}
	return e
}

// communityEqual asserts b holds exactly a's community: users, profiles,
// purchase sets, index sizing, and per-strategy recommendations.
func communityEqual(t *testing.T, a, b *Engine) {
	t.Helper()
	usersA, usersB := a.Users(), b.Users()
	if !reflect.DeepEqual(usersA, usersB) {
		t.Fatalf("user sets differ: %d vs %d users", len(usersA), len(usersB))
	}
	stA, stB := a.Stats(), b.Stats()
	if stA.Users != stB.Users || stA.IndexedCategories != stB.IndexedCategories || stA.Postings != stB.Postings {
		t.Fatalf("stats differ: %+v vs %+v", stA, stB)
	}
	snapA, snapB := a.Snapshot(), b.Snapshot()
	for _, user := range usersA {
		pa, pb := snapA.Profile(user), snapB.Profile(user)
		if pa == nil || pb == nil {
			t.Fatalf("profile for %s missing (a=%v b=%v)", user, pa != nil, pb != nil)
		}
		if !reflect.DeepEqual(pa.Vector(), pb.Vector()) {
			t.Fatalf("profile vectors for %s differ", user)
		}
		if !reflect.DeepEqual(snapA.Purchases(user), snapB.Purchases(user)) {
			t.Fatalf("purchase sets for %s differ", user)
		}
	}
	for _, strat := range []Strategy{StrategyCF, StrategyHybrid, StrategyTopSeller} {
		for _, user := range usersA {
			ra, errA := a.Recommend(strat, user, "", 10)
			rb, errB := b.Recommend(strat, user, "", 10)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("%v for %s: errors differ: %v vs %v", strat, user, errA, errB)
			}
			if !recsEquivalent(rb, ra) {
				t.Fatalf("%v recommendations for %s differ:\n  a=%v\n  b=%v", strat, user, ra, rb)
			}
		}
	}
}

func TestPersistentRestartIdenticalRecommendations(t *testing.T) {
	u, profiles := soakUniverse(t)
	dir := t.TempDir()

	e1 := loadEngineErr(t, u, profiles, WithPersistence(dir), WithNeighbors(8))
	mem := loadEngine(u, profiles, WithNeighbors(8))
	// Write-through must not change answers while the engine is live.
	communityEqual(t, mem, e1)
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(u.Catalog, WithPersistence(dir), WithNeighbors(8))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	// The reopened engine is the same community: identical users,
	// profiles, purchases, postings, and recommendations.
	communityEqual(t, mem, e2)
}

func TestPersistentEngineOperationsAfterRecovery(t *testing.T) {
	u, profiles := soakUniverse(t)
	dir := t.TempDir()
	e1 := loadEngineErr(t, u, profiles, WithPersistence(dir))
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	// The recovered engine keeps accepting writes, and a third generation
	// sees them.
	e2, err := Open(u.Catalog, WithPersistence(dir))
	if err != nil {
		t.Fatal(err)
	}
	newcomer := profile.NewProfile("newcomer")
	prod := u.Catalog.All()[0]
	if err := newcomer.Observe(prod.Evidence(profile.BehaviourBuy)); err != nil {
		t.Fatal(err)
	}
	if err := e2.SetProfile(newcomer); err != nil {
		t.Fatal(err)
	}
	if err := e2.RecordPurchase("newcomer", prod.ID); err != nil {
		t.Fatal(err)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}

	e3, err := Open(u.Catalog, WithPersistence(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	p, err := e3.Profile("newcomer")
	if err != nil {
		t.Fatalf("newcomer lost across second restart: %v", err)
	}
	if p.Observed != 1 {
		t.Errorf("newcomer.Observed = %d, want 1", p.Observed)
	}
	if !e3.Snapshot().Purchases("newcomer")[prod.ID] {
		t.Error("newcomer's purchase lost across second restart")
	}
}

func TestCrashMidBatchRecoversPrefix(t *testing.T) {
	u, profiles := soakUniverse(t)
	dir := t.TempDir()
	e1 := loadEngineErr(t, u, profiles, WithPersistence(dir))
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, CommunityWAL)
	fi, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	intact := fi.Size()

	// One more SetProfile = exactly one WAL record; chop into its middle
	// to simulate a crash mid-append.
	e2, err := Open(u.Catalog, WithPersistence(dir))
	if err != nil {
		t.Fatal(err)
	}
	late := profile.NewProfile("late-writer")
	if err := late.Observe(u.Catalog.All()[0].Evidence(profile.BehaviourBuy)); err != nil {
		t.Fatal(err)
	}
	if err := e2.SetProfile(late); err != nil {
		t.Fatal(err)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	fi2, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if fi2.Size() <= intact {
		t.Fatalf("SetProfile appended nothing: %d -> %d", intact, fi2.Size())
	}
	if err := os.Truncate(wal, intact+(fi2.Size()-intact)/2); err != nil {
		t.Fatal(err)
	}

	e3, err := Open(u.Catalog, WithPersistence(dir))
	if err != nil {
		t.Fatalf("Open after torn tail: %v", err)
	}
	defer e3.Close()
	if _, err := e3.Profile("late-writer"); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("torn write visible after recovery: %v", err)
	}
	// The prefix — the full seeded community — must be intact.
	if got, want := len(e3.Users()), len(profiles); got != want {
		t.Errorf("recovered %d users, want %d", got, want)
	}
	mem := loadEngine(u, profiles)
	communityEqual(t, mem, e3)
}

func TestSpilledShardsAnswerIdentically(t *testing.T) {
	u, profiles := soakUniverse(t)
	dir := t.TempDir()
	const shards = 8
	mem := loadEngine(u, profiles, WithNeighbors(8), WithShards(shards))

	e := loadEngineErr(t, u, profiles,
		WithPersistence(dir), WithNeighbors(8), WithShards(shards), WithMaxResidentShards(2))
	defer e.Close()
	if st := e.Stats(); st.ResidentShards > 2 {
		t.Fatalf("ResidentShards = %d, want <= 2", st.ResidentShards)
	}
	// Every read faults shards in transparently and answers exactly like
	// the fully resident engine; eviction keeps the cap between requests.
	communityEqual(t, mem, e)
	if err := e.Err(); err != nil {
		t.Fatalf("sticky persistence error: %v", err)
	}

	// Restart with the cap still in place: warm restart + spilling compose.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(u.Catalog,
		WithPersistence(dir), WithNeighbors(8), WithShards(shards), WithMaxResidentShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if st := e2.Stats(); st.ResidentShards > 2 {
		t.Fatalf("after restart ResidentShards = %d, want <= 2", st.ResidentShards)
	}
	communityEqual(t, mem, e2)
	if err := e2.Err(); err != nil {
		t.Fatalf("sticky persistence error after restart: %v", err)
	}
}

func TestSpillEvictsToPersister(t *testing.T) {
	u, profiles := soakUniverse(t)
	e := loadEngineErr(t, u, profiles,
		WithPersistence(t.TempDir()), WithShards(8), WithMaxResidentShards(2))
	defer e.Close()

	// Touch every user: each access may fault a shard in and evict
	// another, but profile reads always see the durable state.
	for _, p := range profiles {
		got, err := e.Profile(p.UserID)
		if err != nil {
			t.Fatalf("Profile(%s) after spill churn: %v", p.UserID, err)
		}
		if !reflect.DeepEqual(got.Vector(), p.Vector()) {
			t.Fatalf("faulted-in profile for %s differs", p.UserID)
		}
		if st := e.Stats(); st.ResidentShards > 2 {
			t.Fatalf("ResidentShards = %d, want <= 2", st.ResidentShards)
		}
	}
	// Writes to spilled shards fault in and stay durable.
	for _, p := range profiles[:20] {
		if err := e.RecordPurchase(p.UserID, u.Catalog.All()[0].ID); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range profiles[:20] {
		if !e.Snapshot().Purchases(p.UserID)[u.Catalog.All()[0].ID] {
			t.Fatalf("purchase for %s lost after spill churn", p.UserID)
		}
	}
}

func TestSetProfilesEquivalence(t *testing.T) {
	u, profiles := soakUniverse(t)

	one := NewEngine(u.Catalog, WithNeighbors(8))
	for _, p := range profiles {
		if err := one.SetProfile(p); err != nil {
			t.Fatal(err)
		}
	}
	bulk := NewEngine(u.Catalog, WithNeighbors(8))
	if err := bulk.SetProfiles(profiles); err != nil {
		t.Fatal(err)
	}
	for user, pids := range u.Purchases() {
		for _, pid := range pids {
			one.RecordPurchase(user, pid)
			bulk.RecordPurchase(user, pid)
		}
	}
	communityEqual(t, one, bulk)
}

func TestSetProfilesLaterDuplicateWins(t *testing.T) {
	u, _ := soakUniverse(t)
	prods := u.Catalog.All()

	older := profile.NewProfile("dup")
	if err := older.Observe(prods[0].Evidence(profile.BehaviourBuy)); err != nil {
		t.Fatal(err)
	}
	newer := profile.NewProfile("dup")
	if err := newer.Observe(prods[1].Evidence(profile.BehaviourBuy)); err != nil {
		t.Fatal(err)
	}

	e := NewEngine(u.Catalog)
	if err := e.SetProfiles([]*profile.Profile{older, newer}); err != nil {
		t.Fatal(err)
	}
	got, err := e.Profile("dup")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Vector(), newer.Vector()) {
		t.Error("SetProfiles kept the earlier duplicate")
	}
	// The index must hold exactly the later profile's categories: stale
	// postings from the earlier duplicate would leak ghost candidates.
	seq := NewEngine(u.Catalog)
	seq.SetProfile(older)
	seq.SetProfile(newer)
	a, b := e.Stats(), seq.Stats()
	if a.Postings != b.Postings || a.IndexedCategories != b.IndexedCategories {
		t.Errorf("batch index (%d cats, %d postings) != sequential (%d cats, %d postings)",
			a.IndexedCategories, a.Postings, b.IndexedCategories, b.Postings)
	}
}

func TestSetProfilesReplacementDropsStalePostings(t *testing.T) {
	u, profiles := soakUniverse(t)
	e := NewEngine(u.Catalog)
	if err := e.SetProfiles(profiles); err != nil {
		t.Fatal(err)
	}
	before := e.Stats()

	// Replace every profile with a fresh single-category one via the bulk
	// path: all the old multi-category postings must disappear.
	prod := u.Catalog.All()[0]
	replacement := make([]*profile.Profile, len(profiles))
	for i, p := range profiles {
		np := profile.NewProfile(p.UserID)
		if err := np.Observe(prod.Evidence(profile.BehaviourBuy)); err != nil {
			t.Fatal(err)
		}
		replacement[i] = np
	}
	if err := e.SetProfiles(replacement); err != nil {
		t.Fatal(err)
	}
	after := e.Stats()
	if after.Users != before.Users {
		t.Errorf("users changed: %d -> %d", before.Users, after.Users)
	}
	if after.IndexedCategories != 1 || after.Postings != len(profiles) {
		t.Errorf("stale postings leaked: %d categories, %d postings (want 1, %d)",
			after.IndexedCategories, after.Postings, len(profiles))
	}
}

func TestOpenErrorPaths(t *testing.T) {
	// A state dir path that is an existing file must fail cleanly.
	f := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	u, _ := soakUniverse(t)
	if _, err := Open(u.Catalog, WithPersistence(f)); err == nil {
		t.Error("Open with file-as-dir succeeded")
	}
	// NewEngine must refuse (loudly) rather than silently drop durability.
	defer func() {
		if recover() == nil {
			t.Error("NewEngine with failing persistence did not panic")
		}
	}()
	NewEngine(u.Catalog, WithPersistence(f))
}

func TestCompactState(t *testing.T) {
	u, profiles := soakUniverse(t)
	if err := NewEngine(u.Catalog).CompactState(); !errors.Is(err, ErrNoPersistence) {
		t.Errorf("CompactState on memory engine = %v, want ErrNoPersistence", err)
	}

	dir := t.TempDir()
	e := loadEngineErr(t, u, profiles, WithPersistence(dir))
	// Overwrite every profile a few times to bloat the journal.
	for i := 0; i < 3; i++ {
		if err := e.SetProfiles(profiles); err != nil {
			t.Fatal(err)
		}
	}
	wal := filepath.Join(dir, CommunityWAL)
	before, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CompactState(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Errorf("CompactState did not shrink journal: %d -> %d", before.Size(), after.Size())
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(u.Catalog, WithPersistence(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	communityEqual(t, loadEngine(u, profiles), e2)
}

// TestPersistentConcurrentSoak is the -race soak for the durable path:
// concurrent writers (SetProfile, RecordPurchase, bulk SetProfiles) and
// readers (Recommend, Profile, Users, Snapshot) churn a spilling engine,
// then a restart must recover a community identical to a serial replay.
func TestPersistentConcurrentSoak(t *testing.T) {
	u, profiles := soakUniverse(t)
	dir := t.TempDir()
	e, err := Open(u.Catalog,
		WithPersistence(dir), WithNeighbors(8), WithShards(8), WithMaxResidentShards(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetProfiles(profiles); err != nil {
		t.Fatal(err)
	}

	const (
		goroutines = 8
		iterations = 120
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 99))
			for i := 0; i < iterations; i++ {
				usr := u.Users[rng.IntN(len(u.Users))]
				switch i % 6 {
				case 0:
					if err := e.SetProfile(profiles[rng.IntN(len(profiles))]); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if err := e.RecordPurchase(usr.ID, usr.Held[rng.IntN(len(usr.Held))]); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if _, err := e.Recommend(StrategyCF, usr.ID, "", 5); err != nil && !errors.Is(err, ErrUnknownUser) {
						t.Error(err)
						return
					}
				case 3:
					if _, err := e.Profile(usr.ID); err != nil && !errors.Is(err, ErrUnknownUser) {
						t.Error(err)
						return
					}
				case 4:
					snap := e.Snapshot()
					_ = snap.Purchases(usr.ID)
				case 5:
					lo := rng.IntN(len(profiles) - 4)
					if err := e.SetProfiles(profiles[lo : lo+4]); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := e.Err(); err != nil {
		t.Fatalf("sticky persistence error after soak: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Every profile write wrote one of the same immutable profiles, so the
	// recovered community must match a serial install exactly; purchases
	// are a subset of Held per user, all durable.
	e2, err := Open(u.Catalog, WithPersistence(dir), WithNeighbors(8))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if got, want := len(e2.Users()), len(profiles); got != want {
		t.Fatalf("recovered %d users, want %d", got, want)
	}
	st := e2.Stats()
	mem := loadEngine(u, profiles, WithNeighbors(8))
	if mst := mem.Stats(); st.Postings != mst.Postings || st.IndexedCategories != mst.IndexedCategories {
		t.Errorf("recovered index %+v, want %+v", st, mst)
	}
	snap := e2.Snapshot()
	for _, usr := range u.Users {
		held := make(map[string]bool, len(usr.Held))
		for _, pid := range usr.Held {
			held[pid] = true
		}
		for pid := range snap.Purchases(usr.ID) {
			if !held[pid] {
				t.Fatalf("user %s recovered purchase %s they never made", usr.ID, pid)
			}
		}
	}
}

// TestPersisterInterfaceInjectable pins the Persister seam: a failing
// injected implementation surfaces errors instead of corrupting state.
func TestPersisterInterfaceInjectable(t *testing.T) {
	u, _ := soakUniverse(t)
	e, err := Open(u.Catalog, WithPersister(failingPersister{}))
	if err == nil || err.Error() == "" {
		t.Fatalf("Open with failing persister = %v, want recovery error", err)
	}
	_ = e
}

type failingPersister struct{}

var errInjected = errors.New("injected persister failure")

func (failingPersister) SaveProfiles(int, []*profile.Profile) error { return errInjected }
func (failingPersister) SavePurchase(int, string, string, int64) error {
	return errInjected
}
func (failingPersister) SaveShard(int, ShardData) error   { return errInjected }
func (failingPersister) LoadShard(int) (ShardData, error) { return ShardData{}, errInjected }
func (failingPersister) ShardUsers(int) ([]string, error) { return nil, errInjected }
func (failingPersister) Compact() error                   { return nil }
func (failingPersister) SizeStats() (JournalStats, error) { return JournalStats{}, errInjected }
func (failingPersister) Close() error                     { return nil }

var _ = fmt.Sprintf // keep fmt imported for debugging edits
